package repro_test

import (
	"fmt"

	"repro"
)

// ExampleBuildAccelerator shows the minimal end-to-end flow: generate a
// ruleset, build the accelerator's search structure, classify a packet.
func ExampleBuildAccelerator() {
	rules, err := repro.GenerateRuleset("acl1", 500, 2008)
	if err != nil {
		panic(err)
	}
	acc, err := repro.BuildAccelerator(rules, repro.Config{Algorithm: repro.HyperCuts})
	if err != nil {
		panic(err)
	}

	trace := repro.GenerateTrace(rules, 1, 2009)
	match, latency, reads := acc.ClassifyDetailed(trace[0])
	fmt.Println("match == linear:", match == rules.Match(trace[0]))
	fmt.Println("latency == reads+1:", latency == reads+1)
	fmt.Println("worst case within device bound:", acc.WorstCaseCycles() >= 2 && acc.WorstCaseCycles() <= 20)
	// Output:
	// match == linear: true
	// latency == reads+1: true
	// worst case within device bound: true
}

// ExampleAccelerator_GuaranteedPPS shows the worst-case throughput
// guarantee the paper derives from worst-case cycles (§5.2).
func ExampleAccelerator_GuaranteedPPS() {
	rules, err := repro.GenerateRuleset("acl1", 100, 1)
	if err != nil {
		panic(err)
	}
	acc, err := repro.BuildAccelerator(rules, repro.Config{Algorithm: repro.HiCuts})
	if err != nil {
		panic(err)
	}
	// The ASIC runs at 226 MHz; the guarantee is freq/(worst-1).
	fmt.Println(acc.GuaranteedPPS() >= 226e6/float64(acc.WorstCaseCycles()-1))
	// Output:
	// true
}

// ExampleNewSoftwareBaseline compares the accelerator to the paper's
// software platform on the same workload.
func ExampleNewSoftwareBaseline() {
	rules, err := repro.GenerateRuleset("ipc1", 300, 3)
	if err != nil {
		panic(err)
	}
	sw, err := repro.NewSoftwareBaseline("hicuts", rules)
	if err != nil {
		panic(err)
	}
	acc, err := repro.BuildAccelerator(rules, repro.Config{})
	if err != nil {
		panic(err)
	}
	trace := repro.GenerateTrace(rules, 3000, 4)
	swStats := sw.Measure(trace)
	_, hwStats := acc.Run(trace)
	fmt.Println("hardware beats software by >100x:",
		hwStats.PacketsPerSecond > 100*swStats.PacketsPerSecond)
	fmt.Println("hardware energy lower by >100x:",
		hwStats.EnergyPerPacketJ*100 < swStats.EnergyPerPacketJ)
	// Output:
	// hardware beats software by >100x: true
	// hardware energy lower by >100x: true
}
