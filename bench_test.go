package repro

// Benchmark harness: one benchmark per paper table plus ablation benches
// for the design decisions DESIGN.md calls out. Each benchmark
// regenerates its table's data and reports the headline quantities as
// custom metrics, so `go test -bench=.` reproduces the evaluation.
//
// Benchmarks use moderate ruleset sizes so a full -bench=. pass stays
// tractable on one core; cmd/pctables runs the paper's full sizes.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/rfc"
	"repro/internal/sa1100"
	"repro/internal/tcam"
)

func benchOpts() bench.Options {
	return bench.Options{
		Seed:         2008,
		Sizes:        []int{60, 500, 2191},
		Table4Sizes:  []int{300, 2500},
		TracePackets: 8000,
	}
}

func acl1Rows(b *testing.B) []bench.ACL1Row {
	b.Helper()
	rows, err := bench.RunACL1(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkTable2 regenerates the search-structure memory comparison.
func BenchmarkTable2_Memory(b *testing.B) {
	var rows []bench.ACL1Row
	for i := 0; i < b.N; i++ {
		rows = acl1Rows(b)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.SWHiCutsMem), "swHiCutsBytes")
	b.ReportMetric(float64(last.HWHiCutsMem), "hwHiCutsBytes")
	b.ReportMetric(float64(last.HWHyperMem), "hwHyperCutsBytes")
}

// BenchmarkTable3 regenerates the build-energy comparison.
func BenchmarkTable3_BuildEnergy(b *testing.B) {
	var rows []bench.ACL1Row
	for i := 0; i < b.N; i++ {
		rows = acl1Rows(b)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.SWHiCutsBuildJ, "swHiCutsJ")
	b.ReportMetric(last.HWHiCutsBuildJ, "hwHiCutsJ")
	b.ReportMetric(last.SWHiCutsBuildJ/last.HWHiCutsBuildJ, "ratio")
}

// BenchmarkTable4 regenerates hardware memory/cycles for all profiles.
func BenchmarkTable4_ProfilesMemoryCycles(b *testing.B) {
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTable4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Profile == "fw1" && r.N == 2500 {
			b.ReportMetric(float64(r.HiCutsMem), "fw1HiCutsBytes")
			b.ReportMetric(float64(r.HiCutsCycles), "fw1HiCutsCycles")
		}
	}
}

// BenchmarkTable5 exercises the normalization arithmetic.
func BenchmarkTable5_DeviceComparison(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = bench.Table5().Format()
	}
	b.ReportMetric(float64(len(s)), "tableBytes")
}

// BenchmarkTable6 regenerates per-packet energy.
func BenchmarkTable6_EnergyPerPacket(b *testing.B) {
	var rows []bench.ACL1Row
	for i := 0; i < b.N; i++ {
		rows = acl1Rows(b)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.SWHiCutsEnergyJ, "swHiCutsJperPkt")
	b.ReportMetric(last.ASICHyperEnergyJ, "asicHyperJperPkt")
	b.ReportMetric(last.SWHiCutsEnergyJ/last.ASICHyperEnergyJ, "savingX")
}

// BenchmarkTable7 regenerates throughput.
func BenchmarkTable7_Throughput(b *testing.B) {
	var rows []bench.ACL1Row
	for i := 0; i < b.N; i++ {
		rows = acl1Rows(b)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.SWHiCutsPPS, "swHiCutsPPS")
	b.ReportMetric(last.ASICHyperPPS, "asicHyperPPS")
	b.ReportMetric(last.FPGAHyperPPS, "fpgaHyperPPS")
}

// BenchmarkTable8 regenerates worst-case memory accesses.
func BenchmarkTable8_WorstCaseAccesses(b *testing.B) {
	var rows []bench.ACL1Row
	for i := 0; i < b.N; i++ {
		rows = acl1Rows(b)
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.SWHiCutsWorst), "swHiCutsAccesses")
	b.ReportMetric(float64(last.HWHiCutsWorst), "hwHiCutsAccesses")
	b.ReportMetric(float64(last.HWHyperWorst), "hwHyperAccesses")
}

// BenchmarkClaims reproduces the §5.2/§5.3 headline ratios.
func BenchmarkClaims_HeadlineRatios(b *testing.B) {
	opts := benchOpts()
	opts.Sizes = []int{1500}
	var cl bench.Claims
	for i := 0; i < b.N; i++ {
		var err error
		cl, err = bench.RunClaims(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cl.ThroughputVsRFC, "vsRFCx")
	b.ReportMetric(cl.ThroughputVsHiCuts, "vsHiCutsX")
	b.ReportMetric(cl.EnergySavingVsHiCuts, "energySavingX")
}

// BenchmarkFigures13 builds the didactic decision trees of Figures 1-3
// (the paper's Table 1 ruleset with binth 3) using the original software
// algorithms.
func BenchmarkFigures13_ExampleTrees(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 10, 1)
	var depthHi, depthHy int
	for i := 0; i < b.N; i++ {
		hi, err := hicuts.Build(rs, hicuts.Config{Binth: 3, Spfac: 4})
		if err != nil {
			b.Fatal(err)
		}
		hy, err := hypercuts.Build(rs, hypercuts.Config{Binth: 3, Spfac: 4})
		if err != nil {
			b.Fatal(err)
		}
		depthHi, depthHy = hi.Depth(), hy.Depth()
	}
	b.ReportMetric(float64(depthHi), "hicutsDepth")
	b.ReportMetric(float64(depthHy), "hypercutsDepth")
}

// ---- Ablation benches (DESIGN.md §5) ----

// BenchmarkAblationCutStart compares the 32-cut starting point of the
// modified algorithms against the original 2-cut start (the paper's §3
// claim: "32 cuts is a much better starting position than 2").
func BenchmarkAblationCutStart(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	var ev2, ev32, mem2, mem32 float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(core.HiCuts)
		cfg.StartCuts = 2
		t2, err := core.Build(rs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		t32, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
		if err != nil {
			b.Fatal(err)
		}
		ev2 = float64(sa1100.BuildCycles(sa1100.BuildWork{
			CutEvaluations: t2.Stats().CutEvaluations, RuleChildOps: t2.Stats().RuleChildOps,
			RulePushes: t2.Stats().RulePushes, Nodes: t2.Stats().Nodes, Rules: 1000}))
		ev32 = float64(sa1100.BuildCycles(sa1100.BuildWork{
			CutEvaluations: t32.Stats().CutEvaluations, RuleChildOps: t32.Stats().RuleChildOps,
			RulePushes: t32.Stats().RulePushes, Nodes: t32.Stats().Nodes, Rules: 1000}))
		mem2, mem32 = float64(t2.MemoryBytes()), float64(t32.MemoryBytes())
	}
	b.ReportMetric(ev2/ev32, "buildCyclesRatio2vs32")
	b.ReportMetric(mem32/mem2, "memRatio32vs2")
}

// BenchmarkAblationSpeed compares speed 0 vs speed 1 (Eqs. 5-7): storage
// efficiency against average cycles per packet.
func BenchmarkAblationSpeed(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1500, 2008)
	trace := classbench.GenerateTrace(rs, 8000, 2009)
	var words0, words1, cyc0, cyc1 float64
	for i := 0; i < b.N; i++ {
		for _, speed := range []int{0, 1} {
			cfg := core.DefaultConfig(core.HyperCuts)
			cfg.Speed = speed
			tr, err := core.Build(rs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			img, err := tr.Encode()
			if err != nil {
				b.Fatal(err)
			}
			sim, err := hwsim.New(img, hwsim.ASIC)
			if err != nil {
				b.Fatal(err)
			}
			_, st := sim.Run(trace)
			if speed == 0 {
				words0, cyc0 = float64(tr.Words()), st.AvgCyclesPerPacket
			} else {
				words1, cyc1 = float64(tr.Words()), st.AvgCyclesPerPacket
			}
		}
	}
	b.ReportMetric(words0, "speed0Words")
	b.ReportMetric(words1, "speed1Words")
	b.ReportMetric(cyc0, "speed0CycPerPkt")
	b.ReportMetric(cyc1, "speed1CycPerPkt")
}

// BenchmarkAblationLeafRules compares rules-in-leaf against the
// pointer-based design the paper rejects (§3: one extra cycle per packet
// for a small memory saving).
func BenchmarkAblationLeafRules(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1500, 2008)
	var wcRules, wcPtrs, memRules, memPtrs float64
	for i := 0; i < b.N; i++ {
		tr, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
		if err != nil {
			b.Fatal(err)
		}
		cfgP := core.DefaultConfig(core.HyperCuts)
		cfgP.LeafPointers = true
		tp, err := core.Build(rs, cfgP)
		if err != nil {
			b.Fatal(err)
		}
		wcRules, wcPtrs = float64(tr.WorstCaseCycles()), float64(tp.WorstCaseCycles())
		memRules, memPtrs = float64(tr.MemoryBytes()), float64(tp.MemoryBytes())
	}
	b.ReportMetric(wcRules, "rulesInLeafWorstCyc")
	b.ReportMetric(wcPtrs, "pointerLeafWorstCyc")
	b.ReportMetric(memRules/memPtrs, "memRatio")
}

// BenchmarkAblationOverlap quantifies the root-in-register pipelining: the
// overlap hides one cycle per packet (paper §4).
func BenchmarkAblationOverlap(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 800, 2008)
	trace := classbench.GenerateTrace(rs, 8000, 2009)
	tr, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	img, err := tr.Encode()
	if err != nil {
		b.Fatal(err)
	}
	sim, err := hwsim.New(img, hwsim.ASIC)
	if err != nil {
		b.Fatal(err)
	}
	var withOverlap, withoutOverlap float64
	for i := 0; i < b.N; i++ {
		var latSum int64
		_, st := sim.Run(trace)
		for _, p := range trace {
			latSum += int64(sim.ClassifyOne(p).LatencyCycles)
		}
		withOverlap = st.AvgCyclesPerPacket
		withoutOverlap = float64(latSum) / float64(len(trace))
	}
	b.ReportMetric(withOverlap, "cycPerPktOverlap")
	b.ReportMetric(withoutOverlap, "cycPerPktNoOverlap")
}

// BenchmarkRFCPreprocess measures the RFC baseline's build cost.
func BenchmarkRFCPreprocess(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 500, 2008)
	for i := 0; i < b.N; i++ {
		if _, _, err := rfc.Build(rs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCAMExpansion measures range-to-prefix expansion cost and
// reports the storage efficiency of §1's discussion.
func BenchmarkTCAMExpansion(b *testing.B) {
	rs := classbench.Generate(classbench.FW1(), 1000, 2008)
	var eff float64
	for i := 0; i < b.N; i++ {
		_, st, err := tcam.Build(rs)
		if err != nil {
			b.Fatal(err)
		}
		eff = st.Efficiency
	}
	b.ReportMetric(eff*100, "efficiencyPct")
}

// BenchmarkAcceleratorLookup measures the Go-level speed of the simulator
// itself (not a paper number; useful for harness regressions).
func BenchmarkAcceleratorLookup(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		b.Fatal(err)
	}
	trace := GenerateTrace(rs, 1024, 2010)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Classify(trace[i&1023])
	}
}

// BenchmarkEngineLookup measures the flat software engine through the
// facade (compare with BenchmarkAcceleratorLookup: same tree, flat arrays
// instead of the interpreted memory image).
func BenchmarkEngineLookup(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		b.Fatal(err)
	}
	eng := acc.SoftwareEngine()
	trace := GenerateTrace(rs, 1024, 2010)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Classify(trace[i&1023])
	}
}
