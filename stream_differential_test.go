package repro

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/rule"
	"repro/internal/wire"
)

// Differential test for the ingest formats: the same trace streamed as
// text, binary wire framing, and a pcap capture must produce results
// identical to each other and to the direct ClassifyBatch path — cold,
// again with the flow cache warm, and again after a churn of rule
// inserts and deletes has moved the accelerator through epochs. Any
// divergence means a framing decoder disagrees with the text shim or a
// stream observed a torn update.
func TestClassifyStreamFormatsDifferential(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 17)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, CacheSize: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 3000, 23)
	// The pcap stub zeroes ports for protocols without a parseable L4
	// header, so pin every packet to TCP/UDP to keep all three encodings
	// semantically identical.
	for i := range trace {
		if trace[i].Proto != 6 && trace[i].Proto != 17 {
			trace[i].Proto = 6
		}
	}

	var text, bin, pcap bytes.Buffer
	if err := rule.WriteTrace(&text, trace); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteTrace(&bin, trace); err != nil {
		t.Fatal(err)
	}
	if err := wire.WritePcap(&pcap, trace); err != nil {
		t.Fatal(err)
	}
	encodings := []struct {
		name   string
		data   []byte
		binary bool
	}{
		{"text", text.Bytes(), false},
		{"binary", bin.Bytes(), true},
		{"pcap", pcap.Bytes(), true},
	}

	// oracle renders the direct batch-classification path in the stream's
	// output format, against the current epoch.
	oracle := func() []byte {
		out := make([]int32, len(trace))
		acc.SoftwareEngine().ClassifyBatch(trace, out)
		var buf bytes.Buffer
		for _, id := range out {
			buf.WriteString(strconv.Itoa(int(id)))
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}

	check := func(t *testing.T, phase string) {
		want := oracle()
		for _, enc := range encodings {
			var got bytes.Buffer
			st, err := acc.ClassifyStreamStats(bytes.NewReader(enc.data), &got)
			if err != nil {
				t.Fatalf("%s/%s: %v", phase, enc.name, err)
			}
			if st.Packets != int64(len(trace)) {
				t.Fatalf("%s/%s: streamed %d of %d packets", phase, enc.name, st.Packets, len(trace))
			}
			if st.Binary != enc.binary {
				t.Fatalf("%s/%s: detected binary=%v, want %v", phase, enc.name, st.Binary, enc.binary)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s/%s: stream results diverge from ClassifyBatch", phase, enc.name)
			}
		}
	}

	check(t, "cold")
	check(t, "warm-cache")

	// Churn: delete a slice of the ruleset and insert replacements, so
	// the post-churn streams run against a genuinely different epoch (and
	// a flow cache full of entries the epoch bump must invalidate).
	repl, err := GenerateRuleset("fw1", 40, 91)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := acc.Delete(rs[i].ID); err != nil {
			t.Fatalf("churn delete %d: %v", rs[i].ID, err)
		}
	}
	for i := range repl {
		// Incremental insert appends at lowest priority: IDs continue the
		// original sequence.
		repl[i].ID = len(rs) + i
		if err := acc.Insert(repl[i]); err != nil {
			t.Fatalf("churn insert %d: %v", repl[i].ID, err)
		}
	}
	if before := oracle(); !bytes.Equal(before, oracle()) {
		t.Fatal("oracle unstable at fixed epoch")
	}
	check(t, "post-churn")
}
