package repro

// Cross-implementation integration tests: every classifier in the
// repository must agree with the linear-search reference on identical
// workloads, across profiles, algorithms, speeds and devices.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/rfc"
	"repro/internal/rule"
	"repro/internal/tcam"
)

// classifier is the minimal surface shared by every implementation.
type classifier struct {
	name string
	fn   func(rule.Packet) int
}

func allClassifiers(t *testing.T, rs rule.RuleSet) []classifier {
	t.Helper()
	var cs []classifier

	swHi, err := hicuts.Build(rs, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, classifier{"software-hicuts", swHi.Classify})

	swHy, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, classifier{"software-hypercuts", swHy.Classify})

	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, speed := range []int{0, 1} {
			cfg := core.DefaultConfig(algo)
			cfg.Speed = speed
			tree, err := core.Build(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cs = append(cs, classifier{"core-" + algo.String(), tree.Classify})
			img, err := tree.Encode()
			if err != nil {
				t.Fatal(err)
			}
			sim, err := hwsim.New(img, hwsim.ASIC)
			if err != nil {
				t.Fatal(err)
			}
			cs = append(cs, classifier{"hwsim-" + algo.String(), func(p rule.Packet) int {
				return sim.ClassifyOne(p).Match
			}})
		}
	}

	rfcC, _, err := rfc.Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, classifier{"rfc", rfcC.Classify})

	tc, _, err := tcam.Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	cs = append(cs, classifier{"tcam", tc.Classify})

	return cs
}

func TestAllClassifiersAgree(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
		rs := classbench.Generate(prof, 250, 2024)
		ref := linear.New(rs)
		cs := allClassifiers(t, rs)
		trace := classbench.GenerateTrace(rs, 2500, 2025)
		for i, p := range trace {
			want := ref.Classify(p)
			for _, c := range cs {
				if got := c.fn(p); got != want {
					t.Fatalf("%s/%s packet %d: got %d want %d", prof.Name, c.name, i, got, want)
				}
			}
		}
	}
}

func TestAllClassifiersAgreeOnAdversarialPackets(t *testing.T) {
	// Rule-boundary packets: corners of every rule's hyper-rectangle are
	// where off-by-one errors live.
	rs := classbench.Generate(classbench.IPC1(), 200, 2026)
	ref := linear.New(rs)
	cs := allClassifiers(t, rs)
	for i := range rs {
		for _, corner := range []bool{false, true} {
			var p rule.Packet
			pick := func(d int) uint32 {
				if corner {
					return rs[i].F[d].Hi
				}
				return rs[i].F[d].Lo
			}
			p.SrcIP = pick(rule.DimSrcIP)
			p.DstIP = pick(rule.DimDstIP)
			p.SrcPort = uint16(pick(rule.DimSrcPort))
			p.DstPort = uint16(pick(rule.DimDstPort))
			p.Proto = uint8(pick(rule.DimProto))
			want := ref.Classify(p)
			for _, c := range cs {
				if got := c.fn(p); got != want {
					t.Fatalf("rule %d corner=%v %s: got %d want %d", i, corner, c.name, got, want)
				}
			}
		}
	}
}

func TestQuickRandomRulesetsAgree(t *testing.T) {
	// Property: for arbitrary small random (but structurally valid)
	// rulesets, the hardware pipeline agrees with linear search on
	// arbitrary packets. This hits degenerate shapes the generator never
	// produces (single-rule sets, all-wildcard sets, duplicate-ish
	// rules).
	f := func(seed int64, nRules uint8, sip, dip uint32, sp, dp uint16, pr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRules%40) + 1
		rs := make(rule.RuleSet, 0, n)
		for i := 0; i < n; i++ {
			loS := uint32(rng.Intn(65536))
			hiS := loS + uint32(rng.Intn(int(65536-loS)))
			loD := uint32(rng.Intn(65536))
			hiD := loD + uint32(rng.Intn(int(65536-loD)))
			rs = append(rs, rule.New(i,
				rng.Uint32(), rng.Intn(33), rng.Uint32(), rng.Intn(33),
				rule.Range{Lo: loS, Hi: hiS}, rule.Range{Lo: loD, Hi: hiD},
				uint8(rng.Intn(256)), rng.Intn(4) == 0))
		}
		tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
		if err != nil {
			return false
		}
		img, err := tree.Encode()
		if err != nil {
			return false
		}
		sim, err := hwsim.New(img, hwsim.ASIC)
		if err != nil {
			return false
		}
		p := rule.Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: pr}
		if sim.ClassifyOne(p).Match != rs.Match(p) {
			return false
		}
		// Also probe a packet inside a random rule.
		r := &rs[rng.Intn(len(rs))]
		inside := rule.Packet{
			SrcIP:   r.F[rule.DimSrcIP].Lo,
			DstIP:   r.F[rule.DimDstIP].Hi,
			SrcPort: uint16(r.F[rule.DimSrcPort].Lo),
			DstPort: uint16(r.F[rule.DimDstPort].Hi),
			Proto:   uint8(r.F[rule.DimProto].Lo),
		}
		return sim.ClassifyOne(inside).Match == rs.Match(inside)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTable1AcrossImplementations(t *testing.T) {
	// The paper's didactic ruleset has non-prefix IP ranges, so it can
	// run on the software trees (geometric) but not the hardware
	// encoder; verify the software algorithms and the core logical tree
	// all agree on it.
	rs := classbench.Table1()
	swHi, err := hicuts.Build(rs, hicuts.Config{Binth: 3, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	swHy, err := hypercuts.Build(rs, hypercuts.Config{Binth: 3, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	coreHy, err := core.Build(rs, core.Config{Algorithm: core.HyperCuts, Binth: 3, Spfac: 4, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coreHy.Encode(); err == nil {
		t.Error("Table 1 rules have non-prefix IP ranges; encoding should fail")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		p := rule.PacketFromBytes([rule.NumDims]uint8{
			uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)),
			uint8(rng.Intn(256)), uint8(rng.Intn(256))})
		want := rs.Match(p)
		if got := swHi.Classify(p); got != want {
			t.Fatalf("hicuts: %d vs %d", got, want)
		}
		if got := swHy.Classify(p); got != want {
			t.Fatalf("hypercuts: %d vs %d", got, want)
		}
		if got := coreHy.Classify(p); got != want {
			t.Fatalf("core: %d vs %d", got, want)
		}
	}
}
