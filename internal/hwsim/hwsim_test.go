package hwsim

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
)

func buildSim(t *testing.T, algo core.Algorithm, prof classbench.Profile, n int, speed int, dev Device) (*Sim, *core.Tree, rule.RuleSet) {
	t.Helper()
	rs := classbench.Generate(prof, n, 71)
	cfg := core.DefaultConfig(algo)
	cfg.Speed = speed
	tr, err := core.Build(rs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	img, err := tr.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	sim, err := New(img, dev)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim, tr, rs
}

func TestSimMatchesLinear(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
			sim, _, rs := buildSim(t, algo, prof, 300, 1, ASIC)
			for i, p := range classbench.GenerateTrace(rs, 2000, 72) {
				if got, want := sim.ClassifyOne(p).Match, rs.Match(p); got != want {
					t.Fatalf("%v/%s packet %d: sim=%d linear=%d", algo, prof.Name, i, got, want)
				}
			}
		}
	}
}

func TestSimLatencyMatchesWalkPrediction(t *testing.T) {
	// The simulator's measured latency must equal the analytical
	// Eq. 5/7 cycle prediction from the logical tree, for both speeds.
	for _, speed := range []int{0, 1} {
		sim, tr, rs := buildSim(t, core.HyperCuts, classbench.ACL1(), 500, speed, ASIC)
		for i, p := range classbench.GenerateTrace(rs, 3000, 73) {
			r := sim.ClassifyOne(p)
			pi := tr.Walk(p)
			if r.LatencyCycles != pi.Cycles() {
				t.Fatalf("speed %d packet %d: sim latency %d, Eq. prediction %d (internal=%d leafwords=%d)",
					speed, i, r.LatencyCycles, pi.Cycles(), pi.Internal, pi.LeafWords)
			}
			if r.Match != pi.Match {
				t.Fatalf("speed %d packet %d: match mismatch sim=%d walk=%d", speed, i, r.Match, pi.Match)
			}
		}
	}
}

func TestWorstCaseBoundsSimLatency(t *testing.T) {
	sim, tr, rs := buildSim(t, core.HiCuts, classbench.FW1(), 400, 1, ASIC)
	worst := tr.WorstCaseCycles()
	for _, p := range classbench.GenerateTrace(rs, 3000, 74) {
		if r := sim.ClassifyOne(p); r.LatencyCycles > worst {
			t.Fatalf("latency %d exceeds worst case %d", r.LatencyCycles, worst)
		}
	}
}

func TestRunStats(t *testing.T) {
	sim, _, rs := buildSim(t, core.HyperCuts, classbench.ACL1(), 300, 1, FPGA)
	trace := classbench.GenerateTrace(rs, 5000, 75)
	matches, st := sim.Run(trace)
	if len(matches) != len(trace) || st.Packets != int64(len(trace)) {
		t.Fatalf("packet accounting wrong")
	}
	if st.Matched == 0 || st.Matched > st.Packets {
		t.Fatalf("matched=%d", st.Matched)
	}
	if st.AvgCyclesPerPacket < 1 {
		t.Errorf("avg cycles/packet %.2f < 1", st.AvgCyclesPerPacket)
	}
	// Throughput can never exceed one packet per cycle.
	if st.PacketsPerSecond > FPGA.FreqHz+1 {
		t.Errorf("throughput %.0f exceeds clock %.0f", st.PacketsPerSecond, FPGA.FreqHz)
	}
	// Energy per packet = avg cycles * energy/cycle (within rounding of
	// the 2 setup cycles).
	approx := st.AvgCyclesPerPacket * FPGA.EnergyPerCycleJ()
	if st.EnergyPerPacketJ < approx*0.9 || st.EnergyPerPacketJ > approx*1.2 {
		t.Errorf("energy/packet %.3e vs approx %.3e", st.EnergyPerPacketJ, approx)
	}
}

func TestASICFasterAndLowerEnergyThanFPGA(t *testing.T) {
	simA, _, rs := buildSim(t, core.HyperCuts, classbench.ACL1(), 300, 1, ASIC)
	simF, _, _ := buildSim(t, core.HyperCuts, classbench.ACL1(), 300, 1, FPGA)
	trace := classbench.GenerateTrace(rs, 3000, 76)
	_, stA := simA.Run(trace)
	_, stF := simF.Run(trace)
	if stA.PacketsPerSecond <= stF.PacketsPerSecond {
		t.Errorf("ASIC %.0f pps should beat FPGA %.0f pps", stA.PacketsPerSecond, stF.PacketsPerSecond)
	}
	if stA.EnergyPerPacketJ >= stF.EnergyPerPacketJ {
		t.Errorf("ASIC energy %.3e should undercut FPGA %.3e", stA.EnergyPerPacketJ, stF.EnergyPerPacketJ)
	}
}

func TestOnePacketPerCycleWhenWorstCaseIs2(t *testing.T) {
	// Paper §4: if the worst case is 2 cycles the accelerator sustains
	// one packet per clock. Build a tiny set whose tree is root+leaf.
	rs := classbench.Generate(classbench.ACL1(), 10, 77)
	tr, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	if tr.WorstCaseCycles() != 2 {
		t.Skipf("tree worst case %d, want 2 for this test", tr.WorstCaseCycles())
	}
	img, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(img, ASIC)
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, 2000, 78)
	_, st := sim.Run(trace)
	if st.AvgCyclesPerPacket > 1.01 {
		t.Errorf("avg %.3f cycles/packet; want ~1 when worst case is 2", st.AvgCyclesPerPacket)
	}
	if got := WorstCaseThroughputPPS(ASIC, 2); got != ASIC.FreqHz {
		t.Errorf("worst-case throughput %.0f, want %.0f", got, ASIC.FreqHz)
	}
}

func TestWorstCaseThroughputFloor(t *testing.T) {
	if got := WorstCaseThroughputPPS(ASIC, 1); got != ASIC.FreqHz {
		t.Errorf("floor broken: %.0f", got)
	}
	if got := WorstCaseThroughputPPS(FPGA, 5); got != FPGA.FreqHz/4 {
		t.Errorf("5-cycle worst case: %.0f", got)
	}
}

func TestDeviceCapacityEnforced(t *testing.T) {
	img := &core.Image{Words: make([][]byte, core.DeviceWords+1)}
	for i := range img.Words {
		img.Words[i] = make([]byte, core.WordBytes)
	}
	if _, err := New(img, ASIC); err == nil {
		t.Error("oversized image accepted")
	}
	if _, err := New(&core.Image{}, ASIC); err == nil {
		t.Error("empty image accepted")
	}
}

func TestLoadCycles(t *testing.T) {
	sim, tr, _ := buildSim(t, core.HiCuts, classbench.ACL1(), 200, 1, ASIC)
	if sim.LoadCycles() != int64(tr.Words())+1 {
		t.Errorf("LoadCycles=%d words=%d", sim.LoadCycles(), tr.Words())
	}
}

func TestPaperDeviceConstants(t *testing.T) {
	if FPGA.FreqHz != 77e6 || ASIC.FreqHz != 226e6 {
		t.Error("device frequencies drifted from Table 5")
	}
	// ASIC normalized energy/cycle ~ 8.1e-11 J (18.32 mW / 226 MHz); the
	// paper's Table 6 ASIC entries are in the 7.3e-11..2.1e-10 band.
	e := ASIC.EnergyPerCycleJ()
	if e < 7e-11 || e > 9e-11 {
		t.Errorf("ASIC energy/cycle %.3e outside expected band", e)
	}
	// FPGA energy/cycle ~ 2.35e-8 J, matching Table 6's ~2.4e-8 entries.
	e = FPGA.EnergyPerCycleJ()
	if e < 2.2e-8 || e > 2.5e-8 {
		t.Errorf("FPGA energy/cycle %.3e outside expected band", e)
	}
}

func TestLargeDeviceCapacity(t *testing.T) {
	// A structure above 1024 words must be rejected by the baseline
	// device but accepted by the XC5VLX330T scale-up option (paper §3).
	words := core.DeviceWords + 100
	img := &core.Image{Words: make([][]byte, words), NumInternal: 1}
	for i := range img.Words {
		img.Words[i] = make([]byte, core.WordBytes)
	}
	if _, err := New(img, FPGA); err == nil {
		t.Error("baseline device accepted an oversized image")
	}
	if _, err := New(img, FPGALarge); err != nil {
		t.Errorf("large device rejected a %d-word image: %v", words, err)
	}
	if FPGALarge.Capacity() != 1458000/core.WordBytes {
		t.Errorf("large device capacity %d", FPGALarge.Capacity())
	}
	if FPGA.Capacity() != core.DeviceWords {
		t.Errorf("baseline capacity %d", FPGA.Capacity())
	}
}

func TestRunVerifiedAgreesWithEngine(t *testing.T) {
	sim, tr, rs := buildSim(t, core.HyperCuts, classbench.ACL1(), 500, 1, ASIC)
	trace := classbench.GenerateTrace(rs, 3000, 73)
	matches, st, err := sim.RunVerified(trace, engine.Compile(tr))
	if err != nil {
		t.Fatalf("RunVerified: %v", err)
	}
	if st.Packets != int64(len(trace)) || len(matches) != len(trace) {
		t.Fatalf("stats cover %d packets, want %d", st.Packets, len(trace))
	}
	// And the shared result is still the ground truth.
	for i, p := range trace {
		if matches[i] != rs.Match(p) {
			t.Fatalf("packet %d: verified match %d != linear %d", i, matches[i], rs.Match(p))
		}
	}
}

func TestRunVerifiedDetectsMismatch(t *testing.T) {
	sim, _, rs := buildSim(t, core.HiCuts, classbench.ACL1(), 200, 1, ASIC)
	trace := classbench.GenerateTrace(rs, 200, 74)
	// An engine compiled from a tree over a different ruleset must trip
	// the cross-check (unless, improbably, every match coincides).
	other := classbench.Generate(classbench.FW1(), 200, 99)
	wrongTree, err := core.Build(other, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunVerified(trace, engine.Compile(wrongTree)); err == nil {
		t.Skip("foreign ruleset happened to agree on every trace packet")
	}
}
