package hwsim

import (
	"fmt"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// BenchmarkPatchWords measures the device half of one live update: an
// Insert delta followed by the matching Delete, each replayed into the
// loaded memory image through the one-word-per-cycle write interface
// (Sim.ApplyDelta). Besides ns/op it reports the mean words rewritten
// per update (dirtywords) against the image size (imgwords): the
// sublinear-update claim is dirtywords staying a handful while imgwords
// grows an order of magnitude between the sub-benchmarks.
// scripts/bench.sh records both metrics in BENCH_<date>.json.
func BenchmarkPatchWords(b *testing.B) {
	dev := Device{Name: "bench-4096w", FreqHz: 226e6, PowerW: 0.01832, MemoryWords: 1 << core.PointerBits}
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			rs := classbench.Generate(classbench.ACL1(), n, 2008)
			pool := classbench.Generate(classbench.FW1(), 2048, 2010)
			var tree *core.Tree
			var sim *Sim
			rebuild := func() {
				var err error
				tree, err = core.Build(rs, core.DefaultConfig(core.HyperCuts))
				if err != nil {
					b.Fatal(err)
				}
				img, err := tree.Encode()
				if err != nil {
					b.Fatal(err)
				}
				if sim, err = New(img, dev); err != nil {
					b.Fatal(err)
				}
			}
			rebuild()
			var words, updates int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2048 == 0 && i > 0 {
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
				r := pool[i%len(pool)]
				r.ID = tree.NumRules()
				d, err := tree.InsertDelta(r)
				if err != nil {
					b.Fatal(err)
				}
				w, err := sim.ApplyDelta(tree, d)
				if err != nil {
					b.Fatal(err)
				}
				words += int64(w)
				d, err = tree.DeleteDelta(r.ID)
				if err != nil {
					b.Fatal(err)
				}
				if w, err = sim.ApplyDelta(tree, d); err != nil {
					b.Fatal(err)
				}
				words += int64(w)
				updates += 2
			}
			b.StopTimer()
			b.ReportMetric(float64(words)/float64(updates), "dirtywords")
			b.ReportMetric(float64(tree.Words()), "imgwords")
			if err := sim.VerifyImage(tree); err != nil {
				b.Fatal(err)
			}
		})
	}
}
