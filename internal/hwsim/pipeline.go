package hwsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rule"
)

// This file implements the accelerator as an explicit cycle-stepped
// finite-state machine with Start/Ready pins, following the flow chart of
// paper Figure 5 literally:
//
//	Reset -> load root word into register A (one cycle)
//	Ready high; when Start: latch packet into register B, compute the
//	root cut entry from registers A and B (no memory access), Ready low
//	Each further cycle reads one memory word:
//	  - internal node word: compute the next cut entry from the word's
//	    mask/shift header and register B
//	  - leaf word: on the first leaf cycle move the packet from B to C
//	    and raise Ready (the next packet may be latched while the
//	    comparators work); compare 30 rule slots; on match or end flag
//	    the classification completes and the next packet (if latched)
//	    proceeds with its already-computed root entry
//
// The functional model in Sim.Run computes identical totals arithmetically;
// tests assert cycle-for-cycle agreement between the two, which is the
// strongest internal-consistency evidence this reproduction has for the
// paper's pipelining claim (§4: worst case 2 cycles -> one packet per
// clock).

// fsmState enumerates the pipeline controller states.
type fsmState int

const (
	// stateReset is the initial state; the first cycle loads the root.
	stateReset fsmState = iota
	// stateAwait waits for Start with Ready high and no work in flight.
	stateAwait
	// stateMemory reads one memory word per cycle (internal traversal or
	// leaf compare, distinguished by the current cut entry).
	stateMemory
)

// FSM is the cycle-stepped accelerator.
type FSM struct {
	sim *Sim

	state fsmState

	// Pins.
	ready bool

	// Register B: the packet being traversed / awaiting traversal.
	regB      rule.Packet
	regBValid bool
	// entryB is the pending cut entry for the packet in register B
	// (computed combinationally at latch time from register A).
	entryB core.CutEntry

	// Register C: the packet under comparator scan.
	regC rule.Packet
	// leaf scan cursor.
	leafWord, leafPos int
	inLeaf            bool

	// Statistics.
	cycles   int64
	memReads int64

	// completed classifications in order.
	results []FSMResult
}

// FSMResult is one completed classification with its timing.
type FSMResult struct {
	Match       int
	AcceptCycle int64 // cycle at which the packet was latched
	FinishCycle int64 // cycle at which the match/no-match resolved
}

// Latency returns the packet's latency in cycles (inclusive of the
// accept cycle's root computation).
func (r FSMResult) Latency() int { return int(r.FinishCycle - r.AcceptCycle + 1) }

// NewFSM wraps a loaded simulator in the cycle-stepped controller.
func NewFSM(s *Sim) *FSM {
	return &FSM{sim: s, state: stateReset}
}

// Ready reports the Ready pin.
func (f *FSM) Ready() bool { return f.ready }

// Cycles returns the elapsed clock cycles.
func (f *FSM) Cycles() int64 { return f.cycles }

// MemReads returns total memory words read.
func (f *FSM) MemReads() int64 { return f.memReads }

// Results returns the completed classifications so far.
func (f *FSM) Results() []FSMResult { return f.results }

// Step advances one clock cycle. start/pkt model the Start pin and input
// bus: when the FSM samples Ready high and start is asserted, pkt is
// latched into register B. It returns whether the packet was consumed.
func (f *FSM) Step(start bool, pkt rule.Packet) (consumed bool) {
	f.cycles++
	switch f.state {
	case stateReset:
		// Root word -> register A (the Sim decoded it at load time).
		f.state = stateAwait
		f.ready = true
		return false

	case stateAwait:
		if !start {
			return false
		}
		f.latch(pkt)
		f.state = stateMemory
		return true

	case stateMemory:
		// One memory word this cycle.
		if !f.inLeaf {
			e := f.entryB
			if !e.IsLeaf {
				// Internal node word: compute the next entry.
				w := f.sim.img.Words[e.Word]
				f.memReads++
				node := core.LoadNode(w)
				f.entryB = core.LoadEntry(w, node.Index(f.regB))
				return false
			}
			// First leaf word: move B -> C and raise Ready. The paper's
			// flow chart samples Start during this same compare cycle,
			// so a waiting packet is latched before the comparators
			// finish.
			f.enterLeaf(e)
			if start {
				f.latch(pkt)
				consumed = true
			}
			f.compareWord()
			return consumed
		}
		// Continuing a multi-word leaf scan; Start is still sampled
		// while Ready is high (register B may already be occupied).
		if f.ready && start {
			f.latch(pkt)
			consumed = true
		}
		f.compareWord()
		return consumed
	}
	panic("hwsim: invalid FSM state")
}

// enterLeaf transfers the packet to register C and points the comparator
// scan at the leaf's first word.
func (f *FSM) enterLeaf(e core.CutEntry) {
	f.regC = f.regB
	f.regBValid = false
	f.inLeaf = true
	f.leafWord = e.Word
	f.leafPos = e.Pos
	f.ready = true
}

// latch stores a packet in register B and computes its root entry from
// register A (no memory access — the paper's key overlap).
func (f *FSM) latch(pkt rule.Packet) {
	f.regB = pkt
	f.regBValid = true
	f.entryB = core.LoadEntry(f.sim.img.Words[0], f.sim.regA.Index(pkt))
	f.ready = false
}

// compareWord scans one leaf word with the 30 parallel comparators.
func (f *FSM) compareWord() {
	w := f.sim.img.Words[f.leafWord]
	f.memReads++
	match := -1
	end := false
	for slot := f.leafPos; slot < core.RulesPerWord; slot++ {
		er := core.LoadRule(w, slot)
		if er.MatchesPacket(f.regC) {
			match = int(er.ID)
			break
		}
		if er.End {
			end = true
			break
		}
	}
	if match >= 0 || end {
		f.complete(match)
		return
	}
	f.leafWord++
	f.leafPos = 0
}

// complete finishes the current packet and redirects the datapath to the
// packet waiting in register B, if any.
func (f *FSM) complete(match int) {
	f.results = append(f.results, FSMResult{Match: match, FinishCycle: f.cycles})
	f.inLeaf = false
	if f.regBValid {
		// The next packet's root entry is already computed; its first
		// memory word is read next cycle. Ready stays low until that
		// packet reaches its leaf.
		f.ready = false
		return
	}
	f.state = stateAwait
	f.ready = true
}

// RunPipelined drives the FSM with a back-to-back packet stream (Start
// asserted whenever Ready is high) and returns matches plus statistics; it
// must agree exactly with Sim.Run.
func (s *Sim) RunPipelined(trace []rule.Packet) ([]int, Stats, error) {
	f := NewFSM(s)
	next := 0
	accepts := make([]int64, 0, len(trace))
	// Safety bound: no packet can take more than DeviceWords cycles.
	maxCycles := int64(len(trace)+2) * int64(core.DeviceWords)
	for len(f.results) < len(trace) {
		if f.cycles > maxCycles {
			return nil, Stats{}, fmt.Errorf("hwsim: pipeline made no progress after %d cycles", f.cycles)
		}
		start := next < len(trace)
		var pkt rule.Packet
		if start {
			pkt = trace[next]
		}
		if f.Step(start, pkt) {
			accepts = append(accepts, f.cycles)
			next++
		}
	}
	matches := make([]int, len(trace))
	var st Stats
	st.Cycles = f.cycles
	st.MemReads = f.memReads
	st.Packets = int64(len(trace))
	for i, r := range f.results {
		matches[i] = r.Match
		if r.Match >= 0 {
			st.Matched++
		}
		r.AcceptCycle = accepts[i]
		lat := r.Latency()
		if lat > st.WorstLatency {
			st.WorstLatency = lat
		}
	}
	if st.Packets > 0 {
		st.AvgCyclesPerPacket = float64(st.Cycles-2) / float64(st.Packets)
		seconds := float64(st.Cycles) / s.dev.FreqHz
		st.PacketsPerSecond = float64(st.Packets) / seconds
		st.TotalEnergyJ = float64(st.Cycles) * s.dev.EnergyPerCycleJ()
		st.EnergyPerPacketJ = st.TotalEnergyJ / float64(st.Packets)
	}
	return matches, st, nil
}
