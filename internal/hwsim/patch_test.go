package hwsim

import (
	"strings"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// buildPatchSim returns a loaded simulator plus its tree for the
// word-level write-path tests.
func buildPatchSim(t *testing.T, n int, dev Device) (*Sim, *core.Tree, int) {
	t.Helper()
	rs := classbench.Generate(classbench.ACL1(), n, 51)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	img, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(img, dev)
	if err != nil {
		t.Fatal(err)
	}
	return sim, tree, len(rs)
}

// TestPatchWordsWriteInterface drives the raw word-write port: rewriting
// explicitly named words charges exactly one load cycle per word and
// reproduces a fresh encode when the dirty words are taken from a delta.
func TestPatchWordsWriteInterface(t *testing.T) {
	sim, tree, n := buildPatchSim(t, 300, ASIC)
	if sim.Device().Name != ASIC.Name {
		t.Fatalf("Device()=%q", sim.Device().Name)
	}
	if sim.Image() == nil || len(sim.Image().Words) != tree.Words() {
		t.Fatal("Image() must expose the loaded memory")
	}
	r := classbench.Generate(classbench.FW1(), 1, 53)[0]
	r.ID = n
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Words() != d.WordsBefore {
		t.Skip("structure resized; PatchWords covers the fixed-size case")
	}
	var words []int
	for _, wr := range d.DirtyWords {
		for w := wr.Lo; w < wr.Hi; w++ {
			words = append(words, w)
		}
	}
	before := sim.LoadCycles()
	wrote, err := sim.PatchWords(tree, words)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != len(words) || sim.LoadCycles() != before+int64(len(words)) {
		t.Fatalf("wrote %d words, cycles %d -> %d; want %d words at one cycle each",
			wrote, before, sim.LoadCycles(), len(words))
	}
	if err := sim.VerifyImage(tree); err != nil {
		t.Fatal(err)
	}
	// Out-of-range words must be rejected.
	if _, err := sim.PatchWords(tree, []int{tree.Words() + 5}); err == nil {
		t.Fatal("PatchWords out of range must error")
	}
}

// TestApplyDeltaCapacity checks the device-capacity guard: when churn
// grows the structure past the device's words, ApplyDelta refuses (the
// control plane must fall back to a rebuild for a bigger part).
func TestApplyDeltaCapacity(t *testing.T) {
	sim, tree, n := buildPatchSim(t, 300, ASIC)
	tiny := Device{Name: "tiny", FreqHz: 1e6, PowerW: 1, MemoryWords: tree.Words()}
	sim2, err := New(sim.Image(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	pool := classbench.Generate(classbench.FW1(), 64, 55)
	grew := false
	for i := range pool {
		r := pool[i]
		r.ID = n + i
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Words() > tiny.Capacity() {
			if _, err := sim2.ApplyDelta(tree, d); err == nil ||
				!strings.Contains(err.Error(), "holds") {
				t.Fatalf("over-capacity ApplyDelta: err=%v", err)
			}
			grew = true
			break
		}
		if _, err := sim2.ApplyDelta(tree, d); err != nil {
			t.Fatal(err)
		}
	}
	if !grew {
		t.Fatal("churn never outgrew the device; capacity guard untested")
	}
}

// TestVerifyImageDetectsDivergence corrupts the patched image and
// expects VerifyImage to name the problem, both for content and size.
func TestVerifyImageDetectsDivergence(t *testing.T) {
	sim, tree, _ := buildPatchSim(t, 200, ASIC)
	if err := sim.VerifyImage(tree); err != nil {
		t.Fatal(err)
	}
	w := len(sim.Image().Words) - 1
	sim.Image().Words[w][7] ^= 0xFF
	if err := sim.VerifyImage(tree); err == nil || !strings.Contains(err.Error(), "differs") {
		t.Fatalf("corrupted word: err=%v", err)
	}
	sim.Image().Words[w][7] ^= 0xFF
	sim.img.Words = sim.img.Words[:w]
	if err := sim.VerifyImage(tree); err == nil || !strings.Contains(err.Error(), "words") {
		t.Fatalf("truncated image: err=%v", err)
	}
}
