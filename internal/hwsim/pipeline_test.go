package hwsim

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

func TestPipelinedAgreesWithFunctionalModel(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1()} {
			sim, _, rs := buildSim(t, algo, prof, 400, 1, ASIC)
			trace := classbench.GenerateTrace(rs, 4000, 131)

			funcMatches, funcStats := sim.Run(trace)
			fsmMatches, fsmStats, err := sim.RunPipelined(trace)
			if err != nil {
				t.Fatalf("%v/%s: %v", algo, prof.Name, err)
			}
			for i := range funcMatches {
				if funcMatches[i] != fsmMatches[i] {
					t.Fatalf("%v/%s packet %d: functional=%d fsm=%d",
						algo, prof.Name, i, funcMatches[i], fsmMatches[i])
				}
			}
			if funcStats.Cycles != fsmStats.Cycles {
				t.Fatalf("%v/%s: functional %d cycles, cycle-stepped FSM %d cycles",
					algo, prof.Name, funcStats.Cycles, fsmStats.Cycles)
			}
			if funcStats.MemReads != fsmStats.MemReads {
				t.Fatalf("%v/%s: memory reads differ: %d vs %d",
					algo, prof.Name, funcStats.MemReads, fsmStats.MemReads)
			}
		}
	}
}

func TestPipelinedOnePacketPerCycle(t *testing.T) {
	// Root->single-word-leaf structure: the FSM must sustain exactly one
	// packet per clock, the paper's §4 headline behaviour.
	rs := classbench.Generate(classbench.ACL1(), 10, 132)
	tr, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	if tr.WorstCaseCycles() != 2 {
		t.Skipf("worst case %d, need 2", tr.WorstCaseCycles())
	}
	img, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(img, ASIC)
	if err != nil {
		t.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, 3000, 133)
	_, st, err := sim.RunPipelined(trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgCyclesPerPacket > 1.001 {
		t.Errorf("FSM sustained %.4f cycles/packet; want 1.0", st.AvgCyclesPerPacket)
	}
}

func TestFSMReadyProtocol(t *testing.T) {
	sim, _, rs := buildSim(t, core.HyperCuts, classbench.ACL1(), 200, 1, ASIC)
	trace := classbench.GenerateTrace(rs, 200, 134)
	f := NewFSM(sim)

	// Cycle 1 is reset: no packet may be consumed.
	if f.Step(true, trace[0]) {
		t.Fatal("packet consumed during reset cycle")
	}
	if !f.Ready() {
		t.Fatal("Ready must rise after reset")
	}
	next := 0
	for steps := 0; next < len(trace) && steps < 100000; steps++ {
		wasReady := f.Ready()
		consumed := f.Step(true, trace[next])
		if consumed {
			next++
		}
		// A packet can only be consumed on a cycle where the FSM either
		// advertised Ready beforehand or raised it while entering a leaf
		// this very cycle (the paper's same-cycle Start sampling).
		if consumed && !wasReady && f.Ready() {
			t.Fatal("impossible pin combination")
		}
	}
	if next != len(trace) {
		t.Fatalf("only %d of %d packets consumed", next, len(trace))
	}
}

func TestFSMLatencyMatchesClassifyOne(t *testing.T) {
	// With one packet in flight at a time (Start only when idle), the
	// FSM's per-packet latency equals ClassifyOne's.
	sim, _, rs := buildSim(t, core.HiCuts, classbench.IPC1(), 300, 1, ASIC)
	trace := classbench.GenerateTrace(rs, 300, 135)
	for _, p := range trace {
		f := NewFSM(sim)
		f.Step(false, p) // reset
		if !f.Step(true, p) {
			t.Fatal("packet not consumed at Ready")
		}
		accept := f.Cycles()
		for len(f.Results()) == 0 {
			f.Step(false, p)
			if f.Cycles() > 10000 {
				t.Fatal("no completion")
			}
		}
		lat := int(f.Results()[0].FinishCycle - accept + 1)
		want := sim.ClassifyOne(p)
		if lat != want.LatencyCycles {
			t.Fatalf("FSM latency %d, ClassifyOne %d", lat, want.LatencyCycles)
		}
		if f.Results()[0].Match != want.Match {
			t.Fatalf("FSM match %d, ClassifyOne %d", f.Results()[0].Match, want.Match)
		}
	}
}

func TestFSMIdleWithoutStart(t *testing.T) {
	sim, _, _ := buildSim(t, core.HiCuts, classbench.ACL1(), 100, 1, ASIC)
	f := NewFSM(sim)
	for i := 0; i < 50; i++ {
		if f.Step(false, rulePacketZero) {
			t.Fatal("consumed a packet with Start low")
		}
	}
	if f.MemReads() != 0 {
		t.Errorf("idle FSM performed %d memory reads", f.MemReads())
	}
	if !f.Ready() {
		t.Error("idle FSM should stay Ready")
	}
}

var rulePacketZero = classbench.GenerateTrace(nil, 1, 1)[0]
