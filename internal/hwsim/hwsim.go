// Package hwsim is a cycle-accurate software model of the paper's packet
// classification hardware accelerator (paper §4, Figures 4 and 5).
//
// The modelled datapath:
//
//   - A 4800-bit wide memory (up to 1024 words on the paper's device)
//     delivering one full word per clock cycle.
//   - Register A holds the decision tree's root node, transferred from
//     memory word 0 in one cycle when Reset is asserted.
//   - Register B latches the incoming packet when Start is asserted while
//     Ready is high; the root child index is computed from registers A
//     and B with the mask/shift/add datapath (no memory access).
//   - Internal-node traversal reads one memory word per cycle; the word's
//     mask/shift header and the packet in register B select the next cut
//     entry combinationally.
//   - When a leaf is reached the packet moves to register C and 30
//     parallel comparators search one memory word of rules per cycle; the
//     Ready pin rises during the compare so the next packet can be
//     latched into register B and its root index precomputed. This
//     overlap hides one cycle per packet — the accelerator classifies one
//     packet per clock when the worst-case path is two cycles.
//
// Because the simulator interprets the encoded memory image (the same
// bits a VHDL implementation would read), its results are checked in
// tests against the analytical Eq. 5/7 predictions of internal/core.
//
// Mapping to paper Figure 4:
//
//	Figure 4 component          -> code
//	Main memory (134 BRAMs)     -> core.Image.Words ([][]byte, 600 B each)
//	Reg A (root node)           -> Sim.regA (core.NodeWord)
//	Reg B (incoming packet)     -> FSM.regB (pipeline.go)
//	Reg C (packet in compare)   -> FSM.regC
//	Mask/shift/add unit         -> core.NodeWord.Index
//	30 comparator blocks        -> core.EncodedRule.MatchesPacket per slot
//	Start/Ready pins            -> FSM.Step arguments / FSM.Ready
//	Write interface             -> Sim.LoadCycles (one word per cycle)
//
// The flow chart of Figure 5 is implemented state-for-state in
// pipeline.go (FSM.Step).
package hwsim

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
)

// Device describes an implementation target of the accelerator. The two
// predefined devices carry the post-place-and-route figures of paper
// Table 5; power values are the normalized (65 nm, 1 V) numbers so energy
// comparisons against the SA-1100 software model are like-for-like.
type Device struct {
	// Name identifies the device.
	Name string
	// FreqHz is the operating clock frequency.
	FreqHz float64
	// PowerW is the normalized average power drawn while classifying.
	PowerW float64
	// IncludesMemory records whether PowerW covers the search-structure
	// memory (true for the FPGA figure, false for ASIC/SA-1100; paper
	// §5.1 notes the asymmetry).
	IncludesMemory bool
	// MemoryWords is the device's search-structure capacity in 4800-bit
	// words; 0 selects the paper's baseline of 1024 (614,400 bytes).
	MemoryWords int
}

// Capacity returns the device's memory capacity in words.
func (d Device) Capacity() int {
	if d.MemoryWords > 0 {
		return d.MemoryWords
	}
	return core.DeviceWords
}

// Predefined devices (paper Table 5).
var (
	// FPGA is the Xilinx Virtex5SX95T implementation: 77 MHz, 1.811 W
	// including block RAM, 3280 slices, 134 block RAMs.
	FPGA = Device{Name: "Virtex5SX95T", FreqHz: 77e6, PowerW: 1.811, IncludesMemory: true}
	// ASIC is the TSMC 65 nm implementation: 226 MHz, 18.32 mW
	// normalized datapath power, 51,488 NAND-equivalent gates.
	ASIC = Device{Name: "ASIC-65nm", FreqHz: 226e6, PowerW: 0.01832}
	// FPGALarge is the paper's §3 scale-up option: "this could easily be
	// doubled to 2048 memory words and implemented on devices such as
	// the Virtex XC5VLX330T which can store up to 1,458,000 bytes"
	// (2430 words). The paper reports no power figure for this part;
	// the SX95T figure is reused here as a lower bound, so energy
	// numbers for this device are indicative only.
	FPGALarge = Device{Name: "VirtexXC5VLX330T", FreqHz: 77e6, PowerW: 1.811,
		IncludesMemory: true, MemoryWords: 1458000 / core.WordBytes}
)

// EnergyPerCycleJ returns the device's energy per clock cycle.
func (d Device) EnergyPerCycleJ() float64 { return d.PowerW / d.FreqHz }

// Sim is an accelerator instance with a loaded search structure.
type Sim struct {
	img *core.Image
	dev Device

	// regA caches the decoded root node (register A).
	regA core.NodeWord

	// loadCycles counts the cycles spent on the write interface so far:
	// the initial full load plus one cycle per word rewritten by
	// ApplyDelta/PatchWords (the paper's §4 update path charges only the
	// dirty words, not a reload).
	loadCycles int64
}

// New loads the encoded image into a simulated accelerator. The load
// models the shared write interface: one word per cycle through the
// write_enable/write_address port.
func New(img *core.Image, dev Device) (*Sim, error) {
	if len(img.Words) == 0 {
		return nil, fmt.Errorf("hwsim: empty image")
	}
	if len(img.Words) > dev.Capacity() {
		return nil, fmt.Errorf("hwsim: image needs %d words; %s holds %d (paper §3 suggests larger parts such as the XC5VLX330T)",
			len(img.Words), dev.Name, dev.Capacity())
	}
	s := &Sim{img: img, dev: dev}
	s.regA = core.LoadNode(img.Words[0]) // Reset: root -> register A
	s.loadCycles = int64(len(img.Words)) + 1
	return s, nil
}

// LoadCycles is the cumulative cycle count of the write interface: the
// initial structure load (one word per cycle plus the root transfer) and
// every word written since by the incremental update path. With deltas
// applied word-by-word, sustained updates charge cycles proportional to
// the words they dirty — not to the structure size.
func (s *Sim) LoadCycles() int64 { return s.loadCycles }

// Image returns the loaded memory image (the simulator's live device
// memory — treat as read-only; use ApplyDelta/PatchWords to modify it).
func (s *Sim) Image() *core.Image { return s.img }

// ApplyDelta replays one or more consecutive update deltas into the
// device memory word-by-word through the write interface: only the words
// the deltas dirtied are rewritten (core.Tree.PatchImage), and
// LoadCycles is charged one cycle per written word. t must be the tree
// the deltas were taken from, in its current (post-update) state; the
// deltas must cover the whole history since the image was last written,
// in order. This is the hardware half of the paper's §4 update story —
// the control-plane processor patches the off-chip copy and pushes just
// the changed words to the accelerator.
//
// On error (the structure outgrew the device, or a delta is invalid for
// this image) the image may hold a partial rewrite; reload with a full
// re-encode, exactly as a real control plane would.
func (s *Sim) ApplyDelta(t *core.Tree, ds ...*core.Delta) (int, error) {
	if t.Words() > s.dev.Capacity() {
		return 0, fmt.Errorf("hwsim: updated structure needs %d words; %s holds %d",
			t.Words(), s.dev.Name, s.dev.Capacity())
	}
	n, err := t.PatchImage(s.img, ds...)
	if err != nil {
		return n, err
	}
	// Internal-node cut headers are invariant under incremental updates,
	// so the cached register A (masks/shifts of word 0) stays valid even
	// when word 0's cut entries were repointed.
	s.loadCycles += int64(n)
	return n, nil
}

// PatchWords rewrites the given memory words from the tree's current
// state, one word per cycle through the write interface. It is the raw
// write port under ApplyDelta, exposed for callers that track dirty
// words themselves. The words must lie within the current image (use
// ApplyDelta when the structure's word count changed).
func (s *Sim) PatchWords(t *core.Tree, words []int) (int, error) {
	if err := t.EncodeWords(s.img, words); err != nil {
		return 0, err
	}
	s.loadCycles += int64(len(words))
	return len(words), nil
}

// VerifyImage cross-checks the (possibly word-patched) device memory
// against a full re-encode of the tree, byte for byte. It is the
// hardware-image analogue of engine.VerifyPatched: the update-churn
// benchmark and the differential tests run it before trusting any number
// produced from a patched image.
func (s *Sim) VerifyImage(t *core.Tree) error {
	fresh, err := t.Encode()
	if err != nil {
		return fmt.Errorf("hwsim: verify re-encode: %w", err)
	}
	if len(fresh.Words) != len(s.img.Words) {
		return fmt.Errorf("hwsim: patched image has %d words, fresh encode %d", len(s.img.Words), len(fresh.Words))
	}
	for i := range fresh.Words {
		if !bytes.Equal(fresh.Words[i], s.img.Words[i]) {
			return fmt.Errorf("hwsim: word %d of patched image differs from fresh encode", i)
		}
	}
	return nil
}

// Result is the outcome of classifying one packet.
type Result struct {
	// Match is the matching rule ID, or -1.
	Match int
	// MemReads is the number of memory words read: internal nodes after
	// the root plus leaf words scanned.
	MemReads int
	// LatencyCycles is the unpipelined latency: one cycle of root-index
	// computation plus one cycle per memory read (Eqs. 5 and 7).
	LatencyCycles int
}

// ClassifyOne runs a single packet through the datapath.
func (s *Sim) ClassifyOne(p rule.Packet) Result {
	res := Result{Match: -1}
	// Cycle 1: root child index from registers A and B.
	entry := core.LoadEntry(s.img.Words[0], s.regA.Index(p))
	// Internal traversal: one word read per cycle.
	for !entry.IsLeaf {
		w := s.img.Words[entry.Word]
		res.MemReads++
		node := core.LoadNode(w)
		entry = core.LoadEntry(w, node.Index(p))
	}
	// Leaf search: one word per cycle, 30 comparators in parallel; the
	// leaf's window runs from the entry position to the end-flagged slot.
	word, pos := entry.Word, entry.Pos
	for {
		w := s.img.Words[word]
		res.MemReads++
		endSeen := false
		for slot := pos; slot < core.RulesPerWord; slot++ {
			er := core.LoadRule(w, slot)
			if er.MatchesPacket(p) {
				res.Match = int(er.ID)
				res.LatencyCycles = res.MemReads + 1
				return res
			}
			if er.End {
				endSeen = true
				break
			}
		}
		if endSeen {
			break
		}
		word++
		pos = 0
	}
	res.LatencyCycles = res.MemReads + 1
	return res
}

// Stats aggregates a trace run.
type Stats struct {
	Packets  int64
	Matched  int64
	MemReads int64
	// Cycles is the total pipelined cycle count for the stream: the
	// reset cycle, the first packet's root cycle, then one cycle per
	// memory read (root computations of later packets overlap the leaf
	// search of their predecessors, paper §4).
	Cycles int64
	// WorstLatency is the largest single-packet latency observed.
	WorstLatency int
	// AvgCyclesPerPacket is the sustained pipelined cost per packet.
	AvgCyclesPerPacket float64
	// PacketsPerSecond is the throughput at the device clock (Table 7).
	PacketsPerSecond float64
	// EnergyPerPacketJ is the average classification energy (Table 6).
	EnergyPerPacketJ float64
	// TotalEnergyJ is energy over the whole stream.
	TotalEnergyJ float64
}

// Run classifies every packet of trace and returns per-packet matches
// along with aggregate statistics.
func (s *Sim) Run(trace []rule.Packet) ([]int, Stats) {
	matches := make([]int, len(trace))
	var st Stats
	st.Cycles = 2 // reset (root -> register A) + first packet's root cycle
	for i, p := range trace {
		r := s.ClassifyOne(p)
		matches[i] = r.Match
		st.Packets++
		if r.Match >= 0 {
			st.Matched++
		}
		st.MemReads += int64(r.MemReads)
		st.Cycles += int64(r.MemReads) // root cycles overlap predecessors
		if r.LatencyCycles > st.WorstLatency {
			st.WorstLatency = r.LatencyCycles
		}
	}
	if st.Packets > 0 {
		st.AvgCyclesPerPacket = float64(st.Cycles-2) / float64(st.Packets)
		seconds := float64(st.Cycles) / s.dev.FreqHz
		st.PacketsPerSecond = float64(st.Packets) / seconds
		st.TotalEnergyJ = float64(st.Cycles) * s.dev.EnergyPerCycleJ()
		st.EnergyPerPacketJ = st.TotalEnergyJ / float64(st.Packets)
	}
	return matches, st
}

// RunVerified classifies the trace like Run while cross-checking every
// match against the flat software engine handed in — compiled fresh from
// the same tree, or built by a chain of engine.Patch calls from an older
// compile. The simulator interprets the encoded 4800-bit words and the
// engine walks its own flat arrays, so agreement pins the image
// encoding, the simulated datapath and the software fast path (patched
// or fresh) to each other packet by packet. A mismatch aborts with an
// error naming the first divergent packet.
func (s *Sim) RunVerified(trace []rule.Packet, eng *engine.Engine) ([]int, Stats, error) {
	matches, st := s.Run(trace)
	want := make([]int32, len(trace))
	eng.ClassifyBatch(trace, want)
	for i := range trace {
		if int32(matches[i]) != want[i] {
			return matches, st, fmt.Errorf("hwsim: packet %d: simulator matched rule %d, engine matched %d",
				i, matches[i], want[i])
		}
	}
	return matches, st, nil
}

// WorstCaseThroughputPPS returns the guaranteed minimum throughput for a
// structure with the given worst-case cycle count (paper §5.2: the worst
// case also bounds the sustainable rate; the pipeline overlap saves one
// cycle).
func WorstCaseThroughputPPS(dev Device, worstCaseCycles int) float64 {
	eff := worstCaseCycles - 1
	if eff < 1 {
		eff = 1
	}
	return dev.FreqHz / float64(eff)
}

// Device returns the simulated device.
func (s *Sim) Device() Device { return s.dev }
