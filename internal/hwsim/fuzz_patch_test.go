package hwsim

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// FuzzPatchWords drives arbitrary insert/delete churn through the
// word-level device-write path (Sim.ApplyDelta) and requires the
// patched memory image to stay byte-identical to a full re-encode of
// the tree after every step — the differential verification of the
// paper's §4 claim that an update is a handful of word writes. Deltas
// are applied one by one or accumulated into bursts (the lazy batching
// repro.Accelerator uses), driven by the fuzzed op stream.
//
// Run in CI as a 15s smoke (`go test -fuzz=FuzzPatchWords`); the seed
// corpus alone exercises the path in every ordinary `go test` run.
func FuzzPatchWords(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, int64(1))
	f.Add([]byte{1, 3, 5, 7, 9, 250, 251, 252}, int64(2008))
	f.Add([]byte{0, 0, 2, 2, 4, 4, 128, 130, 132}, int64(61))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		seed = seed&0xff + 1
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			rs := classbench.Generate(classbench.ACL1(), 120, seed)
			pool := classbench.Generate(classbench.FW1(), 40, seed+1)
			tree, err := core.Build(rs, core.DefaultConfig(algo))
			if err != nil {
				t.Fatalf("%v: Build: %v", algo, err)
			}
			img, err := tree.Encode()
			if err != nil {
				t.Fatalf("%v: Encode: %v", algo, err)
			}
			dev := Device{Name: "fuzz-4096w", FreqHz: 1e6, PowerW: 1, MemoryWords: 1 << core.PointerBits}
			sim, err := New(img, dev)
			if err != nil {
				t.Fatalf("%v: New: %v", algo, err)
			}
			next := 0
			var batch []*core.Delta
			cycles := sim.LoadCycles()
			for _, b := range ops {
				var d *core.Delta
				if b&1 == 0 && next < len(pool) {
					r := pool[next]
					next++
					r.ID = tree.NumRules()
					if d, err = tree.InsertDelta(r); err != nil {
						t.Fatalf("%v: InsertDelta: %v", algo, err)
					}
				} else {
					id := int(b>>1) % tree.NumRules()
					if d, err = tree.DeleteDelta(id); err != nil {
						t.Fatalf("%v: DeleteDelta(%d): %v", algo, id, err)
					}
				}
				batch = append(batch, d)
				if b&2 != 0 {
					continue // accumulate a burst, apply later
				}
				written, err := sim.ApplyDelta(tree, batch...)
				if err != nil {
					t.Fatalf("%v: ApplyDelta: %v", algo, err)
				}
				batch = batch[:0]
				if got := sim.LoadCycles(); got != cycles+int64(written) {
					t.Fatalf("%v: LoadCycles %d, want %d+%d", algo, got, cycles, written)
				}
				cycles += int64(written)
				if err := sim.VerifyImage(tree); err != nil {
					t.Fatalf("%v: after op: %v", algo, err)
				}
			}
			if len(batch) > 0 {
				if _, err := sim.ApplyDelta(tree, batch...); err != nil {
					t.Fatalf("%v: final ApplyDelta: %v", algo, err)
				}
				if err := sim.VerifyImage(tree); err != nil {
					t.Fatalf("%v: final: %v", algo, err)
				}
			}
		}
	})
}
