// Package flowcache is a sharded, fixed-size, zero-allocation exact-match
// flow cache: packet 5-tuple -> matched rule ID, stamped with the epoch of
// the engine snapshot that produced the answer.
//
// It fronts the flat classification engine for the traffic shape real
// links are dominated by — packet trains repeating the same 5-tuple — so
// the common case becomes one hash probe instead of a full tree walk. The
// paper's accelerator wins by making the common case cheap (30 parallel
// comparators over one memory word); this cache is the software twin of
// that idea applied one level up, exploiting flow locality instead of
// rule-set structure.
//
// Correctness under live updates rides on the epoch protocol of
// engine.Handle: every cached entry carries the snapshot epoch it was
// computed at, and a lookup only hits when the entry's epoch equals the
// reader's current epoch. Any Insert/Delete/recompile bumps the epoch, so
// every cached answer that could have been invalidated simply stops
// matching — stale entries are dropped on first touch (never revalidated:
// revalidation would cost the tree walk the cache exists to avoid, and
// the repopulating walk refreshes the entry anyway). Cached results are
// therefore always packet-exact for the epoch the caller presents.
//
// Concurrency and layout: the hit path must beat a warm tree walk (tens
// of ns), so it takes no lock and performs no read-modify-write — a hit
// is four atomic loads from one 24-byte entry (three words: the src/dst
// key; a sequence counter packed with the port/proto key; the epoch
// packed with the rule ID). Writers (miss repopulation, stale drops) are
// the rare path; they serialize on a per-shard mutex and publish entries
// with an odd/even sequence protocol, so a reader racing a writer
// observes a torn sequence and treats the probe as a miss. The table is
// split into power-of-two shards so concurrent writers rarely contend.
// All storage is allocated at construction; Probe and Insert allocate
// nothing.
package flowcache

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/rule"
)

// setWays is the set associativity: a key can live in any of its set's
// ways, absorbing hash collisions that would thrash a direct-mapped table
// under Zipf-skewed flow popularity.
const setWays = 4

// maxShards bounds the shard count; 64 uncontended write locks
// comfortably cover any realistic GOMAXPROCS fan-out.
const maxShards = 64

// Field packing. The 104-bit 5-tuple splits into the 64-bit address key
// (w0) and the 40-bit port/proto key, which shares w1 with a 24-bit
// sequence counter. w2 packs the epoch stamp (40 bits) with the rule ID
// (24 bits, stored as rid+1 so the zero word means "empty").
//
//	w0: srcIP(32) | dstIP(32)
//	w1: seq(24)   | srcPort(16) dstPort(16) proto(8)
//	w2: epoch1(40)| rid+1(24)
//
// The 24-bit seq wraps after 16M writes to one entry — a reader would
// need to stall inside a four-load window while that happens, so the ABA
// hazard is unreachable. The 40-bit epoch stamp wraps after ~10^12
// update bursts and an entry would have to sit untouched across the
// whole wrap to ever false-hit; rule IDs are capped at MaxRuleID
// (larger IDs are simply not cached).
const (
	key1Bits  = 40
	key1Mask  = 1<<key1Bits - 1
	seqOddBit = 1 << key1Bits // lowest seq bit: odd = write in progress

	ridBits = 24
	ridMask = 1<<ridBits - 1
)

// MaxRuleID is the largest rule ID the cache can store (2^24 - 2, over
// 16M rules). Answers for larger IDs pass through uncached.
const MaxRuleID = ridMask - 1

// entry is one cached flow, readable lock-free: w1's sequence bracket
// guards w0 and w2, so four loads (w1, w0, w2, w1) give a consistent
// snapshot or a detectable tear.
type entry struct {
	w0 atomic.Uint64
	w1 atomic.Uint64
	w2 atomic.Uint64
}

// set is one associativity group, sized so the compiler drops bounds
// checks on way probes.
type set [setWays]entry

// shard is one write-lock domain: the sets live in the Cache's single
// flat array (the read path indexes it directly, one dependent load
// fewer); a set's shard is its index's high bits. All shard fields are
// mutated only under mu.
type shard struct {
	mu       sync.Mutex // serializes writers (Insert, stale drops)
	victim   uint32     // round-robin replacement cursor
	stale    uint64
	inserts  uint64
	evicts   uint64
	occupied int

	_ [72]byte // keep neighbouring shards' write state off one cache line
}

// Cache is a sharded epoch-aware flow cache. All methods are safe for
// concurrent use.
type Cache struct {
	sets     []set
	idxShift uint32 // hash >> idxShift = set index (top log2(len(sets)) bits)
	shardSh  uint32 // set index >> shardSh = shard index
	shards   []shard

	// hits/misses live on the Cache, not the shards: the lock-free hit
	// path must not pay a read-modify-write per packet, so batch callers
	// use Probe and flush their local tallies here via NoteLookups once
	// per batch; only the convenience Lookup counts per call.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Stats is a point-in-time aggregate of the cache counters.
type Stats struct {
	// Hits counts lookups answered from the cache at the caller's epoch.
	Hits uint64
	// Misses counts lookups that fell through to the tree walk (empty
	// slot, different flow, torn racing write, or stale epoch — stale
	// ones are also counted in StaleEvictions).
	Misses uint64
	// StaleEvictions counts entries dropped because a lookup or insert
	// touched them with a newer epoch: the invalidation signal of the
	// update pipeline doing its job.
	StaleEvictions uint64
	// Evictions counts live same-epoch entries displaced by Insert when a
	// set was full (capacity pressure, not invalidation).
	Evictions uint64
	// Inserts counts repopulations after a miss.
	Inserts uint64
	// Occupied is the number of live entries; Capacity the fixed total.
	Occupied, Capacity int
	// Shards is the number of lock domains.
	Shards int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// DefaultEntries is the capacity New substitutes for a non-positive
// request: 64k flows, a few MB, sized for one busy edge link.
const DefaultEntries = 1 << 16

// New builds a cache with at least entries slots (rounded up to a power
// of two, minimum one set per shard). entries <= 0 selects
// DefaultEntries.
func New(entries int) *Cache {
	if entries <= 0 {
		entries = DefaultEntries
	}
	total := ceilPow2(entries)
	if total < setWays {
		total = setWays
	}
	// One shard per ~1k entries up to maxShards: small caches stay
	// single-shard (no wasted fixed cost), big ones spread writers out.
	nShards := ceilPow2(total / 1024)
	if nShards < 1 {
		nShards = 1
	}
	if nShards > maxShards {
		nShards = maxShards
	}
	perShard := total / nShards
	if perShard < setWays {
		perShard = setWays
	}
	setsPerShard := perShard / setWays
	totalSets := setsPerShard * nShards
	c := &Cache{
		sets:     make([]set, totalSets),
		idxShift: uint32(64 - bits.TrailingZeros(uint(totalSets))),
		shardSh:  uint32(bits.TrailingZeros(uint(setsPerShard))),
		shards:   make([]shard, nShards),
	}
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// packKey packs p into the address word and the 40-bit port/proto key.
// The packing is injective, so key equality is exact 5-tuple equality —
// the cache never aliases flows.
func packKey(p rule.Packet) (uint64, uint64) {
	k0 := uint64(p.SrcIP)<<32 | uint64(p.DstIP)
	k1 := uint64(p.SrcPort)<<24 | uint64(p.DstPort)<<8 | uint64(p.Proto)
	return k0, k1
}

// hash spreads the key with one multiply; the set index comes from the
// high bits of the product, which depend on every input bit.
func hash(k0, k1 uint64) uint64 {
	return (k0 ^ bits.RotateLeft64(k1, 21)) * 0x9e3779b97f4a7c15
}

// setIndex maps a packed key to its set using the top log2(len(sets))
// bits of the hash (the best-mixed bits of the multiply, and enough of
// them for any table size); the set's shard (write-lock domain) is
// setIndex >> shardSh.
func (c *Cache) setIndex(k0, k1 uint64) uint32 {
	return uint32(hash(k0, k1) >> c.idxShift)
}

// Lookup is Probe plus hit/miss accounting: use it for one-off lookups.
// Batch loops should call Probe and flush one NoteLookups per batch, so
// the hit path stays free of read-modify-writes.
func (c *Cache) Lookup(p rule.Packet, epoch uint64) (int32, bool) {
	rid, ok := c.Probe(p, epoch)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return rid, ok
}

// NoteLookups adds a batch's locally tallied hit/miss counts to the
// cache statistics (see Probe).
func (c *Cache) NoteLookups(hits, misses uint64) {
	if hits != 0 {
		c.hits.Add(hits)
	}
	if misses != 0 {
		c.misses.Add(misses)
	}
}

// Probe returns the cached rule ID for p if an entry exists for exactly
// this 5-tuple at exactly this epoch, without touching the hit/miss
// counters (the caller tallies and flushes via NoteLookups). An entry
// found at an older epoch is dropped (stale eviction) and reported as a
// miss, so the caller's tree walk both serves the packet and frees the
// slot for the repopulating Insert. The hit path takes no lock and
// performs no read-modify-write; Probe allocates nothing.
//
//repro:hotpath
func (c *Cache) Probe(p rule.Packet, epoch uint64) (int32, bool) {
	k0, k1 := packKey(p)
	return c.probeSet(c.setIndex(k0, k1), k0, k1, (epoch+1)<<ridBits)
}

// probeSet is the one copy of the lock-free read protocol, shared by
// Probe and ProbeBatch; ep1 is the caller's epoch stamp in w2's window.
func (c *Cache) probeSet(si uint32, k0, k1, ep1 uint64) (int32, bool) {
	st := &c.sets[si]
	for w := 0; w < setWays; w++ {
		e := &st[w]
		v1 := e.w1.Load()
		if v1&key1Mask != k1 || v1&seqOddBit != 0 {
			continue // different port/proto key, or mid-write
		}
		if e.w0.Load() != k0 {
			continue
		}
		w2 := e.w2.Load()
		if e.w1.Load() != v1 {
			continue // torn read raced a writer: miss
		}
		// w1 was even and unchanged around the w0/w2 loads, so all three
		// words belong to one write generation.
		if w2 == 0 {
			continue // empty
		}
		stamp := w2 &^ uint64(ridMask)
		switch {
		case stamp == ep1:
			return int32(w2&ridMask) - 1, true
		case stamp < ep1:
			// Same flow, older epoch: an update could have changed the
			// answer. Drop, don't revalidate.
			c.dropStale(&c.shards[si>>c.shardSh], e, k0, k1, ep1)
		}
		// stamp > ep1: the entry is newer than the reader's snapshot
		// (the reader lags the updater) — miss for this reader, but the
		// entry stays live for current-epoch readers.
		break
	}
	return 0, false
}

// NoEntry is the sentinel ProbeBatch writes for packets with no usable
// cache entry. It is distinct from every cacheable answer (-1, the
// no-rule-matches answer, is cacheable).
const NoEntry int32 = -2

// ProbeBatch probes every packet at one epoch, writing cached answers to
// out[i] and NoEntry for misses, and returns the number of hits. It is
// Probe without the per-packet call overhead — the batch loop keeps the
// hash and probe state in registers — and like Probe it takes no lock,
// performs no read-modify-write on the hit path, allocates nothing, and
// leaves hit/miss accounting to the caller (NoteLookups). out must be at
// least as long as pkts.
//
//repro:hotpath
func (c *Cache) ProbeBatch(pkts []rule.Packet, epoch uint64, out []int32) int {
	_ = out[:len(pkts)]
	ep1 := (epoch + 1) << ridBits
	hits := 0
	for i := range pkts {
		k0, k1 := packKey(pkts[i])
		if rid, ok := c.probeSet(c.setIndex(k0, k1), k0, k1, ep1); ok {
			out[i] = rid
			hits++
		} else {
			out[i] = NoEntry
		}
	}
	return hits
}

// dropStale clears one stale entry under the shard write lock,
// re-verifying it still holds the expected flow at an old epoch (a
// racing writer may have repopulated it).
func (c *Cache) dropStale(sh *shard, e *entry, k0, k1, ep1 uint64) {
	sh.mu.Lock()
	v1 := e.w1.Load()
	w2 := e.w2.Load()
	if v1&key1Mask == k1 && e.w0.Load() == k0 && w2 != 0 && w2&^uint64(ridMask) < ep1 {
		e.w1.Store(v1 + seqOddBit) // odd: readers miss
		e.w0.Store(0)
		e.w2.Store(0)
		e.w1.Store((v1 + 2*seqOddBit) &^ uint64(key1Mask)) // even, empty key
		sh.occupied--
		sh.stale++
	}
	sh.mu.Unlock()
}

// Insert caches rid as the answer for p at epoch (rid may be -1: misses
// are cached too). If the flow is already present (any epoch) its entry
// is overwritten in place; otherwise an empty or stale way is used, and
// with the set full a round-robin victim is evicted. Rule IDs above
// MaxRuleID are not cached. Insert allocates nothing.
//
//repro:hotpath
func (c *Cache) Insert(p rule.Packet, epoch uint64, rid int32) {
	if rid < -1 || int64(rid)+1 > ridMask {
		return
	}
	k0, k1 := packKey(p)
	si := c.setIndex(k0, k1)
	st := &c.sets[si]
	sh := &c.shards[si>>c.shardSh]
	ep1 := (epoch + 1) << ridBits
	sh.mu.Lock()
	// Choose the slot first, account after: a tentative choice must not
	// touch the counters, or an empty/stale way charged before a
	// same-flow way is found later in the set would corrupt them.
	const (
		refresh = iota // same flow already present (any epoch)
		empty          // unused way
		stale          // different flow at an older epoch: drop it
		evict          // live same-epoch flow displaced (capacity)
	)
	slot, kind := -1, evict
	for w := 0; w < setWays; w++ {
		e := &st[w]
		w2 := e.w2.Load()
		if w2 != 0 && e.w1.Load()&key1Mask == k1 && e.w0.Load() == k0 {
			slot, kind = w, refresh
			break
		}
		if slot < 0 && (w2 == 0 || w2&^uint64(ridMask) < ep1) {
			slot = w // first empty or stale way
			if w2 == 0 {
				kind = empty
			} else {
				kind = stale
			}
		}
	}
	if slot < 0 {
		// Set full of live same-epoch flows: displace the round-robin
		// victim.
		slot = int(sh.victim) % setWays
		sh.victim++
	}
	e := &st[slot]
	seq := e.w1.Load() &^ uint64(key1Mask)
	e.w1.Store(seq + seqOddBit) // odd: readers miss while we write
	e.w0.Store(k0)
	e.w2.Store(ep1 | uint64(rid+1))
	e.w1.Store(seq + 2*seqOddBit + k1) // even, new key published
	switch kind {
	case refresh: // net occupancy unchanged
	case empty:
		sh.occupied++
	case stale: // one dropped, one added
		sh.stale++
	case evict: // one displaced, one added
		sh.evicts++
	}
	sh.inserts++
	sh.mu.Unlock()
}

// Stats sums the cache counters. The aggregate is approximate under
// concurrent traffic but every counter is individually consistent.
func (c *Cache) Stats() Stats {
	var s Stats
	s.Shards = len(c.shards)
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.StaleEvictions += sh.stale
		s.Evictions += sh.evicts
		s.Inserts += sh.inserts
		s.Occupied += sh.occupied
		sh.mu.Unlock()
	}
	s.Capacity = len(c.sets) * setWays
	return s
}

// Reset drops every entry and zeroes the counters. Concurrent lookups
// simply miss and repopulate.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		lo := i << c.shardSh
		hi := lo + 1<<c.shardSh
		for j := lo; j < hi; j++ {
			for w := 0; w < setWays; w++ {
				e := &c.sets[j][w]
				seq := e.w1.Load() &^ uint64(key1Mask)
				e.w1.Store(seq + seqOddBit)
				e.w0.Store(0)
				e.w2.Store(0)
				e.w1.Store(seq + 2*seqOddBit)
			}
		}
		sh.stale, sh.inserts, sh.evicts = 0, 0, 0
		sh.occupied = 0
		sh.victim = 0
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
}

// Cap returns the fixed total entry capacity.
func (c *Cache) Cap() int { return len(c.sets) * setWays }
