package flowcache

import (
	"testing"

	"repro/internal/rule"
)

func BenchmarkProbeHot(b *testing.B) {
	c := New(1 << 14)
	p := rule.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	c.Insert(p, 7, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Probe(p, 7); !ok {
			b.Fatal("miss")
		}
	}
}
