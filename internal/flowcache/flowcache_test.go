package flowcache

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rule"
)

func pkt(i uint32) rule.Packet {
	return rule.Packet{
		SrcIP:   i * 2654435761,
		DstIP:   ^i,
		SrcPort: uint16(i),
		DstPort: uint16(i >> 3),
		Proto:   uint8(i),
	}
}

func TestLookupInsertRoundTrip(t *testing.T) {
	c := New(1024)
	p := pkt(7)
	if _, ok := c.Lookup(p, 3); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(p, 3, 42)
	rid, ok := c.Lookup(p, 3)
	if !ok || rid != 42 {
		t.Fatalf("Lookup = (%d,%v), want (42,true)", rid, ok)
	}
	// A different 5-tuple must not alias.
	if _, ok := c.Lookup(pkt(8), 3); ok {
		t.Fatal("hit for a flow never inserted")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Inserts != 1 || s.Occupied != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestStaleEpochFallthrough is the invalidation protocol: an entry
// stamped at an older epoch must miss, be dropped (not revalidated), and
// be replaced by the repopulating insert at the new epoch.
func TestStaleEpochFallthrough(t *testing.T) {
	c := New(1024)
	p := pkt(1)
	c.Insert(p, 5, 10)
	if rid, ok := c.Lookup(p, 5); !ok || rid != 10 {
		t.Fatalf("same-epoch lookup = (%d,%v)", rid, ok)
	}
	// Epoch advanced (an update happened): the entry is now stale.
	if _, ok := c.Lookup(p, 6); ok {
		t.Fatal("stale-epoch lookup hit")
	}
	s := c.Stats()
	if s.StaleEvictions != 1 {
		t.Fatalf("StaleEvictions = %d, want 1", s.StaleEvictions)
	}
	if s.Occupied != 0 {
		t.Fatalf("stale entry not dropped: occupied = %d", s.Occupied)
	}
	// Older-epoch lookups must not resurrect it either (epochs only
	// advance; an exact-epoch match is required).
	c.Insert(p, 7, 11)
	if _, ok := c.Lookup(p, 6); ok {
		t.Fatal("entry from epoch 7 served to an epoch-6 reader")
	}
	if rid, ok := c.Lookup(p, 7); !ok || rid != 11 {
		t.Fatalf("repopulated lookup = (%d,%v)", rid, ok)
	}
}

// TestInsertRefreshesStaleAndDuplicate: inserting the same flow again
// (new epoch or new answer) overwrites in place — occupancy must not
// grow, and the newest answer wins.
func TestInsertRefreshes(t *testing.T) {
	c := New(1024)
	p := pkt(2)
	c.Insert(p, 1, 5)
	c.Insert(p, 2, 6)
	c.Insert(p, 2, 7)
	if got := c.Stats().Occupied; got != 1 {
		t.Fatalf("occupied = %d after refreshing one flow", got)
	}
	if rid, ok := c.Lookup(p, 2); !ok || rid != 7 {
		t.Fatalf("Lookup = (%d,%v), want (7,true)", rid, ok)
	}
}

// TestSetEviction fills the cache far past capacity: occupancy must stay
// bounded by the fixed capacity, capacity evictions must be counted, and
// recently inserted flows must still be retrievable.
func TestSetEviction(t *testing.T) {
	c := New(64) // tiny: single shard, 16 sets x 4 ways
	capacity := c.Cap()
	n := capacity * 8
	for i := 0; i < n; i++ {
		c.Insert(pkt(uint32(i)), 1, int32(i))
	}
	s := c.Stats()
	if s.Occupied > capacity {
		t.Fatalf("occupied %d exceeds capacity %d", s.Occupied, capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("no capacity evictions after 8x oversubscription")
	}
	if s.Inserts != uint64(n) {
		t.Fatalf("inserts = %d, want %d", s.Inserts, n)
	}
	// The last-inserted flow of every set survived (round-robin victims
	// never displace the slot just written).
	if rid, ok := c.Lookup(pkt(uint32(n-1)), 1); !ok || rid != int32(n-1) {
		t.Fatalf("most recent flow evicted: (%d,%v)", rid, ok)
	}
}

func TestResetClears(t *testing.T) {
	c := New(256)
	for i := 0; i < 100; i++ {
		c.Insert(pkt(uint32(i)), 1, int32(i))
	}
	c.Reset()
	s := c.Stats()
	if s.Occupied != 0 || s.Inserts != 0 || s.Hits != 0 {
		t.Fatalf("stats after Reset: %+v", s)
	}
	if _, ok := c.Lookup(pkt(1), 1); ok {
		t.Fatal("hit after Reset")
	}
}

func TestZeroAllocHotPath(t *testing.T) {
	c := New(4096)
	p := pkt(9)
	c.Insert(p, 1, 3)
	if a := testing.AllocsPerRun(1000, func() {
		c.Lookup(p, 1)
	}); a != 0 {
		t.Errorf("Lookup allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() {
		c.Insert(p, 1, 3)
	}); a != 0 {
		t.Errorf("Insert allocates %.1f/op", a)
	}
}

func TestSizingDefaultsAndRounding(t *testing.T) {
	if got := New(0).Cap(); got < DefaultEntries {
		t.Errorf("New(0).Cap() = %d, want >= %d", got, DefaultEntries)
	}
	if got := New(1000).Cap(); got < 1000 {
		t.Errorf("New(1000).Cap() = %d, want >= 1000", got)
	}
	if got := New(1).Cap(); got < setWays {
		t.Errorf("New(1).Cap() = %d, want >= %d", got, setWays)
	}
}

// TestHitRateOnSkewedFlows: under Zipf-ish repetition of a flow
// population that fits the cache, the steady-state hit rate must be high.
func TestHitRateOnSkewedFlows(t *testing.T) {
	c := New(4096)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 8, 1023)
	for i := 0; i < 50000; i++ {
		p := pkt(uint32(zipf.Uint64()))
		if _, ok := c.Lookup(p, 1); !ok {
			c.Insert(p, 1, 1)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.90 {
		t.Errorf("hit rate %.3f on 1024 Zipf flows in a 4096-entry cache", hr)
	}
}

// TestConcurrentMixed hammers all shards from several goroutines with
// epoch advances mixed in; run under -race this pins the shard locking.
func TestConcurrentMixed(t *testing.T) {
	c := New(2048)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				p := pkt(uint32(rng.Intn(4096)))
				epoch := uint64(i / 5000) // advances mid-run
				if rid, ok := c.Lookup(p, epoch); ok {
					if rid != int32(p.SrcPort) {
						t.Errorf("goroutine %d: flow %v cached %d, want %d", g, p, rid, p.SrcPort)
						return
					}
				} else {
					c.Insert(p, epoch, int32(p.SrcPort))
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 || s.StaleEvictions == 0 {
		t.Errorf("concurrent run produced no hits or no stale evictions: %+v", s)
	}
}

// TestInsertAccountingWithStaleNeighbor is the regression test for a
// bookkeeping bug: choosing (but then abandoning) a stale way while the
// same flow is found later in the set must not touch the counters. A
// single-set cache forces the collision.
func TestInsertAccountingWithStaleNeighbor(t *testing.T) {
	c := New(1) // one 4-way set: every flow collides
	a, b := pkt(1), pkt(2)
	c.Insert(a, 1, 10)
	c.Insert(b, 1, 20)
	// Epoch advances; refreshing B scans past the now-stale A first.
	c.Insert(b, 2, 21)
	s := c.Stats()
	if s.Occupied != 2 {
		t.Fatalf("occupied = %d after refresh, want 2 (A still resident)", s.Occupied)
	}
	if s.StaleEvictions != 0 {
		t.Fatalf("refresh charged %d stale evictions; A was never dropped", s.StaleEvictions)
	}
	// Touching A at the new epoch drops it exactly once.
	if _, ok := c.Lookup(a, 2); ok {
		t.Fatal("stale A hit")
	}
	s = c.Stats()
	if s.Occupied != 1 || s.StaleEvictions != 1 {
		t.Fatalf("after dropping A: occupied=%d stale=%d, want 1/1", s.Occupied, s.StaleEvictions)
	}
	if rid, ok := c.Lookup(b, 2); !ok || rid != 21 {
		t.Fatalf("B = (%d,%v), want (21,true)", rid, ok)
	}
}
