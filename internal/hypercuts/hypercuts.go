// Package hypercuts implements the original (software) HyperCuts
// decision-tree packet classification algorithm of Singh, Baboescu,
// Varghese and Wang, as described in §2.2 of the paper. It is the second
// software baseline the hardware accelerator is compared against.
//
// HyperCuts generalizes HiCuts by cutting several dimensions at once at an
// internal node. The dimensions considered for cutting are those whose
// number of distinct range specifications is at least the mean across all
// five dimensions. The number of children created by the combined cuts is
// bounded by the space measure of paper Eq. 2:
//
//	max children at node  <=  spfac * sqrt(rules(node))
//
// Among all feasible combinations of per-dimension cut counts the builder
// picks the one minimizing the largest child population (the criterion the
// paper says it uses).
//
// The two extra heuristics the paper later *removes* for the hardware
// version are implemented here and on by default:
//
//   - region compaction: each node shrinks its region to the bounding box
//     of its rules before cutting, so cuts spend resolution only where
//     rules live (this is the heuristic that requires division when
//     traversing, which is why the hardware variant drops it);
//   - pushing common rule subsets upwards: rules that would replicate into
//     every child are stored once in the parent and linear-searched during
//     traversal.
package hypercuts

import (
	"fmt"
	"math"

	"repro/internal/rule"
)

// Config holds HyperCuts tuning parameters.
type Config struct {
	// Binth is the leaf threshold (paper example uses 3, tables use a
	// production value; we default to 16).
	Binth int
	// Spfac is the space factor of Eq. 2. The paper's tables use 4.
	Spfac float64
	// MaxDepth caps recursion (0 = 64).
	MaxDepth int
	// DisableRegionCompaction turns off the region-compaction heuristic.
	DisableRegionCompaction bool
	// DisablePushCommon turns off pushing common rule subsets upwards.
	DisablePushCommon bool
	// MaxCutBitsPerDim caps log2(cuts) in one dimension per node (0 = 6).
	MaxCutBitsPerDim int
}

// DefaultConfig returns the configuration matching the paper's tables
// (spfac = 4, both heuristics enabled).
func DefaultConfig() Config { return Config{Binth: 16, Spfac: 4} }

func (c *Config) sanitize() {
	if c.Binth <= 0 {
		c.Binth = 16
	}
	if c.Spfac <= 0 {
		c.Spfac = 4
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 64
	}
	if c.MaxCutBitsPerDim <= 0 {
		c.MaxCutBitsPerDim = 6
	}
}

// DimCut describes one cut dimension of an internal node.
type DimCut struct {
	Dim     int
	NumCuts int    // power of two
	Lo, Hi  uint32 // (possibly compacted) region bounds along Dim
}

// Node is one HyperCuts tree node.
type Node struct {
	Leaf   bool
	Rules  []int32 // leaf: rules to linear-search
	Pushed []int32 // internal: common rules stored at this node

	Cuts     []DimCut
	Children []*Node // len == product of NumCuts; nil entries are empty

	addr uint32 // synthetic address for the cache model
}

// BuildStats mirrors hicuts.BuildStats; converted to energy by the SA-1100
// model for Table 3.
type BuildStats struct {
	Nodes           int
	Internal        int
	Leaves          int
	MaxDepth        int
	CutEvaluations  int64 // candidate combination evaluations
	RuleChildOps    int64
	RulePushes      int64
	PushedUp        int64 // rules moved to internal nodes
	CompactionOps   int64 // bounding-box computations
	MemoryBytes     int
	ReplicatedRules int64
}

// Tree is a built HyperCuts classifier.
type Tree struct {
	Root      *Node
	cfg       Config
	rules     rule.RuleSet
	stats     BuildStats
	leafCache map[string]*Node
}

// Build constructs a HyperCuts tree over rs.
func Build(rs rule.RuleSet, cfg Config) (*Tree, error) {
	cfg.sanitize()
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("hypercuts: %w", err)
	}
	t := &Tree{cfg: cfg, rules: rs, leafCache: make(map[string]*Node)}
	ids := make([]int32, len(rs))
	for i := range rs {
		ids[i] = int32(i)
	}
	var region [rule.NumDims]rule.Range
	for d := 0; d < rule.NumDims; d++ {
		region[d] = rule.FullRange(d)
	}
	t.Root = t.build(ids, region, 0)
	t.layout()
	return t, nil
}

func (t *Tree) build(ids []int32, region [rule.NumDims]rule.Range, depth int) *Node {
	if depth > t.stats.MaxDepth {
		t.stats.MaxDepth = depth
	}
	if len(ids) <= t.cfg.Binth || depth >= t.cfg.MaxDepth {
		return t.makeLeaf(ids)
	}

	if !t.cfg.DisableRegionCompaction {
		region = t.compact(ids, region)
	}

	combo := t.chooseCombo(ids, region)
	if combo == nil {
		return t.makeLeaf(ids)
	}

	node := &Node{Cuts: combo}
	t.stats.Nodes++
	t.stats.Internal++

	np := 1
	for _, c := range combo {
		np *= c.NumCuts
	}
	childIDs := t.distribute(ids, combo, np)

	// Push rules common to every child up into this node.
	if !t.cfg.DisablePushCommon {
		var kept [][]int32
		node.Pushed, kept = t.pushCommon(ids, combo, childIDs)
		childIDs = kept
	}

	progress := false
	for _, c := range childIDs {
		if len(c) < len(ids) {
			progress = true
			break
		}
	}
	if !progress {
		t.stats.Nodes--
		t.stats.Internal--
		t.stats.PushedUp -= int64(len(node.Pushed))
		return t.makeLeaf(ids)
	}

	node.Children = make([]*Node, np)
	for i, c := range childIDs {
		if len(c) == 0 {
			continue
		}
		childRegion := region
		for _, dc := range combo {
			idx := childIndexComponent(i, combo, dc.Dim)
			childRegion[dc.Dim] = cutInterval(rule.Range{Lo: dc.Lo, Hi: dc.Hi}, dc.NumCuts, idx)
		}
		node.Children[i] = t.build(c, childRegion, depth+1)
	}
	return node
}

func (t *Tree) makeLeaf(ids []int32) *Node {
	key := idsKey(ids)
	if l, ok := t.leafCache[key]; ok {
		return l
	}
	t.stats.Nodes++
	t.stats.Leaves++
	t.stats.ReplicatedRules += int64(len(ids))
	l := &Node{Leaf: true, Rules: ids}
	t.leafCache[key] = l
	return l
}

// compact shrinks the region to the bounding box of the node's rules (the
// region-compaction heuristic). This is what forces a division during
// traversal and is removed in the hardware variant.
func (t *Tree) compact(ids []int32, region [rule.NumDims]rule.Range) [rule.NumDims]rule.Range {
	out := region
	for d := 0; d < rule.NumDims; d++ {
		lo, hi := uint32(math.MaxUint32), uint32(0)
		first := true
		for _, id := range ids {
			f := t.rules[id].F[d]
			t.stats.CompactionOps++
			l := f.Lo
			if l < region[d].Lo {
				l = region[d].Lo
			}
			h := f.Hi
			if h > region[d].Hi {
				h = region[d].Hi
			}
			if l > h {
				continue // rule does not intersect region in d (possible only transiently)
			}
			if first {
				lo, hi, first = l, h, false
				continue
			}
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
		if !first {
			out[d] = rule.Range{Lo: lo, Hi: hi}
		}
	}
	return out
}

// chooseCombo selects the dimensions to cut and the per-dimension cut
// counts. It returns nil when no useful cut exists.
func (t *Tree) chooseCombo(ids []int32, region [rule.NumDims]rule.Range) []DimCut {
	n := len(ids)
	// Count distinct range specifications per dimension.
	distinct := make([]int, rule.NumDims)
	for d := 0; d < rule.NumDims; d++ {
		set := make(map[rule.Range]struct{}, n)
		for _, id := range ids {
			set[t.rules[id].F[d]] = struct{}{}
		}
		distinct[d] = len(set)
	}
	mean := 0.0
	for _, c := range distinct {
		mean += float64(c)
	}
	mean /= rule.NumDims

	var cand []int
	for d := 0; d < rule.NumDims; d++ {
		if float64(distinct[d]) >= mean && distinct[d] > 1 && region[d].Size() >= 2 {
			cand = append(cand, d)
		}
	}
	if len(cand) == 0 {
		return nil
	}

	// Eq. 2: max children <= spfac * sqrt(n).
	limit := int(t.cfg.Spfac * math.Sqrt(float64(n)))
	if limit < 2 {
		limit = 2
	}

	maxBits := make([]int, len(cand))
	for i, d := range cand {
		b := 0
		for s := region[d].Size(); s > 1 && b < t.cfg.MaxCutBitsPerDim; s >>= 1 {
			b++
		}
		maxBits[i] = b
	}

	var best []DimCut
	bestMax := n + 1
	bestNp := 0

	cur := make([]int, len(cand)) // log2 cuts per candidate dim
	var dfs func(i, np int)
	dfs = func(i, np int) {
		if i == len(cand) {
			if np < 2 {
				return
			}
			combo := make([]DimCut, 0, len(cand))
			for j, d := range cand {
				if cur[j] > 0 {
					combo = append(combo, DimCut{Dim: d, NumCuts: 1 << cur[j], Lo: region[d].Lo, Hi: region[d].Hi})
				}
			}
			maxChild := t.maxChildCount(ids, combo, np)
			t.stats.CutEvaluations++
			if maxChild < bestMax || (maxChild == bestMax && np < bestNp) {
				bestMax, bestNp = maxChild, np
				best = combo
			}
			return
		}
		for b := 0; b <= maxBits[i] && np<<b <= limit; b++ {
			cur[i] = b
			dfs(i+1, np<<b)
		}
		cur[i] = 0
	}
	dfs(0, 1)

	if best == nil || bestMax >= n {
		return nil
	}
	return best
}

// cutInterval is identical to HiCuts' equal-width child interval.
func cutInterval(r rule.Range, np, i int) rule.Range {
	size := r.Size()
	width := (size + uint64(np) - 1) / uint64(np)
	lo := uint64(r.Lo) + uint64(i)*width
	hi := lo + width - 1
	if hi > uint64(r.Hi) {
		hi = uint64(r.Hi)
	}
	if lo > uint64(r.Hi) {
		lo = uint64(r.Hi) // degenerate trailing child
	}
	return rule.Range{Lo: uint32(lo), Hi: uint32(hi)}
}

// childSpan is the per-dimension child interval of a rule under a cut.
func childSpan(f, r rule.Range, np int) (c1, c2 int, ok bool) {
	if !f.Overlaps(r) {
		return 0, 0, false
	}
	size := r.Size()
	width := (size + uint64(np) - 1) / uint64(np)
	lo := f.Lo
	if lo < r.Lo {
		lo = r.Lo
	}
	hi := f.Hi
	if hi > r.Hi {
		hi = r.Hi
	}
	c1 = int((uint64(lo) - uint64(r.Lo)) / width)
	c2 = int((uint64(hi) - uint64(r.Lo)) / width)
	if c2 >= np {
		c2 = np - 1
	}
	return c1, c2, true
}

// maxChildCount computes the largest child population for a multi-dim cut
// using a k-dimensional difference grid (k = len(combo)).
func (t *Tree) maxChildCount(ids []int32, combo []DimCut, np int) int {
	strides := comboStrides(combo)
	dims := make([]int, len(combo))
	for i, c := range combo {
		dims[i] = c.NumCuts
	}
	grid := make([]int32, np)
	spans := make([][2]int, len(combo))
	for _, id := range ids {
		okAll := true
		for i, c := range combo {
			c1, c2, ok := childSpan(t.rules[id].F[c.Dim], rule.Range{Lo: c.Lo, Hi: c.Hi}, c.NumCuts)
			t.stats.RuleChildOps++
			if !ok {
				okAll = false
				break
			}
			spans[i] = [2]int{c1, c2}
		}
		if !okAll {
			continue
		}
		addBox(grid, strides, dims, spans)
	}
	// k-dimensional inclusive prefix sums, then max.
	for i := range combo {
		prefixSumAxis(grid, strides, dims, i)
	}
	maxC := int32(0)
	for _, v := range grid {
		if v > maxC {
			maxC = v
		}
	}
	return int(maxC)
}

// comboStrides returns mixed-radix strides: child index = sum idx_i*stride_i.
func comboStrides(combo []DimCut) []int {
	strides := make([]int, len(combo))
	s := 1
	for i := len(combo) - 1; i >= 0; i-- {
		strides[i] = s
		s *= combo[i].NumCuts
	}
	return strides
}

// addBox adds +1 over the hyper-rectangle described by spans using
// inclusion-exclusion corner updates on the difference grid.
func addBox(grid []int32, strides, dims []int, spans [][2]int) {
	k := len(spans)
	for corner := 0; corner < 1<<k; corner++ {
		idx := 0
		sign := int32(1)
		valid := true
		for i := 0; i < k; i++ {
			if corner&(1<<i) == 0 {
				idx += spans[i][0] * strides[i]
			} else {
				hi := spans[i][1] + 1
				if hi >= dims[i] {
					valid = false
					break
				}
				idx += hi * strides[i]
				sign = -sign
			}
		}
		if valid {
			grid[idx] += sign
		}
	}
}

// prefixSumAxis performs an in-place inclusive prefix sum along axis a.
func prefixSumAxis(grid []int32, strides, dims []int, a int) {
	stride := strides[a]
	n := dims[a]
	// Iterate over all lines along axis a.
	total := len(grid)
	for base := 0; base < total; base++ {
		// base is a line start iff its coordinate along a is 0.
		if (base/stride)%n != 0 {
			continue
		}
		acc := int32(0)
		for j := 0; j < n; j++ {
			acc += grid[base+j*stride]
			grid[base+j*stride] = acc
		}
	}
}

// distribute assigns rules to children of the multi-dimensional cut.
func (t *Tree) distribute(ids []int32, combo []DimCut, np int) [][]int32 {
	strides := comboStrides(combo)
	children := make([][]int32, np)
	spans := make([][2]int, len(combo))
	for _, id := range ids {
		okAll := true
		for i, c := range combo {
			c1, c2, ok := childSpan(t.rules[id].F[c.Dim], rule.Range{Lo: c.Lo, Hi: c.Hi}, c.NumCuts)
			t.stats.RuleChildOps++
			if !ok {
				okAll = false
				break
			}
			spans[i] = [2]int{c1, c2}
		}
		if !okAll {
			continue
		}
		// Enumerate the box of child indexes.
		enumerateBox(spans, strides, func(child int) {
			children[child] = append(children[child], id)
			t.stats.RulePushes++
		})
	}
	return children
}

func enumerateBox(spans [][2]int, strides []int, fn func(int)) {
	k := len(spans)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = spans[i][0]
	}
	for {
		child := 0
		for i := 0; i < k; i++ {
			child += idx[i] * strides[i]
		}
		fn(child)
		// Odometer increment.
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] <= spans[i][1] {
				break
			}
			idx[i] = spans[i][0]
		}
		if i < 0 {
			return
		}
	}
}

// pushCommon removes rules present in every child and returns them plus
// the filtered child lists.
func (t *Tree) pushCommon(ids []int32, combo []DimCut, children [][]int32) (pushed []int32, kept [][]int32) {
	// A rule lands in every child exactly when it spans the full cut
	// range in every cut dimension.
	common := make(map[int32]bool)
	for _, id := range ids {
		all := true
		for _, c := range combo {
			f := t.rules[id].F[c.Dim]
			if !(f.Lo <= c.Lo && f.Hi >= c.Hi) {
				all = false
				break
			}
		}
		if all {
			common[id] = true
		}
	}
	if len(common) == 0 {
		return nil, children
	}
	for _, id := range ids {
		if common[id] {
			pushed = append(pushed, id)
		}
	}
	t.stats.PushedUp += int64(len(pushed))
	kept = make([][]int32, len(children))
	for i, c := range children {
		out := c[:0:0]
		for _, id := range c {
			if !common[id] {
				out = append(out, id)
			}
		}
		kept[i] = out
	}
	return pushed, kept
}

// childIndexComponent extracts the per-dimension child coordinate from a
// flat child index.
func childIndexComponent(flat int, combo []DimCut, dim int) int {
	strides := comboStrides(combo)
	for i, c := range combo {
		if c.Dim == dim {
			return (flat / strides[i]) % c.NumCuts
		}
	}
	return 0
}

func idsKey(ids []int32) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Software memory accounting (Table 2): HyperCuts internal nodes are
// larger than HiCuts nodes because they carry a multi-dimension cut
// description and region bounds, plus pointers for children and pushed
// rules; the ruleset is stored once at 20 bytes per rule.
const (
	internalHeaderBytes = 24
	perDimCutBytes      = 12 // dim id + cut count + lo/hi bounds
	leafHeaderBytes     = 8
	pointerBytes        = 4
	softwareRuleBytes   = 20
)

func (t *Tree) layout() {
	var next uint32
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		n.addr = next
		if n.Leaf {
			next += uint32(leafHeaderBytes + pointerBytes*len(n.Rules))
			return
		}
		next += uint32(internalHeaderBytes + perDimCutBytes*len(n.Cuts) +
			pointerBytes*len(n.Children) + pointerBytes*len(n.Pushed))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	t.stats.MemoryBytes = int(next) + len(t.rules)*softwareRuleBytes
}

// Stats returns build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// Rules returns the ruleset the tree classifies.
func (t *Tree) Rules() rule.RuleSet { return t.rules }

// Config returns the build configuration.
func (t *Tree) Config() Config { return t.cfg }

// NumRules returns the ruleset size.
func (t *Tree) NumRules() int { return len(t.rules) }

// Depth returns the tree depth.
func (t *Tree) Depth() int { return t.stats.MaxDepth }

// Classify returns the highest-priority matching rule ID or -1.
func (t *Tree) Classify(p rule.Packet) int {
	m, _ := t.ClassifyTraced(p, nil)
	return m
}

// ClassifyTraced classifies p while reporting each memory access; the
// return values are the match (lowest matching rule ID, -1 for none) and
// the total access count (paper Table 8 software columns).
func (t *Tree) ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (match, accesses int) {
	best := -1
	consider := func(id int32) {
		if t.rules[id].Matches(p) && (best < 0 || int(id) < best) {
			best = int(id)
		}
	}
	n := t.Root
	for n != nil && !n.Leaf {
		accesses++
		if trace != nil {
			trace(n.addr, internalHeaderBytes)
		}
		// Pushed rules are linear-searched while traversing (paper §2.2).
		for i, id := range n.Pushed {
			accesses++
			if trace != nil {
				trace(n.addr+uint32(internalHeaderBytes+pointerBytes*i), softwareRuleBytes)
			}
			consider(id)
		}
		child := 0
		strides := comboStrides(n.Cuts)
		outside := false
		for i, c := range n.Cuts {
			v := p.Field(c.Dim)
			r := rule.Range{Lo: c.Lo, Hi: c.Hi}
			if !r.Contains(v) {
				outside = true
				break
			}
			size := r.Size()
			width := (size + uint64(c.NumCuts) - 1) / uint64(c.NumCuts)
			idx := int((uint64(v) - uint64(c.Lo)) / width)
			if idx >= c.NumCuts {
				idx = c.NumCuts - 1
			}
			child += idx * strides[i]
		}
		if outside {
			// The packet is outside the compacted region: no rule below
			// this node can match.
			return best, accesses
		}
		accesses++ // child pointer read
		if trace != nil {
			trace(n.addr+uint32(internalHeaderBytes+pointerBytes*child), pointerBytes)
		}
		n = n.Children[child]
	}
	if n == nil {
		return best, accesses
	}
	accesses++
	if trace != nil {
		trace(n.addr, leafHeaderBytes)
	}
	for i, id := range n.Rules {
		accesses++
		if trace != nil {
			trace(n.addr+uint32(leafHeaderBytes+pointerBytes*i), softwareRuleBytes)
		}
		if best >= 0 && int(id) > best {
			break // leaf rules are priority-ordered; cannot improve
		}
		consider(id)
	}
	return best, accesses
}

// WorstCaseAccesses returns an upper bound on per-packet memory accesses:
// the worst root-leaf path counting node headers, pushed-rule scans, child
// pointer reads and a full scan of the terminal leaf.
func (t *Tree) WorstCaseAccesses() int {
	memo := map[*Node]int{}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Leaf {
			return 1 + len(n.Rules)
		}
		if v, ok := memo[n]; ok {
			return v
		}
		worst := 0
		for _, c := range n.Children {
			if w := walk(c); w > worst {
				worst = w
			}
		}
		v := 2 + len(n.Pushed) + worst // header + pointer + pushed scan
		memo[n] = v
		return v
	}
	return walk(t.Root)
}
