package hypercuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rule"
)

// Property: arbitrary random rulesets classify identically to the linear
// scan, with region compaction and push-common-subsets active (the two
// heuristics most prone to subtle routing errors).
func TestQuickRandomRulesetsAgreeWithLinear(t *testing.T) {
	f := func(seed int64, nRules uint8, sip, dip uint32, sp, dp uint16, pr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRules%50) + 1
		rs := make(rule.RuleSet, 0, n)
		for i := 0; i < n; i++ {
			loS := uint32(rng.Intn(65536))
			hiS := loS + uint32(rng.Intn(int(65536-loS)))
			loD := uint32(rng.Intn(65536))
			hiD := loD + uint32(rng.Intn(int(65536-loD)))
			rs = append(rs, rule.New(i,
				rng.Uint32(), rng.Intn(33), rng.Uint32(), rng.Intn(33),
				rule.Range{Lo: loS, Hi: hiS}, rule.Range{Lo: loD, Hi: hiD},
				uint8(rng.Intn(256)), rng.Intn(3) == 0))
		}
		cfg := Config{Binth: 1 + rng.Intn(8), Spfac: 1 + rng.Float64()*6}
		tr, err := Build(rs, cfg)
		if err != nil {
			return false
		}
		probe := rule.Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: pr}
		if tr.Classify(probe) != rs.Match(probe) {
			return false
		}
		r := &rs[rng.Intn(n)]
		inside := rule.Packet{
			SrcIP:   r.F[rule.DimSrcIP].Lo,
			DstIP:   r.F[rule.DimDstIP].Hi,
			SrcPort: uint16(r.F[rule.DimSrcPort].Lo),
			DstPort: uint16(r.F[rule.DimDstPort].Hi),
			Proto:   uint8(r.F[rule.DimProto].Lo),
		}
		return tr.Classify(inside) == rs.Match(inside)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPacketOutsideCompactedRegion(t *testing.T) {
	// All rules live in a small corner of the space; a packet far outside
	// the compacted region must cleanly miss (the compaction early-exit).
	rs := rule.RuleSet{
		rule.New(0, 0x0A000000, 16, 0x0A000000, 16, rule.Range{Lo: 10, Hi: 20}, rule.Range{Lo: 10, Hi: 20}, 6, false),
		rule.New(1, 0x0A010000, 16, 0x0A010000, 16, rule.Range{Lo: 10, Hi: 20}, rule.Range{Lo: 10, Hi: 20}, 6, false),
		rule.New(2, 0x0A020000, 16, 0x0A020000, 16, rule.Range{Lo: 10, Hi: 20}, rule.Range{Lo: 10, Hi: 20}, 6, false),
		rule.New(3, 0x0A030000, 16, 0x0A030000, 16, rule.Range{Lo: 10, Hi: 20}, rule.Range{Lo: 10, Hi: 20}, 6, false),
		rule.New(4, 0x0A040000, 16, 0x0A040000, 16, rule.Range{Lo: 10, Hi: 20}, rule.Range{Lo: 10, Hi: 20}, 6, false),
	}
	tr, err := Build(rs, Config{Binth: 2, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	outside := rule.Packet{SrcIP: 0xF0000000, DstIP: 0xF0000000, SrcPort: 15, DstPort: 15, Proto: 6}
	if got := tr.Classify(outside); got != -1 {
		t.Errorf("packet outside all rules matched %d", got)
	}
	inside := rule.Packet{SrcIP: 0x0A020001, DstIP: 0x0A020002, SrcPort: 15, DstPort: 15, Proto: 6}
	if got := tr.Classify(inside); got != 2 {
		t.Errorf("inside packet got %d, want 2", got)
	}
}
