package hypercuts

import (
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func table1Rules() rule.RuleSet {
	specs := [][2][rule.NumDims]uint8{
		{{128, 15, 40, 180, 120}, {240, 15, 40, 180, 140}},
		{{90, 0, 0, 190, 130}, {100, 80, 200, 200, 132}},
		{{130, 60, 0, 180, 133}, {255, 140, 60, 180, 135}},
		{{90, 200, 40, 180, 136}, {92, 200, 40, 180, 138}},
		{{130, 60, 40, 190, 60}, {255, 140, 40, 200, 63}},
		{{140, 60, 0, 0, 140}, {150, 140, 255, 255, 255}},
		{{160, 80, 0, 0, 0}, {165, 80, 255, 255, 80}},
		{{48, 0, 40, 0, 0}, {50, 80, 40, 255, 10}},
		{{26, 50, 40, 180, 30}, {36, 50, 40, 180, 40}},
		{{40, 40, 40, 0, 0}, {40, 70, 40, 255, 60}},
	}
	rs := make(rule.RuleSet, len(specs))
	for i, s := range specs {
		rs[i] = rule.FromBytes(i, s[0], s[1])
	}
	return rs
}

func TestBuildEmptyAndSingle(t *testing.T) {
	tr, err := Build(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Leaf || tr.Classify(rule.Packet{}) != -1 {
		t.Error("empty set should give an empty leaf root")
	}

	rs := rule.RuleSet{rule.New(0, 0x0A000000, 8, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.Range{Lo: 80, Hi: 80}, 6, false)}
	tr, err = Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Classify(rule.Packet{SrcIP: 0x0A000001, DstPort: 80, Proto: 6}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
}

func TestTable1ClassificationMatchesLinear(t *testing.T) {
	rs := table1Rules()
	tr, err := Build(rs, Config{Binth: 3, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p := rule.PacketFromBytes([rule.NumDims]uint8{
			uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)),
			uint8(rng.Intn(256)), uint8(rng.Intn(256))})
		if got, want := tr.Classify(p), rs.Match(p); got != want {
			t.Fatalf("packet %d (%+v): tree=%d linear=%d", i, p, got, want)
		}
	}
}

func TestClassifyAgreesWithLinearAllProfiles(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
		rs := classbench.Generate(prof, 400, 21)
		tr, err := Build(rs, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		trace := classbench.GenerateTrace(rs, 3000, 22)
		for i, p := range trace {
			if got, want := tr.Classify(p), rs.Match(p); got != want {
				t.Fatalf("%s packet %d: tree=%d linear=%d", prof.Name, i, got, want)
			}
		}
	}
}

func TestHeuristicsCanBeDisabled(t *testing.T) {
	rs := classbench.Generate(classbench.FW1(), 500, 13)
	on, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	offCfg := DefaultConfig()
	offCfg.DisablePushCommon = true
	offCfg.DisableRegionCompaction = true
	off, err := Build(rs, offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats().PushedUp != 0 {
		t.Errorf("push-common disabled but PushedUp = %d", off.Stats().PushedUp)
	}
	if off.Stats().CompactionOps != 0 {
		t.Errorf("compaction disabled but CompactionOps = %d", off.Stats().CompactionOps)
	}
	if on.Stats().CompactionOps == 0 {
		t.Error("compaction enabled but no CompactionOps recorded")
	}
	// Both variants must classify identically.
	trace := classbench.GenerateTrace(rs, 1500, 14)
	for i, p := range trace {
		if a, b := on.Classify(p), off.Classify(p); a != b {
			t.Fatalf("packet %d: heuristics-on=%d heuristics-off=%d", i, a, b)
		}
	}
}

func TestPushCommonReducesReplication(t *testing.T) {
	// A wildcard-everything rule replicates into every child; pushing it
	// up should keep it out of all leaves below the root.
	rs := classbench.Generate(classbench.ACL1(), 300, 5)
	wild := rule.New(len(rs), 0, 0, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	rs = append(rs, wild)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats().PushedUp == 0 {
		t.Error("expected the wildcard rule to be pushed up at least once")
	}
	// The wildcard rule must still be found.
	p := rule.Packet{SrcIP: 0xDEADBEEF, DstIP: 0xCAFEBABE, SrcPort: 1, DstPort: 2, Proto: 99}
	if got, want := tr.Classify(p), rs.Match(p); got != want {
		t.Errorf("wildcard classification: tree=%d linear=%d", got, want)
	}
}

func TestMultiDimensionalCutsOccur(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 800, 6)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	forEachNode(tr.Root, func(n *Node) {
		if !n.Leaf && len(n.Cuts) > 1 {
			multi = true
		}
	})
	if !multi {
		t.Error("no node cuts more than one dimension; HyperCuts should multi-cut on acl1")
	}
}

func TestStatsAndMemory(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 7)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes <= 0 || s.Leaves <= 0 || s.Internal <= 0 {
		t.Errorf("counts: %+v", s)
	}
	if s.MemoryBytes <= len(rs)*softwareRuleBytes {
		t.Errorf("memory %d too small", s.MemoryBytes)
	}
	if tr.Depth() < 1 || tr.NumRules() != 500 {
		t.Errorf("depth=%d rules=%d", tr.Depth(), tr.NumRules())
	}
}

func TestWorstCaseBoundsObserved(t *testing.T) {
	rs := classbench.Generate(classbench.IPC1(), 400, 8)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	worst := tr.WorstCaseAccesses()
	maxObs := 0
	for _, p := range classbench.GenerateTrace(rs, 2000, 9) {
		if _, acc := tr.ClassifyTraced(p, nil); acc > maxObs {
			maxObs = acc
		}
	}
	if maxObs > worst {
		t.Errorf("observed %d > declared worst %d", maxObs, worst)
	}
}

func TestTraceCallbackCountMatches(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 10)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range classbench.GenerateTrace(rs, 50, 11) {
		fired := 0
		_, acc := tr.ClassifyTraced(p, func(a, s uint32) { fired++ })
		if fired != acc {
			t.Fatalf("callback fired %d, accesses %d", fired, acc)
		}
	}
}

func TestEnumerateBox(t *testing.T) {
	spans := [][2]int{{1, 2}, {0, 1}}
	strides := []int{4, 1} // 4x4 grid flattened
	var got []int
	enumerateBox(spans, strides, func(c int) { got = append(got, c) })
	want := map[int]bool{4: true, 5: true, 8: true, 9: true}
	if len(got) != 4 {
		t.Fatalf("enumerated %d cells, want 4: %v", len(got), got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected cell %d", c)
		}
	}
}

func TestMaxChildCountAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rs := make(rule.RuleSet, 40)
	for i := range rs {
		lo1 := uint8(rng.Intn(200))
		hi1 := lo1 + uint8(rng.Intn(int(255-lo1)))
		lo2 := uint8(rng.Intn(200))
		hi2 := lo2 + uint8(rng.Intn(int(255-lo2)))
		rs[i] = rule.FromBytes(i,
			[rule.NumDims]uint8{lo1, lo2, 0, 0, 0},
			[rule.NumDims]uint8{hi1, hi2, 255, 255, 255})
	}
	tr := &Tree{rules: rs, leafCache: map[string]*Node{}}
	ids := make([]int32, len(rs))
	for i := range ids {
		ids[i] = int32(i)
	}
	combo := []DimCut{
		{Dim: 0, NumCuts: 4, Lo: 0, Hi: ^uint32(0)},
		{Dim: 1, NumCuts: 2, Lo: 0, Hi: ^uint32(0)},
	}
	got := tr.maxChildCount(ids, combo, 8)

	// Brute force via distribute.
	children := tr.distribute(ids, combo, 8)
	want := 0
	for _, c := range children {
		if len(c) > want {
			want = len(c)
		}
	}
	if got != want {
		t.Errorf("maxChildCount = %d, brute force = %d", got, want)
	}
}

func TestDeterministicBuild(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 250, 17)
	a, _ := Build(rs, DefaultConfig())
	b, _ := Build(rs, DefaultConfig())
	if a.Stats() != b.Stats() {
		t.Errorf("nondeterministic build:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func forEachNode(root *Node, fn func(*Node)) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		fn(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}
