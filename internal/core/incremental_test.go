package core

import (
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

// Tests for the sublinear update path: the incremental leaf repack must
// produce exactly the layout a full repack would, the rule→leaves
// occupancy index must stay identical to a from-scratch scan, and the
// delta's dirty-word ranges must let PatchImage reproduce a fresh Encode
// byte for byte.

// churnStep applies one random update (2:1 insert:delete) to tr, drawing
// inserts from pool. It returns the delta.
func churnStep(t *testing.T, tr *Tree, pool rule.RuleSet, rng *rand.Rand, next *int) *Delta {
	t.Helper()
	if rng.Intn(3) < 2 && *next < len(pool) {
		r := pool[*next]
		*next++
		r.ID = tr.NumRules()
		d, err := tr.InsertDelta(r)
		if err != nil {
			t.Fatalf("InsertDelta: %v", err)
		}
		return d
	}
	d, err := tr.DeleteDelta(rng.Intn(tr.NumRules()))
	if err != nil {
		t.Fatalf("DeleteDelta: %v", err)
	}
	return d
}

// layoutSnapshot captures every leaf's packing plus the word count.
type layoutSnapshot struct {
	word, pos []int
	words     int
}

func snapshotLayout(tr *Tree) layoutSnapshot {
	s := layoutSnapshot{words: tr.words}
	for _, l := range tr.leafOrder {
		s.word = append(s.word, l.Word)
		s.pos = append(s.pos, l.Pos)
	}
	return s
}

// TestIncrementalRepackMatchesFull drives random churn and, after every
// update, checks the incrementally maintained layout against a full
// packLeaves rerun. Since the claim is exact equivalence, the full rerun
// must be a no-op.
func TestIncrementalRepackMatchesFull(t *testing.T) {
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		for _, speed := range []int{0, 1} {
			rs := classbench.Generate(classbench.ACL1(), 400, 41)
			cfg := DefaultConfig(algo)
			cfg.Speed = speed
			tr, err := Build(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := classbench.Generate(classbench.FW1(), 200, 43)
			rng := rand.New(rand.NewSource(47))
			next := 0
			for i := 0; i < 120; i++ {
				churnStep(t, tr, pool, rng, &next)
				got := snapshotLayout(tr)
				tr.packLeaves() // full repack as ground truth
				want := snapshotLayout(tr)
				if got.words != want.words {
					t.Fatalf("%v speed=%d update %d: incremental words=%d, full repack=%d",
						algo, speed, i, got.words, want.words)
				}
				for j := range want.word {
					if got.word[j] != want.word[j] || got.pos[j] != want.pos[j] {
						t.Fatalf("%v speed=%d update %d: leaf %d incremental (%d,%d) != full (%d,%d)",
							algo, speed, i, j, got.word[j], got.pos[j], want.word[j], want.pos[j])
					}
				}
			}
		}
	}
}

// scanOccupancy rebuilds the rule→leaves map the slow way: a full scan
// of the live leaves.
func scanOccupancy(tr *Tree) map[int32]map[int32]struct{} {
	occ := make(map[int32]map[int32]struct{})
	for i, l := range tr.leafOrder {
		if tr.leafRefs[l] == 0 {
			continue // orphan
		}
		for _, rid := range l.Rules {
			s := occ[rid]
			if s == nil {
				s = make(map[int32]struct{})
				occ[rid] = s
			}
			s[int32(i)] = struct{}{}
		}
	}
	return occ
}

// TestOccupancyIndexMatchesScan is the occupancy-index property test:
// after any random churn sequence the maintained index must exactly
// match a from-scratch scan of live leaves (catching refcount or orphan
// drift in the Insert/Delete bookkeeping).
func TestOccupancyIndexMatchesScan(t *testing.T) {
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		for _, seed := range []int64{1, 7, 2008} {
			rs := classbench.Generate(classbench.ACL1(), 300, seed)
			tr, err := Build(rs, DefaultConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			pool := classbench.Generate(classbench.IPC1(), 150, seed+1)
			rng := rand.New(rand.NewSource(seed))
			next := 0
			for i := 0; i < 100; i++ {
				churnStep(t, tr, pool, rng, &next)
			}
			want := scanOccupancy(tr)
			if len(tr.occ) != len(want) {
				t.Fatalf("%v seed %d: index lists %d rules, scan finds %d", algo, seed, len(tr.occ), len(want))
			}
			for rid, wantSet := range want {
				gotSet := tr.occ[rid]
				if len(gotSet) != len(wantSet) {
					t.Fatalf("%v seed %d: rule %d: index lists %d leaves, scan finds %d",
						algo, seed, rid, len(gotSet), len(wantSet))
				}
				for li := range wantSet {
					if _, ok := gotSet[li]; !ok {
						t.Fatalf("%v seed %d: rule %d: leaf %d in scan but not index", algo, seed, rid, li)
					}
				}
			}
			// And the index must survive a Relayout rebuild.
			tr.Relayout()
			want = scanOccupancy(tr)
			for rid, wantSet := range want {
				if len(tr.occ[rid]) != len(wantSet) {
					t.Fatalf("%v seed %d: post-relayout rule %d mismatch", algo, seed, rid)
				}
			}
		}
	}
}

// TestPatchImageMatchesEncode drives churn while maintaining a device
// image through word-level PatchImage calls only, comparing it byte for
// byte against a fresh Encode after every update — the differential
// verification of the paper's §4 "updates are a few word writes" claim.
// It also checks the dirty-word accounting stays sublinear: total words
// written across the churn must be far below updates × image size.
func TestPatchImageMatchesEncode(t *testing.T) {
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		for _, speed := range []int{0, 1} {
			rs := classbench.Generate(classbench.ACL1(), 500, 61)
			cfg := DefaultConfig(algo)
			cfg.Speed = speed
			tr, err := Build(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			img, err := tr.Encode()
			if err != nil {
				t.Fatal(err)
			}
			pool := classbench.Generate(classbench.FW1(), 200, 67)
			rng := rand.New(rand.NewSource(71))
			next := 0
			written := 0
			sumWords := 0
			const updates = 100
			for i := 0; i < updates; i++ {
				d := churnStep(t, tr, pool, rng, &next)
				n, err := tr.PatchImage(img, d)
				if err != nil {
					t.Fatalf("%v speed=%d update %d: PatchImage: %v", algo, speed, i, err)
				}
				if n != d.DirtyWordCount() {
					// Words beyond the final size are clamped; otherwise
					// the counts must agree.
					if d.WordsAfter >= d.WordsBefore {
						t.Fatalf("%v speed=%d update %d: wrote %d words, delta dirtied %d",
							algo, speed, i, n, d.DirtyWordCount())
					}
				}
				written += n
				sumWords += tr.Words()
				fresh, err := tr.Encode()
				if err != nil {
					t.Fatalf("%v speed=%d update %d: Encode: %v", algo, speed, i, err)
				}
				if len(fresh.Words) != len(img.Words) {
					t.Fatalf("%v speed=%d update %d: patched %d words, fresh %d",
						algo, speed, i, len(img.Words), len(fresh.Words))
				}
				for w := range fresh.Words {
					if string(fresh.Words[w]) != string(img.Words[w]) {
						t.Fatalf("%v speed=%d update %d: word %d differs (dirty=%v, firstLeaf=%d)",
							algo, speed, i, w, d.DirtyWords, d.FirstDirtyLeaf)
					}
				}
			}
			if speed == 1 && written*4 > sumWords {
				// Speed-1 packing absorbs slot shifts at word
				// boundaries, so the written words must be a small
				// fraction of what full reloads would have cost.
				t.Errorf("%v: word-level patching wrote %d words; full reloads would write %d — not sublinear",
					algo, written, sumWords)
			}
		}
	}
}

// TestDeltaBatchPatchImage checks that a burst of deltas applied in one
// PatchImage call (the lazy path repro.Accelerator uses) lands the same
// bytes as a fresh encode.
func TestDeltaBatchPatchImage(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 400, 81)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	img, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pool := classbench.Generate(classbench.IPC1(), 120, 83)
	rng := rand.New(rand.NewSource(89))
	next := 0
	var batch []*Delta
	for i := 0; i < 90; i++ {
		batch = append(batch, churnStep(t, tr, pool, rng, &next))
		if len(batch) < 30 {
			continue
		}
		if _, err := tr.PatchImage(img, batch...); err != nil {
			t.Fatalf("batch PatchImage: %v", err)
		}
		batch = batch[:0]
		fresh, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(fresh.Words) != len(img.Words) {
			t.Fatalf("update %d: patched %d words, fresh %d", i, len(img.Words), len(fresh.Words))
		}
		for w := range fresh.Words {
			if string(fresh.Words[w]) != string(img.Words[w]) {
				t.Fatalf("update %d: word %d differs", i, w)
			}
		}
	}
}

// TestEncodeWithDisabledRuleInOrphan is a regression test: a rule that
// survives only in an orphaned leaf is disabled (empty range) by
// DeleteDelta, and Encode used to fail on it. It must now encode as a
// sentinel slot.
func TestEncodeWithDisabledRuleInOrphan(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 250, 91)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	// A wildcard insert overlaps every leaf; shared leaves are unshared
	// and their originals orphaned — the orphans still list the old
	// rules.
	wild := rule.Rule{ID: tr.NumRules()}
	for d := 0; d < rule.NumDims; d++ {
		wild.F[d] = rule.Range{Lo: 0, Hi: rule.MaxValue(d)}
	}
	d, err := tr.InsertDelta(wild)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Orphaned) == 0 {
		t.Skip("no orphans produced; ruleset too small to share leaves")
	}
	// Delete a rule that the orphaned leaf still lists.
	victim := -1
	for _, oi := range d.Orphaned {
		if len(tr.leafOrder[oi].Rules) > 0 {
			victim = int(tr.leafOrder[oi].Rules[0])
			break
		}
	}
	if victim < 0 {
		t.Skip("orphans are empty leaves")
	}
	if _, err := tr.DeleteDelta(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Encode(); err != nil {
		t.Fatalf("Encode with disabled rule in orphan: %v", err)
	}
}
