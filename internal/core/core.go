// Package core implements the paper's primary contribution: the
// hardware-oriented modifications of the HiCuts and HyperCuts algorithms
// (paper §3) and the memory-image layout consumed by the hardware
// accelerator (paper §4).
//
// Differences from the original software algorithms:
//
//   - Region compaction and pushing common rule subsets upwards are
//     removed (they need division hardware / slow down traversal).
//   - Cuts are restricted to the 8 most significant bits of each of the
//     five dimensions so a child index is computed with per-dimension
//     8-bit mask and shift values followed by an add — one clock cycle.
//   - The number of cuts np at an internal node is 32, 64, 128 or 256:
//     HiCuts starts at 32 and doubles while Eq. 3 holds (space measure
//     permits and np < 129); HyperCuts considers all combinations of
//     per-dimension power-of-two cut counts with 32 <= np <= 2^(4+spfac)
//     (Eq. 4).
//   - Actual rules (160 bits each) are stored in leaf nodes rather than
//     pointers, 30 rules per 4800-bit memory word, searchable in one
//     clock cycle by 30 parallel comparators.
//   - Nodes are rearranged after the build: all internal nodes first,
//     then leaf storage; the speed parameter selects between fully
//     contiguous leaf packing (speed 0, Eq. 5 cycle cost) and
//     word-boundary-respecting packing (speed 1, Eq. 6 constraint and
//     Eq. 7 cycle cost).
package core

import (
	"fmt"
	"runtime"

	"repro/internal/rule"
)

// Hardware geometry constants (paper §3 and §4).
const (
	// WordBits is the width of one memory word.
	WordBits = 4800
	// WordBytes is WordBits in bytes.
	WordBytes = WordBits / 8
	// RuleBits is the storage of one rule in a leaf.
	RuleBits = 160
	// RulesPerWord is the number of rules one memory word holds and the
	// number of parallel comparators in the accelerator.
	RulesPerWord = WordBits / RuleBits
	// MinCuts is the starting cut count of the modified algorithms.
	MinCuts = 32
	// MaxCuts is the cap on cuts at one internal node; 256 cut entries
	// of 18 bits plus the per-dimension mask/shift bytes fit in one
	// memory word.
	MaxCuts = 256
	// PointerBits is the width of the memory-word index inside a cut
	// entry ("up to 12 bits depending on number of memory words").
	PointerBits = 12
	// PosBits addresses a rule start position within a word (0..29).
	PosBits = 5
	// DeviceWords is the memory capacity of the accelerator as sized in
	// the paper: 1024 words of 600 bytes = 614,400 bytes.
	DeviceWords = 1024
	// DeviceBytes is the accelerator's total search-structure memory.
	DeviceBytes = DeviceWords * WordBytes
)

// Algorithm selects which modified algorithm builds the tree.
type Algorithm int

const (
	// HiCuts cuts one dimension per internal node (modified per Eq. 3).
	HiCuts Algorithm = iota
	// HyperCuts cuts multiple dimensions per internal node (Eq. 4).
	HyperCuts
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case HiCuts:
		return "HiCuts"
	case HyperCuts:
		return "HyperCuts"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Config holds build parameters for the modified algorithms.
type Config struct {
	// Algorithm selects HiCuts or HyperCuts.
	Algorithm Algorithm
	// Binth is the leaf threshold. Defaults to DefaultBinth (120 = four
	// memory words): the parallel comparators search 30 rules per cycle,
	// so multi-word leaves are cheap, and larger leaves keep rules that
	// no top-8-bit cut can separate (wildcards, wide ranges) inside one
	// leaf instead of replicating them across half-empty children. The
	// paper's worst-case access counts (Tables 4 and 8: 2-8 cycles,
	// i.e. multi-word leaf scans) imply a threshold of this order.
	Binth int
	// Spfac is the space factor; the paper's tables use 4 and Eq. 4
	// admits 1..4 for HyperCuts.
	Spfac int
	// Speed is the paper's speed parameter (0 or 1): 0 packs leaves
	// fully contiguously (most memory-efficient, Eq. 5 cycles); 1 starts
	// a leaf in a word only if it fits there entirely (Eq. 6), trading
	// storage for throughput (Eq. 7).
	Speed int
	// StartCuts overrides the 32-cut starting point (ablation; 0 = 32).
	StartCuts int
	// CutCap overrides the 256-cut cap (ablation; 0 = 256). Values
	// above 256 are rejected: the word format cannot address more.
	CutCap int
	// MaxDepth bounds recursion (0 = 64).
	MaxDepth int
	// Workers bounds the build's worker pool: child subtrees fan out
	// over up to Workers goroutines (0 = GOMAXPROCS, 1 = fully
	// sequential). The parallel build is deterministic — it produces a
	// tree identical in structure, layout and statistics to Workers=1,
	// because every subtree's cut decisions depend only on its own rule
	// list and region prefix.
	Workers int
	// LeafPointers stores 4-byte rule pointers in leaves instead of full
	// rules (ablation of the rules-in-leaf modification; costs one extra
	// cycle per packet in the simulator as the rule fetch becomes a
	// dependent memory access).
	LeafPointers bool
}

// DefaultBinth is the default leaf threshold (four memory words).
const DefaultBinth = 4 * RulesPerWord

// DefaultConfig returns the configuration used for the paper's tables:
// spfac 4, speed 1, binth 120 (see Config.Binth for why the hardware
// wants leaves measured in words rather than rules).
func DefaultConfig(a Algorithm) Config {
	return Config{Algorithm: a, Binth: DefaultBinth, Spfac: 4, Speed: 1}
}

func (c *Config) sanitize() error {
	if c.Binth <= 0 {
		c.Binth = DefaultBinth
	}
	if c.Spfac <= 0 {
		c.Spfac = 4
	}
	if c.Spfac > 4 && c.Algorithm == HyperCuts {
		return fmt.Errorf("core: HyperCuts spfac must be 1..4 (Eq. 4), got %d", c.Spfac)
	}
	if c.Speed != 0 && c.Speed != 1 {
		return fmt.Errorf("core: speed must be 0 or 1, got %d", c.Speed)
	}
	if c.StartCuts == 0 {
		c.StartCuts = MinCuts
	}
	if c.StartCuts < 2 || c.StartCuts&(c.StartCuts-1) != 0 {
		return fmt.Errorf("core: StartCuts must be a power of two >= 2, got %d", c.StartCuts)
	}
	if c.CutCap == 0 {
		c.CutCap = MaxCuts
	}
	if c.CutCap > MaxCuts || c.CutCap < c.StartCuts || c.CutCap&(c.CutCap-1) != 0 {
		return fmt.Errorf("core: CutCap must be a power of two in [%d,%d], got %d", c.StartCuts, MaxCuts, c.CutCap)
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// DimCut describes the cut of one dimension at an internal node.
type DimCut struct {
	// Dim is the dimension index.
	Dim int
	// Bits is log2 of the cut count in this dimension.
	Bits int
	// Mask is the 8-bit mask the hardware ANDs with the top 8 bits of
	// the packet's field.
	Mask uint8
	// Shift aligns the masked bits at their weight in the child index;
	// positive values shift right, negative shift left (the hardware
	// uses a barrel shifter and a direction, stored here as a sign).
	Shift int8
}

// Node is one logical node of the modified decision tree.
type Node struct {
	// Leaf marks rule-carrying terminal nodes.
	Leaf bool
	// Rules lists the leaf's rule IDs in priority order.
	Rules []int32
	// Cuts describes the cut dimensions (internal nodes).
	Cuts []DimCut
	// Children has one entry per cut combination (length = product of
	// per-dimension cut counts); nil entries are empty regions.
	Children []*Node

	// Word and Pos locate the node in the laid-out memory image: an
	// internal node occupies all of word Word (Pos 0); a leaf's rules
	// start at rule slot Pos of word Word.
	Word, Pos int

	// prefixLen is the number of top-8 bits fixed per dimension on the
	// path from the root (the node's region), needed to compute masks.
	prefixLen [rule.NumDims]int
}

// NumChildren returns the total cut count np of an internal node.
func (n *Node) NumChildren() int { return len(n.Children) }

// BuildStats counts construction work; the SA-1100 model converts it to
// build energy (paper Table 3, "Hardware" columns — the modified structure
// is still built in software and then loaded into the accelerator).
type BuildStats struct {
	Nodes           int
	Internal        int
	Leaves          int // distinct leaves after merging
	MaxDepth        int
	CutEvaluations  int64
	RuleChildOps    int64
	RulePushes      int64
	ReplicatedRules int64 // rule slots stored in leaf memory
	OverflowLeaves  int   // leaves holding more than Binth rules (uncuttable)
}

// Tree is a built, laid-out hardware search structure.
type Tree struct {
	Root *Node

	cfg   Config
	rules rule.RuleSet
	stats BuildStats

	words     int     // memory words used (including word 0 = root)
	leafOrder []*Node // distinct leaves in layout order
	internals []*Node // internal nodes in layout order (root first)

	// Leaf identity bookkeeping for the incremental-update delta path:
	// leafIndex maps a leaf to its stable position in leafOrder (the
	// compiled image's leaf table); leafRefs counts the child slots
	// referencing each leaf, so copy-on-write unsharing knows when an
	// original becomes orphaned. Rebuilt by layout(), maintained by
	// InsertDelta/DeleteDelta.
	leafIndex map[*Node]int
	leafRefs  map[*Node]int
	orphans   int // leafOrder entries with zero references

	// occ is the rule→leaves occupancy index: for every live rule ID,
	// the set of live leaf-table indices whose rule lists contain it.
	// It lets DeleteDelta resolve the affected leaves by lookup instead
	// of scanning every live leaf (O(occupied leaves), not O(table)).
	// Rebuilt by layout(), maintained by InsertDelta/DeleteDelta;
	// orphaned leaves are removed the moment they lose their last
	// reference, so the index never lists dead storage.
	occ map[int32]map[int32]struct{}

	// leafParents maps each live leaf to the internal words referencing
	// it (word → referencing-slot count). An internal word's cut
	// entries embed the (Word, Pos) of leaf children, so when the
	// incremental repack moves a leaf, exactly these words become dirty
	// in the encoded image. Rebuilt by layout(), maintained by the
	// copy-on-write repointing in InsertDelta.
	leafParents map[*Node]map[int]int

	// buildNanos / layoutNanos are wall-clock construction timings for
	// the telemetry plane: the whole Build (cutting + layout) and the
	// most recent full layout pass (Relayout — the recompile path's
	// compaction cost). Kept out of BuildStats, which must stay
	// identical between sequential and parallel builds.
	buildNanos  int64
	layoutNanos int64
}

// BuildNanos reports the wall-clock duration of the Build call that
// produced this tree, in nanoseconds.
func (t *Tree) BuildNanos() int64 { return t.buildNanos }

// LastLayoutNanos reports the wall-clock duration of the most recent
// full layout pass (the Build's initial layout, or the latest Relayout),
// in nanoseconds.
func (t *Tree) LastLayoutNanos() int64 { return t.layoutNanos }

// Config returns the build configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats returns build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// Rules returns the ruleset the tree classifies.
func (t *Tree) Rules() rule.RuleSet { return t.rules }

// Words returns the number of 4800-bit memory words the structure uses.
func (t *Tree) Words() int { return t.words }

// MemoryBytes returns the search-structure size in bytes (paper Tables 2
// and 4 hardware columns): words used times 600 bytes.
func (t *Tree) MemoryBytes() int { return t.words * WordBytes }

// FitsDevice reports whether the structure fits the paper's 1024-word
// accelerator memory.
func (t *Tree) FitsDevice() bool { return t.words <= DeviceWords }

// Depth returns the maximum tree depth (root = 0).
func (t *Tree) Depth() int { return t.stats.MaxDepth }

// NumRules returns the ruleset size.
func (t *Tree) NumRules() int { return len(t.rules) }
