package core

import (
	"fmt"
	"sort"
)

// Word-level image patching: the hardware half of the paper's §4 update
// story. A Delta records exactly which memory words its leaf repack and
// child repointings changed (Delta.DirtyWords); PatchImage re-encodes
// only those words from the current tree state, so an update lands in a
// loaded device image as a handful of word writes instead of a full
// re-encode. hwsim.Sim.ApplyDelta drives this through the simulated
// one-word-per-cycle write interface and charges load cycles per dirty
// word.

// PatchImage applies the dirty-word ranges of one or more consecutive
// deltas to img, resizing it to the tree's current word count and
// re-encoding every dirty word from the tree's current state. The deltas
// must cover the whole update history between the state img was encoded
// from and the tree's current state, in order (exactly the discipline
// engine.Patch requires); any word whose content changed across that
// history is in some delta's dirty set, so re-encoding the union from
// the final state reproduces a fresh Encode byte for byte. It returns
// the number of words written — the write-interface cycles the update
// costs.
//
// A delta taken across a Relayout is invalid here (leaf indices and
// word numbers move); re-encode from scratch instead.
func (t *Tree) PatchImage(img *Image, ds ...*Delta) (int, error) {
	if t.cfg.LeafPointers {
		return 0, fmt.Errorf("core: LeafPointers ablation trees are analytical only and cannot be encoded")
	}
	if t.words > 1<<PointerBits {
		return 0, fmt.Errorf("core: structure needs %d words; the %d-bit pointer field addresses at most %d",
			t.words, PointerBits, 1<<PointerBits)
	}
	if img.NumInternal != len(t.internals) {
		return 0, fmt.Errorf("core: image has %d internal words, tree has %d (delta across a relayout?)",
			img.NumInternal, len(t.internals))
	}
	// Coalesce the dirty ranges (already per-delta sorted and
	// non-overlapping; across deltas they may repeat) and clamp to the
	// final image size: words past it are truncated below and never
	// rewritten. Cost stays O(dirty ranges), never O(image).
	var ranges []WordRange
	for _, d := range ds {
		for _, r := range d.DirtyWords {
			if r.Lo >= t.words {
				continue
			}
			if r.Hi > t.words {
				r.Hi = t.words
			}
			ranges = append(ranges, r)
		}
	}
	ranges = mergeWordRanges(ranges)
	// Resize: grow with zeroed words (they are dirty and re-encoded
	// below), or truncate storage the structure no longer uses.
	for len(img.Words) < t.words {
		img.Words = append(img.Words, make([]byte, WordBytes))
	}
	img.Words = img.Words[:t.words]
	n := 0
	for _, r := range ranges {
		n += r.Hi - r.Lo
	}
	words := make([]int, 0, n)
	for _, r := range ranges {
		for w := r.Lo; w < r.Hi; w++ {
			words = append(words, w)
		}
	}
	if err := t.EncodeWords(img, words); err != nil {
		return 0, err
	}
	return n, nil
}

// EncodeWords re-encodes the given memory words of img from the tree's
// current state: each word is zeroed and rebuilt from the internal node
// or the leaf storage that the current layout places there. The words
// must lie within the image. It is the word-granular sibling of Encode,
// used by PatchImage and the simulator's write interface
// (hwsim.Sim.PatchWords).
func (t *Tree) EncodeWords(img *Image, words []int) error {
	if t.cfg.LeafPointers {
		return fmt.Errorf("core: LeafPointers ablation trees are analytical only and cannot be encoded")
	}
	for _, w := range words {
		if w < 0 || w >= len(img.Words) {
			return fmt.Errorf("core: encode word %d of %d", w, len(img.Words))
		}
		if err := t.encodeWord(img, w); err != nil {
			return err
		}
	}
	return nil
}

// encodeWord rebuilds one memory word in place.
func (t *Tree) encodeWord(img *Image, w int) error {
	buf := img.Words[w]
	for i := range buf {
		buf[i] = 0
	}
	if w < len(t.internals) {
		return encodeInternal(buf, t.internals[w])
	}
	// Leaf storage: the leaf table is packed in ascending (Word, Pos)
	// order (orphans included — they keep their storage), so both the
	// start and end words of successive leaves are non-decreasing and
	// the leaves intersecting w form one contiguous run.
	lo := sort.Search(len(t.leafOrder), func(i int) bool {
		return leafEndWord(t.leafOrder[i]) >= w
	})
	for i := lo; i < len(t.leafOrder) && t.leafOrder[i].Word <= w; i++ {
		if err := t.encodeLeafWord(img, t.leafOrder[i], w); err != nil {
			return err
		}
	}
	return nil
}

// leafEndWord returns the last memory word leaf l's storage occupies.
func leafEndWord(l *Node) int {
	n := len(l.Rules)
	if n == 0 {
		n = 1
	}
	return l.Word + (l.Pos+n-1)/RulesPerWord
}

// encodeLeafWord stores the slots of leaf l that fall inside memory word
// target (a leaf may span several words; neighbours sharing a dirty word
// are re-encoded only within it).
func (t *Tree) encodeLeafWord(img *Image, l *Node, target int) error {
	n := len(l.Rules)
	if n == 0 {
		if l.Word == target {
			return encodeSentinel(img.Words[target], l.Pos)
		}
		return nil
	}
	orphan := t.leafRefs[l] == 0
	// Skip ahead to the first rule slot inside target.
	i := 0
	word, pos := l.Word, l.Pos
	if target > l.Word {
		i = (target-l.Word)*RulesPerWord - l.Pos
		word, pos = target, 0
	}
	for ; i < n && word == target; i++ {
		if orphan {
			// Dead storage holds sentinels; see encodeLeaf.
			encodeSentinel(img.Words[word], pos)
		} else {
			er, err := t.encodeRuleSlot(l.Rules[i])
			if err != nil {
				return err
			}
			er.End = i == n-1
			er.store(img.Words[word], pos)
		}
		pos++
		if pos == RulesPerWord {
			pos = 0
			word++
		}
	}
	return nil
}
