package core

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

// TestInsertDeltaBookkeeping pins the delta protocol's invariants on a
// wildcard insert (which touches every leaf): new-leaf indices extend
// the leaf table contiguously, every kid edit points at a valid leaf
// index and an unchanged internal word, singly-referenced leaves are
// edited in place rather than orphaned, and the orphan counter matches
// the delta's Orphaned list.
func TestInsertDeltaBookkeeping(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 250, 131)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	leavesBefore := len(tr.Leaves())
	wordsBefore := len(tr.Internals())

	wild := rule.New(len(rs), 0, 0, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	d, err := tr.InsertDelta(wild)
	if err != nil {
		t.Fatal(err)
	}
	if !d.RuleAppended || d.AppendedRule.ID != len(rs) || d.DisabledRule != -1 {
		t.Fatalf("insert delta header wrong: %+v", d)
	}
	if len(tr.Internals()) != wordsBefore {
		t.Fatalf("insert changed the internal-word count: %d -> %d", wordsBefore, len(tr.Internals()))
	}
	next := leavesBefore
	inPlace := 0
	for _, le := range d.LeafEdits {
		if le.New {
			if le.Index != next {
				t.Fatalf("new leaf index %d, want contiguous %d", le.Index, next)
			}
			next++
		} else {
			if le.Index < 0 || le.Index >= leavesBefore {
				t.Fatalf("in-place edit of unknown leaf %d", le.Index)
			}
			inPlace++
		}
		if le.Rules[len(le.Rules)-1] != int32(len(rs)) {
			t.Fatalf("edited leaf %d does not end with the inserted rule", le.Index)
		}
	}
	if next != len(tr.Leaves()) {
		t.Fatalf("leaf table grew to %d but delta accounts for %d", len(tr.Leaves()), next)
	}
	if inPlace == 0 {
		t.Error("no singly-referenced leaf was edited in place (all were orphan-producing copies)")
	}
	for _, ke := range d.KidEdits {
		if ke.Word < 0 || ke.Word >= wordsBefore {
			t.Fatalf("kid edit in unknown word %d", ke.Word)
		}
		if ke.Leaf < 0 || ke.Leaf >= next {
			t.Fatalf("kid edit points at unknown leaf %d", ke.Leaf)
		}
	}
	if tr.Orphans() != len(d.Orphaned) {
		t.Fatalf("tree counts %d orphans, delta lists %d", tr.Orphans(), len(d.Orphaned))
	}
	// A wildcard spans every slot of every node, so each leaf shared
	// within one node is fully unshared there and must orphan.
	if len(d.Orphaned) == 0 {
		t.Error("wildcard insert orphaned no shared leaves")
	}

	// A full relayout compacts the orphans away and resets the counter.
	tr.Relayout()
	if tr.Orphans() != 0 {
		t.Fatalf("%d orphans survived Relayout", tr.Orphans())
	}
	if got := tr.Classify(rule.Packet{SrcIP: 0xFEFEFEFE, DstIP: 0x01010101,
		SrcPort: 60123, DstPort: 60321, Proto: 201}); got != len(rs) && rs.Match(rule.Packet{
		SrcIP: 0xFEFEFEFE, DstIP: 0x01010101, SrcPort: 60123, DstPort: 60321, Proto: 201}) == -1 {
		t.Errorf("wildcard lost after relayout: got %d", got)
	}
}

// TestDeleteDeltaBookkeeping pins the delete side: only leaves holding
// the rule are edited, edits are in place (no leaf-table growth, no kid
// edits), and the disabled rule vanishes from every listed edit.
func TestDeleteDeltaBookkeeping(t *testing.T) {
	rs := classbench.Generate(classbench.FW1(), 200, 132)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	leavesBefore := len(tr.Leaves())
	d, err := tr.DeleteDelta(7)
	if err != nil {
		t.Fatal(err)
	}
	if d.RuleAppended || d.DisabledRule != 7 {
		t.Fatalf("delete delta header wrong: %+v", d)
	}
	if len(d.KidEdits) != 0 {
		t.Fatalf("delete emitted %d kid edits", len(d.KidEdits))
	}
	if len(tr.Leaves()) != leavesBefore {
		t.Fatalf("delete grew the leaf table: %d -> %d", leavesBefore, len(tr.Leaves()))
	}
	for _, le := range d.LeafEdits {
		if le.New {
			t.Fatalf("delete marked leaf %d as new", le.Index)
		}
		for _, id := range le.Rules {
			if id == 7 {
				t.Fatalf("leaf %d still lists the deleted rule", le.Index)
			}
		}
	}
}
