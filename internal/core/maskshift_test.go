package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rule"
)

// These properties pin down the heart of the paper's contribution: the
// per-dimension mask/shift encoding of cuts must compute exactly the
// geometric child index, for every region depth and cut-bit combination.

// geometricIndex computes the child index from first principles: extract
// the next bits[i] top-8 bits of each cut dimension below the region
// prefix and combine them most-significant-dimension-first.
func geometricIndex(p rule.Packet, dims, bits []int, prefixLen [rule.NumDims]int) int {
	idx := 0
	for i, d := range dims {
		L := prefixLen[d]
		k := bits[i]
		top8 := p.Top8(d)
		comp := int(top8>>uint(8-L-k)) & (1<<uint(k) - 1)
		idx = idx<<uint(k) | comp
	}
	return idx
}

func TestMaskShiftEqualsGeometricIndex(t *testing.T) {
	f := func(seed int64, sip, dip uint32, sp, dp uint16, proto uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random region and cut: pick 1-3 distinct dims, a prefix depth
		// and cut bits per dim such that L+k <= 8.
		nd := 1 + rng.Intn(3)
		perm := rng.Perm(rule.NumDims)[:nd]
		var prefixLen [rule.NumDims]int
		dims := make([]int, 0, nd)
		bits := make([]int, 0, nd)
		total := 0
		for _, d := range perm {
			L := rng.Intn(8)
			maxK := 8 - L
			k := 1 + rng.Intn(maxK)
			if total+k > 8 { // keep np <= 256 like the hardware format
				k = 8 - total
			}
			if k <= 0 {
				continue
			}
			total += k
			prefixLen[d] = L
			dims = append(dims, d)
			bits = append(bits, k)
		}
		if len(dims) == 0 {
			return true
		}
		cuts := makeCuts(dims, bits, prefixLen)
		p := rule.Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: proto}
		got := ChildIndex(cuts, p)
		want := geometricIndex(p, dims, bits, prefixLen)
		if got != want {
			t.Logf("dims=%v bits=%v prefixLen=%v: mask/shift=%d geometric=%d", dims, bits, prefixLen, got, want)
			return false
		}
		np := 1
		for _, k := range bits {
			np <<= uint(k)
		}
		return got >= 0 && got < np
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMaskShiftSiblingPacketsShareChildren(t *testing.T) {
	// Two packets identical in the cut bits of the cut dimensions must
	// route to the same child regardless of all other bits.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2000; trial++ {
		d := rng.Intn(rule.NumDims)
		L := rng.Intn(5)
		k := 1 + rng.Intn(8-L)
		var prefixLen [rule.NumDims]int
		prefixLen[d] = L
		cuts := makeCuts([]int{d}, []int{k}, prefixLen)

		base := rule.Packet{SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)), Proto: uint8(rng.Intn(256))}
		// Mutate bits of dimension d outside the mask window.
		other := base
		w := rule.DimBits[d]
		windowTop := w - uint(L) // exclusive top of cut window
		windowBot := w - uint(L) - uint(k)
		mutate := rng.Uint32()
		// Clear the window bits of the mutation.
		var windowMask uint32
		for b := windowBot; b < windowTop; b++ {
			windowMask |= 1 << b
		}
		mutate &^= windowMask
		switch d {
		case rule.DimSrcIP:
			other.SrcIP ^= mutate
		case rule.DimDstIP:
			other.DstIP ^= mutate
		case rule.DimSrcPort:
			other.SrcPort ^= uint16(mutate)
		case rule.DimDstPort:
			other.DstPort ^= uint16(mutate)
		case rule.DimProto:
			other.Proto ^= uint8(mutate)
		}
		if ChildIndex(cuts, base) != ChildIndex(cuts, other) {
			t.Fatalf("trial %d: packets differing only outside the cut window routed differently (dim %d L=%d k=%d)",
				trial, d, L, k)
		}
	}
}

func TestStuckRulesDetection(t *testing.T) {
	b := &builder{cfg: Config{}, rules: rule.RuleSet{
		// Rule 0: wildcard everywhere -> stuck at the root.
		rule.New(0, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true),
		// Rule 1: exact host -> not stuck at the root.
		rule.New(1, 0x0A0B0C0D, 32, 0x01020304, 32, rule.Range{Lo: 80, Hi: 80}, rule.Range{Lo: 80, Hi: 80}, 6, false),
	}}
	ids := []int32{0, 1}
	if got := b.stuckRules(ids, [rule.NumDims]int{}, [rule.NumDims]uint32{}); got != 1 {
		t.Errorf("stuck = %d, want 1", got)
	}
	// With every dimension's top-8 bits consumed, both rules are stuck.
	var deep [rule.NumDims]int
	for d := range deep {
		deep[d] = 8
	}
	if got := b.stuckRules(ids, deep, [rule.NumDims]uint32{}); got != 2 {
		t.Errorf("deep stuck = %d, want 2", got)
	}
}
