package core

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func TestInsertThenClassify(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 110)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	// Insert 50 additional rules one at a time.
	extra := classbench.Generate(classbench.IPC1(), 50, 111)
	full := append(append(rule.RuleSet{}, rs...), rule.RuleSet{}...)
	for i := range extra {
		r := extra[i]
		r.ID = len(full)
		if err := tr.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		full = append(full, r)
	}
	trace := classbench.GenerateTrace(full, 4000, 112)
	for i, p := range trace {
		if got, want := tr.Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d after inserts: tree=%d linear=%d", i, got, want)
		}
	}
	// The updated tree must re-encode and simulate correctly.
	img, err := tr.Encode()
	if err != nil {
		t.Fatalf("encode after insert: %v", err)
	}
	for i, p := range trace[:500] {
		if got, want := interpretImage(img, p), full.Match(p); got != want {
			t.Fatalf("image packet %d after inserts: %d vs %d", i, got, want)
		}
	}
}

func TestInsertRejectsBadID(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 50, 113)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	r := rule.New(7, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	if err := tr.Insert(r); err == nil {
		t.Error("insert with non-appending ID accepted")
	}
	bad := rule.New(50, 0, 0, 0, 0, rule.Range{Lo: 9, Hi: 1}, rule.FullRange(rule.DimDstPort), 0, true)
	if err := tr.Insert(bad); err == nil {
		t.Error("insert with inverted range accepted")
	}
}

func TestInsertWildcardReachesEveryPath(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 200, 114)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	wild := rule.New(len(rs), 0, 0, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	if err := tr.Insert(wild); err != nil {
		t.Fatal(err)
	}
	// Any packet that misses all original rules must now hit the
	// wildcard.
	p := rule.Packet{SrcIP: 0xFEFEFEFE, DstIP: 0x01010101, SrcPort: 60123, DstPort: 60321, Proto: 201}
	if rs.Match(p) == -1 {
		if got := tr.Classify(p); got != len(rs) {
			t.Errorf("wildcard not found: got %d want %d", got, len(rs))
		}
	}
}

func TestDeleteRule(t *testing.T) {
	rs := classbench.Generate(classbench.FW1(), 250, 115)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	victim := 3
	if err := tr.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// Build the expected semantics: same set minus the victim.
	expect := func(p rule.Packet) int {
		for i := range rs {
			if i == victim {
				continue
			}
			if rs[i].Matches(p) {
				return i
			}
		}
		return -1
	}
	for i, p := range classbench.GenerateTrace(rs, 4000, 116) {
		if got, want := tr.Classify(p), expect(p); got != want {
			t.Fatalf("packet %d after delete: tree=%d want=%d", i, got, want)
		}
	}
	if err := tr.Delete(999); err == nil {
		t.Error("delete of unknown rule accepted")
	}
}

func TestDeleteThenEncode(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 150, 117)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 10, 20} {
		if err := tr.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Encode(); err != nil {
		t.Fatalf("encode after delete: %v", err)
	}
}

func TestDegradationGrowsWithInserts(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 400, 118)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Degradation()
	// Many broad inserts inflate leaves.
	for i := 0; i < 60; i++ {
		r := rule.New(len(rs)+i, 0, 0, 0, 0,
			rule.Range{Lo: uint32(i), Hi: 65535}, rule.FullRange(rule.DimDstPort), 0, true)
		if err := tr.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.Degradation()
	if after < before {
		t.Errorf("degradation fell from %.3f to %.3f after broad inserts", before, after)
	}
}

func TestInsertUnsharesLeaves(t *testing.T) {
	// Regression: a rule overlapping one region of a deduplicated leaf
	// must not appear in the other regions sharing that leaf.
	rs := classbench.Generate(classbench.ACL1(), 300, 119)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	// Insert a narrow rule (single host, single port).
	narrow := rule.New(len(rs), 0x0A0B0C0D, 32, 0x01020304, 32,
		rule.Range{Lo: 7, Hi: 7}, rule.Range{Lo: 9, Hi: 9}, 6, false)
	if err := tr.Insert(narrow); err != nil {
		t.Fatal(err)
	}
	full := append(append(rule.RuleSet{}, rs...), narrow)
	hit := rule.Packet{SrcIP: 0x0A0B0C0D, DstIP: 0x01020304, SrcPort: 7, DstPort: 9, Proto: 6}
	if got := tr.Classify(hit); got != full.Match(hit) {
		t.Errorf("narrow insert not found: %d vs %d", got, full.Match(hit))
	}
	for i, p := range classbench.GenerateTrace(full, 3000, 120) {
		if got, want := tr.Classify(p), full.Match(p); got != want {
			t.Fatalf("packet %d: %d vs %d", i, got, want)
		}
	}
}
