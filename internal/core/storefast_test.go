package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func randEncodedRule(rng *rand.Rand) EncodedRule {
	return EncodedRule{
		SrcPortLo: uint16(rng.Uint32()),
		SrcPortHi: uint16(rng.Uint32()),
		DstPortLo: uint16(rng.Uint32()),
		DstPortHi: uint16(rng.Uint32()),
		SrcAddr:   rng.Uint32(),
		SrcCode:   uint8(rng.Intn(8)),
		DstAddr:   rng.Uint32(),
		DstCode:   uint8(rng.Intn(8)),
		ProtoVal:  uint8(rng.Uint32()),
		ProtoWild: rng.Intn(2) == 1,
		ID:        uint16(rng.Uint32()),
		End:       rng.Intn(2) == 1,
	}
}

// TestStoreFastPathByteIdentity pins that the byte-aligned store (three
// little-endian word stores) and the bit-by-bit oracle produce identical
// bytes for every slot position, over random rules, edge patterns, and
// previously dirty memory (store must fully overwrite its slot).
func TestStoreFastPathByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	edge := []EncodedRule{
		{},
		{SrcPortLo: 0xFFFF, SrcPortHi: 0xFFFF, DstPortLo: 0xFFFF, DstPortHi: 0xFFFF,
			SrcAddr: 0xFFFFFFFF, SrcCode: 7, DstAddr: 0xFFFFFFFF, DstCode: 7,
			ProtoVal: 0xFF, ProtoWild: true, ID: 0xFFFF, End: true},
		{ID: SentinelID, End: true},                  // sentinel slot
		{DstAddr: 1 << 29},                           // straddles the bit-128 boundary
		{DstAddr: 0x1FFFFFFF},                        // fills bits 99..127 exactly
		{SrcCode: 0xFF, DstCode: 0xFF, ID: 0x8001},   // codes above 3 bits must truncate alike
		{ProtoWild: true}, {End: true}, {SrcCode: 4}, // single-bit probes
	}
	fast := make([]byte, WordBytes)
	slow := make([]byte, WordBytes)
	check := func(er EncodedRule, pos int, fill byte) {
		for i := range fast {
			fast[i], slow[i] = fill, fill
		}
		er.store(fast, pos)
		er.storeBitwise(slow, pos)
		if !bytes.Equal(fast, slow) {
			t.Fatalf("store mismatch at pos %d fill %#x for %+v\nfast %x\nslow %x",
				pos, fill, er, fast, slow)
		}
		if got := LoadRule(fast, pos); got.SrcCode == er.SrcCode&7 && got.DstCode == er.DstCode&7 {
			want := er
			want.SrcCode &= 7
			want.DstCode &= 7
			if got != want {
				t.Fatalf("LoadRule(store) = %+v, want %+v", got, want)
			}
		}
	}
	for pos := 0; pos < RulesPerWord; pos++ {
		for _, er := range edge {
			check(er, pos, 0x00)
			check(er, pos, 0xFF)
		}
		for i := 0; i < 200; i++ {
			check(randEncodedRule(rng), pos, byte(rng.Intn(256)))
		}
	}
}

func BenchmarkStoreRuleSlot(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rules := make([]EncodedRule, 64)
	for i := range rules {
		rules[i] = randEncodedRule(rng)
	}
	w := make([]byte, WordBytes)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rules[i&63].store(w, i%RulesPerWord)
		}
	})
	b.Run("bitwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rules[i&63].storeBitwise(w, i%RulesPerWord)
		}
	})
}
