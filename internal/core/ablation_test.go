package core

import (
	"testing"

	"repro/internal/classbench"
)

// Ablation-oriented tests for the design decisions the paper calls out in
// §3; the quantitative versions live in the repository-level benchmarks.

func TestAblationStartCutsReducesBuildWork(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 1200, 97)
	cfg2 := DefaultConfig(HiCuts)
	cfg2.StartCuts = 2
	t2, err := Build(rs, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	t32, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	// §3: "32 cuts is a much better starting position than 2 as it leads
	// to a significant decrease in computation". Starting at 2 must not
	// do less cut-evaluation work than starting at 32.
	if t2.Stats().CutEvaluations < t32.Stats().CutEvaluations {
		t.Errorf("start=2 evaluations %d < start=32 evaluations %d",
			t2.Stats().CutEvaluations, t32.Stats().CutEvaluations)
	}
	// Both variants classify identically.
	for _, p := range classbench.GenerateTrace(rs, 800, 98) {
		if t2.Classify(p) != t32.Classify(p) {
			t.Fatal("start-cut ablation changed classification results")
		}
	}
}

func TestAblationLeafPointersCostCycle(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 800, 99)
	rulesIn, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	cfgP := DefaultConfig(HyperCuts)
	cfgP.LeafPointers = true
	ptrs, err := Build(rs, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	// §3: storing rules in leaves "presents data one clock cycle
	// earlier" — the pointer variant must be at least one cycle worse.
	if ptrs.WorstCaseCycles() < rulesIn.WorstCaseCycles()+1 {
		t.Errorf("pointer leaves worst case %d, rules-in-leaf %d; expected >= +1 cycle",
			ptrs.WorstCaseCycles(), rulesIn.WorstCaseCycles())
	}
	// Pointer trees still classify correctly (analytically).
	for _, p := range classbench.GenerateTrace(rs, 1000, 100) {
		if got, want := ptrs.Classify(p), rs.Match(p); got != want {
			t.Fatalf("pointer-leaf tree misclassifies: %d vs %d", got, want)
		}
	}
	// Walk cycle accounting includes the extra fetch.
	for _, p := range classbench.GenerateTrace(rs, 200, 101) {
		pr := ptrs.Walk(p)
		rr := rulesIn.Walk(p)
		if pr.Match != rr.Match {
			t.Fatal("walk match mismatch between ablation variants")
		}
	}
}

func TestAblationCutCap(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 1500, 102)
	capped := DefaultConfig(HiCuts)
	capped.CutCap = 64
	tc, err := Build(rs, capped)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tc.Internals() {
		if len(n.Children) > 64 {
			t.Fatalf("node with %d children under CutCap=64", len(n.Children))
		}
	}
	for _, p := range classbench.GenerateTrace(rs, 800, 103) {
		if got, want := tc.Classify(p), rs.Match(p); got != want {
			t.Fatalf("capped tree misclassifies: %d vs %d", got, want)
		}
	}
}

func TestSpaceBudgetBoundsReplication(t *testing.T) {
	// The space budget must keep total leaf storage within a small
	// factor of spfac*n even on wildcard-heavy inputs.
	rs := classbench.Generate(classbench.FW1(), 1500, 104)
	tr, err := Build(rs, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	repl := float64(tr.Stats().ReplicatedRules) / float64(len(rs))
	if repl > 64 {
		t.Errorf("replication factor %.1f is runaway; space budget not effective", repl)
	}
	if tr.Stats().OverflowLeaves == 0 {
		t.Log("note: no overflow leaves on this input (acceptable)")
	}
}
