package core

import (
	"sort"
	"time"

	"repro/internal/rule"
)

// layout is the full-relayout path: it rearranges nodes into accelerator
// memory — all internal nodes first (breadth-first, root in word 0), then
// leaf storage packed according to the speed parameter (paper §3) — and
// rebuilds the leaf identity maps incremental updates maintain. The
// delta-apply path (Tree.applyDelta) refreshes only the leaf packing.
func (t *Tree) layout() error { // error kept for future packing policies
	layoutStart := time.Now()
	defer func() { t.layoutNanos = int64(time.Since(layoutStart)) }()
	t.internals = t.internals[:0]
	t.leafOrder = t.leafOrder[:0]

	// Breadth-first over internal nodes; collect distinct leaves in
	// first-encounter order. Distinctness is by pointer: the builder
	// already merged identical leaves. Leaf reference counts drive the
	// copy-on-write orphan tracking of Insert/Delete.
	t.leafIndex = map[*Node]int{}
	t.leafRefs = map[*Node]int{}
	t.leafParents = map[*Node]map[int]int{}
	t.orphans = 0
	seenI := map[*Node]bool{}
	queue := []*Node{t.Root}
	seenI[t.Root] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.Word = len(t.internals)
		n.Pos = 0
		t.internals = append(t.internals, n)
		for _, c := range n.Children {
			if c == nil {
				continue
			}
			if c.Leaf {
				if _, ok := t.leafIndex[c]; !ok {
					t.leafIndex[c] = len(t.leafOrder)
					t.leafOrder = append(t.leafOrder, c)
				}
				t.leafRefs[c]++
				t.addParent(c, n.Word)
				continue
			}
			if !seenI[c] {
				seenI[c] = true
				queue = append(queue, c)
			}
		}
	}
	t.rebuildOccupancy()
	t.packLeaves()
	return nil
}

// rebuildOccupancy reconstructs the rule→leaves index from a scan of the
// leaf table. Called from layout(), where every leafOrder entry is live.
func (t *Tree) rebuildOccupancy() {
	t.occ = make(map[int32]map[int32]struct{}, len(t.rules))
	for i, l := range t.leafOrder {
		for _, rid := range l.Rules {
			t.occAdd(rid, int32(i))
		}
	}
}

// addParent records one more internal word slot referencing leaf c.
func (t *Tree) addParent(c *Node, word int) {
	m := t.leafParents[c]
	if m == nil {
		m = make(map[int]int, 2)
		t.leafParents[c] = m
	}
	m[word]++
}

// removeParent drops one internal word slot reference to leaf c.
func (t *Tree) removeParent(c *Node, word int) {
	m := t.leafParents[c]
	if m[word]--; m[word] == 0 {
		delete(m, word)
		if len(m) == 0 {
			delete(t.leafParents, c)
		}
	}
}

// occAdd records that leaf li's rule list contains rid.
func (t *Tree) occAdd(rid, li int32) {
	s := t.occ[rid]
	if s == nil {
		s = make(map[int32]struct{}, 4)
		t.occ[rid] = s
	}
	s[li] = struct{}{}
}

// occRemove drops leaf li from rid's occupancy set.
func (t *Tree) occRemove(rid, li int32) {
	s := t.occ[rid]
	delete(s, li)
	if len(s) == 0 {
		delete(t.occ, rid)
	}
}

// RuleLeaves returns the live leaf-table indices whose rule lists contain
// rule id, ascending. It is an O(occupied leaves) read of the occupancy
// index DeleteDelta resolves updates through.
func (t *Tree) RuleLeaves(id int) []int {
	s := t.occ[int32(id)]
	if len(s) == 0 {
		return nil
	}
	out := make([]int, 0, len(s))
	for li := range s {
		out = append(out, int(li))
	}
	sort.Ints(out)
	return out
}

// packLeaves assigns Word/Pos to every leaf-table entry and recomputes
// the word count. It is shared by the full relayout and the per-update
// delta-apply path: leaf lists grow and shrink under incremental updates,
// so their packing must be refreshed, but internal words never move.
// Orphaned leaves still occupy storage here (their indices must stay
// stable for delta replay); Relayout compacts them away.
//
// With the LeafPointers ablation, leaves hold 20-bit rule pointers (240
// per word) instead of full 160-bit rules, and a rule table (30 rules per
// word) is appended after the leaves.
func (t *Tree) packLeaves() {
	slots := t.leafSlots()
	word := len(t.internals)
	pos := 0
	for _, l := range t.leafOrder {
		word, pos = t.placeLeaf(l, word, pos, slots)
	}
	t.recomputeWords()
	// Structures larger than the pointer field can address are still
	// useful analytically (paper Table 4 reports sizes well beyond the
	// 1024-word device); Encode enforces addressability when an actual
	// memory image is requested.
}

// placeLeaf assigns l's Word/Pos given the packing cursor and returns the
// cursor after l. It is the one packing step shared by the full repack
// and the incremental per-update repack.
func (t *Tree) placeLeaf(l *Node, word, pos, slots int) (int, int) {
	n := len(l.Rules)
	if n == 0 {
		n = 1 // the empty leaf stores one sentinel slot
	}
	if t.cfg.Speed == 1 && pos > 0 && pos+n > slots {
		// Eq. 6: with speed 1 a leaf starts mid-word only if it
		// fits entirely in the word.
		word++
		pos = 0
	}
	l.Word = word
	l.Pos = pos
	pos += n
	word += pos / slots
	pos %= slots
	return word, pos
}

// cursorAfter returns the packing cursor immediately past leaf-table
// entry i-1 (equivalently, where entry i's placement decision starts) in
// O(1), derived from the stored layout of the preceding leaf. Valid only
// when entries before i carry final Word/Pos values.
func (t *Tree) cursorAfter(i, slots int) (word, pos int) {
	if i == 0 {
		return len(t.internals), 0
	}
	prev := t.leafOrder[i-1]
	n := len(prev.Rules)
	if n == 0 {
		n = 1
	}
	pos = prev.Pos + n
	word = prev.Word + pos/slots
	pos %= slots
	return word, pos
}

// recomputeWords refreshes the total word count from the last leaf's
// stored placement (plus the LeafPointers rule table, which grows with
// the ruleset under inserts even when no leaf moved).
func (t *Tree) recomputeWords() {
	slots := t.leafSlots()
	word, pos := t.cursorAfter(len(t.leafOrder), slots)
	if pos > 0 {
		word++
	}
	if t.cfg.LeafPointers {
		// Rule table: the actual rules, stored once.
		word += (len(t.rules) + RulesPerWord - 1) / RulesPerWord
	}
	t.words = word
}

// Internals returns the internal nodes in layout order (root first).
func (t *Tree) Internals() []*Node { return t.internals }

// Leaves returns the distinct leaves in layout order.
func (t *Tree) Leaves() []*Node { return t.leafOrder }

// PointerSlotsPerWord is the leaf capacity under the LeafPointers
// ablation: 20-bit pointers (12-bit word + 5-bit position + flags), 240
// to a 4800-bit word.
const PointerSlotsPerWord = WordBits / 20

// leafSlots returns the per-word leaf capacity for this tree's layout.
func (t *Tree) leafSlots() int {
	if t.cfg.LeafPointers {
		return PointerSlotsPerWord
	}
	return RulesPerWord
}

// LeafWords returns how many memory words leaf l's storage spans.
func LeafWords(l *Node) int {
	n := len(l.Rules)
	if n == 0 {
		n = 1
	}
	return (l.Pos+n-1)/RulesPerWord + 1
}

// leafWordsIn is LeafWords under a configurable per-word slot count.
func leafWordsIn(l *Node, slots int) int {
	n := len(l.Rules)
	if n == 0 {
		n = 1
	}
	return (l.Pos+n-1)/slots + 1
}

// PathInfo describes the traversal cost of one packet through the tree.
type PathInfo struct {
	// Internal is the number of internal nodes traversed including the
	// root (the x of Eqs. 5 and 7).
	Internal int
	// LeafWords is the number of leaf memory words read (scan stops at
	// the first match).
	LeafWords int
	// MatchPos is the 0-based position of the matching rule within the
	// leaf (the z of Eqs. 5 and 7), or -1 when no rule matches.
	MatchPos int
	// Match is the matching rule ID or -1.
	Match int
}

// Cycles returns the unpipelined clock-cycle count of the classification:
// Eq. 5 (speed 0) / Eq. 7 (speed 1) when a match is found, where the
// root-node computation accounts for one cycle and each further internal
// node and each leaf word read accounts for one cycle.
func (pi PathInfo) Cycles() int { return pi.Internal + pi.LeafWords }

// Walk classifies p on the logical tree and reports the traversal cost the
// accelerator would incur. It is the analytical counterpart of the
// cycle-accurate simulator in internal/hwsim: the simulator's measured
// cycle counts are property-tested against Walk's Eq. 5/7 predictions.
func (t *Tree) Walk(p rule.Packet) PathInfo {
	pi := PathInfo{Match: -1, MatchPos: -1}
	n := t.Root
	for n != nil && !n.Leaf {
		pi.Internal++
		n = n.Children[ChildIndex(n.Cuts, p)]
	}
	if n == nil {
		// Empty region: the hardware encodes these as a pointer to the
		// shared empty leaf, whose single sentinel word is still read.
		pi.LeafWords = 1
		return pi
	}
	// Scan the leaf word by word; within a word the 30 comparators work
	// in parallel, so cost is counted per word.
	slots := t.leafSlots()
	extra := 0
	if t.cfg.LeafPointers {
		// Pointer leaves add one dependent rule-table fetch before data
		// can be presented (the cycle the rules-in-leaf modification
		// saves, paper §3).
		extra = 1
	}
	count := len(n.Rules)
	if count == 0 {
		pi.LeafWords = 1
		return pi
	}
	for z, id := range n.Rules {
		if t.rules[id].Matches(p) {
			pi.Match = int(id)
			pi.MatchPos = z
			pi.LeafWords = (n.Pos+z)/slots + 1 + extra
			return pi
		}
	}
	pi.LeafWords = (n.Pos+count-1)/slots + 1 + extra
	return pi
}

// WorstCaseCycles returns the worst-case clock cycles (equivalently,
// memory accesses) to classify any packet: the deepest root-leaf path plus
// a full scan of its leaf storage. This is the hardware quantity of paper
// Tables 4 and 8. The pipelined accelerator overlaps the root cycle of
// one packet with the leaf search of the previous, so sustained
// throughput is one packet per max(1, WorstCaseCycles-1) cycles in the
// worst case (paper §4).
func (t *Tree) WorstCaseCycles() int {
	slots := t.leafSlots()
	extra := 0
	if t.cfg.LeafPointers {
		extra = 1
	}
	memo := map[*Node]int{}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n == nil {
			return 1 // empty leaf read
		}
		if n.Leaf {
			return leafWordsIn(n, slots) + extra
		}
		if v, ok := memo[n]; ok {
			return v
		}
		worst := 0
		for _, c := range n.Children {
			if w := walk(c); w > worst {
				worst = w
			}
		}
		v := 1 + worst
		memo[n] = v
		return v
	}
	return walk(t.Root)
}
