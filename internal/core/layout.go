package core

import "repro/internal/rule"

// layout is the full-relayout path: it rearranges nodes into accelerator
// memory — all internal nodes first (breadth-first, root in word 0), then
// leaf storage packed according to the speed parameter (paper §3) — and
// rebuilds the leaf identity maps incremental updates maintain. The
// delta-apply path (Tree.applyDelta) refreshes only the leaf packing.
func (t *Tree) layout() error { // error kept for future packing policies
	t.internals = t.internals[:0]
	t.leafOrder = t.leafOrder[:0]

	// Breadth-first over internal nodes; collect distinct leaves in
	// first-encounter order. Distinctness is by pointer: the builder
	// already merged identical leaves. Leaf reference counts drive the
	// copy-on-write orphan tracking of Insert/Delete.
	t.leafIndex = map[*Node]int{}
	t.leafRefs = map[*Node]int{}
	t.orphans = 0
	seenI := map[*Node]bool{}
	queue := []*Node{t.Root}
	seenI[t.Root] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.Word = len(t.internals)
		n.Pos = 0
		t.internals = append(t.internals, n)
		for _, c := range n.Children {
			if c == nil {
				continue
			}
			if c.Leaf {
				if _, ok := t.leafIndex[c]; !ok {
					t.leafIndex[c] = len(t.leafOrder)
					t.leafOrder = append(t.leafOrder, c)
				}
				t.leafRefs[c]++
				continue
			}
			if !seenI[c] {
				seenI[c] = true
				queue = append(queue, c)
			}
		}
	}
	t.packLeaves()
	return nil
}

// packLeaves assigns Word/Pos to every leaf-table entry and recomputes
// the word count. It is shared by the full relayout and the per-update
// delta-apply path: leaf lists grow and shrink under incremental updates,
// so their packing must be refreshed, but internal words never move.
// Orphaned leaves still occupy storage here (their indices must stay
// stable for delta replay); Relayout compacts them away.
//
// With the LeafPointers ablation, leaves hold 20-bit rule pointers (240
// per word) instead of full 160-bit rules, and a rule table (30 rules per
// word) is appended after the leaves.
func (t *Tree) packLeaves() {
	slots := RulesPerWord
	if t.cfg.LeafPointers {
		slots = PointerSlotsPerWord
	}
	word := len(t.internals)
	pos := 0
	for _, l := range t.leafOrder {
		n := len(l.Rules)
		if n == 0 {
			n = 1 // the empty leaf stores one sentinel slot
		}
		if t.cfg.Speed == 1 && pos > 0 && pos+n > slots {
			// Eq. 6: with speed 1 a leaf starts mid-word only if it
			// fits entirely in the word.
			word++
			pos = 0
		}
		l.Word = word
		l.Pos = pos
		pos += n
		word += pos / slots
		pos %= slots
	}
	if pos > 0 {
		word++
	}
	if t.cfg.LeafPointers {
		// Rule table: the actual rules, stored once.
		word += (len(t.rules) + RulesPerWord - 1) / RulesPerWord
	}
	t.words = word
	// Structures larger than the pointer field can address are still
	// useful analytically (paper Table 4 reports sizes well beyond the
	// 1024-word device); Encode enforces addressability when an actual
	// memory image is requested.
}

// Internals returns the internal nodes in layout order (root first).
func (t *Tree) Internals() []*Node { return t.internals }

// Leaves returns the distinct leaves in layout order.
func (t *Tree) Leaves() []*Node { return t.leafOrder }

// PointerSlotsPerWord is the leaf capacity under the LeafPointers
// ablation: 20-bit pointers (12-bit word + 5-bit position + flags), 240
// to a 4800-bit word.
const PointerSlotsPerWord = WordBits / 20

// leafSlots returns the per-word leaf capacity for this tree's layout.
func (t *Tree) leafSlots() int {
	if t.cfg.LeafPointers {
		return PointerSlotsPerWord
	}
	return RulesPerWord
}

// LeafWords returns how many memory words leaf l's storage spans.
func LeafWords(l *Node) int {
	n := len(l.Rules)
	if n == 0 {
		n = 1
	}
	return (l.Pos+n-1)/RulesPerWord + 1
}

// leafWordsIn is LeafWords under a configurable per-word slot count.
func leafWordsIn(l *Node, slots int) int {
	n := len(l.Rules)
	if n == 0 {
		n = 1
	}
	return (l.Pos+n-1)/slots + 1
}

// PathInfo describes the traversal cost of one packet through the tree.
type PathInfo struct {
	// Internal is the number of internal nodes traversed including the
	// root (the x of Eqs. 5 and 7).
	Internal int
	// LeafWords is the number of leaf memory words read (scan stops at
	// the first match).
	LeafWords int
	// MatchPos is the 0-based position of the matching rule within the
	// leaf (the z of Eqs. 5 and 7), or -1 when no rule matches.
	MatchPos int
	// Match is the matching rule ID or -1.
	Match int
}

// Cycles returns the unpipelined clock-cycle count of the classification:
// Eq. 5 (speed 0) / Eq. 7 (speed 1) when a match is found, where the
// root-node computation accounts for one cycle and each further internal
// node and each leaf word read accounts for one cycle.
func (pi PathInfo) Cycles() int { return pi.Internal + pi.LeafWords }

// Walk classifies p on the logical tree and reports the traversal cost the
// accelerator would incur. It is the analytical counterpart of the
// cycle-accurate simulator in internal/hwsim: the simulator's measured
// cycle counts are property-tested against Walk's Eq. 5/7 predictions.
func (t *Tree) Walk(p rule.Packet) PathInfo {
	pi := PathInfo{Match: -1, MatchPos: -1}
	n := t.Root
	for n != nil && !n.Leaf {
		pi.Internal++
		n = n.Children[ChildIndex(n.Cuts, p)]
	}
	if n == nil {
		// Empty region: the hardware encodes these as a pointer to the
		// shared empty leaf, whose single sentinel word is still read.
		pi.LeafWords = 1
		return pi
	}
	// Scan the leaf word by word; within a word the 30 comparators work
	// in parallel, so cost is counted per word.
	slots := t.leafSlots()
	extra := 0
	if t.cfg.LeafPointers {
		// Pointer leaves add one dependent rule-table fetch before data
		// can be presented (the cycle the rules-in-leaf modification
		// saves, paper §3).
		extra = 1
	}
	count := len(n.Rules)
	if count == 0 {
		pi.LeafWords = 1
		return pi
	}
	for z, id := range n.Rules {
		if t.rules[id].Matches(p) {
			pi.Match = int(id)
			pi.MatchPos = z
			pi.LeafWords = (n.Pos+z)/slots + 1 + extra
			return pi
		}
	}
	pi.LeafWords = (n.Pos+count-1)/slots + 1 + extra
	return pi
}

// WorstCaseCycles returns the worst-case clock cycles (equivalently,
// memory accesses) to classify any packet: the deepest root-leaf path plus
// a full scan of its leaf storage. This is the hardware quantity of paper
// Tables 4 and 8. The pipelined accelerator overlaps the root cycle of
// one packet with the leaf search of the previous, so sustained
// throughput is one packet per max(1, WorstCaseCycles-1) cycles in the
// worst case (paper §4).
func (t *Tree) WorstCaseCycles() int {
	slots := t.leafSlots()
	extra := 0
	if t.cfg.LeafPointers {
		extra = 1
	}
	memo := map[*Node]int{}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		if n == nil {
			return 1 // empty leaf read
		}
		if n.Leaf {
			return leafWordsIn(n, slots) + extra
		}
		if v, ok := memo[n]; ok {
			return v
		}
		worst := 0
		for _, c := range n.Children {
			if w := walk(c); w > worst {
				worst = w
			}
		}
		v := 1 + worst
		memo[n] = v
		return v
	}
	return walk(t.Root)
}
