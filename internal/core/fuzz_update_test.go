package core

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/linear"
	"repro/internal/rule"
)

// FuzzInsertDelete drives random insert/delete sequences through the
// incremental-update pipeline and differentially verifies the result,
// for both HiCuts and HyperCuts configurations, against:
//
//   - the linear reference matcher over the live (non-deleted) rules;
//   - a fresh Build of the live ruleset (IDs remapped to positions,
//     matches mapped back);
//   - a full packLeaves rerun (the incremental repack must have produced
//     the identical layout);
//   - a from-scratch occupancy scan (the rule→leaves index must not
//     drift).
//
// Run in CI as a 15s smoke (`go test -fuzz=FuzzInsertDelete`); the seed
// corpus alone pins the properties in every ordinary `go test` run.
func FuzzInsertDelete(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, int64(1))
	f.Add([]byte{1, 1, 1, 1, 255, 254, 253}, int64(2008))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3, 9, 27}, int64(7))
	f.Add([]byte{250, 128, 4, 66, 190, 2, 8}, int64(41))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		seed = seed&0xff + 1
		for _, algo := range []Algorithm{HiCuts, HyperCuts} {
			rs := classbench.Generate(classbench.ACL1(), 100, seed)
			pool := classbench.Generate(classbench.FW1(), 48, seed+1)
			tr, err := Build(rs, DefaultConfig(algo))
			if err != nil {
				t.Fatalf("%v: Build: %v", algo, err)
			}
			// All rules ever added, by ID; deleted[id] marks removals.
			all := append(rule.RuleSet{}, rs...)
			deleted := make(map[int]bool)
			next := 0
			for _, b := range ops {
				if b&1 == 0 && next < len(pool) {
					r := pool[next]
					next++
					r.ID = tr.NumRules()
					if _, err := tr.InsertDelta(r); err != nil {
						t.Fatalf("%v: InsertDelta: %v", algo, err)
					}
					all = append(all, r)
				} else {
					id := int(b>>1) % tr.NumRules()
					if _, err := tr.DeleteDelta(id); err != nil {
						t.Fatalf("%v: DeleteDelta(%d): %v", algo, id, err)
					}
					deleted[id] = true
				}
			}

			// Layout equivalence: a full repack must be a no-op.
			before := snapshotLayout(tr)
			tr.packLeaves()
			after := snapshotLayout(tr)
			if before.words != after.words {
				t.Fatalf("%v: incremental words=%d, full repack=%d", algo, before.words, after.words)
			}
			for i := range after.word {
				if before.word[i] != after.word[i] || before.pos[i] != after.pos[i] {
					t.Fatalf("%v: leaf %d incremental (%d,%d) != full (%d,%d)",
						algo, i, before.word[i], before.pos[i], after.word[i], after.pos[i])
				}
			}

			// Occupancy index equivalence.
			want := scanOccupancy(tr)
			if len(tr.occ) != len(want) {
				t.Fatalf("%v: occupancy index lists %d rules, scan finds %d", algo, len(tr.occ), len(want))
			}
			for rid, ws := range want {
				gs := tr.occ[rid]
				if len(gs) != len(ws) {
					t.Fatalf("%v: rule %d: index %d leaves, scan %d", algo, rid, len(gs), len(ws))
				}
				for li := range ws {
					if _, ok := gs[li]; !ok {
						t.Fatalf("%v: rule %d: scan has leaf %d, index does not", algo, rid, li)
					}
				}
			}

			// Differential classification: live rules only.
			live := make(rule.RuleSet, 0, len(all))
			remap := make([]int, 0, len(all)) // new ID -> original ID
			for id := range all {
				if deleted[id] {
					continue
				}
				r := all[id]
				r.ID = len(live)
				remap = append(remap, id)
				live = append(live, r)
			}
			// Packets are drawn while every rule is still well-formed
			// (traffic aimed at deleted rules is the interesting case);
			// the deleted rules are disabled afterwards so the linear
			// reference never matches them.
			trace := classbench.GenerateTrace(all, 150, seed+2)
			lin := linear.New(all)
			for id := range deleted {
				all[id].F[rule.DimProto] = rule.Range{Lo: 1, Hi: 0}
			}
			fresh, err := Build(live, DefaultConfig(algo))
			if err != nil {
				t.Fatalf("%v: fresh Build: %v", algo, err)
			}
			for i, p := range trace {
				got := tr.Classify(p)
				wantID := lin.Classify(p)
				if got != wantID {
					t.Fatalf("%v: packet %d: incremental tree matched %d, linear %d", algo, i, got, wantID)
				}
				fm := fresh.Classify(p)
				if fm >= 0 {
					fm = remap[fm]
				}
				if fm != wantID {
					t.Fatalf("%v: packet %d: fresh build matched %d, linear %d", algo, i, fm, wantID)
				}
			}
		}
	})
}
