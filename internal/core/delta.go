package core

import "repro/internal/rule"

// Delta is the structured difference one incremental update (Insert or
// Delete) makes to the laid-out tree. It is the unit of the paper's §4
// control-plane update path: the logical tree held off-chip absorbs the
// change, and the delta carries exactly the leaf-level edits a loaded
// image (engine.Patch, or the hardware write interface) must replay to
// stay equivalent — no full recompile, no re-encoding of untouched words.
//
// Internal nodes never change under incremental updates: Insert and
// Delete only grow, shrink or replace leaves, so a delta is leaf edits
// plus child-slot repointings. Deltas are positional: LeafEdit.Index and
// KidEdit.Word refer to the tree's layout numbering as of the update, so
// deltas must be applied to an image compiled from the tree state
// immediately before the update, in order.
type Delta struct {
	// RuleAppended reports that AppendedRule was appended to the ruleset
	// (an Insert); the image must extend its rule table by one.
	RuleAppended bool
	// AppendedRule is the inserted rule when RuleAppended.
	AppendedRule rule.Rule
	// DisabledRule is the rule ID a Delete disabled, or -1. The edited
	// leaves no longer reference it, so images need not touch their rule
	// tables; the ID is carried for observability and the hardware path.
	DisabledRule int
	// LeafEdits lists leaves whose rule lists changed. Edits with New set
	// extend the leaf table (indices are contiguous from its prior
	// length); the rest rewrite existing entries in place.
	LeafEdits []LeafEdit
	// KidEdits repoint child slots of internal nodes at (new) leaves.
	KidEdits []KidEdit
	// Orphaned lists leaf-table indices that lost their last reference;
	// they stay allocated (stable indices) until the next full relayout.
	Orphaned []int

	// FirstDirtyLeaf is the smallest leaf-table index whose packing or
	// content changed, or -1 when the update touched no leaf storage.
	// Leaves (and the memory words holding them) strictly before it keep
	// the layout of the previous epoch, so image patchers can start
	// their copy/rewrite there instead of at word 0.
	FirstDirtyLeaf int
	// DirtyWords lists the half-open memory-word ranges whose encoded
	// content this update changed, ascending and non-overlapping: the
	// repacked leaf segments plus one single-word range per repointed
	// internal node. Replaying the delta into a device image
	// (Tree.PatchImage, hwsim.Sim.ApplyDelta) rewrites exactly these
	// words — the paper's §4 claim that an update is a handful of word
	// writes, not a reload.
	DirtyWords []WordRange
	// WordsBefore and WordsAfter are the structure's total word count on
	// either side of the update; they differ when leaf storage grew past
	// (or shrank under) a word boundary, telling image holders to extend
	// or truncate before rewriting dirty words.
	WordsBefore, WordsAfter int
}

// WordRange is a half-open [Lo,Hi) range of memory-word indices.
type WordRange struct {
	Lo, Hi int
}

// FirstDirtyWord returns the lowest memory-word index the delta rewrites,
// or -1 when the update changed no words (a delete of a rule absent from
// every live leaf).
func (d *Delta) FirstDirtyWord() int {
	if len(d.DirtyWords) == 0 {
		return -1
	}
	return d.DirtyWords[0].Lo
}

// DirtyWordCount returns the number of memory words the delta rewrites —
// the write-interface cycles the paper's §4 update path charges.
func (d *Delta) DirtyWordCount() int {
	n := 0
	for _, r := range d.DirtyWords {
		n += r.Hi - r.Lo
	}
	return n
}

// LeafEdit is one leaf's new rule list.
type LeafEdit struct {
	// Index is the leaf's position in Tree.Leaves() (and the compiled
	// engine's leaf table).
	Index int
	// New marks an edit that appends a fresh leaf rather than rewriting
	// an existing one.
	New bool
	// Rules is the leaf's rule IDs after the edit, in priority order.
	Rules []int32
	// Keep counts the leading rule slots the edit left bit-identical:
	// an append changes only the new slot and the previous end flag
	// (Keep = len-2 of the new list), a removal shifts slots from the
	// removal point on. When the leaf itself does not move, word-level
	// image patching starts the rewrite at slot Keep instead of the
	// leaf's first word — for a 20-word leaf that is the difference
	// between rewriting 20 words and 1.
	Keep int
}

// KidEdit repoints one child slot of an internal node at a leaf.
type KidEdit struct {
	// Word is the internal node's layout number (engine node index).
	Word int
	// Slot is the child slot (cut entry) within the node.
	Slot int
	// Leaf is the leaf-table index the slot now references.
	Leaf int
}
