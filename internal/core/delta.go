package core

import "repro/internal/rule"

// Delta is the structured difference one incremental update (Insert or
// Delete) makes to the laid-out tree. It is the unit of the paper's §4
// control-plane update path: the logical tree held off-chip absorbs the
// change, and the delta carries exactly the leaf-level edits a loaded
// image (engine.Patch, or the hardware write interface) must replay to
// stay equivalent — no full recompile, no re-encoding of untouched words.
//
// Internal nodes never change under incremental updates: Insert and
// Delete only grow, shrink or replace leaves, so a delta is leaf edits
// plus child-slot repointings. Deltas are positional: LeafEdit.Index and
// KidEdit.Word refer to the tree's layout numbering as of the update, so
// deltas must be applied to an image compiled from the tree state
// immediately before the update, in order.
type Delta struct {
	// RuleAppended reports that AppendedRule was appended to the ruleset
	// (an Insert); the image must extend its rule table by one.
	RuleAppended bool
	// AppendedRule is the inserted rule when RuleAppended.
	AppendedRule rule.Rule
	// DisabledRule is the rule ID a Delete disabled, or -1. The edited
	// leaves no longer reference it, so images need not touch their rule
	// tables; the ID is carried for observability and the hardware path.
	DisabledRule int
	// LeafEdits lists leaves whose rule lists changed. Edits with New set
	// extend the leaf table (indices are contiguous from its prior
	// length); the rest rewrite existing entries in place.
	LeafEdits []LeafEdit
	// KidEdits repoint child slots of internal nodes at (new) leaves.
	KidEdits []KidEdit
	// Orphaned lists leaf-table indices that lost their last reference;
	// they stay allocated (stable indices) until the next full relayout.
	Orphaned []int
}

// LeafEdit is one leaf's new rule list.
type LeafEdit struct {
	// Index is the leaf's position in Tree.Leaves() (and the compiled
	// engine's leaf table).
	Index int
	// New marks an edit that appends a fresh leaf rather than rewriting
	// an existing one.
	New bool
	// Rules is the leaf's rule IDs after the edit, in priority order.
	Rules []int32
}

// KidEdit repoints one child slot of an internal node at a leaf.
type KidEdit struct {
	// Word is the internal node's layout number (engine node index).
	Word int
	// Slot is the child slot (cut entry) within the node.
	Slot int
	// Leaf is the leaf-table index the slot now references.
	Leaf int
}
