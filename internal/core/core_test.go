package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func buildOrDie(t *testing.T, rs rule.RuleSet, cfg Config) *Tree {
	t.Helper()
	tr, err := Build(rs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 10, 1)
	bad := []Config{
		{Algorithm: HiCuts, Speed: 2},
		{Algorithm: HiCuts, StartCuts: 3},
		{Algorithm: HiCuts, CutCap: 512},
		{Algorithm: HiCuts, StartCuts: 64, CutCap: 32},
		{Algorithm: HyperCuts, Spfac: 9},
	}
	for i, cfg := range bad {
		if _, err := Build(rs, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Build(rs, DefaultConfig(HiCuts)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if HiCuts.String() != "HiCuts" || HyperCuts.String() != "HyperCuts" {
		t.Error("Algorithm.String broken")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should still print")
	}
}

func TestClassifyAgreesWithLinear(t *testing.T) {
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
			rs := classbench.Generate(prof, 400, 33)
			tr := buildOrDie(t, rs, DefaultConfig(algo))
			trace := classbench.GenerateTrace(rs, 3000, 34)
			for i, p := range trace {
				if got, want := tr.Classify(p), rs.Match(p); got != want {
					t.Fatalf("%v/%s packet %d: tree=%d linear=%d", algo, prof.Name, i, got, want)
				}
			}
		}
	}
}

func TestWalkAgreesWithClassify(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 35)
	for _, speed := range []int{0, 1} {
		cfg := DefaultConfig(HyperCuts)
		cfg.Speed = speed
		tr := buildOrDie(t, rs, cfg)
		for _, p := range classbench.GenerateTrace(rs, 2000, 36) {
			pi := tr.Walk(p)
			if pi.Match != tr.Classify(p) {
				t.Fatalf("speed %d: Walk match %d != Classify %d", speed, pi.Match, tr.Classify(p))
			}
			if pi.Internal < 1 {
				t.Fatalf("path must traverse at least the root, got %d", pi.Internal)
			}
			if pi.LeafWords < 1 {
				t.Fatalf("leaf words %d", pi.LeafWords)
			}
			if pi.Cycles() != pi.Internal+pi.LeafWords {
				t.Fatalf("Cycles() inconsistent")
			}
		}
	}
}

func TestCutCountsRespectHardwareFormat(t *testing.T) {
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		rs := classbench.Generate(classbench.ACL1(), 800, 37)
		tr := buildOrDie(t, rs, DefaultConfig(algo))
		for _, n := range tr.Internals() {
			np := len(n.Children)
			if np < 2 || np > MaxCuts || np&(np-1) != 0 {
				t.Fatalf("%v: internal node with %d children", algo, np)
			}
			if algo == HiCuts && len(n.Cuts) != 1 {
				t.Fatalf("HiCuts node cuts %d dimensions", len(n.Cuts))
			}
		}
	}
}

func TestModifiedAlgorithmsStartAt32Cuts(t *testing.T) {
	// The root of a reasonably sized acl1 tree must use at least 32 cuts
	// (the modification of §3: starting position 32 instead of 2).
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		rs := classbench.Generate(classbench.ACL1(), 1000, 38)
		tr := buildOrDie(t, rs, DefaultConfig(algo))
		if np := len(tr.Root.Children); np < MinCuts {
			t.Errorf("%v root has %d cuts, want >= %d", algo, np, MinCuts)
		}
	}
}

func TestLayoutInvariants(t *testing.T) {
	for _, speed := range []int{0, 1} {
		cfg := DefaultConfig(HyperCuts)
		cfg.Speed = speed
		rs := classbench.Generate(classbench.ACL1(), 600, 39)
		tr := buildOrDie(t, rs, cfg)

		numInternal := len(tr.Internals())
		for i, n := range tr.Internals() {
			if n.Word != i {
				t.Fatalf("internal %d at word %d", i, n.Word)
			}
			if n.Leaf {
				t.Fatalf("leaf in internal list")
			}
		}
		if tr.Root.Word != 0 {
			t.Fatalf("root at word %d", tr.Root.Word)
		}
		prevEnd := numInternal * RulesPerWord // slot index space
		for _, l := range tr.Leaves() {
			if !l.Leaf {
				t.Fatalf("internal in leaf list")
			}
			if l.Word < numInternal {
				t.Fatalf("leaf at word %d overlaps internal words (%d)", l.Word, numInternal)
			}
			if l.Pos < 0 || l.Pos >= RulesPerWord {
				t.Fatalf("leaf pos %d", l.Pos)
			}
			n := len(l.Rules)
			if n == 0 {
				n = 1
			}
			start := l.Word*RulesPerWord + l.Pos
			if speed == 0 {
				// Speed 0: fully contiguous packing, no gaps.
				if start != prevEnd {
					t.Fatalf("speed 0: leaf starts at slot %d, previous ended at %d", start, prevEnd)
				}
			} else {
				// Eq. 6: leaves that fit a word never straddle one.
				if n <= RulesPerWord && l.Pos+n > RulesPerWord {
					t.Fatalf("speed 1: leaf with %d rules at pos %d straddles a word", n, l.Pos)
				}
				if start < prevEnd {
					t.Fatalf("speed 1: leaf overlaps previous storage")
				}
			}
			prevEnd = start + n
		}
		wantWords := (prevEnd + RulesPerWord - 1) / RulesPerWord
		if tr.Words() != wantWords {
			t.Fatalf("Words=%d want %d", tr.Words(), wantWords)
		}
		if tr.MemoryBytes() != tr.Words()*WordBytes {
			t.Fatalf("MemoryBytes inconsistent")
		}
	}
}

func TestSpeed0NeverUsesMoreMemory(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1()} {
		rs := classbench.Generate(prof, 700, 40)
		c0 := DefaultConfig(HyperCuts)
		c0.Speed = 0
		c1 := DefaultConfig(HyperCuts)
		c1.Speed = 1
		t0 := buildOrDie(t, rs, c0)
		t1 := buildOrDie(t, rs, c1)
		if t0.Words() > t1.Words() {
			t.Errorf("%s: speed 0 uses %d words, speed 1 uses %d; speed 0 must be most compact",
				prof.Name, t0.Words(), t1.Words())
		}
	}
}

func TestWorstCaseCyclesBoundsWalk(t *testing.T) {
	rs := classbench.Generate(classbench.IPC1(), 500, 41)
	for _, algo := range []Algorithm{HiCuts, HyperCuts} {
		tr := buildOrDie(t, rs, DefaultConfig(algo))
		worst := tr.WorstCaseCycles()
		if worst < 2 {
			t.Fatalf("%v worst case %d; minimum is root+leaf = 2", algo, worst)
		}
		for _, p := range classbench.GenerateTrace(rs, 3000, 42) {
			if c := tr.Walk(p).Cycles(); c > worst {
				t.Fatalf("%v: packet cycles %d exceed worst case %d", algo, c, worst)
			}
		}
	}
}

func TestTinyRulesetGetsInternalRoot(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 5, 43)
	tr := buildOrDie(t, rs, DefaultConfig(HiCuts))
	if tr.Root.Leaf {
		t.Fatal("root must be internal (register A holds an internal node)")
	}
	for _, p := range classbench.GenerateTrace(rs, 500, 44) {
		if got, want := tr.Classify(p), rs.Match(p); got != want {
			t.Fatalf("tiny set: tree=%d linear=%d", got, want)
		}
	}
	if tr.WorstCaseCycles() < 2 {
		t.Errorf("tiny set worst case %d", tr.WorstCaseCycles())
	}
}

func TestStartCuts2Ablation(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 400, 45)
	cfg := DefaultConfig(HiCuts)
	cfg.StartCuts = 2
	tr := buildOrDie(t, rs, cfg)
	for _, p := range classbench.GenerateTrace(rs, 1000, 46) {
		if got, want := tr.Classify(p), rs.Match(p); got != want {
			t.Fatalf("StartCuts=2: tree=%d linear=%d", got, want)
		}
	}
	// Starting at 2 must do more cut evaluations per node on average
	// than starting at 32 (that is the point of the modification).
	tr32 := buildOrDie(t, rs, DefaultConfig(HiCuts))
	ev2 := float64(tr.Stats().CutEvaluations) / float64(tr.Stats().Internal+1)
	ev32 := float64(tr32.Stats().CutEvaluations) / float64(tr32.Stats().Internal+1)
	if ev2 <= ev32 {
		t.Logf("note: start=2 evals/node %.1f vs start=32 %.1f", ev2, ev32)
	}
}

func TestMemoryGrowsWithRules(t *testing.T) {
	sizes := []int{60, 500, 2000}
	prev := 0
	for _, n := range sizes {
		rs := classbench.Generate(classbench.ACL1(), n, 47)
		tr := buildOrDie(t, rs, DefaultConfig(HyperCuts))
		if tr.MemoryBytes() < prev {
			t.Errorf("memory shrank from %d to %d at %d rules", prev, tr.MemoryBytes(), n)
		}
		prev = tr.MemoryBytes()
	}
}

func TestChildIndexWithinBounds(t *testing.T) {
	rs := classbench.Generate(classbench.FW1(), 500, 48)
	tr := buildOrDie(t, rs, DefaultConfig(HyperCuts))
	rng := rand.New(rand.NewSource(49))
	for i := 0; i < 5000; i++ {
		p := rule.Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
		n := tr.Root
		for !n.Leaf {
			idx := ChildIndex(n.Cuts, p)
			if idx < 0 || idx >= len(n.Children) {
				t.Fatalf("child index %d out of %d children", idx, len(n.Children))
			}
			n = n.Children[idx]
		}
	}
}

func TestIPCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for m := 0; m <= 32; m++ {
		for trial := 0; trial < 50; trial++ {
			pr := rule.PrefixRange(rng.Uint32(), m, 32)
			addr, code, err := encodeIP(pr)
			if err != nil {
				t.Fatalf("/%d: %v", m, err)
			}
			if got := decodeIPLen(addr, code); got != m {
				t.Fatalf("/%d decoded as /%d", m, got)
			}
			// Membership must be preserved.
			inside := pr.Lo + uint32(rng.Int63n(int64(pr.Size())))
			if !prefixMatch(inside, addr, code) {
				t.Fatalf("/%d: inside value %#x rejected", m, inside)
			}
			if m > 0 {
				outside := pr.Lo ^ (uint32(1) << uint(32-m)) // flip last prefix bit
				if prefixMatch(outside, addr, code) {
					t.Fatalf("/%d: outside value %#x accepted", m, outside)
				}
			}
		}
	}
}

func TestEncodedRuleMatchesPacketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := func(sip, dip uint32, sp, dp uint16, proto uint8) bool {
		r := randomEncodableRule(rng, int(rng.Int31n(1000)))
		er, err := EncodeRule(&r)
		if err != nil {
			return false
		}
		p := rule.Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: proto}
		return er.MatchesPacket(p) == r.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRuleStoreLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	w := make([]byte, WordBytes)
	for pos := 0; pos < RulesPerWord; pos++ {
		r := randomEncodableRule(rng, pos*7+1)
		er, err := EncodeRule(&r)
		if err != nil {
			t.Fatal(err)
		}
		er.End = pos%3 == 0
		er.store(w, pos)
		got := LoadRule(w, pos)
		if got != er {
			t.Fatalf("slot %d: %+v != %+v", pos, got, er)
		}
	}
	// Re-read all slots to check neighbours did not clobber each other.
	for pos := 0; pos < RulesPerWord; pos++ {
		got := LoadRule(w, pos)
		if got.ID == 0 && pos != 0 {
			continue
		}
		if got.ID == SentinelID {
			t.Fatalf("slot %d became sentinel", pos)
		}
	}
}

func TestEncodeRejectsNonPrefixIP(t *testing.T) {
	r := rule.Rule{ID: 1}
	r.F[rule.DimSrcIP] = rule.Range{Lo: 5, Hi: 6} // not a prefix
	r.F[rule.DimDstIP] = rule.FullRange(rule.DimDstIP)
	r.F[rule.DimSrcPort] = rule.FullRange(rule.DimSrcPort)
	r.F[rule.DimDstPort] = rule.FullRange(rule.DimDstPort)
	r.F[rule.DimProto] = rule.FullRange(rule.DimProto)
	if _, err := EncodeRule(&r); err == nil {
		t.Error("non-prefix source IP accepted")
	}
	r.F[rule.DimSrcIP] = rule.FullRange(rule.DimSrcIP)
	r.F[rule.DimProto] = rule.Range{Lo: 5, Hi: 9}
	if _, err := EncodeRule(&r); err == nil {
		t.Error("range protocol accepted")
	}
}

func TestEncodeImageAndInterpret(t *testing.T) {
	// Decode-level interpreter: classify packets by walking the encoded
	// image words exactly as the accelerator datapath would.
	rs := classbench.Generate(classbench.ACL1(), 400, 53)
	for _, speed := range []int{0, 1} {
		cfg := DefaultConfig(HyperCuts)
		cfg.Speed = speed
		tr := buildOrDie(t, rs, cfg)
		img, err := tr.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if len(img.Words) != tr.Words() {
			t.Fatalf("image has %d words, tree says %d", len(img.Words), tr.Words())
		}
		for i, p := range classbench.GenerateTrace(rs, 2000, 54) {
			got := interpretImage(img, p)
			want := tr.Classify(p)
			if got != want {
				t.Fatalf("speed %d packet %d: image=%d tree=%d", speed, i, got, want)
			}
		}
	}
}

// interpretImage walks the encoded memory image like the hardware: load
// node word, mask/shift/add, follow entries to a leaf, scan rule slots.
func interpretImage(img *Image, p rule.Packet) int {
	word := 0
	for hop := 0; hop < 100; hop++ {
		w := img.Words[word]
		nw := LoadNode(w)
		entry := LoadEntry(w, nw.Index(p))
		if !entry.IsLeaf {
			word = entry.Word
			continue
		}
		lw, pos := entry.Word, entry.Pos
		for {
			er := LoadRule(img.Words[lw], pos)
			if er.MatchesPacket(p) {
				return int(er.ID)
			}
			if er.End {
				return -1
			}
			pos++
			if pos == RulesPerWord {
				pos = 0
				lw++
			}
		}
	}
	return -2 // cycle in image
}

func TestLeafPointersCannotEncode(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 100, 55)
	cfg := DefaultConfig(HiCuts)
	cfg.LeafPointers = true
	tr := buildOrDie(t, rs, cfg)
	if _, err := tr.Encode(); err == nil {
		t.Error("LeafPointers tree encoded; expected analytical-only error")
	}
}

func TestDeterministicBuild(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 56)
	a := buildOrDie(t, rs, DefaultConfig(HyperCuts))
	b := buildOrDie(t, rs, DefaultConfig(HyperCuts))
	if a.Stats() != b.Stats() || a.Words() != b.Words() {
		t.Error("nondeterministic build")
	}
}

func TestBitsHelpers(t *testing.T) {
	w := make([]byte, 8)
	setBits(w, 3, 12, 0xABC)
	if got := getBits(w, 3, 12); got != 0xABC {
		t.Fatalf("getBits = %#x", got)
	}
	setBits(w, 3, 12, 0x123)
	if got := getBits(w, 3, 12); got != 0x123 {
		t.Fatalf("overwrite failed: %#x", got)
	}
	setBits(w, 0, 3, 0x7)
	if got := getBits(w, 3, 12); got != 0x123 {
		t.Fatalf("neighbour write clobbered: %#x", got)
	}
}

func TestRuleIDOverflowRejected(t *testing.T) {
	rs := make(rule.RuleSet, 1)
	rs[0] = rule.New(SentinelID, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	if _, err := EncodeRule(&rs[0]); err == nil {
		t.Error("rule ID 0xFFFF accepted; it is the sentinel")
	}
}

func randomEncodableRule(rng *rand.Rand, id int) rule.Rule {
	lo := uint32(rng.Intn(65536))
	hi := lo + uint32(rng.Intn(int(65536-lo)))
	lo2 := uint32(rng.Intn(65536))
	hi2 := lo2 + uint32(rng.Intn(int(65536-lo2)))
	return rule.New(id, rng.Uint32(), rng.Intn(33), rng.Uint32(), rng.Intn(33),
		rule.Range{Lo: lo, Hi: hi}, rule.Range{Lo: lo2, Hi: hi2},
		uint8(rng.Intn(256)), rng.Intn(2) == 0)
}

func TestEmptyRulesetEndToEnd(t *testing.T) {
	tr, err := Build(nil, DefaultConfig(HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Leaf {
		t.Fatal("root must be internal even for the empty set")
	}
	img, err := tr.Encode()
	if err != nil {
		t.Fatalf("empty set not encodable: %v", err)
	}
	if got := interpretImage(img, rule.Packet{SrcIP: 123}); got != -1 {
		t.Errorf("empty set matched %d", got)
	}
	if tr.WorstCaseCycles() != 2 {
		t.Errorf("empty set worst case %d, want 2 (root + sentinel word)", tr.WorstCaseCycles())
	}
}

func TestLeafExactlyAtWordBoundary(t *testing.T) {
	// A leaf holding exactly 30 rules must occupy one word and cost one
	// leaf cycle; 31 rules must spill to a second word.
	for _, n := range []int{RulesPerWord, RulesPerWord + 1} {
		rs := make(rule.RuleSet, 0, n)
		for i := 0; i < n; i++ {
			// All rules overlap (same block, adjacent exact ports) so no
			// cut separates them fully and they form big leaves.
			rs = append(rs, rule.New(i, 0x0A000000, 8, 0x0B000000, 8,
				rule.Range{Lo: uint32(i), Hi: uint32(i)}, rule.FullRange(rule.DimDstPort), 6, false))
		}
		cfg := DefaultConfig(HiCuts)
		cfg.Binth = n // force a single leaf under the synthesized root
		tr, err := Build(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		img, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Probe the last rule: it sits at slot n-1.
		p := rule.Packet{SrcIP: 0x0A000001, DstIP: 0x0B000001, SrcPort: uint16(n - 1), Proto: 6}
		if got := interpretImage(img, p); got != n-1 {
			t.Fatalf("n=%d: got %d, want %d", n, got, n-1)
		}
		wantWords := (n + RulesPerWord - 1) / RulesPerWord
		maxLeafWords := 0
		for _, l := range tr.Leaves() {
			if w := LeafWords(l); w > maxLeafWords {
				maxLeafWords = w
			}
		}
		if maxLeafWords != wantWords {
			t.Errorf("n=%d: leaf spans %d words, want %d", n, maxLeafWords, wantWords)
		}
	}
}
