package core

import (
	"strings"
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

// Micro-benchmarks for the datapath primitives; these are Go-level costs
// of the simulator (the modelled hardware costs are fixed by the clock).

func BenchmarkChildIndex(b *testing.B) {
	var prefixLen [rule.NumDims]int
	cuts := makeCuts([]int{rule.DimSrcIP, rule.DimDstIP}, []int{4, 4}, prefixLen)
	p := rule.Packet{SrcIP: 0xC0A80101, DstIP: 0x0A0B0C0D, SrcPort: 80, DstPort: 443, Proto: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if idx := ChildIndex(cuts, p); idx < 0 {
			b.Fatal("negative index")
		}
	}
}

func BenchmarkEncodeRule(b *testing.B) {
	r := rule.New(7, 0x0A000000, 8, 0xC0A80000, 16,
		rule.Range{Lo: 1024, Hi: 65535}, rule.Range{Lo: 80, Hi: 80}, 6, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRule(&r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadRule(b *testing.B) {
	r := rule.New(7, 0x0A000000, 8, 0xC0A80000, 16,
		rule.Range{Lo: 1024, Hi: 65535}, rule.Range{Lo: 80, Hi: 80}, 6, false)
	er, err := EncodeRule(&r)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]byte, WordBytes)
	er.store(w, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := LoadRule(w, 13); got.ID != 7 {
			b.Fatal("corrupt load")
		}
	}
}

func BenchmarkMatchesPacket(b *testing.B) {
	r := rule.New(7, 0x0A000000, 8, 0xC0A80000, 16,
		rule.Range{Lo: 1024, Hi: 65535}, rule.Range{Lo: 80, Hi: 80}, 6, false)
	er, err := EncodeRule(&r)
	if err != nil {
		b.Fatal(err)
	}
	p := rule.Packet{SrcIP: 0x0A010203, DstIP: 0xC0A80505, SrcPort: 2000, DstPort: 80, Proto: 6}
	for i := 0; i < b.N; i++ {
		if !er.MatchesPacket(p) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkBuildHiCuts1000(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(rs, DefaultConfig(HiCuts)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHyperCuts1000(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(rs, DefaultConfig(HyperCuts)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeClassify(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, 1024, 2009)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Classify(trace[i&1023])
	}
}

func TestSummarizeAndDescribe(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 600, 140)
	tr, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Summarize()
	if st.Rules != 600 || st.Words != tr.Words() || st.WorstCycles != tr.WorstCaseCycles() {
		t.Errorf("summary inconsistent: %+v", st)
	}
	if st.Replication < 1.0 {
		t.Errorf("replication %.2f < 1", st.Replication)
	}
	if st.LeafRuleSlots < st.Rules {
		t.Errorf("leaf slots %d < rules %d", st.LeafRuleSlots, st.Rules)
	}
	desc := tr.Describe()
	if len(desc) == 0 || desc[len(desc)-1] != '\n' {
		t.Error("Describe output malformed")
	}
	for _, want := range []string{"HyperCuts", "internal nodes", "fan-out", "cut dimensions"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}
