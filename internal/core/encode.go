package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rule"
)

// This file implements the bit-exact 4800-bit memory word encoding of the
// search structure (paper §3):
//
// Internal node word:
//   - bits 0..79: five (mask, shift) byte pairs, one per dimension in
//     dimension order; uncut dimensions hold mask 0 (contributing 0 to the
//     child index);
//   - bits 80..80+256*18-1: 256 cut entries of 18 bits each:
//     1 type bit (1 = leaf), 12-bit memory word index, 5-bit start
//     position of the node within that word.
//
// Leaf storage: consecutive 160-bit rule slots. Each slot holds
//   - 16-bit source port min / 16-bit max,
//   - 16-bit destination port min / 16-bit max,
//   - 35-bit source IP (32-bit address + 3-bit encoded mask; prefix
//     lengths 0..27 store their low bits in the address's unused least
//     significant bits, exactly the trick described in §3),
//   - 35-bit destination IP,
//   - 9-bit protocol (8-bit value + 1 wildcard bit),
//   - 16-bit rule number,
//   - 1 end-of-leaf flag terminating the comparator scan.
//
// A leaf with no rules stores one sentinel slot (rule number 0xFFFF).

// Bit offsets within a 160-bit rule slot.
const (
	ruleOffSrcPortLo = 0
	ruleOffSrcPortHi = 16
	ruleOffDstPortLo = 32
	ruleOffDstPortHi = 48
	ruleOffSrcAddr   = 64
	ruleOffSrcCode   = 96
	ruleOffDstAddr   = 99
	ruleOffDstCode   = 131
	ruleOffProtoVal  = 134
	ruleOffProtoWild = 142
	ruleOffID        = 143
	ruleOffEnd       = 159

	// SentinelID marks an invalid rule slot (empty leaf).
	SentinelID = 0xFFFF

	nodeHeaderBits = 16 * rule.NumDims // five mask/shift byte pairs
	cutEntryBits   = 1 + PointerBits + PosBits
)

// Image is the encoded memory content loaded into the accelerator.
type Image struct {
	// Words holds the memory words; each is WordBytes long. Word 0 is
	// the root internal node (copied to register A at reset).
	Words [][]byte
	// NumInternal is the count of internal-node words at the front.
	NumInternal int
	// Speed records the packing mode the image was laid out with.
	Speed int
}

// Encode serializes the laid-out tree into memory words. It fails if the
// structure cannot be expressed in the word format: more than 4096
// addressable words, rules whose IP fields are not prefixes, protocols
// that are neither exact nor wildcard, or rule IDs >= 0xFFFF.
func (t *Tree) Encode() (*Image, error) {
	if t.words > 1<<PointerBits {
		return nil, fmt.Errorf("core: structure needs %d words; the %d-bit pointer field addresses at most %d",
			t.words, PointerBits, 1<<PointerBits)
	}
	if t.cfg.LeafPointers {
		return nil, fmt.Errorf("core: LeafPointers ablation trees are analytical only and cannot be encoded")
	}
	img := &Image{
		Words:       make([][]byte, t.words),
		NumInternal: len(t.internals),
		Speed:       t.cfg.Speed,
	}
	for i := range img.Words {
		img.Words[i] = make([]byte, WordBytes)
	}
	for _, n := range t.internals {
		if err := encodeInternal(img.Words[n.Word], n); err != nil {
			return nil, err
		}
	}
	for _, l := range t.leafOrder {
		if err := t.encodeLeaf(img, l); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// encodeInternal writes an internal node's memory word: the 80-bit
// mask/shift header as direct byte stores (the header's 16-bit pairs are
// byte-aligned), and each 18-bit cut entry as one 32-bit little-endian
// read-OR-write at its byte offset — an entry shifted into place spans
// at most 25 bits, and the last entry's window (bytes 583..586) stays
// inside the 600-byte word. w must be zero-filled, as both call sites
// (Encode's fresh words, encodeWord's explicit clear) guarantee: the
// entries are OR-merged, not read-modify-masked. encodeInternalBitwise
// keeps the offset-by-offset path as the differential oracle
// (TestEncodeInternalByteIdentity pins byte identity).
func encodeInternal(w []byte, n *Node) error {
	for _, c := range n.Cuts {
		w[2*c.Dim] = c.Mask
		w[2*c.Dim+1] = byte(c.Shift)
	}
	if len(n.Children) > MaxCuts {
		return fmt.Errorf("core: node has %d children; word format caps at %d", len(n.Children), MaxCuts)
	}
	for i, c := range n.Children {
		if c == nil {
			return fmt.Errorf("core: nil child survived build; expected shared empty leaf")
		}
		if c.Word >= 1<<PointerBits {
			return fmt.Errorf("core: child word %d exceeds pointer field", c.Word)
		}
		e := uint32(0)
		if c.Leaf {
			e = 1
		}
		e |= uint32(c.Word) << 1
		e |= uint32(c.Pos&(1<<PosBits-1)) << (1 + PointerBits)
		off := nodeHeaderBits + i*cutEntryBits
		b := off >> 3
		v := binary.LittleEndian.Uint32(w[b : b+4])
		binary.LittleEndian.PutUint32(w[b:b+4], v|e<<uint(off&7))
	}
	return nil
}

// encodeInternalBitwise is the original field-by-field bit-packing path,
// kept as the differential oracle for the word-level fast path above.
func encodeInternalBitwise(w []byte, n *Node) error {
	for _, c := range n.Cuts {
		setBits(w, uint(16*c.Dim), 8, uint64(c.Mask))
		setBits(w, uint(16*c.Dim+8), 8, uint64(uint8(c.Shift)))
	}
	if len(n.Children) > MaxCuts {
		return fmt.Errorf("core: node has %d children; word format caps at %d", len(n.Children), MaxCuts)
	}
	for i, c := range n.Children {
		off := uint(nodeHeaderBits + i*cutEntryBits)
		if c == nil {
			return fmt.Errorf("core: nil child survived build; expected shared empty leaf")
		}
		typ := uint64(0)
		if c.Leaf {
			typ = 1
		}
		if c.Word >= 1<<PointerBits {
			return fmt.Errorf("core: child word %d exceeds pointer field", c.Word)
		}
		setBits(w, off, 1, typ)
		setBits(w, off+1, PointerBits, uint64(c.Word))
		setBits(w, off+1+PointerBits, PosBits, uint64(c.Pos))
	}
	return nil
}

func (t *Tree) encodeLeaf(img *Image, l *Node) error {
	word, pos := l.Word, l.Pos
	n := len(l.Rules)
	if n == 0 {
		return encodeSentinel(img.Words[word], pos)
	}
	if t.leafRefs[l] == 0 {
		// Orphaned leaf: the storage stays allocated (stable layout)
		// but is unreachable, so it holds sentinel slots — nothing for
		// a stray comparator to match, and the bytes no longer depend
		// on rules that later deletes may disable, which keeps
		// word-patched images byte-identical to full re-encodes.
		for i := 0; i < n; i++ {
			encodeSentinel(img.Words[word], pos)
			if pos++; pos == RulesPerWord {
				pos = 0
				word++
			}
		}
		return nil
	}
	for i, id := range l.Rules {
		er, err := t.encodeRuleSlot(id)
		if err != nil {
			return err
		}
		er.End = i == n-1
		er.store(img.Words[word], pos)
		pos++
		if pos == RulesPerWord {
			pos = 0
			word++
		}
	}
	return nil
}

// encodeRuleSlot encodes rule id for storage in a leaf slot. Rules
// disabled by DeleteDelta (empty range — they can survive only in
// orphaned leaves, whose storage stays allocated until Relayout) are
// stored as sentinel slots: never matched by the comparators, and
// deterministic so a word-patched image stays byte-identical to a full
// re-encode.
func (t *Tree) encodeRuleSlot(id int32) (EncodedRule, error) {
	r := &t.rules[id]
	if ruleDisabled(r) {
		return EncodedRule{ID: SentinelID}, nil
	}
	er, err := EncodeRule(r)
	if err != nil {
		return er, fmt.Errorf("core: rule %d: %w", id, err)
	}
	return er, nil
}

// ruleDisabled reports whether r was disabled by DeleteDelta: an empty
// range in any dimension matches nothing.
func ruleDisabled(r *rule.Rule) bool {
	for d := 0; d < rule.NumDims; d++ {
		if r.F[d].Lo > r.F[d].Hi {
			return true
		}
	}
	return false
}

func encodeSentinel(w []byte, pos int) error {
	er := EncodedRule{ID: SentinelID, End: true}
	er.store(w, pos)
	return nil
}

// EncodedRule is the hardware 160-bit representation of one rule, the unit
// the 30 parallel comparators operate on.
type EncodedRule struct {
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16
	SrcAddr              uint32 // low bits may carry the encoded mask
	SrcCode              uint8  // 3-bit mask code
	DstAddr              uint32
	DstCode              uint8
	ProtoVal             uint8
	ProtoWild            bool
	ID                   uint16
	End                  bool // last rule of the leaf
}

// EncodeRule converts a rule to its 160-bit hardware form. IP fields must
// be prefixes and the protocol exact or wildcard.
func EncodeRule(r *rule.Rule) (EncodedRule, error) {
	var er EncodedRule
	if r.ID < 0 || r.ID >= SentinelID {
		return er, fmt.Errorf("rule ID %d does not fit the 16-bit field", r.ID)
	}
	er.ID = uint16(r.ID)
	er.SrcPortLo = uint16(r.F[rule.DimSrcPort].Lo)
	er.SrcPortHi = uint16(r.F[rule.DimSrcPort].Hi)
	er.DstPortLo = uint16(r.F[rule.DimDstPort].Lo)
	er.DstPortHi = uint16(r.F[rule.DimDstPort].Hi)
	var err error
	er.SrcAddr, er.SrcCode, err = encodeIP(r.F[rule.DimSrcIP])
	if err != nil {
		return er, fmt.Errorf("srcIP: %w", err)
	}
	er.DstAddr, er.DstCode, err = encodeIP(r.F[rule.DimDstIP])
	if err != nil {
		return er, fmt.Errorf("dstIP: %w", err)
	}
	pr := r.F[rule.DimProto]
	switch {
	case pr.IsFull(rule.DimProto):
		er.ProtoWild = true
	case pr.Lo == pr.Hi:
		er.ProtoVal = uint8(pr.Lo)
	default:
		return er, fmt.Errorf("protocol range [%d,%d] is neither exact nor wildcard", pr.Lo, pr.Hi)
	}
	return er, nil
}

// encodeIP packs a prefix into the 35-bit (addr, 3-bit code) form of §3:
// prefix lengths 28..32 are encoded directly in the code (code = len-25);
// lengths 0..27 set code 0 and hide the length in the address's 5 least
// significant bits, which are below the prefix and therefore unused.
func encodeIP(f rule.Range) (addr uint32, code uint8, err error) {
	m := f.PrefixLen(32)
	if m < 0 {
		return 0, 0, fmt.Errorf("range [%d,%d] is not a prefix", f.Lo, f.Hi)
	}
	if m >= 28 {
		return f.Lo, uint8(m - 25), nil
	}
	return f.Lo | uint32(m), 0, nil
}

// decodeIPLen recovers the prefix length from the 35-bit form.
func decodeIPLen(addr uint32, code uint8) int {
	if code >= 3 {
		return int(code) + 25
	}
	return int(addr & 31)
}

// MatchesPacket implements the hardware comparator: parallel range checks
// on the ports, prefix compare on the IPs, exact-or-wildcard on the
// protocol. Sentinel slots never match.
func (er *EncodedRule) MatchesPacket(p rule.Packet) bool {
	if er.ID == SentinelID {
		return false
	}
	if p.SrcPort < er.SrcPortLo || p.SrcPort > er.SrcPortHi {
		return false
	}
	if p.DstPort < er.DstPortLo || p.DstPort > er.DstPortHi {
		return false
	}
	if !prefixMatch(p.SrcIP, er.SrcAddr, er.SrcCode) {
		return false
	}
	if !prefixMatch(p.DstIP, er.DstAddr, er.DstCode) {
		return false
	}
	if !er.ProtoWild && p.Proto != er.ProtoVal {
		return false
	}
	return true
}

func prefixMatch(v, addr uint32, code uint8) bool {
	m := decodeIPLen(addr, code)
	if m == 0 {
		return true
	}
	sh := uint(32 - m)
	return v>>sh == addr>>sh
}

// store writes the rule into slot pos of memory word w. A 160-bit rule
// slot is byte-aligned (RuleBits/8 = 20 bytes at pos*20), so the whole
// slot is written as three little-endian stores — LSB-first bit packing
// over byte-aligned fields IS little-endian byte order. The field
// composition below mirrors the ruleOff* layout exactly; storeBitwise
// keeps the offset-by-offset path as the differential oracle
// (TestStoreFastPathByteIdentity pins byte identity).
func (er *EncodedRule) store(w []byte, pos int) {
	s := w[pos*(RuleBits/8):]
	// Bits 0..63: the four port bounds.
	binary.LittleEndian.PutUint64(s[0:8],
		uint64(er.SrcPortLo)|uint64(er.SrcPortHi)<<16|
			uint64(er.DstPortLo)<<32|uint64(er.DstPortHi)<<48)
	// Bits 64..127: SrcAddr(32) | SrcCode(3) | DstAddr low 29 bits.
	// The DstAddr shift by 35 truncates at bit 63, keeping its bits
	// 0..28; the straddling high 3 bits land in the next store.
	binary.LittleEndian.PutUint64(s[8:16],
		uint64(er.SrcAddr)|uint64(er.SrcCode&7)<<32|uint64(er.DstAddr)<<35)
	// Bits 128..159: DstAddr high 3 | DstCode(3) | ProtoVal(8) |
	// ProtoWild | ID(16) | End.
	binary.LittleEndian.PutUint32(s[16:20],
		uint32(er.DstAddr>>29)|uint32(er.DstCode&7)<<3|
			uint32(er.ProtoVal)<<6|uint32(b2u(er.ProtoWild))<<14|
			uint32(er.ID)<<15|uint32(b2u(er.End))<<31)
}

// storeBitwise is the original field-by-field bit-packing path, kept as
// the differential oracle for the byte-aligned store above.
func (er *EncodedRule) storeBitwise(w []byte, pos int) {
	base := uint(pos * RuleBits)
	setBits(w, base+ruleOffSrcPortLo, 16, uint64(er.SrcPortLo))
	setBits(w, base+ruleOffSrcPortHi, 16, uint64(er.SrcPortHi))
	setBits(w, base+ruleOffDstPortLo, 16, uint64(er.DstPortLo))
	setBits(w, base+ruleOffDstPortHi, 16, uint64(er.DstPortHi))
	setBits(w, base+ruleOffSrcAddr, 32, uint64(er.SrcAddr))
	setBits(w, base+ruleOffSrcCode, 3, uint64(er.SrcCode))
	setBits(w, base+ruleOffDstAddr, 32, uint64(er.DstAddr))
	setBits(w, base+ruleOffDstCode, 3, uint64(er.DstCode))
	setBits(w, base+ruleOffProtoVal, 8, uint64(er.ProtoVal))
	setBits(w, base+ruleOffProtoWild, 1, b2u(er.ProtoWild))
	setBits(w, base+ruleOffID, 16, uint64(er.ID))
	setBits(w, base+ruleOffEnd, 1, b2u(er.End))
}

// LoadRule reads the rule slot pos of memory word w.
func LoadRule(w []byte, pos int) EncodedRule {
	base := uint(pos * RuleBits)
	return EncodedRule{
		SrcPortLo: uint16(getBits(w, base+ruleOffSrcPortLo, 16)),
		SrcPortHi: uint16(getBits(w, base+ruleOffSrcPortHi, 16)),
		DstPortLo: uint16(getBits(w, base+ruleOffDstPortLo, 16)),
		DstPortHi: uint16(getBits(w, base+ruleOffDstPortHi, 16)),
		SrcAddr:   uint32(getBits(w, base+ruleOffSrcAddr, 32)),
		SrcCode:   uint8(getBits(w, base+ruleOffSrcCode, 3)),
		DstAddr:   uint32(getBits(w, base+ruleOffDstAddr, 32)),
		DstCode:   uint8(getBits(w, base+ruleOffDstCode, 3)),
		ProtoVal:  uint8(getBits(w, base+ruleOffProtoVal, 8)),
		ProtoWild: getBits(w, base+ruleOffProtoWild, 1) == 1,
		ID:        uint16(getBits(w, base+ruleOffID, 16)),
		End:       getBits(w, base+ruleOffEnd, 1) == 1,
	}
}

// NodeWord is the decoded view of an internal node's memory word as the
// accelerator's datapath sees it: five mask/shift pairs plus cut entries.
type NodeWord struct {
	Masks  [rule.NumDims]uint8
	Shifts [rule.NumDims]int8
}

// LoadNode decodes the mask/shift header of an internal node word.
func LoadNode(w []byte) NodeWord {
	var nw NodeWord
	for d := 0; d < rule.NumDims; d++ {
		nw.Masks[d] = uint8(getBits(w, uint(16*d), 8))
		nw.Shifts[d] = int8(getBits(w, uint(16*d+8), 8))
	}
	return nw
}

// Index computes the child index for packet p: the hardware ANDs the five
// masks with the top 8 bits of each field, shifts, and adds.
func (nw *NodeWord) Index(p rule.Packet) int {
	idx := 0
	for d := 0; d < rule.NumDims; d++ {
		v := uint32(p.Top8(d) & nw.Masks[d])
		s := nw.Shifts[d]
		if s >= 0 {
			idx += int(v >> uint(s))
		} else {
			idx += int(v << uint(-s))
		}
	}
	return idx
}

// CutEntry is one decoded 18-bit cut entry.
type CutEntry struct {
	IsLeaf bool
	Word   int
	Pos    int
}

// LoadEntry decodes cut entry i of an internal node word.
func LoadEntry(w []byte, i int) CutEntry {
	off := uint(nodeHeaderBits + i*cutEntryBits)
	return CutEntry{
		IsLeaf: getBits(w, off, 1) == 1,
		Word:   int(getBits(w, off+1, PointerBits)),
		Pos:    int(getBits(w, off+1+PointerBits, PosBits)),
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// setBits writes the width low bits of val at bit offset off (LSB-first
// packing) into w.
func setBits(w []byte, off, width uint, val uint64) {
	for i := uint(0); i < width; i++ {
		bit := (val >> i) & 1
		idx := (off + i) / 8
		sh := (off + i) % 8
		if bit == 1 {
			w[idx] |= 1 << sh
		} else {
			w[idx] &^= 1 << sh
		}
	}
}

// getBits reads width bits at offset off from w (LSB-first packing).
func getBits(w []byte, off, width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		idx := (off + i) / 8
		sh := (off + i) % 8
		v |= uint64((w[idx]>>sh)&1) << i
	}
	return v
}
