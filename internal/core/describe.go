package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rule"
)

// TreeStats is a structural summary of a built search structure, used by
// tooling and examples to explain what the builder produced.
type TreeStats struct {
	Rules          int
	InternalNodes  int
	DistinctLeaves int
	LeafRuleSlots  int // total rule slots consumed by leaves
	Replication    float64
	Depth          int
	Words          int
	MemoryBytes    int
	WorstCycles    int
	// CutDimUse counts how many internal nodes cut each dimension.
	CutDimUse [rule.NumDims]int
	// FanoutHist maps cut count (32..256) to internal-node count.
	FanoutHist map[int]int
	// LeafSizeMax/Avg describe leaf population.
	LeafSizeMax int
	LeafSizeAvg float64
}

// Summarize computes TreeStats for the tree.
func (t *Tree) Summarize() TreeStats {
	st := TreeStats{
		Rules:          len(t.rules),
		InternalNodes:  len(t.internals),
		DistinctLeaves: len(t.leafOrder),
		Depth:          t.stats.MaxDepth,
		Words:          t.words,
		MemoryBytes:    t.MemoryBytes(),
		WorstCycles:    t.WorstCaseCycles(),
		FanoutHist:     map[int]int{},
	}
	for _, n := range t.internals {
		st.FanoutHist[len(n.Children)]++
		for _, c := range n.Cuts {
			st.CutDimUse[c.Dim]++
		}
	}
	total := 0
	for _, l := range t.leafOrder {
		n := len(l.Rules)
		total += n
		if n > st.LeafSizeMax {
			st.LeafSizeMax = n
		}
	}
	st.LeafRuleSlots = total
	if len(t.leafOrder) > 0 {
		st.LeafSizeAvg = float64(total) / float64(len(t.leafOrder))
	}
	if len(t.rules) > 0 {
		st.Replication = float64(total) / float64(len(t.rules))
	}
	return st
}

// Describe renders a human-readable multi-line summary.
func (t *Tree) Describe() string {
	st := t.Summarize()
	var b strings.Builder
	fmt.Fprintf(&b, "%v search structure: %d rules -> %d words (%d bytes), worst case %d cycles\n",
		t.cfg.Algorithm, st.Rules, st.Words, st.MemoryBytes, st.WorstCycles)
	fmt.Fprintf(&b, "  internal nodes: %d (depth %d); distinct leaves: %d (max %d rules, avg %.1f, replication %.2fx)\n",
		st.InternalNodes, st.Depth, st.DistinctLeaves, st.LeafSizeMax, st.LeafSizeAvg, st.Replication)
	var fans []int
	for f := range st.FanoutHist {
		fans = append(fans, f)
	}
	sort.Ints(fans)
	fmt.Fprintf(&b, "  fan-out:")
	for _, f := range fans {
		fmt.Fprintf(&b, " %dx%d", st.FanoutHist[f], f)
	}
	fmt.Fprintf(&b, "\n  cut dimensions:")
	for d := 0; d < rule.NumDims; d++ {
		if st.CutDimUse[d] > 0 {
			fmt.Fprintf(&b, " %s:%d", rule.DimNames[d], st.CutDimUse[d])
		}
	}
	b.WriteString("\n")
	return b.String()
}
