package core

import (
	"runtime"
	"testing"

	"repro/internal/classbench"
)

// TestParallelBuildIdentical asserts the worker-pool build is
// deterministic: for both algorithms and both speeds, the parallel build
// must produce exactly the tree the sequential build produces — same
// statistics, same word count, same breadth-first node layout, same cut
// headers, same leaf packing and same rule lists.
func TestParallelBuildIdentical(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Log("single-CPU environment; parallel path still exercised via Workers=4")
	}
	for _, prof := range []string{"acl1", "fw1", "ipc1"} {
		p, err := classbench.ProfileByName(prof)
		if err != nil {
			t.Fatal(err)
		}
		rs := classbench.Generate(p, 800, 2008)
		for _, algo := range []Algorithm{HiCuts, HyperCuts} {
			for _, speed := range []int{0, 1} {
				cfg := DefaultConfig(algo)
				cfg.Speed = speed
				cfg.Workers = 1
				seq, err := Build(rs, cfg)
				if err != nil {
					t.Fatalf("%s %v speed=%d sequential: %v", prof, algo, speed, err)
				}
				cfg.Workers = 4
				par, err := Build(rs, cfg)
				if err != nil {
					t.Fatalf("%s %v speed=%d parallel: %v", prof, algo, speed, err)
				}
				ctx := prof + " " + algo.String()
				if seq.Stats() != par.Stats() {
					t.Errorf("%s speed=%d: stats differ\nseq: %+v\npar: %+v", ctx, speed, seq.Stats(), par.Stats())
				}
				if seq.Words() != par.Words() {
					t.Errorf("%s speed=%d: words %d != %d", ctx, speed, seq.Words(), par.Words())
				}
				assertSameLayout(t, ctx, seq, par)
			}
		}
	}
}

func assertSameLayout(t *testing.T, ctx string, seq, par *Tree) {
	t.Helper()
	si, pi := seq.Internals(), par.Internals()
	if len(si) != len(pi) {
		t.Errorf("%s: internal count %d != %d", ctx, len(si), len(pi))
		return
	}
	for w := range si {
		a, b := si[w], pi[w]
		if a.Word != b.Word || len(a.Cuts) != len(b.Cuts) || len(a.Children) != len(b.Children) {
			t.Errorf("%s: internal %d shape differs", ctx, w)
			return
		}
		for i := range a.Cuts {
			if a.Cuts[i] != b.Cuts[i] {
				t.Errorf("%s: internal %d cut %d: %+v != %+v", ctx, w, i, a.Cuts[i], b.Cuts[i])
				return
			}
		}
		for i := range a.Children {
			if !sameChildRef(a.Children[i], b.Children[i]) {
				t.Errorf("%s: internal %d child %d differs", ctx, w, i)
				return
			}
		}
	}
	sl, pl := seq.Leaves(), par.Leaves()
	if len(sl) != len(pl) {
		t.Errorf("%s: leaf count %d != %d", ctx, len(sl), len(pl))
		return
	}
	for i := range sl {
		a, b := sl[i], pl[i]
		if a.Word != b.Word || a.Pos != b.Pos {
			t.Errorf("%s: leaf %d placed at %d.%d vs %d.%d", ctx, i, a.Word, a.Pos, b.Word, b.Pos)
			return
		}
		if len(a.Rules) != len(b.Rules) {
			t.Errorf("%s: leaf %d rule count %d != %d", ctx, i, len(a.Rules), len(b.Rules))
			return
		}
		for j := range a.Rules {
			if a.Rules[j] != b.Rules[j] {
				t.Errorf("%s: leaf %d rule %d: %d != %d", ctx, i, j, a.Rules[j], b.Rules[j])
				return
			}
		}
	}
}

// sameChildRef compares child slots structurally: both nil, both the
// leaf with identical layout position, or both the internal node with the
// same word number (subtree contents are covered by the per-word loop).
func sameChildRef(a, b *Node) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Leaf != b.Leaf {
		return false
	}
	return a.Word == b.Word && a.Pos == b.Pos
}

// TestParallelBuildClassifies is a lighter end-to-end check at a larger
// size: sequential and parallel trees classify a trace identically.
func TestParallelBuildClassifies(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 2000, 2008)
	trace := classbench.GenerateTrace(rs, 4000, 2009)
	cfg := DefaultConfig(HyperCuts)
	cfg.Workers = 1
	seq, err := Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	par, err := Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range trace {
		if a, b := seq.Classify(p), par.Classify(p); a != b {
			t.Fatalf("pkt %d: sequential=%d parallel=%d", i, a, b)
		}
	}
}
