package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/rule"
)

// randInternalNode builds an internal node with nc children whose
// leaf/word/pos fields sweep the entries' bit ranges.
func randInternalNode(rng *rand.Rand, nc int) *Node {
	n := &Node{}
	dims := rng.Perm(rule.NumDims)[:1+rng.Intn(rule.NumDims)]
	for _, d := range dims {
		n.Cuts = append(n.Cuts, DimCut{
			Dim:   d,
			Mask:  uint8(rng.Uint32()),
			Shift: int8(rng.Intn(15) - 7),
		})
	}
	for i := 0; i < nc; i++ {
		n.Children = append(n.Children, &Node{
			Leaf: rng.Intn(2) == 1,
			Word: rng.Intn(1 << PointerBits),
			Pos:  rng.Intn(1 << PosBits),
		})
	}
	return n
}

// TestEncodeInternalByteIdentity pins that the word-level internal-node
// encoder (byte stores + 32-bit LE read-OR-write per cut entry) and the
// bit-by-bit oracle produce identical bytes, over random nodes and the
// format's edge shapes. Both paths get the zeroed buffer the encoder's
// contract requires.
func TestEncodeInternalByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	check := func(name string, n *Node) {
		t.Helper()
		fast := make([]byte, WordBytes)
		slow := make([]byte, WordBytes)
		if err := encodeInternal(fast, n); err != nil {
			t.Fatalf("%s: fast: %v", name, err)
		}
		if err := encodeInternalBitwise(slow, n); err != nil {
			t.Fatalf("%s: bitwise: %v", name, err)
		}
		if !bytes.Equal(fast, slow) {
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("%s: byte %d differs: fast %#02x bitwise %#02x", name, i, fast[i], slow[i])
				}
			}
		}
	}

	// Edge shapes: no children, one child, a full 256-entry word (its
	// last entry ends exactly at bit 4688), all-ones entries, and entries
	// whose Pos overflows PosBits (both paths must truncate alike).
	check("empty", &Node{})
	check("one", &Node{Children: []*Node{{Leaf: true, Word: 1<<PointerBits - 1, Pos: 1<<PosBits - 1}}})
	full := &Node{}
	for i := 0; i < MaxCuts; i++ {
		full.Children = append(full.Children, &Node{Leaf: true, Word: 1<<PointerBits - 1, Pos: 1<<PosBits - 1})
	}
	for d := 0; d < rule.NumDims; d++ {
		full.Cuts = append(full.Cuts, DimCut{Dim: d, Mask: 0xFF, Shift: -7})
	}
	check("full", full)
	over := &Node{Children: []*Node{{Word: 3, Pos: (1 << PosBits) + 5}}}
	check("pos-overflow", over)

	for trial := 0; trial < 200; trial++ {
		check("random", randInternalNode(rng, 1+rng.Intn(MaxCuts)))
	}
}

// TestEncodeWordsIdentity pins that the whole-word encode of a built
// tree — the path imagepatch's dirty-word rewrites go through — matches
// a full Encode byte-for-byte when every word is rebuilt in place.
func TestEncodeWordsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rs := make(rule.RuleSet, 600)
	for i := range rs {
		rs[i] = randomEncodableRule(rng, i)
	}
	tree, err := Build(rs, DefaultConfig(HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	img, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := tree.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]int, tree.Words())
	for w := range dirty {
		dirty[w] = w
	}
	if err := tree.EncodeWords(img2, dirty); err != nil {
		t.Fatal(err)
	}
	for w := range img.Words {
		if !bytes.Equal(img.Words[w], img2.Words[w]) {
			t.Fatalf("word %d differs after in-place EncodeWords", w)
		}
	}
}

// BenchmarkEncodeInternal measures the word-level internal-node encoder
// against the bitwise oracle on a full 256-entry node (the patch path's
// dirty-word unit).
func BenchmarkEncodeInternal(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := randInternalNode(rng, MaxCuts)
	w := make([]byte, WordBytes)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range w {
				w[j] = 0
			}
			if err := encodeInternal(w, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range w {
				w[j] = 0
			}
			if err := encodeInternalBitwise(w, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}
