package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rule"
)

// Build constructs the modified decision tree for rs and lays it out into
// accelerator memory words.
//
// The build fans the child-subtree recursion out over a bounded worker
// pool (Config.Workers): whenever a worker is free, a child subtree is
// handed to it instead of being built inline. Every worker carries its own
// scratch buffers and BuildStats, merged when its subtree completes, so
// the hot loops stay allocation-free and lock-free; only the shared leaf
// cache takes a mutex. Because each subtree's cut decisions depend only on
// its own rule list and region prefix, the parallel build produces a tree
// whose structure, layout and statistics are identical to the sequential
// (Workers=1) build.
func Build(rs rule.RuleSet, cfg Config) (*Tree, error) {
	buildStart := time.Now()
	if err := cfg.sanitize(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(rs) > 1<<16-1 {
		return nil, fmt.Errorf("core: ruleset size %d exceeds the 16-bit rule ID field", len(rs))
	}
	// Own a copy: incremental updates (Insert/Delete) mutate the stored
	// ruleset and must not corrupt the caller's slice.
	rs = append(rule.RuleSet(nil), rs...)
	sh := &buildShared{cfg: cfg, rules: rs, leafCache: make(map[uint64][]*Node)}
	if extra := cfg.Workers - 1; extra > 0 {
		sh.sem = make(chan struct{}, extra)
	}
	b := sh.newWorker()
	ids := make([]int32, len(rs))
	for i := range rs {
		ids[i] = int32(i)
	}
	root := b.build(ids, [rule.NumDims]int{}, [rule.NumDims]uint32{}, 0)
	t := &Tree{Root: root, cfg: cfg, rules: rs, stats: b.stats}
	t.ensureInternalRoot()
	if err := t.layout(); err != nil {
		return nil, err
	}
	t.buildNanos = int64(time.Since(buildStart))
	return t, nil
}

// buildShared is the build state common to all workers: the immutable
// inputs, the worker-pool semaphore and the mutex-guarded leaf cache.
type buildShared struct {
	cfg   Config
	rules rule.RuleSet

	// sem holds one token per additional worker; a child subtree is built
	// on its own goroutine only while a token is available, bounding
	// concurrency at Config.Workers. nil disables fan-out entirely.
	sem chan struct{}

	// leafCache deduplicates leaves with identical rule lists across the
	// whole tree (including the shared empty leaf), keyed by a 64-bit
	// hash of the ID list with chained equality on collision — no string
	// key is materialized per leaf.
	mu        sync.Mutex
	leafCache map[uint64][]*Node
}

func (sh *buildShared) newWorker() *builder {
	return &builder{shared: sh, cfg: sh.cfg, rules: sh.rules}
}

// builder is one build worker: private statistics plus reusable scratch
// buffers so the per-node hot loops (remainders, cut evaluation,
// distribution) allocate nothing after warm-up.
type builder struct {
	shared *buildShared
	cfg    Config
	rules  rule.RuleSet
	stats  BuildStats

	// rlo/rhi hold one dimension's per-rule footprint (chooseHiCuts).
	rlo, rhi []uint8
	// dimLo/dimHi hold per-dimension footprints that must stay live
	// simultaneously (chooseHyperCuts candidates, distribute).
	dimLo, dimHi [rule.NumDims][]uint8
	// spanBuf holds distribute's per-cut-dimension child spans.
	spanBuf [rule.NumDims][][2]int
	// idxBuf is the enumerateBox odometer, hoisted out of the per-rule
	// distribution loop.
	idxBuf [rule.NumDims]int
	// gridBuf is evalMulti's child-population histogram (<= MaxCuts).
	gridBuf []int32
}

// grow returns b resized to n, reallocating only when capacity is short.
// Contents are unspecified; every caller fully overwrites (or zeroes) the
// returned slice.
func grow[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

// merge folds a finished child worker's statistics into the parent's.
func (s *BuildStats) merge(o BuildStats) {
	s.Nodes += o.Nodes
	s.Internal += o.Internal
	s.Leaves += o.Leaves
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.CutEvaluations += o.CutEvaluations
	s.RuleChildOps += o.RuleChildOps
	s.RulePushes += o.RulePushes
	s.ReplicatedRules += o.ReplicatedRules
	s.OverflowLeaves += o.OverflowLeaves
}

// remainders computes, for every rule at a node and one dimension, the
// inclusive interval [rlo, rhi] of the rule's footprint in the node's
// remaining top-8 bit space (the avail = 8-L unfixed most significant
// bits). Rules are assumed to overlap the node's region.
func (b *builder) remainders(ids []int32, d, prefixLen int, prefixVal uint32, rlo, rhi []uint8) {
	w := rule.DimBits[d]
	avail := 8 - prefixLen
	availMask := uint32(1)<<uint(avail) - 1
	// Region bounds in full field width.
	shift := w - uint(prefixLen)
	var regionLo, regionHi uint32
	if prefixLen == 0 {
		regionLo, regionHi = 0, rule.MaxValue(d)
	} else {
		regionLo = prefixVal << shift
		regionHi = regionLo | (uint32(1)<<shift - 1)
	}
	for i, id := range ids {
		f := b.rules[id].F[d]
		lo, hi := f.Lo, f.Hi
		if lo < regionLo {
			lo = regionLo
		}
		if hi > regionHi {
			hi = regionHi
		}
		rlo[i] = uint8((lo >> (w - 8)) & availMask)
		rhi[i] = uint8((hi >> (w - 8)) & availMask)
		b.stats.RuleChildOps++
	}
}

func (b *builder) build(ids []int32, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32, depth int) *Node {
	if depth > b.stats.MaxDepth {
		b.stats.MaxDepth = depth
	}
	if len(ids) <= b.cfg.Binth || depth >= b.cfg.MaxDepth {
		return b.makeLeaf(ids)
	}
	// Termination on unseparable rules: a rule covering the node's whole
	// remaining top-8 region in every cuttable dimension lands in every
	// child of every further cut, so it can never be separated from the
	// others. When the separable remainder is within binth, more cutting
	// only replicates storage without shortening any leaf scan.
	if len(ids)-b.stuckRules(ids, prefixLen, prefixVal) <= b.cfg.Binth {
		return b.makeLeaf(ids)
	}

	var dims []int
	var bits []int
	if b.cfg.Algorithm == HiCuts {
		dims, bits = b.chooseHiCuts(ids, prefixLen, prefixVal)
	} else {
		dims, bits = b.chooseHyperCuts(ids, prefixLen, prefixVal)
	}
	if dims == nil {
		return b.makeLeaf(ids)
	}

	node := &Node{prefixLen: prefixLen}
	node.Cuts = makeCuts(dims, bits, prefixLen)
	b.stats.Nodes++
	b.stats.Internal++

	np := 1
	for _, k := range bits {
		np <<= uint(k)
	}
	childIDs, broad := b.distribute(ids, dims, bits, prefixLen, prefixVal, np)

	// Broad-rule termination: rules that land in at least half of this
	// cut's children (wide ranges, wildcards) are near-unseparable — they
	// will replicate through every further cut while staying together.
	// When the narrow remainder is within binth, cutting only multiplies
	// storage without shortening the worst leaf scan materially, so the
	// node becomes an overflow leaf (scanned at 30 rules per cycle).
	if len(ids)-broad <= b.cfg.Binth {
		b.stats.Nodes--
		b.stats.Internal--
		return b.makeLeaf(ids)
	}

	progress := false
	for _, c := range childIDs {
		if len(c) < len(ids) {
			progress = true
			break
		}
	}
	if !progress {
		b.stats.Nodes--
		b.stats.Internal--
		return b.makeLeaf(ids)
	}

	strides := bitStrides(bits)
	node.Children = make([]*Node, np)
	// Fan child subtrees out over the worker pool. Children that stay
	// inline reuse this worker's scratch; spawned children get a fresh
	// worker whose stats are merged after the join, so no ordering of
	// goroutine completion can change the totals.
	var wg sync.WaitGroup
	var spawned []*builder
	for i, c := range childIDs {
		if len(c) == 0 {
			// Empty regions all point at one shared empty leaf (the
			// paper "removes" empty children; in hardware the cut entry
			// must still point somewhere, so a single sentinel leaf is
			// shared by every empty region).
			node.Children[i] = b.makeLeaf(nil)
			continue
		}
		childLen := prefixLen
		childVal := prefixVal
		for j, d := range dims {
			comp := (i >> strides[j]) & (1<<uint(bits[j]) - 1)
			childVal[d] = childVal[d]<<uint(bits[j]) | uint32(comp)
			childLen[d] += bits[j]
		}
		// Only subtrees above the leaf threshold are worth a goroutine;
		// anything at or below Binth terminates immediately.
		if b.shared.sem != nil && len(c) > b.cfg.Binth {
			select {
			case b.shared.sem <- struct{}{}:
				w := b.shared.newWorker()
				spawned = append(spawned, w)
				wg.Add(1)
				go func(slot int, cids []int32, cl [rule.NumDims]int, cv [rule.NumDims]uint32) {
					defer wg.Done()
					node.Children[slot] = w.build(cids, cl, cv, depth+1)
					<-b.shared.sem
				}(i, c, childLen, childVal)
				continue
			default:
			}
		}
		node.Children[i] = b.build(c, childLen, childVal, depth+1)
	}
	wg.Wait()
	for _, w := range spawned {
		b.stats.merge(w.stats)
	}
	return node
}

// stuckRules counts rules that cover the node's entire remaining top-8
// region in every dimension that still has available bits; no cut can
// separate such a rule from any other rule of the node.
func (b *builder) stuckRules(ids []int32, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32) int {
	stuck := 0
	for _, id := range ids {
		all := true
		for d := 0; d < rule.NumDims; d++ {
			avail := 8 - prefixLen[d]
			if avail <= 0 {
				continue
			}
			w := rule.DimBits[d]
			var regionLo, regionHi uint32
			if prefixLen[d] == 0 {
				regionLo, regionHi = 0, rule.MaxValue(d)
			} else {
				shift := w - uint(prefixLen[d])
				regionLo = prefixVal[d] << shift
				regionHi = regionLo | (uint32(1)<<shift - 1)
			}
			f := b.rules[id].F[d]
			// The rule must cover every child of any cut of dim d: its
			// clipped top-8 footprint spans the whole remaining space.
			top := uint(w - 8)
			availMask := uint32(1)<<uint(avail) - 1
			lo := f.Lo
			if lo < regionLo {
				lo = regionLo
			}
			hi := f.Hi
			if hi > regionHi {
				hi = regionHi
			}
			if (lo>>top)&availMask != 0 || (hi>>top)&availMask != availMask {
				all = false
				break
			}
		}
		if all {
			stuck++
		}
	}
	return stuck
}

// bitStrides returns, for each cut dimension, the right-shift that
// extracts its component from a flat child index (first dimension has the
// highest weight, matching the hardware's add of shifted components).
func bitStrides(bits []int) []int {
	strides := make([]int, len(bits))
	s := 0
	for i := len(bits) - 1; i >= 0; i-- {
		strides[i] = s
		s += bits[i]
	}
	return strides
}

// makeCuts derives the hardware mask/shift encoding for the chosen cut.
// For cut dimension i with k_i bits at a node whose region fixes L_i top-8
// bits, the hardware extracts top-8 bits [8-L-k, 8-L) and places them at
// the dimension's weight in the child index.
func makeCuts(dims, bits []int, prefixLen [rule.NumDims]int) []DimCut {
	strides := bitStrides(bits)
	cuts := make([]DimCut, len(dims))
	for i, d := range dims {
		k := bits[i]
		L := prefixLen[d]
		mask := uint8((1<<uint(k) - 1) << uint(8-L-k))
		shift := int8(8 - L - k - strides[i])
		cuts[i] = DimCut{Dim: d, Bits: k, Mask: mask, Shift: shift}
	}
	return cuts
}

// ChildIndex computes the hardware child index for packet p at an internal
// node: AND each dimension's top 8 bits with the mask, shift by the shift
// value, and add the results (paper §3). This is exactly the datapath the
// accelerator implements.
func ChildIndex(cuts []DimCut, p rule.Packet) int {
	idx := 0
	for _, c := range cuts {
		v := uint32(p.Top8(c.Dim) & c.Mask)
		if c.Shift >= 0 {
			idx += int(v >> uint(c.Shift))
		} else {
			idx += int(v << uint(-c.Shift))
		}
	}
	return idx
}

func (b *builder) makeLeaf(ids []int32) *Node {
	sh := b.shared
	h := hashIDs(ids)
	sh.mu.Lock()
	for _, l := range sh.leafCache[h] {
		if equalIDs(l.Rules, ids) {
			sh.mu.Unlock()
			return l
		}
	}
	l := &Node{Leaf: true, Rules: ids}
	sh.leafCache[h] = append(sh.leafCache[h], l)
	sh.mu.Unlock()
	b.stats.Nodes++
	b.stats.Leaves++
	b.stats.ReplicatedRules += int64(len(ids))
	if len(ids) > b.cfg.Binth {
		b.stats.OverflowLeaves++
	}
	return l
}

// hashIDs is FNV-1a over the ID words; leaf deduplication keys on it with
// chained equality, so no per-leaf string key is ever allocated.
func hashIDs(ids []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 1099511628211
	}
	return h
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chooseHiCuts picks a single dimension and cut count per the modified
// HiCuts rule: np starts at 32 (StartCuts) and doubles while Eq. 3 holds:
// spfac*N >= sum(child rules)+np, np < 129, and the dimension has bits
// left. The dimension minimizing the largest child population wins.
func (b *builder) chooseHiCuts(ids []int32, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32) ([]int, []int) {
	n := len(ids)
	budget := int64(b.cfg.Spfac) * int64(n) // Eq. 1/3 space budget
	b.rlo = grow(b.rlo, n)
	b.rhi = grow(b.rhi, n)
	rlo, rhi := b.rlo, b.rhi
	bestDim, bestBits, bestMax := -1, 0, n+1
	for d := 0; d < rule.NumDims; d++ {
		avail := 8 - prefixLen[d]
		if avail <= 0 {
			continue
		}
		b.remainders(ids, d, prefixLen[d], prefixVal[d], rlo, rhi)
		maxBits := avail
		if cap := log2(b.cfg.CutCap); cap < maxBits {
			maxBits = cap
		}
		k := log2(b.cfg.StartCuts)
		if k > maxBits {
			k = maxBits
		}
		// Shrink below the starting point if even it busts the space
		// budget: the space measure is HiCuts' defence against rule
		// replication blowing up memory, and a cut that exceeds it is
		// refused rather than taken (heavily wildcarded nodes become
		// overflow leaves scanned at 30 rules/cycle instead).
		for k > 0 {
			sm := b.spaceMeasure(rlo, rhi, avail, k)
			b.stats.CutEvaluations++
			if sm <= budget {
				break
			}
			k--
		}
		if k == 0 {
			continue
		}
		// Double while Eq. 3 holds: space measure within budget and
		// np < 129.
		for k < maxBits && 1<<uint(k) < 129 {
			sm := b.spaceMeasure(rlo, rhi, avail, k+1)
			b.stats.CutEvaluations++
			if sm > budget {
				break
			}
			k++
		}
		maxChild := b.maxChild1D(rlo, rhi, avail, k)
		b.stats.CutEvaluations++
		if maxChild < bestMax || (maxChild == bestMax && k < bestBits) {
			bestDim, bestBits, bestMax = d, k, maxChild
		}
	}
	if bestDim < 0 || bestMax >= n {
		return nil, nil
	}
	return []int{bestDim}, []int{bestBits}
}

// spaceMeasure is sum(rules per child) + np for a 1-D cut with 2^k cuts.
func (b *builder) spaceMeasure(rlo, rhi []uint8, avail, k int) int64 {
	sh := uint(avail - k)
	var total int64
	for i := range rlo {
		total += int64(rhi[i]>>sh) - int64(rlo[i]>>sh) + 1
		b.stats.RuleChildOps++
	}
	return total + int64(1)<<uint(k)
}

func (b *builder) maxChild1D(rlo, rhi []uint8, avail, k int) int {
	np := 1 << uint(k)
	sh := uint(avail - k)
	b.gridBuf = grow(b.gridBuf, np+1)
	diff := b.gridBuf[:np+1]
	for i := range diff {
		diff[i] = 0
	}
	for i := range rlo {
		diff[rlo[i]>>sh]++
		diff[(rhi[i]>>sh)+1]--
		b.stats.RuleChildOps++
	}
	maxC, cur := int32(0), int32(0)
	for i := 0; i < np; i++ {
		cur += diff[i]
		if cur > maxC {
			maxC = cur
		}
	}
	return int(maxC)
}

// chooseHyperCuts picks the multi-dimensional cut per the modified rule:
// dimensions with at least the mean number of distinct range
// specifications are candidates; every combination of per-dimension
// power-of-two cut counts with 32 <= np <= 2^(4+spfac) (Eq. 4) is
// evaluated and the one minimizing the largest child population wins.
func (b *builder) chooseHyperCuts(ids []int32, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32) ([]int, []int) {
	n := len(ids)
	// Distinct range specifications per dimension.
	distinct := [rule.NumDims]int{}
	for d := 0; d < rule.NumDims; d++ {
		set := make(map[rule.Range]struct{}, n)
		for _, id := range ids {
			set[b.rules[id].F[d]] = struct{}{}
		}
		distinct[d] = len(set)
	}
	mean := 0.0
	for _, c := range distinct {
		mean += float64(c)
	}
	mean /= rule.NumDims

	var cand []dimInfo
	for d := 0; d < rule.NumDims; d++ {
		avail := 8 - prefixLen[d]
		if avail <= 0 || float64(distinct[d]) < mean || distinct[d] <= 1 {
			continue
		}
		b.dimLo[d] = grow(b.dimLo[d], n)
		b.dimHi[d] = grow(b.dimHi[d], n)
		di := dimInfo{d: d, avail: avail, rlo: b.dimLo[d], rhi: b.dimHi[d]}
		b.remainders(ids, d, prefixLen[d], prefixVal[d], di.rlo, di.rhi)
		cand = append(cand, di)
	}
	if len(cand) == 0 {
		return nil, nil
	}

	maxTotalBits := 4 + b.cfg.Spfac // Eq. 4 upper bound: np <= 2^(4+spfac)
	if cap := log2(b.cfg.CutCap); cap < maxTotalBits {
		maxTotalBits = cap
	}
	minTotalBits := log2(b.cfg.StartCuts) // Eq. 4 lower bound: np >= 32
	// When the node has fewer than 5 unfixed bits in total, relax the
	// lower bound to whatever is achievable.
	totalAvail := 0
	for _, di := range cand {
		a := di.avail
		if a > maxTotalBits {
			a = maxTotalBits
		}
		totalAvail += a
	}
	if totalAvail < minTotalBits {
		minTotalBits = totalAvail
	}
	if minTotalBits < 1 {
		minTotalBits = 1
	}

	var bestDims, bestBits []int
	bestMax := n + 1
	bestRefs := int64(1) << 62
	bestNp := 0

	cur := make([]int, len(cand))
	var dfs func(i, sumBits int)
	dfs = func(i, sumBits int) {
		if i == len(cand) {
			if sumBits < minTotalBits {
				return
			}
			var dims, bits []int
			for j := range cand {
				if cur[j] > 0 {
					dims = append(dims, cand[j].d)
					bits = append(bits, cur[j])
				}
			}
			if dims == nil {
				return
			}
			maxChild, refs := b.evalMulti(cand, cur)
			b.stats.CutEvaluations++
			np := 1 << uint(sumBits)
			// Space budget: combos whose replication exceeds spfac*n
			// are refused (the explosion defence the original space
			// measure provided; nodes with only over-budget cuts become
			// overflow leaves searched at 30 rules/cycle).
			if refs+int64(np) > int64(b.cfg.Spfac)*int64(n) {
				return
			}
			better := maxChild < bestMax ||
				(maxChild == bestMax && refs < bestRefs) ||
				(maxChild == bestMax && refs == bestRefs && np < bestNp)
			if better {
				bestMax, bestRefs, bestNp = maxChild, refs, np
				bestDims, bestBits = dims, bits
			}
			return
		}
		maxK := cand[i].avail
		if maxK > maxTotalBits-sumBits {
			maxK = maxTotalBits - sumBits
		}
		for k := 0; k <= maxK; k++ {
			cur[i] = k
			dfs(i+1, sumBits+k)
		}
		cur[i] = 0
	}
	dfs(0, 0)
	if bestDims == nil && minTotalBits > 1 {
		// No combo satisfying np >= 32 fits the space budget; retry
		// allowing smaller cuts (mirrors HiCuts shrinking below its
		// starting point under the same budget pressure).
		minTotalBits = 1
		dfs(0, 0)
	}

	if bestDims == nil || bestMax >= n {
		return nil, nil
	}
	return bestDims, bestBits
}

// dimInfo caches one candidate dimension's per-rule footprint in the
// node's unfixed top-8 bit space.
type dimInfo struct {
	d     int
	avail int
	rlo   []uint8
	rhi   []uint8
}

// evalMulti computes, for a candidate multi-dimensional cut, the largest
// child population (primary selection criterion, as stated by the paper)
// and the total number of rule references the cut would create (the
// replication cost, used to break ties in favour of less storage).
func (b *builder) evalMulti(cand []dimInfo, bits []int) (maxChild int, totalRefs int64) {
	// Active dimensions.
	type active struct {
		idx int // into cand
		k   int
	}
	var actArr [rule.NumDims]active
	act := actArr[:0]
	np := 1
	for i := range cand {
		if bits[i] > 0 {
			act = append(act, active{i, bits[i]})
			np <<= uint(bits[i])
		}
	}
	if np == 1 {
		return 0, 0
	}
	var strideArr, dimArr [rule.NumDims]int
	strides := strideArr[:len(act)]
	s := 1
	for i := len(act) - 1; i >= 0; i-- {
		strides[i] = s
		s <<= uint(act[i].k)
	}
	dims := dimArr[:len(act)]
	for i, a := range act {
		dims[i] = 1 << uint(a.k)
	}
	b.gridBuf = grow(b.gridBuf, np)
	grid := b.gridBuf[:np]
	for i := range grid {
		grid[i] = 0
	}
	n := len(cand[0].rlo)
	var spanArr [rule.NumDims][2]int
	spans := spanArr[:len(act)]
	for r := 0; r < n; r++ {
		vol := int64(1)
		for i, a := range act {
			di := cand[a.idx]
			sh := uint(di.avail - a.k)
			spans[i] = [2]int{int(di.rlo[r] >> sh), int(di.rhi[r] >> sh)}
			vol *= int64(spans[i][1] - spans[i][0] + 1)
			b.stats.RuleChildOps++
		}
		totalRefs += vol
		addBox(grid, strides, dims, spans)
	}
	for i := range act {
		prefixSumAxis(grid, strides, dims, i)
	}
	maxC := int32(0)
	for _, v := range grid {
		if v > maxC {
			maxC = v
		}
	}
	return int(maxC), totalRefs
}

// addBox and prefixSumAxis mirror the HyperCuts helpers: +1 over a
// hyper-rectangle via inclusion-exclusion, then prefix sums per axis.
func addBox(grid []int32, strides, dims []int, spans [][2]int) {
	k := len(spans)
	for corner := 0; corner < 1<<uint(k); corner++ {
		idx := 0
		sign := int32(1)
		valid := true
		for i := 0; i < k; i++ {
			if corner&(1<<uint(i)) == 0 {
				idx += spans[i][0] * strides[i]
			} else {
				hi := spans[i][1] + 1
				if hi >= dims[i] {
					valid = false
					break
				}
				idx += hi * strides[i]
				sign = -sign
			}
		}
		if valid {
			grid[idx] += sign
		}
	}
}

func prefixSumAxis(grid []int32, strides, dims []int, a int) {
	stride := strides[a]
	n := dims[a]
	for base := 0; base < len(grid); base++ {
		if (base/stride)%n != 0 {
			continue
		}
		acc := int32(0)
		for j := 0; j < n; j++ {
			acc += grid[base+j*stride]
			grid[base+j*stride] = acc
		}
	}
}

// distribute builds per-child rule lists for the chosen cut. It also
// reports how many rules are "broad" — landing in at least half of the
// children — which drives the broad-rule leaf termination.
func (b *builder) distribute(ids []int32, dims, bits []int, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32, np int) (children [][]int32, broad int) {
	n := len(ids)
	for i, d := range dims {
		b.dimLo[d] = grow(b.dimLo[d], n)
		b.dimHi[d] = grow(b.dimHi[d], n)
		rlo, rhi := b.dimLo[d], b.dimHi[d]
		b.remainders(ids, d, prefixLen[d], prefixVal[d], rlo, rhi)
		avail := 8 - prefixLen[d]
		sh := uint(avail - bits[i])
		b.spanBuf[i] = grow(b.spanBuf[i], n)
		sp := b.spanBuf[i]
		for r := 0; r < n; r++ {
			sp[r] = [2]int{int(rlo[r] >> sh), int(rhi[r] >> sh)}
		}
	}
	strides := bitStrides(bits)
	children = make([][]int32, np)
	var spanArr [rule.NumDims][2]int
	spans := spanArr[:len(dims)]
	idx := b.idxBuf[:len(dims)]
	for r, id := range ids {
		vol := 1
		for i := range dims {
			spans[i] = b.spanBuf[i][r]
			vol *= spans[i][1] - spans[i][0] + 1
		}
		if vol*2 >= np {
			broad++
		}
		enumerateBox(spans, strides, idx, func(child int) {
			children[child] = append(children[child], id)
			b.stats.RulePushes++
		})
	}
	return children, broad
}

// enumerateBox walks every flat child index inside the box of per-dim
// spans; strides here are bit shifts (child = sum comp_i << stride_i).
// idx is the caller-provided odometer buffer (len(spans) entries), hoisted
// out of per-rule loops so enumeration allocates nothing.
func enumerateBox(spans [][2]int, strides, idx []int, fn func(int)) {
	k := len(spans)
	for i := range idx[:k] {
		idx[i] = spans[i][0]
	}
	for {
		child := 0
		for i := 0; i < k; i++ {
			child += idx[i] << uint(strides[i])
		}
		fn(child)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] <= spans[i][1] {
				break
			}
			idx[i] = spans[i][0]
		}
		if i < 0 {
			return
		}
	}
}

func log2(v int) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Classify walks the logical tree using exactly the hardware's
// mask/shift/add child-index computation and a priority-ordered leaf scan.
// It returns the matching rule ID or -1.
//
// This pointer-chasing walk is the readable reference; the flat engine in
// internal/engine compiles the same tree into contiguous arrays and
// classifies several times faster. Both are differentially tested against
// internal/linear.
func (t *Tree) Classify(p rule.Packet) int {
	n := t.Root
	for n != nil && !n.Leaf {
		n = n.Children[ChildIndex(n.Cuts, p)]
	}
	if n == nil {
		return -1
	}
	for _, id := range n.Rules {
		if t.rules[id].Matches(p) {
			return int(id)
		}
	}
	return -1
}

// ensureInternalRoot guarantees the root is an internal node, since the
// accelerator keeps the root's cut information in register A. A leaf root
// (tiny rulesets) is wrapped in a minimal 32-cut internal node whose
// children all point at the leaf.
func (t *Tree) ensureInternalRoot() {
	if !t.Root.Leaf {
		return
	}
	leaf := t.Root
	cuts := makeCuts([]int{rule.DimSrcIP}, []int{5}, [rule.NumDims]int{})
	children := make([]*Node, 32)
	for i := range children {
		children[i] = leaf
	}
	t.Root = &Node{Cuts: cuts, Children: children}
	t.stats.Nodes++
	t.stats.Internal++
}
