package core

import (
	"fmt"

	"repro/internal/rule"
)

// Incremental updates (paper §2.1 notes HiCuts/HyperCuts support them;
// §4: "incremental updates to the search structure can be made if a copy
// of the search structure is kept in off-chip memory for the control
// plane processor to use when updating").
//
// The control-plane model implemented here mirrors that description: the
// logical tree is the off-chip copy; Insert and Delete modify the leaves
// the rule overlaps without re-cutting, then a fresh memory image is laid
// out and re-encoded for the accelerator. Tree quality can degrade after
// many updates (leaves grow past Binth), so Degradation reports how far
// the structure has drifted and callers rebuild when it exceeds their
// threshold.

// Insert adds r to the tree. The rule's ID must extend the current
// ruleset (len(rules)) — rule priority is its position, so arbitrary
// priority insertion requires a rebuild.
func (t *Tree) Insert(r rule.Rule) error {
	if r.ID != len(t.rules) {
		return fmt.Errorf("core: incremental insert requires ID %d (lowest priority), got %d", len(t.rules), r.ID)
	}
	for d := 0; d < rule.NumDims; d++ {
		f := r.F[d]
		if f.Lo > f.Hi || f.Hi > rule.MaxValue(d) {
			return fmt.Errorf("core: invalid range in %s", rule.DimNames[d])
		}
	}
	t.rules = append(t.rules, r)
	t.insertInto(t.Root, &t.rules[len(t.rules)-1], [rule.NumDims]int{}, [rule.NumDims]uint32{})
	return t.layout()
}

// insertInto adds the rule to every leaf whose region it overlaps,
// following the same child-span arithmetic the builder uses.
func (t *Tree) insertInto(n *Node, r *rule.Rule, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32) {
	if n.Leaf {
		// Shared leaves (identical rule lists, including the shared
		// empty leaf) must be unshared before mutation; layout() will
		// handle the storage. Copy-on-write via a private marker slice.
		n.Rules = append(n.Rules[:len(n.Rules):len(n.Rules)], int32(r.ID))
		return
	}
	// Compute the child index span of the rule for this node's cut.
	spans := make([][2]int, len(n.Cuts))
	strides := make([]int, len(n.Cuts))
	s := 0
	for i := len(n.Cuts) - 1; i >= 0; i-- {
		strides[i] = s
		s += n.Cuts[i].Bits
	}
	for i, c := range n.Cuts {
		d := c.Dim
		avail := 8 - prefixLen[d]
		w := rule.DimBits[d]
		var regionLo, regionHi uint32
		if prefixLen[d] == 0 {
			regionLo, regionHi = 0, rule.MaxValue(d)
		} else {
			shift := w - uint(prefixLen[d])
			regionLo = prefixVal[d] << shift
			regionHi = regionLo | (uint32(1)<<shift - 1)
		}
		lo, hi := r.F[d].Lo, r.F[d].Hi
		if hi < regionLo || lo > regionHi {
			return // rule does not touch this subtree
		}
		if lo < regionLo {
			lo = regionLo
		}
		if hi > regionHi {
			hi = regionHi
		}
		availMask := uint32(1)<<uint(avail) - 1
		rlo := int(((lo >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		rhi := int(((hi >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		spans[i] = [2]int{rlo, rhi}
	}
	// Recurse into each overlapped child. Leaves may be shared between
	// many slots (the builder deduplicates identical leaves), so a
	// mutated leaf is first unshared via copy-on-write; every overlapped
	// slot that pointed at the same old leaf gets the same fresh copy,
	// while slots outside the rule's span correctly keep the old one.
	freshened := map[*Node]*Node{}
	visited := map[*Node]bool{}
	idx := make([]int, len(spans))
	enumerateBox(spans, strides, idx, func(child int) {
		c := n.Children[child]
		if c == nil {
			return
		}
		if c.Leaf {
			fresh, ok := freshened[c]
			if !ok {
				fresh = &Node{Leaf: true, Rules: append([]int32(nil), c.Rules...)}
				fresh.Rules = append(fresh.Rules, int32(r.ID))
				freshened[c] = fresh
			}
			n.Children[child] = fresh
			return
		}
		if visited[c] {
			return
		}
		visited[c] = true
		childLen := prefixLen
		childVal := prefixVal
		for j, cut := range n.Cuts {
			comp := (child >> uint(strides[j])) & (1<<uint(cut.Bits) - 1)
			childVal[cut.Dim] = childVal[cut.Dim]<<uint(cut.Bits) | uint32(comp)
			childLen[cut.Dim] += cut.Bits
		}
		t.insertInto(c, r, childLen, childVal)
	})
}

// Delete removes the rule with the given ID from every leaf. The rule
// stays in the ruleset slice (IDs are positional) but is disabled; its
// slots are reclaimed at the next layout.
func (t *Tree) Delete(id int) error {
	if id < 0 || id >= len(t.rules) {
		return fmt.Errorf("core: no rule %d", id)
	}
	var walk func(n *Node)
	seen := map[*Node]bool{}
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if n.Leaf {
			out := n.Rules[:0:0]
			for _, rid := range n.Rules {
				if rid != int32(id) {
					out = append(out, rid)
				}
			}
			n.Rules = out
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	// Disable the rule so Classify/Walk never match it again even if a
	// stale reference survives.
	t.rules[id].F[rule.DimProto] = rule.Range{Lo: 1, Hi: 0} // empty range matches nothing
	return t.layout()
}

// Degradation reports how far incremental updates have pushed the tree
// from its built quality: the fraction of leaves now holding more than
// Binth rules. Rebuild when this exceeds the operator's threshold.
func (t *Tree) Degradation() float64 {
	if len(t.leafOrder) == 0 {
		return 0
	}
	over := 0
	for _, l := range t.leafOrder {
		if len(l.Rules) > t.cfg.Binth {
			over++
		}
	}
	return float64(over) / float64(len(t.leafOrder))
}
