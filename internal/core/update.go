package core

import (
	"fmt"
	"sort"

	"repro/internal/rule"
)

// Incremental updates (paper §2.1 notes HiCuts/HyperCuts support them;
// §4: "incremental updates to the search structure can be made if a copy
// of the search structure is kept in off-chip memory for the control
// plane processor to use when updating").
//
// The control-plane model implemented here mirrors that description: the
// logical tree is the off-chip copy; Insert and Delete modify the leaves
// the rule overlaps without re-cutting, and the change is captured as a
// structured Delta (leaf edits + child-slot repointings) that loaded
// images replay via engine.Patch instead of recompiling. Only the leaf
// packing is refreshed per update (applyDelta); internal-node words never
// move. Tree quality can degrade after many updates (leaves grow past
// Binth, unshared leaves orphan their originals), so Degradation reports
// how far the structure has drifted and callers trigger Relayout plus a
// full recompile when it exceeds their threshold.

// Insert adds r to the tree. It is InsertDelta with the delta discarded —
// callers that maintain a compiled image want InsertDelta.
func (t *Tree) Insert(r rule.Rule) error {
	_, err := t.InsertDelta(r)
	return err
}

// InsertDelta adds r to the tree and returns the structured delta the
// update makes to the laid-out image. The rule's ID must extend the
// current ruleset (len(rules)) — rule priority is its position, so
// arbitrary priority insertion requires a rebuild.
func (t *Tree) InsertDelta(r rule.Rule) (*Delta, error) {
	if r.ID != len(t.rules) {
		return nil, fmt.Errorf("core: incremental insert requires ID %d (lowest priority), got %d", len(t.rules), r.ID)
	}
	for d := 0; d < rule.NumDims; d++ {
		f := r.F[d]
		if f.Lo > f.Hi || f.Hi > rule.MaxValue(d) {
			return nil, fmt.Errorf("core: invalid range in %s", rule.DimNames[d])
		}
	}
	t.rules = append(t.rules, r)
	d := &Delta{RuleAppended: true, AppendedRule: r, DisabledRule: -1}
	t.insertInto(t.Root, &t.rules[len(t.rules)-1], [rule.NumDims]int{}, [rule.NumDims]uint32{}, d)
	t.applyDelta(d)
	return d, nil
}

// insertInto adds the rule to every leaf whose region it overlaps,
// following the same child-span arithmetic the builder uses, recording
// every leaf replacement in d.
func (t *Tree) insertInto(n *Node, r *rule.Rule, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32, d *Delta) {
	if n.Leaf {
		// Only reachable for a leaf root, which ensureInternalRoot
		// prevents; kept as a defensive in-place edit.
		n.Rules = append(n.Rules[:len(n.Rules):len(n.Rules)], int32(r.ID))
		t.occAdd(int32(r.ID), int32(t.leafIndex[n]))
		d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: t.leafIndex[n], Rules: n.Rules, Keep: appendKeep(len(n.Rules))})
		return
	}
	// Compute the child index span of the rule for this node's cut.
	spans := make([][2]int, len(n.Cuts))
	strides := make([]int, len(n.Cuts))
	s := 0
	for i := len(n.Cuts) - 1; i >= 0; i-- {
		strides[i] = s
		s += n.Cuts[i].Bits
	}
	for i, c := range n.Cuts {
		dim := c.Dim
		avail := 8 - prefixLen[dim]
		w := rule.DimBits[dim]
		var regionLo, regionHi uint32
		if prefixLen[dim] == 0 {
			regionLo, regionHi = 0, rule.MaxValue(dim)
		} else {
			shift := w - uint(prefixLen[dim])
			regionLo = prefixVal[dim] << shift
			regionHi = regionLo | (uint32(1)<<shift - 1)
		}
		lo, hi := r.F[dim].Lo, r.F[dim].Hi
		if hi < regionLo || lo > regionHi {
			return // rule does not touch this subtree
		}
		if lo < regionLo {
			lo = regionLo
		}
		if hi > regionHi {
			hi = regionHi
		}
		availMask := uint32(1)<<uint(avail) - 1
		rlo := int(((lo >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		rhi := int(((hi >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		spans[i] = [2]int{rlo, rhi}
	}
	// Recurse into each overlapped child. Leaves may be shared between
	// many slots (the builder deduplicates identical leaves), so a
	// mutated leaf is first unshared via copy-on-write; every overlapped
	// slot that pointed at the same old leaf gets the same fresh copy,
	// while slots outside the rule's span correctly keep the old one.
	// Each unsharing appends a leaf-table entry (LeafEdit{New}) and each
	// repointed slot becomes a KidEdit, so a compiled image can replay
	// the exact same copy-on-write.
	freshened := map[*Node]*Node{}
	visited := map[*Node]bool{}
	idx := make([]int, len(spans))
	enumerateBox(spans, strides, idx, func(child int) {
		c := n.Children[child]
		if c == nil {
			return
		}
		if c.Leaf {
			fresh, unsharing := freshened[c]
			if !unsharing && t.leafRefs[c] == 1 {
				// This slot is the leaf's only reference, so no
				// unsharing is needed: rewrite it in place (a non-New
				// LeafEdit, the same image edit a Delete emits) instead
				// of orphaning the original and growing the leaf table.
				c.Rules = append(c.Rules[:len(c.Rules):len(c.Rules)], int32(r.ID))
				t.occAdd(int32(r.ID), int32(t.leafIndex[c]))
				d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: t.leafIndex[c], Rules: c.Rules, Keep: appendKeep(len(c.Rules))})
				return
			}
			// Shared leaf: unshare via copy-on-write. Every spanned slot
			// of this node repoints at one fresh copy — including the
			// last reference (the freshened-map hit takes priority over
			// the in-place path above), so dedup within the span is
			// preserved and a fully-covered leaf is orphaned.
			if !unsharing {
				fresh = &Node{Leaf: true, Rules: append([]int32(nil), c.Rules...)}
				fresh.Rules = append(fresh.Rules, int32(r.ID))
				freshened[c] = fresh
				fi := len(t.leafOrder)
				t.leafOrder = append(t.leafOrder, fresh)
				t.leafIndex[fresh] = fi
				for _, rid := range fresh.Rules {
					t.occAdd(rid, int32(fi))
				}
				d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: fi, New: true, Rules: fresh.Rules})
			}
			n.Children[child] = fresh
			t.leafRefs[fresh]++
			t.addParent(fresh, n.Word)
			t.leafRefs[c]--
			t.removeParent(c, n.Word)
			if t.leafRefs[c] == 0 {
				t.orphans++
				oi := t.leafIndex[c]
				for _, rid := range c.Rules {
					t.occRemove(rid, int32(oi))
				}
				d.Orphaned = append(d.Orphaned, oi)
			}
			d.KidEdits = append(d.KidEdits, KidEdit{Word: n.Word, Slot: child, Leaf: t.leafIndex[fresh]})
			return
		}
		if visited[c] {
			return
		}
		visited[c] = true
		childLen := prefixLen
		childVal := prefixVal
		for j, cut := range n.Cuts {
			comp := (child >> uint(strides[j])) & (1<<uint(cut.Bits) - 1)
			childVal[cut.Dim] = childVal[cut.Dim]<<uint(cut.Bits) | uint32(comp)
			childLen[cut.Dim] += cut.Bits
		}
		t.insertInto(c, r, childLen, childVal, d)
	})
}

// Delete removes the rule with the given ID. It is DeleteDelta with the
// delta discarded.
func (t *Tree) Delete(id int) error {
	_, err := t.DeleteDelta(id)
	return err
}

// DeleteDelta removes the rule with the given ID from every live leaf and
// returns the structured delta. The affected leaves are resolved through
// the rule→leaves occupancy index — O(occupied leaves), never a scan of
// the whole leaf table. The rule stays in the ruleset slice (IDs are
// positional) but is disabled; its slots are reclaimed at the next full
// relayout.
func (t *Tree) DeleteDelta(id int) (*Delta, error) {
	if id < 0 || id >= len(t.rules) {
		return nil, fmt.Errorf("core: no rule %d", id)
	}
	d := &Delta{DisabledRule: id}
	// Sorted for deterministic delta order (and ascending LeafEdits let
	// image patchers stream the dirty region front to back).
	for _, i := range t.RuleLeaves(id) {
		l := t.leafOrder[i]
		out := l.Rules[:0:0]
		keep := 0
		for k, rid := range l.Rules {
			if rid != int32(id) {
				out = append(out, rid)
			} else {
				keep = k
			}
		}
		if keep == len(out) && keep > 0 {
			keep-- // removed the last rule: its predecessor's end flag moves
		}
		l.Rules = out
		d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: i, Rules: out, Keep: keep})
	}
	delete(t.occ, int32(id))
	// Disable the rule so Classify/Walk never match it again even if a
	// stale reference survives (an orphaned leaf may still list it; the
	// encoder stores such slots as sentinels).
	t.rules[id].F[rule.DimProto] = rule.Range{Lo: 1, Hi: 0} // empty range matches nothing
	t.applyDelta(d)
	return d, nil
}

// applyDelta is the delta-apply half of the layout split: internal nodes
// never move under incremental updates, so only the leaf packing (Word/
// Pos assignment and the word count) needs refreshing — and only
// incrementally. Leaves strictly before the first edited index keep
// their layout untouched; from each edited index the repack runs forward
// only until the packing cursor reconverges with the stored layout
// (with speed-1 packing a size change is absorbed at the next
// word-boundary jump, so the repacked span is a few leaves, not the
// table). The repacked spans become the delta's DirtyWords: the exact
// memory words an image patcher must rewrite. Orphaned leaves keep their
// storage until Relayout compacts them, so leaf-table indices stay
// stable for images replaying deltas.
func (t *Tree) applyDelta(d *Delta) {
	d.WordsBefore = t.words
	d.FirstDirtyLeaf = -1
	dirty := make([]WordRange, 0, len(d.KidEdits)+2)
	for _, ke := range d.KidEdits {
		// A repointed child slot changes the internal node's word.
		dirty = append(dirty, WordRange{Lo: ke.Word, Hi: ke.Word + 1})
	}
	if len(d.LeafEdits) > 0 {
		newCount := 0
		edited := make([]int, 0, len(d.LeafEdits))
		keep := make(map[int]int, len(d.LeafEdits))
		for _, le := range d.LeafEdits {
			edited = append(edited, le.Index)
			keep[le.Index] = le.Keep
			if le.New {
				newCount++
			}
		}
		sort.Ints(edited)
		d.FirstDirtyLeaf = edited[0]
		dirty = append(dirty, t.repackFrom(edited, keep, newCount)...)
	}
	// Orphaned leaves count as dirty too: their storage is rewritten to
	// sentinel slots below, so patchers starting at FirstDirtyLeaf must
	// not skip them.
	for _, oi := range d.Orphaned {
		if d.FirstDirtyLeaf < 0 || oi < d.FirstDirtyLeaf {
			d.FirstDirtyLeaf = oi
		}
	}
	// A leaf orphaned by this update keeps its span but its storage
	// turns into sentinel slots (dead words hold nothing matchable and
	// stop depending on live rule state); rewrite it once, now. Spans
	// use the final placement — if the repack also moved the orphan,
	// the segment ranges above already cover both locations.
	for _, oi := range d.Orphaned {
		l := t.leafOrder[oi]
		n := len(l.Rules)
		if n == 0 {
			n = 1
		}
		end := l.Word + (l.Pos+n-1)/t.leafSlots()
		dirty = append(dirty, WordRange{Lo: l.Word, Hi: end + 1})
	}
	t.recomputeWords()
	d.WordsAfter = t.words
	d.DirtyWords = mergeWordRanges(dirty)
}

// repackFrom reruns the leaf packing over the minimal spans that a set
// of edited leaf-table indices can have moved, and returns the memory-
// word ranges those spans occupy (under the old and the new layout —
// by construction the same range, see below). edited is sorted;
// newCount of its entries are freshly appended leaves.
//
// Each span starts at an edited index, with the packing cursor derived
// O(1) from the preceding (final) leaf, and ends when the cursor again
// equals a later leaf's stored placement: from that leaf on, placements
// are a pure function of an unchanged cursor over unchanged rule lists,
// so nothing after it can differ. Because convergence means the span
// consumed exactly as many rule slots as before, its old and new
// contents occupy the same word range, which is what makes the returned
// ranges a complete dirty set for word-level image patching.
//
// Freshly appended leaves never converge (they have no previous
// placement), so a span reaching them runs to the end of the table and
// the dirty range extends to cover both the old and new image tails.
func (t *Tree) repackFrom(edited []int, keep map[int]int, newCount int) []WordRange {
	slots := t.leafSlots()
	oldCount := len(t.leafOrder) - newCount
	oldWords := t.words
	isEdited := make(map[int]bool, len(edited))
	for _, e := range edited {
		isEdited[e] = true
	}
	var ranges []WordRange
	covered := -1 // leaves <= covered already carry final placements
	for _, e := range edited {
		if e <= covered {
			continue // repacked as part of an earlier span
		}
		word, pos := t.cursorAfter(e, slots)
		lo := word
		i := e
		converged := false
		for ; i < len(t.leafOrder); i++ {
			l := t.leafOrder[i]
			if i < oldCount && !isEdited[i] {
				// Would this unedited leaf land exactly where it
				// already is? Replicate placeLeaf's decision without
				// committing it.
				w, p := word, pos
				n := len(l.Rules)
				if n == 0 {
					n = 1
				}
				if t.cfg.Speed == 1 && p > 0 && p+n > slots {
					w++
					p = 0
				}
				if l.Word == w && l.Pos == p {
					converged = true
					break
				}
			}
			ow, op := l.Word, l.Pos
			word, pos = t.placeLeaf(l, word, pos, slots)
			if l.Word != ow || l.Pos != op {
				// The leaf moved: every internal word whose cut entries
				// embed its (Word, Pos) must be rewritten too.
				for pw := range t.leafParents[l] {
					ranges = append(ranges, WordRange{Lo: pw, Hi: pw + 1})
				}
			} else if i == e && i < oldCount {
				// The span's first leaf stayed put, so its leading
				// unchanged slots (LeafEdit.Keep of them) keep their
				// words clean: the rewrite starts at the word holding
				// the first changed slot, not at the leaf's first word.
				// For an append into a 20-word leaf that is 1 word
				// rewritten instead of 20.
				lo = ow + (op+keep[i])/slots
			}
		}
		hi := word
		if pos > 0 {
			hi = word + 1
		}
		if !converged {
			// Ran to the end of the table: the image tail is dirty up
			// to whichever layout (old or new) extends further. The
			// leaf region ends at hi; the old total may include more.
			if oldWords > hi {
				hi = oldWords
			}
			covered = len(t.leafOrder) - 1
		} else {
			covered = i - 1
		}
		ranges = append(ranges, WordRange{Lo: lo, Hi: hi})
		if !converged {
			break
		}
	}
	return ranges
}

// appendKeep returns LeafEdit.Keep for an append that grew a leaf to
// newLen rules: every slot but the appended one and its predecessor
// (whose end-of-leaf flag clears) is bit-identical.
func appendKeep(newLen int) int {
	if newLen < 2 {
		return 0
	}
	return newLen - 2
}

// mergeWordRanges sorts and coalesces overlapping or adjacent ranges.
func mergeWordRanges(rs []WordRange) []WordRange {
	if len(rs) == 0 {
		return nil
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// Relayout runs the full layout pass: breadth-first renumbering of
// internal words, rediscovery of live leaves (dropping orphans) and a
// fresh leaf packing. It invalidates all outstanding deltas — images must
// be recompiled, not patched, across a Relayout. Callers use it when
// Degradation crosses their rebuild threshold.
func (t *Tree) Relayout() {
	// layout's error return is reserved for future packing policies and
	// is always nil today.
	_ = t.layout()
}

// Orphans returns the number of leaves that lost their last reference to
// incremental updates and await compaction by Relayout.
func (t *Tree) Orphans() int { return t.orphans }

// Degradation reports how far incremental updates have pushed the tree
// from its built quality: the fraction of leaf-table entries that are
// either overgrown (live leaves holding more than Binth rules — their
// scans exceed the built worst case) or orphaned (unshared originals
// still occupying device words). Rebuild (Relayout + recompile) when this
// exceeds the operator's threshold.
func (t *Tree) Degradation() float64 {
	if len(t.leafOrder) == 0 {
		return 0
	}
	over := 0
	for _, l := range t.leafOrder {
		if t.leafRefs[l] > 0 && len(l.Rules) > t.cfg.Binth {
			over++
		}
	}
	return float64(over+t.orphans) / float64(len(t.leafOrder))
}
