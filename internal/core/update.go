package core

import (
	"fmt"

	"repro/internal/rule"
)

// Incremental updates (paper §2.1 notes HiCuts/HyperCuts support them;
// §4: "incremental updates to the search structure can be made if a copy
// of the search structure is kept in off-chip memory for the control
// plane processor to use when updating").
//
// The control-plane model implemented here mirrors that description: the
// logical tree is the off-chip copy; Insert and Delete modify the leaves
// the rule overlaps without re-cutting, and the change is captured as a
// structured Delta (leaf edits + child-slot repointings) that loaded
// images replay via engine.Patch instead of recompiling. Only the leaf
// packing is refreshed per update (applyDelta); internal-node words never
// move. Tree quality can degrade after many updates (leaves grow past
// Binth, unshared leaves orphan their originals), so Degradation reports
// how far the structure has drifted and callers trigger Relayout plus a
// full recompile when it exceeds their threshold.

// Insert adds r to the tree. It is InsertDelta with the delta discarded —
// callers that maintain a compiled image want InsertDelta.
func (t *Tree) Insert(r rule.Rule) error {
	_, err := t.InsertDelta(r)
	return err
}

// InsertDelta adds r to the tree and returns the structured delta the
// update makes to the laid-out image. The rule's ID must extend the
// current ruleset (len(rules)) — rule priority is its position, so
// arbitrary priority insertion requires a rebuild.
func (t *Tree) InsertDelta(r rule.Rule) (*Delta, error) {
	if r.ID != len(t.rules) {
		return nil, fmt.Errorf("core: incremental insert requires ID %d (lowest priority), got %d", len(t.rules), r.ID)
	}
	for d := 0; d < rule.NumDims; d++ {
		f := r.F[d]
		if f.Lo > f.Hi || f.Hi > rule.MaxValue(d) {
			return nil, fmt.Errorf("core: invalid range in %s", rule.DimNames[d])
		}
	}
	t.rules = append(t.rules, r)
	d := &Delta{RuleAppended: true, AppendedRule: r, DisabledRule: -1}
	t.insertInto(t.Root, &t.rules[len(t.rules)-1], [rule.NumDims]int{}, [rule.NumDims]uint32{}, d)
	t.applyDelta()
	return d, nil
}

// insertInto adds the rule to every leaf whose region it overlaps,
// following the same child-span arithmetic the builder uses, recording
// every leaf replacement in d.
func (t *Tree) insertInto(n *Node, r *rule.Rule, prefixLen [rule.NumDims]int, prefixVal [rule.NumDims]uint32, d *Delta) {
	if n.Leaf {
		// Only reachable for a leaf root, which ensureInternalRoot
		// prevents; kept as a defensive in-place edit.
		n.Rules = append(n.Rules[:len(n.Rules):len(n.Rules)], int32(r.ID))
		d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: t.leafIndex[n], Rules: n.Rules})
		return
	}
	// Compute the child index span of the rule for this node's cut.
	spans := make([][2]int, len(n.Cuts))
	strides := make([]int, len(n.Cuts))
	s := 0
	for i := len(n.Cuts) - 1; i >= 0; i-- {
		strides[i] = s
		s += n.Cuts[i].Bits
	}
	for i, c := range n.Cuts {
		dim := c.Dim
		avail := 8 - prefixLen[dim]
		w := rule.DimBits[dim]
		var regionLo, regionHi uint32
		if prefixLen[dim] == 0 {
			regionLo, regionHi = 0, rule.MaxValue(dim)
		} else {
			shift := w - uint(prefixLen[dim])
			regionLo = prefixVal[dim] << shift
			regionHi = regionLo | (uint32(1)<<shift - 1)
		}
		lo, hi := r.F[dim].Lo, r.F[dim].Hi
		if hi < regionLo || lo > regionHi {
			return // rule does not touch this subtree
		}
		if lo < regionLo {
			lo = regionLo
		}
		if hi > regionHi {
			hi = regionHi
		}
		availMask := uint32(1)<<uint(avail) - 1
		rlo := int(((lo >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		rhi := int(((hi >> (w - 8)) & availMask) >> uint(avail-c.Bits))
		spans[i] = [2]int{rlo, rhi}
	}
	// Recurse into each overlapped child. Leaves may be shared between
	// many slots (the builder deduplicates identical leaves), so a
	// mutated leaf is first unshared via copy-on-write; every overlapped
	// slot that pointed at the same old leaf gets the same fresh copy,
	// while slots outside the rule's span correctly keep the old one.
	// Each unsharing appends a leaf-table entry (LeafEdit{New}) and each
	// repointed slot becomes a KidEdit, so a compiled image can replay
	// the exact same copy-on-write.
	freshened := map[*Node]*Node{}
	visited := map[*Node]bool{}
	idx := make([]int, len(spans))
	enumerateBox(spans, strides, idx, func(child int) {
		c := n.Children[child]
		if c == nil {
			return
		}
		if c.Leaf {
			fresh, unsharing := freshened[c]
			if !unsharing && t.leafRefs[c] == 1 {
				// This slot is the leaf's only reference, so no
				// unsharing is needed: rewrite it in place (a non-New
				// LeafEdit, the same image edit a Delete emits) instead
				// of orphaning the original and growing the leaf table.
				c.Rules = append(c.Rules[:len(c.Rules):len(c.Rules)], int32(r.ID))
				d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: t.leafIndex[c], Rules: c.Rules})
				return
			}
			// Shared leaf: unshare via copy-on-write. Every spanned slot
			// of this node repoints at one fresh copy — including the
			// last reference (the freshened-map hit takes priority over
			// the in-place path above), so dedup within the span is
			// preserved and a fully-covered leaf is orphaned.
			if !unsharing {
				fresh = &Node{Leaf: true, Rules: append([]int32(nil), c.Rules...)}
				fresh.Rules = append(fresh.Rules, int32(r.ID))
				freshened[c] = fresh
				fi := len(t.leafOrder)
				t.leafOrder = append(t.leafOrder, fresh)
				t.leafIndex[fresh] = fi
				d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: fi, New: true, Rules: fresh.Rules})
			}
			n.Children[child] = fresh
			t.leafRefs[fresh]++
			t.leafRefs[c]--
			if t.leafRefs[c] == 0 {
				t.orphans++
				d.Orphaned = append(d.Orphaned, t.leafIndex[c])
			}
			d.KidEdits = append(d.KidEdits, KidEdit{Word: n.Word, Slot: child, Leaf: t.leafIndex[fresh]})
			return
		}
		if visited[c] {
			return
		}
		visited[c] = true
		childLen := prefixLen
		childVal := prefixVal
		for j, cut := range n.Cuts {
			comp := (child >> uint(strides[j])) & (1<<uint(cut.Bits) - 1)
			childVal[cut.Dim] = childVal[cut.Dim]<<uint(cut.Bits) | uint32(comp)
			childLen[cut.Dim] += cut.Bits
		}
		t.insertInto(c, r, childLen, childVal, d)
	})
}

// Delete removes the rule with the given ID. It is DeleteDelta with the
// delta discarded.
func (t *Tree) Delete(id int) error {
	_, err := t.DeleteDelta(id)
	return err
}

// DeleteDelta removes the rule with the given ID from every live leaf and
// returns the structured delta. The rule stays in the ruleset slice (IDs
// are positional) but is disabled; its slots are reclaimed at the next
// full relayout.
func (t *Tree) DeleteDelta(id int) (*Delta, error) {
	if id < 0 || id >= len(t.rules) {
		return nil, fmt.Errorf("core: no rule %d", id)
	}
	d := &Delta{DisabledRule: id}
	for i, l := range t.leafOrder {
		if t.leafRefs[l] == 0 {
			continue // orphan: unreachable, compacted at next relayout
		}
		found := false
		for _, rid := range l.Rules {
			if rid == int32(id) {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		out := l.Rules[:0:0]
		for _, rid := range l.Rules {
			if rid != int32(id) {
				out = append(out, rid)
			}
		}
		l.Rules = out
		d.LeafEdits = append(d.LeafEdits, LeafEdit{Index: i, Rules: out})
	}
	// Disable the rule so Classify/Walk never match it again even if a
	// stale reference survives.
	t.rules[id].F[rule.DimProto] = rule.Range{Lo: 1, Hi: 0} // empty range matches nothing
	t.applyDelta()
	return d, nil
}

// applyDelta is the delta-apply half of the layout split: internal nodes
// never move under incremental updates, so only the leaf packing (Word/
// Pos assignment and the word count) is refreshed. Orphaned leaves keep
// their storage until Relayout compacts them, so leaf-table indices stay
// stable for images replaying deltas.
func (t *Tree) applyDelta() {
	t.packLeaves()
}

// Relayout runs the full layout pass: breadth-first renumbering of
// internal words, rediscovery of live leaves (dropping orphans) and a
// fresh leaf packing. It invalidates all outstanding deltas — images must
// be recompiled, not patched, across a Relayout. Callers use it when
// Degradation crosses their rebuild threshold.
func (t *Tree) Relayout() {
	// layout's error return is reserved for future packing policies and
	// is always nil today.
	_ = t.layout()
}

// Orphans returns the number of leaves that lost their last reference to
// incremental updates and await compaction by Relayout.
func (t *Tree) Orphans() int { return t.orphans }

// Degradation reports how far incremental updates have pushed the tree
// from its built quality: the fraction of leaf-table entries that are
// either overgrown (live leaves holding more than Binth rules — their
// scans exceed the built worst case) or orphaned (unshared originals
// still occupying device words). Rebuild (Relayout + recompile) when this
// exceeds the operator's threshold.
func (t *Tree) Degradation() float64 {
	if len(t.leafOrder) == 0 {
		return 0
	}
	over := 0
	for _, l := range t.leafOrder {
		if t.leafRefs[l] > 0 && len(l.Rules) > t.cfg.Binth {
			over++
		}
	}
	return float64(over+t.orphans) / float64(len(t.leafOrder))
}
