package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Snapshot is one published epoch of the flat image: an immutable Engine
// plus the epoch counter it was installed at. Readers that capture a
// Snapshot classify against a consistent structure for as long as they
// hold it, regardless of concurrent updates.
type Snapshot struct {
	eng   *Engine
	epoch uint64
}

// Engine returns the snapshot's immutable engine.
func (s *Snapshot) Engine() *Engine { return s.eng }

// Epoch returns the snapshot's version: 0 for the engine a Handle was
// created with, incremented by every Apply or Swap.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Handle is the epoch-versioned publication point between one updater
// and many readers, the software twin of the paper's §4 split between
// the classifying accelerator and the control-plane processor that
// updates the off-chip copy.
//
// Readers call Current (a single atomic pointer load — no locks, no
// reference counting) and classify on the returned snapshot; they
// observe updates whenever they next call Current. The updater applies
// tree deltas with Apply, which patches the newest snapshot and installs
// the result as the next epoch; Swap installs a freshly compiled engine
// when patch garbage or tree degradation warrants a full rebuild. Apply
// and Swap serialize on an internal mutex, so the handle is safe for
// concurrent use from any number of goroutines on both sides.
type Handle struct {
	cur atomic.Pointer[Snapshot]
	mu  sync.Mutex // serializes updaters (Apply/Swap)
}

// NewHandle publishes e as epoch 0.
func NewHandle(e *Engine) *Handle {
	h := &Handle{}
	h.cur.Store(&Snapshot{eng: e})
	return h
}

// Current returns the newest published snapshot. It is lock-free and
// safe to call from any goroutine at any time.
func (h *Handle) Current() *Snapshot { return h.cur.Load() }

// Apply patches the newest snapshot with d and publishes the result as
// the next epoch. Readers keep classifying on their captured snapshots
// throughout; there is no quiescence period and no stall.
func (h *Handle) Apply(d *core.Delta) (*Snapshot, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.cur.Load()
	ne, err := old.eng.Patch(d)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{eng: ne, epoch: old.epoch + 1}
	h.cur.Store(s)
	return s, nil
}

// Swap publishes a freshly compiled engine as the next epoch, replacing
// the patch chain (and its accumulated garbage) wholesale. It is the
// degradation-triggered full-recompile path.
func (h *Handle) Swap(e *Engine) *Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.cur.Load()
	s := &Snapshot{eng: e, epoch: old.epoch + 1}
	h.cur.Store(s)
	return s
}
