package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flowcache"
	"repro/internal/rule"
	"repro/internal/telemetry"
)

// Snapshot is one published epoch of the flat image: an immutable Engine
// plus the epoch counter it was installed at. Readers that capture a
// Snapshot classify against a consistent structure for as long as they
// hold it, regardless of concurrent updates.
type Snapshot struct {
	eng   *Engine
	epoch uint64
}

// Engine returns the snapshot's immutable engine.
func (s *Snapshot) Engine() *Engine { return s.eng }

// Epoch returns the snapshot's version: 0 for the engine a Handle was
// created with, incremented by every Apply, ApplyBatch or Swap.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Handle is the epoch-versioned publication point between one updater
// and many readers, the software twin of the paper's §4 split between
// the classifying accelerator and the control-plane processor that
// updates the off-chip copy.
//
// Readers call Current (a single atomic pointer load — no locks, no
// reference counting) and classify on the returned snapshot; they
// observe updates whenever they next call Current. The updater applies
// tree deltas with Apply (or a whole burst with ApplyBatch), which
// patches the newest snapshot and installs the result as the next epoch;
// Swap installs a freshly compiled engine when patch garbage or tree
// degradation warrants a full rebuild. Apply, ApplyBatch and Swap
// serialize on an internal mutex, so the handle is safe for concurrent
// use from any number of goroutines on both sides.
//
// EnableCache attaches a sharded flow cache in front of the snapshot
// chain; the ...Cached classification methods then serve repeated flows
// from one hash probe, using the epoch as the invalidation signal (see
// package flowcache). Without a cache they are exactly the uncached
// paths, so callers can use them unconditionally.
type Handle struct {
	cur   atomic.Pointer[Snapshot]
	mu    sync.Mutex // serializes updaters (Apply/ApplyBatch/Swap)
	cache atomic.Pointer[flowcache.Cache]
	tel   atomic.Pointer[telemetry.Recorder]
}

// SetTelemetry attaches a telemetry recorder: classification paths count
// packets/batches and observe per-batch latency into it, and updaters
// record epoch-publish metrics and flight-recorder events. Attaching is
// safe at any time (readers observe it on their next call); nil
// detaches. The instrumentation is shaped for the hot path — one atomic
// add and two monotonic clock reads per batch, nothing per packet — so
// classification stays zero-alloc and within ~2% of its uninstrumented
// rate (pinned by BenchmarkTelemetryOverhead and the CI gate).
func (h *Handle) SetTelemetry(r *telemetry.Recorder) { h.tel.Store(r) }

// Telemetry returns the attached recorder, or nil.
func (h *Handle) Telemetry() *telemetry.Recorder { return h.tel.Load() }

// NewHandle publishes e as epoch 0.
func NewHandle(e *Engine) *Handle {
	h := &Handle{}
	h.cur.Store(&Snapshot{eng: e})
	return h
}

// Current returns the newest published snapshot. It is lock-free and
// safe to call from any goroutine at any time.
func (h *Handle) Current() *Snapshot { return h.cur.Load() }

// EnableCache attaches a fresh flow cache with at least entries slots
// (entries <= 0 selects flowcache.DefaultEntries) and returns it. Safe at
// any time, including with readers in flight — they observe the cache on
// their next call. Cached entries are stamped with snapshot epochs, so no
// flush is ever needed around updates.
func (h *Handle) EnableCache(entries int) *flowcache.Cache {
	c := flowcache.New(entries)
	h.cache.Store(c)
	return c
}

// Cache returns the attached flow cache, or nil when caching is disabled.
func (h *Handle) Cache() *flowcache.Cache { return h.cache.Load() }

// ClassifyCached returns the highest-priority matching rule ID for p, or
// -1, consulting the flow cache first. The answer is always packet-exact
// for the epoch it was served at: a hit requires the entry's stamp to
// equal the snapshot's epoch, and any update bumps the epoch, so entries
// that could have been invalidated never hit — they fall through to the
// tree walk and repopulate.
//
//repro:hotpath
func (h *Handle) ClassifyCached(p rule.Packet) int {
	s := h.cur.Load()
	c := h.cache.Load()
	// Sampled latency: every classifySampleEvery-th single classify is
	// timed. The untimed calls pay one atomic add.
	if tel := h.tel.Load(); tel != nil {
		if tel.Singles.Next()&(classifySampleEvery-1) == 0 {
			//repro:allow hotpath -- documented sampled site: one clock read per classifySampleEvery packets
			start := time.Now()
			rid := classifyCachedOne(s, c, p)
			//repro:allow hotpath -- documented sampled site: paired clock read for the sampled latency observe
			tel.ClassifyNs.Observe(int64(time.Since(start)))
			return rid
		}
	}
	return classifyCachedOne(s, c, p)
}

// classifySampleEvery is the single-packet latency sampling period
// (power of two).
const classifySampleEvery = 64

func classifyCachedOne(s *Snapshot, c *flowcache.Cache, p rule.Packet) int {
	if c == nil {
		return s.eng.Classify(p)
	}
	if rid, ok := c.Lookup(p, s.epoch); ok {
		return int(rid)
	}
	rid := s.eng.Classify(p)
	c.Insert(p, s.epoch, int32(rid))
	return rid
}

// ClassifyBatchCached classifies pkts[i] into out[i] through the flow
// cache, capturing one snapshot for the whole batch (updates land between
// batches, never mid-batch). It allocates nothing; out must be at least
// as long as pkts.
//
//repro:hotpath
func (h *Handle) ClassifyBatchCached(pkts []rule.Packet, out []int32) {
	s := h.cur.Load()
	c := h.cache.Load()
	tel := h.tel.Load()
	if tel == nil {
		if c == nil {
			s.eng.ClassifyBatch(pkts, out)
			return
		}
		classifyCachedRange(s, c, pkts, out)
		return
	}
	// Telemetry cost is per batch, never per packet: two monotonic
	// clock reads, one histogram observe, two atomic adds.
	//repro:allow hotpath -- documented per-batch site: one clock read per batch, not per packet
	start := time.Now()
	if c == nil {
		s.eng.ClassifyBatch(pkts, out)
	} else {
		classifyCachedRange(s, c, pkts, out)
	}
	//repro:allow hotpath -- documented per-batch site: paired clock read for the batch latency observe
	tel.ClassifyNs.Observe(int64(time.Since(start)))
	tel.Packets.Add(uint64(len(pkts)))
	tel.Batches.Inc()
}

func classifyCachedRange(s *Snapshot, c *flowcache.Cache, pkts []rule.Packet, out []int32) {
	hits := uint64(c.ProbeBatch(pkts, s.epoch, out))
	misses := uint64(len(pkts)) - hits
	if misses != 0 {
		for i := range pkts {
			if out[i] != flowcache.NoEntry {
				continue
			}
			// Re-probe before walking: an earlier miss in this pass may
			// have repopulated the flow (packet trains put the same
			// 5-tuple in one batch many times), and right after an epoch
			// bump that is the difference between one tree walk per
			// train and one per packet.
			if rid, ok := c.Probe(pkts[i], s.epoch); ok {
				out[i] = rid
				hits++
				misses--
				continue
			}
			rid := int32(s.eng.Classify(pkts[i]))
			c.Insert(pkts[i], s.epoch, rid)
			out[i] = rid
		}
	}
	// One counter flush per batch keeps the hit path free of
	// read-modify-writes.
	c.NoteLookups(hits, misses)
}

// ParallelClassifyCached shards the batch across up to workers goroutines
// (workers <= 0 selects GOMAXPROCS), all classifying through the shared
// sharded flow cache against one snapshot. Aside from the per-call
// goroutine fan-out it allocates nothing.
func (h *Handle) ParallelClassifyCached(pkts []rule.Packet, out []int32, workers int) {
	s := h.cur.Load()
	c := h.cache.Load()
	if tel := h.tel.Load(); tel != nil {
		start := time.Now()
		parallelClassifyCached(s, c, pkts, out, workers)
		tel.ClassifyNs.Observe(int64(time.Since(start)))
		tel.Packets.Add(uint64(len(pkts)))
		tel.Batches.Inc()
		return
	}
	parallelClassifyCached(s, c, pkts, out, workers)
}

func parallelClassifyCached(s *Snapshot, c *flowcache.Cache, pkts []rule.Packet, out []int32, workers int) {
	if c == nil {
		s.eng.ParallelClassify(pkts, out, workers)
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkts) {
		workers = len(pkts)
	}
	if workers <= 1 {
		classifyCachedRange(s, c, pkts, out)
		return
	}
	_ = out[:len(pkts)]
	chunk := (len(pkts) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(pkts); start += chunk {
		end := min(start+chunk, len(pkts))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			classifyCachedRange(s, c, pkts[lo:hi], out[lo:hi])
		}(start, end)
	}
	wg.Wait()
}

// Apply patches the newest snapshot with d and publishes the result as
// the next epoch. Readers keep classifying on their captured snapshots
// throughout; there is no quiescence period and no stall.
func (h *Handle) Apply(d *core.Delta) (*Snapshot, error) {
	return h.ApplyBatch([]*core.Delta{d})
}

// ApplyBatch coalesces a burst of consecutive deltas into one
// copy-on-write patch (engine.PatchBatch) and one epoch swap. Use it for
// control-plane update storms: N inserts cost one snapshot publication
// instead of N, so attached flow caches see one invalidation epoch per
// burst rather than thrashing once per rule. An empty batch returns the
// current snapshot unchanged.
func (h *Handle) ApplyBatch(ds []*core.Delta) (*Snapshot, error) {
	if len(ds) == 0 {
		return h.cur.Load(), nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	tel := h.tel.Load()
	var start time.Time
	if tel != nil {
		start = time.Now()
	}
	old := h.cur.Load()
	ne, err := old.eng.PatchBatch(ds)
	if err != nil {
		if tel != nil {
			tel.PatchFails.Inc()
			tel.Events.Record(telemetry.EvPatchFail, old.epoch, int64(len(ds)), 0, 0)
		}
		return nil, err
	}
	s := &Snapshot{eng: ne, epoch: old.epoch + 1}
	h.cur.Store(s)
	if tel != nil {
		ns := int64(time.Since(start))
		tel.Deltas.Add(uint64(len(ds)))
		tel.PatchNs.Observe(ns)
		g := int64(ne.GarbageRatio() * 1e6)
		tel.Events.Record(telemetry.EvPatchBatch, s.epoch, int64(len(ds)), ns, g)
		h.notePublish(tel, s, 0, ns, g)
	}
	return s, nil
}

// notePublish records the epoch-publish metrics and events common to
// patch publishes (kind 0) and swaps (kind 1): the epoch/garbage gauges,
// the publish timestamp (the base of the snapshot-age gauge), the
// publish event, and — when a flow cache is attached — the invalidation
// wave the epoch bump starts.
func (h *Handle) notePublish(tel *telemetry.Recorder, s *Snapshot, kind, ns, garbagePPM int64) {
	tel.Epochs.Inc()
	tel.Epoch.Set(int64(s.epoch))
	tel.GarbagePPM.Set(garbagePPM)
	tel.LastPublishNs.Set(tel.NowNanos())
	tel.Events.Record(telemetry.EvEpochPublish, s.epoch, kind, ns, garbagePPM)
	if c := h.cache.Load(); c != nil {
		occ := int64(c.Stats().Occupied)
		tel.CacheInv.Inc()
		tel.CacheOccupied.Set(occ)
		tel.Events.Record(telemetry.EvCacheInvalidate, s.epoch, occ, 0, 0)
	}
}

// Swap publishes a freshly compiled engine as the next epoch, replacing
// the patch chain (and its accumulated garbage) wholesale. It is the
// degradation-triggered full-recompile path.
func (h *Handle) Swap(e *Engine) *Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.cur.Load()
	s := &Snapshot{eng: e, epoch: old.epoch + 1}
	h.cur.Store(s)
	if tel := h.tel.Load(); tel != nil {
		h.notePublish(tel, s, 1, 0, int64(e.GarbageRatio()*1e6))
	}
	return s
}
