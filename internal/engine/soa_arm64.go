//go:build arm64 && !purego

package engine

// nativeKernelName names this architecture's SIMD scan kernel.
const nativeKernelName = "neon"

// detectNative reports whether the neon kernel can run. Advanced SIMD
// is architecturally mandatory on AArch64, so there is nothing to
// probe: every arm64 CPU Go targets has it.
func detectNative() bool { return true }

// scanWindowASM is the fused NEON window scan (soa_arm64.s): per block,
// 8 range comparators per round on two 4-lane vectors (VSUB/VUMIN/VCMEQ
// — the same unsigned-wraparound check rangeBit makes), packed into a
// uint64 mask via per-lane bit constants + VADDV and held in a register
// across the selectivity-ordered dimension sweeps, early-outing when it
// collapses. Returns the first matching slot offset or -1; see scanArgs
// for the contract.
//
//go:noescape
func scanWindowASM(a *scanArgs) int32
