package engine

import (
	"os"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
	"repro/internal/telemetry"
)

// Telemetry-overhead accountability: the instrumented batch classify path
// must stay zero-alloc and within ~2% of the uninstrumented rate. The
// benchmark lands off/on rows in BENCH_<date>.json (scripts/bench.sh
// synthesizes a telemetry_overhead row from them); the ZeroAllocs test
// rides the CI alloc gate; the Budget test is the CI throughput gate.

func telemetryBenchSetup(b testing.TB) (*Handle, []rule.Packet, []int32) {
	rs := classbench.Generate(classbench.ACL1(), 2000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, 4096, 2009)
	return NewHandle(Compile(tree)), trace, make([]int32, len(trace))
}

// BenchmarkTelemetryOverhead measures ClassifyBatchCached with and
// without a telemetry recorder attached. The two rows must agree to ~2%:
// the on path adds two monotonic clock reads, one histogram observe and
// two atomic adds per 4096-packet batch, nothing per packet.
func BenchmarkTelemetryOverhead(b *testing.B) {
	h, trace, out := telemetryBenchSetup(b)
	for _, tc := range []struct {
		name string
		tel  *telemetry.Recorder
	}{{"off", nil}, {"on", telemetry.New()}} {
		b.Run(tc.name, func(b *testing.B) {
			h.SetTelemetry(tc.tel)
			defer h.SetTelemetry(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ClassifyBatchCached(trace, out)
			}
			b.ReportMetric(float64(b.N)*float64(len(trace))/b.Elapsed().Seconds(), "pps")
		})
	}
}

// TestTelemetryZeroAllocs pins the instrumented hot paths at zero
// allocations per op — the same bar the uninstrumented paths meet, now
// with a recorder attached (and, for the cached variant, a flow cache in
// front). Runs under the CI alloc gate (-run 'ZeroAllocs').
func TestTelemetryZeroAllocs(t *testing.T) {
	h, trace, out := telemetryBenchSetup(t)
	h.SetTelemetry(telemetry.New())
	if avg := testing.AllocsPerRun(50, func() {
		h.ClassifyBatchCached(trace, out)
	}); avg != 0 {
		t.Errorf("instrumented ClassifyBatchCached: %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		h.ClassifyCached(trace[0])
	}); avg != 0 {
		t.Errorf("instrumented ClassifyCached: %.2f allocs/op, want 0", avg)
	}
	h.EnableCache(8192)
	h.ClassifyBatchCached(trace, out) // populate
	if avg := testing.AllocsPerRun(50, func() {
		h.ClassifyBatchCached(trace, out)
	}); avg != 0 {
		t.Errorf("instrumented cached ClassifyBatchCached: %.2f allocs/op, want 0", avg)
	}
}

// TestTelemetryOverheadBudget is the CI throughput gate for the ~2%
// overhead budget: best-of-k measured rates for the instrumented and
// uninstrumented batch path must agree within the budget (best-of damps
// shared-runner noise; the paths do identical classification work).
// Opt-in via REPRO_TELEMETRY_GATE=1 — a timing assertion has no place in
// the default -race/short test matrix.
func TestTelemetryOverheadBudget(t *testing.T) {
	if os.Getenv("REPRO_TELEMETRY_GATE") == "" {
		t.Skip("set REPRO_TELEMETRY_GATE=1 to run the timing gate")
	}
	h, trace, out := telemetryBenchSetup(t)
	best := func(tel *telemetry.Recorder) float64 {
		h.SetTelemetry(tel)
		defer h.SetTelemetry(nil)
		h.ClassifyBatchCached(trace, out) // warm
		bestPPS := 0.0
		for rep := 0; rep < 7; rep++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					h.ClassifyBatchCached(trace, out)
				}
			})
			pps := float64(res.N) * float64(len(trace)) / res.T.Seconds()
			if pps > bestPPS {
				bestPPS = pps
			}
		}
		return bestPPS
	}
	off := best(nil)
	on := best(telemetry.New())
	ratio := on / off
	t.Logf("telemetry overhead: off=%.0f pps on=%.0f pps ratio=%.4f", off, on, ratio)
	if ratio < 0.98 {
		t.Errorf("instrumented throughput %.1f%% of uninstrumented, want >= 98%%", 100*ratio)
	}
}
