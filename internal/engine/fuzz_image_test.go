package engine

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/rule"
)

// fuzzProbePackets cover the corners and a few interior points of the
// field space — enough to push a bogus-but-accepted engine through its
// walk and both leaf-scan kernels.
var fuzzProbePackets = []rule.Packet{
	{},
	{SrcIP: ^uint32(0), DstIP: ^uint32(0), SrcPort: 0xFFFF, DstPort: 0xFFFF, Proto: 0xFF},
	{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6},
	{SrcIP: 0x80000000, DstIP: 0x7FFFFFFF, SrcPort: 53, DstPort: 53, Proto: 17},
	{SrcIP: 0xDEADBEEF, DstIP: 0x01020304, SrcPort: 0x8000, DstPort: 1, Proto: 1},
}

// fuzzSeedImage builds a tiny deterministic engine image for the fuzz
// seed corpus (small enough that the fuzzer can mutate it usefully).
func fuzzSeedImage(f *testing.F, algo core.Algorithm, n int, seed int64) []byte {
	f.Helper()
	rs := classbench.Generate(classbench.ACL1(), n, seed)
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Compile(tree).Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzImageRestore drives arbitrary bytes through the whole restore
// stack — container parsing, checksum verification, and engine-level
// invariant validation — and pins the fail-closed contract: any input
// either restores to a self-consistent engine or returns a typed
// *image.FormatError. No input may panic, hang the walk, or produce an
// engine whose image round-trip disagrees with itself (a silently-wrong
// restore).
func FuzzImageRestore(f *testing.F) {
	img := fuzzSeedImage(f, core.HyperCuts, 40, 3)
	f.Add(img)
	f.Add(fuzzSeedImage(f, core.HiCuts, 25, 4))
	flipped := bytes.Clone(img)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add(img[:len(img)/3])
	f.Add([]byte{})
	f.Add([]byte(image.Magic))
	f.Add([]byte("PCEI\x01\x00\x00\x00\x18\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // empty image
	f.Add([]byte("PCEI\x02\x00\x00\x00\x18\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // future version
	f.Add(bytes.Repeat([]byte{0xFF}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := RestoreEngineBytes(bytes.Clone(data))
		// The io.Reader path must agree with the in-memory path on
		// accept/reject (the bytes path additionally rejects nothing:
		// ReadBytes sees exactly one image, like a read-out file).
		eR, errR := RestoreEngine(bytes.NewReader(data))
		if (err == nil) != (errR == nil) {
			t.Fatalf("RestoreEngineBytes err=%v but RestoreEngine err=%v", err, errR)
		}
		if err != nil {
			var fe *image.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("restore error %T (%v) is not a *image.FormatError", err, err)
			}
			if e != nil {
				t.Fatal("engine returned alongside error")
			}
			return
		}
		// Accepted: the engine must be serviceable and self-consistent.
		// Classify across the field space exercises walk termination and
		// every validated bound; the round-trip pins that what was
		// decoded re-encodes to an image that restores to the same
		// layout.
		for _, p := range fuzzProbePackets {
			if got := e.Classify(p); got != e.ClassifyAoS(p) {
				t.Fatalf("restored engine: SoA and AoS scan disagree on %+v", p)
			}
		}
		var buf bytes.Buffer
		if _, err := e.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot of restored engine: %v", err)
		}
		again, err := RestoreEngineBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("round-trip of restored engine failed: %v", err)
		}
		if !e.LayoutEqual(again) {
			t.Fatal("round-trip changed the restored engine's layout")
		}
		_ = eR
	})
}
