package engine

import (
	"fmt"
	"log"
	"os"
	"unsafe"

	"repro/internal/rule"
)

// Kernel dispatch for the leaf-scan comparator bank (DESIGN.md §10).
//
// Three kernels implement the same window scan over the SoA arenas:
//
//   - portable: the pure-Go blocked sweep of soa.go (candidates prefilter
//     + verify on Engine, the 5-sweep mask kernel scan() as its oracle) —
//     always compiled, the only kernel under the purego build tag, and
//     the bit-for-bit differential reference for the others;
//   - avx2 (amd64): a hand-written fused kernel (soa_amd64.s) that fires
//     8 range comparators per VPCMPEQD round, keeps the block mask in a
//     register across the selectivity-ordered dimension sweeps, and
//     early-outs the moment it collapses to zero;
//   - neon (arm64): the 4-lane twin (soa_arm64.s), 8 slots per round on
//     two vectors.
//
// Selection is one-time: a CPU-feature probe (soa_*.go detectNative)
// picks the best kernel at init, overridable by the REPRO_SCAN_KERNEL
// environment variable ("portable", "native", or an arch name) and by
// SetDefaultKernel (repro.Config.ScanKernel goes through it). Engines
// are stamped with the kernel at Compile and keep it through Patch, so
// a published snapshot never changes kernels mid-flight; WithKernel
// derives a re-stamped view sharing every arena, the A/B surface the
// benchmarks and differential tests use.

// ScanKernelEnv names the environment variable that overrides the
// default scan kernel at process start.
const ScanKernelEnv = "REPRO_SCAN_KERNEL"

// KernelPortable names the pure-Go scan kernel (always available).
const KernelPortable = "portable"

// kern values: the dispatch tag stamped into Engine/RangeEngine.
const (
	kernPortable uint8 = iota
	kernNative
)

// nativeKernelOK records the one-time CPU-feature probe; defaultKern is
// the kernel Compile stamps into new engines. Both are set at init and
// changed only by SetDefaultKernel — never while classification runs.
// kernelFallback records why an env override was NOT honored ("" when it
// was, or no override was set): an unsatisfiable override (unknown name,
// or a native kernel this CPU lacks) falls back to the probed default —
// a trace replayed on a weaker machine should degrade, not crash — but
// the degrade must be observable, so it is logged once here and surfaced
// via KernelFallback for the facade to count and trace.
var (
	nativeKernelOK              = detectNative()
	defaultKern, kernelFallback = resolveKern(os.Getenv(ScanKernelEnv))
	_                           = func() struct{} {
		if kernelFallback != "" {
			log.Printf("engine: %s", kernelFallback)
		}
		return struct{}{}
	}()
)

// resolveKern picks the process-default scan kernel: the probed best,
// unless the env override names a satisfiable kernel. When the override
// cannot be honored the second return value describes the degrade.
func resolveKern(env string) (uint8, string) {
	k := kernPortable
	if nativeKernelOK {
		k = kernNative
	}
	if env == "" {
		return k, ""
	}
	ek, err := kernFromName(env)
	if err != nil {
		return k, fmt.Sprintf("%s=%q not satisfiable (%v); falling back to %q", ScanKernelEnv, env, err, kernName(k))
	}
	return ek, ""
}

// KernelFallback reports why the REPRO_SCAN_KERNEL override was ignored
// at process start, or "" when it was honored (or unset). The facade
// turns a non-empty value into a telemetry counter and flight-recorder
// event so the silent-continue semantics stay observable.
func KernelFallback() string { return kernelFallback }

// kernFromName resolves a kernel name to a dispatch tag. "native"
// selects the architecture's SIMD kernel when the CPU supports it.
func kernFromName(name string) (uint8, error) {
	switch name {
	case KernelPortable, "purego":
		return kernPortable, nil
	case "native", nativeKernelName:
		if name == "native" && nativeKernelName == "" {
			return 0, fmt.Errorf("engine: no native scan kernel on this architecture/build")
		}
		if !nativeKernelOK {
			return 0, fmt.Errorf("engine: scan kernel %q not supported by this CPU", nativeKernelName)
		}
		return kernNative, nil
	}
	return 0, fmt.Errorf("engine: unknown scan kernel %q (want %q or %q)", name, KernelPortable, "native")
}

func kernName(k uint8) string {
	if k == kernNative {
		return nativeKernelName
	}
	return KernelPortable
}

// Kernels returns the scan kernels available on this CPU and build,
// portable first. The benchmarks iterate it to land one row per kernel.
func Kernels() []string {
	ks := []string{KernelPortable}
	if nativeKernelOK {
		ks = append(ks, nativeKernelName)
	}
	return ks
}

// DefaultKernel returns the kernel Compile currently stamps into new
// engines.
func DefaultKernel() string { return kernName(defaultKern) }

// SetDefaultKernel selects the scan kernel for subsequent Compiles
// (process-wide; existing engines keep their stamp). It accepts
// "portable", "native", or the architecture kernel name, and fails if
// the CPU or build cannot satisfy the request. Not safe to call
// concurrently with Compile.
func SetDefaultKernel(name string) error {
	k, err := kernFromName(name)
	if err != nil {
		return err
	}
	defaultKern = k
	return nil
}

// Kernel reports the scan kernel this engine snapshot is stamped with.
func (e *Engine) Kernel() string { return kernName(e.kern) }

// WithKernel returns a view of e re-stamped to scan with the named
// kernel. The view shares every arena with e (engines are immutable), so
// it is an O(1) A/B switch: the differential tests and per-kernel
// benchmark rows run the same image through both kernels.
func (e *Engine) WithKernel(name string) (*Engine, error) {
	k, err := kernFromName(name)
	if err != nil {
		return nil, err
	}
	ne := *e
	ne.kern = k
	return &ne, nil
}

// Kernel reports the scan kernel this baseline rendering is stamped with.
func (e *RangeEngine) Kernel() string { return kernName(e.kern) }

// WithKernel returns a re-stamped view sharing every arena; see
// Engine.WithKernel.
func (e *RangeEngine) WithKernel(name string) (*RangeEngine, error) {
	k, err := kernFromName(name)
	if err != nil {
		return nil, err
	}
	ne := *e
	ne.kern = k
	return &ne, nil
}

// scanArgs is the argument block of the fused SIMD window kernels
// (scanWindowASM). The Go wrapper resolves the sweep order once per
// window: lo[i]/hi[i] point at the window's first slot in the i-th most
// selective dimension's arena, f[i] is the packet field of that
// dimension, n is the window length in slots (>= 1).
//
// The assembly hard-codes the field offsets; the constants below pin
// the layout at compile time. rule.NumDims changing would move them —
// the asserts fail the build rather than silently corrupting the scan.
type scanArgs struct {
	lo [rule.NumDims]*uint32
	hi [rule.NumDims]*uint32
	f  [rule.NumDims]uint32
	n  int32
}

// Compile-time layout asserts (both directions, so any drift from the
// offsets the .s files use breaks the build).
const (
	_ = unsafe.Offsetof(scanArgs{}.hi) - 40
	_ = 40 - unsafe.Offsetof(scanArgs{}.hi)
	_ = unsafe.Offsetof(scanArgs{}.f) - 80
	_ = 80 - unsafe.Offsetof(scanArgs{}.f)
	_ = unsafe.Offsetof(scanArgs{}.n) - 100
	_ = 100 - unsafe.Offsetof(scanArgs{}.n)
)

// scanSIMD returns the offset within the window [off, off+n) of the
// first slot whose bounds contain the packet fields, or -1, via the
// native fused kernel. n must be >= 1; callers guarantee the arenas
// carry soaPadSlots of over-read slack past their length (pad()), which
// is what lets the kernels round block sweeps up to full vector lanes
// instead of peeling tails.
//
//repro:unsafe-shape packs the kernel argument block from pre-resolved arena base pointers
//repro:hotpath
func (b *soaBank) scanSIMD(off, n int32, f *[rule.NumDims]uint32) int32 {
	var a scanArgs
	o := uintptr(off) * 4
	for i := 0; i < rule.NumDims; i++ {
		// pLo/pHi are the order-permuted arena base pointers, resolved
		// once per publish by pad(): a window scan is five pointer adds,
		// not ten bounds-checked slice indexings. off < len ≤ cap keeps
		// the arithmetic inside the backing arrays.
		//repro:allow unsafealias -- alignment inherited from the arena base; the offset is slot*4, a multiple of the element size
		a.lo[i] = (*uint32)(unsafe.Add(unsafe.Pointer(b.pLo[i]), o))
		//repro:allow unsafealias -- alignment inherited from the arena base; the offset is slot*4, a multiple of the element size
		a.hi[i] = (*uint32)(unsafe.Add(unsafe.Pointer(b.pHi[i]), o))
		a.f[i] = f[b.order[i]]
	}
	a.n = n
	return scanWindowASM(&a)
}
