//go:build !purego

#include "textflag.h"

// Fused NEON window scan over the SoA comparator-bank arenas: the arm64
// twin of soa_amd64.s, 8 range comparators per round on two 4-lane
// vectors. See scanArgs (soa_dispatch.go) for the argument block layout
// the offsets below hard-code, and the amd64 file for the algorithm
// commentary (blocks, selectivity-ordered sweeps, early-out, over-read
// padding contract) — the structure here is identical.
//
// The unsigned range check is VUMIN+VCMEQ (lane matches iff
// min_u(v-lo, hi-lo) == v-lo); the Go 1.24 assembler has no VCMHS.
// Movemask has no single instruction either: each compare result is
// ANDed with per-lane bit constants ({1,2,4,8} low vector,
// {16,32,64,128} high vector), ORed together, and VADDV-summed — lanes
// carry disjoint bits, so the sum IS the 8-bit mask.
//
// Register plan:
//   R0  args    R1 n       R2 base     R3 width    R4 blockmask
//   R5  m       R6 sweep mask          R7 scratch/movemask/result
//   R8  lo ptr  R9 hi ptr  R10 bit position        R11 bl
//   R12 dim index           R13/R14 sweep cursors & address scratch
//   V0  broadcast field     V1-V10 lanes
//   V29 {1,2,4,8}           V30 {16,32,64,128}

DATA scanBits<>+0(SB)/4, $1
DATA scanBits<>+4(SB)/4, $2
DATA scanBits<>+8(SB)/4, $4
DATA scanBits<>+12(SB)/4, $8
DATA scanBits<>+16(SB)/4, $16
DATA scanBits<>+20(SB)/4, $32
DATA scanBits<>+24(SB)/4, $64
DATA scanBits<>+28(SB)/4, $128
GLOBL scanBits<>(SB), RODATA|NOPTR, $32

// SWEEP(label): mask of the current dimension over the current block.
// In: R8/R9 dimension arena pointers (at block base), V0 broadcast
// field, R11 block length. Out: R6. Clobbers R7, R10, R13, R14, V1-V10.
#define SWEEP(label)                          \
	MOVD   $0, R6                         \
	MOVD   $0, R10                        \
	MOVD   R8, R13                        \
	MOVD   R9, R14                        \
label:                                        \
	VLD1.P 32(R13), [V1.S4, V2.S4]        \ // lo[j..j+7]
	VLD1.P 32(R14), [V3.S4, V4.S4]        \ // hi[j..j+7]
	VSUB   V1.S4, V0.S4, V5.S4            \ // v - lo
	VSUB   V2.S4, V0.S4, V6.S4            \
	VSUB   V1.S4, V3.S4, V7.S4            \ // hi - lo
	VSUB   V2.S4, V4.S4, V8.S4            \
	VUMIN  V5.S4, V7.S4, V9.S4            \
	VUMIN  V6.S4, V8.S4, V10.S4           \
	VCMEQ  V5.S4, V9.S4, V9.S4            \ // all-ones where v-lo <= hi-lo
	VCMEQ  V6.S4, V10.S4, V10.S4          \
	VAND   V29.B16, V9.B16, V9.B16        \
	VAND   V30.B16, V10.B16, V10.B16      \
	VORR   V10.B16, V9.B16, V9.B16        \
	VADDV  V9.S4, V9                      \ // disjoint bits: sum == or
	VMOV   V9.S[0], R7                    \
	LSL    R10, R7, R7                    \
	ORR    R7, R6, R6                     \
	ADD    $8, R10, R10                   \
	CMP    R11, R10                       \
	BLT    label

// func scanWindowASM(a *scanArgs) int32
TEXT ·scanWindowASM(SB), NOSPLIT, $0-12
	MOVD a+0(FP), R0
	MOVW 100(R0), R1             // n
	MOVD $0, R2                  // base = 0
	MOVD $16, R3                 // width = scanBlockLen
	MOVD $scanBits<>(SB), R13
	VLD1 (R13), [V29.S4, V30.S4]

block:
	SUBS R2, R1, R11             // rem = n - base
	BLE  miss
	CMP  R3, R11
	BLE  lenok
	MOVD R3, R11                 // bl = min(rem, width)
lenok:
	MOVD $-1, R4                 // blockmask = (1<<bl)-1; bl==64 keeps ~0
	CMP  $64, R11                // (register LSL wraps at 64)
	BEQ  dim0
	MOVD $1, R4
	LSL  R11, R4, R4
	SUB  $1, R4, R4

dim0:
	// Most selective dimension: its mask (cut to the block) seeds m.
	MOVD  (R0), R8               // lo[0]
	MOVD  40(R0), R9             // hi[0]
	ADD   R2<<2, R8, R8
	ADD   R2<<2, R9, R9
	MOVWU 80(R0), R7             // f[0]
	VDUP  R7, V0.S4
	SWEEP(sweep0)
	ANDS R4, R6, R5
	BEQ  nextblock

	MOVD $1, R12
dimloop:
	ADD   R12<<3, R0, R13
	MOVD  (R13), R8              // lo[dim]
	MOVD  40(R13), R9            // hi[dim]
	ADD   R2<<2, R8, R8
	ADD   R2<<2, R9, R9
	ADD   R12<<2, R0, R13
	MOVWU 80(R13), R7            // f[dim]
	VDUP  R7, V0.S4
	SWEEP(sweepn)
	ANDS R6, R5, R5
	BEQ  nextblock               // mask collapsed: no match in this block
	ADD  $1, R12, R12
	CMP  $5, R12                 // rule.NumDims
	BLT  dimloop

	// Survivors match all five dimensions: lowest bit = first slot in
	// priority order.
	RBIT R5, R7
	CLZ  R7, R7
	ADD  R2, R7, R7
	MOVW R7, ret+8(FP)
	RET

nextblock:
	ADD  R11, R2, R2             // base += bl
	MOVD $64, R3                 // width = scanTailLen
	B    block

miss:
	MOVD $-1, R7
	MOVW R7, ret+8(FP)
	RET
