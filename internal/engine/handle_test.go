package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// TestHandleConcurrentReadersDuringPatch runs lock-free readers against
// the snapshot handle while an updater streams Insert/Delete deltas
// through Apply and periodically Swaps in a full recompile. Under
// `go test -race` this pins the epoch swap and the copy-on-write arenas
// as data-race free; the assertions pin snapshot consistency (every
// result valid for the epoch it was read from).
func TestHandleConcurrentReadersDuringPatch(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 31)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	trace := classbench.GenerateTrace(rs, 512, 32)
	pool := classbench.Generate(classbench.IPC1(), 64, 33)

	var stop atomic.Bool
	var readerErr atomic.Value
	var wg sync.WaitGroup
	const readers = 4
	finalRules := len(rs) + len(pool)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int32, len(trace))
			for !stop.Load() {
				s := h.Current()
				s.Engine().ClassifyBatch(trace, out)
				for i, id := range out {
					// Rule IDs never exceed the final ruleset size at
					// any epoch; a wild value means a torn image.
					if id < -1 || int(id) >= finalRules {
						readerErr.Store(
							// Stored as error via fmt at check time.
							struct {
								epoch uint64
								pkt   int
								id    int32
							}{s.Epoch(), i, id})
						return
					}
				}
			}
		}()
	}

	// Updater: insert the whole pool, deleting every third rule, with a
	// full recompile swap partway through.
	nextID := len(rs)
	for i := range pool {
		r := pool[i]
		r.ID = nextID
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		nextID++
		if _, err := h.Apply(d); err != nil {
			t.Fatalf("apply insert %d: %v", i, err)
		}
		if i%3 == 2 {
			d, err := tree.DeleteDelta(i)
			if err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			if _, err := h.Apply(d); err != nil {
				t.Fatalf("apply delete %d: %v", i, err)
			}
		}
		if i == len(pool)/2 {
			tree.Relayout()
			h.Swap(Compile(tree))
		}
	}
	stop.Store(true)
	wg.Wait()
	if v := readerErr.Load(); v != nil {
		t.Fatalf("reader observed inconsistent snapshot: %+v", v)
	}

	// After the churn, the final snapshot must equal a fresh recompile.
	tree.Relayout()
	fresh := Compile(tree)
	final := h.Current().Engine()
	for i, p := range trace {
		if got, want := final.Classify(p), fresh.Classify(p); got != want {
			t.Fatalf("packet %d: final snapshot=%d fresh recompile=%d", i, got, want)
		}
	}
	if e := h.Current().Epoch(); e == 0 {
		t.Error("epoch never advanced")
	}
}
