//go:build purego || (!amd64 && !arm64)

package engine

// nativeKernelName is empty: this build carries only the portable
// kernel (either the purego tag forced it, or the architecture has no
// hand-written backend). kernFromName refuses "native" when this is
// empty, so kernNative is unreachable here.
const nativeKernelName = ""

// detectNative reports no native kernel for this build.
func detectNative() bool { return false }

// scanWindowASM is unreachable in portable-only builds; the stub keeps
// the dispatch layer architecture-independent.
func scanWindowASM(a *scanArgs) int32 {
	//repro:allow hotpath -- unreachable guard: kernFromName refuses "native" when nativeKernelName is empty
	panic("engine: native scan kernel not available in this build")
}
