package engine

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/rule"
)

// TestRangeEngineDifferential pins the flat baseline renderings to their
// pointer-walking sources packet-exact, across profiles and sizes
// (including tiny rulesets whose roots are leaves, and region-compacted
// HyperCuts trees with pushed rules).
func TestRangeEngineDifferential(t *testing.T) {
	profiles := map[string]func() classbench.Profile{
		"acl1": classbench.ACL1, "fw1": classbench.FW1, "ipc1": classbench.IPC1,
	}
	for name, prof := range profiles {
		for _, n := range []int{5, 120, 700} {
			rs := classbench.Generate(prof(), n, int64(n)+61)
			trace := classbench.GenerateTrace(rs, 2500, int64(n)+62)

			ht, err := hicuts.Build(rs, hicuts.DefaultConfig())
			if err != nil {
				t.Fatalf("%s n=%d: hicuts build: %v", name, n, err)
			}
			fh := CompileHiCuts(ht)
			for i, p := range trace {
				if got, want := fh.Classify(p), ht.Classify(p); got != want {
					t.Fatalf("%s n=%d packet %d: flat hicuts=%d tree=%d", name, n, i, got, want)
				}
			}

			yt, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
			if err != nil {
				t.Fatalf("%s n=%d: hypercuts build: %v", name, n, err)
			}
			fy := CompileHyperCuts(yt)
			for i, p := range trace {
				if got, want := fy.Classify(p), yt.Classify(p); got != want {
					t.Fatalf("%s n=%d packet %d: flat hypercuts=%d tree=%d", name, n, i, got, want)
				}
			}

			// Batch and sharded paths agree with the scalar path.
			out := make([]int32, len(trace))
			par := make([]int32, len(trace))
			fy.ClassifyBatch(trace, out)
			fy.ParallelClassify(trace, par, 4)
			for i := range trace {
				if out[i] != par[i] || int(out[i]) != fy.Classify(trace[i]) {
					t.Fatalf("%s n=%d packet %d: batch=%d parallel=%d", name, n, i, out[i], par[i])
				}
			}
		}
	}
}

// TestRangeEngineAdversarial hits the paths synthetic profiles rarely
// produce: packets outside compacted regions and rules beaten by pushed
// matches.
func TestRangeEngineAdversarial(t *testing.T) {
	// A ruleset whose bounding box leaves most of the space empty makes
	// region compaction bite: faraway packets exit early.
	var rs rule.RuleSet
	for i := 0; i < 40; i++ {
		r := rule.New(i, uint32(0x0A000000+i*7), 32, uint32(0x0B000000+i*13), 32,
			rule.Range{Lo: uint32(i), Hi: uint32(i + 2)}, rule.Range{Lo: 80, Hi: 80}, 6, false)
		rs = append(rs, r)
	}
	// Plus one broad rule that pushes up.
	rs = append(rs, rule.New(len(rs), 0x0A000000, 8, 0x0B000000, 8,
		rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true))
	yt, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fy := CompileHyperCuts(yt)
	probe := []rule.Packet{
		{SrcIP: 0xFFFFFFFF, DstIP: 0xFFFFFFFF, SrcPort: 1, DstPort: 1, Proto: 17}, // far outside
		{SrcIP: 0x0A000003, DstIP: 0x0B000027, SrcPort: 3, DstPort: 80, Proto: 6}, // exact rule
		{SrcIP: 0x0A000099, DstIP: 0x0B000099, SrcPort: 9, DstPort: 9, Proto: 6},  // broad only
	}
	probe = append(probe, classbench.GenerateTrace(rs, 2000, 63)...)
	for i, p := range probe {
		if got, want := fy.Classify(p), yt.Classify(p); got != want {
			t.Fatalf("packet %d: flat=%d tree=%d", i, got, want)
		}
	}
}
