//go:build amd64 && !purego

package engine

// nativeKernelName names this architecture's SIMD scan kernel.
const nativeKernelName = "avx2"

// detectNative probes CPUID for the avx2 kernel's requirements: AVX2
// itself, plus OSXSAVE and XMM/YMM state enabled in XCR0 (the OS must
// save the wide registers across context switches, or executing VEX
// code faults).
func detectNative() bool {
	maxLeaf, _, _, _ := cpuidASM(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidASM(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state
		return false
	}
	_, b7, _, _ := cpuidASM(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// scanWindowASM is the fused AVX2 window scan (soa_amd64.s): per block,
// 8 range comparators per round (VPSUBD/VPMINUD/VPCMPEQD, the same
// unsigned-wraparound check rangeBit makes), VMOVMSKPS-packed into a
// uint64 mask held in a register across the selectivity-ordered
// dimension sweeps, early-outing when it collapses. Returns the first
// matching slot offset or -1; see scanArgs for the contract.
//
//go:noescape
func scanWindowASM(a *scanArgs) int32

// cpuidASM executes CPUID with the given leaf/subleaf.
func cpuidASM(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)
