package engine

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// Tests for the chunked leaf table's copy-on-write: patches must share
// every chunk without edits (the dirty-range optimization), keep the
// garbage accounting exact across chunk copies and orphans, and reject
// out-of-order batches without corrupting the receiver.

// buildChunked returns a tree/engine pair whose leaf table spans several
// chunks (small Binth forces many leaves).
func buildChunked(t *testing.T) (*core.Tree, *Engine) {
	t.Helper()
	rs := classbench.Generate(classbench.ACL1(), 2000, 2008)
	cfg := core.DefaultConfig(core.HiCuts)
	cfg.Binth = 8
	tree, err := core.Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	if len(e.leaves) < 3 {
		t.Fatalf("want a multi-chunk leaf table for this test, got %d chunks (%d leaves)",
			len(e.leaves), e.numLeaves)
	}
	return tree, e
}

// sameChunk reports whether two engines share chunk ci's backing array.
func sameChunk(a, b *Engine, ci int) bool {
	return &a.leaves[ci][0] == &b.leaves[ci][0]
}

// TestPatchSharesUneditedChunks checks the chunk-granular copy: after a
// patch whose edits all land in one chunk, every other chunk — in
// particular the whole prefix before the delta's first dirty leaf — is
// shared pointer-for-pointer with the receiver snapshot.
func TestPatchSharesUneditedChunks(t *testing.T) {
	tree, e0 := buildChunked(t)
	r := classbench.Generate(classbench.FW1(), 1, 9)[0]
	r.ID = tree.NumRules()
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := e0.Patch(d)
	if err != nil {
		t.Fatal(err)
	}
	touched := map[int32]bool{}
	for _, le := range d.LeafEdits {
		touched[e0.leafSlot(le.Index)>>leafChunkBits] = true
	}
	// Appends may have grown the directory past e0's chunks.
	shared, copied := 0, 0
	for ci := range e0.leaves {
		if sameChunk(e0, e1, ci) {
			shared++
			if touched[int32(ci)] {
				t.Fatalf("chunk %d contains edits but is shared", ci)
			}
		} else {
			copied++
			if !touched[int32(ci)] {
				t.Fatalf("chunk %d has no edits but was copied", ci)
			}
		}
	}
	if copied > len(touched) {
		t.Fatalf("copied %d chunks for %d touched", copied, len(touched))
	}
	if shared == 0 {
		t.Fatal("no chunk sharing at all — dirty-range copy not working")
	}
	// The receiver must be untouched (old snapshot still consistent).
	if e0.numLeaves+countNew(d) != e1.numLeaves {
		t.Fatalf("receiver numLeaves=%d, patched=%d, delta appends %d",
			e0.numLeaves, e1.numLeaves, countNew(d))
	}
}

func countNew(d *core.Delta) int {
	n := 0
	for _, le := range d.LeafEdits {
		if le.New {
			n++
		}
	}
	return n
}

// TestGarbageAccountingAcrossChunks pins the orphan/dead-slot
// accounting around the chunked copies: a rewritten window's old slots
// and an orphaned leaf's slots are each counted exactly once, whether or
// not the chunk holding them was copied by the same batch (orphans never
// force a copy), and GarbageRatio reflects the total.
func TestGarbageAccountingAcrossChunks(t *testing.T) {
	tree, e0 := buildChunked(t)
	// A broad rule: overlaps many leaves, unsharing some (orphans) and
	// editing others in place.
	var wild rule.Rule
	wild.ID = tree.NumRules()
	for dim := 0; dim < rule.NumDims; dim++ {
		wild.F[dim] = rule.Range{Lo: 0, Hi: rule.MaxValue(dim)}
	}
	d, err := tree.InsertDelta(wild)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Orphaned) == 0 {
		t.Fatal("wildcard insert produced no orphans; test needs shared leaves")
	}
	wantDead := e0.deadRuleSlots
	for _, le := range d.LeafEdits {
		if !le.New {
			wantDead += int(e0.leafAt(e0.leafSlot(le.Index)).n)
		}
	}
	for _, oi := range d.Orphaned {
		wantDead += int(e0.leafAt(e0.leafSlot(oi)).n)
	}
	e1, err := e0.Patch(d)
	if err != nil {
		t.Fatal(err)
	}
	if e1.deadRuleSlots != wantDead {
		t.Fatalf("deadRuleSlots=%d, want %d (each window counted exactly once)", e1.deadRuleSlots, wantDead)
	}
	if e0.deadRuleSlots != 0 && e1.deadRuleSlots <= e0.deadRuleSlots {
		t.Fatal("garbage must only grow under patches")
	}
	if g := e1.GarbageRatio(); g <= 0 || g >= 1 {
		t.Fatalf("GarbageRatio=%v out of range", g)
	}
	// Applying the same delta twice in one batch must fail (the second
	// application appends leaves out of order) — and must not have been
	// partially visible in a fresh patch of e0.
	if _, err := e0.PatchBatch([]*core.Delta{d, d}); err == nil {
		t.Fatal("duplicate delta in one batch must error")
	}
}

// TestApplyBatchOutOfOrder is the regression test for out-of-order
// bursts under the dirty-range chunk copies: reversed deltas must be
// rejected, the published snapshot must stay on the pre-batch epoch, and
// a correctly ordered retry must succeed against the same handle.
func TestApplyBatchOutOfOrder(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 600, 17)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	pool := classbench.Generate(classbench.FW1(), 2, 19)
	var ds []*core.Delta
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
	}
	before := h.Current()
	if _, err := h.ApplyBatch([]*core.Delta{ds[1], ds[0]}); err == nil {
		t.Fatal("reversed delta batch must error")
	}
	if h.Current() != before {
		t.Fatal("failed batch must not publish a snapshot")
	}
	if _, err := h.ApplyBatch(ds); err != nil {
		t.Fatalf("ordered batch after failed one: %v", err)
	}
	if h.Current().Epoch() != before.Epoch()+1 {
		t.Fatalf("epoch=%d, want %d", h.Current().Epoch(), before.Epoch()+1)
	}
	// The batch-patched engine must agree with a fresh compile.
	trace := classbench.GenerateTrace(rs, 2000, 23)
	if err := VerifyPatched(trace, h.Current().Engine(), Compile(tree)); err != nil {
		t.Fatal(err)
	}
}
