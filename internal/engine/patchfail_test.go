package engine

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// Regression tests for mid-batch PatchBatch failure: PatchBatch shares
// the receiver's arena backing arrays and may have appended into their
// spare capacity (and even fully applied earlier deltas of the batch)
// by the time a later delta fails. The append-only protocol makes that
// harmless — every receiver offset points below the receiver's lengths
// — but the property is load-bearing enough (snapshot immutability
// under control-plane retries) that it gets pinned here explicitly:
// after a failed batch the receiver must answer exactly as before, and
// retrying the corrected batch on the same receiver must succeed and
// converge with a fresh recompile.

// failBatch returns consecutive deltas d1, d2 from two inserts, plus a
// corrupted copy of d2 whose final leaf edit is out of range — so a
// batch [d1, corrupt] fully applies d1 and partially applies the
// corrupt delta (rule append and earlier leaf-window appends land in
// the arenas) before failing.
func failBatch(t *testing.T, tree *core.Tree) (d1, d2, corrupt *core.Delta) {
	t.Helper()
	pool := classbench.Generate(classbench.FW1(), 8, 77)
	r1, r2 := pool[0], pool[1]
	r1.ID = tree.NumRules()
	d1, err := tree.InsertDelta(r1)
	if err != nil {
		t.Fatal(err)
	}
	r2.ID = tree.NumRules()
	d2, err = tree.InsertDelta(r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.LeafEdits) == 0 {
		t.Fatalf("second insert produced no leaf edits; pick a different pool rule")
	}
	c := *d2
	c.LeafEdits = append([]core.LeafEdit(nil), d2.LeafEdits...)
	c.LeafEdits[len(c.LeafEdits)-1].Index = 1 << 20
	c.LeafEdits[len(c.LeafEdits)-1].New = false
	return d1, d2, &c
}

// TestPatchBatchMidFailureLeavesReceiverIntact proves the receiver
// snapshot stays classify-identical after a failed mid-batch PatchBatch.
func TestPatchBatchMidFailureLeavesReceiverIntact(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		t.Run(algo.String(), func(t *testing.T) {
			rs := classbench.Generate(classbench.ACL1(), 400, 13)
			tree, err := core.Build(rs, core.DefaultConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			e0 := Compile(tree)
			trace := classbench.GenerateTrace(rs, 3000, 14)
			before := make([]int32, len(trace))
			e0.ClassifyBatch(trace, before)
			lens := [3]int{len(e0.ruleIDs), len(e0.kids), len(e0.rules)}

			d1, d2, corrupt := failBatch(t, tree)
			ne, err := e0.PatchBatch([]*core.Delta{d1, corrupt})
			if err == nil {
				t.Fatal("corrupted batch was accepted")
			}
			if ne != nil {
				t.Fatal("failed batch returned a non-nil engine")
			}
			if got := [3]int{len(e0.ruleIDs), len(e0.kids), len(e0.rules)}; got != lens {
				t.Fatalf("failed batch changed receiver arena lengths: %v -> %v", lens, got)
			}
			after := make([]int32, len(trace))
			e0.ClassifyBatch(trace, after)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("packet %d: receiver changed from %d to %d after failed batch", i, before[i], after[i])
				}
			}

			// The retry with the corrected batch succeeds on the same
			// receiver and converges with a fresh recompile of the tree
			// (which absorbed both inserts before the failed attempt).
			e1, err := e0.PatchBatch([]*core.Delta{d1, d2})
			if err != nil {
				t.Fatalf("retry after failed batch: %v", err)
			}
			if err := VerifyPatched(trace, e1, Compile(tree)); err != nil {
				t.Fatalf("retry diverged: %v", err)
			}
			// And the receiver is still untouched by the successful retry.
			e0.ClassifyBatch(trace, after)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("packet %d: receiver changed from %d to %d after retry", i, before[i], after[i])
				}
			}
		})
	}
}

// TestPatchBatchMidFailureConcurrentReaders re-runs the failed-batch
// scenario with readers classifying on the receiver throughout, so the
// race detector sees any in-place write a failed batch makes to storage
// a published snapshot can reach.
func TestPatchBatchMidFailureConcurrentReaders(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 400, 15)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e0 := Compile(tree)
	trace := classbench.GenerateTrace(rs, 2000, 16)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		out := make([]int32, len(trace))
		for {
			select {
			case <-stop:
				return
			default:
				e0.ClassifyBatch(trace, out)
			}
		}
	}()

	d1, _, corrupt := failBatch(t, tree)
	for i := 0; i < 50; i++ {
		if _, err := e0.PatchBatch([]*core.Delta{d1, corrupt}); err == nil {
			t.Fatal("corrupted batch was accepted")
		}
	}
	close(stop)
	<-done
}
