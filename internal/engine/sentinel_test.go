package engine

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
)

// End-to-end coverage for Engine.leafSlot's sentinel shift: when Compile
// compiled a tree containing nil child slots it inserted an empty-leaf
// sentinel into the engine's leaf table, and every later patch must
// translate core leaf indices at or past the sentinel up by one — the
// `sentinel >= 0` branch of leafSlot. core.Build never emits nil
// children, so the branch is reachable only for engines compiled from a
// hand-mutated tree, which is what this test constructs: a few child
// slots pointing at heavily shared leaves are nil'ed ("no match" for
// those regions). The tree, the patched engine and every fresh Compile
// all render the mutated tree, so the three views must stay
// packet-identical through the whole churn — which is exactly the
// property leafSlot's shift must preserve.

// nilSharedLeafSlots replaces up to max child slots whose leaf is
// referenced from at least three slots with nil (the leaf itself stays
// reachable through its other references, so the mutation only
// introduces nil slots — it does not strand leaf-table entries).
func nilSharedLeafSlots(t *core.Tree, max int) int {
	refs := map[*core.Node]int{}
	for _, in := range t.Internals() {
		for _, c := range in.Children {
			if c != nil && c.Leaf {
				refs[c]++
			}
		}
	}
	n := 0
	for _, in := range t.Internals() {
		for i, c := range in.Children {
			if n >= max {
				return n
			}
			if c != nil && c.Leaf && refs[c] >= 3 {
				refs[c]--
				in.Children[i] = nil
				n++
			}
		}
	}
	return n
}

func TestPatchAfterSentinelCompile(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		t.Run(algo.String(), func(t *testing.T) {
			rs := classbench.Generate(classbench.ACL1(), 300, 61)
			tree, err := core.Build(rs, core.DefaultConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			if nilSharedLeafSlots(tree, 8) == 0 {
				t.Fatal("tree has no shared leaves to nil; pick a different ruleset")
			}
			coreLeaves0 := len(tree.Leaves())
			e := Compile(tree)
			if e.sentinel < 0 {
				t.Fatal("compile of a tree with nil children emitted no sentinel")
			}
			if int(e.sentinel) != coreLeaves0 {
				t.Fatalf("sentinel at %d, want %d (end of the compile-time leaf table)", e.sentinel, coreLeaves0)
			}
			trace := classbench.GenerateTrace(rs, 3000, 62)
			for i, p := range trace {
				if got, want := e.Classify(p), tree.Classify(p); got != want {
					t.Fatalf("pre-patch packet %d: engine=%d tree=%d", i, got, want)
				}
			}

			// Churn through the patch pipeline: repeated inserts of
			// overlapping rules append new leaves (unsharing) and then
			// edit those appended leaves in place — both sides of the
			// sentinel shift. Inserting each pool rule twice guarantees
			// the second copy edits leaves the first one appended.
			pool := classbench.Generate(classbench.FW1(), 20, 63)
			var appends, shiftedEdits int
			for i := 0; i < 2*len(pool); i++ {
				r := pool[i/2]
				r.ID = tree.NumRules()
				d, err := tree.InsertDelta(r)
				if err != nil {
					t.Fatal(err)
				}
				for _, le := range d.LeafEdits {
					switch {
					case le.New:
						appends++
					case le.Index >= coreLeaves0:
						shiftedEdits++
					}
				}
				if e, err = e.Patch(d); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				if i%4 != 3 {
					continue
				}
				fresh := Compile(tree)
				if err := VerifyPatched(trace, e, fresh); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				for j, p := range trace {
					if got, want := e.Classify(p), tree.Classify(p); got != want {
						t.Fatalf("insert %d packet %d: patched=%d tree=%d", i, j, got, want)
					}
				}
			}
			// Deletes rewrite existing leaves on both sides of the
			// sentinel too — in place even when shared, so they reliably
			// exercise the shifted-edit path on the appended leaves the
			// inserted rules live in.
			for id := len(rs); id < tree.NumRules(); id += 3 {
				d, err := tree.DeleteDelta(id)
				if err != nil {
					t.Fatal(err)
				}
				for _, le := range d.LeafEdits {
					if !le.New && le.Index >= coreLeaves0 {
						shiftedEdits++
					}
				}
				if e, err = e.Patch(d); err != nil {
					t.Fatalf("delete %d: %v", id, err)
				}
			}
			if err := VerifyPatched(trace, e, Compile(tree)); err != nil {
				t.Fatal(err)
			}

			// The test must actually have exercised the shift: appends
			// always land past the sentinel, and at least one in-place
			// edit of an appended leaf must have occurred.
			if appends == 0 || shiftedEdits == 0 {
				t.Fatalf("churn exercised appends=%d shifted-edits=%d; the sentinel branch was not covered", appends, shiftedEdits)
			}
		})
	}
}
