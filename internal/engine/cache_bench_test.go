package engine

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// Flow-cache benchmarks on a locality-skewed trace (packet trains from a
// Zipf-skewed flow population — the traffic shape real links carry). The
// cached/uncached pair measures the same batch loop through
// Handle.ClassifyBatchCached with and without an attached cache, and the
// cached rows report the cache's steady-state behaviour as custom
// metrics (hitrate, occupied, stale) so scripts/bench.sh lands them in
// BENCH_<date>.json alongside pps.

func benchFlowSetup(b *testing.B, withCache bool) (*Handle, []rule.Packet, []int32) {
	b.Helper()
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	if withCache {
		h.EnableCache(1 << 14)
	}
	trace := classbench.GenerateFlowTrace(rs, 8192, 1024, 16, 2009)
	return h, trace, make([]int32, len(trace))
}

func benchFlowClassify(b *testing.B, withCache bool) {
	h, trace, out := benchFlowSetup(b, withCache)
	h.ClassifyBatchCached(trace, out) // warm the cache outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ClassifyBatchCached(trace, out)
	}
	b.StopTimer()
	pps := float64(b.N) * float64(len(trace)) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pps")
	if c := h.Cache(); c != nil {
		st := c.Stats()
		b.ReportMetric(st.HitRate(), "hitrate")
		b.ReportMetric(float64(st.Occupied), "occupied")
		b.ReportMetric(float64(st.StaleEvictions), "stale")
	}
}

func BenchmarkFlowTraceClassifyCached(b *testing.B)   { benchFlowClassify(b, true) }
func BenchmarkFlowTraceClassifyUncached(b *testing.B) { benchFlowClassify(b, false) }

// BenchmarkFlowTraceClassifyCachedChurn measures the cached path while
// every iteration also applies one Insert (epoch bump): the cost of
// stale-epoch fallthrough and repopulation under control-plane churn.
func BenchmarkFlowTraceClassifyCachedChurn(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	h.EnableCache(1 << 14)
	trace := classbench.GenerateFlowTrace(rs, 8192, 1024, 16, 2009)
	out := make([]int32, len(trace))
	pool := classbench.Generate(classbench.FW1(), 4096, 2010)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pool[i%len(pool)]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Apply(d); err != nil {
			b.Fatal(err)
		}
		h.ClassifyBatchCached(trace, out)
	}
	b.StopTimer()
	pps := float64(b.N) * float64(len(trace)) / b.Elapsed().Seconds()
	b.ReportMetric(pps, "pps")
	st := h.Cache().Stats()
	b.ReportMetric(st.HitRate(), "hitrate")
	b.ReportMetric(float64(st.StaleEvictions), "stale")
}
