package engine

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// Throughput benchmarks: the flat engine against the pointer-walking
// core.Tree.Classify baseline on the same tree and trace. Run via
// scripts/bench.sh for benchstat-comparable output.

func benchSetup(b *testing.B, algo core.Algorithm) (*core.Tree, *Engine, []rule.Packet) {
	b.Helper()
	rs := classbench.Generate(classbench.ACL1(), 2000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateTrace(rs, 4096, 2009)
	return tree, Compile(tree), trace
}

func benchTreeClassify(b *testing.B, algo core.Algorithm) {
	tree, _, trace := benchSetup(b, algo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Classify(trace[i&4095])
	}
	reportPPS(b)
}

func benchEngineClassify(b *testing.B, algo core.Algorithm) {
	_, eng, trace := benchSetup(b, algo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Classify(trace[i&4095])
	}
	reportPPS(b)
}

func reportPPS(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkTreeClassifyHiCuts is the pointer-walking baseline.
func BenchmarkTreeClassifyHiCuts(b *testing.B)    { benchTreeClassify(b, core.HiCuts) }
func BenchmarkTreeClassifyHyperCuts(b *testing.B) { benchTreeClassify(b, core.HyperCuts) }

// BenchmarkEngineClassify* must show >= 2x the Tree baseline (single core).
func BenchmarkEngineClassifyHiCuts(b *testing.B)    { benchEngineClassify(b, core.HiCuts) }
func BenchmarkEngineClassifyHyperCuts(b *testing.B) { benchEngineClassify(b, core.HyperCuts) }

// BenchmarkEngineClassifyBatch exercises the zero-allocation batched path.
func BenchmarkEngineClassifyBatch(b *testing.B) {
	_, eng, trace := benchSetup(b, core.HyperCuts)
	out := make([]int32, len(trace))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ClassifyBatch(trace, out)
	}
	b.ReportMetric(float64(b.N)*float64(len(trace))/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkEngineParallelClassify shards the batch over all cores.
func BenchmarkEngineParallelClassify(b *testing.B) {
	_, eng, trace := benchSetup(b, core.HyperCuts)
	// A bigger batch so per-call fan-out cost amortizes.
	big := make([]rule.Packet, 1<<16)
	for i := range big {
		big[i] = trace[i&4095]
	}
	out := make([]int32, len(big))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ParallelClassify(big, out, 0)
	}
	b.ReportMetric(float64(b.N)*float64(len(big))/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkClassifyBatchACL10k is the tentpole's headline measurement:
// the batched classify path on an ACL1 ruleset at 10k rules, with the
// structure-of-arrays comparator-bank leaf scan (soa) against the
// array-of-structs early-exit scan (aos). scripts/bench.sh lands both
// rows in BENCH_<date>.json, so the layout ablation is tracked across
// PRs next to the throughput trajectory.
func BenchmarkClassifyBatchACL10k(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 10000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	eng := Compile(tree)
	trace := classbench.GenerateTrace(rs, 4096, 2009)
	out := make([]int32, len(trace))
	rows := []struct {
		name string
		fn   func([]rule.Packet, []int32)
	}{{"aos", eng.ClassifyBatchAoS}}
	// One soa row per available scan kernel (kernel=portable plus the
	// CPU's native kernel), so the SIMD end-to-end win is a tracked
	// column in BENCH_<date>.json.
	for _, k := range Kernels() {
		ke, err := eng.WithKernel(k)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, struct {
			name string
			fn   func([]rule.Packet, []int32)
		}{fmt.Sprintf("soa/kernel=%s", k), ke.ClassifyBatch})
	}
	for _, v := range rows {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.fn(trace, out)
			}
			b.ReportMetric(float64(b.N)*float64(len(trace))/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkLeafScan isolates the leaf-match stage on real workload: ACL1
// packets are bucketed by the size of the leaf window their walk lands
// in, and each bucket's scans run through the AoS early-exit loop and
// the SoA comparator bank (walks precomputed, so the rows measure only
// the scan kernels on real windows, real match depths and real
// branch-predictor pressure). The acceptance bar is soa at parity on
// small windows and measurably faster from 8 rules up.
func BenchmarkLeafScan(b *testing.B) {
	rs := classbench.Generate(classbench.ACL1(), 10000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	eng := Compile(tree)

	type scanCase struct {
		l leafRef
		f [rule.NumDims]uint32
	}
	buckets := map[int][]scanCase{}
	bucketOf := func(n int32) int {
		for _, hi := range []int32{4, 8, 16, 32, 64, 128} {
			if n <= hi {
				return int(hi)
			}
		}
		return 256
	}
	// Each bucket needs enough distinct cases that the branch predictor
	// cannot memorize the AoS loop's per-case outcomes across bench
	// iterations (which would flatter AoS far beyond line-rate reality),
	// so keep drawing trace batches until the buckets fill or the trace
	// budget runs out.
	const wantCases = 4096
	for seed, drawn := int64(2009), 0; drawn < 1<<21; seed++ {
		trace := classbench.GenerateTrace(rs, 1<<17, seed)
		drawn += len(trace)
		full := true
		for _, p := range trace {
			f := [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
			l := eng.walk(&f)
			if l.n == 0 {
				continue
			}
			bk := bucketOf(l.n)
			if len(buckets[bk]) < wantCases {
				buckets[bk] = append(buckets[bk], scanCase{l, f})
			}
		}
		for _, hi := range []int{32, 64, 128} {
			if len(buckets[hi]) < wantCases {
				full = false
			}
		}
		if full {
			break
		}
	}
	for _, hi := range []int{4, 8, 16, 32, 64, 128, 256} {
		cases := buckets[hi]
		if len(cases) < 64 {
			continue // this ruleset has no populated windows in the bucket
		}
		for ci := range cases {
			c := &cases[ci]
			if got, want := eng.scanLeaf(c.l, &c.f), eng.aosScanLeaf(c.l, &c.f); got != want {
				b.Fatalf("leafsize<=%d case %d: soa=%d aos=%d", hi, ci, got, want)
			}
		}
		b.Run(fmt.Sprintf("aos/leafsize=%d", hi), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := &cases[i%len(cases)]
				eng.aosScanLeaf(c.l, &c.f)
			}
		})
		// One soa row per scan kernel: the ≥1.5x acceptance bar of the
		// SIMD backend is kernel=avx2 (or neon) over kernel=portable on
		// the 64- and 128-slot buckets.
		for _, k := range Kernels() {
			ke, err := eng.WithKernel(k)
			if err != nil {
				b.Fatal(err)
			}
			for ci := range cases {
				c := &cases[ci]
				if got, want := ke.scanLeaf(c.l, &c.f), eng.aosScanLeaf(c.l, &c.f); got != want {
					b.Fatalf("kernel=%s leafsize<=%d case %d: soa=%d aos=%d", k, hi, ci, got, want)
				}
			}
			b.Run(fmt.Sprintf("soa/kernel=%s/leafsize=%d", k, hi), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c := &cases[i%len(cases)]
					ke.scanLeaf(c.l, &c.f)
				}
			})
		}
	}
}

// Build benchmarks: sequential vs pooled parallel construction.

func benchBuild(b *testing.B, algo core.Algorithm, workers int) {
	rs := classbench.Generate(classbench.ACL1(), 2000, 2008)
	cfg := core.DefaultConfig(algo)
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(rs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSequentialHiCuts(b *testing.B)    { benchBuild(b, core.HiCuts, 1) }
func BenchmarkBuildParallelHiCuts(b *testing.B)      { benchBuild(b, core.HiCuts, runtime.GOMAXPROCS(0)) }
func BenchmarkBuildSequentialHyperCuts(b *testing.B) { benchBuild(b, core.HyperCuts, 1) }
func BenchmarkBuildParallelHyperCuts(b *testing.B) {
	benchBuild(b, core.HyperCuts, runtime.GOMAXPROCS(0))
}

// BenchmarkEngineCompile measures tree -> flat image compilation.
func BenchmarkEngineCompile(b *testing.B) {
	tree, _, _ := benchSetup(b, core.HyperCuts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(tree)
	}
}

// BenchmarkPatchUpdate measures the live-update pipeline end to end: one
// Insert delta + engine Patch + epoch publish, immediately followed by
// the matching Delete (so the working set stays bounded). Compare with
// BenchmarkEngineCompile — the cost every update paid before deltas.
//
// The sub-benchmarks run the identical update mix against a 1,000-rule
// and a 10,000-rule table: with the incremental leaf repack, the
// rule→leaves occupancy index and chunk-granular engine copies, per-
// update cost tracks the edited-leaf count, so the two ns/op figures
// must stay close (the measured form of the sublinear-update claim;
// scripts/bench.sh lands both rows in BENCH_<date>.json).
func BenchmarkPatchUpdate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			rs := classbench.Generate(classbench.ACL1(), n, 2008)
			pool := classbench.Generate(classbench.FW1(), 2048, 2010)
			var tree *core.Tree
			var h *Handle
			rebuild := func() {
				var err error
				tree, err = core.Build(rs, core.DefaultConfig(core.HyperCuts))
				if err != nil {
					b.Fatal(err)
				}
				h = NewHandle(Compile(tree))
			}
			rebuild()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2048 == 0 && i > 0 {
					// The ruleset slice grows monotonically (IDs are
					// positional); periodically rebuild outside the timer.
					b.StopTimer()
					rebuild()
					b.StartTimer()
				}
				r := pool[i%len(pool)]
				r.ID = tree.NumRules()
				d, err := tree.InsertDelta(r)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.Apply(d); err != nil {
					b.Fatal(err)
				}
				d, err = tree.DeleteDelta(r.ID)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := h.Apply(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
