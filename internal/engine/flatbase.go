package engine

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/rule"
)

// Flat compilation of the *unmodified* software baselines, so the
// pctables -engine comparison is all-flat and fair: the modified
// hardware-oriented trees run through Engine, the original HiCuts and
// HyperCuts trees run through RangeEngine, and the remaining speed
// difference is the algorithms' — not the data layout's.
//
// The baselines cannot use Engine's mask/shift/add datapath: their cuts
// are equal-width slices of arbitrary (possibly region-compacted)
// ranges, so a child index takes a subtraction and a division per cut
// dimension — exactly the arithmetic the paper's §3 modifications remove
// from the hardware. The flat rendering keeps that arithmetic while
// eliminating pointer chasing: nodes, cut headers, child references,
// pushed-rule lists, leaf windows and rules live in six contiguous
// arrays, traversed by int32 index.

// rcut is one cut dimension of a baseline internal node: child index
// component = clamp((field - lo) / width) * stride, valid while field is
// inside [lo, hi].
type rcut struct {
	dim    uint8
	lo, hi uint32
	width  uint64
	np     int32
	stride int32
}

// rnode is one baseline internal node: views into the cuts, kids and
// pushed pools.
type rnode struct {
	cutOff, cutLen   int32
	kidOff           int32
	pushOff, pushLen int32
}

// RangeEngine is a flat, immutable, pointer-free rendering of an
// original-algorithm decision tree (hicuts.Tree or hypercuts.Tree). All
// methods are safe for concurrent use; Classify allocates nothing.
type RangeEngine struct {
	root    int32 // >= 0: nodes index; < 0: ^leaf index (leaf root)
	nodes   []rnode
	cuts    []rcut
	kids    []int32 // >= 0: nodes index; < 0: ^leaf index
	pushed  []int32
	leaves  []leafRef
	ruleIDs []int32
	rules   []flatRule
	// soa mirrors the leaf windows' rule bounds as per-dimension arenas
	// in ruleIDs order, so the baselines' leaf scans run on the same
	// comparator-bank kernel as Engine (soa.go) and the -engine table
	// stays an algorithm comparison, not a layout one. Pushed-rule
	// checks stay on the AoS rule table: pushed lists are individual
	// IDs, not contiguous windows.
	soa soaBank
	// kern is the leaf-scan kernel tag, stamped at compile from the
	// process default exactly like Engine.kern (soa_dispatch.go).
	kern uint8
}

// flatRules converts a ruleset to match form.
func flatRules(rs rule.RuleSet) []flatRule {
	out := make([]flatRule, len(rs))
	for i := range rs {
		for d := 0; d < rule.NumDims; d++ {
			out[i].lo[d] = rs[i].F[d].Lo
			out[i].hi[d] = rs[i].F[d].Hi
		}
	}
	return out
}

// addLeaf appends a leaf window and returns its encoded child reference.
func (e *RangeEngine) addLeaf(ids []int32) int32 {
	i := int32(len(e.leaves))
	e.leaves = append(e.leaves, leafRef{off: int32(len(e.ruleIDs)), n: int32(len(ids))})
	e.ruleIDs = append(e.ruleIDs, ids...)
	e.soa.appendWindow(e.rules, ids)
	return ^i
}

// flattenTree numbers a baseline tree's internal nodes in depth-first
// preorder and returns them along with a child-reference resolver that
// deduplicates leaves and lazily allocates the shared empty leaf for
// nil children. The numbering completes before any pool is filled, so
// forward references resolve. Shared by both baseline compilers; only
// the per-algorithm cut headers differ.
func flattenTree[N comparable](e *RangeEngine, root N,
	isLeaf func(N) bool, kids func(N) []N, leafRules func(N) []int32) ([]N, func(N) int32) {
	var zero N
	nodeIdx := map[N]int32{}
	leafRefs := map[N]int32{}
	var order []N
	var visit func(N)
	visit = func(n N) {
		if n == zero || isLeaf(n) {
			return
		}
		if _, ok := nodeIdx[n]; ok {
			return
		}
		nodeIdx[n] = int32(len(order))
		order = append(order, n)
		for _, c := range kids(n) {
			visit(c)
		}
	}
	var emptyRef int32
	haveEmpty := false
	ref := func(n N) int32 {
		if n == zero {
			if !haveEmpty {
				emptyRef = e.addLeaf(nil)
				haveEmpty = true
			}
			return emptyRef
		}
		if !isLeaf(n) {
			return nodeIdx[n]
		}
		if r, ok := leafRefs[n]; ok {
			return r
		}
		r := e.addLeaf(leafRules(n))
		leafRefs[n] = r
		return r
	}
	visit(root)
	return order, ref
}

// CompileHiCuts flattens a built original-HiCuts tree.
func CompileHiCuts(t *hicuts.Tree) *RangeEngine {
	e := &RangeEngine{rules: flatRules(t.Rules()), kern: defaultKern}
	order, ref := flattenTree(e, t.Root,
		func(n *hicuts.Node) bool { return n.Leaf },
		func(n *hicuts.Node) []*hicuts.Node { return n.Children },
		func(n *hicuts.Node) []int32 { return n.Rules })
	e.nodes = make([]rnode, len(order))
	for i, n := range order {
		size := uint64(n.Hi) - uint64(n.Lo) + 1
		width := (size + uint64(n.NumCuts) - 1) / uint64(n.NumCuts)
		nd := rnode{cutOff: int32(len(e.cuts)), cutLen: 1, kidOff: int32(len(e.kids))}
		e.cuts = append(e.cuts, rcut{
			dim: uint8(n.Dim), lo: n.Lo, hi: n.Hi,
			width: width, np: int32(n.NumCuts), stride: 1,
		})
		for _, c := range n.Children {
			e.kids = append(e.kids, ref(c))
		}
		e.nodes[i] = nd
	}
	e.root = ref(t.Root)
	e.soa.computeOrder()
	e.soa.pad()
	return e
}

// CompileHyperCuts flattens a built original-HyperCuts tree, keeping its
// region-compacted multi-dimensional cuts and pushed-rule lists.
func CompileHyperCuts(t *hypercuts.Tree) *RangeEngine {
	e := &RangeEngine{rules: flatRules(t.Rules()), kern: defaultKern}
	order, ref := flattenTree(e, t.Root,
		func(n *hypercuts.Node) bool { return n.Leaf },
		func(n *hypercuts.Node) []*hypercuts.Node { return n.Children },
		func(n *hypercuts.Node) []int32 { return n.Rules })
	e.nodes = make([]rnode, len(order))
	for i, n := range order {
		nd := rnode{
			cutOff: int32(len(e.cuts)), cutLen: int32(len(n.Cuts)),
			kidOff:  int32(len(e.kids)),
			pushOff: int32(len(e.pushed)), pushLen: int32(len(n.Pushed)),
		}
		// Stride of cut i is the product of cut counts after it (the
		// same row-major flattening hypercuts.comboStrides computes).
		stride := int32(1)
		strides := make([]int32, len(n.Cuts))
		for j := len(n.Cuts) - 1; j >= 0; j-- {
			strides[j] = stride
			stride *= int32(n.Cuts[j].NumCuts)
		}
		for j, c := range n.Cuts {
			size := uint64(c.Hi) - uint64(c.Lo) + 1
			width := (size + uint64(c.NumCuts) - 1) / uint64(c.NumCuts)
			e.cuts = append(e.cuts, rcut{
				dim: uint8(c.Dim), lo: c.Lo, hi: c.Hi,
				width: width, np: int32(c.NumCuts), stride: strides[j],
			})
		}
		e.pushed = append(e.pushed, n.Pushed...)
		for _, c := range n.Children {
			e.kids = append(e.kids, ref(c))
		}
		e.nodes[i] = nd
	}
	e.root = ref(t.Root)
	e.soa.computeOrder()
	e.soa.pad()
	return e
}

// match reports whether rule id matches p (the five unrolled range
// compares of the flat rule form).
func (e *RangeEngine) match(id int32, p rule.Packet) bool {
	r := &e.rules[id]
	f2 := uint32(p.SrcPort)
	f3 := uint32(p.DstPort)
	f4 := uint32(p.Proto)
	return p.SrcIP >= r.lo[0] && p.SrcIP <= r.hi[0] &&
		p.DstIP >= r.lo[1] && p.DstIP <= r.hi[1] &&
		f2 >= r.lo[2] && f2 <= r.hi[2] &&
		f3 >= r.lo[3] && f3 <= r.hi[3] &&
		f4 >= r.lo[4] && f4 <= r.hi[4]
}

// Classify returns the lowest (highest-priority) matching rule ID for p,
// or -1, with exactly the semantics of the source tree's Classify:
// pushed rules are considered along the path, leaving the compacted
// region ends the search, and the leaf scan stops once it cannot beat
// the best pushed match. It allocates nothing.
func (e *RangeEngine) Classify(p rule.Packet) int {
	best := int32(-1)
	ref := e.root
	for ref >= 0 {
		n := &e.nodes[ref]
		for _, id := range e.pushed[n.pushOff : n.pushOff+n.pushLen] {
			if (best < 0 || id < best) && e.match(id, p) {
				best = id
			}
		}
		idx := int32(0)
		for i := n.cutOff; i < n.cutOff+n.cutLen; i++ {
			c := &e.cuts[i]
			v := p.Field(int(c.dim))
			if v < c.lo || v > c.hi {
				return int(best) // outside the (compacted) region
			}
			ci := int32(uint64(v-c.lo) / c.width)
			if ci >= c.np {
				ci = c.np - 1
			}
			idx += ci * c.stride
		}
		ref = e.kids[n.kidOff+idx]
	}
	l := e.leaves[^ref]
	// Leaf scan: peel the head slots with the early-exit compare (the
	// common quick match), then run the comparator bank on the rest. The
	// window is priority-ordered, so its first matching slot is the
	// leaf's best answer; it wins only if it beats the best pushed match
	// (the AoS loop's early-break rule).
	peel := peelLen(e.kern, l.n)
	for _, id := range e.ruleIDs[l.off : l.off+peel] {
		if best >= 0 && id > best {
			return int(best) // window is priority-ordered; cannot improve
		}
		if e.match(id, p) {
			return int(id)
		}
	}
	if peel < l.n && e.kern == kernNative {
		f := [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
		if pos := e.soa.scanSIMD(l.off+peel, l.n-peel, &f); pos >= 0 {
			id := e.ruleIDs[l.off+peel+pos]
			if best < 0 || id < best {
				return int(id)
			}
		}
		return int(best)
	}
	if peel < l.n {
		f := [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
		end := l.off + l.n
		width := int32(scanBlockLen)
		for base := l.off + peel; base < end; {
			bl := end - base
			if bl > width {
				bl = width
			}
			for m := e.soa.candidates(base, bl, &f); m != 0; m &= m - 1 {
				id := e.ruleIDs[base+int32(bits.TrailingZeros64(m))]
				if best >= 0 && id > best {
					return int(best) // priority order; cannot improve
				}
				if e.match(id, p) {
					return int(id)
				}
			}
			base += bl
			width = scanTailLen
		}
	}
	return int(best)
}

// ClassifyBatch classifies pkts[i] into out[i] for every i with zero
// heap allocations; out must be at least as long as pkts.
func (e *RangeEngine) ClassifyBatch(pkts []rule.Packet, out []int32) {
	_ = out[:len(pkts)]
	for i := range pkts {
		out[i] = int32(e.Classify(pkts[i]))
	}
}

// ParallelClassify classifies pkts into out using up to workers
// goroutines over contiguous shards (workers <= 0 selects GOMAXPROCS).
func (e *RangeEngine) ParallelClassify(pkts []rule.Packet, out []int32, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkts) {
		workers = len(pkts)
	}
	if workers <= 1 {
		e.ClassifyBatch(pkts, out)
		return
	}
	_ = out[:len(pkts)]
	chunk := (len(pkts) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(pkts); start += chunk {
		end := min(start+chunk, len(pkts))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.ClassifyBatch(pkts[lo:hi], out[lo:hi])
		}(start, end)
	}
	wg.Wait()
}

// MemoryBytes returns the flat footprint of the baseline rendering.
func (e *RangeEngine) MemoryBytes() int {
	return len(e.nodes)*20 + len(e.cuts)*24 + len(e.kids)*4 + len(e.pushed)*4 +
		len(e.leaves)*8 + len(e.ruleIDs)*4 + len(e.rules)*40 +
		e.soa.slots()*8*rule.NumDims
}
