// Package engine compiles a built core.Tree into a flat, pointer-free
// classification engine for the software fast path.
//
// The layout mirrors the paper's §4 memory image, translated from
// 4800-bit hardware words into cache-line-friendly Go slices:
//
//   - Internal nodes live in one contiguous []node slice, indexed by the
//     same Word number core.Tree.layout assigns (root = entry 0, the word
//     the hardware keeps in register A). A node's entry holds int32
//     offsets into two shared pools instead of the word's bit fields:
//     its mask/shift cut header goes to the cuts pool (the per-dimension
//     mask and barrel-shift bytes of the word header) and its child
//     pointer array goes to the kids pool (the word's 18-bit cut
//     entries).
//   - A child reference is one int32: values >= 0 index the node slice
//     (an internal "word pointer"), values < 0 are ^v into the leaf
//     table (the hardware's leaf flag + Word/Pos pair). Empty regions
//     point at a shared empty leaf, exactly like the hardware's shared
//     sentinel.
//   - Leaf rule IDs are packed, in priority order, into one shared
//     []int32 pool (the rules-in-leaf storage of §3; deduplicated leaves
//     keep their sharing, so the pool is the software twin of the leaf
//     words). The rules' bounds are stored twice: as a flat []flatRule
//     array indexed by rule ID (the update path's source of truth and
//     the AoS ablation baseline), and as structure-of-arrays
//     per-dimension lo/hi arenas in pool order — the software comparator
//     bank (soa.go) the leaf scan sweeps with branch-free blocked
//     compares, the stand-in for the 30 parallel comparators.
//
// Traversal therefore never chases a Go pointer: it walks int32 indices
// through three flat arrays, computing child indexes with the identical
// mask/shift/add datapath the accelerator implements. Classify and
// ClassifyBatch perform zero allocations per packet; ParallelClassify
// shards a batch across cores for multi-Gbps software throughput.
//
// Each Engine value is an immutable snapshot. Live updates do not mutate
// it: core.Tree.InsertDelta/DeleteDelta produce structured deltas that
// Patch replays into the next snapshot, sharing unchanged pool segments
// copy-on-write (see patch.go). Handle (handle.go) publishes the chain of
// snapshots through an epoch-versioned atomic pointer, so readers
// classify lock-free against a consistent image while a single updater
// swaps in the next epoch, and GarbageRatio tells the control plane when
// to fold the accumulated patch garbage into a fresh Compile.
package engine

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/rule"
)

// cut is one dimension of an internal node's cut header: the hardware's
// 8-bit mask plus signed barrel-shift (positive = right shift).
type cut struct {
	dim   uint8
	mask  uint8
	shift int8
}

// node is one internal node: a view into the shared cuts pool and the
// offset and length of its child-reference block in the kids pool. The
// explicit length lets Patch relocate a single node's block to the end of
// the kids arena (copy-on-write at block granularity) without touching
// its neighbours.
type node struct {
	cutOff int32
	cutLen int32
	kidOff int32
	kidLen int32
}

// leafRef locates one deduplicated leaf's rule IDs in the shared pool.
type leafRef struct {
	off int32
	n   int32
}

// The leaf table is stored in fixed-size chunks so Patch can share every
// chunk the update leaves untouched between snapshots: a patch copies
// only the chunks containing edited leaf indices (from the delta's first
// dirty leaf on) plus the chunk directory, making the leaf-table side of
// an update O(edited chunks), not O(leaves). 256 entries × 8 bytes = 2
// KiB per chunk keeps the copy cost of one edit trivial while the extra
// indirection on the classify path is a single additional index split.
const (
	leafChunkBits = 8
	leafChunkLen  = 1 << leafChunkBits
	leafChunkMask = leafChunkLen - 1
)

// flatRule is the match form of one rule: closed [lo,hi] per dimension,
// indexed by rule ID. 40 bytes, so a 30-rule leaf scan touches the same
// order of memory as one 600-byte hardware word.
type flatRule struct {
	lo [rule.NumDims]uint32
	hi [rule.NumDims]uint32
}

// The ten-compare bounds check appears expanded in three scan loops
// (scanLeaf's peel and verify, aosScanLeaf) instead of as a flatRule
// method: at cost 100 it exceeds the inliner's budget of 80, and the
// resulting call per scanned rule costs the AoS paths ~25% of their
// throughput. The SoA differential tests (soa_test.go) pin all copies
// to identical behaviour.

// Engine is a flat, immutable, pointer-free classification engine. All
// methods are safe for concurrent use.
//
// An Engine value is one epoch's snapshot of the image: readers holding
// it classify against a consistent structure forever. After a
// core.Tree.InsertDelta/DeleteDelta, Patch derives the next epoch's
// snapshot by copy-on-write — unchanged pool segments are shared between
// epochs, abandoned segments are counted as garbage until a full Compile
// replaces the chain (see GarbageRatio). Handle wraps the chain in an
// atomic, epoch-versioned pointer for lock-free readers.
type Engine struct {
	nodes []node
	// cuts / kids / ruleIDs / rules are published COW arenas: append-only
	// after publish, shared between snapshots. Only //repro:arena-writer
	// functions (Compile, the Patch chain, image restore, blessed test
	// fixtures) may mutate them; arenaappend enforces this at vet time.
	//repro:arena
	cuts []cut
	//repro:arena
	kids []int32
	// leaves is the chunked leaf table: entry i lives at
	// leaves[i>>leafChunkBits][i&leafChunkMask]. Chunks are immutable
	// once published; Patch copies only the chunks it edits and shares
	// the rest with the previous snapshot.
	leaves    [][]leafRef
	numLeaves int
	//repro:arena
	ruleIDs []int32
	//repro:arena
	rules []flatRule
	// soa holds the leaf windows' rule bounds as per-dimension arenas in
	// ruleIDs order — the software comparator bank the leaf scan sweeps
	// (see soa.go). Like ruleIDs it is an append-only arena: Patch
	// appends rewritten windows past the receiver's length, so the
	// arenas are shared between snapshots exactly like the pool.
	soa soaBank

	// kern is the leaf-scan kernel tag (kernPortable/kernNative), stamped
	// at Compile from the process default and carried unchanged through
	// Patch: a published snapshot never changes kernels mid-flight. See
	// soa_dispatch.go; WithKernel derives a re-stamped view for A/B runs.
	kern uint8

	// sentinel is the leaf-table index of the compile-time empty-leaf
	// sentinel inserted for nil child slots, or -1. core.Build never
	// emits nil children, so for patched engines it is always -1; when
	// present it offsets the core-index → leaf-table translation of
	// leafSlot.
	sentinel int32

	// deadRuleSlots / deadKidSlots count pool entries abandoned by
	// patches (rewritten leaf windows, relocated kid blocks). They feed
	// GarbageRatio, the recompile trigger.
	deadRuleSlots int
	deadKidSlots  int
}

// Compile flattens a built tree into an Engine. The tree's layout (Word
// numbering of internal nodes, first-encounter order of deduplicated
// leaves) carries over verbatim, so the engine is a software rendering of
// the exact memory image the accelerator would load.
//
//repro:arena-writer builds the initial arenas before the engine is published
func Compile(t *core.Tree) *Engine {
	internals := t.Internals()
	leafNodes := t.Leaves()
	rs := t.Rules()

	e := &Engine{
		nodes:    make([]node, len(internals)),
		rules:    make([]flatRule, len(rs)),
		sentinel: -1,
		kern:     defaultKern,
	}
	for i := range rs {
		for d := 0; d < rule.NumDims; d++ {
			e.rules[i].lo[d] = rs[i].F[d].Lo
			e.rules[i].hi[d] = rs[i].F[d].Hi
		}
	}

	leafIdx := make(map[*core.Node]int32, len(leafNodes))
	total := 0
	for _, l := range leafNodes {
		total += len(l.Rules)
	}
	e.ruleIDs = make([]int32, 0, total)
	for d := 0; d < rule.NumDims; d++ {
		e.soa.lo[d] = make([]uint32, 0, total+soaPadSlots)
		e.soa.hi[d] = make([]uint32, 0, total+soaPadSlots)
	}
	flat := make([]leafRef, len(leafNodes), len(leafNodes)+1)
	for i, l := range leafNodes {
		leafIdx[l] = int32(i)
		flat[i] = leafRef{off: int32(len(e.ruleIDs)), n: int32(len(l.Rules))}
		e.ruleIDs = append(e.ruleIDs, l.Rules...)
		e.soa.appendWindow(e.rules, l.Rules)
	}
	// Shared sentinel for nil child slots (core.Build never emits them,
	// but compiled input is not required to come from Build alone).
	emptyLeaf := int32(-1)

	for w, n := range internals {
		// layout() numbers internal nodes breadth-first: n.Word == w.
		nd := node{
			cutOff: int32(len(e.cuts)),
			cutLen: int32(len(n.Cuts)),
			kidOff: int32(len(e.kids)),
			kidLen: int32(len(n.Children)),
		}
		for _, c := range n.Cuts {
			e.cuts = append(e.cuts, cut{dim: uint8(c.Dim), mask: c.Mask, shift: c.Shift})
		}
		for _, c := range n.Children {
			var ref int32
			switch {
			case c == nil:
				if emptyLeaf < 0 {
					emptyLeaf = int32(len(flat))
					flat = append(flat, leafRef{})
					e.sentinel = emptyLeaf
				}
				ref = ^emptyLeaf
			case c.Leaf:
				ref = ^leafIdx[c]
			default:
				ref = int32(c.Word)
			}
			e.kids = append(e.kids, ref)
		}
		e.nodes[w] = nd
	}
	e.setLeaves(flat)
	e.soa.computeOrder()
	e.soa.pad()
	return e
}

// setLeaves chunks a flat leaf table into the engine's two-level form.
// One slab allocation backs all chunks of a fresh compile; patched
// snapshots replace individual chunks with private copies.
func (e *Engine) setLeaves(flat []leafRef) {
	e.numLeaves = len(flat)
	nch := (len(flat) + leafChunkLen - 1) / leafChunkLen
	e.leaves = make([][]leafRef, nch)
	slab := make([]leafRef, nch*leafChunkLen)
	copy(slab, flat)
	for i := range e.leaves {
		e.leaves[i] = slab[i*leafChunkLen : (i+1)*leafChunkLen : (i+1)*leafChunkLen]
	}
}

// leafAt returns leaf-table entry i (valid for 0 <= i < numLeaves).
func (e *Engine) leafAt(i int32) leafRef {
	return e.leaves[i>>leafChunkBits][i&leafChunkMask]
}

// Classify returns the highest-priority matching rule ID for p, or -1.
// It allocates nothing. The leaf scan runs on the structure-of-arrays
// comparator bank (soa.go): five contiguous per-dimension sweeps over the
// window's bounds, branch-free, with the first set mask bit as the match
// — the software twin of the accelerator's 30 parallel comparators.
// ClassifyAoS is the array-of-structs fallback kept for the ablation.
//
//repro:hotpath
func (e *Engine) Classify(p rule.Packet) int {
	f := [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
	l := e.walk(&f)
	return e.scanLeaf(l, &f)
}

// scanLeaf resolves a leaf window to its highest-priority match.
//
// The peel (peelLen: the whole window when short, the kernel's peel
// depth otherwise) runs the AoS early-exit compare: Zipf-popular rules
// are the high-priority ones, so roughly half of all scans end in the
// window's first slot, where the bank's block setup can't be
// amortized. The remainder runs the engine's stamped scan kernel. On
// the native kernels that is one fused asm call (soaBank.scanSIMD):
// the returned slot matched every dimension in-register, so its rule
// ID is the answer with no verify step. The portable kernel runs the
// comparator bank as a prefilter — per block, one or two branch-free
// sweeps of the most selective dimensions produce a candidate mask,
// and only surviving slots are verified against their full bounds, in
// mask-bit (priority) order. Deep scans therefore cost ~one compare
// per slot with no data-dependent branches, where the AoS loop pays a
// mispredict per rule.
//
//repro:hotpath
func (e *Engine) scanLeaf(l leafRef, f *[rule.NumDims]uint32) int {
	peel := peelLen(e.kern, l.n)
	for _, id := range e.ruleIDs[l.off : l.off+peel] {
		r := &e.rules[id]
		if f[0] >= r.lo[0] && f[0] <= r.hi[0] &&
			f[1] >= r.lo[1] && f[1] <= r.hi[1] &&
			f[2] >= r.lo[2] && f[2] <= r.hi[2] &&
			f[3] >= r.lo[3] && f[3] <= r.hi[3] &&
			f[4] >= r.lo[4] && f[4] <= r.hi[4] {
			return int(id)
		}
	}
	if peel == l.n {
		return -1
	}
	if e.kern == kernNative {
		if pos := e.soa.scanSIMD(l.off+peel, l.n-peel, f); pos >= 0 {
			return int(e.ruleIDs[l.off+peel+pos])
		}
		return -1
	}
	end := l.off + l.n
	width := int32(scanBlockLen)
	for base := l.off + peel; base < end; {
		bl := end - base
		if bl > width {
			bl = width
		}
		for m := e.soa.candidates(base, bl, f); m != 0; m &= m - 1 {
			id := e.ruleIDs[base+int32(bits.TrailingZeros64(m))]
			r := &e.rules[id]
			if f[0] >= r.lo[0] && f[0] <= r.hi[0] &&
				f[1] >= r.lo[1] && f[1] <= r.hi[1] &&
				f[2] >= r.lo[2] && f[2] <= r.hi[2] &&
				f[3] >= r.lo[3] && f[3] <= r.hi[3] &&
				f[4] >= r.lo[4] && f[4] <= r.hi[4] {
				return int(id)
			}
		}
		base += bl
		width = scanTailLen
	}
	return -1
}

// ClassifyAoS is Classify with the array-of-structs leaf scan: one rule
// at a time over []flatRule with early exit. It is the portable baseline
// the SoA comparator bank is ablated against (bench.RunAblations,
// BenchmarkLeafScan) and the differential oracle of the SoA tests; the
// two are packet-identical by construction and by test.
func (e *Engine) ClassifyAoS(p rule.Packet) int {
	f := [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
	return e.aosScanLeaf(e.walk(&f), &f)
}

// aosScanLeaf is the array-of-structs window scan: one rule at a time
// with early exit, the counterpart of scanLeaf's peel+bank split.
func (e *Engine) aosScanLeaf(l leafRef, f *[rule.NumDims]uint32) int {
	for _, id := range e.ruleIDs[l.off : l.off+l.n] {
		r := &e.rules[id]
		if f[0] >= r.lo[0] && f[0] <= r.hi[0] &&
			f[1] >= r.lo[1] && f[1] <= r.hi[1] &&
			f[2] >= r.lo[2] && f[2] <= r.hi[2] &&
			f[3] >= r.lo[3] && f[3] <= r.hi[3] &&
			f[4] >= r.lo[4] && f[4] <= r.hi[4] {
			return int(id)
		}
	}
	return -1
}

// walk runs the internal-node traversal — the identical mask/shift/add
// datapath the accelerator implements — and returns the leaf window the
// packet lands in. Shared by the SoA and AoS classify paths, so the two
// differ only in the leaf-scan kernel.
func (e *Engine) walk(f *[rule.NumDims]uint32) leafRef {
	// The hardware's register B: the top 8 bits of every field, computed
	// once per packet instead of once per cut evaluation.
	var t8 [rule.NumDims]uint8
	t8[0] = uint8(f[0] >> 24)
	t8[1] = uint8(f[1] >> 24)
	t8[2] = uint8(f[2] >> 8)
	t8[3] = uint8(f[3] >> 8)
	t8[4] = uint8(f[4])

	ni := int32(0)
	for {
		n := &e.nodes[ni]
		idx := int32(0)
		for _, c := range e.cuts[n.cutOff : n.cutOff+n.cutLen] {
			v := uint32(t8[c.dim] & c.mask)
			if c.shift >= 0 {
				idx += int32(v >> uint(c.shift))
			} else {
				idx += int32(v << uint(-c.shift))
			}
		}
		ref := e.kids[n.kidOff+idx]
		if ref >= 0 {
			ni = ref
			continue
		}
		li := ^ref
		return e.leaves[li>>leafChunkBits][li&leafChunkMask]
	}
}

// ClassifyBatch classifies pkts[i] into out[i] for every i. It performs
// zero heap allocations; out must be at least as long as pkts.
//
//repro:hotpath
func (e *Engine) ClassifyBatch(pkts []rule.Packet, out []int32) {
	_ = out[:len(pkts)] // bounds check once; panics if out is short
	for i := range pkts {
		out[i] = int32(e.Classify(pkts[i]))
	}
}

// ClassifyBatchAoS is ClassifyBatch over the array-of-structs leaf scan
// (see ClassifyAoS); the ablation's measurement surface.
func (e *Engine) ClassifyBatchAoS(pkts []rule.Packet, out []int32) {
	_ = out[:len(pkts)]
	for i := range pkts {
		out[i] = int32(e.ClassifyAoS(pkts[i]))
	}
}

// ParallelClassify classifies pkts into out using up to workers
// goroutines over contiguous shards (workers <= 0 selects GOMAXPROCS).
// Aside from the per-call goroutine fan-out it allocates nothing; out
// must be at least as long as pkts.
func (e *Engine) ParallelClassify(pkts []rule.Packet, out []int32, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkts) {
		workers = len(pkts)
	}
	if workers <= 1 {
		e.ClassifyBatch(pkts, out)
		return
	}
	_ = out[:len(pkts)]
	chunk := (len(pkts) + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < len(pkts); start += chunk {
		end := min(start+chunk, len(pkts))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.ClassifyBatch(pkts[lo:hi], out[lo:hi])
		}(start, end)
	}
	wg.Wait()
}

// NumNodes returns the number of internal nodes in the flat image.
func (e *Engine) NumNodes() int { return len(e.nodes) }

// NumLeaves returns the number of deduplicated leaves.
func (e *Engine) NumLeaves() int { return e.numLeaves }

// NumRules returns the ruleset size.
func (e *Engine) NumRules() int { return len(e.rules) }

// MemoryBytes returns the engine's flat-image footprint: the node, cut,
// child, leaf and rule arrays plus the SoA comparator-bank arenas (the
// software counterpart of core.Tree.MemoryBytes).
func (e *Engine) MemoryBytes() int {
	return len(e.nodes)*16 + len(e.cuts)*3 + len(e.kids)*4 +
		len(e.leaves)*(leafChunkLen*8+24) + len(e.ruleIDs)*4 + len(e.rules)*40 +
		e.soa.slots()*8*rule.NumDims
}
