package engine

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// TestCachedClassifyDifferentialChurn is the cache correctness contract:
// cached classification stays packet-exact against both engine.Classify
// and core.Tree.Classify across >= 1000 randomized live Insert/Delete
// updates, for both algorithms, while reader goroutines hammer the cached
// path concurrently (run under -race in CI, this also pins the sharded
// cache and the epoch protocol as data-race free).
//
// Exactness is asserted from the updater thread after every update — the
// only point where "the" correct answer is unambiguous — over a probe set
// mixing hot repeated packets (cache hits, including entries that just
// went stale) and per-step fresh packets (misses). The concurrent readers
// assert only result validity; their answers may legitimately come from
// the epoch on either side of an in-flight update.
func TestCachedClassifyDifferentialChurn(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			rs := classbench.Generate(classbench.ACL1(), 250, 61)
			tree, err := core.Build(rs, core.DefaultConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			h := NewHandle(Compile(tree))
			cache := h.EnableCache(8192)
			pool := classbench.Generate(classbench.IPC1(), 1200, 62)
			hot := classbench.GenerateFlowTrace(rs, 64, 16, 4, 63)
			rng := rand.New(rand.NewSource(64))

			// Concurrent readers: validity checks only.
			var stop atomic.Bool
			var wg sync.WaitGroup
			var readerBad atomic.Int64
			probeTrace := classbench.GenerateFlowTrace(rs, 256, 32, 8, 65)
			maxID := tree.NumRules() + len(pool) // readers must not touch the mutating tree
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						for _, p := range probeTrace {
							if id := h.ClassifyCached(p); id < -1 || id >= maxID {
								readerBad.Store(int64(id))
								return
							}
						}
					}
				}()
			}

			const wantUpdates = 1000
			updates, inserted := 0, 0
			checkExact := func(step int) {
				// Hot packets exercise hits and freshly-staled entries;
				// the random packet exercises the miss path.
				probes := append([]rule.Packet{}, hot[:8]...)
				probes = append(probes, probeTrace[rng.Intn(len(probeTrace))])
				s := h.Current()
				for _, p := range probes {
					want := tree.Classify(p)
					if got := s.Engine().Classify(p); got != want {
						t.Fatalf("step %d: engine=%d tree=%d", step, got, want)
					}
					if got := h.ClassifyCached(p); got != want {
						t.Fatalf("step %d: cached=%d tree=%d (epoch %d)", step, got, want, s.Epoch())
					}
				}
			}
			for updates < wantUpdates {
				switch {
				case updates%10 == 9 && inserted+5 <= len(pool):
					// Coalesced burst: five inserts, one ApplyBatch, one
					// epoch.
					before := h.Current().Epoch()
					ds := make([]*core.Delta, 0, 5)
					for k := 0; k < 5; k++ {
						r := pool[inserted]
						r.ID = tree.NumRules()
						d, err := tree.InsertDelta(r)
						if err != nil {
							t.Fatalf("batch insert %d: %v", inserted, err)
						}
						inserted++
						ds = append(ds, d)
					}
					if _, err := h.ApplyBatch(ds); err != nil {
						t.Fatalf("ApplyBatch: %v", err)
					}
					if got := h.Current().Epoch(); got != before+1 {
						t.Fatalf("batch of 5 bumped epoch %d -> %d", before, got)
					}
					updates += 5
				case rng.Intn(3) == 0:
					id := rng.Intn(tree.NumRules())
					d, err := tree.DeleteDelta(id)
					if err != nil {
						t.Fatalf("delete %d: %v", id, err)
					}
					if _, err := h.Apply(d); err != nil {
						t.Fatalf("apply delete: %v", err)
					}
					updates++
				case inserted < len(pool):
					r := pool[inserted]
					r.ID = tree.NumRules()
					d, err := tree.InsertDelta(r)
					if err != nil {
						t.Fatalf("insert %d: %v", inserted, err)
					}
					inserted++
					if _, err := h.Apply(d); err != nil {
						t.Fatalf("apply insert: %v", err)
					}
					updates++
				default:
					t.Fatalf("insert pool exhausted at %d updates", updates)
				}
				checkExact(updates)
			}

			stop.Store(true)
			wg.Wait()
			if bad := readerBad.Load(); bad != 0 {
				t.Fatalf("concurrent reader observed impossible rule ID %d", bad)
			}

			// Final sweep: cached results equal both references over a
			// fresh trace, and the churn actually exercised the cache.
			// Sample from the original ruleset: tree.Rules() includes
			// deleted rules, whose emptied ranges cannot be sampled.
			final := classbench.GenerateFlowTrace(rs, 2000, 128, 8, 66)
			for i, p := range final {
				want := tree.Classify(p)
				if got := h.ClassifyCached(p); got != want {
					t.Fatalf("final packet %d: cached=%d tree=%d", i, got, want)
				}
				if got := h.Current().Engine().Classify(p); got != want {
					t.Fatalf("final packet %d: engine=%d tree=%d", i, got, want)
				}
			}
			st := cache.Stats()
			if st.Hits == 0 || st.Misses == 0 || st.StaleEvictions == 0 {
				t.Errorf("churn never exercised the cache: %+v", st)
			}
			if updates < wantUpdates {
				t.Errorf("only %d updates applied", updates)
			}
		})
	}
}

// TestApplyBatchCoalesces pins the batch-update contract: one epoch for
// the whole burst, a result packet-identical to per-delta Apply and to a
// fresh recompile, and no more arena garbage than the sequential chain.
func TestApplyBatchCoalesces(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 71)
	burst := classbench.Generate(classbench.FW1(), 40, 72)
	cfg := core.DefaultConfig(core.HyperCuts)

	// Two identical trees: one absorbs the burst for the batched handle,
	// one for the sequential reference.
	treeA, err := core.Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := core.Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hBatch := NewHandle(Compile(treeA))
	hSeq := NewHandle(Compile(treeB))

	if _, err := hBatch.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if e := hBatch.Current().Epoch(); e != 0 {
		t.Fatalf("empty batch advanced epoch to %d", e)
	}

	ds := make([]*core.Delta, 0, len(burst))
	for i := range burst {
		r := burst[i]
		r.ID = treeA.NumRules()
		d, err := treeA.InsertDelta(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ds = append(ds, d)

		r.ID = treeB.NumRules()
		dSeq, err := treeB.InsertDelta(r)
		if err != nil {
			t.Fatalf("seq insert %d: %v", i, err)
		}
		if _, err := hSeq.Apply(dSeq); err != nil {
			t.Fatalf("seq apply %d: %v", i, err)
		}
	}
	if _, err := hBatch.ApplyBatch(ds); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if e := hBatch.Current().Epoch(); e != 1 {
		t.Fatalf("burst of %d published epoch %d, want 1", len(ds), e)
	}
	if e := hSeq.Current().Epoch(); e != uint64(len(ds)) {
		t.Fatalf("sequential chain at epoch %d, want %d", e, len(ds))
	}

	trace := classbench.GenerateTrace(rs, 4000, 73)
	if err := VerifyPatched(trace, hBatch.Current().Engine(), Compile(treeA)); err != nil {
		t.Fatalf("batched vs recompile: %v", err)
	}
	if err := VerifyPatched(trace, hBatch.Current().Engine(), hSeq.Current().Engine()); err != nil {
		t.Fatalf("batched vs sequential: %v", err)
	}
	if gb, gs := hBatch.Current().Engine().GarbageRatio(), hSeq.Current().Engine().GarbageRatio(); gb > gs {
		t.Errorf("batched patch left more garbage (%.4f) than sequential (%.4f)", gb, gs)
	}
}

// TestPatchBatchOutOfOrder: a stale (already-applied) delta in a batch
// must fail without publishing a new epoch.
func TestPatchBatchOutOfOrder(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 120, 81)
	tree, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	r := classbench.Generate(classbench.IPC1(), 1, 82)[0]
	r.ID = tree.NumRules()
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ApplyBatch([]*core.Delta{d, d}); err == nil {
		t.Fatal("replaying the same insert delta twice succeeded")
	}
	if e := h.Current().Epoch(); e != 0 {
		t.Fatalf("failed batch still advanced epoch to %d", e)
	}
}
