package engine

import (
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"repro/internal/image"
	"repro/internal/rule"
)

// Engine image serialization: Snapshot walks one epoch's immutable
// arenas into the container format (internal/image) and Restore
// publishes a serving engine from it without invoking Build.
//
// What travels: the flat arenas (nodes/cuts/kids), the flattened leaf
// table, the ruleIDs pool, the rule bounds, the SoA comparator-bank
// arenas, and the kernel-independent metadata (leaf count, sentinel,
// garbage counters, the bank's sweep-order permutation).
//
// What does NOT travel, because it is host-dependent and re-derived on
// restore: the scan-kernel tag (the restoring host re-probes its own
// CPU features and stamps defaultKern) and the bank's resolved sweep
// pointers plus over-read padding (soaBank.pad() re-establishes both).
//
// Restore trusts nothing: beyond the container's checksums it
// re-validates every structural invariant the classify path relies on —
// section sizes, leaf and kid block bounds, rule-ID ranges, the
// mask/shift fan-out of every node against its child block, the
// breadth-first child>parent numbering that guarantees walk termination,
// and the SoA arenas' slot-for-slot agreement with the rule table — so
// a checksum-valid but inconsistent image fails closed with a
// *image.FormatError instead of producing a panicking or silently-wrong
// engine.
//
// On little-endian hosts both directions are zero-copy: Snapshot
// aliases the arenas as section bytes, and Restore aliases validated
// section bytes back as typed arenas (section starts are 8-aligned by
// the container). The SoA arenas are emitted before the rule table so
// an aliased arena's SIMD over-read slack (soaPadSlots) still lands
// inside the image buffer; Restore falls back to a padded copy when it
// does not. Big-endian hosts take a per-word encode/decode loop.

// Section IDs of the engine image. Frozen: any layout change bumps
// image.Version instead of reinterpreting an existing ID.
const (
	secMeta    = 1
	secNodes   = 2
	secCuts    = 3
	secKids    = 4
	secLeaves  = 5
	secRuleIDs = 6
	secRules   = 7
	// Per-dimension SoA arenas: secSoALo+d / secSoAHi+d for each
	// dimension d.
	secSoALo = 16
	secSoAHi = 24
)

// metaLen is the fixed size of the secMeta section: numLeaves u32,
// sentinel i32, deadRuleSlots u64, deadKidSlots u64, order [5]u8,
// zero pad to 8 bytes.
const metaLen = 32

// The zero-copy alias paths depend on these layouts exactly; a field
// added to any of the POD structs must bump image.Version and fails
// compilation here first.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(node{})-16]
	_ = [1]struct{}{}[unsafe.Sizeof(cut{})-3]
	_ = [1]struct{}{}[unsafe.Sizeof(leafRef{})-8]
	_ = [1]struct{}{}[unsafe.Sizeof(flatRule{})-40]
)

// hostLE reports whether this host stores integers little-endian — the
// on-disk byte order, and therefore the alias-in-place fast path.
var hostLE = func() bool {
	var x uint16 = 1
	//repro:allow unsafealias -- one-byte endianness probe of a local; package-level init cannot carry a shape annotation
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// podBytes returns the little-endian serialization of a slice whose
// element type is a padding-free struct of 32-bit words (asserted
// above). On little-endian hosts it aliases the slice's memory.
//
//repro:unsafe-shape aliases a pod []T as raw bytes; element types are asserted padding-free 32-bit-word structs
func podBytes[T any](s []T) []byte {
	size := int(unsafe.Sizeof(*new(T)))
	if len(s) == 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(s))
	if hostLE {
		return unsafe.Slice((*byte)(p), len(s)*size)
	}
	// Big-endian: fields are native-order 32-bit words in declaration
	// order, so serializing each word little-endian is exactly the
	// on-disk layout.
	//repro:allow unsafealias -- p is the backing store of []T whose elements are 32-bit words: 4-byte aligned by the allocator
	words := unsafe.Slice((*uint32)(p), len(s)*size/4)
	out := make([]byte, len(words)*4)
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[i*4:], w)
	}
	return out
}

// podSlice decodes a section of padding-free 32-bit-word structs,
// aliasing the section bytes in place on aligned little-endian hosts
// and copying otherwise. The caller has validated len(data) is a
// multiple of the element size.
//
//repro:unsafe-shape aliases section bytes as []T behind an explicit alignment guard; copies when misaligned
func podSlice[T any](data []byte) []T {
	size := int(unsafe.Sizeof(*new(T)))
	n := len(data) / size
	if n == 0 {
		return nil
	}
	p := unsafe.Pointer(unsafe.SliceData(data))
	if hostLE && uintptr(p)%unsafe.Alignof(*new(T)) == 0 {
		return unsafe.Slice((*T)(p), n)
	}
	out := make([]T, n)
	words := unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(out))), n*size/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

// cutBytes / cutSlice handle the 3-byte cut entries, which are
// endianness-free (three single-byte fields) and so alias both ways on
// any host.
//
//repro:unsafe-shape aliases the 3-byte cut entries as raw bytes; cut has byte alignment
func cutBytes(s []cut) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*3)
}

//repro:unsafe-shape aliases section bytes as []cut; cut has byte alignment so any offset is valid
func cutSlice(data []byte) []cut {
	n := len(data) / 3
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*cut)(unsafe.Pointer(unsafe.SliceData(data))), n)
}

// arenaPadLen is the dedicated over-read slack appended to every SoA
// arena section: soaPadSlots zeroed slots, CRC-covered like the rest of
// the section. Restore aliases arena+slack entirely within the
// section's own bytes, so the SIMD over-read contract holds without
// borrowing a neighboring section's data — and a later Patch appending
// into the slack (the same thing pad()-managed live arenas allow)
// can only touch bytes this arena owns.
const arenaPadLen = soaPadSlots * 4

// arenaBytes serializes one SoA arena followed by its dedicated zeroed
// slack. Unlike the other pools this always copies: the live arena's
// own capacity slack holds garbage, and the image must be
// deterministic, zero-padded bytes.
//
//repro:unsafe-shape reads an aligned live arena as bytes for the copy-out; never aliased into the image
func arenaBytes(a []uint32) []byte {
	out := make([]byte, len(a)*4+arenaPadLen)
	if hostLE && len(a) > 0 {
		copy(out, unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(a))), len(a)*4))
	} else {
		for i, w := range a {
			binary.LittleEndian.PutUint32(out[i*4:], w)
		}
	}
	return out
}

// arenaSlice decodes one SoA arena section (slots plus dedicated
// slack), aliasing it in place on aligned little-endian hosts with the
// slack as capacity — exactly the cap-len >= soaPadSlots contract
// soaBank.pad() establishes, so pad() never reallocates a restored
// bank. The caller has validated len(data) >= arenaPadLen and
// 4-divisibility.
//
//repro:unsafe-shape aliases arena section bytes as []uint32 behind an explicit mod-4 guard; copies when misaligned
func arenaSlice(data []byte) []uint32 {
	n := (len(data) - arenaPadLen) / 4
	if n > 0 && hostLE {
		p := unsafe.Pointer(unsafe.SliceData(data))
		if uintptr(p)%4 == 0 {
			return unsafe.Slice((*uint32)(p), n+soaPadSlots)[:n]
		}
	}
	out := make([]uint32, n, n+soaPadSlots)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return out
}

// Snapshot serializes this engine — one epoch's immutable image — into
// the versioned, checksummed container format and writes it to w,
// returning the number of bytes written. The engine is immutable, so
// Snapshot is safe concurrently with classification and with patches
// deriving later epochs.
func (e *Engine) Snapshot(w io.Writer) (int64, error) {
	meta := make([]byte, metaLen)
	binary.LittleEndian.PutUint32(meta[0:4], uint32(e.numLeaves))
	binary.LittleEndian.PutUint32(meta[4:8], uint32(e.sentinel))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(e.deadRuleSlots))
	binary.LittleEndian.PutUint64(meta[16:24], uint64(e.deadKidSlots))
	copy(meta[24:24+rule.NumDims], e.soa.order[:])

	flat := make([]leafRef, e.numLeaves)
	for i := range flat {
		flat[i] = e.leafAt(int32(i))
	}

	secs := make([]image.Section, 0, 7+2*rule.NumDims)
	secs = append(secs,
		image.Section{ID: secMeta, Data: meta},
		image.Section{ID: secNodes, Data: podBytes(e.nodes)},
		image.Section{ID: secCuts, Data: cutBytes(e.cuts)},
		image.Section{ID: secKids, Data: podBytes(e.kids)},
		image.Section{ID: secLeaves, Data: podBytes(flat)},
		image.Section{ID: secRuleIDs, Data: podBytes(e.ruleIDs)},
	)
	for d := 0; d < rule.NumDims; d++ {
		secs = append(secs, image.Section{ID: secSoALo + uint32(d), Data: arenaBytes(e.soa.lo[d])})
	}
	for d := 0; d < rule.NumDims; d++ {
		secs = append(secs, image.Section{ID: secSoAHi + uint32(d), Data: arenaBytes(e.soa.hi[d])})
	}
	secs = append(secs, image.Section{ID: secRules, Data: podBytes(e.rules)})
	return image.Write(w, secs)
}

func imgErr(sec uint32, format string, args ...any) error {
	return &image.FormatError{Offset: -1, Section: sec, Msg: fmt.Sprintf(format, args...)}
}

// RestoreEngine decodes and validates an engine image, returning a
// ready-to-serve Engine. Every failure — container corruption or an
// engine-level invariant violation — is a *image.FormatError; on
// success the engine is re-stamped for this host (scan kernel, SoA
// sweep pointers and padding) and is safe for immediate concurrent
// classification and for further patching via Patch/PatchBatch.
func RestoreEngine(r io.Reader) (*Engine, error) {
	secs, err := image.Read(r)
	if err != nil {
		return nil, err
	}
	return restoreSections(secs)
}

// RestoreEngineBytes is RestoreEngine over an image already in memory
// (mapped file, os.ReadFile, in-process snapshot): the restored
// engine's arenas alias b on little-endian hosts, so the whole restore
// allocates only the chunked leaf table. b must not be mutated while
// the engine is alive.
func RestoreEngineBytes(b []byte) (*Engine, error) {
	secs, err := image.ReadBytes(b)
	if err != nil {
		return nil, err
	}
	return restoreSections(secs)
}

// RestoreBytes is Restore over an in-memory image (see
// RestoreEngineBytes for the aliasing contract).
func RestoreBytes(b []byte) (*Handle, error) {
	e, err := RestoreEngineBytes(b)
	if err != nil {
		return nil, err
	}
	return NewHandle(e), nil
}

//repro:arena-writer installs restored arenas into a brand-new unpublished engine
func restoreSections(secs []image.Section) (*Engine, error) {
	byID := make(map[uint32][]byte, len(secs))
	for _, s := range secs {
		byID[s.ID] = s.Data
	}
	want := 7 + 2*rule.NumDims
	if len(secs) != want {
		return nil, imgErr(0, "engine image has %d sections, want %d", len(secs), want)
	}
	need := func(id uint32, elem int, what string) ([]byte, error) {
		d, ok := byID[id]
		if !ok {
			return nil, imgErr(id, "missing %s section", what)
		}
		if len(d)%elem != 0 {
			return nil, imgErr(id, "%s section length %d is not a multiple of %d", what, len(d), elem)
		}
		return d, nil
	}

	meta, ok := byID[secMeta]
	if !ok || len(meta) != metaLen {
		return nil, imgErr(secMeta, "missing or missized metadata section")
	}
	numLeaves := int32(binary.LittleEndian.Uint32(meta[0:4]))
	sentinel := int32(binary.LittleEndian.Uint32(meta[4:8]))
	deadRuleSlots := binary.LittleEndian.Uint64(meta[8:16])
	deadKidSlots := binary.LittleEndian.Uint64(meta[16:24])
	var order [rule.NumDims]uint8
	copy(order[:], meta[24:24+rule.NumDims])
	for _, b := range meta[24+rule.NumDims:] {
		if b != 0 {
			return nil, imgErr(secMeta, "nonzero metadata padding")
		}
	}
	var seenDim [rule.NumDims]bool
	for _, d := range order {
		if int(d) >= rule.NumDims || seenDim[d] {
			return nil, imgErr(secMeta, "sweep order %v is not a permutation of the dimensions", order)
		}
		seenDim[d] = true
	}

	nodesB, err := need(secNodes, 16, "node")
	if err != nil {
		return nil, err
	}
	cutsB, err := need(secCuts, 3, "cut")
	if err != nil {
		return nil, err
	}
	kidsB, err := need(secKids, 4, "kid")
	if err != nil {
		return nil, err
	}
	leavesB, err := need(secLeaves, 8, "leaf table")
	if err != nil {
		return nil, err
	}
	ruleIDsB, err := need(secRuleIDs, 4, "rule-ID pool")
	if err != nil {
		return nil, err
	}
	rulesB, err := need(secRules, 40, "rule table")
	if err != nil {
		return nil, err
	}

	e := &Engine{
		nodes:         podSlice[node](nodesB),
		cuts:          cutSlice(cutsB),
		kids:          podSlice[int32](kidsB),
		ruleIDs:       podSlice[int32](ruleIDsB),
		rules:         podSlice[flatRule](rulesB),
		sentinel:      sentinel,
		deadRuleSlots: int(deadRuleSlots),
		deadKidSlots:  int(deadKidSlots),
		kern:          defaultKern, // host-dependent: never restored
	}
	flat := podSlice[leafRef](leavesB)
	slots := len(e.ruleIDs)
	arena := func(id uint32, what string) ([]uint32, error) {
		b, err := need(id, 4, what)
		if err != nil {
			return nil, err
		}
		if len(b) != slots*4+arenaPadLen {
			return nil, imgErr(id, "%s section has %d bytes, want %d slots plus %d-byte slack", what, len(b), slots, arenaPadLen)
		}
		for _, pb := range b[slots*4:] {
			if pb != 0 {
				return nil, imgErr(id, "%s over-read slack is not zeroed", what)
			}
		}
		return arenaSlice(b), nil
	}
	for d := 0; d < rule.NumDims; d++ {
		if e.soa.lo[d], err = arena(secSoALo+uint32(d), "SoA lo"); err != nil {
			return nil, err
		}
		if e.soa.hi[d], err = arena(secSoAHi+uint32(d), "SoA hi"); err != nil {
			return nil, err
		}
	}
	e.soa.order = order

	if err := e.validateRestored(flat, numLeaves, deadRuleSlots, deadKidSlots); err != nil {
		return nil, err
	}
	e.setLeaves(flat)
	e.soa.pad()
	return e, nil
}

// Restore decodes an engine image and publishes it as a serving Handle
// epoch — the replica cold-start path: no Build, no Compile, ready for
// Classify and for catch-up deltas via ApplyBatch.
func Restore(r io.Reader) (*Handle, error) {
	e, err := RestoreEngine(r)
	if err != nil {
		return nil, err
	}
	return NewHandle(e), nil
}

// validateRestored checks every structural invariant the classify path
// depends on, so that a checksum-valid but inconsistent image can never
// panic the walk or scan. The checks mirror what Compile guarantees by
// construction:
//
//   - every node's cut and kid block lies inside its pool, and the
//     node's maximum mask/shift fan-out stays inside its kid block (the
//     walk computes child indexes exactly from these fields);
//   - every internal child reference points strictly forward (layout()
//     numbers nodes breadth-first and patches never rewrite internal
//     refs, so child > parent holds for every valid image — and it is
//     what bounds the walk: indexes strictly increase, so traversal
//     terminates);
//   - every leaf window lies inside the rule-ID pool and every pooled
//     rule ID indexes the rule table;
//   - the SoA arenas agree slot-for-slot with the rule table through
//     the pool (the bank is derived state; disagreement means a forged
//     or torn image that would classify silently wrong).
func (e *Engine) validateRestored(flat []leafRef, numLeaves int32, deadRuleSlots, deadKidSlots uint64) error {
	if int(numLeaves) != len(flat) {
		return imgErr(secMeta, "metadata says %d leaves, leaf table has %d", numLeaves, len(flat))
	}
	if len(e.nodes) == 0 || len(flat) == 0 {
		return imgErr(secNodes, "engine image has no root node or no leaves")
	}
	if e.sentinel < -1 || e.sentinel >= numLeaves {
		return imgErr(secMeta, "sentinel leaf %d out of range [-1,%d)", e.sentinel, numLeaves)
	}
	if deadRuleSlots > uint64(len(e.ruleIDs)) || deadKidSlots > uint64(len(e.kids)) {
		return imgErr(secMeta, "garbage counters exceed pool sizes")
	}
	nCuts, nKids, nNodes := int64(len(e.cuts)), int64(len(e.kids)), int64(len(e.nodes))
	for i := range e.nodes {
		n := &e.nodes[i]
		if n.cutOff < 0 || n.cutLen < 0 || int64(n.cutOff)+int64(n.cutLen) > nCuts {
			return imgErr(secNodes, "node %d cut block [%d,+%d) outside cut pool of %d", i, n.cutOff, n.cutLen, nCuts)
		}
		if n.kidOff < 0 || n.kidLen < 0 || int64(n.kidOff)+int64(n.kidLen) > nKids {
			return imgErr(secNodes, "node %d kid block [%d,+%d) outside kid pool of %d", i, n.kidOff, n.kidLen, nKids)
		}
		// The walk's child index is the sum of per-cut contributions;
		// each is maximized at v = mask (uint32 shift semantics match
		// walk exactly, including truncating left shifts). The sum must
		// stay inside the kid block — this also forces kidLen >= 1.
		var maxIdx int64
		for _, c := range e.cuts[n.cutOff : n.cutOff+n.cutLen] {
			if int(c.dim) >= rule.NumDims {
				return imgErr(secCuts, "node %d cuts dimension %d", i, c.dim)
			}
			v := uint32(c.mask)
			var contrib uint32
			if c.shift >= 0 {
				contrib = v >> uint(c.shift)
			} else {
				contrib = v << uint(-c.shift)
			}
			maxIdx += int64(contrib)
		}
		if maxIdx >= int64(n.kidLen) {
			return imgErr(secNodes, "node %d fan-out %d exceeds kid block of %d", i, maxIdx+1, n.kidLen)
		}
		for _, ref := range e.kids[n.kidOff : n.kidOff+n.kidLen] {
			if ref >= 0 {
				if int64(ref) >= nNodes {
					return imgErr(secKids, "node %d child %d outside node table of %d", i, ref, nNodes)
				}
				if int(ref) <= i {
					return imgErr(secKids, "node %d child %d breaks breadth-first order (walk would not terminate)", i, ref)
				}
			} else if ^ref >= numLeaves {
				return imgErr(secKids, "node %d leaf child %d outside leaf table of %d", i, ^ref, numLeaves)
			}
		}
	}
	nIDs := int64(len(e.ruleIDs))
	for i, l := range flat {
		if l.off < 0 || l.n < 0 || int64(l.off)+int64(l.n) > nIDs {
			return imgErr(secLeaves, "leaf %d window [%d,+%d) outside rule-ID pool of %d", i, l.off, l.n, nIDs)
		}
	}
	// Pool and SoA validation fused into one pass, branchless in the
	// hot path: per slot, a wraparound bounds check on the pooled rule
	// ID and an XOR-accumulated slot-for-slot comparison of the five
	// lo/hi arena streams against the 40-byte rule row. The arenas are
	// derived state; disagreement means a forged or torn image that
	// would classify silently wrong. This loop is most of restore's CPU
	// budget, hence the shape (restore latency is the feature).
	nRules := uint32(len(e.rules))
	slots := len(e.ruleIDs)
	lo0, lo1, lo2, lo3, lo4 := e.soa.lo[0][:slots], e.soa.lo[1][:slots], e.soa.lo[2][:slots], e.soa.lo[3][:slots], e.soa.lo[4][:slots]
	hi0, hi1, hi2, hi3, hi4 := e.soa.hi[0][:slots], e.soa.hi[1][:slots], e.soa.hi[2][:slots], e.soa.hi[3][:slots], e.soa.hi[4][:slots]
	for i, id := range e.ruleIDs {
		if uint32(id) >= nRules {
			return imgErr(secRuleIDs, "pool slot %d holds rule ID %d, table has %d", i, id, nRules)
		}
		r := &e.rules[id]
		diff := (lo0[i] ^ r.lo[0]) | (hi0[i] ^ r.hi[0]) |
			(lo1[i] ^ r.lo[1]) | (hi1[i] ^ r.hi[1]) |
			(lo2[i] ^ r.lo[2]) | (hi2[i] ^ r.hi[2]) |
			(lo3[i] ^ r.lo[3]) | (hi3[i] ^ r.hi[3]) |
			(lo4[i] ^ r.lo[4]) | (hi4[i] ^ r.hi[4])
		if diff != 0 {
			return imgErr(secSoALo, "SoA arena slot %d disagrees with rule %d", i, id)
		}
	}
	return nil
}

// LayoutEqual reports whether two engines describe byte-identical
// classification structure: same nodes, cuts, kid blocks, leaf table,
// pool and rule bounds. Host-derived state (scan kernel, SoA sweep
// pointers) and garbage counters are excluded. The facade uses it to
// reconcile a restored image against a background rebuild.
func (e *Engine) LayoutEqual(o *Engine) bool {
	if e.numLeaves != o.numLeaves || e.sentinel != o.sentinel ||
		len(e.nodes) != len(o.nodes) || len(e.cuts) != len(o.cuts) ||
		len(e.kids) != len(o.kids) || len(e.ruleIDs) != len(o.ruleIDs) ||
		len(e.rules) != len(o.rules) {
		return false
	}
	for i := range e.nodes {
		if e.nodes[i] != o.nodes[i] {
			return false
		}
	}
	for i := range e.cuts {
		if e.cuts[i] != o.cuts[i] {
			return false
		}
	}
	for i := range e.kids {
		if e.kids[i] != o.kids[i] {
			return false
		}
	}
	for i := range e.ruleIDs {
		if e.ruleIDs[i] != o.ruleIDs[i] {
			return false
		}
	}
	for i := range e.rules {
		if e.rules[i] != o.rules[i] {
			return false
		}
	}
	for i := int32(0); i < int32(e.numLeaves); i++ {
		if e.leafAt(i) != o.leafAt(i) {
			return false
		}
	}
	return true
}
