package engine

import (
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// Tests of the kernel-dispatch layer (soa_dispatch.go) and the
// SIMD/portable differential contract. Everything here runs identically
// under -tags=purego: nativeKernelOK is then false, so the native legs
// degrade to portable-vs-portable instead of being skipped.

// TestKernelDispatch pins the selection surface: the portable kernel is
// always available, WithKernel round-trips, and unsatisfiable requests
// fail loudly (SetDefaultKernel) while the env fallback degrades.
func TestKernelDispatch(t *testing.T) {
	ks := Kernels()
	if len(ks) == 0 || ks[0] != KernelPortable {
		t.Fatalf("Kernels() = %v, want portable first", ks)
	}
	if nativeKernelOK != (len(ks) == 2) {
		t.Fatalf("Kernels() = %v but nativeKernelOK = %v", ks, nativeKernelOK)
	}
	t.Logf("kernels=%v default=%s", ks, DefaultKernel())

	rs := classbench.Generate(classbench.ACL1(), 300, 5)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	if e.Kernel() != DefaultKernel() {
		t.Fatalf("Compile stamped %q, default is %q", e.Kernel(), DefaultKernel())
	}
	pe, err := e.WithKernel(KernelPortable)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Kernel() != KernelPortable {
		t.Fatalf("WithKernel(portable).Kernel() = %q", pe.Kernel())
	}
	if _, err := e.WithKernel("no-such-kernel"); err == nil {
		t.Fatal("WithKernel accepted an unknown kernel name")
	}
	if err := SetDefaultKernel("no-such-kernel"); err == nil {
		t.Fatal("SetDefaultKernel accepted an unknown kernel name")
	}
	if nativeKernelOK {
		ne, err := e.WithKernel("native")
		if err != nil {
			t.Fatal(err)
		}
		if ne.Kernel() != nativeKernelName {
			t.Fatalf("WithKernel(native).Kernel() = %q, want %q", ne.Kernel(), nativeKernelName)
		}
	} else if _, err := e.WithKernel("native"); err == nil {
		t.Fatal("WithKernel(native) succeeded without a native kernel")
	}

	// The stamp survives patching: a snapshot chain never changes kernels.
	r := rs[0]
	r.ID = tree.NumRules()
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := pe.Patch(d)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Kernel() != KernelPortable {
		t.Fatalf("patched snapshot kernel = %q, want the receiver's %q", pp.Kernel(), KernelPortable)
	}
}

// TestScanKernelsPatchedRace drives concurrent snapshot readers — on
// every available kernel — against a live patch churn. Under -race this
// pins the SIMD over-read contract: the kernels read up to soaPadSlots
// past a snapshot's arena length, into pad slots the updater may
// concurrently be appending to, and that must stay invisible (masked
// lanes, uninstrumented reads) while the answers stay packet-exact.
func TestScanKernelsPatchedRace(t *testing.T) {
	const seed = 31
	rs := classbench.Generate(classbench.ACL1(), 500, seed)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	trace := classbench.GenerateTrace(rs, 512, seed+1)
	pool := classbench.Generate(classbench.FW1(), 256, seed+2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, k := range Kernels() {
		wg.Add(1)
		go func(kernel string) {
			defer wg.Done()
			out := make([]int32, len(trace))
			want := make([]int32, len(trace))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := h.Current().Engine()
				ke, err := e.WithKernel(kernel)
				if err != nil {
					t.Error(err)
					return
				}
				ke.ClassifyBatch(trace, out)
				e.ClassifyBatchAoS(trace, want)
				for i := range out {
					if out[i] != want[i] {
						t.Errorf("kernel %s packet %d: got %d, AoS oracle %d", kernel, i, out[i], want[i])
						return
					}
				}
			}
		}(k)
	}

	rng := rand.New(rand.NewSource(seed + 3))
	for step := 0; step < 150; step++ {
		var d *core.Delta
		if rng.Intn(3) == 0 && tree.NumRules() > 1 {
			d, err = tree.DeleteDelta(rng.Intn(tree.NumRules()))
			if err != nil {
				continue
			}
		} else {
			r := pool[rng.Intn(len(pool))]
			r.ID = tree.NumRules()
			d, err = tree.InsertDelta(r)
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := h.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// selectiveRule builds a rule that is exact-match in dimension dim and
// wildcard everywhere else.
func selectiveRule(id int, dim int, v uint32) rule.Rule {
	var r rule.Rule
	r.ID = id
	for d := 0; d < rule.NumDims; d++ {
		r.F[d] = rule.Range{Lo: 0, Hi: uint32(1)<<rule.DimBits[d] - 1}
	}
	r.F[dim] = rule.Range{Lo: v, Hi: v}
	return r
}

// TestOrderRecomputedOnRecompile pins the order lifecycle documented on
// soaBank.order: patch churn appends windows under the stale
// compile-time sweep order (by design), and the next recompile
// re-measures selectivity over the then-current arenas and restores the
// live ranking.
func TestOrderRecomputedOnRecompile(t *testing.T) {
	// Start with a ruleset selective only in dimension 0.
	var rs rule.RuleSet
	for i := 0; i < 60; i++ {
		rs = append(rs, selectiveRule(i, 0, uint32(i)<<24))
	}
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	if got := e.soa.order[0]; got != 0 {
		t.Fatalf("compile-time order ranks dim %d first, want 0 (order %v)", got, e.soa.order)
	}
	orig := e.soa.order

	// Churn: flood the table with rules selective only in dimension 4,
	// swamping dimension 0's selectivity count.
	for i := 0; i < 400; i++ {
		d, err := tree.InsertDelta(selectiveRule(tree.NumRules(), 4, uint32(i%200)))
		if err != nil {
			t.Fatal(err)
		}
		if e, err = e.Patch(d); err != nil {
			t.Fatal(err)
		}
	}
	if e.soa.order != orig {
		t.Fatalf("patch churn changed the sweep order %v -> %v; patches must keep the stale order", orig, e.soa.order)
	}
	// The stale order is now wrong for the live arenas...
	live := e.soa
	live.computeOrder()
	if live.order[0] != 4 {
		t.Fatalf("churned arenas rank dim %d first, want 4 (order %v) — test premise broken", live.order[0], live.order)
	}
	// ...and a recompile restores the live ranking.
	tree.Relayout()
	fresh := Compile(tree)
	if fresh.soa.order[0] != 4 {
		t.Fatalf("recompile ranks dim %d first, want 4 (order %v)", fresh.soa.order[0], fresh.soa.order)
	}
	trace := classbench.GenerateTrace(rs, 1000, 9)
	checkScanIdentity(t, fresh, trace)
}

// TestSoaPad pins the over-read contract every publish point must
// uphold: at least soaPadSlots of capacity slack past each arena's
// length, on fresh compiles and across patch batches.
func TestSoaPad(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 400, 3)
	tree, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	checkPad := func(stage string, b *soaBank) {
		t.Helper()
		for d := 0; d < rule.NumDims; d++ {
			if cap(b.lo[d])-len(b.lo[d]) < soaPadSlots || cap(b.hi[d])-len(b.hi[d]) < soaPadSlots {
				t.Fatalf("%s: dim %d arena slack lo=%d hi=%d, want >= %d",
					stage, d, cap(b.lo[d])-len(b.lo[d]), cap(b.hi[d])-len(b.hi[d]), soaPadSlots)
			}
		}
	}
	checkPad("compile", &e.soa)
	pool := classbench.Generate(classbench.FW1(), 64, 4)
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatal(err)
		}
		if e, err = e.Patch(d); err != nil {
			t.Fatal(err)
		}
		checkPad("patch", &e.soa)
	}
}

// edgeVal maps one fuzz byte to a value that exercises the comparator's
// interesting regions: small values, mid-bit and high-bit values, and
// the wraparound neighbourhood of ^0.
func edgeVal(a byte) uint32 {
	v := uint32(a & 0x3F)
	switch a >> 6 {
	case 0:
		return v
	case 1:
		return v << 13
	case 2:
		return v << 26
	default:
		return ^uint32(0) - v
	}
}

// fuzzWindow decodes fuzz bytes into a comparator bank, a scan window
// [off, off+n) within it, and a packet field vector. The byte scheme
// (consumed in order, zero past the end):
//
//	[0]         total slots - 1 (mod 96)
//	[1]         window offset (mod total) — exercises non-zero bases,
//	            the shape the peel hands the kernels
//	then per slot, per dimension: one byte 0xFF = wildcard slot-dim,
//	otherwise that byte is the lo seed and one more byte the span seed
//	(saturating), both through edgeVal
//	then 5 bytes: packet fields through edgeVal
//
//repro:arena-writer test fixture: builds a private bank that is never published to a snapshot
func fuzzWindow(data []byte) (b *soaBank, off, n int32, f [rule.NumDims]uint32) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		v := data[pos]
		pos++
		return v
	}
	total := int32(1 + int(next())%96)
	off = int32(int(next()) % int(total))
	n = total - off
	b = &soaBank{}
	for i := int32(0); i < total; i++ {
		for d := 0; d < rule.NumDims; d++ {
			a := next()
			if a == 0xFF {
				b.lo[d] = append(b.lo[d], 0)
				b.hi[d] = append(b.hi[d], ^uint32(0))
				continue
			}
			lo := edgeVal(a)
			hi := lo + edgeVal(next())
			if hi < lo {
				hi = ^uint32(0)
			}
			b.lo[d] = append(b.lo[d], lo)
			b.hi[d] = append(b.hi[d], hi)
		}
	}
	for d := 0; d < rule.NumDims; d++ {
		f[d] = edgeVal(next())
	}
	b.computeOrder()
	b.pad()
	return
}

// FuzzScanKernels is the kernel equivalence fuzz: random windows and
// packets through the scalar sweep, the mask-form scan, and the active
// SIMD kernel must agree slot-for-slot with a one-comparator-at-a-time
// model. The committed corpus (testdata/fuzz/FuzzScanKernels) covers the
// peel boundaries (portable and native cutoffs), the block boundaries
// (15/16/17 and 63/64/65 slots), and all-wildcard dimensions.
func FuzzScanKernels(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		b, off, n, fields := fuzzWindow(data)

		// One comparator at a time: the reference for everything below.
		want := int32(-1)
		for i := off; i < off+n; i++ {
			all := uint64(1)
			for d := 0; d < rule.NumDims; d++ {
				all &= rangeBit(fields[d], b.lo[d][i], b.hi[d][i])
			}
			if all == 1 && want < 0 {
				want = i - off
			}
		}

		// sweep: slot-for-slot per dimension, over mask-width chunks.
		for d := 0; d < rule.NumDims; d++ {
			for base := off; base < off+n; base += 64 {
				bl := off + n - base
				if bl > 64 {
					bl = 64
				}
				m := sweep(fields[d], b.lo[d][base:base+bl], b.hi[d][base:base+bl])
				for j := int32(0); j < bl; j++ {
					if (m>>uint(j))&1 != rangeBit(fields[d], b.lo[d][base+j], b.hi[d][base+j]) {
						t.Fatalf("sweep dim %d slot %d: mask bit %d, comparator %d",
							d, base+j, (m>>uint(j))&1, rangeBit(fields[d], b.lo[d][base+j], b.hi[d][base+j]))
					}
				}
			}
		}

		if got := b.scan(off, n, &fields); got != want {
			t.Fatalf("scan(off=%d, n=%d) = %d, want %d", off, n, got, want)
		}
		if nativeKernelOK {
			if got := b.scanSIMD(off, n, &fields); got != want {
				t.Fatalf("scanSIMD(off=%d, n=%d) = %d, want %d (kernel %s)", off, n, got, want, nativeKernelName)
			}
		}
	})
}

// TestResolveKernFallback pins the env-override degrade contract: an
// unsatisfiable REPRO_SCAN_KERNEL keeps the silent-continue semantics
// (the probed default is used, resolution never fails) but the degrade
// is reported — resolveKern returns a non-empty reason, which init logs
// once and KernelFallback exposes for the facade's telemetry.
func TestResolveKernFallback(t *testing.T) {
	probed := kernPortable
	if nativeKernelOK {
		probed = kernNative
	}

	if k, msg := resolveKern(""); k != probed || msg != "" {
		t.Fatalf("resolveKern(\"\") = (%d, %q), want probed default %d with no fallback", k, msg, probed)
	}
	if k, msg := resolveKern(KernelPortable); k != kernPortable || msg != "" {
		t.Fatalf("resolveKern(portable) = (%d, %q), want honored", k, msg)
	}
	k, msg := resolveKern("no-such-kernel")
	if k != probed {
		t.Fatalf("unknown override resolved to kernel %d, want probed default %d", k, probed)
	}
	if msg == "" {
		t.Fatal("unknown override degraded silently: resolveKern returned no fallback reason")
	}
	for _, want := range []string{ScanKernelEnv, "no-such-kernel", kernName(probed)} {
		if !strings.Contains(msg, want) {
			t.Errorf("fallback reason %q does not mention %q", msg, want)
		}
	}
	if !nativeKernelOK {
		// On a CPU/build without the SIMD kernel, "native" is the
		// satisfiability (not spelling) flavor of the same degrade.
		if k, msg := resolveKern("native"); k != kernPortable || msg == "" {
			t.Fatalf("resolveKern(native) without SIMD = (%d, %q), want portable with a reason", k, msg)
		}
	}

	// The process-level state agrees with a fresh resolution of the
	// actual environment (both ran the same pure function).
	wantK, wantMsg := resolveKern(os.Getenv(ScanKernelEnv))
	if defaultKern != wantK && KernelFallback() != wantMsg {
		// defaultKern may have been moved by SetDefaultKernel in other
		// tests; the fallback record never changes after init.
		t.Fatalf("KernelFallback() = %q, want %q", KernelFallback(), wantMsg)
	}
}
