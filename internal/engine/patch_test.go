package engine

import (
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/rule"
)

// TestPatchDifferentialRandom drives a long randomized Insert/Delete
// sequence through the delta/Patch pipeline and checks, packet-exact,
// that the patched engine equals a fresh Compile of the same tree and
// the ground-truth first-match semantics — for both algorithms. Seeds
// are part of every failure message so a failing sequence replays.
func TestPatchDifferentialRandom(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, seed := range []int64{1, 42, 2008} {
			t.Run(algo.String(), func(t *testing.T) {
				runPatchDifferential(t, algo, seed)
			})
		}
	}
}

func runPatchDifferential(t *testing.T, algo core.Algorithm, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rs := classbench.Generate(classbench.ACL1(), 250, seed)
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	eng := Compile(tree)

	// Pool of rules to insert, from a different profile so inserts cross
	// existing cut boundaries.
	pool := classbench.Generate(classbench.FW1(), 120, seed+1)
	inserted := 0
	live := append(rule.RuleSet{}, rs...)
	deleted := map[int]bool{}

	expect := func(p rule.Packet) int {
		for i := range live {
			if deleted[live[i].ID] {
				continue
			}
			if live[i].Matches(p) {
				return live[i].ID
			}
		}
		return -1
	}

	const ops = 120
	for op := 0; op < ops; op++ {
		if inserted < len(pool) && (rng.Intn(10) < 6 || len(live) == len(deleted)) {
			r := pool[inserted]
			r.ID = len(live)
			inserted++
			d, err := tree.InsertDelta(r)
			if err != nil {
				t.Fatalf("seed %d op %d: insert: %v", seed, op, err)
			}
			live = append(live, r)
			if eng, err = eng.Patch(d); err != nil {
				t.Fatalf("seed %d op %d: patch insert: %v", seed, op, err)
			}
		} else {
			id := rng.Intn(len(live))
			d, err := tree.DeleteDelta(id)
			if err != nil {
				t.Fatalf("seed %d op %d: delete %d: %v", seed, op, id, err)
			}
			deleted[id] = true
			if eng, err = eng.Patch(d); err != nil {
				t.Fatalf("seed %d op %d: patch delete %d: %v", seed, op, id, err)
			}
		}

		if op%20 != ops%20 && op != ops-1 {
			continue
		}
		// Packet-exact cross-check: patched engine vs fresh recompile of
		// the same tree vs ground truth.
		fresh := Compile(tree)
		trace := classbench.GenerateTrace(live, 1200, seed+int64(op))
		for i, p := range trace {
			got := eng.Classify(p)
			if want := fresh.Classify(p); got != want {
				t.Fatalf("seed %d op %d packet %d: patched=%d fresh=%d", seed, op, i, got, want)
			}
			if want := expect(p); got != want {
				t.Fatalf("seed %d op %d packet %d: patched=%d ground-truth=%d", seed, op, i, got, want)
			}
		}
	}
	if eng.GarbageRatio() <= 0 {
		t.Errorf("seed %d: %d updates produced no patch garbage", seed, ops)
	}
}

// TestPatchSharesUnchangedSegments pins the copy-on-write contract: a
// delete that edits no kid blocks shares nodes, cuts and kids with its
// parent snapshot, and patched snapshots never disturb what a previously
// captured snapshot returns.
func TestPatchSharesUnchangedSegments(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 7)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e0 := Compile(tree)
	trace := classbench.GenerateTrace(rs, 2000, 8)
	before := make([]int32, len(trace))
	e0.ClassifyBatch(trace, before)

	d, err := tree.DeleteDelta(3)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := e0.Patch(d)
	if err != nil {
		t.Fatal(err)
	}
	if &e1.nodes[0] != &e0.nodes[0] {
		t.Error("delete copied the nodes segment")
	}
	if len(e1.cuts) > 0 && &e1.cuts[0] != &e0.cuts[0] {
		t.Error("patch copied the cuts segment")
	}

	// The old snapshot still answers exactly as before the update.
	after := make([]int32, len(trace))
	e0.ClassifyBatch(trace, after)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("packet %d: captured snapshot changed from %d to %d after patch", i, before[i], after[i])
		}
	}
	// And the new one reflects the delete.
	for i, p := range trace {
		if before[i] == 3 && e1.Classify(p) == 3 {
			t.Fatalf("packet %d still matches deleted rule on patched snapshot", i)
		}
	}
}

// TestPatchRejectsOutOfOrder pins the delta-ordering contract.
func TestPatchRejectsOutOfOrder(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 100, 9)
	tree, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	e0 := Compile(tree)
	r := rule.New(len(rs), 0, 0, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := e0.Patch(d)
	if err != nil {
		t.Fatalf("in-order patch failed: %v", err)
	}
	if _, err := e1.Patch(d); err == nil {
		t.Error("replaying an already-applied insert delta was accepted")
	}
}
