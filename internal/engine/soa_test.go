package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/rule"
)

// Differential identity of the SoA comparator-bank leaf scan against the
// AoS early-exit scan: the correctness spine of the layout change. Every
// test compares Classify (peel + prefilter + verify), ClassifyAoS (pure
// AoS) and soa.scan (the pure five-sweep mask kernel) packet by packet.

// soaFields converts a packet to the scan kernels' field vector.
func soaFields(p rule.Packet) [rule.NumDims]uint32 {
	return [rule.NumDims]uint32{p.SrcIP, p.DstIP, uint32(p.SrcPort), uint32(p.DstPort), uint32(p.Proto)}
}

// checkScanIdentity walks every packet and compares the three scan
// implementations on the exact window the walk lands in.
func checkScanIdentity(t *testing.T, e *Engine, trace []rule.Packet) {
	t.Helper()
	for i, p := range trace {
		f := soaFields(p)
		l := e.walk(&f)
		want := e.aosScanLeaf(l, &f)
		if got := e.scanLeaf(l, &f); got != want {
			t.Fatalf("packet %d: scanLeaf=%d aosScanLeaf=%d (window off=%d n=%d)", i, got, want, l.off, l.n)
		}
		mask := -1
		if pos := e.soa.scan(l.off, l.n, &f); pos >= 0 {
			mask = int(e.ruleIDs[l.off+pos])
		}
		if mask != want {
			t.Fatalf("packet %d: soa.scan=%d aosScanLeaf=%d (window off=%d n=%d)", i, mask, want, l.off, l.n)
		}
		if got := e.Classify(p); got != want {
			t.Fatalf("packet %d: Classify=%d ClassifyAoS=%d", i, got, want)
		}
		// The native SIMD kernel (when this CPU has one) must agree with
		// the whole portable family on the same window.
		if nativeKernelOK && l.n > 0 {
			simd := -1
			if pos := e.soa.scanSIMD(l.off, l.n, &f); pos >= 0 {
				simd = int(e.ruleIDs[l.off+pos])
			}
			if simd != want {
				t.Fatalf("packet %d: scanSIMD=%d aosScanLeaf=%d (window off=%d n=%d)", i, simd, want, l.off, l.n)
			}
		}
	}
	if nativeKernelOK {
		ne, err := e.WithKernel("native")
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range trace {
			if got, want := ne.Classify(p), e.ClassifyAoS(p); got != want {
				t.Fatalf("packet %d: native Classify=%d ClassifyAoS=%d", i, got, want)
			}
		}
	}
}

// TestSoADifferentialFresh checks SoA-vs-AoS identity on freshly
// compiled engines for both algorithms and several ruleset profiles.
func TestSoADifferentialFresh(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, profile := range []func() classbench.Profile{classbench.ACL1, classbench.FW1, classbench.IPC1} {
			p := profile()
			t.Run(fmt.Sprintf("%v/%s", algo, p.Name), func(t *testing.T) {
				rs := classbench.Generate(p, 1200, 42)
				tree, err := core.Build(rs, core.DefaultConfig(algo))
				if err != nil {
					t.Fatal(err)
				}
				e := Compile(tree)
				trace := classbench.GenerateTrace(rs, 4000, 43)
				checkScanIdentity(t, e, trace)
				// The walk-independent oracle: the tree itself.
				for i, pk := range trace {
					if got, want := e.Classify(pk), tree.Classify(pk); got != want {
						t.Fatalf("packet %d: engine=%d tree=%d", i, got, want)
					}
				}
			})
		}
	}
}

// TestSoADifferentialPatched drives a randomized insert/delete churn
// through the patch pipeline and checks the three scan paths stay
// packet-identical on every epoch, for both algorithms — the SoA arenas
// must stay in lock-step with the ruleIDs pool across append-only
// copy-on-write patches, not just at compile time.
func TestSoADifferentialPatched(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		t.Run(algo.String(), func(t *testing.T) {
			const seed = 7
			rng := rand.New(rand.NewSource(seed))
			rs := classbench.Generate(classbench.ACL1(), 600, seed)
			tree, err := core.Build(rs, core.DefaultConfig(algo))
			if err != nil {
				t.Fatal(err)
			}
			e := Compile(tree)
			pool := classbench.Generate(classbench.FW1(), 512, seed+1)
			trace := classbench.GenerateTrace(rs, 2500, seed+2)
			live := tree.NumRules()
			for step := 0; step < 120; step++ {
				var d *core.Delta
				if rng.Intn(3) == 0 && live > 1 {
					id := rng.Intn(tree.NumRules())
					d, err = tree.DeleteDelta(id)
					if err != nil {
						continue // already deleted; not what this test probes
					}
					live--
				} else {
					r := pool[rng.Intn(len(pool))]
					r.ID = tree.NumRules()
					d, err = tree.InsertDelta(r)
					if err != nil {
						t.Fatal(err)
					}
					live++
				}
				e, err = e.Patch(d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if step%20 != 19 {
					continue
				}
				for d := 0; d < rule.NumDims; d++ {
					if len(e.soa.lo[d]) != len(e.ruleIDs) || len(e.soa.hi[d]) != len(e.ruleIDs) {
						t.Fatalf("step %d: soa arena dim %d has %d/%d slots, ruleIDs %d",
							step, d, len(e.soa.lo[d]), len(e.soa.hi[d]), len(e.ruleIDs))
					}
				}
				checkScanIdentity(t, e, trace)
				if err := VerifyPatched(trace, e, Compile(tree)); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

// TestSoADifferentialBaselines checks the flat baseline renderings
// (RangeEngine), whose leaf scans share the same comparator bank,
// against their pointer trees.
func TestSoADifferentialBaselines(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 1500, 11)
	trace := classbench.GenerateTrace(rs, 5000, 12)

	hct, err := hicuts.Build(rs, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fh := CompileHiCuts(hct)
	for i, p := range trace {
		if got, want := fh.Classify(p), hct.Classify(p); got != want {
			t.Fatalf("hicuts packet %d: flat=%d tree=%d", i, got, want)
		}
	}

	yct, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fy := CompileHyperCuts(yct)
	for i, p := range trace {
		if got, want := fy.Classify(p), yct.Classify(p); got != want {
			t.Fatalf("hypercuts packet %d: flat=%d tree=%d", i, got, want)
		}
	}
}

// TestSweepKernel exercises the mask kernel directly at and around the
// block and unroll boundaries, against a scalar model.
func TestSweepKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64} {
		lo := make([]uint32, n)
		hi := make([]uint32, n)
		for i := range lo {
			a, b := rng.Uint32()%1000, rng.Uint32()%1000
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		for trial := 0; trial < 200; trial++ {
			v := rng.Uint32() % 1100
			got := sweep(v, lo, hi)
			var want uint64
			for i := range lo {
				if v >= lo[i] && v <= hi[i] {
					want |= 1 << uint(i)
				}
			}
			if got != want {
				t.Fatalf("n=%d v=%d: sweep=%#x want %#x", n, v, got, want)
			}
		}
	}
}

// TestRangeBit checks the wraparound comparator on interval edges.
func TestRangeBit(t *testing.T) {
	const max = ^uint32(0)
	cases := []struct {
		v, lo, hi uint32
		want      uint64
	}{
		{0, 0, 0, 1}, {1, 0, 0, 0}, {0, 1, 1, 0},
		{5, 1, 9, 1}, {1, 1, 9, 1}, {9, 1, 9, 1}, {0, 1, 9, 0}, {10, 1, 9, 0},
		{max, 0, max, 1}, {max, max, max, 1}, {0, max, max, 0},
		{max - 1, max, max, 0}, {7, 7, 7, 1},
	}
	for _, c := range cases {
		if got := rangeBit(c.v, c.lo, c.hi); got != c.want {
			t.Fatalf("rangeBit(%d, %d, %d) = %d, want %d", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

// TestScanStats records the workload facts the kernel is shaped by (see
// soa.go): matches cluster at the window head, windows are much longer
// than the average scan depth. It guards the peel heuristic against a
// silent workload shift that would invalidate the design.
func TestScanStats(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 10000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	trace := classbench.GenerateTrace(rs, 8192, 2009)
	var sumLen, sumDepth, headHits int
	for _, p := range trace {
		f := soaFields(p)
		l := e.walk(&f)
		sumLen += int(l.n)
		depth := l.n
		for j := int32(0); j < l.n; j++ {
			id := e.ruleIDs[l.off+j]
			r := &e.rules[id]
			if f[0] >= r.lo[0] && f[0] <= r.hi[0] && f[1] >= r.lo[1] && f[1] <= r.hi[1] &&
				f[2] >= r.lo[2] && f[2] <= r.hi[2] && f[3] >= r.lo[3] && f[3] <= r.hi[3] &&
				f[4] >= r.lo[4] && f[4] <= r.hi[4] {
				depth = j
				break
			}
		}
		if depth < soaPeel {
			headHits++
		}
		sumDepth += int(depth)
	}
	n := len(trace)
	avgLen := float64(sumLen) / float64(n)
	avgDepth := float64(sumDepth) / float64(n)
	t.Logf("avg window %.1f, avg scan depth %.1f, head-hit fraction %.2f",
		avgLen, avgDepth, float64(headHits)/float64(n))
	if avgDepth > avgLen/2 {
		t.Errorf("scan depth %.1f not far below window length %.1f: peel+prefilter premise broken", avgDepth, avgLen)
	}
	if float64(headHits) < 0.3*float64(n) {
		t.Errorf("only %d/%d scans end inside the peel: peel heuristic premise broken", headHits, n)
	}
}
