package engine

import (
	"math/bits"
	"unsafe"

	"repro/internal/rule"
)

// Structure-of-arrays leaf storage: the software comparator bank.
//
// The accelerator evaluates a leaf by firing 30 range comparators in
// parallel over the 160-bit rule slots of one wide memory word. The
// array-of-structs scan ([]flatRule, 40 bytes per rule) is the obvious
// software rendering, but it serializes the comparators: each rule costs
// up to ten compares and data-dependent branches, so deep scans pay a
// mispredict per rule.
//
// soaBank stores the same bounds as ten per-dimension arenas —
// lo[d][i]/hi[d][i] are the bounds of the rule in leaf-scan slot i, laid
// out in exactly the order of the ruleIDs pool — so evaluating a window
// becomes contiguous per-dimension sweeps, each accumulating a match
// bitmask with branch-free compares over a block of slots. The first set
// bit of the surviving mask is the highest-priority match (windows are
// priority-ordered, like the pool). The sweeps are 4-wide unrolled over
// bounds-check-eliminated slices: a portable form wide enough for the
// compiler to keep the adjacent loads and the wraparound compares in
// independent registers, and the natural shape for AVX2/NEON lanes
// should a SIMD backend land.
//
// Two workload facts (measured on ACL1 traces, see TestScanStats) shape
// the kernel:
//
//   - Matches cluster at the window head: Zipf-popular rules are the
//     high-priority ones, so ~half of all scans end in the first slot.
//     scanLeaf therefore peels the first soaPeel slots with the AoS
//     early-exit compare before starting the bank — the block setup can
//     never be amortized over a one-slot scan.
//   - Dimensions differ wildly in selectivity (most slots are wildcard
//     in some dimensions). The sweeps run in compile-time selectivity
//     order (order[]), so a block of non-matching slots usually dies
//     after one or two sweeps instead of five.
//
// The arenas grow append-only, in lock-step with ruleIDs: Patch appends
// a rewritten leaf's bounds past the receiver's length exactly as it
// appends the window's rule IDs, so snapshot sharing and the race-free
// epoch swap are untouched (readers of older snapshots never index past
// their snapshot's length, and published slots are never rewritten).
type soaBank struct {
	// lo/hi are the published per-dimension comparator arenas (COW,
	// append-only after publish; see Engine.cuts).
	//repro:arena
	lo [rule.NumDims][]uint32
	//repro:arena
	hi [rule.NumDims][]uint32
	// order is the dimension sweep order, most selective first, computed
	// from the ruleset's wildcard densities at Compile time — every
	// recompile (including the GarbageRatio-triggered background one)
	// re-measures it over the then-current arenas. Patches intentionally
	// do NOT recompute it: windows they append keep the stale compile-time
	// order, because order is a scan heuristic, not a correctness input —
	// all kernels sweep every dimension of a surviving slot — and
	// re-sorting it mid-chain would force concurrent snapshot readers to
	// re-resolve sweep pointers. Heavy churn can therefore drift order
	// away from the live selectivity ranking until the next recompile
	// restores it (TestOrderRecomputedOnRecompile).
	order [rule.NumDims]uint8
	// pLo/pHi are the order-permuted arena base pointers (pLo[i] =
	// &lo[order[i]][0]), resolved by pad() at every publish point so
	// scanSIMD builds its argument block with five pointer adds instead
	// of bounds-checked slice indexing. Snapshots copy the bank by
	// value, so each snapshot's pointers pin its own backing arrays.
	pLo, pHi [rule.NumDims]*uint32
}

// scanBlockLen is the comparator-bank width of the first block after the
// peel: small enough that a match just past the peel costs a few short
// sweeps. Deeper blocks widen to scanTailLen — matches that deep are
// rare, so the tail is tuned for miss throughput (fewer per-block
// setups), not match latency. Both fit one uint64 mask.
const (
	scanBlockLen = 16
	scanTailLen  = 64
)

// soaPadSlots is the over-read slack every published arena carries past
// its length: the SIMD kernels (scanWindowASM) round block sweeps up to
// full 8-lane rounds instead of peeling scalar tails, so the last round
// of the last window may read up to 7 slots past the arena's high
// watermark. pad() extends each arena's allocation by this many slots at
// every publish point (Compile, PatchBatch, the flat-baseline compiles);
// the garbage lanes are discarded by the kernels' block mask. The
// portable kernels never read past len, so padding costs them nothing.
const soaPadSlots = 8

// soaPeel is the number of head slots scanLeaf checks with the AoS
// early-exit compare before switching to the bank. Windows of at most
// soaScanCutoff slots are peeled whole: below that length the bank's
// block setup cannot beat the early-exit loop even on full misses (the
// measured crossover on ACL1 workloads sits between 16 and 32 slots).
//
// The native SIMD kernels move the crossover down: one fused asm call
// replaces all per-block slice setup, so the bank starts paying for
// itself on much shorter windows (measured on ACL1@10k: the vector
// kernel beats the early-exit loop from ~8 slots). They keep only a
// one-slot peel: a first-slot match — still ~half of all scans — skips
// the asm call entirely, while the branchy AoS compare is exactly what
// profiles show dominating scanLeaf at deeper peels (a deeper head is
// cheaper swept 8-wide inside the kernel's first block).
const (
	soaPeel       = 4
	soaScanCutoff = 24

	soaPeelNative       = 1
	soaScanCutoffNative = 8
)

// peelLen returns how many head slots of an n-slot window the AoS peel
// covers under the given scan kernel: all of a short window, the
// kernel's peel depth of a long one.
func peelLen(kern uint8, n int32) int32 {
	if kern == kernNative {
		if n <= soaScanCutoffNative {
			return n
		}
		return soaPeelNative
	}
	if n <= soaScanCutoff {
		return n
	}
	return soaPeel
}

// defaultOrder returns the identity sweep order.
func defaultOrder() [rule.NumDims]uint8 {
	var o [rule.NumDims]uint8
	for d := range o {
		o[d] = uint8(d)
	}
	return o
}

// appendRule appends one rule's bounds to the bank (slot order = call
// order = ruleIDs pool order).
//
//repro:arena-writer appends one rule's bounds past the published length (COW append protocol)
func (b *soaBank) appendRule(fr *flatRule) {
	for d := 0; d < rule.NumDims; d++ {
		b.lo[d] = append(b.lo[d], fr.lo[d])
		b.hi[d] = append(b.hi[d], fr.hi[d])
	}
}

// appendWindow appends the bounds of each rule in ids, resolving them
// through the rule table — the SoA mirror of appending ids to the
// ruleIDs pool.
//
//repro:arena-writer appends a rewritten window past the published length (COW append protocol)
func (b *soaBank) appendWindow(rules []flatRule, ids []int32) {
	for _, id := range ids {
		b.appendRule(&rules[id])
	}
}

// slots returns the arena length (equals the ruleIDs pool length).
func (b *soaBank) slots() int { return len(b.lo[0]) }

// pad guarantees soaPadSlots of allocated slack past every arena's
// length — the SIMD kernels' over-read contract (see soaPadSlots).
// Called at every publish point, after all appends of a batch. When an
// arena already carries the slack (the common case: append growth
// doubles), pad is a no-op and the arena stays shared with prior
// snapshots; otherwise the reallocation copies it, which is safe for
// the same reason Patch's copy-on-write is — prior snapshots keep their
// own backing array.
//
//repro:unsafe-shape resolves arena base pointers once per publish; unsafe.SliceData preserves the slice's own alignment
//repro:arena-writer re-establishes the SIMD over-read slack at publish; reallocation is COW-safe
func (b *soaBank) pad() {
	for d := 0; d < rule.NumDims; d++ {
		b.lo[d] = padArena(b.lo[d])
		b.hi[d] = padArena(b.hi[d])
	}
	for i := 0; i < rule.NumDims; i++ {
		d := b.order[i]
		b.pLo[i] = unsafe.SliceData(b.lo[d])
		b.pHi[i] = unsafe.SliceData(b.hi[d])
	}
}

func padArena(a []uint32) []uint32 {
	if cap(a)-len(a) >= soaPadSlots {
		return a
	}
	na := make([]uint32, len(a), len(a)+soaPadSlots)
	copy(na, a)
	return na
}

// computeOrder fixes the sweep order by measured selectivity: dimensions
// whose slots are least often full-range wildcards go first, so the
// per-block mask collapses to zero after as few sweeps as possible.
func (b *soaBank) computeOrder() {
	b.order = defaultOrder()
	var selective [rule.NumDims]int
	for d := 0; d < rule.NumDims; d++ {
		full := uint32(1)<<rule.DimBits[d] - 1
		for i, lo := range b.lo[d] {
			if lo != 0 || b.hi[d][i] != full {
				selective[d]++
			}
		}
	}
	// Insertion sort of 5 elements, descending selectivity, stable so
	// equal dimensions keep the natural (cheap-fields-first) order.
	for i := 1; i < rule.NumDims; i++ {
		for j := i; j > 0 && selective[b.order[j]] > selective[b.order[j-1]]; j-- {
			b.order[j], b.order[j-1] = b.order[j-1], b.order[j]
		}
	}
}

// rangeBit reports, branch-free, whether v lies in [lo, hi]: v-lo wraps
// past hi-lo exactly when v is outside the interval (unsigned-wraparound
// range check), so the borrow bit of the 64-bit difference is the
// comparator output.
func rangeBit(v, lo, hi uint32) uint64 {
	return (uint64(hi-lo)-uint64(v-lo))>>63 ^ 1
}

// sweep accumulates the match bits of one dimension over lo/hi (equal
// length, at most 64 — the uint64 mask width; callers block their
// windows at scanBlockLen/scanTailLen, both within the bound), 4-wide
// unrolled. The hi reslice pins its length to lo's so the unrolled body
// compiles without bounds checks.
func sweep(v uint32, lo, hi []uint32) uint64 {
	hi = hi[:len(lo)]
	var m uint64
	j := 0
	for ; j+4 <= len(lo); j += 4 {
		b0 := rangeBit(v, lo[j], hi[j])
		b1 := rangeBit(v, lo[j+1], hi[j+1])
		b2 := rangeBit(v, lo[j+2], hi[j+2])
		b3 := rangeBit(v, lo[j+3], hi[j+3])
		m |= (b0 | b1<<1 | b2<<2 | b3<<3) << uint(j)
	}
	for ; j < len(lo); j++ {
		m |= rangeBit(v, lo[j], hi[j]) << uint(j)
	}
	return m
}

// soaDenseCut is the candidate-count threshold above which candidates
// spends a second sweep: verifying a candidate costs about as much as
// sweeping four slots, so a first-dimension mask with only a few
// survivors is cheaper to verify directly than to keep masking.
const soaDenseCut = 3

// candidates returns the mask of slots in [base, base+bl) that survive
// the comparator bank's prefilter: a sweep of the most selective
// dimension, plus a second sweep when too many slots survive the first.
// Bit j corresponds to slot base+j. Callers verify surviving slots
// against the full rule bounds in ascending-bit (priority) order; a
// zero return proves no slot in the block matches (sweeps never produce
// false negatives).
func (b *soaBank) candidates(base, bl int32, f *[rule.NumDims]uint32) uint64 {
	d0 := b.order[0]
	m := sweep(f[d0], b.lo[d0][base:base+bl], b.hi[d0][base:base+bl])
	if m != 0 && bits.OnesCount64(m) > soaDenseCut {
		d1 := b.order[1]
		m &= sweep(f[d1], b.lo[d1][base:base+bl], b.hi[d1][base:base+bl])
	}
	return m
}

// scan returns the offset within the window [off, off+n) of the first
// slot whose bounds contain the packet fields, or -1, sweeping all five
// dimensions per block. It is the pure-mask form of the kernel — the
// shape a SIMD backend would take — kept as the reference the
// prefilter+verify fast path (Engine.scanLeaf) is differentially tested
// against; the fast path wins in scalar code because a match-bearing
// block stops masking after at most two sweeps.
func (b *soaBank) scan(off, n int32, f *[rule.NumDims]uint32) int32 {
	end := off + n
	width := int32(scanBlockLen)
	for base := off; base < end; {
		bl := end - base
		if bl > width {
			bl = width
		}
		d0 := b.order[0]
		m := sweep(f[d0], b.lo[d0][base:base+bl], b.hi[d0][base:base+bl])
		for i := 1; i < rule.NumDims && m != 0; i++ {
			d := b.order[i]
			m &= sweep(f[d], b.lo[d][base:base+bl], b.hi[d][base:base+bl])
		}
		if m != 0 {
			return base - off + int32(bits.TrailingZeros64(m))
		}
		base += bl
		width = scanTailLen
	}
	return -1
}
