package engine

import (
	"math/bits"

	"repro/internal/rule"
)

// Structure-of-arrays leaf storage: the software comparator bank.
//
// The accelerator evaluates a leaf by firing 30 range comparators in
// parallel over the 160-bit rule slots of one wide memory word. The
// array-of-structs scan ([]flatRule, 40 bytes per rule) is the obvious
// software rendering, but it serializes the comparators: each rule costs
// up to ten compares and data-dependent branches, so deep scans pay a
// mispredict per rule.
//
// soaBank stores the same bounds as ten per-dimension arenas —
// lo[d][i]/hi[d][i] are the bounds of the rule in leaf-scan slot i, laid
// out in exactly the order of the ruleIDs pool — so evaluating a window
// becomes contiguous per-dimension sweeps, each accumulating a match
// bitmask with branch-free compares over a block of slots. The first set
// bit of the surviving mask is the highest-priority match (windows are
// priority-ordered, like the pool). The sweeps are 4-wide unrolled over
// bounds-check-eliminated slices: a portable form wide enough for the
// compiler to keep the adjacent loads and the wraparound compares in
// independent registers, and the natural shape for AVX2/NEON lanes
// should a SIMD backend land.
//
// Two workload facts (measured on ACL1 traces, see TestScanStats) shape
// the kernel:
//
//   - Matches cluster at the window head: Zipf-popular rules are the
//     high-priority ones, so ~half of all scans end in the first slot.
//     scanLeaf therefore peels the first soaPeel slots with the AoS
//     early-exit compare before starting the bank — the block setup can
//     never be amortized over a one-slot scan.
//   - Dimensions differ wildly in selectivity (most slots are wildcard
//     in some dimensions). The sweeps run in compile-time selectivity
//     order (order[]), so a block of non-matching slots usually dies
//     after one or two sweeps instead of five.
//
// The arenas grow append-only, in lock-step with ruleIDs: Patch appends
// a rewritten leaf's bounds past the receiver's length exactly as it
// appends the window's rule IDs, so snapshot sharing and the race-free
// epoch swap are untouched (readers of older snapshots never index past
// their snapshot's length, and published slots are never rewritten).
type soaBank struct {
	lo [rule.NumDims][]uint32
	hi [rule.NumDims][]uint32
	// order is the dimension sweep order, most selective first, fixed at
	// Compile time from the ruleset's wildcard densities (window bounds
	// appended by patches keep the compile-time order: it is a scan
	// heuristic, not a correctness input).
	order [rule.NumDims]uint8
}

// scanBlockLen is the comparator-bank width of the first block after the
// peel: small enough that a match just past the peel costs a few short
// sweeps. Deeper blocks widen to scanTailLen — matches that deep are
// rare, so the tail is tuned for miss throughput (fewer per-block
// setups), not match latency. Both fit one uint64 mask.
const (
	scanBlockLen = 16
	scanTailLen  = 64
)

// soaPeel is the number of head slots scanLeaf checks with the AoS
// early-exit compare before switching to the bank. Windows of at most
// soaScanCutoff slots are peeled whole: below that length the bank's
// block setup cannot beat the early-exit loop even on full misses (the
// measured crossover on ACL1 workloads sits between 16 and 32 slots).
const (
	soaPeel       = 4
	soaScanCutoff = 24
)

// peelLen returns how many head slots of an n-slot window the AoS peel
// covers: all of a short window, soaPeel of a long one.
func peelLen(n int32) int32 {
	if n <= soaScanCutoff {
		return n
	}
	return soaPeel
}

// defaultOrder returns the identity sweep order.
func defaultOrder() [rule.NumDims]uint8 {
	var o [rule.NumDims]uint8
	for d := range o {
		o[d] = uint8(d)
	}
	return o
}

// appendRule appends one rule's bounds to the bank (slot order = call
// order = ruleIDs pool order).
func (b *soaBank) appendRule(fr *flatRule) {
	for d := 0; d < rule.NumDims; d++ {
		b.lo[d] = append(b.lo[d], fr.lo[d])
		b.hi[d] = append(b.hi[d], fr.hi[d])
	}
}

// appendWindow appends the bounds of each rule in ids, resolving them
// through the rule table — the SoA mirror of appending ids to the
// ruleIDs pool.
func (b *soaBank) appendWindow(rules []flatRule, ids []int32) {
	for _, id := range ids {
		b.appendRule(&rules[id])
	}
}

// slots returns the arena length (equals the ruleIDs pool length).
func (b *soaBank) slots() int { return len(b.lo[0]) }

// computeOrder fixes the sweep order by measured selectivity: dimensions
// whose slots are least often full-range wildcards go first, so the
// per-block mask collapses to zero after as few sweeps as possible.
func (b *soaBank) computeOrder() {
	b.order = defaultOrder()
	var selective [rule.NumDims]int
	for d := 0; d < rule.NumDims; d++ {
		full := uint32(1)<<rule.DimBits[d] - 1
		for i, lo := range b.lo[d] {
			if lo != 0 || b.hi[d][i] != full {
				selective[d]++
			}
		}
	}
	// Insertion sort of 5 elements, descending selectivity, stable so
	// equal dimensions keep the natural (cheap-fields-first) order.
	for i := 1; i < rule.NumDims; i++ {
		for j := i; j > 0 && selective[b.order[j]] > selective[b.order[j-1]]; j-- {
			b.order[j], b.order[j-1] = b.order[j-1], b.order[j]
		}
	}
}

// rangeBit reports, branch-free, whether v lies in [lo, hi]: v-lo wraps
// past hi-lo exactly when v is outside the interval (unsigned-wraparound
// range check), so the borrow bit of the 64-bit difference is the
// comparator output.
func rangeBit(v, lo, hi uint32) uint64 {
	return (uint64(hi-lo)-uint64(v-lo))>>63 ^ 1
}

// sweep accumulates the match bits of one dimension over lo/hi (equal
// length, at most 64 — the uint64 mask width; callers block their
// windows at scanBlockLen/scanTailLen, both within the bound), 4-wide
// unrolled. The hi reslice pins its length to lo's so the unrolled body
// compiles without bounds checks.
func sweep(v uint32, lo, hi []uint32) uint64 {
	hi = hi[:len(lo)]
	var m uint64
	j := 0
	for ; j+4 <= len(lo); j += 4 {
		b0 := rangeBit(v, lo[j], hi[j])
		b1 := rangeBit(v, lo[j+1], hi[j+1])
		b2 := rangeBit(v, lo[j+2], hi[j+2])
		b3 := rangeBit(v, lo[j+3], hi[j+3])
		m |= (b0 | b1<<1 | b2<<2 | b3<<3) << uint(j)
	}
	for ; j < len(lo); j++ {
		m |= rangeBit(v, lo[j], hi[j]) << uint(j)
	}
	return m
}

// soaDenseCut is the candidate-count threshold above which candidates
// spends a second sweep: verifying a candidate costs about as much as
// sweeping four slots, so a first-dimension mask with only a few
// survivors is cheaper to verify directly than to keep masking.
const soaDenseCut = 3

// candidates returns the mask of slots in [base, base+bl) that survive
// the comparator bank's prefilter: a sweep of the most selective
// dimension, plus a second sweep when too many slots survive the first.
// Bit j corresponds to slot base+j. Callers verify surviving slots
// against the full rule bounds in ascending-bit (priority) order; a
// zero return proves no slot in the block matches (sweeps never produce
// false negatives).
func (b *soaBank) candidates(base, bl int32, f *[rule.NumDims]uint32) uint64 {
	d0 := b.order[0]
	m := sweep(f[d0], b.lo[d0][base:base+bl], b.hi[d0][base:base+bl])
	if m != 0 && bits.OnesCount64(m) > soaDenseCut {
		d1 := b.order[1]
		m &= sweep(f[d1], b.lo[d1][base:base+bl], b.hi[d1][base:base+bl])
	}
	return m
}

// scan returns the offset within the window [off, off+n) of the first
// slot whose bounds contain the packet fields, or -1, sweeping all five
// dimensions per block. It is the pure-mask form of the kernel — the
// shape a SIMD backend would take — kept as the reference the
// prefilter+verify fast path (Engine.scanLeaf) is differentially tested
// against; the fast path wins in scalar code because a match-bearing
// block stops masking after at most two sweeps.
func (b *soaBank) scan(off, n int32, f *[rule.NumDims]uint32) int32 {
	end := off + n
	width := int32(scanBlockLen)
	for base := off; base < end; {
		bl := end - base
		if bl > width {
			bl = width
		}
		d0 := b.order[0]
		m := sweep(f[d0], b.lo[d0][base:base+bl], b.hi[d0][base:base+bl])
		for i := 1; i < rule.NumDims && m != 0; i++ {
			d := b.order[i]
			m &= sweep(f[d], b.lo[d][base:base+bl], b.hi[d][base:base+bl])
		}
		if m != 0 {
			return base - off + int32(bits.TrailingZeros64(m))
		}
		base += bl
		width = scanTailLen
	}
	return -1
}
