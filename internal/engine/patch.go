package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rule"
)

// Patch derives the next snapshot of the flat image from a structured
// update delta (core.Tree.InsertDelta / DeleteDelta) without recompiling.
// The receiver is not modified; the returned engine shares every
// unchanged pool segment with it:
//
//   - cuts never change (internal-node cut headers are invariant under
//     incremental updates) and are always shared;
//   - rules, ruleIDs, the SoA comparator-bank arenas (soa.go) and kids
//     are append-only arenas: new rule entries, rewritten leaf windows
//     (IDs and per-dimension bounds alike) and relocated kid blocks are
//     appended past the receiver's length, so readers of older
//     snapshots — whose offsets all point below it — are never
//     disturbed (this is what makes the snapshot swap race-detector
//     clean);
//   - the leaf table is chunked (leafChunkLen entries per chunk), and
//     only the chunks containing edited leaf indices are copied — every
//     chunk before the delta's first dirty leaf, and every untouched
//     chunk between edits, is shared with the receiver, so the
//     leaf-table cost of a patch is O(edited chunks) rather than
//     O(leaves);
//   - nodes (16 bytes per node) is copied when any child slot is
//     repointed (kid edits are the rarest delta component — only
//     shared-leaf unsharing produces them — and the node array is the
//     smallest, so a flat copy keeps the two-array traversal hot path
//     free of further indirection); a repointed node's whole kid block
//     moves to the arena end rather than being edited in place.
//
// Abandoned windows and blocks are counted in deadRuleSlots/deadKidSlots;
// when GarbageRatio crosses the operator's threshold, a fresh Compile of
// the (relaid-out) tree replaces the patch chain.
//
// Patch must be applied to the newest snapshot only, in delta order, and
// by one updater at a time — Handle.Apply enforces exactly that. A delta
// taken across a core.Tree.Relayout is invalid here (leaf indices move);
// recompile instead.
func (e *Engine) Patch(d *core.Delta) (*Engine, error) {
	return e.PatchBatch([]*core.Delta{d})
}

// PatchBatch replays a burst of deltas (in order) into one new snapshot
// with one copy-on-write pass: the leaf table and node array are copied at
// most once for the whole batch, and a node's kid block is relocated at
// most once no matter how many deltas repoint its slots. A BGP-style
// storm of control-plane updates therefore costs one patch and — through
// Handle.ApplyBatch — one epoch bump instead of one per Insert/Delete,
// which is what keeps the flow cache from being invalidated per update.
//
// The deltas must be consecutive (each taken from the tree state the
// previous one left) and start at the receiver's state, exactly as if
// Patch were called once per delta; the result is packet-identical to
// that chain, minus the intermediate snapshots.
func (e *Engine) PatchBatch(ds []*core.Delta) (*Engine, error) {
	ne := &Engine{
		nodes:         e.nodes,
		cuts:          e.cuts,
		kids:          e.kids,
		leaves:        e.leaves,
		numLeaves:     e.numLeaves,
		ruleIDs:       e.ruleIDs,
		rules:         e.rules,
		soa:           e.soa,
		kern:          e.kern,
		sentinel:      e.sentinel,
		deadRuleSlots: e.deadRuleSlots,
		deadKidSlots:  e.deadKidSlots,
	}
	var st patchState
	for _, d := range ds {
		for _, le := range d.LeafEdits {
			if le.New {
				st.newLeaves++
			}
		}
	}
	for _, d := range ds {
		if err := ne.applyOne(d, &st); err != nil {
			return nil, err
		}
	}
	// Restore the SIMD kernels' over-read slack past the batch's appends
	// before the snapshot is published (see soaPadSlots).
	ne.soa.pad()
	return ne, nil
}

// patchState tracks the copy-on-write work already done for one
// PatchBatch, so later deltas in the burst reuse it.
type patchState struct {
	// newLeaves is the whole batch's leaf-table growth, counted up
	// front so the one-time chunk-directory copy is sized for every
	// delta's appends.
	newLeaves int
	// dirCopied records that the chunk directory (the outer slice) was
	// privatized for this batch; individual chunks stay shared until
	// they are edited.
	dirCopied bool
	// privChunks marks chunks already copied (or freshly appended) this
	// batch; later edits in the burst hit the private copy directly.
	privChunks  map[int32]bool
	nodesCopied bool
	// moved records nodes whose kid block was already relocated to the
	// arena end this batch; further KidEdits hit the relocated block.
	moved map[int]bool
}

// ensureLeafDir privatizes the chunk directory once per batch, with
// capacity for the whole burst's appends.
func (ne *Engine) ensureLeafDir(st *patchState) {
	if st.dirCopied {
		return
	}
	st.dirCopied = true
	st.privChunks = make(map[int32]bool, 4)
	need := (ne.numLeaves + st.newLeaves + leafChunkLen - 1) / leafChunkLen
	if need < len(ne.leaves) {
		need = len(ne.leaves)
	}
	dir := make([][]leafRef, len(ne.leaves), need)
	copy(dir, ne.leaves)
	ne.leaves = dir
}

// leafChunkCOW returns chunk ci of the leaf table, copying it first if
// this batch has not privatized it yet. This is the dirty-range copy:
// chunks without edits — in particular everything before the delta's
// first dirty leaf — are never touched and stay shared with the
// receiver snapshot.
func (ne *Engine) leafChunkCOW(st *patchState, ci int32) []leafRef {
	ne.ensureLeafDir(st)
	if !st.privChunks[ci] {
		st.privChunks[ci] = true
		fresh := make([]leafRef, leafChunkLen)
		copy(fresh, ne.leaves[ci])
		ne.leaves[ci] = fresh
	}
	return ne.leaves[ci]
}

// appendLeaf grows the leaf table by one entry, extending the directory
// with a fresh chunk at chunk boundaries and privatizing the current
// tail chunk otherwise.
func (ne *Engine) appendLeaf(st *patchState, ref leafRef) {
	idx := int32(ne.numLeaves)
	ci := idx >> leafChunkBits
	if idx&leafChunkMask == 0 {
		ne.ensureLeafDir(st)
		ne.leaves = append(ne.leaves, make([]leafRef, leafChunkLen))
		st.privChunks[ci] = true
		ne.leaves[ci][0] = ref
	} else {
		ne.leafChunkCOW(st, ci)[idx&leafChunkMask] = ref
	}
	ne.numLeaves++
}

// applyOne replays a single delta into ne (the batch's under-construction
// snapshot), copying shared segments on first touch.
//
//repro:arena-writer replays a delta into the under-construction snapshot; indexed writes land only in blocks relocated this batch
func (ne *Engine) applyOne(d *core.Delta, st *patchState) error {
	if d.RuleAppended {
		if d.AppendedRule.ID != len(ne.rules) {
			return fmt.Errorf("engine: patch appends rule %d but the image holds %d rules (delta applied out of order?)",
				d.AppendedRule.ID, len(ne.rules))
		}
		var fr flatRule
		for dim := 0; dim < rule.NumDims; dim++ {
			fr.lo[dim] = d.AppendedRule.F[dim].Lo
			fr.hi[dim] = d.AppendedRule.F[dim].Hi
		}
		ne.rules = append(ne.rules, fr)
	}
	// A deleted rule needs no rule-table edit: every live leaf window
	// that referenced it is rewritten below, so the entry is unreachable.

	for _, le := range d.LeafEdits {
		slot := ne.leafSlot(le.Index)
		ref := leafRef{off: int32(len(ne.ruleIDs)), n: int32(len(le.Rules))}
		ne.ruleIDs = append(ne.ruleIDs, le.Rules...)
		// The SoA comparator-bank arenas grow in lock-step with the
		// ruleIDs pool: the rewritten window's bounds are appended past
		// the receiver's length, never written in place, so older
		// snapshots keep reading their own slots untouched.
		ne.soa.appendWindow(ne.rules, le.Rules)
		if le.New {
			if int(slot) != ne.numLeaves {
				return fmt.Errorf("engine: patch appends leaf %d but the leaf table holds %d entries (delta applied out of order?)",
					le.Index, ne.numLeaves)
			}
			ne.appendLeaf(st, ref)
			continue
		}
		if int(slot) >= ne.numLeaves {
			return fmt.Errorf("engine: patch edits leaf %d of %d", le.Index, ne.numLeaves)
		}
		c := ne.leafChunkCOW(st, slot>>leafChunkBits)
		ne.deadRuleSlots += int(c[slot&leafChunkMask].n)
		c[slot&leafChunkMask] = ref
	}

	// Orphaned leaves keep their (stable) table entries but lose their
	// last reference: their rule windows are unreachable garbage from
	// this snapshot on. Accounting reads the entry in place — orphaning
	// never copies a chunk.
	for _, oi := range d.Orphaned {
		slot := ne.leafSlot(oi)
		if int(slot) >= ne.numLeaves {
			return fmt.Errorf("engine: patch orphans leaf %d of %d", oi, ne.numLeaves)
		}
		ne.deadRuleSlots += int(ne.leafAt(slot).n)
	}

	if len(d.KidEdits) > 0 {
		if !st.nodesCopied {
			st.nodesCopied = true
			nodes := make([]node, len(ne.nodes))
			copy(nodes, ne.nodes)
			ne.nodes = nodes
			st.moved = make(map[int]bool, 4)
		}
		for _, ke := range d.KidEdits {
			if ke.Word < 0 || ke.Word >= len(ne.nodes) {
				return fmt.Errorf("engine: patch repoints node %d of %d", ke.Word, len(ne.nodes))
			}
			nd := &ne.nodes[ke.Word]
			if ke.Slot < 0 || int32(ke.Slot) >= nd.kidLen {
				return fmt.Errorf("engine: patch repoints slot %d of node %d (%d slots)", ke.Slot, ke.Word, nd.kidLen)
			}
			if !st.moved[ke.Word] {
				// Copy-on-write at kid-block granularity: the node's
				// block is appended to the arena end and the node
				// repointed; the original block becomes garbage but
				// stays intact for readers of older snapshots. One
				// relocation per node per batch — later edits in the
				// burst land in the already-moved block.
				st.moved[ke.Word] = true
				off := int32(len(ne.kids))
				ne.kids = append(ne.kids, ne.kids[nd.kidOff:nd.kidOff+nd.kidLen]...)
				ne.deadKidSlots += int(nd.kidLen)
				nd.kidOff = off
			}
			leaf := ne.leafSlot(ke.Leaf)
			if int(leaf) >= ne.numLeaves {
				return fmt.Errorf("engine: patch points slot at leaf %d of %d", ke.Leaf, ne.numLeaves)
			}
			ne.kids[nd.kidOff+int32(ke.Slot)] = ^leaf
		}
	}
	return nil
}

// leafSlot translates a core leaf-table index (core.Tree.Leaves()
// position) into this engine's leaf-table index. They coincide except
// when Compile inserted an empty-leaf sentinel for nil child slots, which
// occupies one extra entry; core indices at or past it shift up by one.
func (e *Engine) leafSlot(coreIdx int) int32 {
	i := int32(coreIdx)
	if e.sentinel >= 0 && i >= e.sentinel {
		i++
	}
	return i
}

// VerifyPatched cross-checks a live-updated image against a fresh
// recompile, packet-exact: patched is the engine produced by replaying
// update deltas (Patch) since some earlier Compile, fresh is Compile of
// the tree's current state. It returns an error naming the first
// divergent packet, or nil when the patch pipeline reproduced the
// recompiled image's behaviour exactly. The update-churn benchmark and
// the facade's tests run every churn sequence through this before
// trusting its throughput numbers; hwsim.RunVerified extends the same
// cross-check to the encoded hardware image.
func VerifyPatched(trace []rule.Packet, patched, fresh *Engine) error {
	got := make([]int32, len(trace))
	want := make([]int32, len(trace))
	patched.ClassifyBatch(trace, got)
	fresh.ClassifyBatch(trace, want)
	for i := range trace {
		if got[i] != want[i] {
			return fmt.Errorf("engine: packet %d: patched engine matched rule %d, fresh recompile matched %d",
				i, got[i], want[i])
		}
	}
	return nil
}

// GarbageRatio reports the fraction of the kids and ruleIDs arenas
// abandoned by patches: rewritten leaf windows and relocated kid blocks
// accumulate until a full Compile resets the pools. It is the engine-side
// degradation signal, the analogue of core.Tree.Degradation for the tree:
// recompile when either crosses the operator's threshold.
func (e *Engine) GarbageRatio() float64 {
	total := len(e.ruleIDs) + len(e.kids)
	if total == 0 {
		return 0
	}
	return float64(e.deadRuleSlots+e.deadKidSlots) / float64(total)
}
