package engine

import (
	"sync"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/flowcache"
	"repro/internal/rule"
)

// Stats reconciliation for the cached parallel path: the lock-free hit
// path defers all hit/miss accounting to one NoteLookups flush per
// sub-batch, so an early exit or a lost flush anywhere in the
// shard/re-probe protocol would silently undercount. These tests pin
// the conservation laws against ground-truth probe counts:
//
//   - every packet presented to a ...Cached path is tallied exactly
//     once: Hits + Misses == packets presented;
//   - every miss walks the engine and repopulates: Inserts == Misses;
//   - stale drops are a subset of misses: StaleEvictions <= Misses.

func cacheStatsHandle(t *testing.T) (*Handle, *core.Tree, []rule.Packet) {
	t.Helper()
	rs := classbench.Generate(classbench.ACL1(), 400, 51)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandle(Compile(tree))
	h.EnableCache(1 << 12)
	trace := classbench.GenerateFlowTrace(rs, 20000, 700, 12, 52)
	return h, tree, trace
}

func reconcile(t *testing.T, c *flowcache.Cache, presented uint64) {
	t.Helper()
	s := c.Stats()
	if got := s.Hits + s.Misses; got != presented {
		t.Fatalf("hits(%d) + misses(%d) = %d lookups accounted, %d packets presented (undercount %d)",
			s.Hits, s.Misses, got, presented, int64(presented)-int64(got))
	}
	if s.Inserts != s.Misses {
		t.Fatalf("inserts %d != misses %d: some miss did not repopulate (or a flush double-counted)", s.Inserts, s.Misses)
	}
	if s.StaleEvictions > s.Misses {
		t.Fatalf("stale evictions %d exceed misses %d", s.StaleEvictions, s.Misses)
	}
	if s.Hits == 0 {
		t.Fatal("locality trace produced no cache hits; the test is not exercising the hit path")
	}
}

// TestCacheStatsReconcileParallel drives ParallelClassifyCached across
// worker counts and epoch bumps (inserts between batches) and checks the
// totals equal the ground-truth probe counts, with results verified
// against the uncached engine every round.
func TestCacheStatsReconcileParallel(t *testing.T) {
	h, tree, trace := cacheStatsHandle(t)
	pool := classbench.Generate(classbench.FW1(), 64, 53)
	out := make([]int32, len(trace))
	want := make([]int32, len(trace))
	var presented uint64
	for round := 0; round < 12; round++ {
		workers := []int{1, 2, 3, 8, 16}[round%5]
		h.ParallelClassifyCached(trace, out, workers)
		presented += uint64(len(trace))
		h.Current().Engine().ClassifyBatch(trace, want)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("round %d packet %d: cached=%d engine=%d", round, i, out[i], want[i])
			}
		}
		if round%3 == 2 {
			r := pool[round/3]
			r.ID = tree.NumRules()
			d, err := tree.InsertDelta(r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.Apply(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	reconcile(t, h.Cache(), presented)
}

// TestCacheStatsReconcileConcurrent repeats the reconciliation with
// several goroutines classifying through the shared cache at once
// (mixing the batch and parallel paths), so torn seqlock reads, re-probe
// races and concurrent inserts all happen while the books are kept.
func TestCacheStatsReconcileConcurrent(t *testing.T) {
	h, _, trace := cacheStatsHandle(t)
	const (
		goroutines = 6
		rounds     = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int32, len(trace))
			for r := 0; r < rounds; r++ {
				if g%2 == 0 {
					h.ParallelClassifyCached(trace, out, 4)
				} else {
					h.ClassifyBatchCached(trace, out)
				}
			}
		}(g)
	}
	wg.Wait()
	reconcile(t, h.Cache(), uint64(goroutines*rounds*len(trace)))
}
