package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/rule"
)

// buildChurned builds an ACL1 tree, applies some churn through the
// delta path, and returns the tree, the patched engine, and the live
// ruleset (for trace generation).
func buildChurned(t *testing.T, algo core.Algorithm, n, churn int, seed int64) (*core.Tree, *Engine, rule.RuleSet) {
	t.Helper()
	rs := classbench.Generate(classbench.ACL1(), n, seed)
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	eng := Compile(tree)
	live := append(rule.RuleSet{}, rs...)
	pool := classbench.Generate(classbench.FW1(), churn, seed+1)
	for i := range pool {
		r := pool[i]
		r.ID = len(live)
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatalf("churn insert %d: %v", i, err)
		}
		live = append(live, r)
		if eng, err = eng.Patch(d); err != nil {
			t.Fatalf("churn patch %d: %v", i, err)
		}
	}
	return tree, eng, live
}

func snapshotBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := e.Snapshot(&buf)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Snapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestImageRoundTrip(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		for _, churn := range []int{0, 60} {
			t.Run(algo.String(), func(t *testing.T) {
				_, eng, live := buildChurned(t, algo, 400, churn, 11)
				img := snapshotBytes(t, eng)
				got, err := RestoreEngine(bytes.NewReader(img))
				if err != nil {
					t.Fatalf("RestoreEngine: %v", err)
				}
				if !eng.LayoutEqual(got) {
					t.Fatal("restored engine layout differs from source")
				}
				if got.kern != defaultKern {
					t.Errorf("restored kern %d, want this host's default %d", got.kern, defaultKern)
				}
				for d := 0; d < rule.NumDims; d++ {
					if cap(got.soa.lo[d])-len(got.soa.lo[d]) < soaPadSlots ||
						cap(got.soa.hi[d])-len(got.soa.hi[d]) < soaPadSlots {
						t.Fatalf("dim %d: restored arena lacks the SIMD over-read slack", d)
					}
				}
				trace := classbench.GenerateTrace(live, 3000, 12)
				for i, p := range trace {
					if w, g := eng.Classify(p), got.Classify(p); g != w {
						t.Fatalf("packet %d: restored=%d source=%d", i, g, w)
					}
					if w, g := eng.ClassifyAoS(p), got.ClassifyAoS(p); g != w {
						t.Fatalf("packet %d (AoS): restored=%d source=%d", i, g, w)
					}
				}
			})
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	_, eng, _ := buildChurned(t, core.HyperCuts, 300, 30, 5)
	if !bytes.Equal(snapshotBytes(t, eng), snapshotBytes(t, eng)) {
		t.Fatal("two snapshots of the same engine differ")
	}
	// A snapshot of a restored engine must reproduce the image exactly:
	// restore is lossless up to host-derived state.
	img := snapshotBytes(t, eng)
	got, err := RestoreEngine(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	if !bytes.Equal(img, snapshotBytes(t, got)) {
		t.Fatal("snapshot(restore(image)) != image")
	}
}

func TestLayoutEqual(t *testing.T) {
	tree, eng, _ := buildChurned(t, core.HyperCuts, 300, 0, 6)
	if !eng.LayoutEqual(Compile(tree)) {
		t.Fatal("two compiles of the same tree are not LayoutEqual")
	}
	r := classbench.Generate(classbench.FW1(), 1, 7)[0]
	r.ID = tree.NumRules()
	d, err := tree.InsertDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := eng.Patch(d)
	if err != nil {
		t.Fatal(err)
	}
	if eng.LayoutEqual(patched) {
		t.Fatal("patched engine reported LayoutEqual to its parent")
	}
}

// TestImageReplicaCatchUp is the replica differential of the ISSUE's
// acceptance criteria: build + churn on node A, snapshot, restore on
// "node B", then replay the identical 1000-update delta stream through
// both handles via ApplyBatch. The replica must stay classify-identical
// to the live engine, for both algorithms.
func TestImageReplicaCatchUp(t *testing.T) {
	for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
		t.Run(algo.String(), func(t *testing.T) {
			tree, eng, live := buildChurned(t, algo, 500, 40, 21)
			hA := NewHandle(eng)

			hB, err := Restore(bytes.NewReader(snapshotBytes(t, eng)))
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}

			const updates = 1000
			const batch = 50
			rng := rand.New(rand.NewSource(22))
			pool := classbench.Generate(classbench.IPC1(), updates, 23)
			inserted := 0
			deleted := map[int]bool{}
			applied := 0
			for applied < updates {
				var ds []*core.Delta
				for len(ds) < batch && applied+len(ds) < updates {
					if inserted < len(pool) && rng.Intn(10) < 7 {
						r := pool[inserted]
						r.ID = len(live)
						inserted++
						d, err := tree.InsertDelta(r)
						if err != nil {
							t.Fatalf("insert delta: %v", err)
						}
						live = append(live, r)
						ds = append(ds, d)
					} else {
						id := rng.Intn(len(live))
						if deleted[id] {
							continue
						}
						d, err := tree.DeleteDelta(id)
						if err != nil {
							t.Fatalf("delete delta: %v", err)
						}
						deleted[id] = true
						ds = append(ds, d)
					}
				}
				applied += len(ds)
				if _, err := hA.ApplyBatch(ds); err != nil {
					t.Fatalf("node A ApplyBatch: %v", err)
				}
				if _, err := hB.ApplyBatch(ds); err != nil {
					t.Fatalf("node B ApplyBatch: %v", err)
				}
			}

			lr := append(rule.RuleSet{}, live...)
			alive := lr[:0]
			for i := range lr {
				if !deleted[lr[i].ID] {
					alive = append(alive, lr[i])
				}
			}
			trace := classbench.GenerateTrace(alive, 5000, 24)
			wantOut := make([]int32, len(trace))
			gotOut := make([]int32, len(trace))
			hA.Current().Engine().ClassifyBatch(trace, wantOut)
			hB.Current().Engine().ClassifyBatch(trace, gotOut)
			for i := range trace {
				if gotOut[i] != wantOut[i] {
					t.Fatalf("after %d replayed updates, packet %d: replica=%d live=%d",
						applied, i, gotOut[i], wantOut[i])
				}
			}
		})
	}
}

// mutateSection re-encodes an image with one section's bytes altered by
// fn, recomputing all checksums — producing a checksum-valid but
// semantically corrupt image that only engine-level validation can
// reject.
func mutateSection(t *testing.T, img []byte, id uint32, fn func([]byte) []byte) []byte {
	t.Helper()
	secs, err := image.Read(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("mutateSection: %v", err)
	}
	for i := range secs {
		if secs[i].ID == id {
			secs[i].Data = fn(bytes.Clone(secs[i].Data))
		}
	}
	var buf bytes.Buffer
	if _, err := image.Write(&buf, secs); err != nil {
		t.Fatalf("mutateSection rewrite: %v", err)
	}
	return buf.Bytes()
}

// TestRestoreRejectsForgedImages drives checksum-valid images with
// broken engine invariants through RestoreEngine: every one must fail
// closed with a *image.FormatError — never panic, never produce an
// engine.
func TestRestoreRejectsForgedImages(t *testing.T) {
	_, eng, _ := buildChurned(t, core.HyperCuts, 300, 20, 31)
	img := snapshotBytes(t, eng)

	put32 := func(b []byte, off int, v uint32) []byte {
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	cases := []struct {
		name string
		sec  uint32
		fn   func([]byte) []byte
	}{
		{"order-not-permutation", secMeta, func(b []byte) []byte { b[24], b[25] = 0, 0; return b }},
		{"order-dim-out-of-range", secMeta, func(b []byte) []byte { b[24] = 9; return b }},
		{"sentinel-out-of-range", secMeta, func(b []byte) []byte { return put32(b, 4, 1<<30) }},
		{"leaf-count-mismatch", secMeta, func(b []byte) []byte { return put32(b, 0, binary.LittleEndian.Uint32(b)+1) }},
		{"garbage-counter-overflow", secMeta, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<40)
			return b
		}},
		{"meta-padding-dirty", secMeta, func(b []byte) []byte { b[metaLen-1] = 1; return b }},
		{"node-cut-block-oob", secNodes, func(b []byte) []byte { return put32(b, 4, 1<<20) }},
		{"node-kid-block-oob", secNodes, func(b []byte) []byte { return put32(b, 8, 1<<29) }},
		{"node-fanout-exceeds-block", secNodes, func(b []byte) []byte { return put32(b, 12, 0) }},
		{"node-negative-offset", secNodes, func(b []byte) []byte { return put32(b, 0, 0x80000001) }},
		{"cut-bad-dimension", secCuts, func(b []byte) []byte { b[0] = 7; return b }},
		// Kid mutations must hit a live block (patched engines leave dead
		// relocated blocks in the pool, which validation rightly skips):
		// node 0's block is always referenced by the walk.
		{"kid-backward-ref", secKids, func(b []byte) []byte { return put32(b, int(eng.nodes[0].kidOff)*4, 0) }},
		{"kid-node-oob", secKids, func(b []byte) []byte { return put32(b, int(eng.nodes[0].kidOff)*4, 1<<28) }},
		{"kid-leaf-oob", secKids, func(b []byte) []byte { return put32(b, int(eng.nodes[0].kidOff)*4, 0xEFFFFFFF) }}, // ^ref = 1<<28: leaf index far past the table
		{"leaf-window-oob", secLeaves, func(b []byte) []byte { return put32(b, 4, 1<<29) }},
		{"leaf-negative-window", secLeaves, func(b []byte) []byte { return put32(b, 0, 0xFFFFFFFF) }},
		{"rule-id-oob", secRuleIDs, func(b []byte) []byte { return put32(b, 0, 1<<29) }},
		{"rule-id-negative", secRuleIDs, func(b []byte) []byte { return put32(b, 0, 0xFFFFFFFF) }},
		{"soa-disagrees-with-rules", secSoALo, func(b []byte) []byte {
			return put32(b, 0, binary.LittleEndian.Uint32(b)+1)
		}},
		{"soa-slack-dirty", secSoAHi, func(b []byte) []byte { b[len(b)-1] = 1; return b }},
		{"soa-slot-count-mismatch", secSoALo + 1, func(b []byte) []byte { return append(b, 0, 0, 0, 0) }},
		{"nodes-indivisible-length", secNodes, func(b []byte) []byte { return append(b, 0) }},
		{"truncated-meta", secMeta, func(b []byte) []byte { return b[:16] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := mutateSection(t, img, tc.sec, tc.fn)
			e, err := RestoreEngine(bytes.NewReader(bad))
			if err == nil {
				t.Fatal("forged image restored without error")
			}
			var fe *image.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("error %T (%v) is not a *image.FormatError", err, err)
			}
			if e != nil {
				t.Fatal("RestoreEngine returned an engine alongside an error")
			}
		})
	}

	t.Run("missing-section", func(t *testing.T) {
		secs, err := image.Read(bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		secs[0].ID = 99 // meta masquerades under an unknown ID
		var buf bytes.Buffer
		if _, err := image.Write(&buf, secs); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreEngine(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatal("image with a missing engine section restored")
		}
	})
	t.Run("raw-corruption-sweep", func(t *testing.T) {
		// Bit flips and truncations through the whole stack (sparse: the
		// container's own tests do the exhaustive sweep).
		for off := 0; off < len(img); off += 7 {
			bad := bytes.Clone(img)
			bad[off] ^= 1 << (off % 8)
			if _, err := RestoreEngine(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at %d restored cleanly", off)
			}
			if _, err := RestoreEngine(bytes.NewReader(img[:off])); err == nil {
				t.Fatalf("truncation at %d restored cleanly", off)
			}
		}
	})
}

// TestRestoredEnginePatches proves a restored engine keeps full
// live-update capability: patches applied to source and replica stay
// classify-identical, and the replica's appends can never write into a
// neighboring arena's image bytes (the dedicated-slack layout).
func TestRestoredEnginePatches(t *testing.T) {
	tree, eng, live := buildChurned(t, core.HyperCuts, 300, 0, 41)
	img := snapshotBytes(t, eng)
	rep, err := RestoreEngine(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	pool := classbench.Generate(classbench.FW1(), 50, 42)
	for i := range pool {
		r := pool[i]
		r.ID = len(live)
		d, err := tree.InsertDelta(r)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, r)
		if eng, err = eng.Patch(d); err != nil {
			t.Fatal(err)
		}
		if rep, err = rep.Patch(d); err != nil {
			t.Fatalf("patch on restored engine: %v", err)
		}
	}
	trace := classbench.GenerateTrace(live, 3000, 43)
	for i, p := range trace {
		if w, g := eng.Classify(p), rep.Classify(p); g != w {
			t.Fatalf("packet %d: patched replica=%d patched source=%d", i, g, w)
		}
	}
	// The original restored arenas' image must be intact: a fresh
	// restore of the same bytes still validates (appends above went to
	// dedicated slack or fresh allocations, never a neighbor section).
	if _, err := RestoreEngine(bytes.NewReader(img)); err != nil {
		t.Fatalf("image corrupted by patching a restored engine: %v", err)
	}
}
