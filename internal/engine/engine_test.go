package engine

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/linear"
	"repro/internal/rule"
)

func randomPackets(n int, seed int64) []rule.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]rule.Packet, n)
	for i := range pkts {
		pkts[i] = rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Proto:   uint8(rng.Intn(256)),
		}
	}
	return pkts
}

// TestDifferentialClassify asserts, for seeded ClassBench rulesets across
// sizes, that the flat engine, the pointer-walking tree and the linear
// reference return identical match IDs for thousands of packets — for
// both algorithms and both speed settings, and for engines compiled from
// the sequential (Workers=1) and parallel builds.
func TestDifferentialClassify(t *testing.T) {
	profiles := []string{"acl1", "fw1"}
	sizes := []int{60, 300, 1000}
	for _, prof := range profiles {
		p, err := classbench.ProfileByName(prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range sizes {
			rs := classbench.Generate(p, n, 2008)
			lin := linear.New(rs)
			// Mix of likely-matching trace packets and uniform noise.
			pkts := append(classbench.GenerateTrace(rs, 1500, 2009), randomPackets(2000, 2010)...)
			for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
				for _, speed := range []int{0, 1} {
					cfg := core.DefaultConfig(algo)
					cfg.Speed = speed
					cfg.Workers = 1
					seqTree, err := core.Build(rs, cfg)
					if err != nil {
						t.Fatalf("%s n=%d %v speed=%d sequential build: %v", prof, n, algo, speed, err)
					}
					cfg.Workers = runtime.GOMAXPROCS(0)
					parTree, err := core.Build(rs, cfg)
					if err != nil {
						t.Fatalf("%s n=%d %v speed=%d parallel build: %v", prof, n, algo, speed, err)
					}
					seqEng := Compile(seqTree)
					parEng := Compile(parTree)
					for i, pkt := range pkts {
						want := lin.Classify(pkt)
						if got := seqTree.Classify(pkt); got != want {
							t.Fatalf("%s n=%d %v speed=%d pkt %d: tree=%d linear=%d", prof, n, algo, speed, i, got, want)
						}
						if got := seqEng.Classify(pkt); got != want {
							t.Fatalf("%s n=%d %v speed=%d pkt %d: engine=%d linear=%d", prof, n, algo, speed, i, got, want)
						}
						if got := parEng.Classify(pkt); got != want {
							t.Fatalf("%s n=%d %v speed=%d pkt %d: parallel-build engine=%d linear=%d", prof, n, algo, speed, i, got, want)
						}
					}
				}
			}
		}
	}
}

func TestClassifyBatchMatchesClassify(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 7)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	pkts := append(classbench.GenerateTrace(rs, 1000, 8), randomPackets(1000, 9)...)
	out := make([]int32, len(pkts))
	e.ClassifyBatch(pkts, out)
	for i, p := range pkts {
		if want := e.Classify(p); int32(want) != out[i] {
			t.Fatalf("pkt %d: batch=%d single=%d", i, out[i], want)
		}
	}
	par := make([]int32, len(pkts))
	e.ParallelClassify(pkts, par, 4)
	for i := range out {
		if par[i] != out[i] {
			t.Fatalf("pkt %d: parallel=%d batch=%d", i, par[i], out[i])
		}
	}
}

// TestClassifyBatchZeroAlloc pins the acceptance criterion: the batched
// path performs zero heap allocations.
func TestClassifyBatchZeroAlloc(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	pkts := classbench.GenerateTrace(rs, 512, 2009)
	out := make([]int32, len(pkts))
	if allocs := testing.AllocsPerRun(10, func() {
		e.ClassifyBatch(pkts, out)
	}); allocs != 0 {
		t.Fatalf("ClassifyBatch allocated %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		e.Classify(pkts[0])
	}); allocs != 0 {
		t.Fatalf("Classify allocated %.1f times per run, want 0", allocs)
	}
}

func TestClassifyBatchShortOutPanics(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 60, 1)
	tree, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short out slice")
		}
	}()
	e.ClassifyBatch(make([]rule.Packet, 4), make([]int32, 3))
}

// TestCompileMirrorsLayout checks the flat image against the tree's own
// accounting: node count equals internal words, leaf count equals the
// deduplicated leaf order, and every rule ID pool entry is in range.
func TestCompileMirrorsLayout(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 800, 2008)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	e := Compile(tree)
	if e.NumNodes() != len(tree.Internals()) {
		t.Errorf("NumNodes = %d, want %d", e.NumNodes(), len(tree.Internals()))
	}
	if e.NumLeaves() != len(tree.Leaves()) {
		t.Errorf("NumLeaves = %d, want %d", e.NumLeaves(), len(tree.Leaves()))
	}
	if e.NumRules() != len(rs) {
		t.Errorf("NumRules = %d, want %d", e.NumRules(), len(rs))
	}
	if e.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	for _, id := range e.ruleIDs {
		if id < 0 || int(id) >= len(rs) {
			t.Fatalf("rule ID %d out of range", id)
		}
	}
}
