//go:build !purego

#include "textflag.h"

// Fused AVX2 window scan over the SoA comparator-bank arenas: the
// software rendering of the paper's bank of parallel range comparators,
// 8 comparators per instruction round. See scanArgs (soa_dispatch.go)
// for the argument block layout the offsets below hard-code (pinned by
// compile-time asserts) and scanSIMD for the calling contract.
//
// Structure (the register twin of soaBank.scan):
//
//   for each block (scanBlockLen first, scanTailLen after):
//     m = sweep(dim 0) & blockmask        // dims pre-ordered by selectivity
//     for dim 1..4: m &= sweep(dim); if m == 0 break
//     if m != 0: return base + tzcnt(m)   // first bit = highest priority
//
// A sweep runs ceil(bl/8) rounds of 8 slots. Each round is the
// unsigned-wraparound range check rangeBit makes, vectorized: lanes
// match iff v-lo <= hi-lo (unsigned), i.e. min_u(v-lo, hi-lo) == v-lo,
// and VMOVMSKPS packs the 8 lane verdicts into GP bits. Rounds may read
// up to 7 slots past the window (and, on the last window of the arena,
// past the arena length): soaBank.pad() guarantees soaPadSlots of
// allocated slack, and the block mask discards the stray lanes.
//
// Register plan:
//   R15 args    R14 n      R13 base    R12 width   R11 blockmask
//   R10 m       R9  sweep mask         R8 movemask scratch
//   SI  lo ptr  DI  hi ptr  AX lane byte offset / result
//   BX  bl      CX  bit position       DX dim index
//   Y0  broadcast field    Y1-Y6 lanes

// SWEEP(label): mask of the current dimension over the current block.
// In: SI/DI dimension arena pointers (at block base), Y0 broadcast
// field, BX block length. Out: R9. Clobbers AX, CX, R8, Y1-Y6.
#define SWEEP(label)                  \
	XORQ  R9, R9                  \
	XORQ  AX, AX                  \
	XORQ  CX, CX                  \
label:                                \
	VMOVDQU   (SI)(AX*1), Y1      \ // lo[j..j+7]
	VMOVDQU   (DI)(AX*1), Y2      \ // hi[j..j+7]
	VPSUBD    Y1, Y0, Y3          \ // v - lo
	VPSUBD    Y1, Y2, Y4          \ // hi - lo
	VPMINUD   Y3, Y4, Y5          \
	VPCMPEQD  Y5, Y3, Y6          \ // all-ones where v-lo <= hi-lo
	VMOVMSKPS Y6, R8              \
	SHLQ      CX, R8              \
	ORQ       R8, R9              \
	ADDQ      $32, AX             \
	ADDQ      $8, CX              \
	CMPQ      CX, BX              \
	JL        label

// func scanWindowASM(a *scanArgs) int32
TEXT ·scanWindowASM(SB), NOSPLIT, $0-12
	MOVQ    a+0(FP), R15
	MOVLQSX 100(R15), R14        // n
	XORQ    R13, R13             // base = 0
	MOVQ    $16, R12             // width = scanBlockLen

block:
	MOVQ R14, BX
	SUBQ R13, BX                 // rem = n - base
	JLE  miss
	CMPQ BX, R12
	JLE  lenok
	MOVQ R12, BX                 // bl = min(rem, width)
lenok:
	MOVQ $-1, R11                // blockmask = (1<<bl)-1; bl==64 keeps ~0
	CMPQ BX, $64
	JE   dim0
	MOVQ BX, CX
	MOVQ $1, R11
	SHLQ CX, R11
	DECQ R11

dim0:
	// Most selective dimension: its mask (cut to the block) seeds m.
	MOVQ         (R15), SI       // lo[0]
	MOVQ         40(R15), DI     // hi[0]
	LEAQ         (SI)(R13*4), SI
	LEAQ         (DI)(R13*4), DI
	VPBROADCASTD 80(R15), Y0     // f[0]
	SWEEP(sweep0)
	ANDQ  R11, R9
	MOVQ  R9, R10
	TESTQ R10, R10
	JZ    nextblock

	MOVQ $1, DX
dimloop:
	MOVQ         (R15)(DX*8), SI
	MOVQ         40(R15)(DX*8), DI
	LEAQ         (SI)(R13*4), SI
	LEAQ         (DI)(R13*4), DI
	VPBROADCASTD 80(R15)(DX*4), Y0
	SWEEP(sweepn)
	ANDQ R9, R10
	JZ   nextblock               // mask collapsed: no match in this block
	INCQ DX
	CMPQ DX, $5                  // rule.NumDims
	JL   dimloop

	// Survivors match all five dimensions: lowest bit = first slot in
	// priority order.
	BSFQ R10, AX
	ADDQ R13, AX
	VZEROUPPER
	MOVL AX, ret+8(FP)
	RET

nextblock:
	ADDQ BX, R13                 // base += bl
	MOVQ $64, R12                // width = scanTailLen
	JMP  block

miss:
	VZEROUPPER
	MOVL $-1, ret+8(FP)
	RET

// func cpuidASM(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidASM(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
