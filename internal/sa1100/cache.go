package sa1100

// Cache is a set-associative LRU cache simulator modelling the StrongARM
// SA-1100's 8 KB data cache (32-byte lines, 32-way associative). The
// software classification algorithms' memory-access traces are replayed
// through it to estimate stall cycles, replacing the Sim-Panalyzer
// simulation the paper used (see DESIGN.md substitutions).
type Cache struct {
	lineBytes uint32
	sets      uint32
	ways      int

	// tags[set] holds the resident line tags in LRU order (front =
	// most recently used).
	tags [][]uint32

	hits, misses int64
}

// NewDCache returns the SA-1100 data cache: 8 KB, 32-byte lines, 32-way.
func NewDCache() *Cache { return NewCache(8*1024, 32, 32) }

// NewCache builds a cache with the given total size, line size and
// associativity. Sizes must be powers of two.
func NewCache(totalBytes, lineBytes, ways int) *Cache {
	lines := totalBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		lineBytes: uint32(lineBytes),
		sets:      uint32(sets),
		ways:      ways,
		tags:      make([][]uint32, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint32, 0, ways)
	}
	return c
}

// Access touches size bytes at addr and returns the number of line misses
// incurred (an access spanning a line boundary may miss more than once).
func (c *Cache) Access(addr, size uint32) int {
	if size == 0 {
		size = 1
	}
	first := addr / c.lineBytes
	last := (addr + size - 1) / c.lineBytes
	misses := 0
	for line := first; ; line++ {
		if c.touch(line) {
			c.hits++
		} else {
			c.misses++
			misses++
		}
		if line == last {
			break
		}
	}
	return misses
}

// touch looks a line tag up, updating LRU order; returns true on hit.
func (c *Cache) touch(line uint32) bool {
	set := line % c.sets
	ws := c.tags[set]
	for i, tag := range ws {
		if tag == line {
			// Move to front.
			copy(ws[1:i+1], ws[:i])
			ws[0] = line
			return true
		}
	}
	// Miss: insert at front, evict LRU if full.
	if len(ws) < c.ways {
		ws = append(ws, 0)
	}
	copy(ws[1:], ws)
	ws[0] = line
	c.tags[set] = ws
	return false
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }

// Reset clears cache contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
	c.hits, c.misses = 0, 0
}
