package sa1100

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/rule"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 32, 2) // 16 sets, 2-way
	if m := c.Access(0, 4); m != 1 {
		t.Errorf("cold access misses = %d, want 1", m)
	}
	if m := c.Access(0, 4); m != 0 {
		t.Errorf("warm access misses = %d, want 0", m)
	}
	if m := c.Access(4, 4); m != 0 {
		t.Errorf("same line misses = %d, want 0", m)
	}
	// An access spanning two lines can miss twice.
	if m := c.Access(60, 8); m != 2 {
		t.Errorf("straddling access misses = %d, want 2", m)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 3 {
		t.Errorf("stats = (%d,%d), want (2,3)", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(64, 32, 1) // 2 sets, direct-mapped, 32B lines
	c.Access(0, 1)           // line 0 -> set 0
	c.Access(64, 1)          // line 2 -> set 0, evicts line 0
	if m := c.Access(0, 1); m != 1 {
		t.Error("evicted line should miss")
	}
}

func TestCacheAssociativityKeepsLines(t *testing.T) {
	c := NewCache(128, 32, 2) // 2 sets, 2-way
	c.Access(0, 1)            // line 0, set 0
	c.Access(64, 1)           // line 2, set 0
	if m := c.Access(0, 1); m != 0 {
		t.Error("2-way set should retain both lines")
	}
	c.Access(128, 1) // line 4, set 0 -> evicts LRU (line 2)
	if m := c.Access(0, 1); m != 0 {
		t.Error("MRU line evicted instead of LRU")
	}
	if m := c.Access(64, 1); m != 1 {
		t.Error("LRU line should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewDCache()
	c.Access(0, 4)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("reset did not clear stats")
	}
	if m := c.Access(0, 4); m != 1 {
		t.Error("reset did not clear contents")
	}
}

func TestMeasureClassificationShape(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 61)
	trace := classbench.GenerateTrace(rs, 2000, 62)

	hc, err := hicuts.Build(rs, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := MeasureClassification(hc, trace, DefaultCosts())
	if st.Packets != len(trace) {
		t.Fatalf("packets %d", st.Packets)
	}
	// Calibration band: the paper reports software decision trees at
	// roughly 2-10k cycles/packet on the SA-1100 (Tables 6/7 imply
	// ~2,300-9,500). Accept a generous band around it.
	if st.CyclesPerPacket < 300 || st.CyclesPerPacket > 50000 {
		t.Errorf("HiCuts cycles/packet %.0f outside plausible SA-1100 band", st.CyclesPerPacket)
	}
	if st.PacketsPerSecond > 2e6 {
		t.Errorf("software throughput %.0f pps is implausibly high (paper: <0.5 Mpps)", st.PacketsPerSecond)
	}
	if st.EnergyPerPacketJ <= 0 {
		t.Error("no energy accounted")
	}
	wantE := st.CyclesPerPacket * EnergyPerCycleJ
	if diff := st.EnergyPerPacketJ - wantE; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("energy inconsistent with cycles")
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestLinearSlowerThanTreePerPacket(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 1000, 63)
	trace := classbench.GenerateTrace(rs, 1500, 64)
	hc, err := hicuts.Build(rs, hicuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tree := MeasureClassification(hc, trace, DefaultCosts())
	lin := MeasureClassification(linear.New(rs), trace, DefaultCosts())
	if lin.CyclesPerPacket < tree.CyclesPerPacket {
		t.Errorf("linear scan (%.0f cyc) beat the decision tree (%.0f cyc) on 1000 rules",
			lin.CyclesPerPacket, tree.CyclesPerPacket)
	}
}

func TestHyperCutsMeasurable(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 65)
	trace := classbench.GenerateTrace(rs, 1000, 66)
	hyc, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := MeasureClassification(hyc, trace, DefaultCosts())
	if st.CyclesPerPacket <= 0 || st.CacheMisses < 0 {
		t.Errorf("bad stats: %+v", st)
	}
}

func TestBuildEnergyMonotonicInWork(t *testing.T) {
	small := BuildWork{CutEvaluations: 10, RuleChildOps: 100, RulePushes: 50, Nodes: 5, Rules: 60}
	big := BuildWork{CutEvaluations: 100, RuleChildOps: 10000, RulePushes: 5000, Nodes: 500, Rules: 2191}
	if BuildCycles(small) >= BuildCycles(big) {
		t.Error("more work must cost more cycles")
	}
	if BuildEnergyJ(small) <= 0 {
		t.Error("energy must be positive")
	}
	if BuildSeconds(big) <= BuildSeconds(small) {
		t.Error("seconds must grow with work")
	}
	// Energy = cycles * energy/cycle.
	w := big
	if got, want := BuildEnergyJ(w), float64(BuildCycles(w))*EnergyPerCycleJ; got != want {
		t.Errorf("BuildEnergyJ = %g, want %g", got, want)
	}
}

func TestEnergyPerCycleMatchesPaperConstants(t *testing.T) {
	// 42.45 mW at 200 MHz = 2.1225e-10 J/cycle.
	want := 2.1225e-10
	if diff := EnergyPerCycleJ/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EnergyPerCycleJ = %g, want %g", EnergyPerCycleJ, want)
	}
}

func TestTraceSizesRecognized(t *testing.T) {
	// A classifier emitting each contract size must charge distinct costs.
	costs := DefaultCosts()
	fake := fakeClassifier{sizes: []uint32{sizePointer, sizeLeafHdr, sizeNodeHiCut, sizeRule, sizeNodeHyper, sizeTableEntry}}
	st := MeasureClassification(fake, []rule.Packet{{}}, costs)
	// Minimum: per-packet + all op charges, no asserts on exact value,
	// but it must exceed the bare per-packet cost.
	if st.Cycles <= int64(costs.PerPacket) {
		t.Errorf("cycles %d did not include op charges", st.Cycles)
	}
	if st.Accesses != int64(len(fake.sizes)) {
		t.Errorf("accesses %d, want %d", st.Accesses, len(fake.sizes))
	}
}

type fakeClassifier struct{ sizes []uint32 }

func (f fakeClassifier) ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (int, int) {
	for i, s := range f.sizes {
		trace(uint32(i*64), s)
	}
	return -1, len(f.sizes)
}
