// Package sa1100 models the cost and energy of running packet
// classification software on a StrongARM SA-1100 processor at 200 MHz,
// the platform the paper uses for all of its software baselines.
//
// The paper obtained its software numbers from Sim-Panalyzer (a
// SimpleScalar-ARM power simulator). That toolchain is not reproducible
// here, so this package substitutes an operation-level cost model (see
// DESIGN.md): the instrumented classifiers report their memory-access
// traces and structural work counts; this package replays loads through a
// simulated SA-1100 data cache, charges per-operation instruction costs
// (the SA-1100 has no divide instruction, so the divisions that HiCuts and
// HyperCuts traversal need are charged a software-division cost), and
// converts cycles to Joules using the normalized power figure of paper
// Table 5 (42.45 mW at 65 nm / 1 V).
package sa1100

import (
	"fmt"

	"repro/internal/rule"
)

// Device constants (paper Table 5, SA-1100 column).
const (
	// FreqHz is the SA-1100 clock used in the paper.
	FreqHz = 200e6
	// ProcessNm is the SA-1100's process technology.
	ProcessNm = 180
	// VoltageV is the SA-1100 core voltage.
	VoltageV = 1.8
	// NormalizedPowerW is the Table 5 normalized (65 nm, 1 V) datapath
	// power of the SA-1100.
	NormalizedPowerW = 0.04245
	// EnergyPerCycleJ is the normalized energy of one clock cycle.
	EnergyPerCycleJ = NormalizedPowerW / FreqHz
)

// Costs holds the per-operation cycle charges of the model. The defaults
// are calibrated so the software baselines land in the cycles-per-packet
// regime the paper reports (roughly 2-10 k cycles per packet, tens of
// seconds to build large structures).
type Costs struct {
	// PerPacket covers call overhead and header staging per lookup.
	PerPacket int
	// PerNode covers an internal-node visit, including the software
	// division the cut-index computation needs (SA-1100 has no divide
	// instruction; __udivsi3 costs tens of cycles).
	PerNode int
	// PerPointer covers a child-pointer chase.
	PerPointer int
	// PerRule covers a 5-field rule comparison in a leaf scan.
	PerRule int
	// PerNodeMulti is the extra charge for a HyperCuts internal node:
	// one software division per cut dimension plus compacted-region
	// bounds checks.
	PerNodeMulti int
	// PerTableEntry covers an RFC-style flat table lookup step.
	PerTableEntry int
	// MissPenalty is the DRAM fill penalty per data-cache line miss.
	MissPenalty int
}

// DefaultCosts returns the calibrated cost model. The constants reflect
// compiled ARMv4 code on a single-issue in-order core: classification
// call overhead and header staging (PerPacket), cut-index arithmetic
// including the software division the SA-1100 needs (PerNode), and
// five-field rule comparisons with branches and load-use stalls
// (PerRule). They are calibrated so the software baselines land in the
// 2-10k cycles/packet regime paper Tables 6/7 imply.
func DefaultCosts() Costs {
	return Costs{
		PerPacket:     400,
		PerNode:       260, // index arithmetic + __udivsi3 software divide
		PerNodeMulti:  160, // additional divisions + region bound checks
		PerPointer:    20,
		PerRule:       80, // 5 range compares + branches + load stalls
		PerTableEntry: 14,
		MissPenalty:   30, // ~100ns DRAM at 200 MHz
	}
}

// Access-size contract with the instrumented classifiers: the software
// trees emit accesses whose size identifies the operation kind.
const (
	sizePointer    = 4  // child pointer chase
	sizeLeafHdr    = 8  // leaf header
	sizeNodeHiCut  = 16 // HiCuts internal node header
	sizeRule       = 20 // packed rule compare
	sizeNodeHyper  = 24 // HyperCuts internal node header
	sizeTableEntry = 2  // RFC equivalence-class table entry
)

// TracedClassifier is implemented by every software classifier in this
// repository: it classifies one packet while reporting each memory access.
type TracedClassifier interface {
	ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (match, accesses int)
}

// ClassStats aggregates a classification run on the SA-1100 model.
type ClassStats struct {
	Packets         int
	Matched         int
	Cycles          int64
	Accesses        int64
	CacheMisses     int64
	CyclesPerPacket float64
	// EnergyPerPacketJ is the normalized (65 nm, 1 V) energy per lookup:
	// the quantity of paper Table 6.
	EnergyPerPacketJ float64
	// PacketsPerSecond is the throughput at 200 MHz: paper Table 7.
	PacketsPerSecond float64
	// WorstCaseCycles is the largest single-packet cycle count seen.
	WorstCaseCycles int64
}

// MeasureClassification replays trace through c on the modelled SA-1100.
// The first min(len/10, 1000) packets are replayed once beforehand to warm
// the data cache, so short traces report steady-state behaviour (the
// paper's throughput/energy figures are steady-state averages).
func MeasureClassification(c TracedClassifier, trace []rule.Packet, costs Costs) ClassStats {
	dcache := NewDCache()
	warm := len(trace) / 10
	if warm > 1000 {
		warm = 1000
	}
	for _, p := range trace[:warm] {
		c.ClassifyTraced(p, func(addr, size uint32) { dcache.Access(addr, size) })
	}
	dcache.hits, dcache.misses = 0, 0
	var st ClassStats
	for _, p := range trace {
		var cyc int64 = int64(costs.PerPacket)
		var acc int64
		match, _ := c.ClassifyTraced(p, func(addr, size uint32) {
			acc++
			misses := dcache.Access(addr, size)
			cyc += int64(misses) * int64(costs.MissPenalty)
			switch size {
			case sizePointer:
				cyc += int64(costs.PerPointer)
			case sizeNodeHiCut:
				cyc += int64(costs.PerNode)
			case sizeNodeHyper:
				cyc += int64(costs.PerNode + costs.PerNodeMulti)
			case sizeRule:
				cyc += int64(costs.PerRule)
			case sizeTableEntry:
				cyc += int64(costs.PerTableEntry)
			default:
				cyc += int64(costs.PerPointer)
			}
		})
		if match >= 0 {
			st.Matched++
		}
		st.Packets++
		st.Cycles += cyc
		st.Accesses += acc
		if cyc > st.WorstCaseCycles {
			st.WorstCaseCycles = cyc
		}
	}
	_, st.CacheMisses = dcache.Stats()
	if st.Packets > 0 {
		st.CyclesPerPacket = float64(st.Cycles) / float64(st.Packets)
		st.EnergyPerPacketJ = st.CyclesPerPacket * EnergyPerCycleJ
		st.PacketsPerSecond = FreqHz / st.CyclesPerPacket
	}
	return st
}

// BuildWork abstracts the structural work counters every tree builder in
// this repository records, so build energy can be charged uniformly.
type BuildWork struct {
	// CutEvaluations is the number of candidate cut evaluations.
	CutEvaluations int64
	// RuleChildOps is the number of rule-to-child interval computations.
	RuleChildOps int64
	// RulePushes is the number of rule appends into child lists.
	RulePushes int64
	// Nodes is the number of tree nodes created.
	Nodes int
	// Rules is the ruleset size (memory initialization work).
	Rules int
}

// Build-phase per-operation cycle charges. Building runs out of cache for
// large sets, so an average memory-stall share is folded into each charge.
const (
	buildCyclesPerEval    = 220 // heuristic bookkeeping per candidate evaluation
	buildCyclesPerChildOp = 26  // range intersection, shift, compare + amortized stalls
	buildCyclesPerPush    = 34  // list append incl. occasional growth copy
	buildCyclesPerNode    = 900 // node allocation and initialization
	buildCyclesPerRule    = 120 // loading and staging one rule
)

// BuildCycles converts build work into modelled SA-1100 cycles.
func BuildCycles(w BuildWork) int64 {
	return w.CutEvaluations*buildCyclesPerEval +
		w.RuleChildOps*buildCyclesPerChildOp +
		w.RulePushes*buildCyclesPerPush +
		int64(w.Nodes)*buildCyclesPerNode +
		int64(w.Rules)*buildCyclesPerRule
}

// BuildEnergyJ converts build work into normalized Joules (paper Table 3).
func BuildEnergyJ(w BuildWork) float64 {
	return float64(BuildCycles(w)) * EnergyPerCycleJ
}

// BuildSeconds is the wall-clock build time on the modelled SA-1100.
func BuildSeconds(w BuildWork) float64 {
	return float64(BuildCycles(w)) / FreqHz
}

// String renders the headline numbers of a classification run.
func (st ClassStats) String() string {
	return fmt.Sprintf("packets=%d cycles/pkt=%.0f pps=%.0f energy/pkt=%.3eJ misses=%d",
		st.Packets, st.CyclesPerPacket, st.PacketsPerSecond, st.EnergyPerPacketJ, st.CacheMisses)
}
