// Package image defines the versioned, checksummed container format for
// engine snapshot images: a fixed header, a CRC-protected section table,
// and 8-byte-aligned data sections.
//
// The container is deliberately dumb: it knows section IDs and bytes,
// not engine semantics. The engine layer (engine.Snapshot/Restore)
// decides what goes in each section and how to validate the decoded
// arenas; this layer guarantees only structural integrity — magic,
// format version, total length, per-section CRC32C, strict section
// packing — so that any truncation or bit corruption fails closed with
// a *FormatError before a single section byte is interpreted.
//
// Layout (all integers little-endian):
//
//	off  0  magic "PCEI" (4 bytes)
//	off  4  format version (uint16)
//	off  6  section count  (uint16)
//	off  8  total image length in bytes (uint64)
//	off 16  CRC32C of the raw section table (uint32)
//	off 20  reserved, must be zero (uint32)
//	off 24  section table: count entries of
//	          {id uint32, crc32c uint32, off uint64, len uint64}
//	...     sections, each starting at align8(previous end), zero pad
//	        between and after; total length is align8(last end)
//
// Sections are packed strictly in table order with only alignment
// padding between them, and the pad bytes must be zero: a reader can
// therefore mmap the image and alias arenas in place (every section
// offset is 8-aligned), and a writer's output is byte-deterministic for
// a given section list.
package image

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic is the 4-byte image signature ("packet classifier engine
	// image").
	Magic = "PCEI"
	// Version is the container format version this package reads and
	// writes. Readers reject any other version: sections are aliased
	// into live engine arenas, so there is no forward-compatible "skip
	// what you don't know" mode.
	Version = 1

	headerLen = 24
	entryLen  = 24
	alignment = 8

	// maxSectionLen bounds a single section so off+len arithmetic can
	// never overflow int64 even with a hostile table.
	maxSectionLen = 1 << 40
)

// crcTable is the Castagnoli polynomial table; CRC32C has hardware
// support (SSE4.2 / ARMv8 CRC) via the stdlib, which matters because
// restore latency is the whole point of the image path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b — exposed so tests and tools can
// recompute section checksums without duplicating the polynomial choice.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Section is one typed byte range of an image. IDs are assigned by the
// layer above (see engine's image.go); the container requires them to be
// unique within an image but assigns no meaning.
type Section struct {
	ID   uint32
	Data []byte
}

// FormatError is the typed error for every malformed-image condition:
// bad magic, version mismatch, truncation, checksum mismatch, table
// inconsistencies. Restore paths fail closed with one of these — they
// never panic and never return a partially-decoded result.
type FormatError struct {
	// Offset is the image byte offset at which the problem was
	// detected (best effort; -1 when not meaningful).
	Offset int64
	// Section is the ID of the offending section, 0 when the error is
	// not section-specific.
	Section uint32
	// Msg describes the failure.
	Msg string
}

func (e *FormatError) Error() string {
	switch {
	case e.Section != 0:
		return fmt.Sprintf("image: section %d: %s", e.Section, e.Msg)
	case e.Offset >= 0:
		return fmt.Sprintf("image: offset %d: %s", e.Offset, e.Msg)
	default:
		return "image: " + e.Msg
	}
}

func errf(off int64, sec uint32, format string, args ...any) error {
	return &FormatError{Offset: off, Section: sec, Msg: fmt.Sprintf(format, args...)}
}

// align8 rounds n up to the next multiple of the section alignment.
func align8(n int64) int64 { return (n + alignment - 1) &^ (alignment - 1) }

// Size returns the exact encoded size of an image holding the given
// sections, without encoding it.
func Size(sections []Section) int64 {
	off := align8(headerLen + int64(len(sections))*entryLen)
	for _, s := range sections {
		off = align8(off + int64(len(s.Data)))
	}
	return off
}

// Write encodes sections into the container format and writes the image
// to w. It returns the number of bytes written (Size(sections) on
// success). Section order is preserved; IDs must be unique and nonzero.
func Write(w io.Writer, sections []Section) (int64, error) {
	if len(sections) > 0xFFFF {
		return 0, fmt.Errorf("image: %d sections exceed the 16-bit count field", len(sections))
	}
	seen := make(map[uint32]bool, len(sections))
	for _, s := range sections {
		if s.ID == 0 {
			return 0, fmt.Errorf("image: section ID 0 is reserved")
		}
		if seen[s.ID] {
			return 0, fmt.Errorf("image: duplicate section ID %d", s.ID)
		}
		seen[s.ID] = true
		if int64(len(s.Data)) >= maxSectionLen {
			return 0, fmt.Errorf("image: section %d exceeds the %d-byte section bound", s.ID, int64(maxSectionLen))
		}
	}

	total := Size(sections)
	buf := make([]byte, total)
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint16(buf[4:6], Version)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(sections)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(total))

	tbl := buf[headerLen : headerLen+len(sections)*entryLen]
	off := align8(headerLen + int64(len(sections))*entryLen)
	for i, s := range sections {
		e := tbl[i*entryLen:]
		binary.LittleEndian.PutUint32(e[0:4], s.ID)
		binary.LittleEndian.PutUint32(e[4:8], Checksum(s.Data))
		binary.LittleEndian.PutUint64(e[8:16], uint64(off))
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.Data)))
		copy(buf[off:], s.Data)
		off = align8(off + int64(len(s.Data)))
	}
	binary.LittleEndian.PutUint32(buf[16:20], Checksum(tbl))

	n, err := w.Write(buf)
	return int64(n), err
}

// readBody reads exactly want bytes from r with geometric buffer growth
// (first chunk capped), so a corrupt or hostile total-length field can
// never force an allocation much larger than the bytes r actually
// delivers: growth doubles, so a short stream fails with at most ~2x
// the delivered bytes allocated.
func readBody(r io.Reader, want int64) ([]byte, error) {
	const firstChunk = 4 << 20
	buf := make([]byte, 0, min(want, firstChunk))
	for int64(len(buf)) < want {
		step := min(want-int64(len(buf)), max(int64(len(buf)), firstChunk))
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, errf(headerLen+int64(start), 0, "truncated image body: %v", err)
		}
	}
	return buf, nil
}

// Read decodes an image from r, validating the header, the section
// table checksum, strict section packing (including zero padding), and
// every section's CRC32C. On success the returned sections appear in
// table order and their Data slices alias one contiguous internal
// buffer, 8-aligned at each section start — callers may therefore alias
// typed arenas over them without copying (the buffer stays reachable as
// long as any Data slice is). Any structural defect — truncation at any
// byte, a flipped bit anywhere, a version or magic mismatch — returns a
// *FormatError; Read never panics on malformed input.
func Read(r io.Reader) ([]Section, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, errf(0, 0, "truncated header: %v", err)
	}
	total, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	body, err := readBody(r, int64(total)-headerLen)
	if err != nil {
		return nil, err
	}
	return parse(hdr[:], body)
}

// ReadBytes decodes an image already resident in memory — a mapped
// file, os.ReadFile result, or an in-process snapshot — with the same
// validation as Read but zero copies and zero allocation proportional
// to the image: the returned sections alias b directly. b must be
// exactly one image (trailing bytes are a *FormatError) and must not be
// mutated while any returned section is in use.
func ReadBytes(b []byte) ([]Section, error) {
	if len(b) < headerLen {
		return nil, errf(0, 0, "truncated header: %d bytes", len(b))
	}
	total, err := parseHeader(b[:headerLen])
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != total {
		return nil, errf(8, 0, "image is %d bytes, header says %d", len(b), total)
	}
	return parse(b[:headerLen], b[headerLen:])
}

// parseHeader validates the fixed header and returns the total image
// length it declares.
func parseHeader(hdr []byte) (uint64, error) {
	if string(hdr[0:4]) != Magic {
		return 0, errf(0, 0, "bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return 0, errf(4, 0, "unsupported format version %d (want %d)", v, Version)
	}
	if reserved := binary.LittleEndian.Uint32(hdr[20:24]); reserved != 0 {
		return 0, errf(20, 0, "reserved header field is %#x, want 0", reserved)
	}
	count := int(binary.LittleEndian.Uint16(hdr[6:8]))
	total := binary.LittleEndian.Uint64(hdr[8:16])
	tableLen := int64(count) * entryLen
	if total >= maxSectionLen*2 {
		return 0, errf(8, 0, "total length %d exceeds the image size bound", total)
	}
	if total < uint64(align8(headerLen+tableLen)) || total%alignment != 0 {
		return 0, errf(8, 0, "total length %d inconsistent with %d-section table", total, count)
	}
	return total, nil
}

// parse validates the section table and sections of an image split
// into its header and body (everything past the header). Returned
// sections alias body.
func parse(hdr, body []byte) ([]Section, error) {
	count := int(binary.LittleEndian.Uint16(hdr[6:8]))
	total := binary.LittleEndian.Uint64(hdr[8:16])
	tableCRC := binary.LittleEndian.Uint32(hdr[16:20])
	tableLen := int64(count) * entryLen
	tbl := body[:tableLen]
	if got := Checksum(tbl); got != tableCRC {
		return nil, errf(16, 0, "section table checksum mismatch: got %#08x, want %#08x", got, tableCRC)
	}

	sections := make([]Section, count)
	seen := make(map[uint32]bool, count)
	cursor := align8(headerLen + tableLen)
	for i := range sections {
		e := tbl[i*entryLen:]
		id := binary.LittleEndian.Uint32(e[0:4])
		crc := binary.LittleEndian.Uint32(e[4:8])
		off := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		entryOff := headerLen + int64(i)*entryLen
		if id == 0 {
			return nil, errf(entryOff, 0, "section ID 0 is reserved")
		}
		if seen[id] {
			return nil, errf(entryOff, id, "duplicate section ID")
		}
		seen[id] = true
		if length >= maxSectionLen {
			return nil, errf(entryOff, id, "section length %d exceeds the %d-byte bound", length, int64(maxSectionLen))
		}
		// Strict packing: each section starts exactly at the aligned end
		// of its predecessor. This is what makes the layout canonical
		// (writer output is byte-deterministic) and is also a cheap,
		// total bounds check: no overlap, no out-of-range, no hidden
		// unaccounted bytes.
		if off != uint64(cursor) {
			return nil, errf(entryOff, id, "section offset %d, want %d (strict packing)", off, cursor)
		}
		start := cursor - headerLen
		if start+int64(length) > int64(len(body)) {
			return nil, errf(entryOff, id, "section [%d,+%d) exceeds total length %d", off, length, total)
		}
		data := body[start : start+int64(length) : start+int64(length)]
		if got := Checksum(data); got != crc {
			return nil, errf(int64(off), id, "section checksum mismatch: got %#08x, want %#08x", got, crc)
		}
		sections[i] = Section{ID: id, Data: data}
		cursor = align8(cursor + int64(length))
	}
	if uint64(cursor) != total {
		return nil, errf(8, 0, "sections end at %d but total length is %d", cursor, total)
	}
	// Alignment pad bytes between and after sections must be zero: a
	// flipped bit in padding is corruption like any other.
	pos := align8(headerLen + tableLen)
	for i := range sections {
		end := pos - headerLen + int64(len(sections[i].Data))
		pos = align8(pos + int64(len(sections[i].Data)))
		for _, b := range body[end : pos-headerLen] {
			if b != 0 {
				return nil, errf(headerLen+end, sections[i].ID, "nonzero padding after section")
			}
		}
	}
	return sections, nil
}
