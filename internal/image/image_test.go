package image

import (
	"bytes"
	"errors"
	"testing"
)

func sample() []Section {
	return []Section{
		{ID: 1, Data: []byte("meta")},                    // 4 bytes: exercises padding
		{ID: 2, Data: bytes.Repeat([]byte{0xAB}, 4096)},  // aligned length
		{ID: 7, Data: []byte{}},                          // empty section is legal
		{ID: 3, Data: bytes.Repeat([]byte{0x01, 0}, 21)}, // 42 bytes: padding again
	}
}

func encode(t *testing.T, secs []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, secs)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if n != int64(buf.Len()) || n != Size(secs) {
		t.Fatalf("Write reported %d bytes, buffer has %d, Size says %d", n, buf.Len(), Size(secs))
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	img := encode(t, want)
	if img[0] != 'P' || img[1] != 'C' || img[2] != 'E' || img[3] != 'I' {
		t.Fatalf("image does not start with magic: % x", img[:4])
	}
	got, err := Read(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Errorf("section %d: ID %d, want %d (order must be preserved)", i, got[i].ID, want[i].ID)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("section %d: data mismatch", i)
		}
	}
}

func TestReadBytes(t *testing.T) {
	want := sample()
	img := encode(t, want)
	got, err := ReadBytes(img)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("section %d mismatch", i)
		}
		if len(got[i].Data) > 0 {
			// The zero-copy contract: sections alias the input buffer.
			if &got[i].Data[0] != &img[bytes.Index(img, got[i].Data)] {
				t.Fatalf("section %d does not alias the input", i)
			}
		}
	}
	wantTrailing := append(bytes.Clone(img), 0)
	if _, err := ReadBytes(wantTrailing); err == nil {
		t.Fatal("ReadBytes accepted trailing bytes")
	}
	for n := 0; n < len(img); n += 11 {
		if _, err := ReadBytes(img[:n]); err == nil {
			t.Fatalf("ReadBytes accepted truncation at %d", n)
		}
	}
	bad := bytes.Clone(img)
	bad[len(bad)-9] ^= 0x40
	var fe *FormatError
	if _, err := ReadBytes(bad); !errors.As(err, &fe) {
		t.Fatalf("ReadBytes corruption error %T, want *FormatError", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	a := encode(t, sample())
	b := encode(t, sample())
	if !bytes.Equal(a, b) {
		t.Fatal("Write is not byte-deterministic for identical input")
	}
}

func TestSectionAlignment(t *testing.T) {
	img := encode(t, sample())
	got, err := Read(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, s := range got {
		if len(s.Data) == 0 {
			continue
		}
		if off := bytes.Index(img, s.Data); off < 0 || off%8 != 0 {
			t.Errorf("section %d (id %d) starts at image offset %d, not 8-aligned", i, s.ID, off)
		}
	}
}

func TestWriteRejectsBadSectionLists(t *testing.T) {
	if _, err := Write(&bytes.Buffer{}, []Section{{ID: 0}}); err == nil {
		t.Error("Write accepted reserved section ID 0")
	}
	if _, err := Write(&bytes.Buffer{}, []Section{{ID: 3}, {ID: 3}}); err == nil {
		t.Error("Write accepted duplicate section IDs")
	}
}

// wantFormatError asserts Read fails closed with a *FormatError.
func wantFormatError(t *testing.T, img []byte, what string) {
	t.Helper()
	secs, err := Read(bytes.NewReader(img))
	if err == nil {
		t.Fatalf("%s: Read succeeded, want *FormatError", what)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: error %T (%v) is not a *FormatError", what, err, err)
	}
	if secs != nil {
		t.Fatalf("%s: Read returned sections alongside error", what)
	}
}

func TestReadFailsClosed(t *testing.T) {
	img := encode(t, sample())

	t.Run("empty", func(t *testing.T) { wantFormatError(t, nil, "empty input") })
	t.Run("magic", func(t *testing.T) {
		bad := bytes.Clone(img)
		bad[0] ^= 0xFF
		wantFormatError(t, bad, "corrupt magic")
	})
	t.Run("version", func(t *testing.T) {
		bad := bytes.Clone(img)
		bad[4] = Version + 1
		wantFormatError(t, bad, "future version")
	})
	t.Run("reserved", func(t *testing.T) {
		bad := bytes.Clone(img)
		bad[21] = 0x80
		wantFormatError(t, bad, "nonzero reserved field")
	})
	t.Run("truncation", func(t *testing.T) {
		// Every proper prefix must fail: there is no length at which a
		// truncated image still parses.
		for n := 0; n < len(img); n++ {
			secs, err := Read(bytes.NewReader(img[:n]))
			var fe *FormatError
			if err == nil || !errors.As(err, &fe) || secs != nil {
				t.Fatalf("truncation at %d/%d bytes: err=%v", n, len(img), err)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		// A single flipped bit anywhere in the image must be caught by
		// the header validation, the table CRC, a section CRC, or the
		// padding check.
		for off := 0; off < len(img); off++ {
			bad := bytes.Clone(img)
			bad[off] ^= 1 << (off % 8)
			secs, err := Read(bytes.NewReader(bad))
			if err == nil {
				// The only acceptable escape is a flip that leaves the
				// image semantically identical — impossible here since
				// every byte is covered by a checksum or validated.
				t.Fatalf("bit flip at offset %d went undetected", off)
			}
			var fe *FormatError
			if !errors.As(err, &fe) || secs != nil {
				t.Fatalf("bit flip at offset %d: non-FormatError %T: %v", off, err, err)
			}
		}
	})
	t.Run("huge-total-length", func(t *testing.T) {
		// A lying total-length field must fail with a truncation error,
		// not an enormous allocation (readBody grows geometrically).
		bad := bytes.Clone(img)
		bad[14] = 0x7F // total length |= 0x7F000000000000
		wantFormatError(t, bad, "hostile total length")
	})
}
