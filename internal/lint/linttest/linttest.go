// Package linttest is a miniature analysistest: it parses and
// type-checks a testdata package from source, runs one analyzer over
// it with in-memory facts, and matches the diagnostics against
// `// want "regexp"` comments, reporting both missed and unexpected
// diagnostics. It exists because the module vendors only the analysis
// core (analysis, unitchecker, asmdecl, inspect) — not analysistest
// and its go/packages dependency tree — and the container has no
// network to fetch them; the harness needs nothing beyond the stdlib
// plus the vendored analysis types.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes testdata/src/<pkg> (relative to the test's working
// directory) with a and compares diagnostics against // want
// expectations.
func Run(t *testing.T, pkg string, a *analysis.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	fset := token.NewFileSet()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: unsafeAwareImporter{importer.ForCompiler(fset, "source", nil)}}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	objFacts := make(map[types.Object][]analysis.Fact)
	pkgFacts := make(map[*types.Package][]analysis.Fact)
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return lookupFact(objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			objFacts[obj] = append(objFacts[obj], fact)
		},
		ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
			return lookupFact(pkgFacts[p], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			pkgFacts[tpkg] = append(pkgFacts[tpkg], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, fs := range objFacts {
				for _, f := range fs {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for p, fs := range pkgFacts {
				for _, f := range fs {
					out = append(out, analysis.PackageFact{Package: p, Fact: f})
				}
			}
			return out
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s failed: %v", a.Name, err)
	}

	checkExpectations(t, fset, names, files, diags)
}

// lookupFact copies a stored fact of the same concrete type into the
// caller's pointer, mirroring the gob round-trip of real drivers.
func lookupFact(stored []analysis.Fact, fact analysis.Fact) bool {
	want := reflect.TypeOf(fact)
	for _, f := range stored {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

type unsafeAwareImporter struct{ base types.Importer }

func (i unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

// expectation is one `// want "re"` on a line; several regexps may sit
// on one line and each must match a distinct diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE matches `// want "re"...` (expectation on its own line) and
// `// want-prev "re"...` (expectation for the line above — used when
// the diagnostic lands on a //repro: directive line, which cannot
// carry a second comment).
var wantRE = regexp.MustCompile(`// want(-prev)? (.*)$`)

func checkExpectations(t *testing.T, fset *token.FileSet, names []string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] == "-prev" {
					line--
				}
				for _, q := range splitQuoted(m[2]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{pos.Filename, line, re, false})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	var surplus []string
diag:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				continue diag
			}
		}
		surplus = append(surplus, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
	}
	for _, s := range surplus {
		t.Errorf("%s", s)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want clause.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}
