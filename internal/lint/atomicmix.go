package lint

// atomicmix guards the memory model: a struct field accessed through
// address-style sync/atomic calls anywhere (atomic.LoadUint64(&s.f))
// must never be read or written plainly elsewhere — a plain access to
// an atomically-published word is a data race even when it "works"
// (the seqlock words, epoch pointers and telemetry counters all used
// to be this shape before the typed-atomic migration; the analyzer
// keeps the door shut). Typed atomics (atomic.Uint64 et al.) are
// immune by construction and need no checking. AtomicFields compose
// across packages as object facts on the field variables.

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AtomicFact marks a struct field accessed through address-style
// sync/atomic calls somewhere in the program.
type AtomicFact struct{}

func (*AtomicFact) AFact()         {}
func (*AtomicFact) String() string { return "atomic" }

var AtomicMixAnalyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       "fields accessed via sync/atomic must never be read or written plainly",
	Run:       runAtomicMix,
	FactTypes: []analysis.Fact{new(AtomicFact)},
}

func runAtomicMix(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)

	// Pass 1: find &s.f arguments of sync/atomic calls; the selector
	// nodes inside those arguments are sanctioned accesses.
	atomicFields := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutilCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if !isAtomicOpName(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op.String() != "&" {
					continue
				}
				sel, ok := unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldObject(pass.TypesInfo, sel); v != nil {
					atomicFields[v] = true
					sanctioned[sel] = true
					pass.ExportObjectFact(v, new(AtomicFact))
				}
			}
			return true
		})
	}

	// Pass 2: every other access to one of those fields (declared here
	// or in a dependency, via facts) is a race.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v := fieldObject(pass.TypesInfo, sel)
			if v == nil {
				return true
			}
			if !atomicFields[v] && !pass.ImportObjectFact(v, new(AtomicFact)) {
				return true
			}
			report(pass, idx, sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere; plain access is a data race (use the atomic API or a typed atomic)",
				v.Name())
			return true
		})
	}
	return nil, nil
}

func isAtomicOpName(name string) bool {
	for _, p := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldObject resolves a selector to the struct field it reads or
// writes, or nil if it is not a field access.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
