package lint

// hotpath proves the zero-alloc contract: every function annotated
// //repro:hotpath, and everything reachable from it through the static
// in-package call graph, must not allocate. Allocation here means the
// operations the runtime can turn into a heap allocation on the
// classify path: make/new, growing append, composite-literal escapes,
// closures, goroutine spawns, map writes, channel ops, string
// conversions/concatenation, boxing a non-pointer into an interface,
// and calls into allocation-happy stdlib packages (fmt, strconv, time,
// ...). Cross-package calls are resolved through exported CleanFacts
// (computed bottom-up by this same analyzer over dependencies under
// the vet driver) plus a small whitelist of known-alloc-free stdlib
// packages; anything unprovable is a diagnostic. Documented cold exits
// (sampled time.Now, error-path fmt.Errorf) are suppressed line by
// line with //repro:allow hotpath -- <why>, or function-wide with
// //repro:coldpath <why>.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CleanFact marks a function proven allocation-free (including its
// callees). Exported so the proof composes across packages under the
// vet driver.
type CleanFact struct{}

func (*CleanFact) AFact()         {}
func (*CleanFact) String() string { return "allocfree" }

var HotPathAnalyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       "functions annotated //repro:hotpath must be allocation-free over the whole reachable call graph",
	Run:       runHotPath,
	FactTypes: []analysis.Fact{new(CleanFact)},
}

// requiredHotRoots lists functions that MUST carry //repro:hotpath, so
// the annotation itself cannot silently rot: deleting the directive
// from a contract function is a pclint failure, not a lost check.
// Names are "Recv.Method" or "Func", keyed by package path.
var requiredHotRoots = map[string][]string{
	"repro/internal/engine": {
		"Engine.Classify", "Engine.ClassifyBatch", "Engine.scanLeaf",
		"soaBank.scanSIMD", "Handle.ClassifyBatchCached",
	},
	"repro/internal/flowcache": {"Cache.Probe", "Cache.ProbeBatch", "Cache.Insert"},
	"repro/internal/wire":      {"Reader.ReadBatch"},
	"repro/internal/stream":    {"appendIDs"},
	// Test fixture for the required-roots rule itself (linttest runs
	// testdata packages under their directory name as the path).
	"hotroots": {"MustBeHot"},
}

// allocFreePackages are stdlib packages whose exported functions and
// methods never heap-allocate (for the subset a data plane calls).
var allocFreePackages = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"unsafe":          true,
	"runtime":         true,
	"internal/cpu":    true,
	"internal/abi":    true,
}

// allocHappyPackages always allocate (or are banned from hot paths for
// latency reasons) — calling into them is a violation even if a fact
// could be computed.
var allocHappyPackages = map[string]bool{
	"fmt": true, "log": true, "log/slog": true, "errors": true,
	"strconv": true, "sort": true, "time": true, "os": true,
	"reflect": true, "strings": true, "bytes": true, "regexp": true,
	"runtime/pprof": true, "runtime/trace": true, "runtime/metrics": true,
}

type hotChecker struct {
	pass *analysis.Pass
	idx  *directiveIndex
	// decls maps package-level function objects to their declarations.
	decls map[*types.Func]*ast.FuncDecl
	// summary memoizes the first violation found in a function (nil =
	// clean); inProgress breaks recursion cycles (a back edge cannot
	// introduce a new allocation site).
	summary    map[*ast.FuncDecl]*violation
	inProgress map[*ast.FuncDecl]bool
	// reported dedups sites reachable from several hot roots.
	reported map[token.Pos]bool
}

type violation struct {
	pos token.Pos
	msg string
}

func runHotPath(pass *analysis.Pass) (interface{}, error) {
	c := &hotChecker{
		pass:       pass,
		idx:        collectDirectives(pass),
		decls:      make(map[*types.Func]*ast.FuncDecl),
		summary:    make(map[*ast.FuncDecl]*violation),
		inProgress: make(map[*ast.FuncDecl]bool),
		reported:   make(map[token.Pos]bool),
	}
	hot := make([]*ast.FuncDecl, 0, 8)
	hotNames := make(map[string]bool)
	for _, f := range pass.Files {
		recordAppendParents(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				c.decls[obj] = fn
			}
			if c.idx.funcHas(fn, "hotpath") {
				hot = append(hot, fn)
				hotNames[declName(fn)] = true
			}
		}
	}

	// Required roots: a contract function missing its annotation is
	// itself a diagnostic (reported at the function, so the fix is
	// obvious).
	for _, want := range requiredHotRoots[pass.Pkg.Path()] {
		if hotNames[want] {
			continue
		}
		if fn := c.findDecl(want); fn != nil {
			report(pass, c.idx, fn.Pos(),
				"%s is a hot-path contract function and must carry //repro:hotpath", want)
		}
	}

	// Walk the reachable graph from every hot root, reporting each
	// violating site exactly once at its true position.
	seen := make(map[*ast.FuncDecl]bool)
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if seen[fn] || fn.Body == nil || c.idx.funcHas(fn, "coldpath") {
			return
		}
		seen[fn] = true
		c.checkBody(fn, func(callee *ast.FuncDecl) { visit(callee) })
	}
	for _, fn := range hot {
		visit(fn)
	}

	// Export clean facts for cross-package composition: every function
	// whose transitive in-package summary is violation-free.
	for obj, fn := range c.decls {
		if c.summarize(fn) == nil {
			pass.ExportObjectFact(obj, new(CleanFact))
		}
	}
	return nil, nil
}

// declName renders a FuncDecl as "Recv.Method" or "Func".
func declName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		// Generic receivers (Ident or IndexExpr base) reduce to the
		// type name.
		switch t := t.(type) {
		case *ast.Ident:
			return t.Name + "." + fn.Name.Name
		case *ast.IndexExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				return id.Name + "." + fn.Name.Name
			}
		}
	}
	return fn.Name.Name
}

func (c *hotChecker) findDecl(name string) *ast.FuncDecl {
	for _, fn := range c.decls {
		if declName(fn) == name {
			return fn
		}
	}
	return nil
}

// checkBody reports every allocation site in fn's own body and
// recurses (via visit) into same-package static callees.
func (c *hotChecker) checkBody(fn *ast.FuncDecl, visit func(*ast.FuncDecl)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		v, callee := c.checkNode(n)
		if v != nil {
			if !c.reported[v.pos] {
				c.reported[v.pos] = true
				report(c.pass, c.idx, v.pos, "hot path (via %s): %s", declName(fn), v.msg)
			}
			return false // one diagnostic per construct: don't descend into it
		}
		if callee != nil {
			visit(callee)
		}
		return true
	})
}

// summarize computes the first violation in fn or its same-package
// callees, memoized. Used for fact export and for judging callees.
func (c *hotChecker) summarize(fn *ast.FuncDecl) *violation {
	if v, ok := c.summary[fn]; ok {
		return v
	}
	if fn.Body == nil || c.idx.funcHas(fn, "coldpath") {
		c.summary[fn] = nil
		return nil
	}
	if c.inProgress[fn] {
		return nil // cycle back edge: no new sites beyond those found on the way in
	}
	c.inProgress[fn] = true
	var found *violation
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		v, callee := c.checkNode(n)
		if v != nil {
			found = v
			return false
		}
		if callee != nil {
			if cv := c.summarize(callee); cv != nil {
				found = &violation{n.Pos(), fmt.Sprintf("calls %s, which is not allocation-free (%s)",
					declName(callee), c.pass.Fset.Position(cv.pos))}
				return false
			}
		}
		return true
	})
	delete(c.inProgress, fn)
	c.summary[fn] = found
	return found
}

// checkNode classifies one AST node: a violation, a same-package
// static callee to follow, or neither. Allow-suppressed sites return
// neither.
func (c *hotChecker) checkNode(n ast.Node) (*violation, *ast.FuncDecl) {
	viol := func(pos token.Pos, format string, args ...interface{}) (*violation, *ast.FuncDecl) {
		if c.idx.allowed("hotpath", pos) {
			return nil, nil
		}
		return &violation{pos, fmt.Sprintf(format, args...)}, nil
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		return viol(n.Pos(), "go statement spawns a goroutine (allocates a stack)")
	case *ast.FuncLit:
		return viol(n.Pos(), "function literal allocates a closure")
	case *ast.SendStmt:
		return viol(n.Pos(), "channel send")
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			return viol(n.Pos(), "channel receive")
		case token.AND:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				return viol(n.Pos(), "&composite literal may escape to the heap")
			}
		}
	case *ast.CompositeLit:
		switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
		case *types.Slice, *types.Map:
			return viol(n.Pos(), "slice/map composite literal allocates")
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t, ok := c.pass.TypesInfo.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
				return viol(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if _, ok := c.pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); ok {
				return viol(ix.Pos(), "map assignment may allocate")
			}
		}
	case *ast.CallExpr:
		return c.checkCall(n)
	}
	return nil, nil
}

func (c *hotChecker) checkCall(call *ast.CallExpr) (*violation, *ast.FuncDecl) {
	viol := func(format string, args ...interface{}) (*violation, *ast.FuncDecl) {
		if c.idx.allowed("hotpath", call.Pos()) {
			return nil, nil
		}
		return &violation{call.Pos(), fmt.Sprintf(format, args...)}, nil
	}
	info := c.pass.TypesInfo

	// Conversions: string<->[]byte/[]rune allocate; everything else
	// (numeric, pointer, unsafe) is free.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type.Underlying()
		if b, ok := dst.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			if _, isStr := info.TypeOf(call.Args[0]).Underlying().(*types.Basic); !isStr {
				return viol("[]byte/[]rune-to-string conversion allocates")
			}
		}
		if _, ok := dst.(*types.Slice); ok {
			if b, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				return viol("string-to-slice conversion allocates")
			}
		}
		if _, ok := dst.(*types.Interface); ok {
			if v := c.boxes(info.TypeOf(call.Args[0])); v != "" {
				return viol("conversion to interface boxes a %s (allocates)", v)
			}
		}
		return nil, nil
	}

	// Builtins. Qualified unsafe builtins (unsafe.Add, unsafe.Slice,
	// ...) alias memory rather than allocating; unsafealias polices
	// them.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, ok := info.Uses[sel.Sel].(*types.Builtin); ok {
			return nil, nil
		}
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				return viol("%s allocates", b.Name())
			case "append":
				if !isSelfAppend(call) {
					return viol("append with capacity growth allocates (only x = append(x, ...) amortized self-append is blessed)")
				}
				return nil, nil
			case "panic":
				return viol("panic boxes its argument and unwinds")
			default:
				return nil, nil
			}
		}
	}

	// Resolve the callee.
	obj := typeutilCallee(info, call)
	if obj == nil {
		return viol("dynamic call (func value or interface method) cannot be proven allocation-free")
	}
	pkg := obj.Pkg()
	if pkg == nil { // error.Error, unsafe builtins, etc.
		if obj.Name() == "Error" {
			return viol("dynamic error.Error call")
		}
		return nil, nil
	}
	if p := pkg.Path(); allocHappyPackages[p] {
		return viol("calls %s.%s — %s is banned on hot paths (allocates or syscalls)", p, obj.Name(), p)
	}
	// Interface-boxing check on arguments to a static callee.
	if sig, ok := obj.Type().(*types.Signature); ok {
		if v, pos := c.boxedArg(sig, call); v != "" {
			if c.idx.allowed("hotpath", pos) {
				return nil, nil
			}
			return &violation{pos, fmt.Sprintf("argument boxes a %s into an interface (allocates)", v)}, nil
		}
	}
	if pkg == c.pass.Pkg {
		if decl := c.decls[obj]; decl != nil {
			if c.idx.funcHas(decl, "coldpath") {
				return nil, nil
			}
			if c.idx.funcHas(decl, "hotpath") {
				return nil, nil // checked as its own root
			}
			return nil, decl
		}
		// A method promoted from an embedded std type, or an
		// interface method on a local type: no decl means no body we
		// can see.
		return viol("call to %s has no analyzable body in this package", obj.Name())
	}
	path := pkg.Path()
	if allocFreePackages[path] {
		return nil, nil
	}
	if c.pass.ImportObjectFact(obj, new(CleanFact)) {
		return nil, nil
	}
	return viol("cannot prove %s.%s allocation-free (no CleanFact; annotate or allow)", path, obj.Name())
}

// boxes reports what non-pointer concrete kind would be boxed when
// converted to an interface ("" if the conversion cannot allocate).
func (c *hotChecker) boxes(t types.Type) string {
	if t == nil {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return "" // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return ""
		}
		return u.String()
	default:
		return t.String()
	}
}

// boxedArg finds the first argument boxed into an interface parameter.
func (c *hotChecker) boxedArg(sig *types.Signature, call *ast.CallExpr) (string, token.Pos) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, ok := at.Underlying().(*types.Interface); ok {
			continue
		}
		if v := c.boxes(at); v != "" {
			return v, arg.Pos()
		}
	}
	return "", token.NoPos
}

// isSelfAppend reports the amortized pooled-buffer idiom
// `x = append(x, ...)` / `x.f = append(x.f, ...)`, whose steady state
// does not allocate.
func isSelfAppend(call *ast.CallExpr) bool {
	// The call must be the sole RHS of an assignment to the same
	// expression as the first argument.
	asg, ok := appendParent[call]
	if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		return false
	}
	return exprString(asg.Lhs[0]) == exprString(call.Args[0])
}

// appendParent maps append calls to their enclosing assignment; filled
// lazily per walk via recordAppendParents. Global maps keyed by node
// identity are safe: nodes are unique per package analysis.
var appendParent = map[*ast.CallExpr]*ast.AssignStmt{}

func recordAppendParents(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(asg.Rhs) == 1 {
			if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
				appendParent[call] = asg
			}
		}
		return true
	})
}

// exprString renders a simple LHS/arg expression (idents, selectors,
// index expressions) for textual comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return fmt.Sprintf("%T@%d", e, e.Pos())
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// typeutilCallee resolves the static *types.Func a call invokes, or
// nil for dynamic calls (mirrors typeutil.Callee without the builtin
// and type-expression cases, which callers handle first).
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					// Interface method: dynamic.
					if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
						return nil
					}
					return fn
				}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // qualified identifier pkg.F
		}
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation F[T](...).
		var x ast.Expr
		if ix, ok := fun.(*ast.IndexExpr); ok {
			x = ix.X
		} else {
			x = fun.(*ast.IndexListExpr).X
		}
		if id, ok := unparen(x).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}
