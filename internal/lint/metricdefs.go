package lint

// metricdefs pins the telemetry registry's no-drift contract (PR 8):
// the Prometheus exposition pairs Recorder fields with the
// counterDefs/gaugeDefs/histDefs tables *positionally*, so a metric
// added to the struct but not the table (or vice versa) silently
// shifts every name after it. The analyzer counts Recorder fields of
// each metric kind against the def-table entries of that kind and
// demands equality, and requires every metric field to be referenced
// inside WriteProm (the exposition function) so a field can't exist
// unscraped. Def entries that intentionally expose non-field state
// (the event-ring counters) carry //repro:allow metricdefs -- <why>
// and are excluded from the count. The analyzer is structural — it
// activates only in a package that declares both a Recorder struct
// and the def tables — so it is silent everywhere but
// internal/telemetry and its own testdata.

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

var MetricDefsAnalyzer = &analysis.Analyzer{
	Name: "metricdefs",
	Doc:  "every telemetry Counter/Gauge/Hist field must appear in counterDefs/gaugeDefs/histDefs and WriteProm",
	Run:  runMetricDefs,
}

var metricKinds = []struct {
	typeName string // field type
	defsName string // package-level def table
}{
	{"Counter", "counterDefs"},
	{"Gauge", "gaugeDefs"},
	{"Hist", "histDefs"},
}

func runMetricDefs(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)

	// Locate the Recorder struct, the def tables, and WriteProm.
	var recorder *ast.StructType
	defs := make(map[string]*ast.CompositeLit)
	var writeProm *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.Name == "Recorder" {
							if st, ok := s.Type.(*ast.StructType); ok {
								recorder = st
							}
						}
					case *ast.ValueSpec:
						for i, name := range s.Names {
							for _, k := range metricKinds {
								if name.Name == k.defsName && i < len(s.Values) {
									if cl, ok := s.Values[i].(*ast.CompositeLit); ok {
										defs[k.defsName] = cl
									}
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "WriteProm" {
					writeProm = d
				}
			}
		}
	}
	if recorder == nil || len(defs) == 0 {
		return nil, nil // not the telemetry package
	}

	// Count Recorder fields per metric kind.
	fieldsByKind := make(map[string][]*ast.Ident)
	for _, field := range recorder.Fields.List {
		t := field.Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		var typeName string
		switch t := t.(type) {
		case *ast.Ident:
			typeName = t.Name
		case *ast.SelectorExpr:
			typeName = t.Sel.Name
		}
		for _, k := range metricKinds {
			if typeName == k.typeName {
				fieldsByKind[k.typeName] = append(fieldsByKind[k.typeName], field.Names...)
			}
		}
	}

	// Selector/ident names referenced inside WriteProm.
	promRefs := make(map[string]bool)
	if writeProm != nil && writeProm.Body != nil {
		ast.Inspect(writeProm.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				promRefs[sel.Sel.Name] = true
			}
			return true
		})
	}

	for _, k := range metricKinds {
		cl := defs[k.defsName]
		fields := fieldsByKind[k.typeName]
		if cl == nil {
			if len(fields) > 0 {
				report(pass, idx, fields[0].Pos(),
					"%d %s field(s) on Recorder but no %s table in this package",
					len(fields), k.typeName, k.defsName)
			}
			continue
		}
		// Entries carrying //repro:allow metricdefs expose non-field
		// state and are excluded from the positional count.
		entries := 0
		for _, e := range cl.Elts {
			if !idx.allowed("metricdefs", e.Pos()) {
				entries++
			}
		}
		if entries != len(fields) {
			report(pass, idx, cl.Pos(),
				"%s has %d field-backed entries but Recorder declares %d %s fields — the positional pairing in WriteProm has drifted",
				k.defsName, entries, len(fields), k.typeName)
		}
		for _, name := range fields {
			if !promRefs[name.Name] && !strings.HasPrefix(name.Name, "_") {
				report(pass, idx, name.Pos(),
					"metric field %s is never referenced in WriteProm: it would be registered in %s but exposed with another field's name",
					name.Name, k.defsName)
			}
		}
	}
	return nil, nil
}
