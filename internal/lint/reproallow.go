package lint

// reproallow lints the lint: the suppression and annotation directives
// are themselves checked, so an escape hatch can't rot into a blanket
// mute. //repro:allow must name a real analyzer and carry a non-empty
// justification after "--"; coldpath/arena-writer/unsafe-shape must
// carry a justification; unknown //repro: directives are flagged
// (usually a typo that would otherwise silently disable a check).

import "golang.org/x/tools/go/analysis"

var ReproAllowAnalyzer = &analysis.Analyzer{
	Name: "reproallow",
	Doc:  "//repro: directives must be well-formed: known kinds, real analyzer names, mandatory justifications",
	Run:  runReproAllow,
}

func runReproAllow(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)
	known := make(map[string]bool, len(AnalyzerNames))
	for _, n := range AnalyzerNames {
		known[n] = true
	}
	for _, d := range idx.all {
		switch d.kind {
		case "hotpath", "arena":
			// marker directives: no argument, no justification needed
		case "coldpath", "arena-writer", "unsafe-shape":
			if d.why == "" {
				pass.Reportf(d.pos, "//repro:%s requires a justification (//repro:%s <why>)", d.kind, d.kind)
			}
		case "allow":
			if !known[d.arg] {
				pass.Reportf(d.pos, "//repro:allow names unknown analyzer %q (known: hotpath, atomicmix, arenaappend, unsafealias, metricdefs, reproallow)", d.arg)
			}
			if d.why == "" {
				pass.Reportf(d.pos, "//repro:allow requires a justification (//repro:allow <analyzer> -- <why>)")
			}
		default:
			pass.Reportf(d.pos, "unknown directive //repro:%s", d.kind)
		}
	}
	return nil, nil
}
