package lint

// unsafealias fences the unsafe surface: every unsafe.Pointer
// conversion — in either direction, plus unsafe.Slice/Add/String and
// pointer->uintptr laundering — must sit inside a function annotated
// //repro:unsafe-shape <why>, i.e. one of the blessed aliasing shapes
// (podBytes/podSlice/cutSlice/arenaSlice and kin from the image codec,
// the SIMD dispatch argument packing, the histogram shard hash).
// Additionally, a conversion that produces a *T with alignment > 1
// must have an alignment check in scope (a `% k` guard on a uintptr
// or an unsafe.Alignof), because a misaligned aliased load is exactly
// the crash the image restore path fail-closes against. Package-level
// initializers can't carry a function annotation and use a line-level
// //repro:allow unsafealias instead.

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

var UnsafeAliasAnalyzer = &analysis.Analyzer{
	Name: "unsafealias",
	Doc:  "unsafe.Pointer conversions only inside //repro:unsafe-shape functions, with alignment checks in scope",
	Run:  runUnsafeAlias,
}

func runUnsafeAlias(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)
	info := pass.TypesInfo

	isUnsafePtr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Kind() == types.UnsafePointer
	}

	// hasAlignGuard: the function body contains a modulo on a uintptr
	// (the `uintptr(p)%align == 0` idiom) or an unsafe.Alignof call.
	hasAlignGuard := func(body *ast.BlockStmt) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.REM {
					if b, ok := info.TypeOf(n.X).Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && id.Name == "unsafe" && n.Sel.Name == "Alignof" {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// needsAlign: conversion target *T where T's alignment exceeds 1.
	needsAlign := func(t types.Type) bool {
		pt, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return false
		}
		elem := pt.Elem()
		if _, isParam := elem.(*types.TypeParam); isParam {
			return true // generic shape: alignment unknowable, demand the guard
		}
		if pass.TypesSizes == nil {
			return true
		}
		return pass.TypesSizes.Alignof(elem) > 1
	}

	for _, f := range pass.Files {
		// Map every node to its enclosing function declaration.
		for _, decl := range f.Decls {
			fn, isFn := decl.(*ast.FuncDecl)
			var blessed bool
			var body *ast.BlockStmt
			if isFn {
				blessed = idx.funcHas(fn, "unsafe-shape")
				body = fn.Body
			}
			where := func() string {
				if isFn {
					return declName(fn)
				}
				return "package-level initializer"
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				tv, ok := info.Types[call.Fun]
				var unsafeOp, toPtr bool
				var dst types.Type
				switch {
				case ok && tv.IsType():
					dst = tv.Type
					src := info.TypeOf(call.Args[0])
					switch {
					case isUnsafePtr(dst.Underlying()):
						unsafeOp = true // unsafe.Pointer(x)
					case src != nil && isUnsafePtr(src.Underlying()):
						unsafeOp = true // (*T)(p) or uintptr(p)
						toPtr = true
					}
				default:
					if fn := typeutilCallee(info, call); fn != nil && fn.Pkg() == nil {
						switch fn.Name() {
						case "Slice", "Add", "String", "SliceData", "StringData":
							// unsafe builtins that mint or shift aliases
							unsafeOp, toPtr = true, true
						}
					} else if sel, okSel := unparen(call.Fun).(*ast.SelectorExpr); okSel {
						if id, okID := sel.X.(*ast.Ident); okID && id.Name == "unsafe" {
							switch sel.Sel.Name {
							case "Slice", "Add", "String", "SliceData", "StringData":
								unsafeOp, toPtr = true, true
							}
						}
					}
				}
				if !unsafeOp {
					return true
				}
				if !blessed {
					report(pass, idx, call.Pos(),
						"unsafe.Pointer conversion in %s: only //repro:unsafe-shape functions may alias memory",
						where())
					return true
				}
				if toPtr && dst != nil && needsAlign(dst) && body != nil && !hasAlignGuard(body) {
					report(pass, idx, call.Pos(),
						"unsafe conversion to %s without an alignment check in scope (add a uintptr%%align guard)",
						dst.String())
				}
				return true
			})
		}
	}
	return nil, nil
}
