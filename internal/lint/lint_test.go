package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer gets at least one true-positive and one deliberate
// false-positive-avoidance case in its testdata package; weakening an
// analyzer to a no-op fails the corresponding test because its want
// expectations go unmatched.

func TestHotPath(t *testing.T)     { linttest.Run(t, "hotpath", lint.HotPathAnalyzer) }
func TestHotRoots(t *testing.T)    { linttest.Run(t, "hotroots", lint.HotPathAnalyzer) }
func TestAtomicMix(t *testing.T)   { linttest.Run(t, "atomicmix", lint.AtomicMixAnalyzer) }
func TestArenaAppend(t *testing.T) { linttest.Run(t, "arenaappend", lint.ArenaAppendAnalyzer) }
func TestUnsafeAlias(t *testing.T) { linttest.Run(t, "unsafealias", lint.UnsafeAliasAnalyzer) }
func TestMetricDefs(t *testing.T)  { linttest.Run(t, "metricdefs", lint.MetricDefsAnalyzer) }
func TestReproAllow(t *testing.T)  { linttest.Run(t, "reproallow", lint.ReproAllowAnalyzer) }
