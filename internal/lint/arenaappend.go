package lint

// arenaappend enforces the copy-on-write protocol the epoch pipeline
// rests on (PR 5/7): fields annotated //repro:arena are published,
// append-only arenas — concurrent readers walk them lock-free while a
// writer extends them. Only functions annotated //repro:arena-writer
// (the Compile/Patch/PatchBatch publish paths, image restore, and
// explicitly-blessed test fixtures) may mutate them: append, assign,
// truncate, or indexed-write (writers may index-assign only into
// slots they themselves relocated — that part stays a code-review
// invariant; the analyzer pins *who* may write at all). Everywhere
// else any mutation of an arena field is a diagnostic: an
// indexed-assign after publish is exactly the in-place edit that
// corrupts a snapshot another goroutine is reading.

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// ArenaFact marks a struct field as a published COW arena.
type ArenaFact struct{}

func (*ArenaFact) AFact()         {}
func (*ArenaFact) String() string { return "arena" }

var ArenaAppendAnalyzer = &analysis.Analyzer{
	Name:      "arenaappend",
	Doc:       "//repro:arena fields may only be mutated inside //repro:arena-writer functions",
	Run:       runArenaAppend,
	FactTypes: []analysis.Fact{new(ArenaFact)},
}

func runArenaAppend(pass *analysis.Pass) (interface{}, error) {
	idx := collectDirectives(pass)

	// Collect annotated arena fields and export facts.
	arenas := make(map[*types.Var]bool)
	for field, dirs := range idx.fieldDir {
		for _, d := range dirs {
			if d.kind != "arena" {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					arenas[v] = true
					pass.ExportObjectFact(v, new(ArenaFact))
				}
			}
		}
	}

	isArena := func(e ast.Expr) *types.Var {
		// Walk down index/slice/paren chains to the base selector:
		// e.soa.lo[d], b.hi[d][i:j], (e.kids)[k] all resolve to the
		// underlying field.
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				v := fieldObject(pass.TypesInfo, x)
				if v == nil {
					return nil
				}
				if arenas[v] || pass.ImportObjectFact(v, new(ArenaFact)) {
					return v
				}
				// Nested path (e.soa.lo): keep descending — the leaf
				// field wasn't an arena but a parent selector can't be
				// one either (arenas are slice/array fields), so stop.
				return nil
			default:
				return nil
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if idx.funcHas(fn, "arena-writer") {
				continue // blessed publish path
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if v := isArena(lhs); v != nil {
							verb := "assigns"
							if _, ok := lhs.(*ast.IndexExpr); ok {
								verb = "indexed-writes"
							}
							report(pass, idx, lhs.Pos(),
								"%s arena field %s outside an //repro:arena-writer function (COW protocol violation)",
								verb, v.Name())
						}
					}
				case *ast.IncDecStmt:
					if v := isArena(n.X); v != nil {
						report(pass, idx, n.X.Pos(),
							"mutates arena field %s outside an //repro:arena-writer function", v.Name())
					}
				case *ast.CallExpr:
					// append(e.kids, ...) — even without assigning the
					// result, the append may write into the published
					// backing array's spare capacity.
					if id, ok := unparen(n.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
							if v := isArena(n.Args[0]); v != nil {
								report(pass, idx, n.Pos(),
									"appends to arena field %s outside an //repro:arena-writer function", v.Name())
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil, nil
}
