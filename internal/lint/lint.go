// Package lint holds the pclint analyzers: custom go/analysis passes
// that prove the engine's performance contracts — zero-alloc hot paths,
// atomic access discipline, append-only COW arenas, blessed unsafe
// shapes, and the telemetry registry's no-drift rule — statically, at
// vet time, over the whole call graph. DESIGN.md §14 documents each
// invariant; this file holds the shared directive vocabulary.
//
// Directives are magic comments (no space after //, like //go:):
//
//	//repro:hotpath
//	    On a function: the function and everything it reaches must not
//	    allocate. Checked by the hotpath analyzer.
//	//repro:coldpath <why>
//	    On a function: excluded from hot-path traversal even when
//	    called from hot code (a slow/error exit). Justification is
//	    mandatory.
//	//repro:arena
//	    On a struct field: the field is a published COW arena. Only
//	    arena-writer functions may append to or index-assign it.
//	//repro:arena-writer <why>
//	    On a function: part of the whitelisted Compile/Patch publish
//	    path; may mutate arena fields. Justification is mandatory.
//	//repro:unsafe-shape <why>
//	    On a function: a blessed unsafe.Pointer aliasing shape
//	    (podSlice/arenaSlice/podBytes and kin). Justification is
//	    mandatory.
//	//repro:allow <analyzer> -- <why>
//	    On (or on the line above) an offending line: suppress one
//	    analyzer's diagnostic at that line. The justification after
//	    "--" is mandatory and itself linted (reproallow analyzer).
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AnalyzerNames are the valid targets of //repro:allow, in the order
// they run.
var AnalyzerNames = []string{
	"hotpath", "atomicmix", "arenaappend", "unsafealias", "metricdefs", "reproallow",
}

// Analyzers returns the full pclint suite. asmdecl is appended by
// cmd/pclint (it lives in x/tools, not here).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAnalyzer,
		AtomicMixAnalyzer,
		ArenaAppendAnalyzer,
		UnsafeAliasAnalyzer,
		MetricDefsAnalyzer,
		ReproAllowAnalyzer,
	}
}

const directivePrefix = "//repro:"

// directive is one parsed //repro: comment.
type directive struct {
	pos  token.Pos
	kind string // "hotpath", "coldpath", "arena", "arena-writer", "unsafe-shape", "allow"
	// arg is the analyzer name for allow, empty otherwise.
	arg string
	// why is the mandatory justification (after "--" for allow; the
	// whole remainder for coldpath/arena-writer/unsafe-shape).
	why string
}

// parseDirective parses a single comment; ok is false if it is not a
// //repro: directive at all.
func parseDirective(c *ast.Comment) (d directive, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return d, false
	}
	d.pos = c.Pos()
	rest := strings.TrimPrefix(text, directivePrefix)
	kind, tail, _ := strings.Cut(rest, " ")
	d.kind = kind
	tail = strings.TrimSpace(tail)
	switch kind {
	case "allow":
		arg, why, found := strings.Cut(tail, "--")
		d.arg = strings.TrimSpace(arg)
		if found {
			d.why = strings.TrimSpace(why)
		}
	default:
		d.why = tail
	}
	return d, true
}

// directiveIndex holds every //repro: directive in a package, indexed
// for the two lookups analyzers need: per-function annotations and
// per-line allows.
type directiveIndex struct {
	fset *token.FileSet
	// funcDir maps a function declaration to its directives (from the
	// doc comment group).
	funcDir map[*ast.FuncDecl][]directive
	// fieldDir maps a struct field to its directives (doc or trailing
	// line comment).
	fieldDir map[*ast.Field][]directive
	// allows maps file -> line -> analyzer names allowed on that line.
	// An allow on line N suppresses diagnostics on lines N and N+1, so
	// the directive can sit on its own line above the offending one.
	allows map[string]map[int]map[string]bool
	// all is every directive, for reproallow's own validation sweep.
	all []directive
}

// collectDirectives scans all comments of the package under analysis.
func collectDirectives(pass *analysis.Pass) *directiveIndex {
	idx := &directiveIndex{
		fset:     pass.Fset,
		funcDir:  make(map[*ast.FuncDecl][]directive),
		fieldDir: make(map[*ast.Field][]directive),
		allows:   make(map[string]map[int]map[string]bool),
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				idx.all = append(idx.all, d)
				if d.kind == "allow" && d.arg != "" {
					p := pass.Fset.Position(c.Pos())
					byLine := idx.allows[p.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx.allows[p.Filename] = byLine
					}
					set := byLine[p.Line]
					if set == nil {
						set = make(map[string]bool)
						byLine[p.Line] = set
					}
					set[d.arg] = true
				}
			}
		}
		// Attach doc-comment directives to declarations and fields.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					for _, c := range n.Doc.List {
						if d, ok := parseDirective(c); ok {
							idx.funcDir[n] = append(idx.funcDir[n], d)
						}
					}
				}
			case *ast.Field:
				for _, cg := range []*ast.CommentGroup{n.Doc, n.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						if d, ok := parseDirective(c); ok {
							idx.fieldDir[n] = append(idx.fieldDir[n], d)
						}
					}
				}
			}
			return true
		})
	}
	return idx
}

// funcHas reports whether fn carries a directive of the given kind.
func (idx *directiveIndex) funcHas(fn *ast.FuncDecl, kind string) bool {
	for _, d := range idx.funcDir[fn] {
		if d.kind == kind {
			return true
		}
	}
	return false
}

// allowed reports whether a diagnostic from the named analyzer at pos
// is suppressed by a //repro:allow on the same line or the line above.
func (idx *directiveIndex) allowed(name string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	byLine := idx.allows[p.Filename]
	if byLine == nil {
		return false
	}
	return byLine[p.Line][name] || byLine[p.Line-1][name]
}

// report emits a diagnostic unless an allow suppresses it.
func report(pass *analysis.Pass, idx *directiveIndex, pos token.Pos, format string, args ...interface{}) {
	if idx.allowed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}
