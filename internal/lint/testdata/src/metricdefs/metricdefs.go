// Package metricdefs exercises the registry no-drift rule: Recorder
// metric fields must pair 1:1 with def-table entries (allow-listed
// pseudo-metrics excluded) and every field must be scraped by
// WriteProm.
package metricdefs

import "io"

type Counter struct{ v uint64 }
type Gauge struct{ v uint64 }

type metricDef struct{ name, help string }

type Recorder struct {
	Packets Counter
	Batches Counter
	Epoch   Gauge
	Orphan  Counter // want "never referenced in WriteProm"
}

var counterDefs = []metricDef{ // want "counterDefs has 2 field-backed entries but Recorder declares 3 Counter fields"
	{"repro_packets_total", "packets classified"},
	{"repro_batches_total", "batches classified"},
}

// gaugeDefs is the false-positive-avoidance case: the extra entry is a
// ring-backed pseudo-gauge excluded from the positional count by an
// allow, so 1 field == 1 entry.
var gaugeDefs = []metricDef{
	{"repro_epoch", "current epoch"},
	//repro:allow metricdefs -- events gauge reads the ring state, not a Recorder field
	{"repro_events_total", "events recorded"},
}

func (r *Recorder) WriteProm(w io.Writer) {
	_ = r.Packets
	_ = r.Batches
	_ = r.Epoch
}
