// Package reproallow exercises the directive linter: suppressions must
// name a real analyzer and justify themselves; unknown directives are
// flagged as the typos they usually are.
//
// NOTE: this file is deliberately not gofmt'd — gofmt's doc-comment
// canonicalization would separate the // want-prev markers from the
// directive lines they annotate (want-prev matches the previous source
// line, because a //repro: directive must be alone on its line).
package reproallow

//repro:hotpath
func ok(x int) int { return x }

//repro:coldpath
// want-prev "requires a justification"
func missingWhy() {}

//repro:allow bogus -- justified but aimed at nothing real
// want-prev "unknown analyzer \"bogus\""
func badTarget() {}

//repro:frobnicate
// want-prev "unknown directive"
func badKind() {}

//repro:allow hotpath
// want-prev "requires a justification"
func unjustified() {}

//repro:arena-writer compile publish path, bank is private until return
func justifiedWriter() {}
