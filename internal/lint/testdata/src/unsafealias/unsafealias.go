// Package unsafealias exercises the blessed-shape rule: unsafe.Pointer
// conversions only inside //repro:unsafe-shape functions, with an
// alignment guard in scope for multi-byte targets.
package unsafealias

import "unsafe"

//repro:unsafe-shape aliases a uint32 arena over raw bytes with an explicit modulo guard
func blessed(b []byte) []uint32 {
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(p), len(b)/4)
}

func rogue(b []byte) *uint32 {
	return (*uint32)(unsafe.Pointer(&b[0])) // want "only //repro:unsafe-shape functions" "only //repro:unsafe-shape functions"
}

//repro:unsafe-shape deliberately unguarded: the analyzer must demand the modulo check
func unguarded(p unsafe.Pointer) *uint64 {
	return (*uint64)(p) // want "without an alignment check in scope"
}

// byteView is the false-positive-avoidance case: a *byte view has
// alignment 1 and needs no guard.
//
//repro:unsafe-shape byte-granular view, alignment is always satisfied
func byteView(p unsafe.Pointer) *byte {
	return (*byte)(p)
}

//repro:unsafe-shape pointer laundering with a line allow for the missing guard
func allowed(p unsafe.Pointer) *uint16 {
	//repro:allow unsafealias -- source pointer produced by an aligned allocator
	return (*uint16)(p)
}
