// Package atomicmix exercises the atomic-mixing analyzer: a field
// touched through address-style sync/atomic calls anywhere must never
// be accessed plainly; fields never used atomically stay unchecked.
package atomicmix

import "sync/atomic"

type counter struct {
	n    uint64 // accessed atomically in inc/readAtomic
	safe uint64 // never accessed atomically: plain use is fine
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) readAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) read() uint64 {
	return c.n // want "plain access is a data race"
}

func (c *counter) reset() {
	c.n = 0 // want "plain access is a data race"
}

// readSafe is the false-positive-avoidance case: safe has no atomic
// history, so plain reads and writes pass.
func (c *counter) readSafe() uint64 {
	c.safe++
	return c.safe
}

// newCounter shows composite-literal initialization does not trip the
// analyzer (keyed literals are not selector accesses).
func newCounter() *counter {
	return &counter{safe: 1}
}
