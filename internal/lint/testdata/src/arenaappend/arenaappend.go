// Package arenaappend exercises the COW-arena discipline: annotated
// arena fields may only be mutated inside //repro:arena-writer
// functions; reads and unannotated fields are unrestricted.
package arenaappend

type bank struct {
	// lo is the published comparator arena.
	//repro:arena
	lo []uint32
	// scratch is private working storage, not an arena.
	scratch []uint32
}

//repro:arena-writer compile-path publish fixture: appends before the bank escapes
func (b *bank) compile(vals []uint32) {
	b.lo = append(b.lo, vals...)
	b.lo[0] |= 1 // writers may index-assign into slots they relocated
}

func (b *bank) mutate(v uint32) {
	b.lo[0] = v // want "indexed-writes arena field lo"
}

func (b *bank) grow(v uint32) {
	b.lo = append(b.lo, v) // want "assigns arena field lo" "appends to arena field lo"
}

func (b *bank) truncate() {
	b.lo = b.lo[:0] // want "assigns arena field lo"
}

// read is the false-positive-avoidance case: reads of a published
// arena are the whole point and never flagged.
func (b *bank) read(i int) uint32 {
	return b.lo[i]
}

// scratchWrite mutates an unannotated field: unrestricted.
func (b *bank) scratchWrite(v uint32) {
	b.scratch = append(b.scratch, v)
	b.scratch[0] = v
}

func (b *bank) fixture(v uint32) {
	//repro:allow arenaappend -- builds a private bank that never published
	b.lo = append(b.lo, v)
}
