// Package hotroots exercises the required-roots rule: a contract
// function listed in requiredHotRoots must carry //repro:hotpath, so
// deleting the annotation is itself a diagnostic.
package hotroots

func MustBeHot(x int) int { return x } // want "must carry //repro:hotpath"

//repro:hotpath
func AlsoHot(x int) int { return x + 1 }
