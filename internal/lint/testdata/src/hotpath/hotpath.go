// Package hotpath exercises the hotpath analyzer: annotated functions
// and their reachable callees must be allocation-free; blessed idioms
// (self-append, coldpath exits, allow-listed sampled sites) must not
// be flagged.
package hotpath

import "fmt"

//repro:hotpath
func Classify(pkts []int, out []int) int {
	n := 0
	for i, p := range pkts {
		out[i] = p + decide(p)
		n++
	}
	return n
}

// decide is clean and reached from a hot root: no diagnostics.
func decide(p int) int {
	if p > 0 {
		return 1
	}
	return 0
}

//repro:hotpath
func Bad(pkts []int) []int {
	out := make([]int, len(pkts)) // want "make allocates"
	for i, p := range pkts {
		out[i] = format(p)
	}
	return out
}

// format is reached from a hot root and calls into fmt.
func format(p int) int {
	s := fmt.Sprintf("%d", p) // want "fmt is banned on hot paths"
	return len(s)
}

//repro:hotpath
func Encode(buf []byte, v byte) []byte {
	// Amortized pooled-buffer self-append: blessed, not a diagnostic.
	buf = append(buf, v)
	return buf
}

//repro:hotpath
func Grow(buf, extra []byte) []byte {
	out := append(extra, buf...) // want "append with capacity growth allocates"
	return out
}

//repro:hotpath
func Warm(n int) int {
	//repro:allow hotpath -- one-time warm buffer, measured outside the steady state
	buf := make([]byte, n)
	return len(buf)
}

//repro:coldpath error exit, never taken on the packet path
func fail(op string) error {
	return fmt.Errorf("hotpath: %s failed", op)
}

//repro:hotpath
func WithColdExit(ok bool) error {
	if !ok {
		return fail("decode")
	}
	return nil
}

//repro:hotpath
func Dyn(f func() int) int {
	return f() // want "dynamic call"
}

func sink(v interface{}) { _ = v }

//repro:hotpath
func Box(x int) {
	sink(x) // want "boxes a int into an interface"
}

//repro:hotpath
func Spawn(done chan struct{}) {
	go func() { // want "go statement spawns a goroutine"
		<-done
	}()
}
