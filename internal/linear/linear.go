// Package linear provides the reference linear-search classifier. It is
// deliberately the simplest possible implementation of first-match 5-tuple
// classification and serves two roles in the reproduction:
//
//  1. Ground truth: every other classifier (HiCuts, HyperCuts, the
//     hardware tree + simulator, RFC, TCAM) is property-tested against it.
//  2. Cost floor/ceiling: it provides the per-packet memory-access count
//     of the naive approach when fed through the SA-1100 cost model.
package linear

import "repro/internal/rule"

// Classifier is a linear-scan first-match classifier.
type Classifier struct {
	rules rule.RuleSet
}

// New builds a linear classifier over rs. The ruleset is not copied; the
// caller must not mutate it afterwards.
func New(rs rule.RuleSet) *Classifier {
	return &Classifier{rules: rs}
}

// Classify returns the ID of the highest-priority rule matching p, or -1.
func (c *Classifier) Classify(p rule.Packet) int {
	return c.rules.Match(p)
}

// ClassifyCounted behaves like Classify and additionally reports the number
// of rules examined, which is the memory-access cost of the scan (each rule
// examined is one rule-sized memory read).
func (c *Classifier) ClassifyCounted(p rule.Packet) (match, examined int) {
	for i := range c.rules {
		examined++
		if c.rules[i].Matches(p) {
			return c.rules[i].ID, examined
		}
	}
	return -1, examined
}

// ClassifyTraced classifies p while reporting each rule read to trace,
// using the packed 20-byte software rule size at consecutive addresses.
// It implements the sa1100.TracedClassifier contract.
func (c *Classifier) ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (match, accesses int) {
	for i := range c.rules {
		accesses++
		if trace != nil {
			trace(uint32(i*20), 20)
		}
		if c.rules[i].Matches(p) {
			return c.rules[i].ID, accesses
		}
	}
	return -1, accesses
}

// MemoryBytes reports the storage footprint of the ruleset using the same
// software rule size accounting as the software decision trees (one rule
// occupies RuleBytes bytes).
func (c *Classifier) MemoryBytes() int { return len(c.rules) * RuleBytes }

// RuleBytes is the software in-memory size of one rule: 5 ranges of two
// 32-bit words plus a 32-bit rule ID.
const RuleBytes = rule.NumDims*8 + 4

// Len returns the number of rules.
func (c *Classifier) Len() int { return len(c.rules) }
