package linear

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func TestClassifyAgreesWithRuleSetMatch(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 200, 1)
	c := New(rs)
	trace := classbench.GenerateTrace(rs, 1000, 2)
	for i, p := range trace {
		if got, want := c.Classify(p), rs.Match(p); got != want {
			t.Fatalf("packet %d: Classify=%d Match=%d", i, got, want)
		}
	}
}

func TestClassifyCounted(t *testing.T) {
	rs := rule.RuleSet{
		rule.New(0, 0, 0, 0, 0, rule.Range{Lo: 80, Hi: 80}, rule.FullRange(rule.DimDstPort), 0, true),
		rule.New(1, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true),
	}
	c := New(rs)
	if m, n := c.ClassifyCounted(rule.Packet{SrcPort: 80}); m != 0 || n != 1 {
		t.Errorf("got (%d,%d), want (0,1)", m, n)
	}
	if m, n := c.ClassifyCounted(rule.Packet{SrcPort: 81}); m != 1 || n != 2 {
		t.Errorf("got (%d,%d), want (1,2)", m, n)
	}
}

func TestClassifyCountedNoMatch(t *testing.T) {
	rs := rule.RuleSet{rule.New(0, 0xC0000000, 8, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)}
	c := New(rs)
	if m, n := c.ClassifyCounted(rule.Packet{}); m != -1 || n != 1 {
		t.Errorf("got (%d,%d), want (-1,1)", m, n)
	}
}

func TestMemoryBytes(t *testing.T) {
	c := New(make(rule.RuleSet, 10))
	if got := c.MemoryBytes(); got != 10*RuleBytes {
		t.Errorf("MemoryBytes = %d, want %d", got, 10*RuleBytes)
	}
	if c.Len() != 10 {
		t.Errorf("Len = %d", c.Len())
	}
}
