package bench

import (
	"fmt"
	"math"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/hwsim"
)

// Seed-sensitivity study. The original WUSTL rulesets are fixed
// artifacts; ours are drawn from a seeded generator, so any conclusion
// must be robust to the seed. This experiment rebuilds the headline
// hardware quantities across several seeds and reports spread.

// SensitivityRow aggregates one metric across seeds.
type SensitivityRow struct {
	Metric   string
	Min, Max float64
	Mean     float64
	// RelSpread is (Max-Min)/Mean — the headline robustness number.
	RelSpread float64
}

// RunSeedSensitivity builds the modified-HyperCuts accelerator for an
// acl1 ruleset of size n under each seed and summarizes memory words,
// worst-case cycles and sustained throughput.
func RunSeedSensitivity(n int, seeds []int64, tracePackets int) ([]SensitivityRow, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2008, 31337, 424242, 777}
	}
	if tracePackets <= 0 {
		tracePackets = 5000
	}
	var words, cycles, pps []float64
	for _, seed := range seeds {
		rs := classbench.Generate(classbench.ACL1(), n, seed)
		tr, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		img, err := tr.Encode()
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		sim, err := hwsim.New(img, hwsim.ASIC)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		_, st := sim.Run(classbench.GenerateTrace(rs, tracePackets, seed+1))
		words = append(words, float64(tr.Words()))
		cycles = append(cycles, float64(tr.WorstCaseCycles()))
		pps = append(pps, st.PacketsPerSecond)
	}
	return []SensitivityRow{
		summarize("memory words", words),
		summarize("worst-case cycles", cycles),
		summarize("throughput (pps)", pps),
	}, nil
}

func summarize(metric string, xs []float64) SensitivityRow {
	r := SensitivityRow{Metric: metric, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < r.Min {
			r.Min = x
		}
		if x > r.Max {
			r.Max = x
		}
	}
	r.Mean = sum / float64(len(xs))
	if r.Mean != 0 {
		r.RelSpread = (r.Max - r.Min) / r.Mean
	}
	return r
}

// SensitivityTable renders the study.
func SensitivityTable(n int, rows []SensitivityRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Seed sensitivity (acl1, %d rules, modified HyperCuts on ASIC)", n),
		Header: []string{"Metric", "Min", "Mean", "Max", "Spread"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Metric,
			fmt.Sprintf("%.3g", r.Min),
			fmt.Sprintf("%.3g", r.Mean),
			fmt.Sprintf("%.3g", r.Max),
			fmt.Sprintf("%.0f%%", r.RelSpread*100),
		})
	}
	return t
}
