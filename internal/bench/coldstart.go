package bench

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
)

// Cold-start measurement: how fast a restarting replica begins serving.
// The baseline path rebuilds the search structure from the ruleset
// (core.Build) and flattens it (engine.Compile); the image path
// deserializes a saved engine snapshot (engine.RestoreEngineBytes) —
// no decision-tree construction at all. The claim the image subsystem
// is accountable to: restore at ACL1/10k rules is >= 100x faster than
// the build path, and the restored engine classifies bit-identically
// to the engine it was snapshotted from.

// ColdStartRow is one cold-start comparison at a ruleset size.
type ColdStartRow struct {
	N    int
	Algo string
	// BuildNs is the best-of-k wall time of core.Build + engine.Compile.
	BuildNs int64
	// RestoreNs is the best-of-k wall time of engine.RestoreEngineBytes
	// over the serialized snapshot of that same engine.
	RestoreNs int64
	// ImageBytes is the serialized snapshot size.
	ImageBytes int64
	// SpeedupX is BuildNs over RestoreNs.
	SpeedupX float64
}

// RunColdStart measures build-vs-restore cold-start latency per
// algorithm and ruleset size (default 1k/10k/50k ACL1 — 10k is the
// headline row). Every restored engine is differentially verified
// against its source before any number is reported.
func RunColdStart(opts Options) ([]ColdStartRow, error) {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{1000, 10000, 50000}
	}
	opts.sanitize()
	var rows []ColdStartRow
	for _, n := range opts.Sizes {
		for _, algo := range []core.Algorithm{core.HyperCuts, core.HiCuts} {
			row, err := runColdStart(n, algo, opts)
			if err != nil {
				return nil, fmt.Errorf("coldstart n=%d %v: %w", n, algo, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runColdStart(n int, algo core.Algorithm, opts Options) (ColdStartRow, error) {
	rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
	cfg := core.DefaultConfig(algo)

	// Large builds take hundreds of milliseconds; fewer repetitions keep
	// the suite bounded without ceding best-of stability where it is
	// cheap.
	builds := 5
	if n >= 20000 {
		builds = 3
	}
	var eng *engine.Engine
	buildNs := int64(1<<63 - 1)
	for i := 0; i < builds; i++ {
		start := time.Now()
		tree, err := core.Build(rs, cfg)
		if err != nil {
			return ColdStartRow{}, err
		}
		e := engine.Compile(tree)
		if d := time.Since(start).Nanoseconds(); d < buildNs {
			buildNs = d
		}
		eng = e
	}

	var img bytes.Buffer
	written, err := eng.Snapshot(&img)
	if err != nil {
		return ColdStartRow{}, err
	}
	data := img.Bytes()

	const restores = 25
	var restored *engine.Engine
	restoreNs := int64(1<<63 - 1)
	for i := 0; i < restores; i++ {
		start := time.Now()
		r, err := engine.RestoreEngineBytes(data)
		if err != nil {
			return ColdStartRow{}, err
		}
		if d := time.Since(start).Nanoseconds(); d < restoreNs {
			restoreNs = d
		}
		restored = r
	}

	// Differential gate: the restored engine must classify exactly like
	// the engine the image came from.
	trace := classbench.GenerateTrace(rs, min(opts.TracePackets, 5000), opts.Seed+1)
	want := make([]int32, len(trace))
	got := make([]int32, len(trace))
	eng.ClassifyBatch(trace, want)
	restored.ClassifyBatch(trace, got)
	for i := range want {
		if want[i] != got[i] {
			return ColdStartRow{}, fmt.Errorf("restored engine diverges at packet %d: got rule %d, want %d", i, got[i], want[i])
		}
	}

	return ColdStartRow{
		N: n, Algo: algo.String(),
		BuildNs: buildNs, RestoreNs: restoreNs,
		ImageBytes: written,
		SpeedupX:   float64(buildNs) / float64(restoreNs),
	}, nil
}

// ColdStartTable renders the build-vs-restore cold-start comparison.
func ColdStartTable(rows []ColdStartRow) *Table {
	t := &Table{
		Title:  "Cold start: rebuild (core.Build + Compile) vs image restore (RestoreEngineBytes)",
		Header: []string{"Rules", "Algo", "Build+Compile", "Restore", "Image bytes", "Speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo,
			fmt.Sprintf("%.2fms", float64(r.BuildNs)/1e6),
			fmt.Sprintf("%.0fµs", float64(r.RestoreNs)/1e3),
			fmt.Sprintf("%d", r.ImageBytes),
			fmt.Sprintf("%.0fx", r.SpeedupX),
		})
	}
	return t
}
