package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
)

// Host-engine measurements: unlike Tables 2-8, which model the paper's
// SA-1100 software and ASIC/FPGA hardware targets, these rows measure the
// repository's own flat classification engine on the host CPU — the
// production software fast path the ROADMAP grows toward. Wall-clock
// numbers, so they vary with the machine; use scripts/bench.sh for
// benchstat-grade comparisons.

// EngineRow is one host measurement: pointer-walking tree vs flat engine
// (single core and sharded), plus sequential vs pooled build time.
type EngineRow struct {
	N    int
	Algo string

	// BuildSeqMS/BuildParMS are core.Build wall times with Workers=1 and
	// Workers=GOMAXPROCS.
	BuildSeqMS, BuildParMS float64

	// TreePPS is core.Tree.Classify packets/sec (the pre-engine path).
	TreePPS float64
	// EnginePPS is engine.ClassifyBatch packets/sec on one core.
	EnginePPS float64
	// ParallelPPS is engine.ParallelClassify packets/sec on all cores.
	ParallelPPS float64
	// SpeedupX is EnginePPS / TreePPS (single-core flat-layout gain).
	SpeedupX float64
}

// RunEngine measures host classification throughput for every ruleset
// size in opts, for both algorithms. Every engine is differentially
// checked against the tree on the measurement trace before timing.
func RunEngine(opts Options) ([]EngineRow, error) {
	opts.sanitize()
	var rows []EngineRow
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			row := EngineRow{N: n, Algo: algo.String()}

			cfg := core.DefaultConfig(algo)
			cfg.Workers = 1
			start := time.Now()
			tree, err := core.Build(rs, cfg)
			if err != nil {
				return nil, fmt.Errorf("engine bench %v n=%d: %w", algo, n, err)
			}
			row.BuildSeqMS = float64(time.Since(start).Microseconds()) / 1e3

			cfg.Workers = runtime.GOMAXPROCS(0)
			start = time.Now()
			parTree, err := core.Build(rs, cfg)
			if err != nil {
				return nil, fmt.Errorf("engine bench %v n=%d parallel: %w", algo, n, err)
			}
			row.BuildParMS = float64(time.Since(start).Microseconds()) / 1e3

			eng := engine.Compile(parTree)
			for i, p := range trace {
				if got, want := eng.Classify(p), tree.Classify(p); got != want {
					return nil, fmt.Errorf("engine bench %v n=%d: packet %d: engine=%d tree=%d",
						algo, n, i, got, want)
				}
			}

			out := make([]int32, len(trace))
			row.TreePPS = MeasurePPS(trace, func(t []rule.Packet) {
				for i := range t {
					out[i] = int32(tree.Classify(t[i]))
				}
			})
			row.EnginePPS = MeasurePPS(trace, func(t []rule.Packet) {
				eng.ClassifyBatch(t, out)
			})
			row.ParallelPPS = MeasurePPS(trace, func(t []rule.Packet) {
				eng.ParallelClassify(t, out, 0)
			})
			row.SpeedupX = row.EnginePPS / row.TreePPS
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MeasurePPS repeats classify over the trace until enough wall time has
// elapsed for a stable packets/sec estimate. It is the one timing loop
// shared by the table rows and cmd/pcsim's host-engine report.
func MeasurePPS(trace []rule.Packet, classify func([]rule.Packet)) float64 {
	const minDur = 30 * time.Millisecond
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		classify(trace)
		n += len(trace)
	}
	return float64(n) / time.Since(start).Seconds()
}

// EngineTable renders the host-engine comparison.
func EngineTable(rows []EngineRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Host engine throughput (flat engine vs pointer tree, %d cores)", runtime.GOMAXPROCS(0)),
		Header: []string{"Rules", "Algorithm", "BuildSeq ms", "BuildPar ms", "Tree pps", "Engine pps", "Parallel pps", "Speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo,
			fmt.Sprintf("%.1f", r.BuildSeqMS), fmt.Sprintf("%.1f", r.BuildParMS),
			f0(r.TreePPS), f0(r.EnginePPS), f0(r.ParallelPPS),
			fmt.Sprintf("%.2fx", r.SpeedupX),
		})
	}
	return t
}
