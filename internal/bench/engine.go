package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hicuts"
	"repro/internal/hypercuts"
	"repro/internal/rule"
)

// Host-engine measurements: unlike Tables 2-8, which model the paper's
// SA-1100 software and ASIC/FPGA hardware targets, these rows measure the
// repository's own flat classification engine on the host CPU — the
// production software fast path the ROADMAP grows toward. Wall-clock
// numbers, so they vary with the machine; use scripts/bench.sh for
// benchstat-grade comparisons.

// EngineRow is one host measurement: pointer-walking tree vs flat engine
// (single core and sharded), plus sequential vs pooled build time. Rows
// exist for the modified hardware-oriented trees (via engine.Compile)
// and for the unmodified software baselines (via engine.CompileHiCuts /
// CompileHyperCuts), so the comparison is all-flat: every classifier
// walks contiguous arrays, and the remaining differences are algorithmic.
type EngineRow struct {
	N    int
	Algo string

	// BuildSeqMS/BuildParMS are core.Build wall times with Workers=1 and
	// Workers=GOMAXPROCS. Baseline builds are sequential only
	// (BuildParMS is 0 and rendered "-").
	BuildSeqMS, BuildParMS float64

	// TreePPS is core.Tree.Classify packets/sec (the pre-engine path).
	TreePPS float64
	// EnginePPS is engine.ClassifyBatch packets/sec on one core.
	EnginePPS float64
	// ParallelPPS is engine.ParallelClassify packets/sec on all cores.
	ParallelPPS float64
	// SpeedupX is EnginePPS / TreePPS (single-core flat-layout gain).
	SpeedupX float64
}

// RunEngine measures host classification throughput for every ruleset
// size in opts, for both algorithms. Every engine is differentially
// checked against the tree on the measurement trace before timing.
func RunEngine(opts Options) ([]EngineRow, error) {
	opts.sanitize()
	var rows []EngineRow
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			row := EngineRow{N: n, Algo: algo.String()}

			cfg := core.DefaultConfig(algo)
			cfg.Workers = 1
			start := time.Now()
			tree, err := core.Build(rs, cfg)
			if err != nil {
				return nil, fmt.Errorf("engine bench %v n=%d: %w", algo, n, err)
			}
			row.BuildSeqMS = float64(time.Since(start).Microseconds()) / 1e3

			cfg.Workers = runtime.GOMAXPROCS(0)
			start = time.Now()
			parTree, err := core.Build(rs, cfg)
			if err != nil {
				return nil, fmt.Errorf("engine bench %v n=%d parallel: %w", algo, n, err)
			}
			row.BuildParMS = float64(time.Since(start).Microseconds()) / 1e3

			if err := measureFlat(&row, tree.Classify, engine.Compile(parTree), trace); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		base, err := runBaselineRows(n, rs, trace, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, base...)
	}
	return rows, nil
}

// runBaselineRows measures the unmodified software baselines through
// their flat renderings (the all-flat comparison the ROADMAP asks for).
// Each flat engine is differentially checked against its pointer tree on
// the measurement trace before timing.
func runBaselineRows(n int, rs rule.RuleSet, trace []rule.Packet, opts Options) ([]EngineRow, error) {
	var rows []EngineRow

	start := time.Now()
	hct, err := hicuts.Build(rs, hicuts.Config{Binth: opts.Binth, Spfac: opts.Spfac})
	if err != nil {
		return nil, fmt.Errorf("engine bench hicuts n=%d: %w", n, err)
	}
	hcBuild := float64(time.Since(start).Microseconds()) / 1e3
	row := EngineRow{N: n, Algo: "HiCuts (sw)", BuildSeqMS: hcBuild}
	if err := measureFlat(&row, hct.Classify, engine.CompileHiCuts(hct), trace); err != nil {
		return nil, err
	}
	rows = append(rows, row)

	start = time.Now()
	yct, err := hypercuts.Build(rs, hypercuts.Config{Binth: opts.Binth, Spfac: opts.Spfac})
	if err != nil {
		return nil, fmt.Errorf("engine bench hypercuts n=%d: %w", n, err)
	}
	ycBuild := float64(time.Since(start).Microseconds()) / 1e3
	row = EngineRow{N: n, Algo: "HyperCuts (sw)", BuildSeqMS: ycBuild}
	if err := measureFlat(&row, yct.Classify, engine.CompileHyperCuts(yct), trace); err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// flatClassifier is the measurement surface shared by engine.Engine and
// engine.RangeEngine.
type flatClassifier interface {
	Classify(rule.Packet) int
	ClassifyBatch([]rule.Packet, []int32)
	ParallelClassify([]rule.Packet, []int32, int)
}

// measureFlat fills row's throughput columns: a packet-exact
// differential check of the flat engine against the pointer tree, then
// the tree / single-core / sharded rates. One protocol for the modified
// trees and the baselines, so the table's rows are always comparable.
func measureFlat(row *EngineRow, treeClassify func(rule.Packet) int, flat flatClassifier, trace []rule.Packet) error {
	for i, p := range trace {
		if got, want := flat.Classify(p), treeClassify(p); got != want {
			return fmt.Errorf("engine bench %s n=%d: packet %d: flat=%d tree=%d", row.Algo, row.N, i, got, want)
		}
	}
	out := make([]int32, len(trace))
	row.TreePPS = MeasurePPS(trace, func(t []rule.Packet) {
		for i := range t {
			out[i] = int32(treeClassify(t[i]))
		}
	})
	row.EnginePPS = MeasurePPS(trace, func(t []rule.Packet) {
		flat.ClassifyBatch(t, out)
	})
	row.ParallelPPS = MeasurePPS(trace, func(t []rule.Packet) {
		flat.ParallelClassify(t, out, 0)
	})
	row.SpeedupX = row.EnginePPS / row.TreePPS
	return nil
}

// MeasurePPS repeats classify over the trace until enough wall time has
// elapsed for a stable packets/sec estimate. It is the one timing loop
// shared by the table rows and cmd/pcsim's host-engine report.
func MeasurePPS(trace []rule.Packet, classify func([]rule.Packet)) float64 {
	const minDur = 30 * time.Millisecond
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		classify(trace)
		n += len(trace)
	}
	return float64(n) / time.Since(start).Seconds()
}

// EngineTable renders the host-engine comparison.
func EngineTable(rows []EngineRow) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Host engine throughput (flat engine vs pointer tree, %d cores)", runtime.GOMAXPROCS(0)),
		Header: []string{"Rules", "Algorithm", "BuildSeq ms", "BuildPar ms", "Tree pps", "Engine pps", "Parallel pps", "Speedup"},
	}
	for _, r := range rows {
		buildPar := "-"
		if r.BuildParMS > 0 {
			buildPar = fmt.Sprintf("%.1f", r.BuildParMS)
		}
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo,
			fmt.Sprintf("%.1f", r.BuildSeqMS), buildPar,
			f0(r.TreePPS), f0(r.EnginePPS), f0(r.ParallelPPS),
			fmt.Sprintf("%.2fx", r.SpeedupX),
		})
	}
	return t
}
