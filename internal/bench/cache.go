package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flowcache"
	"repro/internal/rule"
	"repro/internal/telemetry"
)

// Flow-cache measurement: cached vs uncached host throughput on
// locality-skewed traces (packet trains, Zipf-skewed flow popularity —
// classbench.GenerateFlowTrace, pcgen -flows), plus the same cached loop
// under paced control-plane churn, where every update bumps the epoch
// and invalidates the affected answers. Before any number is reported
// the cached path is cross-checked packet-exact against the tree, and
// the post-churn image against a fresh recompile.

// CacheRow is one flow-cache measurement.
type CacheRow struct {
	N    int
	Algo string
	// Flows/Burst describe the trace: distinct 5-tuples and mean train
	// length.
	Flows, Burst int

	// UncachedPPS is single-core engine throughput on the flow trace;
	// CachedPPS the same loop through the flow cache; SpeedupX the ratio.
	UncachedPPS, CachedPPS, SpeedupX float64
	// HitRate is the cache hit rate over the quiescent measurement.
	HitRate float64

	// ChurnPPS/ChurnHitRate are the cached loop's numbers while a paced
	// updater applies Updates inserts/deletes (each an epoch bump).
	ChurnPPS, ChurnHitRate float64
	Updates                int
	// StaleEvictions counts entries the churn invalidated and dropped.
	StaleEvictions uint64
	// Occupied/Capacity report cache occupancy after the quiescent run.
	Occupied, Capacity int
}

// RunFlowCache measures cached vs uncached classification for every
// ruleset size in opts, for both algorithms.
func RunFlowCache(opts Options) ([]CacheRow, error) {
	opts.sanitize()
	var rows []CacheRow
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		flows := n
		if flows < 256 {
			flows = 256
		}
		trace := classbench.GenerateFlowTrace(rs, opts.TracePackets, flows, 16, opts.Seed+1)
		inserts := n / 4
		if inserts > 200 {
			inserts = 200
		}
		if inserts < 20 {
			inserts = 20
		}
		pool := classbench.Generate(classbench.FW1(), inserts, opts.Seed+2)
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			row, err := runFlowCache(rs, pool, trace, algo, flows, opts.Telemetry)
			if err != nil {
				return nil, fmt.Errorf("flow cache %v n=%d: %w", algo, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFlowCache(rs, pool rule.RuleSet, trace []rule.Packet, algo core.Algorithm, flows int, tel *telemetry.Recorder) (CacheRow, error) {
	row := CacheRow{N: len(rs), Algo: algo.String(), Flows: flows, Burst: 16}
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		return row, err
	}
	h := engine.NewHandle(engine.Compile(tree))
	h.SetTelemetry(tel)
	cache := h.EnableCache(4 * flows)
	out := make([]int32, len(trace))

	// No number leaves this function unverified: the cached path must
	// agree with the tree packet-exact, cold and warm.
	for pass := 0; pass < 2; pass++ {
		for i, p := range trace {
			if got, want := h.ClassifyCached(p), tree.Classify(p); got != want {
				return row, fmt.Errorf("pass %d packet %d: cached=%d tree=%d", pass, i, got, want)
			}
		}
	}

	row.UncachedPPS = MeasurePPS(trace, func(t []rule.Packet) {
		h.Current().Engine().ClassifyBatch(t, out)
	})
	st0 := cache.Stats()
	row.CachedPPS = MeasurePPS(trace, func(t []rule.Packet) {
		h.ClassifyBatchCached(t, out)
	})
	st1 := cache.Stats()
	row.SpeedupX = row.CachedPPS / row.UncachedPPS
	row.HitRate = deltaHitRate(st0, st1)
	row.Occupied, row.Capacity = st1.Occupied, st1.Capacity

	// Churn: a paced updater (one epoch bump per update) runs against the
	// cached classify loop — the cache must keep most of its hit rate by
	// dropping exactly the invalidated epoch's entries and repopulating.
	const churnWindow = 120 * time.Millisecond
	interval := churnWindow / time.Duration(len(pool))
	done := make(chan struct{})
	var wg sync.WaitGroup
	// The goroutine times itself: it starts before the update pacing and
	// finishes a whole trace pass after close(done), so dividing its
	// count by the updater's window would overstate the rate.
	var classified int64
	var classifyDur time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		t0 := time.Now()
		for {
			select {
			case <-done:
				classifyDur = time.Since(t0)
				return
			default:
			}
			h.ClassifyBatchCached(trace, out)
			classified += int64(len(trace))
		}
	}()
	st2 := cache.Stats()
	start := time.Now()
	next := start
	updates := 0
	var updErr error
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err == nil {
			_, err = h.Apply(d)
		}
		if err != nil {
			updErr = err
			break
		}
		updates++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(done)
	wg.Wait()
	if updErr != nil {
		return row, updErr
	}
	st3 := cache.Stats()
	row.Updates = updates
	row.ChurnPPS = float64(classified) / classifyDur.Seconds()
	row.ChurnHitRate = deltaHitRate(st2, st3)
	row.StaleEvictions = st3.StaleEvictions - st2.StaleEvictions

	// Post-churn, the patched image must equal a fresh recompile, and the
	// cache must still answer packet-exact.
	if err := engine.VerifyPatched(trace, h.Current().Engine(), engine.Compile(tree)); err != nil {
		return row, err
	}
	for i, p := range trace[:min(1000, len(trace))] {
		if got, want := h.ClassifyCached(p), tree.Classify(p); got != want {
			return row, fmt.Errorf("post-churn packet %d: cached=%d tree=%d", i, got, want)
		}
	}
	return row, nil
}

func deltaHitRate(before, after flowcache.Stats) float64 {
	return flowcache.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
	}.HitRate()
}

// CacheTable renders the flow-cache measurement.
func CacheTable(rows []CacheRow) *Table {
	t := &Table{
		Title: "Flow cache on locality-skewed traces (exact-match, epoch-invalidated; trains of ~16)",
		Header: []string{"Rules", "Algorithm", "Flows", "Uncached pps", "Cached pps", "Speedup",
			"Hit rate", "Churn pps", "Churn hit", "Updates", "Stale", "Occupancy"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo, itoa(r.Flows),
			f0(r.UncachedPPS), f0(r.CachedPPS),
			fmt.Sprintf("%.2fx", r.SpeedupX),
			fmt.Sprintf("%.3f", r.HitRate),
			f0(r.ChurnPPS),
			fmt.Sprintf("%.3f", r.ChurnHitRate),
			itoa(r.Updates), itoa(int(r.StaleEvictions)),
			fmt.Sprintf("%d/%d", r.Occupied, r.Capacity),
		})
	}
	return t
}
