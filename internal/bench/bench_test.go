package bench

import (
	"strings"
	"testing"
)

// quickOpts keeps unit-test runtime low; the full paper sizes run in
// cmd/pctables and the repository benchmarks.
func quickOpts() Options {
	return Options{
		Seed:         7,
		Sizes:        []int{60, 150, 500},
		Table4Sizes:  []int{300, 1200},
		TracePackets: 3000,
	}
}

func TestRunACL1Shape(t *testing.T) {
	rows, err := RunACL1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper shape: hardware memory within the same order of
		// magnitude as software; all positive.
		if r.SWHiCutsMem <= 0 || r.SWHyperMem <= 0 || r.HWHiCutsMem <= 0 || r.HWHyperMem <= 0 {
			t.Errorf("n=%d: non-positive memory", r.N)
		}
		// Paper shape: hardware classification beats software by large
		// factors on both devices.
		if r.ASICHiCutsPPS <= r.SWHiCutsPPS*10 {
			t.Errorf("n=%d: ASIC %.0f pps not >> software %.0f pps", r.N, r.ASICHiCutsPPS, r.SWHiCutsPPS)
		}
		if r.FPGAHyperPPS <= r.SWHyperPPS*10 {
			t.Errorf("n=%d: FPGA %.0f pps not >> software %.0f pps", r.N, r.FPGAHyperPPS, r.SWHyperPPS)
		}
		// Paper shape: ASIC energy per packet orders of magnitude below
		// software energy.
		if r.ASICHiCutsEnergyJ*100 >= r.SWHiCutsEnergyJ {
			t.Errorf("n=%d: ASIC energy %.3e not << software %.3e", r.N, r.ASICHiCutsEnergyJ, r.SWHiCutsEnergyJ)
		}
		// Build energy: hardware (modified) build at most software build
		// is NOT guaranteed at tiny sizes (paper Table 3 shows hardware
		// higher at 60-150 rules), so only check positivity here.
		if r.SWHiCutsBuildJ <= 0 || r.HWHiCutsBuildJ <= 0 {
			t.Errorf("n=%d: non-positive build energy", r.N)
		}
		// Worst cases: hardware single digits, software larger.
		if r.HWHiCutsWorst < 2 || r.HWHiCutsWorst > 30 {
			t.Errorf("n=%d: HW worst case %d implausible", r.N, r.HWHiCutsWorst)
		}
		if r.SWHiCutsWorst <= r.HWHiCutsWorst {
			t.Errorf("n=%d: software worst accesses %d should exceed hardware %d",
				r.N, r.SWHiCutsWorst, r.HWHiCutsWorst)
		}
	}
	// Memory must grow with ruleset size.
	if rows[2].HWHiCutsMem < rows[0].HWHiCutsMem {
		t.Error("hardware memory shrank with more rules")
	}
}

func TestBuildEnergyGapGrowsWithSize(t *testing.T) {
	// Paper Table 3: the modified algorithms' build-energy advantage
	// grows with ruleset size (11.84x at 2191 rules for HiCuts). Tiny
	// sets are degenerate (the hardware tree is a single leaf), so
	// measure the trend from 150 rules up.
	opts := quickOpts()
	opts.Sizes = []int{150, 500, 1000}
	rows, err := RunACL1(opts)
	if err != nil {
		t.Fatal(err)
	}
	first := rows[0].SWHiCutsBuildJ / rows[0].HWHiCutsBuildJ
	last := rows[len(rows)-1].SWHiCutsBuildJ / rows[len(rows)-1].HWHiCutsBuildJ
	if last < first {
		t.Errorf("build-energy ratio fell from %.2f to %.2f; paper's gap grows with size", first, last)
	}
}

func TestRunTable4Shape(t *testing.T) {
	rows, err := RunTable4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 profiles x 2 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	byProfile := map[string][]Table4Row{}
	for _, r := range rows {
		byProfile[r.Profile] = append(byProfile[r.Profile], r)
		if r.HiCutsCycles < 2 || r.HyperCycles < 2 {
			t.Errorf("%s n=%d: cycles below minimum", r.Profile, r.N)
		}
	}
	// fw1 must consume more memory than acl1 at equal size (the paper's
	// wildcard blow-up).
	if fw, acl := byProfile["fw1"][1], byProfile["acl1"][1]; fw.HiCutsMem <= acl.HiCutsMem {
		t.Errorf("fw1 memory %d should exceed acl1 %d", fw.HiCutsMem, acl.HiCutsMem)
	}
}

func TestRunClaimsShape(t *testing.T) {
	opts := quickOpts()
	// RFC's advantage over the tree algorithms emerges at scale (its
	// access count is constant while trees deepen), so measure the
	// ordering on a reasonably large set, as the paper does (2191).
	opts.Sizes = []int{1500}
	opts.TracePackets = 6000
	cl, err := RunClaims(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cl.ThroughputVsRFC < 10 {
		t.Errorf("ASIC vs RFC ratio %.1f; expected orders of magnitude", cl.ThroughputVsRFC)
	}
	if cl.ThroughputVsHiCuts < cl.ThroughputVsRFC {
		t.Errorf("HiCuts ratio %.0f should exceed RFC ratio %.0f (RFC is the faster software)",
			cl.ThroughputVsHiCuts, cl.ThroughputVsRFC)
	}
	if cl.EnergySavingVsHiCuts < 100 {
		t.Errorf("energy saving %.0fx; paper reports thousands", cl.EnergySavingVsHiCuts)
	}
	if cl.FPGAPowerW >= cl.TCAMPowerW {
		t.Errorf("FPGA %.2fW should undercut TCAM %.2fW", cl.FPGAPowerW, cl.TCAMPowerW)
	}
	if cl.TCAMEfficiency <= 0.05 || cl.TCAMEfficiency >= 1 {
		t.Errorf("TCAM efficiency %.2f out of band", cl.TCAMEfficiency)
	}
}

func TestTableFormatting(t *testing.T) {
	rows, err := RunACL1(Options{Seed: 7, Sizes: []int{60}, TracePackets: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []*Table{Table2(rows), Table3(rows), Table6(rows), Table7(rows), Table8(rows), Table5()} {
		out := tbl.Format()
		if !strings.Contains(out, "Table") {
			t.Errorf("missing title in output:\n%s", out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("table too short:\n%s", out)
		}
	}
	t4rows, err := RunTable4(Options{Seed: 7, Table4Sizes: []int{300}, Sizes: []int{60}, TracePackets: 500})
	if err != nil {
		t.Fatal(err)
	}
	if out := Table4(t4rows).Format(); !strings.Contains(out, "fw1") {
		t.Errorf("table 4 missing fw1:\n%s", out)
	}
	cl, err := RunClaims(Options{Seed: 7, Sizes: []int{200}, TracePackets: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if out := ClaimsTable(cl).Format(); !strings.Contains(out, "546") {
		t.Errorf("claims table missing paper anchor:\n%s", out)
	}
	exp, err := TCAMExpansion(Options{Seed: 7}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if out := exp.Format(); !strings.Contains(out, "acl1") {
		t.Errorf("expansion table malformed:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	opts := Options{Seed: 7, TracePackets: 2000}
	r, err := RunAblations(opts, 400)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start2BuildCycles < r.Start32BuildCycles {
		t.Errorf("start=2 build cycles %d below start=32 %d; §3 claims the opposite",
			r.Start2BuildCycles, r.Start32BuildCycles)
	}
	if r.Speed0Words > r.Speed1Words {
		t.Errorf("speed 0 words %d exceed speed 1 %d", r.Speed0Words, r.Speed1Words)
	}
	if r.Speed0Cyc < r.Speed1Cyc-1e-9 {
		t.Errorf("speed 0 cyc/pkt %.3f beats speed 1 %.3f; Eq. 7 says speed 1 is never slower",
			r.Speed0Cyc, r.Speed1Cyc)
	}
	if r.PtrLeafWorst < r.RulesLeafWorst+1 {
		t.Errorf("pointer leaves worst %d not >= rules-in-leaf %d + 1", r.PtrLeafWorst, r.RulesLeafWorst)
	}
	if r.NoOverlapCyc <= r.OverlapCyc {
		t.Errorf("overlap %.3f should beat no-overlap %.3f", r.OverlapCyc, r.NoOverlapCyc)
	}
	if out := AblationTable(r).Format(); len(out) == 0 {
		t.Error("empty ablation table")
	}
}

func TestSeedSensitivity(t *testing.T) {
	rows, err := RunSeedSensitivity(500, []int64{1, 2, 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		eps := 1e-9 * r.Max
		if r.Min > r.Mean+eps || r.Mean > r.Max+eps {
			t.Errorf("%s: min/mean/max out of order: %+v", r.Metric, r)
		}
		// Conclusions must be robust: no metric should swing by more
		// than 2x of its mean across seeds at this size.
		if r.RelSpread > 2.0 {
			t.Errorf("%s: relative spread %.2f too large; results are seed-fragile", r.Metric, r.RelSpread)
		}
	}
	if out := SensitivityTable(500, rows).Format(); !strings.Contains(out, "Seed sensitivity") {
		t.Error("sensitivity table malformed")
	}
}

// TestRunEngine smoke-tests the host-engine measurement rows: both
// modified algorithms plus both flat software baselines per size,
// positive throughputs, and a renderable table.
func TestRunEngine(t *testing.T) {
	rows, err := RunEngine(Options{Sizes: []int{150}, TracePackets: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (HiCuts + HyperCuts, modified + sw baselines)", len(rows))
	}
	for _, r := range rows {
		if r.TreePPS <= 0 || r.EnginePPS <= 0 || r.ParallelPPS <= 0 {
			t.Errorf("%s n=%d: non-positive throughput %+v", r.Algo, r.N, r)
		}
		if r.SpeedupX <= 0 {
			t.Errorf("%s n=%d: non-positive speedup", r.Algo, r.N)
		}
		if r.BuildSeqMS < 0 || r.BuildParMS < 0 {
			t.Errorf("%s n=%d: negative build time", r.Algo, r.N)
		}
	}
	if s := EngineTable(rows).Format(); len(s) == 0 {
		t.Error("empty engine table")
	}
}

// TestRunUpdateChurn smoke-tests the sustained-update measurement: both
// algorithms, positive rates, patch cost reported, and the packet-exact
// patched-vs-recompile verification built into runChurn must hold.
func TestRunUpdateChurn(t *testing.T) {
	rows, err := RunUpdateChurn(Options{Sizes: []int{150}, TracePackets: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (HiCuts + HyperCuts)", len(rows))
	}
	for _, r := range rows {
		if r.QuiescentPPS <= 0 || r.ChurnPPS <= 0 {
			t.Errorf("%s n=%d: non-positive throughput %+v", r.Algo, r.N, r)
		}
		if r.Updates <= 0 || r.UpdatesPerSec <= 0 || r.PatchMicros <= 0 {
			t.Errorf("%s n=%d: empty update measurement %+v", r.Algo, r.N, r)
		}
		if r.RecompileMS < 0 {
			t.Errorf("%s n=%d: negative recompile time", r.Algo, r.N)
		}
	}
	if s := ChurnTable(rows).Format(); len(s) == 0 {
		t.Error("empty churn table")
	}
}
