package bench

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
)

func TestRunColdStartShape(t *testing.T) {
	rows, err := RunColdStart(Options{Seed: 11, Sizes: []int{200, 600}, TracePackets: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // two sizes x two algorithms
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ImageBytes == 0 || r.BuildNs == 0 || r.RestoreNs == 0 {
			t.Errorf("%+v: zero measurement", r)
		}
		// Restore skips tree construction entirely; it must beat the
		// build path even at toy sizes (the margin grows with rules).
		if r.SpeedupX <= 1 {
			t.Errorf("n=%d %s: restore (%.0fµs) not faster than build (%.0fµs)",
				r.N, r.Algo, float64(r.RestoreNs)/1e3, float64(r.BuildNs)/1e3)
		}
	}
	if tbl := ColdStartTable(rows).Format(); tbl == "" {
		t.Error("empty table")
	}
}

// BenchmarkColdStart lands the cold-start row in BENCH_<date>.json:
// ns/op is the image-restore latency, with the one-time build+compile
// cost (build_ns), the image size (image_bytes) and the resulting
// build/restore ratio (speedup) reported alongside. The acceptance
// line is acl1/n=10000: speedup >= 100.
func BenchmarkColdStart(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("acl1/n=%d", n), func(b *testing.B) {
			rs := classbench.Generate(classbench.ACL1(), n, 2008)
			start := time.Now()
			tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
			if err != nil {
				b.Fatal(err)
			}
			eng := engine.Compile(tree)
			buildNs := float64(time.Since(start).Nanoseconds())
			var img bytes.Buffer
			if _, err := eng.Snapshot(&img); err != nil {
				b.Fatal(err)
			}
			data := img.Bytes()
			// speedup follows RunColdStart's best-of methodology: each
			// restore is timed individually and the ratio uses the
			// fastest, so GC pauses on a busy host don't masquerade as
			// restore cost. ns/op stays the plain per-iteration mean.
			minNs := int64(1<<63 - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := engine.RestoreEngineBytes(data); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(start).Nanoseconds(); d < minNs {
					minNs = d
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(data)), "image_bytes")
			b.ReportMetric(buildNs, "build_ns")
			b.ReportMetric(buildNs/float64(minNs), "speedup")
		})
	}
}
