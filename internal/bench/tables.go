package bench

import (
	"fmt"

	"repro/internal/classbench"
	"repro/internal/energy"
	"repro/internal/tcam"
)

// This file turns measurement rows into paper-style formatted tables.

// Table2 renders "Memory needed for the search structure and ruleset
// (bytes), spfac=4, speed=1".
func Table2(rows []ACL1Row) *Table {
	t := &Table{
		Title:  "Table 2: Memory for search structure and ruleset (bytes), spfac=4, speed=1",
		Header: []string{"Rules", "SW HiCuts", "SW HyperCuts", "HW HiCuts", "HW HyperCuts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), itoa(r.SWHiCutsMem), itoa(r.SWHyperMem), itoa(r.HWHiCutsMem), itoa(r.HWHyperMem),
		})
	}
	return t
}

// Table3 renders "Energy used to build the search structure (Joules)".
func Table3(rows []ACL1Row) *Table {
	t := &Table{
		Title:  "Table 3: Energy to build the search structure (Joules), spfac=4, speed=1",
		Header: []string{"Rules", "SW HiCuts", "SW HyperCuts", "HW HiCuts", "HW HyperCuts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), sci(r.SWHiCutsBuildJ), sci(r.SWHyperBuildJ), sci(r.HWHiCutsBuildJ), sci(r.HWHyperBuildJ),
		})
	}
	return t
}

// Table4 renders "Memory consumption (bytes) and worst case clock cycles
// per packet for ClassBench filter sets".
func Table4(rows []Table4Row) *Table {
	t := &Table{
		Title:  "Table 4: Memory (bytes) and worst-case clock cycles, spfac=4, speed=1",
		Header: []string{"Profile", "Rules", "HiCuts mem", "HiCuts cyc", "HyperCuts mem", "HyperCuts cyc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Profile, itoa(r.N), itoa(r.HiCutsMem), itoa(r.HiCutsCycles), itoa(r.HyperMem), itoa(r.HyperCycles),
		})
	}
	return t
}

// Table5 renders the device comparison.
func Table5() *Table {
	t := &Table{
		Title:  "Table 5: Device comparison (normalized to 65nm, 1V via Eq. 8)",
		Header: []string{"Device", "Process[nm]", "Voltage[V]", "Freq[MHz]", "Raw P[mW]", "Norm P[mW]", "Area"},
	}
	for _, d := range energy.Devices() {
		area := "-"
		if d.GateCount > 0 {
			area = fmt.Sprintf("%d gates", d.GateCount)
		}
		if d.Slices > 0 {
			area = fmt.Sprintf("%d slices, %d BRAM", d.Slices, d.BlockRAMs)
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			f0(d.ProcessNm),
			fmt.Sprintf("%.2f", d.VoltageV),
			f0(d.FreqHz / 1e6),
			fmt.Sprintf("%.2f", d.RawPowerW*1000),
			fmt.Sprintf("%.2f", d.NormalizedPowerW()*1000),
			area,
		})
	}
	return t
}

// Table6 renders "Average energy (normalized) needed to classify a packet
// (Joules)".
func Table6(rows []ACL1Row) *Table {
	t := &Table{
		Title: "Table 6: Average normalized energy per packet (Joules), spfac=4, speed=1",
		Header: []string{"Rules",
			"SW HiCuts", "SW HyperCuts",
			"ASIC HiCuts", "ASIC HyperCuts",
			"FPGA HiCuts", "FPGA HyperCuts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N),
			sci(r.SWHiCutsEnergyJ), sci(r.SWHyperEnergyJ),
			sci(r.ASICHiCutsEnergyJ), sci(r.ASICHyperEnergyJ),
			sci(r.FPGAHiCutsEnergyJ), sci(r.FPGAHyperEnergyJ),
		})
	}
	return t
}

// Table7 renders "Total number of packets classified in 1 second".
func Table7(rows []ACL1Row) *Table {
	t := &Table{
		Title: "Table 7: Packets classified in 1 second, spfac=4, speed=1",
		Header: []string{"Rules",
			"SW HiCuts", "SW HyperCuts",
			"ASIC HiCuts", "ASIC HyperCuts",
			"FPGA HiCuts", "FPGA HyperCuts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N),
			f0(r.SWHiCutsPPS), f0(r.SWHyperPPS),
			f0(r.ASICHiCutsPPS), f0(r.ASICHyperPPS),
			f0(r.FPGAHiCutsPPS), f0(r.FPGAHyperPPS),
		})
	}
	return t
}

// Table8 renders "Worst case number of memory accesses".
func Table8(rows []ACL1Row) *Table {
	t := &Table{
		Title:  "Table 8: Worst-case memory accesses, spfac=4, speed=1",
		Header: []string{"Rules", "SW HiCuts", "SW HyperCuts", "HW HiCuts", "HW HyperCuts"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), itoa(r.SWHiCutsWorst), itoa(r.SWHyperWorst), itoa(r.HWHiCutsWorst), itoa(r.HWHyperWorst),
		})
	}
	return t
}

// ClaimsTable renders the §5.2/§5.3 headline comparisons.
func ClaimsTable(c Claims) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Headline claims (acl1, %d rules)", c.N),
		Header: []string{"Claim", "Paper", "Measured"},
	}
	add := func(name, paper, measured string) {
		t.Rows = append(t.Rows, []string{name, paper, measured})
	}
	add("ASIC vs RFC throughput", "up to 546x", fmt.Sprintf("%.0fx (%.0f vs %.0f pps)", c.ThroughputVsRFC, c.ASICPPS, c.RFCPPS))
	add("ASIC vs SW HiCuts throughput", "up to 4269x", fmt.Sprintf("%.0fx (%.0f vs %.0f pps)", c.ThroughputVsHiCuts, c.ASICPPS, c.HiCutsPPS))
	add("Energy saving vs SW HiCuts", "up to 7773x", fmt.Sprintf("%.0fx", c.EnergySavingVsHiCuts))
	add("FPGA power vs Ayama 10128 @77MHz", "1.8W vs 2.9W", fmt.Sprintf("%.2fW vs %.2fW", c.FPGAPowerW, c.TCAMPowerW))
	add("ASIC power vs TCAM-system SRAM alone", "19.79mW vs 875mW", fmt.Sprintf("%.1fmW vs %.0fmW", c.ASICPowerRawW*1000, c.TCAMSRAMPowerW*1000))
	add("TCAM storage efficiency", "16-53% (avg 34%)", fmt.Sprintf("%.0f%%", c.TCAMEfficiency*100))
	return t
}

// TCAMExpansion summarizes TCAM storage efficiency per profile; it backs
// the §1 storage-efficiency discussion.
func TCAMExpansion(opts Options, n int) (*Table, error) {
	opts.sanitize()
	t := &Table{
		Title:  fmt.Sprintf("TCAM range expansion at %d rules", n),
		Header: []string{"Profile", "Rules", "Entries", "Efficiency", "Worst rule"},
	}
	for _, prof := range []string{"acl1", "fw1", "ipc1"} {
		p, err := classbench.ProfileByName(prof)
		if err != nil {
			return nil, err
		}
		_, st, err := tcam.Build(classbench.Generate(p, n, opts.Seed))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			prof, itoa(st.Rules), itoa(st.Entries),
			fmt.Sprintf("%.0f%%", st.Efficiency*100), itoa(st.WorstRuleEntries),
		})
	}
	return t, nil
}
