package bench

import (
	"fmt"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hwsim"
	"repro/internal/rule"
	"repro/internal/sa1100"
)

// AblationResult quantifies the design decisions of paper §3/§4 on one
// ruleset (DESIGN.md §5): each row is one decision with the two variants'
// costs.
type AblationResult struct {
	N int

	// Start32 vs Start2: modelled SA-1100 build cycles and memory words.
	Start32BuildCycles, Start2BuildCycles int64
	Start32Words, Start2Words             int

	// Speed 1 vs Speed 0: words and measured average cycles/packet.
	Speed1Words, Speed0Words int
	Speed1Cyc, Speed0Cyc     float64

	// Rules-in-leaf vs pointer leaves: worst-case cycles and memory.
	RulesLeafWorst, PtrLeafWorst int
	RulesLeafWords, PtrLeafWords int

	// Pipelining: cycles/packet with the root-overlap (measured) and
	// without (sum of unpipelined latencies).
	OverlapCyc, NoOverlapCyc float64

	// Leaf-scan layout on the host engine: the SoA comparator bank
	// (paper's 30 parallel comparators, software twin) vs the AoS
	// early-exit scan, packets/sec on the same engine and trace.
	SoALeafPPS, AoSLeafPPS float64

	// Scan-kernel dispatch: the same engine classified once per
	// available scan kernel (the portable oracle plus the CPU's native
	// SIMD kernel when present), packets/sec. Parallel slices; index 0
	// is always "portable".
	KernelNames []string
	KernelPPS   []float64
}

// RunAblations measures all four ablations on an acl1 ruleset of size n.
func RunAblations(opts Options, n int) (AblationResult, error) {
	opts.sanitize()
	res := AblationResult{N: n}
	rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
	trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)

	build := func(cfg core.Config) (*core.Tree, error) {
		tr, err := core.Build(rs, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation n=%d: %w", n, err)
		}
		return tr, nil
	}
	cycles := func(t *core.Tree) int64 {
		s := t.Stats()
		return sa1100.BuildCycles(sa1100.BuildWork{
			CutEvaluations: s.CutEvaluations, RuleChildOps: s.RuleChildOps,
			RulePushes: s.RulePushes, Nodes: s.Nodes, Rules: n,
		})
	}

	// Cut starting point.
	t32, err := build(core.DefaultConfig(core.HiCuts))
	if err != nil {
		return res, err
	}
	cfg2 := core.DefaultConfig(core.HiCuts)
	cfg2.StartCuts = 2
	t2, err := build(cfg2)
	if err != nil {
		return res, err
	}
	res.Start32BuildCycles, res.Start2BuildCycles = cycles(t32), cycles(t2)
	res.Start32Words, res.Start2Words = t32.Words(), t2.Words()

	// Speed parameter.
	for _, speed := range []int{0, 1} {
		cfg := core.DefaultConfig(core.HyperCuts)
		cfg.Speed = speed
		tr, err := build(cfg)
		if err != nil {
			return res, err
		}
		img, err := tr.Encode()
		if err != nil {
			return res, err
		}
		sim, err := hwsim.New(img, hwsim.ASIC)
		if err != nil {
			return res, err
		}
		_, st := sim.Run(trace)
		if speed == 0 {
			res.Speed0Words, res.Speed0Cyc = tr.Words(), st.AvgCyclesPerPacket
		} else {
			res.Speed1Words, res.Speed1Cyc = tr.Words(), st.AvgCyclesPerPacket
		}
	}

	// Rules-in-leaf vs pointers.
	tr, err := build(core.DefaultConfig(core.HyperCuts))
	if err != nil {
		return res, err
	}
	cfgP := core.DefaultConfig(core.HyperCuts)
	cfgP.LeafPointers = true
	tp, err := build(cfgP)
	if err != nil {
		return res, err
	}
	res.RulesLeafWorst, res.PtrLeafWorst = tr.WorstCaseCycles(), tp.WorstCaseCycles()
	res.RulesLeafWords, res.PtrLeafWords = tr.Words(), tp.Words()

	// Pipelining overlap.
	img, err := tr.Encode()
	if err != nil {
		return res, err
	}
	sim, err := hwsim.New(img, hwsim.ASIC)
	if err != nil {
		return res, err
	}
	_, st := sim.Run(trace)
	res.OverlapCyc = st.AvgCyclesPerPacket
	var latSum int64
	for _, p := range trace {
		latSum += int64(sim.ClassifyOne(p).LatencyCycles)
	}
	res.NoOverlapCyc = float64(latSum) / float64(len(trace))

	// Leaf-scan layout: the same flat engine classified through the SoA
	// comparator bank and through the AoS early-exit scan,
	// differentially checked packet-exact before timing.
	eng := engine.Compile(tr)
	for i, p := range trace {
		if got, want := eng.Classify(p), eng.ClassifyAoS(p); got != want {
			return res, fmt.Errorf("ablation n=%d: packet %d: soa=%d aos=%d", n, i, got, want)
		}
	}
	out := make([]int32, len(trace))
	res.AoSLeafPPS = MeasurePPS(trace, func(t []rule.Packet) { eng.ClassifyBatchAoS(t, out) })
	res.SoALeafPPS = MeasurePPS(trace, func(t []rule.Packet) { eng.ClassifyBatch(t, out) })

	// Scan-kernel dispatch: one timed row per kernel, each differentially
	// checked against the AoS oracle before timing.
	for _, k := range engine.Kernels() {
		ke, err := eng.WithKernel(k)
		if err != nil {
			return res, fmt.Errorf("ablation n=%d: kernel %s: %w", n, k, err)
		}
		for i, p := range trace {
			if got, want := ke.Classify(p), eng.ClassifyAoS(p); got != want {
				return res, fmt.Errorf("ablation n=%d: kernel %s: packet %d: %d vs aos %d", n, k, i, got, want)
			}
		}
		res.KernelNames = append(res.KernelNames, k)
		res.KernelPPS = append(res.KernelPPS,
			MeasurePPS(trace, func(t []rule.Packet) { ke.ClassifyBatch(t, out) }))
	}
	return res, nil
}

// AblationTable renders the ablation comparison.
func AblationTable(r AblationResult) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablations of the paper's design decisions (acl1, %d rules)", r.N),
		Header: []string{"Decision", "Paper variant", "Alternative", "Verdict"},
	}
	add := func(decision, chosen, alt, verdict string) {
		t.Rows = append(t.Rows, []string{decision, chosen, alt, verdict})
	}
	add("cut start (build cycles)",
		fmt.Sprintf("start=32: %d", r.Start32BuildCycles),
		fmt.Sprintf("start=2: %d", r.Start2BuildCycles),
		fmt.Sprintf("%.2fx cheaper", float64(r.Start2BuildCycles)/float64(r.Start32BuildCycles)))
	add("cut start (memory words)",
		fmt.Sprintf("start=32: %d", r.Start32Words),
		fmt.Sprintf("start=2: %d", r.Start2Words),
		fmt.Sprintf("%.2fx", float64(r.Start2Words)/float64(r.Start32Words)))
	add("speed parameter (words)",
		fmt.Sprintf("speed=1: %d", r.Speed1Words),
		fmt.Sprintf("speed=0: %d", r.Speed0Words),
		"speed 0 most compact")
	add("speed parameter (cyc/pkt)",
		fmt.Sprintf("speed=1: %.3f", r.Speed1Cyc),
		fmt.Sprintf("speed=0: %.3f", r.Speed0Cyc),
		"speed 1 never slower")
	add("leaf contents (worst cyc)",
		fmt.Sprintf("rules: %d", r.RulesLeafWorst),
		fmt.Sprintf("pointers: %d", r.PtrLeafWorst),
		fmt.Sprintf("+%d cycle(s) for pointers", r.PtrLeafWorst-r.RulesLeafWorst))
	add("leaf contents (words)",
		fmt.Sprintf("rules: %d", r.RulesLeafWords),
		fmt.Sprintf("pointers: %d", r.PtrLeafWords),
		"small memory delta")
	add("root-overlap pipelining (cyc/pkt)",
		fmt.Sprintf("overlap: %.3f", r.OverlapCyc),
		fmt.Sprintf("none: %.3f", r.NoOverlapCyc),
		"one cycle hidden per packet")
	add("leaf-scan layout (host engine pps)",
		fmt.Sprintf("soa bank: %.2fM", r.SoALeafPPS/1e6),
		fmt.Sprintf("aos scan: %.2fM", r.AoSLeafPPS/1e6),
		fmt.Sprintf("%.2fx", r.SoALeafPPS/r.AoSLeafPPS))
	for i, k := range r.KernelNames {
		verdict := "baseline"
		if i > 0 && r.KernelPPS[0] > 0 {
			verdict = fmt.Sprintf("%.2fx vs portable", r.KernelPPS[i]/r.KernelPPS[0])
		}
		add("scan kernel (host engine pps)",
			fmt.Sprintf("kernel=%s: %.2fM", k, r.KernelPPS[i]/1e6),
			fmt.Sprintf("kernel=%s: %.2fM", r.KernelNames[0], r.KernelPPS[0]/1e6),
			verdict)
	}
	return t
}
