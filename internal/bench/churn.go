package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
)

// Update-churn measurement: the paper's §4 live-update story quantified.
// A classify loop runs on the lock-free snapshot handle while the
// control plane sustains Insert/Delete churn through the delta/Patch
// pipeline; the row reports the throughput kept during churn, the cost
// of one patched update, and — for contrast — what every update used to
// cost when it forced a full recompile. Before any number is reported
// the patched engine is cross-checked packet-exact against a fresh
// recompile (engine.VerifyPatched).

// ChurnRow is one sustained-update measurement.
type ChurnRow struct {
	N    int
	Algo string

	// QuiescentPPS is single-core engine throughput with no updates.
	QuiescentPPS float64
	// ChurnPPS is the same loop's throughput while the updater runs.
	ChurnPPS float64
	// Updates is the number of Insert/Delete operations applied.
	Updates int
	// UpdatesPerSec is the sustained control-plane rate during churn.
	UpdatesPerSec float64
	// PatchMicros is the mean cost of one update end to end (tree delta
	// + engine patch + epoch swap), in microseconds.
	PatchMicros float64
	// RecompileMS is the measured cost of one full engine.Compile of
	// the post-churn tree — what every single update would have paid on
	// the old recompile-per-update path.
	RecompileMS float64
}

// RunUpdateChurn measures classification throughput under sustained
// rule updates for every ruleset size in opts, for both algorithms.
func RunUpdateChurn(opts Options) ([]ChurnRow, error) {
	opts.sanitize()
	var rows []ChurnRow
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
		inserts := n / 2
		if inserts > 400 {
			inserts = 400
		}
		if inserts < 20 {
			inserts = 20
		}
		pool := classbench.Generate(classbench.FW1(), inserts, opts.Seed+2)
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			row, err := runChurn(rs, pool, trace, algo)
			if err != nil {
				return nil, fmt.Errorf("churn %v n=%d: %w", algo, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runChurn(rs rule.RuleSet, pool rule.RuleSet, trace []rule.Packet, algo core.Algorithm) (ChurnRow, error) {
	row := ChurnRow{N: len(rs), Algo: algo.String()}
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		return row, err
	}
	h := engine.NewHandle(engine.Compile(tree))
	out := make([]int32, len(trace))

	row.QuiescentPPS = MeasurePPS(trace, func(t []rule.Packet) {
		h.Current().Engine().ClassifyBatch(t, out)
	})

	// Churn: one updater paces the pool (insert, and delete every third
	// inserted rule) evenly across a fixed window — the "N inserts/sec"
	// of a control plane serving live traffic — while the classify loop
	// keeps running on snapshot captures. done is closed by the updater;
	// the reader counts packets until then.
	const churnWindow = 120 * time.Millisecond
	planned := len(pool) + len(pool)/3
	interval := churnWindow / time.Duration(planned)
	done := make(chan struct{})
	var wg sync.WaitGroup
	var classified int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			h.Current().Engine().ClassifyBatch(trace, out)
			classified += int64(len(trace))
		}
	}()
	start := time.Now()
	next := start
	updates := 0
	var busy time.Duration
	var updErr error
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		t0 := time.Now()
		d, err := tree.InsertDelta(r)
		if err == nil {
			_, err = h.Apply(d)
		}
		busy += time.Since(t0)
		if err != nil {
			updErr = err
			break
		}
		updates++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if i%3 == 2 {
			t0 = time.Now()
			d, err := tree.DeleteDelta(len(rs) + i - 2)
			if err == nil {
				_, err = h.Apply(d)
			}
			busy += time.Since(t0)
			if err != nil {
				updErr = err
				break
			}
			updates++
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	churnDur := time.Since(start)
	close(done)
	wg.Wait()
	if updErr != nil {
		return row, updErr
	}
	row.Updates = updates
	row.UpdatesPerSec = float64(updates) / churnDur.Seconds()
	row.PatchMicros = float64(busy.Microseconds()) / float64(updates)
	row.ChurnPPS = float64(classified) / churnDur.Seconds()

	// What one update used to cost: a full recompile of the tree.
	start = time.Now()
	fresh := engine.Compile(tree)
	row.RecompileMS = float64(time.Since(start).Microseconds()) / 1e3

	// No number leaves this function unverified: the patched image must
	// equal the fresh recompile packet-exact.
	if err := engine.VerifyPatched(trace, h.Current().Engine(), fresh); err != nil {
		return row, err
	}
	return row, nil
}

// ChurnTable renders the sustained-update measurement.
func ChurnTable(rows []ChurnRow) *Table {
	t := &Table{
		Title: "Classification under update churn (patched epochs vs recompile-per-update)",
		Header: []string{"Rules", "Algorithm", "Quiescent pps", "Churn pps",
			"Updates", "Updates/s", "Patch us", "Recompile ms"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo,
			f0(r.QuiescentPPS), f0(r.ChurnPPS),
			itoa(r.Updates), f0(r.UpdatesPerSec),
			fmt.Sprintf("%.1f", r.PatchMicros),
			fmt.Sprintf("%.2f", r.RecompileMS),
		})
	}
	return t
}
