package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hwsim"
	"repro/internal/rule"
	"repro/internal/telemetry"
)

// Update-churn measurement: the paper's §4 live-update story quantified.
// A classify loop runs on the lock-free snapshot handle while the
// control plane sustains Insert/Delete churn through the delta/Patch
// pipeline — and, since the word-level write path landed, through the
// simulated device's one-word-per-cycle write interface as well. The row
// reports the throughput kept during churn, the distribution of
// per-update cost (mean/p50/p99/max — the sublinear claim is about the
// tail, not just the average), the device words rewritten per update
// versus the image size, and — for contrast — what every update used to
// cost when it forced a full recompile. Before any number is reported
// the patched engine is cross-checked packet-exact against a fresh
// recompile (engine.VerifyPatched) and the word-patched device image
// byte-exact against a full re-encode (hwsim.Sim.VerifyImage).

// ChurnRow is one sustained-update measurement.
type ChurnRow struct {
	N    int
	Algo string

	// QuiescentPPS is single-core engine throughput with no updates.
	QuiescentPPS float64
	// ChurnPPS is the same loop's throughput while the updater runs.
	ChurnPPS float64
	// Updates is the number of Insert/Delete operations applied.
	Updates int
	// UpdatesPerSec is the sustained control-plane rate during churn.
	UpdatesPerSec float64
	// PatchMicros is the mean cost of one update end to end (tree delta
	// + engine patch + epoch swap + device word writes), in
	// microseconds. P50/P99/MaxMicros are the distribution of the same
	// quantity.
	PatchMicros float64
	P50Micros   float64
	P99Micros   float64
	MaxMicros   float64
	// ImageWords is the device image size after the churn; DirtyWords
	// is the mean number of words the write interface rewrote per
	// update. Sublinearity is DirtyWords staying flat (a handful of
	// words) while ImageWords grows with the table.
	ImageWords int
	DirtyWords float64
	// RecompileMS is the measured cost of one full engine.Compile of
	// the post-churn tree — what every single update would have paid on
	// the old recompile-per-update path.
	RecompileMS float64
}

// RunUpdateChurn measures classification throughput under sustained
// rule updates for every ruleset size in opts, for both algorithms.
func RunUpdateChurn(opts Options) ([]ChurnRow, error) {
	opts.sanitize()
	var rows []ChurnRow
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
		inserts := n / 2
		if inserts > 400 {
			inserts = 400
		}
		if inserts < 20 {
			inserts = 20
		}
		pool := classbench.Generate(classbench.FW1(), inserts, opts.Seed+2)
		for _, algo := range []core.Algorithm{core.HiCuts, core.HyperCuts} {
			row, err := runChurn(rs, pool, trace, algo, opts.Telemetry)
			if err != nil {
				return nil, fmt.Errorf("churn %v n=%d: %w", algo, n, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// churnDevice is the simulated part the churn rows patch: the ASIC
// operating point with the pointer field's full 4096-word address space,
// so large tables still fit while updates grow them.
var churnDevice = hwsim.Device{Name: "ASIC-65nm-4096w", FreqHz: 226e6, PowerW: 0.01832, MemoryWords: 1 << core.PointerBits}

func runChurn(rs rule.RuleSet, pool rule.RuleSet, trace []rule.Packet, algo core.Algorithm, tel *telemetry.Recorder) (ChurnRow, error) {
	row := ChurnRow{N: len(rs), Algo: algo.String()}
	tree, err := core.Build(rs, core.DefaultConfig(algo))
	if err != nil {
		return row, err
	}
	h := engine.NewHandle(engine.Compile(tree))
	h.SetTelemetry(tel)
	out := make([]int32, len(trace))

	// The simulated device rides along: every delta is also replayed
	// into its memory image word-by-word, so the row measures the full
	// §4 update path (tree delta + engine patch + device word writes).
	img, err := tree.Encode()
	if err != nil {
		return row, err
	}
	sim, err := hwsim.New(img, churnDevice)
	if err != nil {
		return row, err
	}
	loadCycles := sim.LoadCycles()

	row.QuiescentPPS = MeasurePPS(trace, func(t []rule.Packet) {
		h.Current().Engine().ClassifyBatch(t, out)
	})

	// Churn: one updater paces the pool (insert, and delete every third
	// inserted rule) evenly across a fixed window — the "N inserts/sec"
	// of a control plane serving live traffic — while the classify loop
	// keeps running on snapshot captures. done is closed by the updater;
	// the reader counts packets until then.
	const churnWindow = 120 * time.Millisecond
	planned := len(pool) + len(pool)/3
	interval := churnWindow / time.Duration(planned)
	done := make(chan struct{})
	var wg sync.WaitGroup
	var classified int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			h.Current().Engine().ClassifyBatch(trace, out)
			classified += int64(len(trace))
		}
	}()
	start := time.Now()
	next := start
	updates := 0
	var busy time.Duration
	durs := make([]time.Duration, 0, planned)
	var updErr error
	oneUpdate := func(mutate func() (*core.Delta, error)) bool {
		t0 := time.Now()
		d, err := mutate()
		if err == nil {
			_, err = h.Apply(d)
		}
		if err == nil {
			_, err = sim.ApplyDelta(tree, d)
		}
		el := time.Since(t0)
		busy += el
		if err != nil {
			updErr = err
			return false
		}
		durs = append(durs, el)
		updates++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		return true
	}
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		if !oneUpdate(func() (*core.Delta, error) { return tree.InsertDelta(r) }) {
			break
		}
		if i%3 == 2 {
			id := len(rs) + i - 2
			if !oneUpdate(func() (*core.Delta, error) { return tree.DeleteDelta(id) }) {
				break
			}
		}
	}
	churnDur := time.Since(start)
	close(done)
	wg.Wait()
	if updErr != nil {
		return row, updErr
	}
	row.Updates = updates
	row.UpdatesPerSec = float64(updates) / churnDur.Seconds()
	row.PatchMicros = float64(busy.Microseconds()) / float64(updates)
	row.ChurnPPS = float64(classified) / churnDur.Seconds()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	row.P50Micros = pctMicros(durs, 0.50)
	row.P99Micros = pctMicros(durs, 0.99)
	row.MaxMicros = pctMicros(durs, 1.0)
	row.ImageWords = tree.Words()
	row.DirtyWords = float64(sim.LoadCycles()-loadCycles) / float64(updates)

	// What one update used to cost: a full recompile of the tree.
	start = time.Now()
	fresh := engine.Compile(tree)
	row.RecompileMS = float64(time.Since(start).Microseconds()) / 1e3

	// No number leaves this function unverified: the patched image must
	// equal the fresh recompile packet-exact, and the word-patched
	// device memory a fresh re-encode byte-exact.
	if err := engine.VerifyPatched(trace, h.Current().Engine(), fresh); err != nil {
		return row, err
	}
	if err := sim.VerifyImage(tree); err != nil {
		return row, err
	}
	return row, nil
}

// pctMicros reads the q-quantile of sorted durations, in microseconds.
func pctMicros(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	i := int(q * float64(len(durs)-1))
	return float64(durs[i].Nanoseconds()) / 1e3
}

// ChurnTable renders the sustained-update measurement.
func ChurnTable(rows []ChurnRow) *Table {
	t := &Table{
		Title: "Classification under update churn (patched epochs + word-level device writes vs recompile-per-update)",
		Header: []string{"Rules", "Algorithm", "Quiescent pps", "Churn pps",
			"Updates/s", "Patch us", "p50", "p99", "max",
			"Img words", "Dirty w/upd", "Recompile ms"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Algo,
			f0(r.QuiescentPPS), f0(r.ChurnPPS),
			f0(r.UpdatesPerSec),
			fmt.Sprintf("%.1f", r.PatchMicros),
			fmt.Sprintf("%.1f", r.P50Micros),
			fmt.Sprintf("%.1f", r.P99Micros),
			fmt.Sprintf("%.1f", r.MaxMicros),
			itoa(r.ImageWords),
			fmt.Sprintf("%.1f", r.DirtyWords),
			fmt.Sprintf("%.2f", r.RecompileMS),
		})
	}
	return t
}
