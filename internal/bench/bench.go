// Package bench is the experiment harness: it regenerates every table of
// the paper's evaluation (§5, Tables 2-8) plus the headline claims of
// §5.2/§5.3, using the substrates in internal/... . The cmd/pctables
// binary and the repository-level Go benchmarks are thin wrappers around
// this package.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/rfc"
	"repro/internal/sa1100"
	"repro/internal/tcam"
	"repro/internal/telemetry"
)

// Options parameterizes an experiment run.
type Options struct {
	// Seed drives ruleset and trace generation (default 2008).
	Seed int64
	// Sizes overrides the acl1 ruleset sizes (default: paper Table 2
	// sizes 60..2191).
	Sizes []int
	// Table4Sizes overrides the Table 4 sizes (default: paper sizes
	// 300..~25k).
	Table4Sizes []int
	// TracePackets is the trace length per measurement (default 20000).
	TracePackets int
	// Binth/Spfac for the software trees (default 16/4) — the hardware
	// trees always use the paper-table defaults (spfac 4, speed 1, binth 120).
	Binth int
	Spfac float64
	// Telemetry, when non-nil, is attached to the engine handles the
	// churn/cache/ingest measurements build, so a live /metrics scrape
	// (pctables -telemetry) watches the runs as they happen.
	Telemetry *telemetry.Recorder
}

func (o *Options) sanitize() {
	if o.Seed == 0 {
		o.Seed = 2008
	}
	if len(o.Sizes) == 0 {
		o.Sizes = classbench.PaperSizes(2, "acl1")
	}
	if o.TracePackets <= 0 {
		o.TracePackets = 20000
	}
	if o.Binth <= 0 {
		o.Binth = 16
	}
	if o.Spfac <= 0 {
		o.Spfac = 4
	}
}

// ACL1Row is one measurement row over the paper's acl1 ruleset sizes; it
// feeds Tables 2, 3, 6, 7 and 8.
type ACL1Row struct {
	N int

	// Table 2: memory for search structure + ruleset (bytes).
	SWHiCutsMem, SWHyperMem, HWHiCutsMem, HWHyperMem int

	// Table 3: energy to build the search structure (J, normalized).
	SWHiCutsBuildJ, SWHyperBuildJ, HWHiCutsBuildJ, HWHyperBuildJ float64

	// Table 6: average energy per packet (J, normalized).
	SWHiCutsEnergyJ, SWHyperEnergyJ     float64
	ASICHiCutsEnergyJ, ASICHyperEnergyJ float64
	FPGAHiCutsEnergyJ, FPGAHyperEnergyJ float64

	// Table 7: packets classified per second.
	SWHiCutsPPS, SWHyperPPS     float64
	ASICHiCutsPPS, ASICHyperPPS float64
	FPGAHiCutsPPS, FPGAHyperPPS float64

	// Table 8: worst-case memory accesses.
	SWHiCutsWorst, SWHyperWorst, HWHiCutsWorst, HWHyperWorst int
}

// RunACL1 builds all four classifiers per size, measures software cost on
// the SA-1100 model and hardware cost on the cycle-accurate simulator.
func RunACL1(opts Options) ([]ACL1Row, error) {
	opts.sanitize()
	rows := make([]ACL1Row, 0, len(opts.Sizes))
	for _, n := range opts.Sizes {
		rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
		trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
		row := ACL1Row{N: n}

		// Software baselines.
		swHi, err := hicuts.Build(rs, hicuts.Config{Binth: opts.Binth, Spfac: opts.Spfac})
		if err != nil {
			return nil, fmt.Errorf("software HiCuts n=%d: %w", n, err)
		}
		swHy, err := hypercuts.Build(rs, hypercuts.Config{Binth: opts.Binth, Spfac: opts.Spfac})
		if err != nil {
			return nil, fmt.Errorf("software HyperCuts n=%d: %w", n, err)
		}
		row.SWHiCutsMem = swHi.Stats().MemoryBytes
		row.SWHyperMem = swHy.Stats().MemoryBytes
		row.SWHiCutsBuildJ = sa1100.BuildEnergyJ(hicutsWork(swHi, n))
		row.SWHyperBuildJ = sa1100.BuildEnergyJ(hypercutsWork(swHy, n))
		row.SWHiCutsWorst = swHi.WorstCaseAccesses()
		row.SWHyperWorst = swHy.WorstCaseAccesses()

		costs := sa1100.DefaultCosts()
		stHi := sa1100.MeasureClassification(swHi, trace, costs)
		stHy := sa1100.MeasureClassification(swHy, trace, costs)
		row.SWHiCutsEnergyJ, row.SWHiCutsPPS = stHi.EnergyPerPacketJ, stHi.PacketsPerSecond
		row.SWHyperEnergyJ, row.SWHyperPPS = stHy.EnergyPerPacketJ, stHy.PacketsPerSecond

		// Hardware accelerator.
		hwHi, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
		if err != nil {
			return nil, fmt.Errorf("hardware HiCuts n=%d: %w", n, err)
		}
		hwHy, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
		if err != nil {
			return nil, fmt.Errorf("hardware HyperCuts n=%d: %w", n, err)
		}
		row.HWHiCutsMem = hwHi.MemoryBytes()
		row.HWHyperMem = hwHy.MemoryBytes()
		row.HWHiCutsBuildJ = sa1100.BuildEnergyJ(coreWork(hwHi, n))
		row.HWHyperBuildJ = sa1100.BuildEnergyJ(coreWork(hwHy, n))
		row.HWHiCutsWorst = hwHi.WorstCaseCycles()
		row.HWHyperWorst = hwHy.WorstCaseCycles()

		for _, hw := range []struct {
			tree         *core.Tree
			asicE, fpgaE *float64
			asicP, fpgaP *float64
		}{
			{hwHi, &row.ASICHiCutsEnergyJ, &row.FPGAHiCutsEnergyJ, &row.ASICHiCutsPPS, &row.FPGAHiCutsPPS},
			{hwHy, &row.ASICHyperEnergyJ, &row.FPGAHyperEnergyJ, &row.ASICHyperPPS, &row.FPGAHyperPPS},
		} {
			img, err := hw.tree.Encode()
			if err != nil {
				return nil, fmt.Errorf("encode n=%d: %w", n, err)
			}
			simA, err := hwsim.New(img, hwsim.ASIC)
			if err != nil {
				return nil, fmt.Errorf("asic sim n=%d: %w", n, err)
			}
			// Cross-check the simulated datapath against the flat
			// software engine while measuring: every table row is then
			// backed by a packet-exact agreement proof.
			_, stA, err := simA.RunVerified(trace, engine.Compile(hw.tree))
			if err != nil {
				return nil, fmt.Errorf("asic sim n=%d: %w", n, err)
			}
			*hw.asicE, *hw.asicP = stA.EnergyPerPacketJ, stA.PacketsPerSecond

			simF, err := hwsim.New(img, hwsim.FPGA)
			if err != nil {
				return nil, fmt.Errorf("fpga sim n=%d: %w", n, err)
			}
			_, stF := simF.Run(trace)
			*hw.fpgaE, *hw.fpgaP = stF.EnergyPerPacketJ, stF.PacketsPerSecond
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func hicutsWork(t *hicuts.Tree, n int) sa1100.BuildWork {
	s := t.Stats()
	return sa1100.BuildWork{
		CutEvaluations: s.CutEvaluations, RuleChildOps: s.RuleChildOps,
		RulePushes: s.RulePushes, Nodes: s.Nodes, Rules: n,
	}
}

func hypercutsWork(t *hypercuts.Tree, n int) sa1100.BuildWork {
	s := t.Stats()
	return sa1100.BuildWork{
		CutEvaluations: s.CutEvaluations, RuleChildOps: s.RuleChildOps + s.CompactionOps,
		RulePushes: s.RulePushes, Nodes: s.Nodes, Rules: n,
	}
}

func coreWork(t *core.Tree, n int) sa1100.BuildWork {
	s := t.Stats()
	return sa1100.BuildWork{
		CutEvaluations: s.CutEvaluations, RuleChildOps: s.RuleChildOps,
		RulePushes: s.RulePushes, Nodes: s.Nodes, Rules: n,
	}
}

// Table4Row is one row of paper Table 4.
type Table4Row struct {
	Profile                   string
	N                         int
	HiCutsMem, HyperMem       int
	HiCutsCycles, HyperCycles int
	HiCutsFits, HyperFits     bool // fits the 1024-word device
}

// RunTable4 measures hardware memory and worst-case cycles for the acl1,
// fw1 and ipc1 profiles at the given sizes (nil = paper sizes).
func RunTable4(opts Options) ([]Table4Row, error) {
	opts.sanitize()
	var rows []Table4Row
	for _, prof := range []string{"acl1", "fw1", "ipc1"} {
		p, err := classbench.ProfileByName(prof)
		if err != nil {
			return nil, err
		}
		sizes := opts.Table4Sizes
		if len(sizes) == 0 {
			sizes = classbench.PaperSizes(4, prof)
		}
		for _, n := range sizes {
			rs := classbench.Generate(p, n, opts.Seed)
			hi, err := core.Build(rs, core.DefaultConfig(core.HiCuts))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d HiCuts: %w", prof, n, err)
			}
			hy, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d HyperCuts: %w", prof, n, err)
			}
			rows = append(rows, Table4Row{
				Profile: prof, N: n,
				HiCutsMem: hi.MemoryBytes(), HyperMem: hy.MemoryBytes(),
				HiCutsCycles: hi.WorstCaseCycles(), HyperCycles: hy.WorstCaseCycles(),
				HiCutsFits: hi.FitsDevice(), HyperFits: hy.FitsDevice(),
			})
		}
	}
	return rows, nil
}

// Claims reproduces the headline ratios of §5.2 and §5.3.
type Claims struct {
	N int
	// ThroughputVsRFC is ASIC pps / RFC-on-SA-1100 pps (paper: up to 546x).
	ThroughputVsRFC float64
	// ThroughputVsHiCuts is ASIC pps / software-HiCuts pps (paper: up to 4,269x).
	ThroughputVsHiCuts float64
	// EnergySavingVsHiCuts is software-HiCuts J/pkt over ASIC J/pkt
	// (paper: up to 7,773x).
	EnergySavingVsHiCuts float64
	// RFCPPS and HiCutsPPS are the software rates for context.
	RFCPPS, HiCutsPPS, ASICPPS float64
	// FPGAPowerW vs TCAMPowerW at 77 MHz with comparable memory
	// (paper: 1.8 W vs 2.9 W for the Ayama 10128).
	FPGAPowerW, TCAMPowerW float64
	// ASICPowerRawW at 226 MHz vs the power of just the SRAM a TCAM
	// system needs (paper §5.3: 19.79 mW vs 875 mW).
	ASICPowerRawW, TCAMSRAMPowerW float64
	// TCAMEfficiency is the modelled storage efficiency of the ruleset
	// on a TCAM (paper cites 16-53%).
	TCAMEfficiency float64
}

// RunClaims measures the §5.2/§5.3 headline comparisons on the largest
// acl1 set (2191 rules in the paper).
func RunClaims(opts Options) (Claims, error) {
	opts.sanitize()
	n := opts.Sizes[len(opts.Sizes)-1]
	rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
	trace := classbench.GenerateTrace(rs, opts.TracePackets, opts.Seed+1)
	cl := Claims{N: n}

	// RFC baseline on the SA-1100 model.
	rfcC, _, err := rfc.Build(rs)
	if err != nil {
		return cl, err
	}
	costs := sa1100.DefaultCosts()
	stRFC := sa1100.MeasureClassification(rfcC, trace, costs)
	cl.RFCPPS = stRFC.PacketsPerSecond

	// Software HiCuts.
	swHi, err := hicuts.Build(rs, hicuts.Config{Binth: opts.Binth, Spfac: opts.Spfac})
	if err != nil {
		return cl, err
	}
	stHi := sa1100.MeasureClassification(swHi, trace, costs)
	cl.HiCutsPPS = stHi.PacketsPerSecond

	// ASIC accelerator running modified HyperCuts (the paper's best).
	hw, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		return cl, err
	}
	img, err := hw.Encode()
	if err != nil {
		return cl, err
	}
	sim, err := hwsim.New(img, hwsim.ASIC)
	if err != nil {
		return cl, err
	}
	_, stA := sim.Run(trace)
	cl.ASICPPS = stA.PacketsPerSecond

	cl.ThroughputVsRFC = stA.PacketsPerSecond / stRFC.PacketsPerSecond
	cl.ThroughputVsHiCuts = stA.PacketsPerSecond / stHi.PacketsPerSecond
	cl.EnergySavingVsHiCuts = stHi.EnergyPerPacketJ / stA.EnergyPerPacketJ

	// TCAM comparison.
	_, tst, err := tcam.Build(rs)
	if err != nil {
		return cl, err
	}
	cl.TCAMEfficiency = tst.Efficiency
	cl.FPGAPowerW = energy.Virtex5.RawPowerW
	cl.TCAMPowerW = tcam.Ayama10128at77.PowerW()
	cl.ASICPowerRawW = energy.ASIC65.RawPowerW
	cl.TCAMSRAMPowerW = tcam.SRAMCY7C1370DV25PowerW
	return cl, nil
}

// ---- text table rendering ----

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func sci(v float64) string { return fmt.Sprintf("%.2E", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
