package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
	"repro/internal/stream"
	"repro/internal/wire"
)

// End-to-end ingest measurement: the full ClassifyStream path — framed
// bytes in, result lines out — for the legacy text trace format, the
// binary wire format, binary with the flow cache enabled, and a pcap
// capture salted with unparseable records (the skip path). This is
// the number the line-rate ingest work is accountable to: not classify
// microbenchmarks, but packets through the whole decode → classify →
// serialize pipeline per second, with allocations per packet alongside
// (steady state must stay far below one on every path, zero on the
// binary decode itself). Before any number is reported, all formats are
// cross-checked byte-exact against each other and a direct ClassifyBatch
// oracle — cold, warm-cache, and after control-plane churn.

// IngestRow is one end-to-end ingest measurement.
type IngestRow struct {
	N      int
	Format string
	// Flows/Burst describe the trace locality (GenerateFlowTrace).
	Flows, Burst int
	// InputBytes is the encoded size of one trace pass in this format.
	InputBytes int
	// PPS is end-to-end packets per second through the full pipeline.
	PPS float64
	// AllocsPerPkt is heap allocations per packet, steady state.
	AllocsPerPkt float64
	// SpeedupX is PPS over the text row's PPS at the same size.
	SpeedupX float64
	// BatchP50Ns/BatchP99Ns are the per-batch classify+encode latency
	// quantiles of the last measured pass (stream.Stats.BatchP50Ns,
	// log2-bucket estimates).
	BatchP50Ns, BatchP99Ns int64
	// Skipped is the per-pass count of unparseable capture records the
	// pipeline stepped over (pcap row only; the framed formats reject
	// malformed input instead of skipping it).
	Skipped int64
}

// RunIngest measures end-to-end ingest throughput per format for every
// ruleset size (default 1k and 10k — ingest cost depends mostly on the
// framing, so a small and a large set bound the range).
func RunIngest(opts Options) ([]IngestRow, error) {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{1000, 10000}
	}
	opts.sanitize()
	var rows []IngestRow
	for _, n := range opts.Sizes {
		sized, err := runIngest(n, opts)
		if err != nil {
			return nil, fmt.Errorf("ingest n=%d: %w", n, err)
		}
		rows = append(rows, sized...)
	}
	return rows, nil
}

func runIngest(n int, opts Options) ([]IngestRow, error) {
	rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		return nil, err
	}
	flows := max(n/4, 256)
	const burst = 16
	trace := classbench.GenerateFlowTrace(rs, max(opts.TracePackets, 4*stream.BatchSize), flows, burst, opts.Seed+1)
	// The pcap round-trip zeroes L4 ports for protocols other than
	// TCP/UDP (no parseable header), which would make the pcap row
	// classify a different trace than the framed formats. Pin every
	// packet to TCP unless it is already UDP so all four formats — and
	// the ClassifyBatch oracle — see byte-identical packets.
	for i := range trace {
		if trace[i].Proto != 17 {
			trace[i].Proto = 6
		}
	}

	var text, bin, pcap bytes.Buffer
	if err := rule.WriteTrace(&text, trace); err != nil {
		return nil, err
	}
	if err := wire.WriteTrace(&bin, trace); err != nil {
		return nil, err
	}
	if err := wire.WritePcap(&pcap, trace); err != nil {
		return nil, err
	}
	// Real captures carry frames the classifier cannot use (ARP, runts,
	// non-IPv4). Append a fixed tail of such records so every measured
	// pass exercises — and every verify pass pins — the skip path:
	// stream.Stats.Skipped must report exactly this count while the
	// result stream stays oracle-identical.
	const pcapGarbage = 24
	appendGarbagePcap(&pcap, pcapGarbage)

	// Plain handle for the uncached rows; a second handle owns the flow
	// cache so the "binary" row never borrows cached answers.
	h := engine.NewHandle(engine.Compile(tree))
	hc := engine.NewHandle(engine.Compile(tree))
	h.SetTelemetry(opts.Telemetry)
	hc.SetTelemetry(opts.Telemetry)
	hc.EnableCache(4 * flows)

	// Differential verification before any measurement: text, binary and
	// cached-binary output streams must be byte-identical to the direct
	// ClassifyBatch oracle — cold, warm-cache, and post-churn.
	oracle := func() ([]byte, error) {
		want := make([]int32, len(trace))
		h.Current().Engine().ClassifyBatch(trace, want)
		var buf bytes.Buffer
		for _, id := range want {
			fmt.Fprintf(&buf, "%d\n", id)
		}
		return buf.Bytes(), nil
	}
	verify := func(when string) error {
		want, err := oracle()
		if err != nil {
			return err
		}
		for name, run := range map[string]func(io.Writer) (stream.Stats, error){
			"text":         func(w io.Writer) (stream.Stats, error) { return stream.Run(h, bytes.NewReader(text.Bytes()), w) },
			"binary":       func(w io.Writer) (stream.Stats, error) { return stream.Run(h, bytes.NewReader(bin.Bytes()), w) },
			"binary+cache": func(w io.Writer) (stream.Stats, error) { return stream.Run(hc, bytes.NewReader(bin.Bytes()), w) },
			"pcap":         func(w io.Writer) (stream.Stats, error) { return stream.Run(h, bytes.NewReader(pcap.Bytes()), w) },
		} {
			var out bytes.Buffer
			st, err := run(&out)
			if err != nil {
				return fmt.Errorf("%s %s: %w", when, name, err)
			}
			if st.Packets != int64(len(trace)) {
				return fmt.Errorf("%s %s: %d packets, want %d", when, name, st.Packets, len(trace))
			}
			wantSkip := int64(0)
			if name == "pcap" {
				wantSkip = pcapGarbage
			}
			if st.Skipped != wantSkip {
				return fmt.Errorf("%s %s: %d skipped records, want %d", when, name, st.Skipped, wantSkip)
			}
			if !bytes.Equal(out.Bytes(), want) {
				return fmt.Errorf("%s %s: result stream differs from ClassifyBatch oracle", when, name)
			}
		}
		return nil
	}
	if err := verify("cold"); err != nil {
		return nil, err
	}
	if err := verify("warm"); err != nil {
		return nil, err
	}
	// Churn: insert a batch of rules through both handles, then verify
	// the streams again against the updated tree.
	pool := classbench.Generate(classbench.FW1(), min(max(n/8, 20), 200), opts.Seed+2)
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err != nil {
			return nil, err
		}
		if _, err := h.Apply(d); err != nil {
			return nil, err
		}
		if _, err := hc.Apply(d); err != nil {
			return nil, err
		}
	}
	if err := verify("post-churn"); err != nil {
		return nil, err
	}

	measure := func(data []byte, hh *engine.Handle) (row IngestRow, err error) {
		// One warm pass, then timed passes over the same bytes.
		if _, err := stream.Run(hh, bytes.NewReader(data), io.Discard); err != nil {
			return IngestRow{}, err
		}
		const minDur = 80 * time.Millisecond
		var packets, allocs int64
		src := bytes.NewReader(data)
		start := time.Now()
		for time.Since(start) < minDur {
			src.Reset(data)
			st, err := stream.Run(hh, src, io.Discard)
			if err != nil {
				return IngestRow{}, err
			}
			packets += st.Packets
			allocs += st.Allocs
			row.BatchP50Ns, row.BatchP99Ns = st.BatchP50Ns, st.BatchP99Ns
			row.Skipped = st.Skipped
		}
		dur := time.Since(start).Seconds()
		row.PPS = float64(packets) / dur
		row.AllocsPerPkt = float64(allocs) / float64(packets)
		return row, nil
	}

	rows := []IngestRow{
		{N: n, Format: "text", InputBytes: text.Len()},
		{N: n, Format: "binary", InputBytes: bin.Len()},
		{N: n, Format: "binary+cache", InputBytes: bin.Len()},
		{N: n, Format: "pcap", InputBytes: pcap.Len()},
	}
	handles := []*engine.Handle{h, h, hc, h}
	inputs := [][]byte{text.Bytes(), bin.Bytes(), bin.Bytes(), pcap.Bytes()}
	for i := range rows {
		m, err := measure(inputs[i], handles[i])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rows[i].Format, err)
		}
		m.N, m.Format, m.InputBytes = rows[i].N, rows[i].Format, rows[i].InputBytes
		m.Flows, m.Burst = flows, burst
		rows[i] = m
	}
	for i := range rows {
		rows[i].SpeedupX = rows[i].PPS / rows[0].PPS
	}
	return rows, nil
}

// appendGarbagePcap appends n records the IPv4-over-Ethernet parser
// must step over — alternating ARP-ethertype frames and runts, each
// wrapped in a well-formed record header so the reader keeps framing.
func appendGarbagePcap(buf *bytes.Buffer, n int) {
	arp := make([]byte, 40)
	arp[12], arp[13] = 0x08, 0x06 // ethertype ARP, not 0x0800
	runt := []byte{0xde, 0xad, 0xbe, 0xef, 0x00}
	for i := 0; i < n; i++ {
		frame := arp
		if i%2 == 1 {
			frame = runt
		}
		var rh [16]byte
		binary.LittleEndian.PutUint32(rh[8:12], uint32(len(frame)))  // incl_len
		binary.LittleEndian.PutUint32(rh[12:16], uint32(len(frame))) // orig_len
		buf.Write(rh[:])
		buf.Write(frame)
	}
}

// IngestTable renders the end-to-end ingest measurement.
func IngestTable(rows []IngestRow) *Table {
	t := &Table{
		Title:  "End-to-end ingest (decode → classify → serialize), text vs binary vs pcap framing",
		Header: []string{"Rules", "Format", "Flows", "Input bytes", "pps", "allocs/pkt", "batch p50", "batch p99", "Skipped", "Speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Format, itoa(r.Flows), itoa(r.InputBytes),
			f0(r.PPS), fmt.Sprintf("%.4f", r.AllocsPerPkt),
			fmt.Sprintf("%.0fµs", float64(r.BatchP50Ns)/1e3),
			fmt.Sprintf("%.0fµs", float64(r.BatchP99Ns)/1e3),
			fmt.Sprintf("%d", r.Skipped),
			fmt.Sprintf("%.2fx", r.SpeedupX),
		})
	}
	return t
}
