package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
	"repro/internal/stream"
	"repro/internal/wire"
)

// End-to-end ingest measurement: the full ClassifyStream path — framed
// bytes in, result lines out — for the legacy text trace format, the
// binary wire format, and binary with the flow cache enabled. This is
// the number the line-rate ingest work is accountable to: not classify
// microbenchmarks, but packets through the whole decode → classify →
// serialize pipeline per second, with allocations per packet alongside
// (steady state must stay far below one on every path, zero on the
// binary decode itself). Before any number is reported, all formats are
// cross-checked byte-exact against each other and a direct ClassifyBatch
// oracle — cold, warm-cache, and after control-plane churn.

// IngestRow is one end-to-end ingest measurement.
type IngestRow struct {
	N      int
	Format string
	// Flows/Burst describe the trace locality (GenerateFlowTrace).
	Flows, Burst int
	// InputBytes is the encoded size of one trace pass in this format.
	InputBytes int
	// PPS is end-to-end packets per second through the full pipeline.
	PPS float64
	// AllocsPerPkt is heap allocations per packet, steady state.
	AllocsPerPkt float64
	// SpeedupX is PPS over the text row's PPS at the same size.
	SpeedupX float64
	// BatchP50Ns/BatchP99Ns are the per-batch classify+encode latency
	// quantiles of the last measured pass (stream.Stats.BatchP50Ns,
	// log2-bucket estimates).
	BatchP50Ns, BatchP99Ns int64
}

// RunIngest measures end-to-end ingest throughput per format for every
// ruleset size (default 1k and 10k — ingest cost depends mostly on the
// framing, so a small and a large set bound the range).
func RunIngest(opts Options) ([]IngestRow, error) {
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{1000, 10000}
	}
	opts.sanitize()
	var rows []IngestRow
	for _, n := range opts.Sizes {
		sized, err := runIngest(n, opts)
		if err != nil {
			return nil, fmt.Errorf("ingest n=%d: %w", n, err)
		}
		rows = append(rows, sized...)
	}
	return rows, nil
}

func runIngest(n int, opts Options) ([]IngestRow, error) {
	rs := classbench.Generate(classbench.ACL1(), n, opts.Seed)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		return nil, err
	}
	flows := max(n/4, 256)
	const burst = 16
	trace := classbench.GenerateFlowTrace(rs, max(opts.TracePackets, 4*stream.BatchSize), flows, burst, opts.Seed+1)

	var text, bin bytes.Buffer
	if err := rule.WriteTrace(&text, trace); err != nil {
		return nil, err
	}
	if err := wire.WriteTrace(&bin, trace); err != nil {
		return nil, err
	}

	// Plain handle for the uncached rows; a second handle owns the flow
	// cache so the "binary" row never borrows cached answers.
	h := engine.NewHandle(engine.Compile(tree))
	hc := engine.NewHandle(engine.Compile(tree))
	h.SetTelemetry(opts.Telemetry)
	hc.SetTelemetry(opts.Telemetry)
	hc.EnableCache(4 * flows)

	// Differential verification before any measurement: text, binary and
	// cached-binary output streams must be byte-identical to the direct
	// ClassifyBatch oracle — cold, warm-cache, and post-churn.
	oracle := func() ([]byte, error) {
		want := make([]int32, len(trace))
		h.Current().Engine().ClassifyBatch(trace, want)
		var buf bytes.Buffer
		for _, id := range want {
			fmt.Fprintf(&buf, "%d\n", id)
		}
		return buf.Bytes(), nil
	}
	verify := func(when string) error {
		want, err := oracle()
		if err != nil {
			return err
		}
		for name, run := range map[string]func(io.Writer) (stream.Stats, error){
			"text":         func(w io.Writer) (stream.Stats, error) { return stream.Run(h, bytes.NewReader(text.Bytes()), w) },
			"binary":       func(w io.Writer) (stream.Stats, error) { return stream.Run(h, bytes.NewReader(bin.Bytes()), w) },
			"binary+cache": func(w io.Writer) (stream.Stats, error) { return stream.Run(hc, bytes.NewReader(bin.Bytes()), w) },
		} {
			var out bytes.Buffer
			st, err := run(&out)
			if err != nil {
				return fmt.Errorf("%s %s: %w", when, name, err)
			}
			if st.Packets != int64(len(trace)) {
				return fmt.Errorf("%s %s: %d packets, want %d", when, name, st.Packets, len(trace))
			}
			if !bytes.Equal(out.Bytes(), want) {
				return fmt.Errorf("%s %s: result stream differs from ClassifyBatch oracle", when, name)
			}
		}
		return nil
	}
	if err := verify("cold"); err != nil {
		return nil, err
	}
	if err := verify("warm"); err != nil {
		return nil, err
	}
	// Churn: insert a batch of rules through both handles, then verify
	// the streams again against the updated tree.
	pool := classbench.Generate(classbench.FW1(), min(max(n/8, 20), 200), opts.Seed+2)
	for i := range pool {
		r := pool[i]
		r.ID = tree.NumRules()
		d, err := tree.InsertDelta(r)
		if err != nil {
			return nil, err
		}
		if _, err := h.Apply(d); err != nil {
			return nil, err
		}
		if _, err := hc.Apply(d); err != nil {
			return nil, err
		}
	}
	if err := verify("post-churn"); err != nil {
		return nil, err
	}

	measure := func(data []byte, hh *engine.Handle) (pps, allocsPerPkt float64, p50, p99 int64, err error) {
		// One warm pass, then timed passes over the same bytes.
		if _, err := stream.Run(hh, bytes.NewReader(data), io.Discard); err != nil {
			return 0, 0, 0, 0, err
		}
		const minDur = 80 * time.Millisecond
		var packets, allocs int64
		src := bytes.NewReader(data)
		start := time.Now()
		for time.Since(start) < minDur {
			src.Reset(data)
			st, err := stream.Run(hh, src, io.Discard)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			packets += st.Packets
			allocs += st.Allocs
			p50, p99 = st.BatchP50Ns, st.BatchP99Ns
		}
		dur := time.Since(start).Seconds()
		return float64(packets) / dur, float64(allocs) / float64(packets), p50, p99, nil
	}

	rows := []IngestRow{
		{N: n, Format: "text", InputBytes: text.Len()},
		{N: n, Format: "binary", InputBytes: bin.Len()},
		{N: n, Format: "binary+cache", InputBytes: bin.Len()},
	}
	handles := []*engine.Handle{h, h, hc}
	inputs := [][]byte{text.Bytes(), bin.Bytes(), bin.Bytes()}
	for i := range rows {
		rows[i].Flows, rows[i].Burst = flows, burst
		rows[i].PPS, rows[i].AllocsPerPkt, rows[i].BatchP50Ns, rows[i].BatchP99Ns, err =
			measure(inputs[i], handles[i])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rows[i].Format, err)
		}
	}
	for i := range rows {
		rows[i].SpeedupX = rows[i].PPS / rows[0].PPS
	}
	return rows, nil
}

// IngestTable renders the end-to-end ingest measurement.
func IngestTable(rows []IngestRow) *Table {
	t := &Table{
		Title:  "End-to-end ingest (decode → classify → serialize), text vs binary framing",
		Header: []string{"Rules", "Format", "Flows", "Input bytes", "pps", "allocs/pkt", "batch p50", "batch p99", "Speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(r.N), r.Format, itoa(r.Flows), itoa(r.InputBytes),
			f0(r.PPS), fmt.Sprintf("%.4f", r.AllocsPerPkt),
			fmt.Sprintf("%.0fµs", float64(r.BatchP50Ns)/1e3),
			fmt.Sprintf("%.0fµs", float64(r.BatchP99Ns)/1e3),
			fmt.Sprintf("%.2fx", r.SpeedupX),
		})
	}
	return t
}
