// Package rfc implements Recursive Flow Classification (Gupta & McKeown,
// SIGCOMM 1999), the fastest software classifier the paper compares its
// accelerator against ("the hardware accelerator can classify up to 546
// times more packets ... than the best performing software algorithm RFC
// tested in [12]", §5.2).
//
// RFC reduces a 5-tuple lookup to a fixed pipeline of table indexings.
// Phase 0 splits the header into seven chunks (two 16-bit halves of each
// IP address, the two ports and the protocol) and maps each through a
// table to an equivalence-class ID; later phases combine class IDs
// pairwise through cross-product tables until one final class remains,
// which is precomputed to the highest-priority matching rule.
//
// Preprocessing computes, for every chunk value, the bitmap of rules
// whose projection onto the chunk contains that value; values with equal
// bitmaps share an equivalence class. Cross-product tables intersect the
// operand bitmaps and re-class the result.
package rfc

import (
	"fmt"

	"repro/internal/rule"
)

// chunk identifiers for phase 0.
const (
	chunkSrcHi = iota // srcIP[31:16]
	chunkSrcLo        // srcIP[15:0]
	chunkDstHi        // dstIP[31:16]
	chunkDstLo        // dstIP[15:0]
	chunkSrcPort
	chunkDstPort
	chunkProto
	numChunks
)

var chunkBits = [numChunks]uint{16, 16, 16, 16, 16, 16, 8}

// table is one equivalence-class mapping with a synthetic base address
// for the cache model (entries are 2 bytes, the paper-era eqID width).
type table struct {
	entries []uint16
	classes int
	base    uint32
}

// Classifier is a built RFC structure.
type Classifier struct {
	phase0 [numChunks]*table

	// Cross-product tables. p1src combines the two source IP chunks,
	// p1dst the destination chunks, p1port the two ports; p2addr
	// combines the IP results, p2portproto the port result with the
	// protocol chunk; p3 yields the final class.
	p1src, p1dst, p1port *table
	p2addr, p2portproto  *table
	p3                   *table

	// widths for indexing the cross-product tables.
	nSrcLo, nDstLo, nDstPort, nProto, nP1dst, nP2pp int

	// result maps the final class to the matching rule ID (-1 = none).
	result []int32

	memoryBytes int
	rules       int
}

// PreprocessStats reports construction work for the energy model.
type PreprocessStats struct {
	TableEntries int64 // total entries written across all tables
	BitmapOps    int64 // bitset word operations during preprocessing
	EquivClasses int   // total distinct classes across tables
	MemoryBytes  int
	FinalClasses int
}

// Build constructs the RFC tables for rs.
func Build(rs rule.RuleSet) (*Classifier, *PreprocessStats, error) {
	if err := rs.Validate(); err != nil {
		return nil, nil, fmt.Errorf("rfc: %w", err)
	}
	n := len(rs)
	c := &Classifier{rules: n}
	st := &PreprocessStats{}
	var nextBase uint32

	newTable := func(size int) *table {
		t := &table{entries: make([]uint16, size), base: nextBase}
		nextBase += uint32(size * 2)
		st.TableEntries += int64(size)
		return t
	}

	// ---- Phase 0: per-chunk equivalence classes via boundary sweep ----
	var p0sets [numChunks][]bitset // class -> rule bitmap
	for ch := 0; ch < numChunks; ch++ {
		size := 1 << chunkBits[ch]
		t := newTable(size)
		ivals := make([][2]uint32, n)
		for i := range rs {
			ivals[i] = chunkInterval(&rs[i], ch)
		}
		sets := sweep(t.entries, ivals, n, st)
		t.classes = len(sets)
		c.phase0[ch] = t
		p0sets[ch] = sets
		st.EquivClasses += t.classes
	}

	// ---- Cross-product phases ----
	cross := func(a, b []bitset) (*table, []bitset) {
		t := newTable(len(a) * len(b))
		seen := make(map[string]uint16)
		var sets []bitset
		for i, sa := range a {
			for j, sb := range b {
				inter := sa.and(sb, st)
				key := inter.key()
				id, ok := seen[key]
				if !ok {
					id = uint16(len(sets))
					sets = append(sets, inter)
					seen[key] = id
				}
				t.entries[i*len(b)+j] = id
			}
		}
		t.classes = len(sets)
		st.EquivClasses += t.classes
		return t, sets
	}

	var s1src, s1dst, s1port, s2addr, s2pp, s3 []bitset
	c.p1src, s1src = cross(p0sets[chunkSrcHi], p0sets[chunkSrcLo])
	c.p1dst, s1dst = cross(p0sets[chunkDstHi], p0sets[chunkDstLo])
	c.p1port, s1port = cross(p0sets[chunkSrcPort], p0sets[chunkDstPort])
	c.p2addr, s2addr = cross(s1src, s1dst)
	c.p2portproto, s2pp = cross(s1port, p0sets[chunkProto])
	c.p3, s3 = cross(s2addr, s2pp)

	c.nSrcLo = c.phase0[chunkSrcLo].classes
	c.nDstLo = c.phase0[chunkDstLo].classes
	c.nDstPort = c.phase0[chunkDstPort].classes
	c.nProto = c.phase0[chunkProto].classes
	c.nP1dst = c.p1dst.classes
	c.nP2pp = c.p2portproto.classes

	// ---- Final result table ----
	c.result = make([]int32, len(s3))
	for i, s := range s3 {
		c.result[i] = int32(s.first())
	}
	st.FinalClasses = len(s3)

	c.memoryBytes = int(nextBase) + len(c.result)*4
	st.MemoryBytes = c.memoryBytes
	return c, st, nil
}

// chunkInterval projects rule r onto chunk ch as an inclusive interval.
// IP fields are prefixes, so each 16-bit half is either an interval (the
// half containing the prefix boundary), an exact value, or a wildcard —
// and the conjunction of the two halves equals the prefix match.
func chunkInterval(r *rule.Rule, ch int) [2]uint32 {
	switch ch {
	case chunkSrcHi:
		f := r.F[rule.DimSrcIP]
		return [2]uint32{f.Lo >> 16, f.Hi >> 16}
	case chunkSrcLo:
		return lowHalf(r.F[rule.DimSrcIP])
	case chunkDstHi:
		f := r.F[rule.DimDstIP]
		return [2]uint32{f.Lo >> 16, f.Hi >> 16}
	case chunkDstLo:
		return lowHalf(r.F[rule.DimDstIP])
	case chunkSrcPort:
		f := r.F[rule.DimSrcPort]
		return [2]uint32{f.Lo, f.Hi}
	case chunkDstPort:
		f := r.F[rule.DimDstPort]
		return [2]uint32{f.Lo, f.Hi}
	case chunkProto:
		f := r.F[rule.DimProto]
		return [2]uint32{f.Lo, f.Hi}
	}
	panic("rfc: bad chunk")
}

// lowHalf projects a prefix range onto its low 16 bits: if the prefix
// covers more than one high-half value the low half is a wildcard,
// otherwise it is the range of low bits.
func lowHalf(f rule.Range) [2]uint32 {
	if f.Lo>>16 != f.Hi>>16 {
		return [2]uint32{0, 0xFFFF}
	}
	return [2]uint32{f.Lo & 0xFFFF, f.Hi & 0xFFFF}
}

// sweep fills entries with equivalence-class IDs for one chunk and
// returns the class bitmaps. Boundary sweep: class membership changes
// only at interval endpoints.
func sweep(entries []uint16, ivals [][2]uint32, n int, st *PreprocessStats) []bitset {
	size := len(entries)
	// Difference arrays of rule starts/ends per value.
	starts := make([][]int32, size)
	ends := make([][]int32, size)
	for id, iv := range ivals {
		starts[iv[0]] = append(starts[iv[0]], int32(id))
		ends[iv[1]] = append(ends[iv[1]], int32(id))
	}
	cur := newBitset(n)
	seen := make(map[string]uint16)
	var sets []bitset
	for v := 0; v < size; v++ {
		for _, id := range starts[v] {
			cur.set(int(id))
		}
		key := cur.key()
		cls, ok := seen[key]
		if !ok {
			cls = uint16(len(sets))
			sets = append(sets, cur.clone(st))
			seen[key] = cls
		}
		entries[v] = cls
		for _, id := range ends[v] {
			cur.clear(int(id))
		}
	}
	return sets
}

// MemoryBytes returns the total size of all RFC tables.
func (c *Classifier) MemoryBytes() int { return c.memoryBytes }

// NumRules returns the ruleset size.
func (c *Classifier) NumRules() int { return c.rules }

// Accesses is the fixed number of memory lookups per classification:
// seven phase-0 chunks, three phase-1 tables, two phase-2 tables, the
// phase-3 table and the result entry.
const Accesses = numChunks + 3 + 2 + 1 + 1

// Classify returns the highest-priority matching rule ID or -1.
func (c *Classifier) Classify(p rule.Packet) int {
	m, _ := c.ClassifyTraced(p, nil)
	return m
}

// ClassifyTraced classifies p, reporting every table read (2-byte
// entries) to trace; it implements the sa1100.TracedClassifier contract.
func (c *Classifier) ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (match, accesses int) {
	look := func(t *table, idx int) int {
		accesses++
		if trace != nil {
			trace(t.base+uint32(idx*2), 2)
		}
		return int(t.entries[idx])
	}
	srcHi := look(c.phase0[chunkSrcHi], int(p.SrcIP>>16))
	srcLo := look(c.phase0[chunkSrcLo], int(p.SrcIP&0xFFFF))
	dstHi := look(c.phase0[chunkDstHi], int(p.DstIP>>16))
	dstLo := look(c.phase0[chunkDstLo], int(p.DstIP&0xFFFF))
	sp := look(c.phase0[chunkSrcPort], int(p.SrcPort))
	dp := look(c.phase0[chunkDstPort], int(p.DstPort))
	pr := look(c.phase0[chunkProto], int(p.Proto))

	s1 := look(c.p1src, srcHi*c.nSrcLo+srcLo)
	d1 := look(c.p1dst, dstHi*c.nDstLo+dstLo)
	pp1 := look(c.p1port, sp*c.nDstPort+dp)

	a2 := look(c.p2addr, s1*c.nP1dst+d1)
	pp2 := look(c.p2portproto, pp1*c.nProto+pr)

	f := look(c.p3, a2*c.nP2pp+pp2)
	accesses++
	if trace != nil {
		trace(uint32(0xF0000000)+uint32(f*4), 2)
	}
	return int(c.result[f]), accesses
}

// ---- bitset ----

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << uint(i%64) }

func (b bitset) clone(st *PreprocessStats) bitset {
	out := make(bitset, len(b))
	copy(out, b)
	if st != nil {
		st.BitmapOps += int64(len(b))
	}
	return out
}

func (b bitset) and(o bitset, st *PreprocessStats) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] & o[i]
	}
	if st != nil {
		st.BitmapOps += int64(len(b))
	}
	return out
}

// key returns a map key identifying the bitset contents.
func (b bitset) key() string {
	buf := make([]byte, len(b)*8)
	for i, w := range b {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> uint(8*j))
		}
	}
	return string(buf)
}

// first returns the lowest set bit index, or -1.
func (b bitset) first() int {
	for i, w := range b {
		if w != 0 {
			for j := 0; j < 64; j++ {
				if w&(1<<uint(j)) != 0 {
					return i*64 + j
				}
			}
		}
	}
	return -1
}
