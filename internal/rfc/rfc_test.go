package rfc

import (
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func TestClassifyAgreesWithLinear(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
		rs := classbench.Generate(prof, 250, 81)
		c, _, err := Build(rs)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		for i, p := range classbench.GenerateTrace(rs, 3000, 82) {
			if got, want := c.Classify(p), rs.Match(p); got != want {
				t.Fatalf("%s packet %d: rfc=%d linear=%d", prof.Name, i, got, want)
			}
		}
	}
}

func TestFixedAccessCount(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 150, 83)
	c, _, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range classbench.GenerateTrace(rs, 200, 84) {
		_, acc := c.ClassifyTraced(p, nil)
		if acc != Accesses {
			t.Fatalf("accesses = %d, want the fixed %d", acc, Accesses)
		}
	}
	if Accesses != 14 {
		t.Errorf("pipeline depth changed: %d", Accesses)
	}
}

func TestTraceCallbackFires(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 100, 85)
	c, _, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	_, acc := c.ClassifyTraced(rule.Packet{}, func(a, s uint32) { fired++ })
	if fired != acc {
		t.Errorf("callback fired %d, accesses %d", fired, acc)
	}
}

func TestPreprocessStats(t *testing.T) {
	rs := classbench.Generate(classbench.IPC1(), 200, 86)
	c, st, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if st.TableEntries <= 0 || st.BitmapOps <= 0 || st.EquivClasses <= 0 || st.FinalClasses <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if c.MemoryBytes() <= 0 || st.MemoryBytes != c.MemoryBytes() {
		t.Errorf("memory accounting inconsistent: %d vs %d", c.MemoryBytes(), st.MemoryBytes)
	}
	if c.NumRules() != 200 {
		t.Errorf("NumRules = %d", c.NumRules())
	}
	// Phase-0 tables alone are 6*64k + 256 2-byte entries.
	if c.MemoryBytes() < (6*65536+256)*2 {
		t.Errorf("memory %d below phase-0 floor", c.MemoryBytes())
	}
}

func TestEmptyAndSingleRule(t *testing.T) {
	c, _, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(rule.Packet{SrcIP: 123}); got != -1 {
		t.Errorf("empty set matched %d", got)
	}

	rs := rule.RuleSet{rule.New(0, 0x0A000000, 8, 0xC0000000, 4, rule.Range{Lo: 0, Hi: 65535}, rule.Range{Lo: 80, Hi: 80}, 6, false)}
	c, _, err = Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	hit := rule.Packet{SrcIP: 0x0A0B0C0D, DstIP: 0xC1111111, DstPort: 80, Proto: 6}
	if got := c.Classify(hit); got != 0 {
		t.Errorf("got %d, want 0", got)
	}
	miss := hit
	miss.DstPort = 81
	if got := c.Classify(miss); got != -1 {
		t.Errorf("got %d, want -1", got)
	}
}

func TestFirstMatchPriority(t *testing.T) {
	// Two overlapping rules; RFC must return the lower ID.
	rs := rule.RuleSet{
		rule.New(0, 0x0A000000, 8, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true),
		rule.New(1, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true),
	}
	c, _, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(rule.Packet{SrcIP: 0x0A000001}); got != 0 {
		t.Errorf("overlap priority: got %d, want 0", got)
	}
	if got := c.Classify(rule.Packet{SrcIP: 0x0B000001}); got != 1 {
		t.Errorf("fallback: got %d, want 1", got)
	}
}

func TestLowHalfProjection(t *testing.T) {
	// Prefix shorter than 16 bits -> low half wildcard.
	if got := lowHalf(rule.PrefixRange(0x0A000000, 8, 32)); got != [2]uint32{0, 0xFFFF} {
		t.Errorf("short prefix low half = %v", got)
	}
	// Prefix longer than 16 bits -> interval within one high value.
	if got := lowHalf(rule.PrefixRange(0x0A0B0C00, 24, 32)); got != [2]uint32{0x0C00, 0x0CFF} {
		t.Errorf("long prefix low half = %v", got)
	}
	// Host route.
	if got := lowHalf(rule.PrefixRange(0x0A0B0C0D, 32, 32)); got != [2]uint32{0x0C0D, 0x0C0D} {
		t.Errorf("host low half = %v", got)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(129)
	if b.first() != 0 {
		t.Error("first broken")
	}
	b.clear(0)
	if b.first() != 129 {
		t.Errorf("first after clear = %d", b.first())
	}
	o := newBitset(130)
	o.set(129)
	o.set(64)
	and := b.and(o, nil)
	if and.first() != 129 {
		t.Errorf("and.first = %d", and.first())
	}
	if newBitset(130).first() != -1 {
		t.Error("empty first should be -1")
	}
	if b.key() == o.key() {
		t.Error("distinct bitsets share a key")
	}
}
