// Package wire defines the line-rate binary packet trace format and its
// zero-copy framing: the ingest side of the system, feeding the flat
// classification engine at the rate it can classify.
//
// The text trace format (rule.WriteTrace) costs hundreds of nanoseconds
// and several transient allocations per packet to parse — fine for a
// demo, hopeless for 10G. The wire format instead frames fixed-width
// binary records so a reader can slice packets straight out of its fill
// buffer with no per-packet allocation and no intermediate copies:
//
//	stream  := header frame*
//	header  := magic[4]="PCBF" version:u8=1 recordBytes:u8=20 flags:u16le=0
//	frame   := marker[2]={0xD5,0xAA} count:u16le reserved:u32le=0
//	           record[count]
//	record  := srcIP:u32le dstIP:u32le srcPort:u16le dstPort:u16le
//	           proto:u8 pad[3]=0 flowID:u32le
//
// All integers are little-endian. Records are RecordBytes (20) wide;
// flowID is carried for symmetry with ClassBench traces and ignored by
// classification. A frame holds at most MaxFrameRecords records; a
// stream ends cleanly at a frame boundary. The version byte gates
// incompatible evolution; readers reject versions they do not know.
//
// Reader is the ring-buffered zero-copy decoder: ReadBatch decodes
// records directly into a caller-owned []rule.Packet, refilling a fixed
// internal buffer with compaction (a software ring) so steady-state
// ingest performs zero allocations per packet. Writer is the encoding
// side. The pcap adapter in pcap.go presents captured traffic through
// the same ReadBatch interface. See DESIGN.md §9.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/rule"
)

// Format constants.
const (
	// Version is the stream-format version this package reads and writes.
	Version = 1
	// RecordBytes is the fixed width of one packet record.
	RecordBytes = 20
	// HeaderBytes is the stream header size.
	HeaderBytes = 8
	// FrameHeaderBytes is the per-frame header size.
	FrameHeaderBytes = 8
	// MaxFrameRecords caps the records of one frame (count is a u16).
	MaxFrameRecords = 1<<16 - 1
	// DefaultFrameRecords is the frame size WriteTrace and WriteBatch
	// split at: one frame per classification batch keeps framing
	// overhead at 8 bytes per ~80 KiB.
	DefaultFrameRecords = 4096
)

// Magic is the 4-byte stream signature ("PCBF": packet-classification
// binary frames).
var Magic = [4]byte{'P', 'C', 'B', 'F'}

// Frame marker bytes: chosen to be invalid UTF-8/ASCII so a binary
// stream fed to the text parser fails fast and vice versa.
const (
	frameMarker0 = 0xD5
	frameMarker1 = 0xAA
)

// IsMagic reports whether b begins with the wire stream signature.
// Callers sniffing a stream peek at least 4 bytes.
func IsMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == Magic[0] && b[1] == Magic[1] && b[2] == Magic[2] && b[3] == Magic[3]
}

// EncodeRecord stores p (and flowID) into b, which must be at least
// RecordBytes long.
func EncodeRecord(b []byte, p rule.Packet, flowID uint32) {
	_ = b[RecordBytes-1]
	binary.LittleEndian.PutUint32(b[0:4], p.SrcIP)
	binary.LittleEndian.PutUint32(b[4:8], p.DstIP)
	binary.LittleEndian.PutUint16(b[8:10], p.SrcPort)
	binary.LittleEndian.PutUint16(b[10:12], p.DstPort)
	b[12] = p.Proto
	b[13], b[14], b[15] = 0, 0, 0
	binary.LittleEndian.PutUint32(b[16:20], flowID)
}

// DecodeRecord loads the packet stored in b (at least RecordBytes long).
// Pad bytes and flowID are ignored: every 20-byte slice decodes to some
// packet, so corrupt payload bytes yield wrong answers, never panics —
// framing errors are caught at the frame-header level.
func DecodeRecord(b []byte) rule.Packet {
	_ = b[RecordBytes-1]
	return rule.Packet{
		SrcIP:   binary.LittleEndian.Uint32(b[0:4]),
		DstIP:   binary.LittleEndian.Uint32(b[4:8]),
		SrcPort: binary.LittleEndian.Uint16(b[8:10]),
		DstPort: binary.LittleEndian.Uint16(b[10:12]),
		Proto:   b[12],
	}
}

// BatchReader is the pull interface the ingest pipeline consumes:
// ReadBatch fills pkts with up to len(pkts) packets and returns how many
// it decoded. It returns (n, nil) with n > 0 mid-stream, (n, io.EOF)
// with n >= 0 at a clean end of stream, and (n, err) on framing errors
// (packets decoded before the error are still returned). Implementations
// must not retain pkts and must not allocate per packet in steady state.
type BatchReader interface {
	ReadBatch(pkts []rule.Packet) (int, error)
}

// Reader decodes the wire format from an io.Reader through a fixed
// ring buffer: bytes are read in bulk into buf, records are sliced out
// in place, and the unconsumed tail is compacted to the front before
// each refill. Steady-state operation allocates nothing.
type Reader struct {
	r       io.Reader
	buf     []byte
	lo, hi  int  // unconsumed window within buf
	rem     int  // records remaining in the current frame
	started bool // stream header consumed
	err     error
}

// DefaultReaderBuffer is the ring-buffer size NewReader allocates: four
// whole DefaultFrameRecords frames with headers. Holding several frames
// keeps refills large — big enough that a buffered upstream (the
// pipeline hands the Reader a bufio.Reader after format sniffing) passes
// reads straight through to the source instead of double-copying.
const DefaultReaderBuffer = 4 * (DefaultFrameRecords*RecordBytes + FrameHeaderBytes)

// NewReader returns a Reader decoding the wire stream from r. The
// stream header is validated lazily on the first ReadBatch, so
// construction never blocks.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, DefaultReaderBuffer)}
}

// Reset rewires the Reader to decode a new stream from r, reusing its
// buffer. It allows allocation-free reuse across streams (and powers the
// allocation-regression gate).
func (rd *Reader) Reset(r io.Reader) {
	rd.r = r
	rd.lo, rd.hi, rd.rem = 0, 0, 0
	rd.started = false
	rd.err = nil
}

// avail returns the unconsumed byte count.
func (rd *Reader) avail() int { return rd.hi - rd.lo }

// fill ensures at least need unconsumed bytes are buffered, compacting
// and reading as required. It returns io.ErrUnexpectedEOF if the stream
// ends first (the caller is mid-header or mid-frame).
func (rd *Reader) fill(need int) error {
	if rd.avail() >= need {
		return nil
	}
	if rd.err != nil {
		if rd.err == io.EOF && rd.avail() > 0 {
			return io.ErrUnexpectedEOF
		}
		return rd.err
	}
	if need > len(rd.buf) {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: need %d buffered bytes, buffer holds %d", need, len(rd.buf))
	}
	if rd.lo > 0 && len(rd.buf)-rd.lo < need {
		copy(rd.buf, rd.buf[rd.lo:rd.hi])
		rd.hi -= rd.lo
		rd.lo = 0
	}
	for rd.avail() < need {
		//repro:allow hotpath -- the ingest source is an io.Reader by contract; one dynamic call refills a whole buffer
		n, err := rd.r.Read(rd.buf[rd.hi:])
		rd.hi += n
		if err != nil {
			rd.err = err
			if rd.avail() >= need {
				return nil
			}
			if err == io.EOF {
				if rd.avail() == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if n == 0 {
			rd.err = io.ErrNoProgress
			return rd.err
		}
	}
	return nil
}

// header consumes and validates the stream header.
func (rd *Reader) header() error {
	if err := rd.fill(HeaderBytes); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
			return fmt.Errorf("wire: truncated stream header: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	h := rd.buf[rd.lo : rd.lo+HeaderBytes]
	if !IsMagic(h) {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: bad magic %q (not a binary trace)", h[:4])
	}
	if h[4] != Version {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: unsupported version %d (reader speaks %d)", h[4], Version)
	}
	if h[5] != RecordBytes {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: record size %d, want %d", h[5], RecordBytes)
	}
	if flags := binary.LittleEndian.Uint16(h[6:8]); flags != 0 {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: unknown header flags %#x", flags)
	}
	rd.lo += HeaderBytes
	rd.started = true
	return nil
}

// frameHeader consumes the next frame header, setting rem. A clean EOF
// exactly at the frame boundary returns io.EOF.
func (rd *Reader) frameHeader() error {
	if err := rd.fill(FrameHeaderBytes); err != nil {
		if err == io.ErrUnexpectedEOF {
			//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
			return fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return err
	}
	h := rd.buf[rd.lo : rd.lo+FrameHeaderBytes]
	if h[0] != frameMarker0 || h[1] != frameMarker1 {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: bad frame marker %#02x%02x at stream offset", h[0], h[1])
	}
	count := int(binary.LittleEndian.Uint16(h[2:4]))
	if count == 0 {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: empty frame")
	}
	if reserved := binary.LittleEndian.Uint32(h[4:8]); reserved != 0 {
		//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
		return fmt.Errorf("wire: nonzero reserved frame field %#x", reserved)
	}
	rd.lo += FrameHeaderBytes
	rd.rem = count
	return nil
}

// ReadBatch decodes up to len(pkts) records into pkts, crossing frame
// boundaries as needed. See BatchReader for the return contract.
//
//repro:hotpath
func (rd *Reader) ReadBatch(pkts []rule.Packet) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	if !rd.started {
		if err := rd.header(); err != nil {
			if err == io.EOF {
				// A totally empty stream has no header: malformed.
				//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
				return 0, fmt.Errorf("wire: empty stream: %w", io.ErrUnexpectedEOF)
			}
			return 0, err
		}
	}
	n := 0
	for n < len(pkts) {
		if rd.rem == 0 {
			err := rd.frameHeader()
			if err == io.EOF {
				if n > 0 {
					return n, io.EOF
				}
				return 0, io.EOF
			}
			if err != nil {
				return n, err
			}
		}
		// Decode the contiguous run of buffered whole records.
		want := min(rd.rem, len(pkts)-n)
		have := rd.avail() / RecordBytes
		if have == 0 {
			if err := rd.fill(RecordBytes); err != nil {
				if err == io.ErrUnexpectedEOF || err == io.EOF {
					//repro:allow hotpath -- cold error exit: fires at most once on malformed input, never on the per-record path
					return n, fmt.Errorf("wire: truncated record (frame has %d more): %w", rd.rem, io.ErrUnexpectedEOF)
				}
				return n, err
			}
			have = rd.avail() / RecordBytes
		}
		run := min(want, have)
		// Slicing the exact run up front lets the compiler hoist the
		// bounds checks out of the per-record loop (this loop is the
		// single hottest spot of binary ingest).
		b := rd.buf[rd.lo : rd.lo+run*RecordBytes]
		dst := pkts[n : n+run]
		for i := range dst {
			// Two aligned 64-bit loads cover the 5-tuple (bytes 0..12);
			// pad and flowID are ignored. This form compiles to straight
			// load/shift/store with one bounds check per record.
			lo := binary.LittleEndian.Uint64(b[i*RecordBytes:])
			hi := binary.LittleEndian.Uint64(b[i*RecordBytes+8:])
			dst[i] = rule.Packet{
				SrcIP:   uint32(lo),
				DstIP:   uint32(lo >> 32),
				SrcPort: uint16(hi),
				DstPort: uint16(hi >> 16),
				Proto:   uint8(hi >> 32),
			}
		}
		n += run
		rd.lo += run * RecordBytes
		rd.rem -= run
	}
	return n, nil
}

// Writer encodes packets into the wire format. The stream header is
// written before the first frame; WriteBatch emits one frame per call
// (splitting batches larger than MaxFrameRecords). The frame assembly
// buffer is reused, so steady-state writing allocates nothing.
type Writer struct {
	w           io.Writer
	buf         []byte
	wroteHeader bool
}

// NewWriter returns a Writer emitting the wire stream to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteBatch appends pkts as one frame (or several, for batches larger
// than MaxFrameRecords). Empty batches write nothing but still force the
// stream header out, so an empty stream is recognizably binary.
func (wr *Writer) WriteBatch(pkts []rule.Packet) error {
	if !wr.wroteHeader {
		var h [HeaderBytes]byte
		copy(h[:4], Magic[:])
		h[4] = Version
		h[5] = RecordBytes
		// h[6:8] flags = 0
		if _, err := wr.w.Write(h[:]); err != nil {
			return err
		}
		wr.wroteHeader = true
	}
	for len(pkts) > 0 {
		n := min(len(pkts), MaxFrameRecords)
		need := FrameHeaderBytes + n*RecordBytes
		if cap(wr.buf) < need {
			wr.buf = make([]byte, need)
		}
		b := wr.buf[:need]
		b[0], b[1] = frameMarker0, frameMarker1
		binary.LittleEndian.PutUint16(b[2:4], uint16(n))
		binary.LittleEndian.PutUint32(b[4:8], 0)
		for i, p := range pkts[:n] {
			EncodeRecord(b[FrameHeaderBytes+i*RecordBytes:], p, 0)
		}
		if _, err := wr.w.Write(b); err != nil {
			return err
		}
		pkts = pkts[n:]
	}
	return nil
}

// WriteTrace serializes a whole trace in DefaultFrameRecords-record
// frames — the binary sibling of rule.WriteTrace.
func WriteTrace(w io.Writer, trace []rule.Packet) error {
	wr := NewWriter(w)
	if len(trace) == 0 {
		return wr.WriteBatch(nil)
	}
	for len(trace) > 0 {
		n := min(len(trace), DefaultFrameRecords)
		if err := wr.WriteBatch(trace[:n]); err != nil {
			return err
		}
		trace = trace[n:]
	}
	return nil
}

// ReadAll drains a BatchReader into a slice — the binary sibling of
// rule.ReadTrace, for whole-trace tools (cmd/pcsim) rather than the
// streaming pipeline.
func ReadAll(r BatchReader) ([]rule.Packet, error) {
	var trace []rule.Packet
	batch := make([]rule.Packet, DefaultFrameRecords)
	for {
		n, err := r.ReadBatch(batch)
		trace = append(trace, batch[:n]...)
		if err == io.EOF {
			return trace, nil
		}
		if err != nil {
			return trace, err
		}
	}
}
