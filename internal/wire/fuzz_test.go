package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/rule"
)

// FuzzFrameDecode feeds arbitrary bytes through the frame decoder (whole
// and byte-at-a-time) and pins two properties: no input panics or loops,
// and any stream that decodes cleanly re-encodes to a stream that decodes
// to the identical packets (decode∘encode∘decode = decode).
func FuzzFrameDecode(f *testing.F) {
	seed := func(trace []rule.Packet) {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, trace); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(nil)
	seed([]rule.Packet{{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1234, DstPort: 80, Proto: 6}})
	seed(randTrace(3, 1))
	seed(randTrace(9, 2))
	f.Add([]byte{})
	f.Add([]byte("PCBF"))                             // magic alone
	f.Add([]byte{'P', 'C', 'B', 'F', 1, 20, 0, 0})    // bare header
	f.Add([]byte{'P', 'C', 'B', 'F', 2, 20, 0, 0})    // future version
	f.Add([]byte("1\t2\t3\t4\t5\n"))                  // text trace
	f.Add(bytes.Repeat([]byte{0xD5, 0xAA, 0xFF}, 40)) // marker soup
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadAll(NewReader(bytes.NewReader(data)))
		// Same input a byte at a time must agree bit for bit.
		got1, err1 := ReadAll(NewReader(oneByteReader{bytes.NewReader(data)}))
		if (err == nil) != (err1 == nil) || len(got) != len(got1) {
			t.Fatalf("whole vs one-byte decode disagree: (%d, %v) vs (%d, %v)",
				len(got), err, len(got1), err1)
		}
		for i := range got {
			if got[i] != got1[i] {
				t.Fatalf("packet %d differs between whole and one-byte decode", i)
			}
		}
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, got); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(NewReader(&buf))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("re-encode round trip: %d packets, want %d", len(again), len(got))
		}
		for i := range again {
			if again[i] != got[i] {
				t.Fatalf("re-encode round trip: packet %d differs", i)
			}
		}
	})
}

// FuzzPcapDecode pins that arbitrary bytes never panic the pcap adapter.
func FuzzPcapDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, randTrace(2, 5)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte{0xa1, 0xb2, 0xc3, 0xd4})
	f.Add([]byte{0xd4, 0xc3, 0xb2, 0xa1})
	f.Fuzz(func(t *testing.T, data []byte) {
		pr := NewPcapReader(bytes.NewReader(data))
		batch := make([]rule.Packet, 64)
		for i := 0; i < 1<<16; i++ {
			_, err := pr.ReadBatch(batch)
			if err != nil {
				if err == io.EOF {
					break
				}
				return
			}
		}
	})
}
