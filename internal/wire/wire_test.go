package wire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/rule"
)

func randTrace(n int, seed int64) []rule.Packet {
	rng := rand.New(rand.NewSource(seed))
	trace := make([]rule.Packet, n)
	for i := range trace {
		trace[i] = rule.Packet{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   uint8(rng.Uint32()),
		}
	}
	return trace
}

func encodeTrace(t *testing.T, trace []rule.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultFrameRecords, DefaultFrameRecords + 1, 3*DefaultFrameRecords + 13} {
		trace := randTrace(n, int64(n)+1)
		data := encodeTrace(t, trace)
		wantLen := HeaderBytes
		if n > 0 {
			frames := (n + DefaultFrameRecords - 1) / DefaultFrameRecords
			wantLen += frames*FrameHeaderBytes + n*RecordBytes
		}
		if len(data) != wantLen {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, len(data), wantLen)
		}
		got, err := ReadAll(NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d packets", n, len(got))
		}
		for i := range got {
			if got[i] != trace[i] {
				t.Fatalf("n=%d: packet %d: got %+v want %+v", n, i, got[i], trace[i])
			}
		}
	}
}

// TestWriteBatchFrameSplit pins that oversized batches split into
// MaxFrameRecords frames and still round-trip.
func TestWriteBatchFrameSplit(t *testing.T) {
	trace := randTrace(MaxFrameRecords+100, 3)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	if err := wr.WriteBatch(trace); err != nil {
		t.Fatal(err)
	}
	want := HeaderBytes + 2*FrameHeaderBytes + len(trace)*RecordBytes
	if buf.Len() != want {
		t.Fatalf("encoded %d bytes, want %d (two frames)", buf.Len(), want)
	}
	got, err := ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(trace))
	}
}

// chunkReader yields fixed-size chunks so frame headers and records
// split across Read boundaries — the binary sibling of the text
// framing test in stream_framing_test.go.
type chunkReader struct {
	data []byte
	pos  int
	size int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, io.EOF
	}
	n := min(min(c.size, len(p)), len(c.data)-c.pos)
	copy(p, c.data[c.pos:c.pos+n])
	c.pos += n
	return n, nil
}

// oneByteReader yields one byte per Read.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestReaderShortReads(t *testing.T) {
	trace := randTrace(2*DefaultFrameRecords+37, 7)
	data := encodeTrace(t, trace)
	readers := map[string]func() io.Reader{
		"one-byte": func() io.Reader { return oneByteReader{bytes.NewReader(data)} },
		// 7 and 13 land mid-record and mid-frame-header at varying
		// offsets; RecordBytes-1 guarantees every record crosses a read;
		// a large prime stride splits exactly at a few frame boundaries.
		"chunk-7":     func() io.Reader { return &chunkReader{data: data, size: 7} },
		"chunk-13":    func() io.Reader { return &chunkReader{data: data, size: 13} },
		"chunk-19":    func() io.Reader { return &chunkReader{data: data, size: RecordBytes - 1} },
		"chunk-65521": func() io.Reader { return &chunkReader{data: data, size: 65521} },
	}
	for name, mk := range readers {
		t.Run(name, func(t *testing.T) {
			// Odd batch size so batch boundaries drift across frames.
			rd := NewReader(mk())
			batch := make([]rule.Packet, 1000)
			var got []rule.Packet
			for {
				n, err := rd.ReadBatch(batch)
				got = append(got, batch[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(got) != len(trace) {
				t.Fatalf("decoded %d packets, want %d", len(got), len(trace))
			}
			for i := range got {
				if got[i] != trace[i] {
					t.Fatalf("packet %d differs", i)
				}
			}
		})
	}
}

// TestTruncation pins that a stream cut at every possible byte offset
// fails with an error (or yields a clean prefix at a frame boundary) —
// never a panic, never phantom packets.
func TestTruncation(t *testing.T) {
	trace := randTrace(70, 11)
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	for i := 0; i < len(trace); i += 33 { // several small frames
		if err := wr.WriteBatch(trace[i:min(i+33, len(trace))]); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	// HeaderBytes alone is the valid empty-stream encoding.
	frameEnds := map[int]bool{HeaderBytes: true}
	off := HeaderBytes
	for _, fn := range []int{33, 33, 4} {
		off += FrameHeaderBytes + fn*RecordBytes
		frameEnds[off] = true
	}
	for cut := 0; cut <= len(data); cut++ {
		got, err := ReadAll(NewReader(bytes.NewReader(data[:cut])))
		if frameEnds[cut] {
			if err != nil {
				t.Fatalf("cut %d at frame boundary: unexpected error %v", cut, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("cut %d: truncated stream decoded cleanly (%d packets)", cut, len(got))
		}
	}
}

// TestCorruptHeaders pins rejection of wrong magic, version, record
// size, flags and frame markers.
func TestCorruptHeaders(t *testing.T) {
	data := encodeTrace(t, randTrace(5, 13))
	cases := map[string]func(b []byte){
		"magic":        func(b []byte) { b[0] = 'X' },
		"version":      func(b []byte) { b[4] = 99 },
		"recordsize":   func(b []byte) { b[5] = 16 },
		"flags":        func(b []byte) { b[6] = 1 },
		"frame-marker": func(b []byte) { b[HeaderBytes] = 0x00 },
		"reserved":     func(b []byte) { b[HeaderBytes+4] = 1 },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			b := bytes.Clone(data)
			corrupt(b)
			if _, err := ReadAll(NewReader(bytes.NewReader(b))); err == nil {
				t.Fatal("corrupt stream decoded cleanly")
			}
		})
	}
}

// TestZeroCountFrame pins that a frame claiming zero records is
// rejected rather than looping forever.
func TestZeroCountFrame(t *testing.T) {
	data := encodeTrace(t, randTrace(3, 17))
	data[HeaderBytes+2] = 0 // count lo byte
	data[HeaderBytes+3] = 0 // count hi byte
	if _, err := ReadAll(NewReader(bytes.NewReader(data))); err == nil {
		t.Fatal("zero-count frame decoded cleanly")
	}
}

// TestReadBatchZeroAllocs is the allocation-regression gate for the
// binary hot path: decoding a whole framed stream into a reused batch
// buffer must allocate nothing — 0 allocs/packet steady-state, the
// property that lets the cached classify path run at ingest line rate.
func TestReadBatchZeroAllocs(t *testing.T) {
	trace := randTrace(3*DefaultFrameRecords, 19)
	data := encodeTrace(t, trace)
	src := bytes.NewReader(data)
	rd := NewReader(src)
	batch := make([]rule.Packet, DefaultFrameRecords)
	var decoded int
	allocs := testing.AllocsPerRun(20, func() {
		src.Reset(data)
		rd.Reset(src)
		for {
			n, err := rd.ReadBatch(batch)
			decoded += n
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("binary decode allocated %.2f times per stream pass (want 0)", allocs)
	}
	if decoded == 0 {
		t.Fatal("decoded nothing")
	}
}

// TestWriteBatchZeroAllocs: the encode side reuses its frame buffer.
func TestWriteBatchZeroAllocs(t *testing.T) {
	trace := randTrace(DefaultFrameRecords, 23)
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	wr := NewWriter(&buf)
	if err := wr.WriteBatch(trace); err != nil { // warm the frame buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		buf.Reset()
		if err := wr.WriteBatch(trace); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("binary encode allocated %.2f times per batch (want 0)", allocs)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	trace := randTrace(500, 29)
	// The pcap adapter recovers ports only for first-fragment TCP/UDP;
	// normalize the expectation accordingly.
	want := make([]rule.Packet, len(trace))
	for i, p := range trace {
		if i%3 == 0 {
			p.Proto = protoTCP
		} else if i%3 == 1 {
			p.Proto = protoUDP
		}
		trace[i] = p
		if p.Proto != protoTCP && p.Proto != protoUDP {
			p.SrcPort, p.DstPort = 0, 0
		}
		want[i] = p
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, trace); err != nil {
		t.Fatal(err)
	}
	if !IsPcapMagic(buf.Bytes()) {
		t.Fatal("WritePcap output not recognized by IsPcapMagic")
	}
	for name, mk := range map[string]func() io.Reader{
		"whole":   func() io.Reader { return bytes.NewReader(buf.Bytes()) },
		"chunk-7": func() io.Reader { return &chunkReader{data: buf.Bytes(), size: 7} },
	} {
		t.Run(name, func(t *testing.T) {
			got, err := ReadAll(NewPcapReader(mk()))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d packets, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("packet %d: got %+v want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPcapSkipsNonIPv4 pins that non-IPv4 records are skipped (counted),
// not errors, and that truncated captures error instead of panicking.
func TestPcapSkipsNonIPv4(t *testing.T) {
	trace := randTrace(10, 31)
	for i := range trace {
		trace[i].Proto = protoUDP
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, trace); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip the ethertype of record 3 to ARP.
	rec3 := pcapGlobalHeaderBytes + 3*(pcapRecordHeaderBytes+etherHdr+28) + pcapRecordHeaderBytes + 12
	data[rec3], data[rec3+1] = 0x08, 0x06
	pr := NewPcapReader(bytes.NewReader(data))
	got, err := ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 || pr.Skipped != 1 {
		t.Fatalf("decoded %d packets (skipped %d), want 9 (skipped 1)", len(got), pr.Skipped)
	}
	// Truncations at every offset: error or clean prefix, never a panic.
	for cut := 0; cut <= len(data); cut += 5 {
		ReadAll(NewPcapReader(bytes.NewReader(data[:cut])))
	}
}

func TestDetectMagics(t *testing.T) {
	if !IsMagic(encodeTrace(t, nil)) {
		t.Fatal("binary header not self-recognized")
	}
	if IsMagic([]byte("1\t2\t3")) || IsPcapMagic([]byte("1\t2\t3")) {
		t.Fatal("text trace misdetected as binary")
	}
	if IsMagic(nil) || IsPcapMagic(nil) {
		t.Fatal("empty input misdetected")
	}
}
