package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/rule"
)

// BenchmarkFrameDecode measures the raw binary decode rate: framed bytes
// to rule.Packet batches, no classification. allocs/op must stay 0 —
// this is the zero-copy claim in microbenchmark form.
func BenchmarkFrameDecode(b *testing.B) {
	trace := randTrace(4*DefaultFrameRecords, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	src := bytes.NewReader(data)
	rd := NewReader(src)
	batch := make([]rule.Packet, DefaultFrameRecords)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(data)
		rd.Reset(src)
		for {
			_, err := rd.ReadBatch(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkFrameEncode measures the encode side (WriteBatch into a
// pre-grown buffer).
func BenchmarkFrameEncode(b *testing.B) {
	trace := randTrace(DefaultFrameRecords, 5)
	var buf bytes.Buffer
	buf.Grow(2 * DefaultFrameRecords * RecordBytes)
	wr := NewWriter(&buf)
	b.SetBytes(int64(DefaultFrameRecords * RecordBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wr.WriteBatch(trace); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pps")
}

// BenchmarkPcapDecode measures the pcap adapter's 5-tuple extraction rate.
func BenchmarkPcapDecode(b *testing.B) {
	trace := randTrace(2*DefaultFrameRecords, 7)
	for i := range trace {
		trace[i].Proto = protoUDP
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, trace); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	batch := make([]rule.Packet, DefaultFrameRecords)
	src := bytes.NewReader(data)
	rd := NewPcapReader(src)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(data)
		rd.Reset(src)
		for {
			_, err := rd.ReadBatch(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(trace))*float64(b.N)/b.Elapsed().Seconds(), "pps")
}
