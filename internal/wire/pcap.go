package wire

// pcap adapter: presents a classic libpcap capture file (global header +
// per-packet record headers + link-layer frames) through the same
// BatchReader interface as the native wire format, so captured traffic
// feeds the ingest pipeline unchanged. Only what classification needs is
// decoded — the IPv4 5-tuple — and only from Ethernet (optionally
// 802.1Q-tagged) link layers; anything else is skipped, not an error.
// Timestamps and payload are ignored. Both byte orders and the
// nanosecond magic variants are accepted.

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/rule"
)

// pcap format constants.
const (
	pcapGlobalHeaderBytes = 24
	pcapRecordHeaderBytes = 16
	// pcapMaxPacket bounds a record's captured length; beyond it the file
	// is treated as corrupt rather than growing the buffer without bound.
	pcapMaxPacket = 1 << 18

	pcapMagicLE   = 0xa1b2c3d4 // microsecond timestamps, file-native order
	pcapMagicNsLE = 0xa1b23c4d // nanosecond timestamps

	linktypeEthernet = 1

	etherTypeIPv4 = 0x0800
	etherTypeVLAN = 0x8100
	etherHdr      = 14

	protoTCP = 6
	protoUDP = 17
)

// IsPcapMagic reports whether b begins with a pcap global-header magic
// (either byte order, microsecond or nanosecond variant).
func IsPcapMagic(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	le := binary.LittleEndian.Uint32(b)
	be := binary.BigEndian.Uint32(b)
	return le == pcapMagicLE || le == pcapMagicNsLE || be == pcapMagicLE || be == pcapMagicNsLE
}

// PcapReader adapts a pcap capture into ReadBatch. Like Reader it owns a
// fixed ring buffer and decodes in place: steady-state ingest from a
// capture allocates nothing per packet.
type PcapReader struct {
	r       io.Reader
	order   binary.ByteOrder
	buf     []byte
	lo, hi  int
	started bool
	err     error
	// Skipped counts records dropped because they were not parseable
	// IPv4-over-Ethernet (other link protocols, fragments, truncation).
	Skipped int64
}

// NewPcapReader returns a PcapReader decoding the capture from r. The
// global header is validated lazily on the first ReadBatch.
func NewPcapReader(r io.Reader) *PcapReader {
	return &PcapReader{r: r, buf: make([]byte, 1<<16)}
}

func (pr *PcapReader) avail() int { return pr.hi - pr.lo }

// Reset rewires the PcapReader to decode a new capture from r, reusing
// its buffer — the allocation-free reuse hook, mirroring Reader.Reset.
func (pr *PcapReader) Reset(r io.Reader) {
	pr.r = r
	pr.order = nil
	pr.lo, pr.hi = 0, 0
	pr.started = false
	pr.err = nil
	pr.Skipped = 0
}

// fill mirrors Reader.fill, growing the buffer only for oversized
// captured records (bounded by pcapMaxPacket).
func (pr *PcapReader) fill(need int) error {
	if pr.avail() >= need {
		return nil
	}
	if pr.err != nil {
		if pr.err == io.EOF && pr.avail() > 0 {
			return io.ErrUnexpectedEOF
		}
		return pr.err
	}
	if need > len(pr.buf) {
		grown := make([]byte, need)
		copy(grown, pr.buf[pr.lo:pr.hi])
		pr.buf = grown
		pr.hi -= pr.lo
		pr.lo = 0
	} else if len(pr.buf)-pr.lo < need {
		copy(pr.buf, pr.buf[pr.lo:pr.hi])
		pr.hi -= pr.lo
		pr.lo = 0
	}
	for pr.avail() < need {
		n, err := pr.r.Read(pr.buf[pr.hi:])
		pr.hi += n
		if err != nil {
			pr.err = err
			if pr.avail() >= need {
				return nil
			}
			if err == io.EOF {
				if pr.avail() == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if n == 0 {
			pr.err = io.ErrNoProgress
			return pr.err
		}
	}
	return nil
}

// header consumes and validates the pcap global header, fixing the
// file's byte order and link type.
func (pr *PcapReader) header() error {
	if err := pr.fill(pcapGlobalHeaderBytes); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("wire: truncated pcap global header: %w", io.ErrUnexpectedEOF)
		}
		return err
	}
	h := pr.buf[pr.lo : pr.lo+pcapGlobalHeaderBytes]
	switch m := binary.LittleEndian.Uint32(h[0:4]); m {
	case pcapMagicLE, pcapMagicNsLE:
		pr.order = binary.LittleEndian
	default:
		switch m := binary.BigEndian.Uint32(h[0:4]); m {
		case pcapMagicLE, pcapMagicNsLE:
			pr.order = binary.BigEndian
		default:
			return fmt.Errorf("wire: bad pcap magic %#08x", m)
		}
	}
	if lt := pr.order.Uint32(h[20:24]); lt != linktypeEthernet {
		return fmt.Errorf("wire: pcap link type %d unsupported (want Ethernet)", lt)
	}
	pr.lo += pcapGlobalHeaderBytes
	pr.started = true
	return nil
}

// ReadBatch decodes up to len(pkts) IPv4 5-tuples from the capture.
// Records that are not IPv4 over (optionally VLAN-tagged) Ethernet are
// counted in Skipped and do not occupy a slot. See BatchReader.
func (pr *PcapReader) ReadBatch(pkts []rule.Packet) (int, error) {
	if len(pkts) == 0 {
		return 0, nil
	}
	if !pr.started {
		if err := pr.header(); err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("wire: empty pcap: %w", io.ErrUnexpectedEOF)
			}
			return 0, err
		}
	}
	n := 0
	for n < len(pkts) {
		err := pr.fill(pcapRecordHeaderBytes)
		if err == io.EOF {
			return n, io.EOF
		}
		if err != nil {
			if err == io.ErrUnexpectedEOF {
				return n, fmt.Errorf("wire: truncated pcap record header: %w", err)
			}
			return n, err
		}
		h := pr.buf[pr.lo : pr.lo+pcapRecordHeaderBytes]
		incl := int(pr.order.Uint32(h[8:12]))
		if incl < 0 || incl > pcapMaxPacket {
			return n, fmt.Errorf("wire: pcap record claims %d captured bytes", incl)
		}
		if err := pr.fill(pcapRecordHeaderBytes + incl); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return n, fmt.Errorf("wire: truncated pcap record (%d bytes captured): %w", incl, io.ErrUnexpectedEOF)
			}
			return n, err
		}
		data := pr.buf[pr.lo+pcapRecordHeaderBytes : pr.lo+pcapRecordHeaderBytes+incl]
		pr.lo += pcapRecordHeaderBytes + incl
		if p, ok := parseEthernetIPv4(data); ok {
			pkts[n] = p
			n++
		} else {
			pr.Skipped++
		}
	}
	return n, nil
}

// parseEthernetIPv4 extracts the 5-tuple from an Ethernet frame carrying
// IPv4. Ports are taken from the first four L4 bytes of TCP/UDP segments
// in the first fragment; otherwise they are zero (the classifier treats
// them as any other value).
func parseEthernetIPv4(b []byte) (rule.Packet, bool) {
	if len(b) < etherHdr {
		return rule.Packet{}, false
	}
	et := binary.BigEndian.Uint16(b[12:14])
	off := etherHdr
	if et == etherTypeVLAN {
		if len(b) < etherHdr+4 {
			return rule.Packet{}, false
		}
		et = binary.BigEndian.Uint16(b[16:18])
		off += 4
	}
	if et != etherTypeIPv4 {
		return rule.Packet{}, false
	}
	ip := b[off:]
	if len(ip) < 20 || ip[0]>>4 != 4 {
		return rule.Packet{}, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl {
		return rule.Packet{}, false
	}
	p := rule.Packet{
		SrcIP: binary.BigEndian.Uint32(ip[12:16]),
		DstIP: binary.BigEndian.Uint32(ip[16:20]),
		Proto: ip[9],
	}
	fragOff := binary.BigEndian.Uint16(ip[6:8]) & 0x1fff
	if fragOff == 0 && (p.Proto == protoTCP || p.Proto == protoUDP) && len(ip) >= ihl+4 {
		p.SrcPort = binary.BigEndian.Uint16(ip[ihl : ihl+2])
		p.DstPort = binary.BigEndian.Uint16(ip[ihl+2 : ihl+4])
	}
	return p, true
}

// WritePcap serializes a trace as a minimal pcap capture: Ethernet +
// IPv4 + an 8-byte generic L4 stub carrying the ports. It exists so
// ingest-bench fixtures are reproducible from the CLI alone (pcgen
// -pcap); it is a capture of synthetic headers, not a packet generator.
func WritePcap(w io.Writer, trace []rule.Packet) error {
	var gh [pcapGlobalHeaderBytes]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicLE)
	binary.LittleEndian.PutUint16(gh[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], pcapMaxPacket) // snaplen
	binary.LittleEndian.PutUint32(gh[20:24], linktypeEthernet)
	if _, err := w.Write(gh[:]); err != nil {
		return err
	}
	const frameLen = etherHdr + 20 + 8
	var rec [pcapRecordHeaderBytes + frameLen]byte
	for i, p := range trace {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(i)) // synthetic ts_sec
		binary.LittleEndian.PutUint32(rec[8:12], frameLen)
		binary.LittleEndian.PutUint32(rec[12:16], frameLen)
		f := rec[pcapRecordHeaderBytes:]
		for j := 0; j < 12; j++ {
			f[j] = 0x02 // locally administered placeholder MACs
		}
		binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)
		ip := f[etherHdr:]
		ip[0] = 0x45 // v4, IHL 5
		binary.BigEndian.PutUint16(ip[2:4], 20+8)
		ip[8] = 64 // TTL
		ip[9] = p.Proto
		binary.BigEndian.PutUint32(ip[12:16], p.SrcIP)
		binary.BigEndian.PutUint32(ip[16:20], p.DstIP)
		l4 := ip[20:]
		binary.BigEndian.PutUint16(l4[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], p.DstPort)
		l4[4], l4[5], l4[6], l4[7] = 0, 0, 0, 0
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}
