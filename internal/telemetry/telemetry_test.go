package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// Histogram geometry: every power of two must land exactly at a bucket
// edge — value 2^k is the first value of bucket k+1 (bucket b spans
// [2^(b-1), 2^b)).
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		nanos  int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1025, 11},
		{1 << 46, 47}, {1<<47 - 1, 47},
		// Beyond the bucket range: clamped into the last bucket.
		{1 << 47, HistBuckets - 1}, {1 << 60, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := histBucket(tc.nanos); got != tc.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", tc.nanos, got, tc.bucket)
		}
	}
	// BucketUpperNs is the exclusive edge: an observation of exactly the
	// edge value must land in the next bucket.
	for b := 1; b < HistBuckets-1; b++ {
		edge := int64(BucketUpperNs(b))
		if got := histBucket(edge); got != b+1 {
			t.Errorf("histBucket(edge %d) = %d, want %d", edge, got, b+1)
		}
		if got := histBucket(edge - 1); got != b {
			t.Errorf("histBucket(edge-1 %d) = %d, want %d", edge-1, got, b)
		}
	}
}

func TestHistSnapshotAndQuantile(t *testing.T) {
	var h Hist
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	// 100 observations of 100ns, 10 of 10000ns: p50 must sit in the
	// 100ns bucket [64,128), p99 in the 10000ns bucket [8192,16384).
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	if want := uint64(100*100 + 10*10000); s.SumNs != want {
		t.Fatalf("sum = %d, want %d", s.SumNs, want)
	}
	if m := s.Mean(); m < 900 || m > 1100 {
		t.Errorf("mean = %v, want ~1000", m)
	}
	if p50 := s.Quantile(0.5); p50 < 64 || p50 >= 128 {
		t.Errorf("p50 = %v, want within [64,128)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 8192 || p99 >= 16384 {
		t.Errorf("p99 = %v, want within [8192,16384)", p99)
	}
	// Quantiles are monotone in q and clamped outside [0,1].
	prev := 0.0
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 1, 2} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v (not monotone)", q, v, prev)
		}
		prev = v
	}
}

// Concurrent observers from many goroutines (distinct stacks, so they
// exercise the shard spreading): the merged snapshot must account for
// every observation exactly once. Run under -race in CI.
func TestHistConcurrentObservers(t *testing.T) {
	var h Hist
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(1 << (g % 20)))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := uint64(goroutines * perG); s.Count != want {
		t.Errorf("count = %d, want %d", s.Count, want)
	}
	var bucketSum uint64
	for _, n := range s.Bucket {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.SumNs != 0 {
		t.Errorf("after Reset: count=%d sum=%d, want 0/0", s.Count, s.SumNs)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Errorf("counter = %d, want 42", c.Load())
	}
	if n := c.Next(); n != 43 {
		t.Errorf("Next = %d, want 43", n)
	}
	var g Gauge
	g.Set(-7)
	if g.Load() != -7 {
		t.Errorf("gauge = %d, want -7", g.Load())
	}
}

// Ring wraparound: a ring of size 8 fed 20 events retains the newest 8
// with contiguous sequence numbers and reports the 12 lost.
func TestRingWraparound(t *testing.T) {
	var r Ring
	r.init(8, nil)
	for i := 1; i <= 20; i++ {
		r.Record(EvEpochPublish, uint64(i), int64(i), 0, 0)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(13 + i) // oldest retained is seq 13
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Epoch != wantSeq || e.V1 != int64(wantSeq) {
			t.Errorf("event %d: payload epoch=%d v1=%d, want %d", i, e.Epoch, e.V1, wantSeq)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	var r Ring // zero value: usable, default-sized
	if r.Len() != 0 || r.Dropped() != 0 || r.Snapshot() != nil {
		t.Fatal("fresh ring not empty")
	}
	r.Record(EvBuild, 0, 1, 2, 3)
	r.Record(EvDeltaApply, 1, 4, 5, 6)
	evs := r.Snapshot()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("snapshot = %+v, want seqs 1,2", evs)
	}
	if evs[0].Kind != EvBuild || evs[1].Kind != EvDeltaApply {
		t.Fatalf("kinds = %v,%v", evs[0].Kind, evs[1].Kind)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvBuild, EvDeltaApply, EvPatchBatch, EvEpochPublish,
		EvDegradationTrip, EvRecompileStart, EvRecompileDone,
		EvCacheInvalidate, EvPatchFail, EvDeviceWrite, EvKernelFallback,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d: name %q (unknown or duplicate)", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Error("unregistered kind must stringify as unknown")
	}
}

// The exposition must carry every registered family, well-formed: one
// HELP/TYPE pair per family, cumulative histogram buckets ending in a
// +Inf edge that equals _count.
func TestWritePromFamilies(t *testing.T) {
	r := New()
	r.Packets.Add(12345)
	r.Epoch.Set(7)
	r.GarbagePPM.Set(250000) // 0.25
	r.ClassifyNs.Observe(1000)
	r.ClassifyNs.Observe(100000)
	r.Events.Record(EvEpochPublish, 7, 0, 0, 0)
	r.RegisterCollector(func(emit func(string, float64)) {
		emit("repro_cache_hits_total", 99)
	})
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing TYPE line for %s", name)
		}
	}
	for _, want := range []string{
		"repro_packets_total 12345",
		"repro_epoch 7",
		"repro_garbage_ratio 0.25",
		"repro_events_total 1",
		`repro_classify_batch_seconds_bucket{le="+Inf"} 2`,
		"repro_classify_batch_seconds_count 2",
		"repro_cache_hits_total 99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cumulative bucket sanity: the le edges of a family must carry
	// non-decreasing counts.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "repro_classify_batch_seconds_bucket") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %v", line, prev)
		}
		prev = v
	}
}

// End-to-end HTTP plane on a loopback listener: /metrics serves the
// text format, /debug/events round-trips through JSON, pprof answers,
// and Close shuts the listener down.
func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Packets.Add(5)
	r.Events.Record(EvBuild, 0, 111, 222, 333)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(metrics, "repro_packets_total 5") {
		t.Error("/metrics missing counter value")
	}

	events, ctype := get("/debug/events")
	if ctype != "application/json" {
		t.Errorf("/debug/events content type %q", ctype)
	}
	var dump EventsDump
	if err := json.Unmarshal([]byte(events), &dump); err != nil {
		t.Fatalf("events JSON: %v", err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Kind != "build" ||
		dump.Events[0].V1 != 111 || dump.Events[0].V3 != 333 {
		t.Errorf("events dump = %+v", dump)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
	if body, _ := get("/"); !strings.Contains(body, "/metrics") {
		t.Error("index page missing endpoint listing")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
}

// NowNanos must be monotone and the ring must stamp with it.
func TestRecorderClock(t *testing.T) {
	r := New()
	a := r.NowNanos()
	r.Events.Record(EvBuild, 0, 0, 0, 0)
	b := r.NowNanos()
	if a < 0 || b < a {
		t.Fatalf("clock not monotone: %d then %d", a, b)
	}
	ev := r.Events.Snapshot()[0]
	if ev.Nanos < a || ev.Nanos > b {
		t.Errorf("event stamped %d outside [%d,%d]", ev.Nanos, a, b)
	}
}
