// Package telemetry is the flight recorder for the classification
// plane: a zero-allocation metrics core (atomic counters and gauges plus
// sharded log2-bucket latency histograms) and a fixed-size ring of
// structured lifecycle events, with an optional HTTP exposition plane
// (Prometheus text format on /metrics, the event ring on /debug/events,
// and net/http/pprof).
//
// The package is deliberately dependency-free (stdlib only) so every
// layer of the stack — engine, stream, the repro facade — can emit into
// one Recorder without import cycles. The design constraint it is built
// around: instrumentation must be shaped so the classification hot path
// stays zero-alloc and within ~2% of its uninstrumented throughput.
// Concretely that means
//
//   - counters and gauges are single atomic words (one LOCK ADD per
//     batch, never per packet);
//   - histograms observe into per-core-ish shards (the observing
//     goroutine's stack page picks the shard), so concurrent observers
//     do not serialize on one cache line; shards are merged only at
//     snapshot/scrape time;
//   - the event ring records control-plane lifecycle transitions (epoch
//     publishes, recompiles, degradation trips — tens per second at
//     most), never data-plane packets, so a mutex there costs nothing
//     that matters.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Next increments the counter and returns the new value — the
// building block of cheap 1-in-N sampling decisions.
func (c *Counter) Next() uint64 { return c.v.Add(1) }

// Gauge is an atomically readable/settable int64 level. The zero value
// is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram geometry: bucket b counts observations whose nanosecond
// value v satisfies 2^(b-1) <= v < 2^b (bucket 0 counts v < 1, i.e.
// non-positive or sub-nanosecond observations). 48 buckets reach 2^47 ns
// ≈ 39 hours, far beyond any latency this system produces, so the last
// bucket never saturates in practice but still catches pathologies.
const (
	// HistBuckets is the number of log2 latency buckets.
	HistBuckets = 48
	// histShards spreads concurrent observers over independent
	// accumulator lines; must be a power of two.
	histShards = 8
)

// histShard is one accumulator stripe. The pad keeps adjacent shards'
// hottest words (count/sum plus the low buckets) off one cache line.
type histShard struct {
	count  atomic.Uint64
	sum    atomic.Uint64 // total observed nanoseconds
	bucket [HistBuckets]atomic.Uint64
	_      [64]byte
}

// Hist is a concurrent log2-bucket latency histogram. Observe is
// lock-free and allocation-free; Snapshot merges the shards. The zero
// value is ready to use.
type Hist struct {
	shards [histShards]histShard
}

// histBucket maps a nanosecond value to its log2 bucket.
func histBucket(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	b := bits.Len64(uint64(nanos))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one latency sample of nanos nanoseconds. The shard is
// picked from the observing goroutine's stack page: goroutines live on
// distinct stacks, so concurrent observers land on distinct shards with
// high probability without any runtime hook or per-observation RMW on a
// shared line. A goroutine whose stack moves simply changes shard —
// harmless, the merge is a sum.
//
//repro:unsafe-shape hashes the probe's stack address into a shard index; the pointer is never dereferenced
func (h *Hist) Observe(nanos int64) {
	var probe byte
	s := &h.shards[(uintptr(unsafe.Pointer(&probe))>>10)&(histShards-1)]
	s.count.Add(1)
	s.sum.Add(uint64(nanos))
	s.bucket[histBucket(nanos)].Add(1)
}

// Reset zeroes every shard. Not atomic with respect to concurrent
// observers; intended for pooled single-writer uses (the stream
// pipeline's per-run histogram).
func (h *Hist) Reset() {
	for i := range h.shards {
		s := &h.shards[i]
		s.count.Store(0)
		s.sum.Store(0)
		for b := range s.bucket {
			s.bucket[b].Store(0)
		}
	}
}

// HistSnapshot is a merged point-in-time view of a Hist.
type HistSnapshot struct {
	Count  uint64
	SumNs  uint64
	Bucket [HistBuckets]uint64
}

// Snapshot merges the shards. Under concurrent observers the result is
// approximate (buckets may be one observation ahead of the count) but
// every individual word is consistent.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.SumNs += sh.sum.Load()
		for b := range sh.bucket {
			s.Bucket[b] += sh.bucket[b].Load()
		}
	}
	return s
}

// Mean returns the mean observed value in nanoseconds, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds by
// locating the bucket holding the q-th observation and interpolating
// geometrically within its [2^(b-1), 2^b) span. The estimate is exact to
// within a factor of 2 by construction — the resolution log2 bucketing
// buys its zero-overhead recording with.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for b := 0; b < HistBuckets; b++ {
		n := float64(s.Bucket[b])
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(b)
			// Geometric interpolation: position within the bucket in
			// log space, matching the bucket geometry.
			frac := 0.5
			if n > 0 {
				frac = (rank - seen) / n
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return lo * math.Pow(hi/lo, frac)
		}
		seen += n
	}
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// bucketBounds returns bucket b's value span [lo, hi) in nanoseconds,
// with bucket 0 treated as [1, 1] (sub-nanosecond observations).
func bucketBounds(b int) (lo, hi float64) {
	if b <= 0 {
		return 1, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// BucketUpperNs returns the exclusive upper bound of bucket b in
// nanoseconds — the Prometheus `le` edge of the exposition format.
func BucketUpperNs(b int) uint64 {
	if b < 0 {
		b = 0
	}
	if b >= 63 {
		return math.MaxUint64
	}
	return uint64(1) << b
}

// Recorder aggregates the classification plane's metrics: the well-known
// counters, gauges and histograms every layer emits into, the flight
// recorder ring, and scrape-time collectors for subsystems that already
// keep their own live counters (the flow cache, the tree). One Recorder
// serves one Accelerator (or one CLI process).
type Recorder struct {
	start time.Time

	// Data plane.
	Packets  Counter // packets classified through the engine handle
	Batches  Counter // classification batch dispatches
	Singles  Counter // single-packet ClassifyCached calls
	CacheInv Counter // cache-invalidation waves (epoch bumps with a cache attached)

	// Control plane.
	Epochs      Counter // epoch publishes (patches + swaps)
	Deltas      Counter // tree deltas applied
	PatchFails  Counter // delta patches that fell back to recompile
	Recompiles  Counter // full rebuild/swap cycles completed
	DegradTrips Counter // degradation-threshold trips (recompile triggers)

	// Configuration degradations.
	KernelFallbacks Counter // scan-kernel overrides that fell back to the probed default

	// Stream (ingest pipeline).
	StreamPackets Counter
	StreamBatches Counter
	ReaderStalls  Counter // decode stage found no free slot (writer-bound)
	WriterStalls  Counter // classify stage found the done ring full

	// Levels.
	Epoch          Gauge // newest published epoch
	GarbagePPM     Gauge // engine arena garbage ratio, parts per million
	DegradationPPM Gauge // tree degradation, parts per million
	LastPublishNs  Gauge // NowNanos at the last epoch publish (snapshot age = now - this)
	CacheOccupied  Gauge
	WorkQueue      Gauge // stream work-ring occupancy at last dispatch
	DoneQueue      Gauge // stream done-ring occupancy at last dispatch

	// Latency.
	ClassifyNs    Hist // per-batch classify latency (engine handle paths)
	PatchNs       Hist // delta patch + publish latency
	RecompileNs   Hist // relayout + compile + swap latency
	BuildNs       Hist // full tree build latency
	StreamBatchNs Hist // per-batch classify+encode latency in the stream pipeline

	// Events is the flight recorder.
	Events Ring

	mu         sync.Mutex
	collectors []func(emit func(name string, value float64))
}

// New returns a Recorder with a DefaultRingSize flight recorder, its
// monotonic clock starting now.
func New() *Recorder {
	r := &Recorder{start: time.Now()}
	r.Events.init(DefaultRingSize, r.NowNanos)
	return r
}

// NowNanos returns monotonic nanoseconds since the recorder was created
// — the timestamp base of every event and age gauge. It allocates
// nothing (time.Since reads the monotonic clock).
func (r *Recorder) NowNanos() int64 { return int64(time.Since(r.start)) }

// RegisterCollector adds a scrape-time callback: during exposition it is
// invoked with an emit function and contributes gauge-valued samples for
// state that lives elsewhere (flow-cache counters, tree degradation).
// Collectors run only at scrape time, so they may take locks.
func (r *Recorder) RegisterCollector(f func(emit func(name string, value float64))) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// collect runs the registered collectors.
func (r *Recorder) collect(emit func(name string, value float64)) {
	r.mu.Lock()
	cs := r.collectors
	r.mu.Unlock()
	for _, f := range cs {
		f(emit)
	}
}
