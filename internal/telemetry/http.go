package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the telemetry exposition plane: /metrics (Prometheus text
// format), /debug/events (the flight recorder as JSON), and the standard
// /debug/pprof handlers, bound to one Recorder. It runs on its own
// listener and mux, never the process-global DefaultServeMux, so
// embedding it cannot collide with an application's own handlers.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition server on addr (host:port; ":0" picks a
// free port — read it back with Addr). The server runs until Close.
func Serve(addr string, r *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Handler returns the exposition mux for r — useful for mounting the
// telemetry plane inside an existing server.
func Handler(r *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeEventsJSON(w, r)
	})
	// net/http/pprof registers on DefaultServeMux as an import side
	// effect; wire its handlers explicitly so this mux stays private.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("repro telemetry: /metrics /debug/events /debug/pprof/\n"))
	})
	return mux
}

// EventJSON is the /debug/events wire shape of one flight-recorder
// record: Event with the kind rendered as its schema name.
type EventJSON struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"nanos"`
	Kind  string `json:"kind"`
	Epoch uint64 `json:"epoch"`
	V1    int64  `json:"v1"`
	V2    int64  `json:"v2"`
	V3    int64  `json:"v3"`
}

// EventsDump is the /debug/events response document.
type EventsDump struct {
	// NowNanos is the recorder's monotonic clock at dump time — the
	// base events' Nanos are comparable against.
	NowNanos int64 `json:"now_nanos"`
	// Dropped counts events lost to ring wraparound.
	Dropped uint64 `json:"dropped"`
	// Events are the retained records, oldest first.
	Events []EventJSON `json:"events"`
}

func writeEventsJSON(w http.ResponseWriter, r *Recorder) {
	evs := r.Events.Snapshot()
	dump := EventsDump{
		NowNanos: r.NowNanos(),
		Dropped:  r.Events.Dropped(),
		Events:   make([]EventJSON, len(evs)),
	}
	for i, e := range evs {
		dump.Events[i] = EventJSON{
			Seq: e.Seq, Nanos: e.Nanos, Kind: e.Kind.String(),
			Epoch: e.Epoch, V1: e.V1, V2: e.V2, V3: e.V3,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(dump)
}
