package telemetry

import "sync"

// EventKind identifies a lifecycle transition of the classification
// plane. Every kind's V1/V2/V3 payload semantics are part of the flight
// recorder's schema (documented per constant and in DESIGN.md §12).
type EventKind uint8

// Flight-recorder event kinds.
const (
	// EvBuild: a full tree build completed.
	// V1 = build nanoseconds, V2 = rules, V3 = memory words.
	EvBuild EventKind = iota + 1
	// EvDeltaApply: a control-plane delta was absorbed by the tree.
	// V1 = dirty device words, V2 = rules touched (inserted/deleted),
	// V3 = leaf edits.
	EvDeltaApply
	// EvPatchBatch: a burst of deltas was replayed onto the engine as
	// one copy-on-write patch. V1 = deltas in the batch, V2 = patch
	// nanoseconds, V3 = engine garbage ratio in ppm after the patch.
	EvPatchBatch
	// EvEpochPublish: a new snapshot became current (patch or swap).
	// V1 = 0 for a patch publish, 1 for a swap; V2 = publish
	// nanoseconds; V3 = garbage ppm of the published engine.
	EvEpochPublish
	// EvDegradationTrip: degradation or garbage crossed the recompile
	// threshold and a background rebuild was triggered.
	// V1 = degradation ppm, V2 = garbage ppm, V3 = threshold ppm.
	EvDegradationTrip
	// EvRecompileStart: a background (or inline) recompile began.
	// V1 = degradation ppm at start, V2 = orphaned leaves, V3 = 0.
	EvRecompileStart
	// EvRecompileDone: the recompile's swap landed.
	// V1 = recompile nanoseconds, V2 = memory words after,
	// V3 = degradation ppm remaining (the irreducible floor).
	EvRecompileDone
	// EvCacheInvalidate: an epoch bump started a flow-cache
	// invalidation wave (entries stamped with older epochs stop
	// hitting). V1 = cache occupancy at the bump, V2 = 0, V3 = 0.
	EvCacheInvalidate
	// EvPatchFail: a delta patch failed and updates fell back to a full
	// recompile. V1 = deltas in the failed batch, V2 = 0, V3 = 0.
	EvPatchFail
	// EvDeviceWrite: the simulated device memory absorbed an update.
	// V1 = write cycles spent (words rewritten), V2 = 1 for a full
	// re-encode, 0 for a word-level patch, V3 = 0.
	EvDeviceWrite
	// EvKernelFallback: a scan-kernel override (REPRO_SCAN_KERNEL or
	// config) could not be satisfied and the process degraded to the
	// probed default. V1 = V2 = V3 = 0; the reason is logged once.
	EvKernelFallback
)

// String names the kind for exposition.
func (k EventKind) String() string {
	switch k {
	case EvBuild:
		return "build"
	case EvDeltaApply:
		return "delta_apply"
	case EvPatchBatch:
		return "patch_batch"
	case EvEpochPublish:
		return "epoch_publish"
	case EvDegradationTrip:
		return "degradation_trip"
	case EvRecompileStart:
		return "recompile_start"
	case EvRecompileDone:
		return "recompile_done"
	case EvCacheInvalidate:
		return "cache_invalidate"
	case EvPatchFail:
		return "patch_fail"
	case EvDeviceWrite:
		return "device_write"
	case EvKernelFallback:
		return "kernel_fallback"
	}
	return "unknown"
}

// Event is one flight-recorder record: a lifecycle transition stamped
// with a monotonic timestamp and the epoch it concerns. The three V
// payload words carry per-kind quantities (see the EventKind constants)
// — fixed-width integers, so recording allocates nothing.
type Event struct {
	// Seq is the global record sequence number, starting at 1. Gaps
	// never occur; a snapshot whose first event has Seq > 1 has lost
	// Seq-1 older events to ring wraparound.
	Seq uint64
	// Nanos is the monotonic record time (Recorder.NowNanos base).
	Nanos int64
	// Kind is the lifecycle transition.
	Kind EventKind
	// Epoch is the engine epoch the event concerns (the epoch being
	// published, or the current epoch when the event is not a publish).
	Epoch uint64
	// V1, V2, V3 are the kind-specific payload.
	V1, V2, V3 int64
}

// DefaultRingSize is the flight-recorder capacity New configures:
// control-plane events arrive at update-burst rate, so 1024 records hold
// minutes-to-hours of history in steady state.
const DefaultRingSize = 1024

// Ring is the fixed-size flight recorder. Record is mutex-guarded —
// events are control-plane-rate, so contention is irrelevant — and
// allocation-free; Snapshot copies out the retained events oldest-first.
type Ring struct {
	mu   sync.Mutex
	now  func() int64
	buf  []Event
	seq  uint64 // records ever written; buf[(seq-1) % len] is the newest
	drop uint64 // records lost to wraparound (== max(0, seq-len))
}

// init sizes the ring; called by Recorder.New. now supplies timestamps.
func (r *Ring) init(size int, now func() int64) {
	if size <= 0 {
		size = DefaultRingSize
	}
	r.buf = make([]Event, size)
	r.now = now
}

// Record appends one event, overwriting the oldest when full.
func (r *Ring) Record(kind EventKind, epoch uint64, v1, v2, v3 int64) {
	r.mu.Lock()
	if r.buf == nil { // zero-value Ring: usable, default-sized
		r.buf = make([]Event, DefaultRingSize)
	}
	r.seq++
	var ns int64
	if r.now != nil {
		ns = r.now()
	}
	r.buf[(r.seq-1)%uint64(len(r.buf))] = Event{
		Seq: r.seq, Nanos: ns, Kind: kind, Epoch: epoch, V1: v1, V2: v2, V3: v3,
	}
	r.mu.Unlock()
}

// Len reports how many events the ring currently retains.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Dropped reports how many events have been lost to wraparound.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if uint64(len(r.buf)) >= r.seq {
		return 0
	}
	return r.seq - uint64(len(r.buf))
}

// Snapshot returns the retained events oldest-first. The returned slice
// is a private copy.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 || len(r.buf) == 0 {
		return nil
	}
	n := uint64(len(r.buf))
	count := r.seq
	if count > n {
		count = n
	}
	out := make([]Event, count)
	// Oldest retained record is seq r.seq-count+1 at buf[(r.seq-count) % n].
	start := (r.seq - count) % n
	for i := uint64(0); i < count; i++ {
		out[i] = r.buf[(start+i)%n]
	}
	return out
}
