package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Metric-name registry. Every family the Recorder exposes on /metrics is
// listed here with its type and help text, so the exposition format and
// the documentation (DESIGN.md §12) cannot drift from the code. Names
// follow Prometheus conventions: repro_ prefix, _total suffix on
// counters, base units (seconds, ratios in [0,1]).
type metricDef struct {
	name, typ, help string
}

var counterDefs = []metricDef{
	{"repro_packets_total", "counter", "Packets classified through the engine handle (batch paths)."},
	{"repro_classify_batches_total", "counter", "Classification batch dispatches through the engine handle."},
	{"repro_classify_singles_total", "counter", "Single-packet cached classify calls."},
	{"repro_epoch_publishes_total", "counter", "Snapshot epoch publishes (delta patches plus recompile swaps)."},
	{"repro_deltas_applied_total", "counter", "Control-plane tree deltas replayed onto the engine."},
	{"repro_patch_failures_total", "counter", "Delta patches that failed and fell back to a full recompile."},
	{"repro_recompiles_total", "counter", "Full rebuild/swap cycles completed."},
	{"repro_degradation_trips_total", "counter", "Degradation-threshold trips that triggered a recompile."},
	{"repro_cache_invalidations_total", "counter", "Flow-cache invalidation waves (epoch bumps with a cache attached)."},
	{"repro_stream_packets_total", "counter", "Packets delivered by the ingest stream pipeline."},
	{"repro_stream_batches_total", "counter", "Ingest pipeline batch dispatches."},
	{"repro_stream_reader_stalls_total", "counter", "Decode-stage stalls waiting for a free pipeline slot."},
	{"repro_stream_writer_stalls_total", "counter", "Classify-stage stalls waiting for the writer to drain."},
	{"repro_scan_kernel_fallbacks_total", "counter", "Scan-kernel override requests that degraded to the probed default."},
	//repro:allow metricdefs -- exposed from Ring.seq, the flight recorder's own cursor, not a Recorder Counter field
	{"repro_events_total", "counter", "Flight-recorder events ever recorded."},
}

var gaugeDefs = []metricDef{
	{"repro_epoch", "gauge", "Newest published engine epoch."},
	{"repro_garbage_ratio", "gauge", "Fraction of the engine arenas that is patch garbage."},
	{"repro_degradation", "gauge", "Tree degradation (overgrown or orphaned leaf-table fraction)."},
	{"repro_snapshot_age_seconds", "gauge", "Seconds since the newest epoch was published."},
	{"repro_cache_occupied", "gauge", "Live flow-cache entries at the last epoch publish."},
	{"repro_stream_work_queue", "gauge", "Stream work-ring occupancy at the last dispatch."},
	{"repro_stream_done_queue", "gauge", "Stream done-ring occupancy at the last dispatch."},
	//repro:allow metricdefs -- computed from ring state (seq minus capacity), not a Recorder Gauge field
	{"repro_events_dropped_total", "gauge", "Flight-recorder events lost to ring wraparound."},
}

var histDefs = []metricDef{
	{"repro_classify_batch_seconds", "histogram", "Per-batch classify latency on the engine-handle paths."},
	{"repro_patch_seconds", "histogram", "Delta patch + epoch publish latency."},
	{"repro_recompile_seconds", "histogram", "Relayout + compile + swap latency."},
	{"repro_build_seconds", "histogram", "Full tree build latency."},
	{"repro_stream_batch_seconds", "histogram", "Per-batch classify+encode latency in the ingest pipeline."},
}

// MetricNames returns every registered family name, sorted — the
// contract the endpoint smoke tests assert against.
func MetricNames() []string {
	var names []string
	for _, d := range counterDefs {
		names = append(names, d.name)
	}
	for _, d := range gaugeDefs {
		names = append(names, d.name)
	}
	for _, d := range histDefs {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return names
}

// WriteProm renders the Recorder in the Prometheus text exposition
// format (version 0.0.4): every registered family, then the samples the
// scrape-time collectors contribute (flow cache, tree state). Histograms
// are exposed with cumulative log2 `le` edges in seconds.
func (r *Recorder) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	counters := []*Counter{
		&r.Packets, &r.Batches, &r.Singles,
		&r.Epochs, &r.Deltas, &r.PatchFails, &r.Recompiles, &r.DegradTrips,
		&r.CacheInv,
		&r.StreamPackets, &r.StreamBatches, &r.ReaderStalls, &r.WriterStalls,
		&r.KernelFallbacks,
	}
	for i, d := range counterDefs[:len(counters)] {
		writeHeader(bw, d)
		fmt.Fprintf(bw, "%s %d\n", d.name, counters[i].Load())
	}
	// repro_events_total rides the ring's sequence counter.
	d := counterDefs[len(counters)]
	writeHeader(bw, d)
	r.Events.mu.Lock()
	seq, dropped := r.Events.seq, uint64(0)
	if n := uint64(len(r.Events.buf)); n < seq {
		dropped = seq - n
	}
	r.Events.mu.Unlock()
	fmt.Fprintf(bw, "%s %d\n", d.name, seq)

	now := r.NowNanos()
	age := float64(now-r.LastPublishNs.Load()) / 1e9
	gaugeVals := []float64{
		float64(r.Epoch.Load()),
		float64(r.GarbagePPM.Load()) / 1e6,
		float64(r.DegradationPPM.Load()) / 1e6,
		age,
		float64(r.CacheOccupied.Load()),
		float64(r.WorkQueue.Load()),
		float64(r.DoneQueue.Load()),
		float64(dropped),
	}
	for i, d := range gaugeDefs {
		writeHeader(bw, d)
		fmt.Fprintf(bw, "%s %g\n", d.name, gaugeVals[i])
	}

	hists := []*Hist{&r.ClassifyNs, &r.PatchNs, &r.RecompileNs, &r.BuildNs, &r.StreamBatchNs}
	for i, d := range histDefs {
		writeHeader(bw, d)
		writeHist(bw, d.name, hists[i].Snapshot())
	}

	// Collector samples (flow cache, tree degradation, ...): exposed as
	// untyped samples under the collector-chosen names.
	r.collect(func(name string, value float64) {
		fmt.Fprintf(bw, "%s %g\n", name, value)
	})
	return bw.Flush()
}

func writeHeader(w io.Writer, d metricDef) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", d.name, d.help, d.name, d.typ)
}

// writeHist renders one histogram family with cumulative buckets. Empty
// log2 buckets are skipped (the cumulative count is still correct at
// every emitted edge); the +Inf bucket is always present.
func writeHist(w io.Writer, name string, s HistSnapshot) {
	var cum uint64
	for b := 0; b < HistBuckets; b++ {
		if s.Bucket[b] == 0 {
			continue
		}
		cum += s.Bucket[b]
		le := float64(BucketUpperNs(b)) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
