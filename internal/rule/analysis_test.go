package rule

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func wildcardRule(id int) Rule {
	return New(id, 0, 0, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true)
}

func TestContains(t *testing.T) {
	broad := New(0, 0x0A000000, 8, 0, 0, Range{Lo: 0, Hi: 65535}, FullRange(DimDstPort), 0, true)
	narrow := New(1, 0x0A0B0000, 16, 0, 0, Range{Lo: 80, Hi: 80}, FullRange(DimDstPort), 0, true)
	if !broad.Contains(&narrow) {
		t.Error("broad should contain narrow")
	}
	if narrow.Contains(&broad) {
		t.Error("narrow should not contain broad")
	}
	if !broad.Contains(&broad) {
		t.Error("rule should contain itself")
	}
}

func TestContainsImpliesMatchSubset(t *testing.T) {
	// Property: if r contains s, any packet matching s matches r.
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomRule(rr, 0)
		b := randomRule(rr, 1)
		if !a.Contains(&b) {
			return true // vacuous
		}
		for trial := 0; trial < 20; trial++ {
			p := Packet{
				SrcIP:   b.F[DimSrcIP].Lo + uint32(rng.Int63n(int64(b.F[DimSrcIP].Size()))),
				DstIP:   b.F[DimDstIP].Lo + uint32(rng.Int63n(int64(b.F[DimDstIP].Size()))),
				SrcPort: uint16(b.F[DimSrcPort].Lo),
				DstPort: uint16(b.F[DimDstPort].Hi),
				Proto:   uint8(b.F[DimProto].Lo),
			}
			if b.Matches(p) && !a.Matches(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShadowedDetection(t *testing.T) {
	rs := RuleSet{
		wildcardRule(0), // shadows everything after it
		New(1, 0x0A000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 6, false),
		New(2, 0x0B000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 17, false),
	}
	got := rs.Shadowed()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Shadowed = %v, want [1 2]", got)
	}

	clean := rs.RemoveShadowed()
	if len(clean) != 1 || clean[0].ID != 0 {
		t.Errorf("RemoveShadowed kept %d rules", len(clean))
	}
}

func TestShadowedNoneWhenDisjoint(t *testing.T) {
	rs := RuleSet{
		New(0, 0x0A000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
		New(1, 0x0B000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
	}
	if got := rs.Shadowed(); len(got) != 0 {
		t.Errorf("disjoint rules reported shadowed: %v", got)
	}
}

func TestRemoveShadowedPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rs := make(RuleSet, 0, 60)
	for i := 0; i < 60; i++ {
		rs = append(rs, randomRule(rng, i))
	}
	clean := rs.RemoveShadowed()
	for trial := 0; trial < 5000; trial++ {
		p := Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
		if rs.Match(p) != clean.Match(p) {
			t.Fatalf("semantics changed by RemoveShadowed for %+v", p)
		}
	}
}

func TestMeasureOverlap(t *testing.T) {
	rs := RuleSet{
		wildcardRule(0),
		New(1, 0x0A000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
		New(2, 0x0B000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
	}
	st := rs.MeasureOverlap()
	// Wildcard overlaps both others; the two /8s are disjoint.
	if st.Pairs != 2 {
		t.Errorf("Pairs = %d, want 2", st.Pairs)
	}
	if st.MaxDegree != 2 {
		t.Errorf("MaxDegree = %d, want 2", st.MaxDegree)
	}
	if st.Shadowed != 2 {
		t.Errorf("Shadowed = %d, want 2", st.Shadowed)
	}
	if empty := (RuleSet{}).MeasureOverlap(); empty.Pairs != 0 {
		t.Error("empty set overlap")
	}
}

func TestMeasureFields(t *testing.T) {
	rs := RuleSet{
		New(0, 0x0A000000, 8, 0, 0, Range{Lo: 80, Hi: 80}, FullRange(DimDstPort), 6, false),
		New(1, 0x0A000000, 8, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
	}
	fs := rs.MeasureFields()
	if fs[DimSrcIP].Distinct != 1 {
		t.Errorf("srcIP distinct = %d", fs[DimSrcIP].Distinct)
	}
	if fs[DimDstIP].WildcardFrac != 1.0 {
		t.Errorf("dstIP wildcard frac = %f", fs[DimDstIP].WildcardFrac)
	}
	if fs[DimSrcPort].ExactFrac != 0.5 {
		t.Errorf("srcPort exact frac = %f", fs[DimSrcPort].ExactFrac)
	}
	if fs[DimSrcIP].PrefixFrac != 1.0 {
		t.Errorf("srcIP prefix frac = %f", fs[DimSrcIP].PrefixFrac)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	trace := make([]Packet, 200)
	for i := range trace {
		trace[i] = Packet{
			SrcIP: rng.Uint32(), DstIP: rng.Uint32(),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: uint8(rng.Intn(256)),
		}
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("length %d, want %d", len(got), len(trace))
	}
	for i := range trace {
		if got[i] != trace[i] {
			t.Fatalf("packet %d: %+v != %+v", i, got[i], trace[i])
		}
	}
}

func TestReadTraceTolerant(t *testing.T) {
	in := "# comment\n\n1 2 3 4 5 99999\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Proto != 5 {
		t.Errorf("got %+v", got)
	}
}

func TestReadTraceErrors(t *testing.T) {
	for _, in := range []string{
		"1 2 3 4\n",       // too few
		"1 2 3 4 999\n",   // proto too big
		"1 2 70000 4 5\n", // port too big
		"1 2 x 4 5\n",     // not a number
	} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("ReadTrace(%q) should fail", in)
		}
	}
}
