package rule

import (
	"strings"
	"testing"
)

// Fuzz targets for the external input surfaces: ClassBench rule lines and
// trace lines. `go test` runs the seed corpus; `go test -fuzz=Fuzz...`
// explores further.

func FuzzParseRule(f *testing.F) {
	seeds := []string{
		"@192.128.0.0/9\t10.0.0.0/8\t0 : 65535\t1024 : 1024\t0x06/0xFF",
		"@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00",
		"@255.255.255.255/32\t1.2.3.4/24\t80 : 80\t0 : 1023\t0x11/0xFF",
		"@1.2.3.4/33 5.6.7.8/8 0 : 1 2 : 3 0x06/0xFF",
		"@garbage",
		"",
		"@1.2.3.4/8 5.6.7.8/8 1 : 0 2 : 3 0x06/0xFF",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRule(line)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		// Accepted rules must be structurally valid and re-serializable.
		rs := RuleSet{r}
		if vErr := rs.Validate(); vErr != nil {
			t.Fatalf("ParseRule accepted invalid rule %q: %v", line, vErr)
		}
		out, fErr := FormatRule(&r)
		if fErr != nil {
			t.Fatalf("accepted rule cannot be formatted: %v", fErr)
		}
		back, pErr := ParseRule(out)
		if pErr != nil {
			t.Fatalf("round trip failed: %v (line %q)", pErr, out)
		}
		if back.F != r.F {
			t.Fatalf("round trip changed rule: %+v vs %+v", back.F, r.F)
		}
	})
}

func FuzzReadTraceLine(f *testing.F) {
	seeds := []string{
		"1\t2\t3\t4\t5",
		"4294967295 4294967295 65535 65535 255",
		"1 2 3 4 5 99",
		"x y z",
		"",
		"-1 2 3 4 5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		trace, err := ReadTrace(strings.NewReader(line))
		if err != nil {
			return
		}
		for _, p := range trace {
			// Values must fit their fields by construction.
			_ = p.Top8(DimProto)
		}
	})
}
