package rule

import (
	"bufio"
	"fmt"
	"io"
)

// Packet trace serialization: one packet per line as five tab-separated
// decimal values "srcIP dstIP srcPort dstPort proto" (the format the
// ClassBench trace generator emits, minus its trailing flow ID, which is
// accepted and ignored on read).

// WriteTrace serializes a packet trace to w.
func WriteTrace(w io.Writer, trace []Packet) error {
	bw := bufio.NewWriter(w)
	for _, p := range trace {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\n",
			p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a packet trace from r. Blank lines and '#' comments
// are skipped; a sixth column (ClassBench flow ID) is tolerated.
func ReadTrace(r io.Reader) ([]Packet, error) {
	var trace []Packet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		p, ok, err := ParseTraceLineBytes(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if ok {
			trace = append(trace, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return trace, nil
}

// ParseTraceLine parses one line of the trace format. ok is false for
// blank lines and '#' comments (and the zero Packet is returned); parse
// failures return an error without line context, which streaming callers
// wrap with their own position.
func ParseTraceLine(line string) (p Packet, ok bool, err error) {
	return ParseTraceLineBytes([]byte(line))
}

// ParseTraceLineBytes is ParseTraceLine over a byte slice. It performs
// no allocations on any path (the fields are parsed in place, not
// split out), so streaming readers can feed it a scanner's reused token
// buffer and stay allocation-free per packet. The slice is not retained.
func ParseTraceLineBytes(line []byte) (p Packet, ok bool, err error) {
	i, n := 0, len(line)
	skipSpace := func() {
		for i < n && isSpace(line[i]) {
			i++
		}
	}
	skipSpace()
	if i == n || line[i] == '#' {
		return Packet{}, false, nil
	}
	var vals [5]uint64
	for f := 0; f < 5; f++ {
		skipSpace()
		start := i
		var v uint64
		for i < n && line[i] >= '0' && line[i] <= '9' {
			v = v*10 + uint64(line[i]-'0')
			if v > 1<<32-1 {
				return Packet{}, false, fmt.Errorf("field %d: value out of range", f+1)
			}
			i++
		}
		if i == start {
			if i < n {
				return Packet{}, false, fmt.Errorf("field %d: invalid syntax", f+1)
			}
			return Packet{}, false, fmt.Errorf("want 5 fields, got %d", f)
		}
		if i < n && !isSpace(line[i]) {
			return Packet{}, false, fmt.Errorf("field %d: invalid syntax", f+1)
		}
		vals[f] = v
	}
	// A sixth column (ClassBench flow ID) is tolerated; anything
	// non-numeric there is still an error.
	skipSpace()
	for i < n && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	skipSpace()
	if i < n {
		return Packet{}, false, fmt.Errorf("trailing garbage after packet fields")
	}
	if vals[2] > 0xFFFF || vals[3] > 0xFFFF {
		return Packet{}, false, fmt.Errorf("port out of range")
	}
	if vals[4] > 0xFF {
		return Packet{}, false, fmt.Errorf("protocol out of range")
	}
	return Packet{
		SrcIP:   uint32(vals[0]),
		DstIP:   uint32(vals[1]),
		SrcPort: uint16(vals[2]),
		DstPort: uint16(vals[3]),
		Proto:   uint8(vals[4]),
	}, true, nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}
