package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Packet trace serialization: one packet per line as five tab-separated
// decimal values "srcIP dstIP srcPort dstPort proto" (the format the
// ClassBench trace generator emits, minus its trailing flow ID, which is
// accepted and ignored on read).

// WriteTrace serializes a packet trace to w.
func WriteTrace(w io.Writer, trace []Packet) error {
	bw := bufio.NewWriter(w)
	for _, p := range trace {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\n",
			p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a packet trace from r. Blank lines and '#' comments
// are skipped; a sixth column (ClassBench flow ID) is tolerated.
func ReadTrace(r io.Reader) ([]Packet, error) {
	var trace []Packet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		p, ok, err := ParseTraceLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if ok {
			trace = append(trace, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return trace, nil
}

// ParseTraceLine parses one line of the trace format. ok is false for
// blank lines and '#' comments (and the zero Packet is returned); parse
// failures return an error without line context, which streaming callers
// wrap with their own position.
func ParseTraceLine(line string) (p Packet, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Packet{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return Packet{}, false, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	var vals [5]uint64
	for i := 0; i < 5; i++ {
		v, err := strconv.ParseUint(fields[i], 10, 32)
		if err != nil {
			return Packet{}, false, fmt.Errorf("field %d: %v", i+1, err)
		}
		vals[i] = v
	}
	if vals[2] > 0xFFFF || vals[3] > 0xFFFF {
		return Packet{}, false, fmt.Errorf("port out of range")
	}
	if vals[4] > 0xFF {
		return Packet{}, false, fmt.Errorf("protocol out of range")
	}
	return Packet{
		SrcIP:   uint32(vals[0]),
		DstIP:   uint32(vals[1]),
		SrcPort: uint16(vals[2]),
		DstPort: uint16(vals[3]),
		Proto:   uint8(vals[4]),
	}, true, nil
}
