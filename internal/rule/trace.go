package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Packet trace serialization: one packet per line as five tab-separated
// decimal values "srcIP dstIP srcPort dstPort proto" (the format the
// ClassBench trace generator emits, minus its trailing flow ID, which is
// accepted and ignored on read).

// WriteTrace serializes a packet trace to w.
func WriteTrace(w io.Writer, trace []Packet) error {
	bw := bufio.NewWriter(w)
	for _, p := range trace {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\n",
			p.SrcIP, p.DstIP, p.SrcPort, p.DstPort, p.Proto); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a packet trace from r. Blank lines and '#' comments
// are skipped; a sixth column (ClassBench flow ID) is tolerated.
func ReadTrace(r io.Reader) ([]Packet, error) {
	var trace []Packet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		vals := make([]uint64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(fields[i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		if vals[2] > 0xFFFF || vals[3] > 0xFFFF {
			return nil, fmt.Errorf("trace line %d: port out of range", lineNo)
		}
		if vals[4] > 0xFF {
			return nil, fmt.Errorf("trace line %d: protocol out of range", lineNo)
		}
		trace = append(trace, Packet{
			SrcIP:   uint32(vals[0]),
			DstIP:   uint32(vals[1]),
			SrcPort: uint16(vals[2]),
			DstPort: uint16(vals[3]),
			Proto:   uint8(vals[4]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return trace, nil
}
