package rule

// Ruleset analysis utilities: structural statistics and redundancy
// detection. Control planes use these before loading a ruleset into the
// accelerator — a shadowed rule wastes a 160-bit leaf slot in every leaf
// it replicates into, and overlap statistics predict decision-tree
// replication cost.

// Contains reports whether r covers s entirely (every packet matching s
// also matches r).
func (r *Rule) Contains(s *Rule) bool {
	for d := 0; d < NumDims; d++ {
		if r.F[d].Lo > s.F[d].Lo || r.F[d].Hi < s.F[d].Hi {
			return false
		}
	}
	return true
}

// OverlapsRule reports whether the two rules' hypercubes intersect (some
// packet could match both).
func (r *Rule) OverlapsRule(s *Rule) bool {
	for d := 0; d < NumDims; d++ {
		if !r.F[d].Overlaps(s.F[d]) {
			return false
		}
	}
	return true
}

// Shadowed returns the IDs of rules that can never match because an
// earlier (higher-priority) rule fully covers them. Pairwise containment
// is a sound under-approximation: a rule covered by the union of several
// earlier rules but no single one is not reported.
func (rs RuleSet) Shadowed() []int {
	var out []int
	for i := 1; i < len(rs); i++ {
		for j := 0; j < i; j++ {
			if rs[j].Contains(&rs[i]) {
				out = append(out, rs[i].ID)
				break
			}
		}
	}
	return out
}

// RemoveShadowed returns a copy of rs without pairwise-shadowed rules.
// Rule IDs are preserved (holes are allowed; classification semantics are
// unchanged because removed rules could never win).
func (rs RuleSet) RemoveShadowed() RuleSet {
	dead := map[int]bool{}
	for _, id := range rs.Shadowed() {
		dead[id] = true
	}
	out := make(RuleSet, 0, len(rs))
	for i := range rs {
		if !dead[rs[i].ID] {
			out = append(out, rs[i])
		}
	}
	return out
}

// OverlapStats summarizes pairwise rule overlap, the quantity that drives
// decision-tree rule replication.
type OverlapStats struct {
	// Pairs is the number of overlapping rule pairs.
	Pairs int
	// MaxDegree is the largest number of rules any single rule overlaps.
	MaxDegree int
	// AvgDegree is the mean overlap degree.
	AvgDegree float64
	// Shadowed is the number of pairwise-shadowed (dead) rules.
	Shadowed int
}

// MeasureOverlap computes OverlapStats with the direct O(n^2) pairwise
// scan; intended for offline analysis, not the datapath.
func (rs RuleSet) MeasureOverlap() OverlapStats {
	var st OverlapStats
	if len(rs) == 0 {
		return st
	}
	degree := make([]int, len(rs))
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].OverlapsRule(&rs[j]) {
				st.Pairs++
				degree[i]++
				degree[j]++
			}
		}
	}
	total := 0
	for _, d := range degree {
		total += d
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	st.AvgDegree = float64(total) / float64(len(rs))
	st.Shadowed = len(rs.Shadowed())
	return st
}

// FieldStats summarizes one dimension of a ruleset.
type FieldStats struct {
	Dim          int
	Distinct     int     // distinct range specifications
	WildcardFrac float64 // fraction of rules wildcarded in this dimension
	ExactFrac    float64 // fraction of rules with a single-value range
	PrefixFrac   float64 // fraction expressible as prefixes
}

// MeasureFields computes per-dimension statistics (what HyperCuts'
// dimension-selection heuristic looks at).
func (rs RuleSet) MeasureFields() [NumDims]FieldStats {
	var out [NumDims]FieldStats
	for d := 0; d < NumDims; d++ {
		set := make(map[Range]struct{}, len(rs))
		st := FieldStats{Dim: d}
		for i := range rs {
			f := rs[i].F[d]
			set[f] = struct{}{}
			if f.IsFull(d) {
				st.WildcardFrac++
			}
			if f.Lo == f.Hi {
				st.ExactFrac++
			}
			if f.IsPrefix(DimBits[d]) {
				st.PrefixFrac++
			}
		}
		st.Distinct = len(set)
		if len(rs) > 0 {
			st.WildcardFrac /= float64(len(rs))
			st.ExactFrac /= float64(len(rs))
			st.PrefixFrac /= float64(len(rs))
		}
		out[d] = st
	}
	return out
}
