// Package rule defines the 5-tuple packet classification primitives used
// throughout the repository: dimensions, ranges, rules, packet headers and
// first-match semantics.
//
// The paper classifies on the classic 5 dimensions of an IPv4 header:
// source address, destination address, source port, destination port and
// protocol.  Decision-tree algorithms (HiCuts, HyperCuts and the modified
// hardware-oriented variants) treat every dimension uniformly as an integer
// range, so the canonical representation of a rule here is five closed
// ranges.  Prefix- and wildcard-structured fields (the only ones the
// 160-bit hardware leaf encoding can store) are recoverable from the range
// form; see IsPrefix and PrefixLen.
package rule

import "fmt"

// Dimension indices. The order matches the field order used by the paper's
// hardware accelerator: the 8 most significant bits of each of these five
// fields feed the mask/shift child-index computation.
const (
	DimSrcIP   = 0
	DimDstIP   = 1
	DimSrcPort = 2
	DimDstPort = 3
	DimProto   = 4

	// NumDims is the number of classification dimensions (5-tuple).
	NumDims = 5
)

// DimBits holds the width in bits of each dimension.
var DimBits = [NumDims]uint{32, 32, 16, 16, 8}

// DimNames holds short human-readable dimension names, indexed by dimension.
var DimNames = [NumDims]string{"srcIP", "dstIP", "srcPort", "dstPort", "proto"}

// MaxValue returns the largest value representable in dimension d.
func MaxValue(d int) uint32 {
	w := DimBits[d]
	if w == 32 {
		return ^uint32(0)
	}
	return (uint32(1) << w) - 1
}

// Range is a closed integer interval [Lo, Hi] within one dimension.
type Range struct {
	Lo, Hi uint32
}

// Contains reports whether v lies inside r.
func (r Range) Contains(v uint32) bool { return r.Lo <= v && v <= r.Hi }

// Overlaps reports whether r and s share at least one value.
func (r Range) Overlaps(s Range) bool { return r.Lo <= s.Hi && s.Lo <= r.Hi }

// Size returns the number of values covered by r. The result is exact even
// for the full 32-bit range (which does not fit in uint32).
func (r Range) Size() uint64 { return uint64(r.Hi) - uint64(r.Lo) + 1 }

// FullRange returns the range covering the whole of dimension d.
func FullRange(d int) Range { return Range{0, MaxValue(d)} }

// IsFull reports whether r covers all of dimension d (a wildcard).
func (r Range) IsFull(d int) bool { return r.Lo == 0 && r.Hi == MaxValue(d) }

// IsPrefix reports whether r is expressible as a bit prefix of a w-bit
// field, i.e. whether it has power-of-two size and aligned start.
func (r Range) IsPrefix(w uint) bool {
	size := r.Size()
	if size&(size-1) != 0 {
		return false
	}
	return uint64(r.Lo)%size == 0
}

// PrefixLen returns the prefix length of r within a w-bit field, or -1 if r
// is not a prefix. A full range has length 0; an exact value has length w.
func (r Range) PrefixLen(w uint) int {
	if !r.IsPrefix(w) {
		return -1
	}
	size := r.Size()
	bits := 0
	for size > 1 {
		size >>= 1
		bits++
	}
	return int(w) - bits
}

// PrefixRange returns the range covered by the length-len prefix of addr in
// a w-bit field. Bits of addr below the prefix are ignored.
func PrefixRange(addr uint32, length int, w uint) Range {
	if length <= 0 {
		return Range{0, maskOf(w)}
	}
	if uint(length) >= w {
		return Range{addr, addr}
	}
	shift := w - uint(length)
	lo := addr >> shift << shift
	return Range{lo, lo | (uint32(1)<<shift - 1)}
}

func maskOf(w uint) uint32 {
	if w == 32 {
		return ^uint32(0)
	}
	return uint32(1)<<w - 1
}

// Packet is a 5-tuple packet header.
type Packet struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Field returns the packet's value in dimension d.
func (p Packet) Field(d int) uint32 {
	switch d {
	case DimSrcIP:
		return p.SrcIP
	case DimDstIP:
		return p.DstIP
	case DimSrcPort:
		return uint32(p.SrcPort)
	case DimDstPort:
		return uint32(p.DstPort)
	case DimProto:
		return uint32(p.Proto)
	}
	panic(fmt.Sprintf("rule: invalid dimension %d", d))
}

// Top8 returns the 8 most significant bits of the packet's value in
// dimension d. The hardware accelerator computes child indexes exclusively
// from these bits (paper §3).
func (p Packet) Top8(d int) uint8 {
	return uint8(p.Field(d) >> (DimBits[d] - 8))
}

// Top8OfValue returns the 8 most significant bits of value v interpreted in
// dimension d.
func Top8OfValue(v uint32, d int) uint8 {
	return uint8(v >> (DimBits[d] - 8))
}

// Rule is a single classification rule: five ranges plus an identifier.
// Lower ID means higher priority; classifiers return the matching rule with
// the smallest ID (first-match semantics).
type Rule struct {
	// ID is the rule's index in its ruleset and doubles as its priority.
	ID int
	// F holds the rule's range in each dimension, indexed by Dim*.
	F [NumDims]Range
}

// Matches reports whether packet p satisfies every field range of r.
func (r *Rule) Matches(p Packet) bool {
	for d := 0; d < NumDims; d++ {
		if !r.F[d].Contains(p.Field(d)) {
			return false
		}
	}
	return true
}

// IsWildcard reports whether the rule is fully wildcarded in dimension d.
func (r *Rule) IsWildcard(d int) bool { return r.F[d].IsFull(d) }

// New constructs a rule from typed 5-tuple components. srcLen and dstLen
// are prefix lengths (0 = wildcard, 32 = host). protoWild selects a
// protocol wildcard; otherwise proto is matched exactly.
func New(id int, srcIP uint32, srcLen int, dstIP uint32, dstLen int,
	srcPort, dstPort Range, proto uint8, protoWild bool) Rule {
	r := Rule{ID: id}
	r.F[DimSrcIP] = PrefixRange(srcIP, srcLen, 32)
	r.F[DimDstIP] = PrefixRange(dstIP, dstLen, 32)
	r.F[DimSrcPort] = srcPort
	r.F[DimDstPort] = dstPort
	if protoWild {
		r.F[DimProto] = FullRange(DimProto)
	} else {
		r.F[DimProto] = Range{uint32(proto), uint32(proto)}
	}
	return r
}

// FromBytes builds a rule over the paper's didactic 8-bit field space
// (Table 1): each of the five dimensions is given as an 8-bit [lo,hi] pair
// which is widened to the dimension's real width by placing it in the top 8
// bits. This preserves decision-tree behaviour exactly, because the
// modified algorithms cut only on the top 8 bits of each dimension.
func FromBytes(id int, lo, hi [NumDims]uint8) Rule {
	r := Rule{ID: id}
	for d := 0; d < NumDims; d++ {
		shift := DimBits[d] - 8
		r.F[d] = Range{
			Lo: uint32(lo[d]) << shift,
			Hi: uint32(hi[d])<<shift | (uint32(1)<<shift - 1),
		}
	}
	return r
}

// PacketFromBytes widens five 8-bit field values into a packet the same way
// FromBytes widens rules (value placed in the top 8 bits of each field).
func PacketFromBytes(v [NumDims]uint8) Packet {
	return Packet{
		SrcIP:   uint32(v[DimSrcIP]) << 24,
		DstIP:   uint32(v[DimDstIP]) << 24,
		SrcPort: uint16(v[DimSrcPort]) << 8,
		DstPort: uint16(v[DimDstPort]) << 8,
		Proto:   v[DimProto],
	}
}

// String renders the rule in a compact ClassBench-like form.
func (r *Rule) String() string {
	return fmt.Sprintf("#%d %s %s %d:%d %d:%d %s",
		r.ID, ipRangeString(r.F[DimSrcIP]), ipRangeString(r.F[DimDstIP]),
		r.F[DimSrcPort].Lo, r.F[DimSrcPort].Hi,
		r.F[DimDstPort].Lo, r.F[DimDstPort].Hi,
		protoString(r.F[DimProto]))
}

func ipRangeString(r Range) string {
	if l := r.PrefixLen(32); l >= 0 {
		return fmt.Sprintf("%d.%d.%d.%d/%d",
			byte(r.Lo>>24), byte(r.Lo>>16), byte(r.Lo>>8), byte(r.Lo), l)
	}
	return fmt.Sprintf("[%d-%d]", r.Lo, r.Hi)
}

func protoString(r Range) string {
	if r.Lo == 0 && r.Hi == 255 {
		return "0x00/0x00"
	}
	return fmt.Sprintf("0x%02X/0xFF", r.Lo)
}

// RuleSet is an ordered collection of rules; order defines priority.
type RuleSet []Rule

// Match returns the ID of the highest-priority (lowest-ID) rule matching p,
// or -1 if no rule matches. This linear scan is the reference semantics all
// classifiers in this repository must agree with.
func (rs RuleSet) Match(p Packet) int {
	for i := range rs {
		if rs[i].Matches(p) {
			return rs[i].ID
		}
	}
	return -1
}

// Validate checks structural invariants: IDs are unique, ranges are
// ordered, and values fit their dimension widths.
func (rs RuleSet) Validate() error {
	seen := make(map[int]bool, len(rs))
	for i := range rs {
		r := &rs[i]
		if seen[r.ID] {
			return fmt.Errorf("rule %d: duplicate ID", r.ID)
		}
		seen[r.ID] = true
		for d := 0; d < NumDims; d++ {
			f := r.F[d]
			if f.Lo > f.Hi {
				return fmt.Errorf("rule %d dim %s: inverted range [%d,%d]", r.ID, DimNames[d], f.Lo, f.Hi)
			}
			if f.Hi > MaxValue(d) {
				return fmt.Errorf("rule %d dim %s: value %d exceeds %d-bit field", r.ID, DimNames[d], f.Hi, DimBits[d])
			}
		}
	}
	return nil
}
