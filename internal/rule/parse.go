package rule

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements reading and writing rulesets in the de-facto
// ClassBench filter-set format, one rule per line:
//
//	@192.128.0.0/9  10.0.0.0/8  0 : 65535  1024 : 1024  0x06/0xFF
//
// Fields are source prefix, destination prefix, source port range,
// destination port range, and protocol value/mask. The protocol mask is
// either 0xFF (exact) or 0x00 (wildcard); the hardware leaf encoding
// supports exactly those two cases (paper §3, 9-bit protocol field).

// WriteSet serializes rs to w in ClassBench format. Rules whose IP fields
// are not prefixes or whose protocol is neither exact nor wildcard cannot
// be expressed in the format and yield an error.
func WriteSet(w io.Writer, rs RuleSet) error {
	bw := bufio.NewWriter(w)
	for i := range rs {
		r := &rs[i]
		line, err := FormatRule(r)
		if err != nil {
			return fmt.Errorf("rule %d: %w", r.ID, err)
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatRule renders a single rule as a ClassBench line (without newline).
func FormatRule(r *Rule) (string, error) {
	src, err := prefixText(r.F[DimSrcIP])
	if err != nil {
		return "", fmt.Errorf("srcIP: %w", err)
	}
	dst, err := prefixText(r.F[DimDstIP])
	if err != nil {
		return "", fmt.Errorf("dstIP: %w", err)
	}
	proto, err := protoText(r.F[DimProto])
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("@%s\t%s\t%d : %d\t%d : %d\t%s",
		src, dst,
		r.F[DimSrcPort].Lo, r.F[DimSrcPort].Hi,
		r.F[DimDstPort].Lo, r.F[DimDstPort].Hi,
		proto), nil
}

func prefixText(r Range) (string, error) {
	l := r.PrefixLen(32)
	if l < 0 {
		return "", fmt.Errorf("range [%d,%d] is not a prefix", r.Lo, r.Hi)
	}
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(r.Lo>>24), byte(r.Lo>>16), byte(r.Lo>>8), byte(r.Lo), l), nil
}

func protoText(r Range) (string, error) {
	switch {
	case r.Lo == 0 && r.Hi == 255:
		return "0x00/0x00", nil
	case r.Lo == r.Hi:
		return fmt.Sprintf("0x%02X/0xFF", r.Lo), nil
	}
	return "", fmt.Errorf("protocol range [%d,%d] is neither exact nor wildcard", r.Lo, r.Hi)
}

// ReadSet parses a ClassBench-format ruleset from r. Rule IDs are assigned
// in file order starting at 0. Blank lines and lines starting with '#' are
// ignored.
func ReadSet(r io.Reader) (RuleSet, error) {
	var rs RuleSet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rl, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		rl.ID = len(rs)
		rs = append(rs, rl)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

// ParseRule parses one ClassBench filter line into a Rule (ID left 0).
func ParseRule(line string) (Rule, error) {
	var r Rule
	if !strings.HasPrefix(line, "@") {
		return r, fmt.Errorf("rule line must start with '@': %q", line)
	}
	fields := strings.Fields(line[1:])
	// Expected: src dst loS : hiS loD : hiD proto[/mask] [extra flags ignored]
	if len(fields) < 9 {
		return r, fmt.Errorf("want at least 9 whitespace-separated tokens, got %d", len(fields))
	}
	var err error
	if r.F[DimSrcIP], err = parsePrefix(fields[0]); err != nil {
		return r, fmt.Errorf("srcIP: %w", err)
	}
	if r.F[DimDstIP], err = parsePrefix(fields[1]); err != nil {
		return r, fmt.Errorf("dstIP: %w", err)
	}
	if r.F[DimSrcPort], err = parsePortRange(fields[2], fields[3], fields[4]); err != nil {
		return r, fmt.Errorf("srcPort: %w", err)
	}
	if r.F[DimDstPort], err = parsePortRange(fields[5], fields[6], fields[7]); err != nil {
		return r, fmt.Errorf("dstPort: %w", err)
	}
	if r.F[DimProto], err = parseProto(fields[8]); err != nil {
		return r, fmt.Errorf("proto: %w", err)
	}
	return r, nil
}

func parsePrefix(s string) (Range, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Range{}, fmt.Errorf("missing '/' in prefix %q", s)
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Range{}, fmt.Errorf("bad prefix length in %q", s)
	}
	parts := strings.Split(s[:slash], ".")
	if len(parts) != 4 {
		return Range{}, fmt.Errorf("bad IPv4 address %q", s[:slash])
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return Range{}, fmt.Errorf("bad IPv4 octet %q", p)
		}
		addr = addr<<8 | uint32(b)
	}
	return PrefixRange(addr, length, 32), nil
}

func parsePortRange(lo, colon, hi string) (Range, error) {
	if colon != ":" {
		return Range{}, fmt.Errorf("expected ':' between port bounds, got %q", colon)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return Range{}, fmt.Errorf("bad low port %q", lo)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return Range{}, fmt.Errorf("bad high port %q", hi)
	}
	if l > h {
		return Range{}, fmt.Errorf("inverted port range %s:%s", lo, hi)
	}
	return Range{uint32(l), uint32(h)}, nil
}

func parseProto(s string) (Range, error) {
	val := s
	mask := "0xFF"
	if slash := strings.IndexByte(s, '/'); slash >= 0 {
		val, mask = s[:slash], s[slash+1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 8)
	if err != nil {
		return Range{}, fmt.Errorf("bad protocol value %q", s)
	}
	m, err := strconv.ParseUint(strings.TrimPrefix(mask, "0x"), 16, 8)
	if err != nil {
		return Range{}, fmt.Errorf("bad protocol mask %q", s)
	}
	switch m {
	case 0x00:
		return FullRange(DimProto), nil
	case 0xFF:
		return Range{uint32(v), uint32(v)}, nil
	}
	return Range{}, fmt.Errorf("unsupported protocol mask 0x%02X (want 0x00 or 0xFF)", m)
}
