package rule

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeContains(t *testing.T) {
	r := Range{10, 20}
	for _, tc := range []struct {
		v    uint32
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := r.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	r := Range{10, 20}
	cases := []struct {
		s    Range
		want bool
	}{
		{Range{0, 9}, false},
		{Range{0, 10}, true},
		{Range{15, 16}, true},
		{Range{20, 30}, true},
		{Range{21, 30}, false},
		{Range{0, 100}, true},
	}
	for _, tc := range cases {
		if got := r.Overlaps(tc.s); got != tc.want {
			t.Errorf("Overlaps(%v) = %v, want %v", tc.s, got, tc.want)
		}
		if got := tc.s.Overlaps(r); got != tc.want {
			t.Errorf("Overlaps is not symmetric for %v", tc.s)
		}
	}
}

func TestRangeSizeFull32(t *testing.T) {
	r := FullRange(DimSrcIP)
	if got := r.Size(); got != 1<<32 {
		t.Errorf("full 32-bit range size = %d, want 2^32", got)
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		r    Range
		w    uint
		want int
	}{
		{Range{0, 255}, 8, 0},
		{Range{0, 127}, 8, 1},
		{Range{128, 255}, 8, 1},
		{Range{4, 4}, 8, 8},
		{Range{4, 5}, 8, 7},
		{Range{5, 6}, 8, -1}, // not aligned
		{Range{0, 2}, 8, -1}, // not power of two
		{Range{0, ^uint32(0)}, 32, 0},
		{Range{0x0A000000, 0x0AFFFFFF}, 32, 8},
	}
	for _, tc := range cases {
		if got := tc.r.PrefixLen(tc.w); got != tc.want {
			t.Errorf("PrefixLen(%v, %d) = %d, want %d", tc.r, tc.w, got, tc.want)
		}
	}
}

func TestPrefixRangeRoundTrip(t *testing.T) {
	f := func(addr uint32, length uint8) bool {
		l := int(length % 33)
		r := PrefixRange(addr, l, 32)
		return r.PrefixLen(32) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixRangeMasksLowBits(t *testing.T) {
	r := PrefixRange(0xC0A80101, 24, 32)
	want := Range{0xC0A80100, 0xC0A801FF}
	if r != want {
		t.Errorf("PrefixRange = %+v, want %+v", r, want)
	}
}

func TestPacketField(t *testing.T) {
	p := Packet{SrcIP: 0x11223344, DstIP: 0x55667788, SrcPort: 0x99AA, DstPort: 0xBBCC, Proto: 0xDD}
	want := [NumDims]uint32{0x11223344, 0x55667788, 0x99AA, 0xBBCC, 0xDD}
	for d := 0; d < NumDims; d++ {
		if got := p.Field(d); got != want[d] {
			t.Errorf("Field(%d) = %#x, want %#x", d, got, want[d])
		}
	}
}

func TestPacketTop8(t *testing.T) {
	p := Packet{SrcIP: 0x11223344, DstIP: 0xFF667788, SrcPort: 0x99AA, DstPort: 0x0BCC, Proto: 0xDD}
	want := [NumDims]uint8{0x11, 0xFF, 0x99, 0x0B, 0xDD}
	for d := 0; d < NumDims; d++ {
		if got := p.Top8(d); got != want[d] {
			t.Errorf("Top8(%d) = %#x, want %#x", d, got, want[d])
		}
	}
}

func TestRuleMatches(t *testing.T) {
	r := New(0, 0xC0A80000, 16, 0x0A000000, 8, Range{1024, 2047}, Range{80, 80}, 6, false)
	match := Packet{SrcIP: 0xC0A81234, DstIP: 0x0A111111, SrcPort: 1500, DstPort: 80, Proto: 6}
	if !r.Matches(match) {
		t.Error("expected match")
	}
	for _, p := range []Packet{
		{SrcIP: 0xC0A91234, DstIP: 0x0A111111, SrcPort: 1500, DstPort: 80, Proto: 6},  // srcIP off
		{SrcIP: 0xC0A81234, DstIP: 0x0B111111, SrcPort: 1500, DstPort: 80, Proto: 6},  // dstIP off
		{SrcIP: 0xC0A81234, DstIP: 0x0A111111, SrcPort: 1023, DstPort: 80, Proto: 6},  // srcPort off
		{SrcIP: 0xC0A81234, DstIP: 0x0A111111, SrcPort: 1500, DstPort: 81, Proto: 6},  // dstPort off
		{SrcIP: 0xC0A81234, DstIP: 0x0A111111, SrcPort: 1500, DstPort: 80, Proto: 17}, // proto off
	} {
		if r.Matches(p) {
			t.Errorf("expected no match for %+v", p)
		}
	}
}

func TestRuleSetFirstMatchWins(t *testing.T) {
	rs := RuleSet{
		New(0, 0, 0, 0, 0, Range{80, 80}, FullRange(DimDstPort), 0, true),
		New(1, 0, 0, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
	}
	p := Packet{SrcPort: 80}
	if got := rs.Match(p); got != 0 {
		t.Errorf("Match = %d, want 0 (first match wins)", got)
	}
	p.SrcPort = 81
	if got := rs.Match(p); got != 1 {
		t.Errorf("Match = %d, want 1", got)
	}
}

func TestRuleSetNoMatch(t *testing.T) {
	rs := RuleSet{New(0, 0xC0A80000, 16, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true)}
	if got := rs.Match(Packet{SrcIP: 0}); got != -1 {
		t.Errorf("Match = %d, want -1", got)
	}
}

func TestFromBytesTable1(t *testing.T) {
	// Rule R0 from the paper's Table 1: 128-240, 15-15, 40-40, 180-180, 120-140.
	r := FromBytes(0, [NumDims]uint8{128, 15, 40, 180, 120}, [NumDims]uint8{240, 15, 40, 180, 140})
	// A packet whose top-8 field values fall inside must match.
	p := PacketFromBytes([NumDims]uint8{200, 15, 40, 180, 130})
	if !r.Matches(p) {
		t.Error("packet inside all ranges should match")
	}
	p2 := PacketFromBytes([NumDims]uint8{100, 15, 40, 180, 130})
	if r.Matches(p2) {
		t.Error("packet outside field0 should not match")
	}
	// Top-8 projection of the widened rule must recover the byte bounds.
	for d := 0; d < NumDims; d++ {
		if got := Top8OfValue(r.F[d].Lo, d); got != []uint8{128, 15, 40, 180, 120}[d] {
			t.Errorf("dim %d lo top8 = %d", d, got)
		}
		if got := Top8OfValue(r.F[d].Hi, d); got != []uint8{240, 15, 40, 180, 140}[d] {
			t.Errorf("dim %d hi top8 = %d", d, got)
		}
	}
}

func TestValidate(t *testing.T) {
	rs := RuleSet{
		New(0, 0, 0, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 0, true),
		New(1, 0, 0, 0, 0, FullRange(DimSrcPort), FullRange(DimDstPort), 6, false),
	}
	if err := rs.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	dup := append(RuleSet{}, rs...)
	dup[1].ID = 0
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ID not detected")
	}
	bad := append(RuleSet{}, rs...)
	bad[0].F[DimProto] = Range{300, 300}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-width protocol not detected")
	}
	inv := append(RuleSet{}, rs...)
	inv[0].F[DimSrcPort] = Range{10, 5}
	if err := inv.Validate(); err == nil {
		t.Error("inverted range not detected")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := make(RuleSet, 0, 64)
	for i := 0; i < 64; i++ {
		srcLen := rng.Intn(33)
		dstLen := rng.Intn(33)
		lo := uint32(rng.Intn(65536))
		hi := lo + uint32(rng.Intn(int(65536-lo)))
		r := New(i, rng.Uint32(), srcLen, rng.Uint32(), dstLen,
			Range{lo, hi}, Range{0, 65535}, uint8(rng.Intn(256)), rng.Intn(2) == 0)
		rs = append(rs, r)
	}
	var buf bytes.Buffer
	if err := WriteSet(&buf, rs); err != nil {
		t.Fatalf("WriteSet: %v", err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatalf("ReadSet: %v", err)
	}
	if len(got) != len(rs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i].F != rs[i].F {
			t.Errorf("rule %d: got %+v want %+v", i, got[i].F, rs[i].F)
		}
	}
}

func TestParseRuleLine(t *testing.T) {
	r, err := ParseRule("@192.128.0.0/9\t10.0.0.0/8\t0 : 65535\t1024 : 1024\t0x06/0xFF")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.F[DimSrcIP] != (Range{0xC0800000, 0xC0FFFFFF}) {
		t.Errorf("srcIP = %+v", r.F[DimSrcIP])
	}
	if r.F[DimDstIP] != (Range{0x0A000000, 0x0AFFFFFF}) {
		t.Errorf("dstIP = %+v", r.F[DimDstIP])
	}
	if r.F[DimSrcPort] != (Range{0, 65535}) || r.F[DimDstPort] != (Range{1024, 1024}) {
		t.Errorf("ports = %+v %+v", r.F[DimSrcPort], r.F[DimDstPort])
	}
	if r.F[DimProto] != (Range{6, 6}) {
		t.Errorf("proto = %+v", r.F[DimProto])
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"192.128.0.0/9 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0xFF", // no @
		"@192.128.0.0/33 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0xFF",
		"@192.128.0.0/9 10.0.0.0/8 0 65535 0 : 65535 0x06/0xFF",   // missing colon token
		"@192.128.0.0/9 10.0.0.0/8 9 : 1 0 : 65535 0x06/0xFF",     // inverted
		"@192.128.0.0/9 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0x0F", // bad mask
		"@1.2.3/9 10.0.0.0/8 0 : 65535 0 : 65535 0x06/0xFF",       // 3 octets
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) should fail", line)
		}
	}
}

func TestReadSetSkipsComments(t *testing.T) {
	in := "# comment\n\n@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00\n"
	rs, err := ReadSet(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadSet: %v", err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d rules, want 1", len(rs))
	}
	if !rs[0].IsWildcard(DimSrcIP) || !rs[0].IsWildcard(DimProto) {
		t.Error("wildcard rule not parsed as wildcard")
	}
}

func TestMatchesAgreesWithPerFieldCheck(t *testing.T) {
	// Property: Rule.Matches equals conjunction of per-dimension Contains.
	f := func(sip, dip uint32, sp, dp uint16, pr uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRule(rng, 0)
		p := Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: pr}
		want := true
		for d := 0; d < NumDims; d++ {
			want = want && r.F[d].Contains(p.Field(d))
		}
		return r.Matches(p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomRule builds a structurally valid random rule for property tests.
func randomRule(rng *rand.Rand, id int) Rule {
	loPort := uint32(rng.Intn(65536))
	hiPort := loPort + uint32(rng.Intn(int(65536-loPort)))
	return New(id, rng.Uint32(), rng.Intn(33), rng.Uint32(), rng.Intn(33),
		Range{loPort, hiPort}, Range{0, 65535}, uint8(rng.Intn(256)), rng.Intn(2) == 0)
}
