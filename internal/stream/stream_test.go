package stream

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
	"repro/internal/wire"
)

func testHandle(t testing.TB, rules int) (*engine.Handle, rule.RuleSet) {
	t.Helper()
	rs := classbench.Generate(classbench.ACL1(), rules, 41)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewHandle(engine.Compile(tree)), rs
}

func encodeText(t testing.TB, trace []rule.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rule.WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBinary(t testing.TB, trace []rule.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodePcap(t testing.TB, trace []rule.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WritePcap(&buf, trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunFormatsAgree pins the tentpole invariant: the same trace fed as
// text lines, binary frames, or a pcap capture produces byte-identical
// result streams, all matching a direct ClassifyBatch oracle.
func TestRunFormatsAgree(t *testing.T) {
	h, rs := testHandle(t, 200)
	// TCP/UDP with zero fragments so the pcap encoding is lossless.
	trace := classbench.GenerateTrace(rs, 3*BatchSize+57, 43)
	for i := range trace {
		if i%2 == 0 {
			trace[i].Proto = 6
		} else {
			trace[i].Proto = 17
		}
	}
	want := make([]int32, len(trace))
	h.Current().Engine().ClassifyBatch(trace, want)
	var oracle bytes.Buffer
	for _, id := range want {
		fmt.Fprintf(&oracle, "%d\n", id)
	}

	cases := map[string]struct {
		data   []byte
		binary bool
	}{
		"text":   {encodeText(t, trace), false},
		"binary": {encodeBinary(t, trace), true},
		"pcap":   {encodePcap(t, trace), true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			st, err := Run(h, bytes.NewReader(tc.data), &out)
			if err != nil {
				t.Fatal(err)
			}
			if st.Packets != int64(len(trace)) {
				t.Fatalf("Packets = %d, want %d", st.Packets, len(trace))
			}
			wantBatches := int64((len(trace) + BatchSize - 1) / BatchSize)
			if st.Batches != wantBatches {
				t.Fatalf("Batches = %d, want %d", st.Batches, wantBatches)
			}
			if st.Binary != tc.binary {
				t.Fatalf("Binary = %v, want %v", st.Binary, tc.binary)
			}
			if !bytes.Equal(out.Bytes(), oracle.Bytes()) {
				t.Fatal("result stream differs from ClassifyBatch oracle")
			}
		})
	}
}

// TestRunEmpty pins all three empty encodings.
func TestRunEmpty(t *testing.T) {
	h, _ := testHandle(t, 50)
	for name, data := range map[string][]byte{
		"text":   nil,
		"binary": encodeBinary(t, nil),
		"pcap":   encodePcap(t, nil),
	} {
		var out bytes.Buffer
		st, err := Run(h, bytes.NewReader(data), &out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Packets != 0 || out.Len() != 0 {
			t.Fatalf("%s: got %d packets, %d output bytes", name, st.Packets, out.Len())
		}
	}
}

// TestRunCorruptBinaryMidStream pins error semantics: frames decoded
// before the corruption are classified and delivered, the corrupt
// frame's partial batch is not, and the error surfaces.
func TestRunCorruptBinaryMidStream(t *testing.T) {
	h, rs := testHandle(t, 100)
	trace := classbench.GenerateTrace(rs, 2*BatchSize+100, 47)
	data := encodeBinary(t, trace)
	// Corrupt the second frame's marker (frames are DefaultFrameRecords
	// packets each; the first frame survives).
	off := wire.HeaderBytes + wire.FrameHeaderBytes + wire.DefaultFrameRecords*wire.RecordBytes
	data[off] = 0x00
	var out bytes.Buffer
	st, err := Run(h, bytes.NewReader(data), &out)
	if err == nil {
		t.Fatal("corrupt stream ran cleanly")
	}
	if st.Packets != int64(wire.DefaultFrameRecords) {
		t.Fatalf("Packets = %d, want %d (one clean frame)", st.Packets, wire.DefaultFrameRecords)
	}
	if got := bytes.Count(out.Bytes(), []byte("\n")); got != wire.DefaultFrameRecords {
		t.Fatalf("delivered %d result lines, want %d", got, wire.DefaultFrameRecords)
	}
}

// TestRunBadTextLine mirrors the old streamer's contract: a bad line
// fails with its line number, earlier full batches are delivered.
func TestRunBadTextLine(t *testing.T) {
	h, rs := testHandle(t, 50)
	trace := classbench.GenerateTrace(rs, 10, 53)
	data := string(encodeText(t, trace))
	data += "not a packet\n"
	var out bytes.Buffer
	_, err := Run(h, strings.NewReader(data), &out)
	if err == nil || !strings.Contains(err.Error(), "line 11") {
		t.Fatalf("err = %v, want line-11 parse error", err)
	}
}

// errWriter fails after a fixed number of bytes.
type errWriter struct{ left int }

var errSink = errors.New("sink failed")

func (e *errWriter) Write(p []byte) (int, error) {
	if e.left <= 0 {
		return 0, errSink
	}
	n := min(len(p), e.left)
	e.left -= n
	if n < len(p) {
		return n, errSink
	}
	return n, nil
}

// TestRunWriterError pins that a failing output sink aborts the pipeline
// (no deadlock, no goroutine leak under -race) and surfaces the error.
func TestRunWriterError(t *testing.T) {
	h, rs := testHandle(t, 50)
	trace := classbench.GenerateTrace(rs, 4*BatchSize, 59)
	data := encodeBinary(t, trace)
	var full bytes.Buffer
	if _, err := Run(h, bytes.NewReader(data), &full); err != nil {
		t.Fatal(err)
	}
	// Budgets hit the sink at the first write, mid-stream, and at the
	// final flush.
	for _, budget := range []int{0, 100, full.Len() / 2, full.Len() - 1} {
		_, err := Run(h, bytes.NewReader(data), &errWriter{left: budget})
		if !errors.Is(err, errSink) {
			t.Fatalf("budget %d: err = %v, want sink error", budget, err)
		}
	}
}

// TestRunChunkedBinary drives the pipeline through a reader that splits
// frames mid-header and mid-record (the stream-level mirror of
// stream_framing_test.go).
func TestRunChunkedBinary(t *testing.T) {
	h, rs := testHandle(t, 100)
	trace := classbench.GenerateTrace(rs, BatchSize+777, 61)
	data := encodeBinary(t, trace)
	var whole, chunked bytes.Buffer
	if _, err := Run(h, bytes.NewReader(data), &whole); err != nil {
		t.Fatal(err)
	}
	st, err := Run(h, iotest(data, 13), &chunked)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != int64(len(trace)) {
		t.Fatalf("Packets = %d, want %d", st.Packets, len(trace))
	}
	if !bytes.Equal(whole.Bytes(), chunked.Bytes()) {
		t.Fatal("chunked read produced different results")
	}
}

// iotest returns a reader yielding size-byte chunks of data.
func iotest(data []byte, size int) io.Reader {
	return &chunkReader{data: data, size: size}
}

type chunkReader struct {
	data []byte
	pos  int
	size int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, io.EOF
	}
	n := min(min(c.size, len(p)), len(c.data)-c.pos)
	copy(p, c.data[c.pos:c.pos+n])
	c.pos += n
	return n, nil
}

// TestDetect pins the sniffing boundary cases, including inputs shorter
// than the 4-byte peek.
func TestDetect(t *testing.T) {
	for name, tc := range map[string]struct {
		data   string
		binary bool
	}{
		"empty":     {"", false},
		"short":     {"1\t2", false},
		"text":      {"1\t2\t3\t4\t5\n", false},
		"wire":      {string(encodeBinary(t, nil)), true},
		"pcap":      {string(encodePcap(t, nil)), true},
		"near-miss": {"PCBX rest", false},
	} {
		_, binary := Detect(bufio.NewReader(strings.NewReader(tc.data)))
		if binary != tc.binary {
			t.Fatalf("%s: binary = %v, want %v", name, binary, tc.binary)
		}
	}
}

// TestStreamAllocsPerPacket is the pipeline-level allocation gate: the
// per-packet malloc rate on the binary path must stay far below one —
// buffers are reused across batches, so steady state is O(1) allocs per
// batch (goroutine fan-out), not per packet.
func TestStreamAllocsPerPacket(t *testing.T) {
	h, rs := testHandle(t, 100)
	trace := classbench.GenerateTrace(rs, 8*BatchSize, 67)
	data := encodeBinary(t, trace)
	// Warm once (pipeline slot buffers are per-Run; flow cache, pools
	// and lazy engine state warm up here).
	if _, err := Run(h, bytes.NewReader(data), io.Discard); err != nil {
		t.Fatal(err)
	}
	st, err := Run(h, bytes.NewReader(data), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	perPacket := float64(st.Allocs) / float64(st.Packets)
	if perPacket >= 1 {
		t.Fatalf("binary path allocates %.2f/packet (Allocs=%d, Packets=%d); want « 1",
			perPacket, st.Allocs, st.Packets)
	}
}
