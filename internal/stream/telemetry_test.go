package stream

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/classbench"
	"repro/internal/telemetry"
)

// The pipeline's per-run histogram must land latency quantiles in Stats,
// and an attached recorder must see the stream counters move.
func TestStreamStatsLatencyQuantiles(t *testing.T) {
	h, rs := testHandle(t, 200)
	trace := classbench.GenerateTrace(rs, 6*BatchSize, 42)
	data := encodeBinary(t, trace)

	st, err := Run(h, bytes.NewReader(data), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != int64(len(trace)) {
		t.Fatalf("packets = %d, want %d", st.Packets, len(trace))
	}
	if st.BatchP50Ns <= 0 {
		t.Errorf("BatchP50Ns = %d, want > 0", st.BatchP50Ns)
	}
	if st.BatchP99Ns < st.BatchP50Ns {
		t.Errorf("BatchP99Ns = %d < BatchP50Ns = %d", st.BatchP99Ns, st.BatchP50Ns)
	}
	if st.ReaderStalls < 0 || st.WriterStalls < 0 {
		t.Errorf("negative stall counters: %+v", st)
	}
	// The histogram rides the pooled slot ring: a second run must not
	// inherit the first run's observations (quantiles are per-run).
	st2, err := Run(h, bytes.NewReader(data), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if st2.BatchP50Ns <= 0 {
		t.Errorf("second run BatchP50Ns = %d, want > 0", st2.BatchP50Ns)
	}
}

func TestStreamFeedsRecorder(t *testing.T) {
	h, rs := testHandle(t, 200)
	rec := telemetry.New()
	h.SetTelemetry(rec)
	trace := classbench.GenerateTrace(rs, 3*BatchSize, 43)
	data := encodeBinary(t, trace)

	st, err := Run(h, bytes.NewReader(data), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.StreamPackets.Load(); got != uint64(st.Packets) {
		t.Errorf("recorder stream packets = %d, want %d", got, st.Packets)
	}
	if got := rec.StreamBatches.Load(); got != uint64(st.Batches) {
		t.Errorf("recorder stream batches = %d, want %d", got, st.Batches)
	}
	// The classify stage routes through the handle, so the data-plane
	// counters move too, by exactly the streamed packet count.
	if got := rec.Packets.Load(); got != uint64(st.Packets) {
		t.Errorf("recorder packets = %d, want %d", got, st.Packets)
	}
	if hs := rec.StreamBatchNs.Snapshot(); hs.Count != uint64(st.Batches) {
		t.Errorf("stream batch histogram count = %d, want %d", hs.Count, st.Batches)
	}
}
