// Package stream is the line-rate ingest pipeline: it pulls packet
// batches from a framed source (binary wire format, pcap capture, or the
// legacy text trace as a compatibility shim), classifies them on the
// epoch-snapshot engine via engine.Handle.ParallelClassifyCached, and
// serializes result IDs — one decimal per line, the format the text
// streamer always produced — without ever stalling the classify stage on
// output.
//
// Dataflow (DESIGN.md §9):
//
//	            free ring                work ring               done ring
//	source ──► [slot pkts] ──reader──► [classify+encode] ──► [writer] ──► w
//	   ▲                                                        │
//	   └────────────────── slots recycle ───────────────────────┘
//
// A fixed ring of slots carries reused packet/result/output buffers
// through three stages running on their own goroutines, so frame
// decoding, classification and result serialization overlap. Within the
// classify stage the batch is sharded across cores by
// ParallelClassifyCached, and each core's results are formatted into its
// own segment of the slot's per-core result ring — the writer drains the
// segments in order, so output serialization never blocks a classify
// worker. Steady state performs zero allocations per packet; the only
// per-batch allocations are the goroutine fan-outs.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/rule"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// BatchSize is the number of packets per pipeline slot: the granularity
// of classification dispatch and of epoch observation.
const BatchSize = 4096

// slots is the pipeline ring depth: one slot being filled, one being
// classified, one being written, one of slack.
const slots = 4

// Stats describes one finished stream, the observables that make ingest
// regressions visible.
type Stats struct {
	// Packets is the number of packets classified and delivered.
	Packets int64
	// Batches is the number of pipeline dispatches (≤ BatchSize packets
	// each).
	Batches int64
	// Allocs approximates the heap allocations the stream performed:
	// the process-wide heap-object allocation delta across the call
	// (runtime/metrics, no stop-the-world). Exact when nothing else
	// runs concurrently; steady-state ingest keeps it to a small
	// per-batch constant (goroutine fan-out), so Allocs/Packets far
	// below 1 is the expected regime on every path.
	Allocs int64
	// Binary reports that the source was detected as binary-framed
	// (wire format or pcap) rather than the text shim.
	Binary bool
	// BatchP50Ns and BatchP99Ns are the run's per-batch classify+encode
	// latency quantiles in nanoseconds (log2-bucket estimates, exact to
	// within a factor of two): the latency-under-load observable —
	// dividing by the batch size bounds per-packet queuing delay. Zero
	// when the run dispatched no batches.
	BatchP50Ns, BatchP99Ns int64
	// ReaderStalls counts decode-stage waits for a free pipeline slot
	// (the classify/write side was the bottleneck); WriterStalls counts
	// classify-stage waits for the done ring to drain (output
	// serialization was the bottleneck). Both zero means the source was
	// the bottleneck — the pipeline ran input-bound.
	ReaderStalls, WriterStalls int64
	// Skipped counts source records decoded but not deliverable as
	// packets — for pcap captures, records that were not parseable
	// IPv4-over-Ethernet (wire.PcapReader.Skipped): other link
	// protocols, non-initial fragments, truncated frames. Always zero
	// for the wire and text framings, and on abort paths where the
	// decoder could not be safely observed (a stage goroutine may still
	// hold it).
	Skipped int64
}

// slot is one ring entry: reused input, result and per-core output
// buffers plus the batch's read status.
type slot struct {
	pkts []rule.Packet
	out  []int32
	segs [][]byte // per-core formatted results (the writer-side ring)
	n    int
	err  error
}

// textSource adapts the legacy text trace format (rule.WriteTrace lines)
// to the BatchReader contract. It reuses the scanner's token buffer and
// parses with rule.ParseTraceLineBytes, so the shim allocates nothing
// per packet either — it is slower than binary framing only because
// decimal parsing is inherently slower than slicing fixed-width records.
type textSource struct {
	sc     *bufio.Scanner
	buf    []byte // pooled scanner buffer, returned by Run when safe
	lineNo int
}

func newTextSource(r io.Reader) *textSource {
	sc := bufio.NewScanner(r)
	buf, _ := scanBufPool.Get().(*[]byte)
	if buf == nil {
		b := make([]byte, 0, 64*1024)
		buf = &b
	}
	sc.Buffer(*buf, 1024*1024)
	return &textSource{sc: sc, buf: *buf}
}

func (t *textSource) ReadBatch(pkts []rule.Packet) (int, error) {
	n := 0
	for n < len(pkts) {
		if !t.sc.Scan() {
			if err := t.sc.Err(); err != nil {
				return n, err
			}
			return n, io.EOF
		}
		t.lineNo++
		p, ok, err := rule.ParseTraceLineBytes(t.sc.Bytes())
		if err != nil {
			return n, fmt.Errorf("trace line %d: %w", t.lineNo, err)
		}
		if !ok {
			continue
		}
		pkts[n] = p
		n++
	}
	return n, nil
}

// Detect sniffs r (buffered) and returns the matching batch source:
// native wire framing, a pcap capture, or the text shim. It consumes
// nothing — detection is a Peek.
func Detect(br *bufio.Reader) (src wire.BatchReader, binary bool) {
	head, _ := br.Peek(4)
	switch {
	case wire.IsMagic(head):
		return wire.NewReader(br), true
	case wire.IsPcapMagic(head):
		return wire.NewPcapReader(br), true
	default:
		return newTextSource(br), false
	}
}

// Fixed-cost pools: every buffer a stream needs besides the slot ring —
// the input bufio layer, the framed decoders with their ring buffers,
// the text scanner's token buffer, the output bufio layer — is recycled
// across runs, so back-to-back short streams do not pay ~½ MiB of
// allocation and page-faulting per call. Decoder-side entries return to
// their pool only when the reader stage provably exited (same rule as
// the slot ring); the writer side always returns because stage 3 runs
// on the calling goroutine.
var (
	brPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64*1024) }}
	bwPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 64*1024) }}

	wireRdPool  sync.Pool // *wire.Reader
	pcapRdPool  sync.Pool // *wire.PcapReader
	scanBufPool sync.Pool // *[]byte (bufio.Scanner token buffer)
)

// heapAllocsMetric is the cumulative heap-object allocation counter —
// the runtime/metrics equivalent of MemStats.Mallocs, readable without
// a stop-the-world.
const heapAllocsMetric = "/gc/heap/allocs:objects"

func heapAllocs() int64 {
	s := []metrics.Sample{{Name: heapAllocsMetric}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// Run streams packets from r through h into w: reads are auto-detected
// as binary wire framing, pcap, or text lines; results are written as
// one decimal rule ID per line in input order. Classification follows
// epoch snapshots batch by batch, so concurrent updates through h never
// stall the stream. On error, every result already written corresponds
// to a delivered packet (the writer flushes before returning) and
// Stats.Packets counts exactly those.
func Run(h *engine.Handle, r io.Reader, w io.Writer) (Stats, error) {
	a0 := heapAllocs()
	br, ok := r.(*bufio.Reader)
	pooledBR := false
	if !ok {
		br = brPool.Get().(*bufio.Reader)
		br.Reset(r)
		pooledBR = true
	}
	// Detection mirrors Detect but draws the decoder from a pool; Detect
	// itself stays allocation-simple for one-shot callers.
	head, _ := br.Peek(4)
	var (
		src      wire.BatchReader
		isBinary bool
		wrd      *wire.Reader
		prd      *wire.PcapReader
		txt      *textSource
	)
	switch {
	case wire.IsMagic(head):
		wrd, _ = wireRdPool.Get().(*wire.Reader)
		if wrd == nil {
			wrd = wire.NewReader(br)
		} else {
			wrd.Reset(br)
		}
		src, isBinary = wrd, true
	case wire.IsPcapMagic(head):
		prd, _ = pcapRdPool.Get().(*wire.PcapReader)
		if prd == nil {
			prd = wire.NewPcapReader(br)
		} else {
			prd.Reset(br)
		}
		src, isBinary = prd, true
	default:
		txt = newTextSource(br)
		src = txt
	}
	st, safe, err := run(h, src, w)
	st.Binary = isBinary
	if safe {
		switch {
		case wrd != nil:
			wrd.Reset(nil)
			wireRdPool.Put(wrd)
		case prd != nil:
			// Capture before Reset zeroes it; safe==true proves the
			// reader stage exited, so this read cannot race.
			st.Skipped = prd.Skipped
			prd.Reset(nil)
			pcapRdPool.Put(prd)
		case txt != nil:
			buf := txt.buf
			scanBufPool.Put(&buf)
		}
		if pooledBR {
			br.Reset(nil)
			brPool.Put(br)
		}
	}
	st.Allocs = heapAllocs() - a0
	return st, err
}

// encWorkers is the per-slot result-segment count: every classify core
// gets its own output ring segment. Capped so segment bookkeeping stays
// trivial on very wide hosts.
func encWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// slotRing is the set of slots one pipeline run cycles through. Rings
// are pooled across runs so a stream's fixed cost does not include
// allocating (and faulting in) ~360 KiB of batch buffers.
type slotRing struct {
	slots   [slots]*slot
	workers int
	// hist accumulates the run's per-batch classify+encode latency; it
	// rides the pooled ring so a stream's fixed cost does not include
	// allocating it, and is Reset at the start of every run.
	hist telemetry.Hist
}

var ringPool sync.Pool

func getRing(workers int) *slotRing {
	if r, _ := ringPool.Get().(*slotRing); r != nil && r.workers == workers {
		return r
	}
	r := &slotRing{workers: workers}
	for i := range r.slots {
		s := &slot{
			pkts: make([]rule.Packet, BatchSize),
			out:  make([]int32, BatchSize),
			segs: make([][]byte, workers),
		}
		for k := range s.segs {
			s.segs[k] = make([]byte, 0, 8*BatchSize/workers+16)
		}
		r.slots[i] = s
	}
	return r
}

// run executes the three-stage pipeline. The second return reports
// whether both stage goroutines exited — i.e. whether buffers the
// source or slots reference may be recycled by the caller.
func run(h *engine.Handle, src wire.BatchReader, w io.Writer) (Stats, bool, error) {
	var st Stats
	workers := encWorkers()
	free := make(chan *slot, slots)
	work := make(chan *slot, slots)
	// done holds fewer than all slots so a writer that falls behind is
	// observable: with capacity for every slot the classify stage could
	// never block on it (the stall counter would be structurally zero).
	// Total pipelining is bounded by the slot count either way — slots
	// stuck in done starve the free ring — so this only moves where the
	// backpressure surfaces, not how much there is.
	done := make(chan *slot, slots/2)
	abort := make(chan struct{})
	var abortOnce sync.Once
	stop := func() { abortOnce.Do(func() { close(abort) }) }
	// exited counts finished stage goroutines; the ring returns to the
	// pool only if both stages are provably done with its slots (on the
	// abort path the reader may still be blocked inside src.ReadBatch —
	// then the ring is simply left to the GC rather than joined on,
	// since a blocking source must not delay the error return).
	var exited atomic.Int32
	ring := getRing(workers)
	ring.hist.Reset()
	for _, s := range ring.slots {
		free <- s
	}
	tel := h.Telemetry()
	var readerStalls, writerStalls atomic.Int64

	// Stage 1: frame decoding. Fills slots from the free ring and hands
	// them to the classify stage in input order.
	go func() {
		defer close(work)
		defer exited.Add(1)
		for {
			var s *slot
			select {
			case s = <-free:
			default:
				// No free slot: the classify/write side is behind.
				readerStalls.Add(1)
				if tel != nil {
					tel.ReaderStalls.Inc()
				}
				select {
				case s = <-free:
				case <-abort:
					return
				}
			}
			n, err := src.ReadBatch(s.pkts)
			s.n, s.err = n, err
			if err == io.EOF {
				s.err = nil
				if n == 0 {
					return
				}
			}
			select {
			case work <- s:
			case <-abort:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// Stage 2: classification + result formatting. One goroutine keeps
	// slot order; parallelism lives inside ParallelClassifyCached and
	// the per-core segment encoders.
	go func() {
		defer close(done)
		defer exited.Add(1)
		for s := range work {
			if s.err == nil && s.n > 0 {
				start := time.Now()
				h.ParallelClassifyCached(s.pkts[:s.n], s.out[:s.n], 0)
				encodeSegments(s, workers)
				ns := int64(time.Since(start))
				ring.hist.Observe(ns)
				if tel != nil {
					tel.StreamBatchNs.Observe(ns)
					tel.StreamPackets.Add(uint64(s.n))
					tel.StreamBatches.Inc()
					tel.WorkQueue.Set(int64(len(work)))
					tel.DoneQueue.Set(int64(len(done)))
				}
			}
			select {
			case done <- s:
			default:
				// Done ring full: output serialization is behind.
				writerStalls.Add(1)
				if tel != nil {
					tel.WriterStalls.Inc()
				}
				select {
				case done <- s:
				case <-abort:
					return
				}
			}
		}
	}()

	// Stage 3 (this goroutine): drain the done ring in order, write each
	// slot's segments, recycle the slot.
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(w)
	var firstErr error
	for s := range done {
		if firstErr == nil && s.err == nil && s.n > 0 {
			for _, seg := range s.segs {
				if len(seg) == 0 {
					continue
				}
				if _, err := bw.Write(seg); err != nil {
					firstErr = err
					stop()
					break
				}
			}
			if firstErr == nil {
				st.Packets += int64(s.n)
				st.Batches++
			}
		}
		if firstErr == nil && s.err != nil {
			// Source error: packets decoded before the failure in this
			// slot are deliberately not classified or delivered — a
			// corrupt frame invalidates its partial batch.
			firstErr = s.err
			stop()
		}
		select {
		case free <- s:
		default:
		}
	}
	stop()
	// done closing happens after both stage goroutines' exited.Add on
	// the clean path, so 2 here proves no goroutine still touches the
	// ring's buffers (or the source's).
	safe := exited.Load() == 2
	st.ReaderStalls = readerStalls.Load()
	st.WriterStalls = writerStalls.Load()
	if hs := ring.hist.Snapshot(); hs.Count > 0 {
		st.BatchP50Ns = int64(hs.Quantile(0.50))
		st.BatchP99Ns = int64(hs.Quantile(0.99))
	}
	if safe {
		ringPool.Put(ring)
	}
	if err := bw.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	bw.Reset(nil)
	bwPool.Put(bw)
	return st, safe, firstErr
}

// encodeSegments formats the slot's result IDs into its per-core
// segments: worker k owns one contiguous chunk of the batch and appends
// "id\n" lines into its own reused buffer, so no two cores share an
// output buffer and the writer can emit segments in order.
func encodeSegments(s *slot, workers int) {
	n := s.n
	for k := range s.segs {
		s.segs[k] = s.segs[k][:0]
	}
	if workers <= 1 || n < 2*BatchSize/slots {
		s.segs[0] = appendIDs(s.segs[0], s.out[:n])
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := k * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			s.segs[k] = appendIDs(s.segs[k], s.out[lo:hi])
		}(k, lo, hi)
	}
	wg.Wait()
}

//repro:hotpath
func appendIDs(buf []byte, ids []int32) []byte {
	// Hand-rolled itoa: strconv.AppendInt is ~a quarter of the cached
	// hot path's CPU at line rate (it re-derives digit counts and
	// handles bases the IDs never use). Rule IDs are almost always
	// short non-negative decimals, so fill a small scratch backwards
	// and append the used tail plus the newline in one copy.
	var tmp [12]byte
	for _, id := range ids {
		if uint32(id) < 10 { // covers the dominant single-digit IDs
			buf = append(buf, byte('0'+id), '\n')
			continue
		}
		v := uint32(id)
		neg := id < 0
		if neg {
			v = uint32(-int64(id))
		}
		i := len(tmp)
		tmp[i-1] = '\n'
		i--
		for v >= 10 {
			q := v / 10
			i--
			tmp[i] = byte('0' + v - q*10)
			v = q
		}
		i--
		tmp[i] = byte('0' + v)
		if neg {
			i--
			tmp[i] = '-'
		}
		buf = append(buf, tmp[i:]...)
	}
	return buf
}
