package stream

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rule"
	"repro/internal/wire"
)

// BenchmarkIngest is the end-to-end ingest number the line-rate work is
// accountable to, at the acceptance-criteria operating point (10k rules,
// flow-locality trace): framed bytes in, result lines out, through the
// full reader → classify → writer pipeline. Reported per sub-benchmark:
// pps end to end and allocs_pkt (heap allocations per packet, from
// Stats.Allocs — steady state must stay far below 1; the binary decode
// itself is pinned to 0 by TestReadBatchZeroAllocs).
func BenchmarkIngest(b *testing.B) {
	const rules = 10000
	rs := classbench.Generate(classbench.ACL1(), rules, 41)
	tree, err := core.Build(rs, core.DefaultConfig(core.HyperCuts))
	if err != nil {
		b.Fatal(err)
	}
	trace := classbench.GenerateFlowTrace(rs, 8*BatchSize, rules/4, 16, 42)

	var text, bin bytes.Buffer
	if err := rule.WriteTrace(&text, trace); err != nil {
		b.Fatal(err)
	}
	if err := wire.WriteTrace(&bin, trace); err != nil {
		b.Fatal(err)
	}

	newHandle := func(cache bool) *engine.Handle {
		h := engine.NewHandle(engine.Compile(tree))
		if cache {
			h.EnableCache(rules)
		}
		return h
	}
	cases := []struct {
		name  string
		data  []byte
		cache bool
	}{
		{"text", text.Bytes(), false},
		{"binary", bin.Bytes(), false},
		{"binary+cache", bin.Bytes(), true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			h := newHandle(tc.cache)
			src := bytes.NewReader(tc.data)
			if _, err := Run(h, src, io.Discard); err != nil { // warm
				b.Fatal(err)
			}
			var packets, allocs, p50, p99 int64
			b.SetBytes(int64(len(tc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.Reset(tc.data)
				st, err := Run(h, src, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				packets += st.Packets
				allocs += st.Allocs
				p50, p99 = st.BatchP50Ns, st.BatchP99Ns
			}
			b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pps")
			b.ReportMetric(float64(allocs)/float64(packets), "allocs_pkt")
			// Per-batch latency quantiles of the last pass (log2-bucket
			// estimates from the pipeline's own histogram).
			b.ReportMetric(float64(p50), "p50_ns")
			b.ReportMetric(float64(p99), "p99_ns")
		})
	}
}
