package hicuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rule"
)

// Property: for arbitrary small random rulesets (shapes the ClassBench
// generator never produces — duplicates-modulo-one-field, nested ranges,
// all-wildcard sets), the tree agrees with the linear scan.
func TestQuickRandomRulesetsAgreeWithLinear(t *testing.T) {
	f := func(seed int64, nRules uint8, sip, dip uint32, sp, dp uint16, pr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRules%50) + 1
		rs := make(rule.RuleSet, 0, n)
		for i := 0; i < n; i++ {
			loS := uint32(rng.Intn(65536))
			hiS := loS + uint32(rng.Intn(int(65536-loS)))
			loD := uint32(rng.Intn(65536))
			hiD := loD + uint32(rng.Intn(int(65536-loD)))
			rs = append(rs, rule.New(i,
				rng.Uint32(), rng.Intn(33), rng.Uint32(), rng.Intn(33),
				rule.Range{Lo: loS, Hi: hiS}, rule.Range{Lo: loD, Hi: hiD},
				uint8(rng.Intn(256)), rng.Intn(3) == 0))
		}
		tr, err := Build(rs, Config{Binth: 1 + rng.Intn(8), Spfac: 1 + rng.Float64()*6})
		if err != nil {
			return false
		}
		probe := rule.Packet{SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: pr}
		if tr.Classify(probe) != rs.Match(probe) {
			return false
		}
		// A packet inside a random rule must resolve identically too.
		r := &rs[rng.Intn(n)]
		inside := rule.Packet{
			SrcIP:   r.F[rule.DimSrcIP].Hi,
			DstIP:   r.F[rule.DimDstIP].Lo,
			SrcPort: uint16(r.F[rule.DimSrcPort].Hi),
			DstPort: uint16(r.F[rule.DimDstPort].Lo),
			Proto:   uint8(r.F[rule.DimProto].Hi),
		}
		return tr.Classify(inside) == rs.Match(inside)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAllWildcardRuleset(t *testing.T) {
	// Degenerate: every rule identical wildcard — tree must be a single
	// leaf and return the first rule for everything.
	rs := rule.RuleSet{}
	for i := 0; i < 10; i++ {
		r := rule.New(i, 0, 0, 0, 0, rule.FullRange(rule.DimSrcPort), rule.FullRange(rule.DimDstPort), 0, true)
		// Perturb one port bound so rules are distinct but overlapping.
		r.F[rule.DimSrcPort] = rule.Range{Lo: 0, Hi: uint32(65535 - i)}
		rs = append(rs, r)
	}
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := rule.Packet{SrcPort: 100}
	if got := tr.Classify(p); got != 0 {
		t.Errorf("got %d, want 0 (highest priority of overlapping rules)", got)
	}
}
