// Package hicuts implements the original (software) HiCuts decision-tree
// packet classification algorithm of Gupta & McKeown, as described in §2.1
// of the paper. It is one of the two software baselines the hardware
// accelerator is compared against.
//
// HiCuts views each rule as a hypercube in the 5-dimensional space of
// packet header fields and recursively cuts that space along one dimension
// at a time into equal-width sub-regions until no region holds more than
// binth rules. The number of cuts np at an internal node starts at 2 and
// doubles while the space measure permits (paper Eq. 1):
//
//	spfac * rules(node)  >=  sum(rules(child)) + np
//
// The dimension-selection heuristic is the one the paper states it uses:
// for each dimension record the largest number of rules landing in any
// child and pick the dimension minimizing that number.
//
// Children holding identical rule sets are merged and empty children are
// removed, as in the original algorithm.
package hicuts

import (
	"fmt"

	"repro/internal/rule"
)

// Config holds the HiCuts tuning parameters.
type Config struct {
	// Binth is the leaf threshold: regions with at most Binth rules
	// become leaves. The paper's worked example (Fig. 1) uses 3.
	Binth int
	// Spfac is the space factor of Eq. 1 trading memory for depth. The
	// paper's tables use 4.
	Spfac float64
	// MaxDepth caps recursion as a safety net (0 = default 64).
	MaxDepth int
}

// DefaultConfig returns the configuration used by the paper's tables
// (spfac = 4) with a binth of 16.
func DefaultConfig() Config { return Config{Binth: 16, Spfac: 4} }

func (c *Config) sanitize() {
	if c.Binth <= 0 {
		c.Binth = 16
	}
	if c.Spfac <= 0 {
		c.Spfac = 4
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 64
	}
}

// Node is one decision-tree node.
type Node struct {
	// Leaf nodes carry the IDs of rules to linear-search, in priority
	// order. Internal nodes carry the cut description and children.
	Leaf  bool
	Rules []int32 // rule IDs (leaf only)

	Dim      int     // cut dimension (internal only)
	NumCuts  int     // number of equal-width cuts (internal only)
	Lo, Hi   uint32  // region bounds along Dim at this node
	Children []*Node // len == NumCuts; nil entries are empty regions

	addr uint32 // synthetic byte address for the memory/cache model
}

// BuildStats counts the work done while constructing the tree; the SA-1100
// energy model converts these counts into cycles and Joules (Table 3).
type BuildStats struct {
	Nodes           int   // nodes created (internal + leaf)
	Internal        int   // internal nodes
	Leaves          int   // leaf nodes
	MaxDepth        int   // deepest leaf
	CutEvaluations  int64 // candidate (dim, np) evaluations
	RuleChildOps    int64 // rule-to-child interval computations
	RulePushes      int64 // rule appends into child lists (replication work)
	MemoryBytes     int   // software structure size incl. stored ruleset
	ReplicatedRules int64 // total rule references in leaves
}

// Tree is a built HiCuts classifier.
type Tree struct {
	Root  *Node
	cfg   Config
	rules rule.RuleSet
	stats BuildStats

	// leafCache deduplicates leaves with identical rule lists (the safe
	// form of the paper's "merge child nodes with the same set of
	// rules": a leaf's behaviour depends only on its rule list, whereas
	// merging internal nodes across different regions can misroute).
	leafCache map[string]*Node
}

// Build constructs the HiCuts decision tree for rs.
func Build(rs rule.RuleSet, cfg Config) (*Tree, error) {
	cfg.sanitize()
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("hicuts: %w", err)
	}
	t := &Tree{cfg: cfg, rules: rs, leafCache: make(map[string]*Node)}
	ids := make([]int32, len(rs))
	for i := range rs {
		ids[i] = int32(i)
	}
	region := fullRegion()
	t.Root = t.build(ids, region, 0)
	t.layout()
	return t, nil
}

func fullRegion() [rule.NumDims]rule.Range {
	var reg [rule.NumDims]rule.Range
	for d := 0; d < rule.NumDims; d++ {
		reg[d] = rule.FullRange(d)
	}
	return reg
}

func (t *Tree) build(ids []int32, region [rule.NumDims]rule.Range, depth int) *Node {
	if depth > t.stats.MaxDepth {
		t.stats.MaxDepth = depth
	}
	if len(ids) <= t.cfg.Binth || depth >= t.cfg.MaxDepth {
		return t.makeLeaf(ids)
	}
	dim, np := t.chooseCut(ids, region)
	if np < 2 {
		return t.makeLeaf(ids)
	}
	node := &Node{Dim: dim, NumCuts: np, Lo: region[dim].Lo, Hi: region[dim].Hi}
	t.stats.Nodes++
	t.stats.Internal++

	childIDs := t.distribute(ids, region[dim], dim, np)
	// No progress: every child got every rule; cutting is useless.
	progress := false
	for _, c := range childIDs {
		if len(c) < len(ids) {
			progress = true
			break
		}
	}
	if !progress {
		t.stats.Nodes--
		t.stats.Internal--
		return t.makeLeaf(ids)
	}

	node.Children = make([]*Node, np)
	for i, c := range childIDs {
		if len(c) == 0 {
			continue // empty child removed
		}
		childRegion := region
		childRegion[dim] = cutInterval(region[dim], np, i)
		node.Children[i] = t.build(c, childRegion, depth+1)
	}
	return node
}

func (t *Tree) makeLeaf(ids []int32) *Node {
	key := idsKey(ids)
	if l, ok := t.leafCache[key]; ok {
		return l
	}
	t.stats.Nodes++
	t.stats.Leaves++
	t.stats.ReplicatedRules += int64(len(ids))
	l := &Node{Leaf: true, Rules: ids}
	t.leafCache[key] = l
	return l
}

// cutInterval returns child i's sub-interval when r is cut into np
// equal-width pieces. Widths are rounded up so the last child may be
// narrower.
func cutInterval(r rule.Range, np, i int) rule.Range {
	size := r.Size()
	width := (size + uint64(np) - 1) / uint64(np)
	lo := uint64(r.Lo) + uint64(i)*width
	hi := lo + width - 1
	if hi > uint64(r.Hi) {
		hi = uint64(r.Hi)
	}
	return rule.Range{Lo: uint32(lo), Hi: uint32(hi)}
}

// childSpan returns the inclusive child-index interval [c1,c2] that rule
// range f occupies when region r is cut into np pieces, or ok=false when f
// does not intersect r.
func childSpan(f, r rule.Range, np int) (c1, c2 int, ok bool) {
	if !f.Overlaps(r) {
		return 0, 0, false
	}
	size := r.Size()
	width := (size + uint64(np) - 1) / uint64(np)
	lo := f.Lo
	if lo < r.Lo {
		lo = r.Lo
	}
	hi := f.Hi
	if hi > r.Hi {
		hi = r.Hi
	}
	c1 = int((uint64(lo) - uint64(r.Lo)) / width)
	c2 = int((uint64(hi) - uint64(r.Lo)) / width)
	if c2 >= np {
		c2 = np - 1
	}
	return c1, c2, true
}

// chooseCut implements the paper's heuristics: for each dimension compute
// np by doubling from 2 under Eq. 1, then pick the dimension whose cut
// yields the smallest maximum child population.
func (t *Tree) chooseCut(ids []int32, region [rule.NumDims]rule.Range) (dim, np int) {
	bestDim, bestNp, bestMax := -1, 0, len(ids)+1
	n := float64(len(ids))
	for d := 0; d < rule.NumDims; d++ {
		r := region[d]
		if r.Size() < 2 {
			continue
		}
		cand := t.growCuts(ids, r, d, n)
		if cand < 2 {
			continue
		}
		maxChild := t.maxChildCount(ids, r, d, cand)
		t.stats.CutEvaluations++
		if maxChild < bestMax || (maxChild == bestMax && cand < bestNp) {
			bestDim, bestNp, bestMax = d, cand, maxChild
		}
	}
	if bestDim < 0 {
		return -1, 0
	}
	// A cut that cannot separate anything is useless.
	if bestMax >= len(ids) {
		return -1, 0
	}
	return bestDim, bestNp
}

// growCuts doubles np from 2 while Eq. 1 holds and np does not exceed the
// region size.
func (t *Tree) growCuts(ids []int32, r rule.Range, d int, n float64) int {
	maxNp := 1
	for uint64(maxNp) < r.Size() && maxNp < 1<<16 {
		maxNp <<= 1
	}
	np := 2
	if np > maxNp {
		return 0
	}
	for {
		next := np * 2
		if next > maxNp {
			return np
		}
		sm := t.spaceMeasure(ids, r, d, next)
		t.stats.CutEvaluations++
		if float64(sm) > t.cfg.Spfac*n {
			return np
		}
		np = next
	}
}

// spaceMeasure computes sum(rules per child) + np for a candidate cut.
func (t *Tree) spaceMeasure(ids []int32, r rule.Range, d, np int) int64 {
	var total int64
	for _, id := range ids {
		c1, c2, ok := childSpan(t.rules[id].F[d], r, np)
		t.stats.RuleChildOps++
		if ok {
			total += int64(c2 - c1 + 1)
		}
	}
	return total + int64(np)
}

// maxChildCount returns the largest child population for a candidate cut,
// computed with a difference array in O(n + np).
func (t *Tree) maxChildCount(ids []int32, r rule.Range, d, np int) int {
	diff := make([]int32, np+1)
	for _, id := range ids {
		c1, c2, ok := childSpan(t.rules[id].F[d], r, np)
		t.stats.RuleChildOps++
		if ok {
			diff[c1]++
			diff[c2+1]--
		}
	}
	maxC, cur := 0, int32(0)
	for i := 0; i < np; i++ {
		cur += diff[i]
		if int(cur) > maxC {
			maxC = int(cur)
		}
	}
	return maxC
}

// distribute builds the per-child rule-ID lists for the chosen cut.
func (t *Tree) distribute(ids []int32, r rule.Range, d, np int) [][]int32 {
	children := make([][]int32, np)
	for _, id := range ids {
		c1, c2, ok := childSpan(t.rules[id].F[d], r, np)
		t.stats.RuleChildOps++
		if !ok {
			continue
		}
		for c := c1; c <= c2; c++ {
			children[c] = append(children[c], id)
			t.stats.RulePushes++
		}
	}
	return children
}

func idsKey(ids []int32) string {
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Software memory accounting, used by Table 2. Sizes model a compact C
// implementation: an internal node stores a small header plus one 4-byte
// child pointer per cut; a leaf stores a header plus one 4-byte rule
// pointer per rule; the ruleset itself is stored once at 20 bytes per rule
// (4-byte src/dst addresses plus prefix bytes, 2-byte port bounds, 1-byte
// protocol/flag pair).
const (
	internalHeaderBytes = 16
	leafHeaderBytes     = 8
	pointerBytes        = 4
	softwareRuleBytes   = 20
)

// layout assigns synthetic byte addresses to nodes (for the cache model)
// and fills in MemoryBytes.
func (t *Tree) layout() {
	var next uint32
	var walk func(n *Node)
	seen := map[*Node]bool{}
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		n.addr = next
		if n.Leaf {
			next += uint32(leafHeaderBytes + pointerBytes*len(n.Rules))
			return
		}
		next += uint32(internalHeaderBytes + pointerBytes*len(n.Children))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	t.stats.MemoryBytes = int(next) + len(t.rules)*softwareRuleBytes
}

// Stats returns the build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// Rules returns the ruleset the tree classifies.
func (t *Tree) Rules() rule.RuleSet { return t.rules }

// Config returns the configuration the tree was built with.
func (t *Tree) Config() Config { return t.cfg }

// Classify walks the tree for packet p and returns the matching rule ID or
// -1. It is equivalent to ClassifyTraced with a nil tracer.
func (t *Tree) Classify(p rule.Packet) int {
	m, _ := t.ClassifyTraced(p, nil)
	return m
}

// ClassifyTraced classifies p, reporting every memory access to trace (node
// reads and rule reads with synthetic addresses) and returning the match
// and the number of memory accesses performed. The access count is the
// quantity reported for the software algorithms in paper Table 8.
func (t *Tree) ClassifyTraced(p rule.Packet, trace func(addr, size uint32)) (match, accesses int) {
	n := t.Root
	for n != nil && !n.Leaf {
		accesses++
		if trace != nil {
			trace(n.addr, internalHeaderBytes)
		}
		r := rule.Range{Lo: n.Lo, Hi: n.Hi}
		v := p.Field(n.Dim)
		if !r.Contains(v) {
			return -1, accesses
		}
		size := r.Size()
		width := (size + uint64(n.NumCuts) - 1) / uint64(n.NumCuts)
		c := int((uint64(v) - uint64(n.Lo)) / width)
		if c >= len(n.Children) {
			c = len(n.Children) - 1
		}
		// One more access for the child pointer slot.
		accesses++
		if trace != nil {
			trace(n.addr+uint32(internalHeaderBytes+pointerBytes*c), pointerBytes)
		}
		n = n.Children[c]
	}
	if n == nil {
		return -1, accesses
	}
	accesses++ // leaf header
	if trace != nil {
		trace(n.addr, leafHeaderBytes)
	}
	for i, id := range n.Rules {
		accesses++
		if trace != nil {
			trace(n.addr+uint32(leafHeaderBytes+pointerBytes*i), softwareRuleBytes)
		}
		if t.rules[id].Matches(p) {
			return int(id), accesses
		}
	}
	return -1, accesses
}

// WorstCaseAccesses returns the maximum memory accesses any packet can
// incur: the deepest path's internal node + pointer reads plus a full scan
// of the largest leaf on that path (paper Table 8, software columns).
func (t *Tree) WorstCaseAccesses() int {
	var walk func(n *Node, pathAccesses int) int
	memo := map[*Node]int{}
	walk = func(n *Node, pathAccesses int) int {
		if n == nil {
			return pathAccesses
		}
		if n.Leaf {
			return pathAccesses + 1 + len(n.Rules)
		}
		if v, ok := memo[n]; ok {
			return pathAccesses + v
		}
		worstBelow := 0
		for _, c := range n.Children {
			if w := walk(c, 2); w > worstBelow { // 2 = node header + pointer
				worstBelow = w
			}
		}
		memo[n] = worstBelow
		return pathAccesses + worstBelow
	}
	return walk(t.Root, 0) // root contributes via its own 2 accesses
}

// Depth returns the maximum depth of the tree (root = depth 0).
func (t *Tree) Depth() int { return t.stats.MaxDepth }

// NumRules returns the size of the ruleset the tree was built from.
func (t *Tree) NumRules() int { return len(t.rules) }
