package hicuts

import (
	"math/rand"
	"testing"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func table1Rules() rule.RuleSet {
	// The paper's Table 1: 10 rules over five 8-bit fields.
	specs := [][2][rule.NumDims]uint8{
		{{128, 15, 40, 180, 120}, {240, 15, 40, 180, 140}},
		{{90, 0, 0, 190, 130}, {100, 80, 200, 200, 132}},
		{{130, 60, 0, 180, 133}, {255, 140, 60, 180, 135}},
		{{90, 200, 40, 180, 136}, {92, 200, 40, 180, 138}},
		{{130, 60, 40, 190, 60}, {255, 140, 40, 200, 63}},
		{{140, 60, 0, 0, 140}, {150, 140, 255, 255, 255}},
		{{160, 80, 0, 0, 0}, {165, 80, 255, 255, 80}},
		{{48, 0, 40, 0, 0}, {50, 80, 40, 255, 10}},
		{{26, 50, 40, 180, 30}, {36, 50, 40, 180, 40}},
		{{40, 40, 40, 0, 0}, {40, 70, 40, 255, 60}},
	}
	rs := make(rule.RuleSet, len(specs))
	for i, s := range specs {
		rs[i] = rule.FromBytes(i, s[0], s[1])
	}
	return rs
}

func TestBuildEmpty(t *testing.T) {
	tr, err := Build(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Leaf {
		t.Error("empty ruleset should yield a leaf root")
	}
	if got := tr.Classify(rule.Packet{}); got != -1 {
		t.Errorf("Classify on empty set = %d, want -1", got)
	}
}

func TestBuildSingleRule(t *testing.T) {
	rs := rule.RuleSet{rule.New(0, 0x0A000000, 8, 0, 0,
		rule.FullRange(rule.DimSrcPort), rule.Range{Lo: 80, Hi: 80}, 6, false)}
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := rule.Packet{SrcIP: 0x0A123456, DstPort: 80, Proto: 6}
	if got := tr.Classify(in); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
	out := in
	out.Proto = 17
	if got := tr.Classify(out); got != -1 {
		t.Errorf("Classify = %d, want -1", got)
	}
}

func TestTable1TreeRespectsB3(t *testing.T) {
	rs := table1Rules()
	tr, err := Build(rs, Config{Binth: 3, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf must hold at most binth rules (the ruleset is separable).
	forEachNode(tr.Root, func(n *Node) {
		if n.Leaf && len(n.Rules) > 3 {
			t.Errorf("leaf with %d rules exceeds binth 3", len(n.Rules))
		}
	})
	if tr.Root.Leaf {
		t.Error("10-rule set with binth 3 must cut at the root")
	}
}

func TestTable1ClassificationMatchesLinear(t *testing.T) {
	rs := table1Rules()
	tr, err := Build(rs, Config{Binth: 3, Spfac: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		p := rule.PacketFromBytes([rule.NumDims]uint8{
			uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)),
			uint8(rng.Intn(256)), uint8(rng.Intn(256))})
		if got, want := tr.Classify(p), rs.Match(p); got != want {
			t.Fatalf("packet %d (%+v): tree=%d linear=%d", i, p, got, want)
		}
	}
}

func TestClassifyAgreesWithLinearAllProfiles(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1(), classbench.IPC1()} {
		rs := classbench.Generate(prof, 400, 9)
		tr, err := Build(rs, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		trace := classbench.GenerateTrace(rs, 3000, 10)
		for i, p := range trace {
			if got, want := tr.Classify(p), rs.Match(p); got != want {
				t.Fatalf("%s packet %d: tree=%d linear=%d", prof.Name, i, got, want)
			}
		}
	}
}

func TestLeavesRespectBinthOrNoProgress(t *testing.T) {
	rs := classbench.Generate(classbench.FW1(), 600, 3)
	cfg := DefaultConfig()
	tr, err := Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// fw1 has heavily overlapping wildcard rules, so some leaves may
	// legitimately exceed binth when no cut separates them; but they must
	// never exceed the count of rules that pairwise overlap (sanity: not
	// the whole ruleset).
	forEachNode(tr.Root, func(n *Node) {
		if n.Leaf && len(n.Rules) >= len(rs) {
			t.Errorf("leaf holds the entire ruleset (%d rules): tree did not cut", len(n.Rules))
		}
	})
}

func TestStatsPopulated(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 4)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes <= 0 || s.Internal <= 0 || s.Leaves <= 0 {
		t.Errorf("node counts not populated: %+v", s)
	}
	if s.MemoryBytes <= len(rs)*softwareRuleBytes {
		t.Errorf("memory %d should exceed bare ruleset storage", s.MemoryBytes)
	}
	if s.CutEvaluations == 0 || s.RuleChildOps == 0 || s.RulePushes == 0 {
		t.Errorf("work counters not populated: %+v", s)
	}
	if s.MaxDepth < 1 {
		t.Errorf("depth %d", s.MaxDepth)
	}
	if tr.NumRules() != 500 {
		t.Errorf("NumRules = %d", tr.NumRules())
	}
}

func TestWorstCaseAccessesBoundsObserved(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 300, 6)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	worst := tr.WorstCaseAccesses()
	trace := classbench.GenerateTrace(rs, 2000, 6)
	maxObserved := 0
	for _, p := range trace {
		_, acc := tr.ClassifyTraced(p, nil)
		if acc > maxObserved {
			maxObserved = acc
		}
	}
	if maxObserved > worst {
		t.Errorf("observed %d accesses exceeds declared worst case %d", maxObserved, worst)
	}
	if worst <= 0 {
		t.Errorf("worst case %d", worst)
	}
}

func TestClassifyTracedEmitsAccesses(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 200, 2)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := classbench.GenerateTrace(rs, 1, 3)[0]
	var traced int
	_, acc := tr.ClassifyTraced(p, func(addr, size uint32) { traced++ })
	if traced != acc {
		t.Errorf("trace callback fired %d times, access count %d", traced, acc)
	}
	if acc == 0 {
		t.Error("no accesses recorded")
	}
}

func TestSpfacTradesMemoryForDepth(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 800, 5)
	small, err := Build(rs, Config{Binth: 16, Spfac: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(rs, Config{Binth: 16, Spfac: 8})
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats().MemoryBytes < small.Stats().MemoryBytes {
		t.Errorf("spfac=8 memory %d < spfac=1.5 memory %d; larger spfac should allow more cuts",
			big.Stats().MemoryBytes, small.Stats().MemoryBytes)
	}
}

func TestCutInterval(t *testing.T) {
	r := rule.Range{Lo: 0, Hi: 255}
	if got := cutInterval(r, 4, 0); got != (rule.Range{Lo: 0, Hi: 63}) {
		t.Errorf("child 0 = %+v", got)
	}
	if got := cutInterval(r, 4, 3); got != (rule.Range{Lo: 192, Hi: 255}) {
		t.Errorf("child 3 = %+v", got)
	}
	// Full 32-bit range must not overflow.
	full := rule.FullRange(rule.DimSrcIP)
	if got := cutInterval(full, 2, 1); got != (rule.Range{Lo: 0x80000000, Hi: 0xFFFFFFFF}) {
		t.Errorf("32-bit child 1 = %+v", got)
	}
}

func TestChildSpan(t *testing.T) {
	r := rule.Range{Lo: 0, Hi: 255}
	c1, c2, ok := childSpan(rule.Range{Lo: 60, Hi: 130}, r, 4)
	if !ok || c1 != 0 || c2 != 2 {
		t.Errorf("got (%d,%d,%v), want (0,2,true)", c1, c2, ok)
	}
	if _, _, ok := childSpan(rule.Range{Lo: 300, Hi: 400}, r, 4); ok {
		t.Error("non-overlapping range reported as overlapping")
	}
	// Range clipped to region.
	c1, c2, ok = childSpan(rule.Range{Lo: 0, Hi: 1000}, rule.Range{Lo: 128, Hi: 255}, 2)
	if !ok || c1 != 0 || c2 != 1 {
		t.Errorf("clipped span = (%d,%d,%v)", c1, c2, ok)
	}
}

func TestLeafDeduplication(t *testing.T) {
	rs := classbench.Generate(classbench.ACL1(), 500, 8)
	tr, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Count leaf references vs distinct leaves.
	refs, distinct := 0, map[*Node]bool{}
	var walk func(n *Node)
	seen := map[*Node]bool{}
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Leaf {
			refs++
			distinct[n] = true
			return
		}
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	if len(distinct) > refs {
		t.Fatal("impossible: more distinct leaves than references")
	}
	if tr.Stats().Leaves != len(distinct) {
		t.Errorf("stats.Leaves=%d distinct=%d", tr.Stats().Leaves, len(distinct))
	}
}

func TestDeterministicBuild(t *testing.T) {
	rs := classbench.Generate(classbench.IPC1(), 300, 12)
	a, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(rs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("two builds of the same input differ:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

func forEachNode(root *Node, fn func(*Node)) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		fn(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}
