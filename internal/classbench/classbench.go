// Package classbench generates synthetic 5-tuple rulesets and packet
// traces with the structural statistics of the ClassBench seed filter sets
// used by the paper (acl1, fw1, ipc1) plus matching header traces.
//
// The paper evaluates on rulesets and traces downloaded from the
// Washington University packet classification evaluation page; those
// artifacts are not redistributable, so this package is the substitution
// documented in DESIGN.md: a deterministic, seeded generator whose three
// profiles mimic the properties that drive every result in the paper:
//
//   - acl1: access-control lists — destination prefixes are long and drawn
//     from a modest number of subtrees, destination ports are mostly exact
//     well-known services, very few wildcards. Trees stay shallow and
//     memory scales roughly linearly (paper Table 4, acl1 block).
//   - fw1: firewall rules — a large fraction of source/destination fields
//     are wildcards or very short prefixes and port fields are often the
//     ephemeral range. Wildcard rules replicate into every child cut, so
//     memory blows up at large sizes (paper Table 4, fw1 block).
//   - ipc1: IP-chain style sets between the two extremes.
//
// Generation is fully deterministic given (profile, size, seed).
package classbench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rule"
)

// PortStyle enumerates the port-field shapes seen in ClassBench sets.
type PortStyle int

const (
	// PortWildcard is the full 0-65535 range.
	PortWildcard PortStyle = iota
	// PortExactWellKnown is an exact match on a well-known service port.
	PortExactWellKnown
	// PortExactEphemeral is an exact match on a random high port.
	PortExactEphemeral
	// PortHighRange is the ephemeral range 1024-65535.
	PortHighRange
	// PortLowRange is the privileged range 0-1023.
	PortLowRange
	// PortArbitraryRange is a random contiguous range.
	PortArbitraryRange
)

var wellKnownPorts = []uint16{20, 21, 22, 23, 25, 53, 80, 110, 119, 123, 135, 137, 139, 143, 161, 179, 389, 443, 445, 465, 514, 515, 587, 636, 993, 995, 1080, 1433, 1521, 3128, 3306, 3389, 5060, 8000, 8080}

// weighted is a (value, weight) pair for discrete sampling.
type weighted[T any] struct {
	v T
	w float64
}

func sample[T any](rng *rand.Rand, items []weighted[T]) T {
	total := 0.0
	for _, it := range items {
		total += it.w
	}
	x := rng.Float64() * total
	for _, it := range items {
		if x < it.w {
			return it.v
		}
		x -= it.w
	}
	return items[len(items)-1].v
}

// Profile holds the structural parameters of one synthetic seed set.
type Profile struct {
	// Name identifies the profile (acl1, fw1, ipc1).
	Name string
	// SrcLens / DstLens are prefix-length distributions. Length 0 is a
	// wildcard field.
	SrcLens, DstLens []weighted[int]
	// SrcPools / DstPools set how many distinct prefix subtrees the
	// addresses are drawn from; smaller pools mean more sharing and
	// overlap between rules.
	SrcPools, DstPools int
	// SrcPorts / DstPorts are port-style distributions.
	SrcPorts, DstPorts []weighted[PortStyle]
	// Protos is the protocol distribution; 256 encodes a wildcard.
	Protos []weighted[int]
}

// ACL1 mimics the acl1 ClassBench seed: long destination prefixes, exact
// destination service ports, almost no wildcards.
func ACL1() Profile {
	return Profile{
		Name: "acl1",
		SrcLens: []weighted[int]{
			{0, 2}, {8, 2}, {16, 8}, {21, 6}, {24, 32}, {27, 10}, {28, 10}, {30, 10}, {32, 20},
		},
		DstLens: []weighted[int]{
			{0, 1}, {16, 4}, {21, 6}, {24, 34}, {27, 10}, {28, 12}, {30, 8}, {32, 25},
		},
		SrcPools: 24,
		DstPools: 16,
		SrcPorts: []weighted[PortStyle]{
			{PortWildcard, 80}, {PortHighRange, 12}, {PortExactWellKnown, 8},
		},
		DstPorts: []weighted[PortStyle]{
			{PortExactWellKnown, 58}, {PortWildcard, 18}, {PortHighRange, 10},
			{PortArbitraryRange, 8}, {PortExactEphemeral, 6},
		},
		Protos: []weighted[int]{{6, 62}, {17, 22}, {1, 6}, {256, 10}},
	}
}

// FW1 mimics the fw1 ClassBench seed: many wildcard address fields and
// range-style ports. The wildcard density is what makes decision-tree
// memory explode at large sizes in paper Table 4.
func FW1() Profile {
	return Profile{
		Name: "fw1",
		SrcLens: []weighted[int]{
			{0, 12}, {8, 6}, {16, 14}, {21, 8}, {24, 22}, {28, 10}, {32, 28},
		},
		DstLens: []weighted[int]{
			{0, 10}, {8, 6}, {16, 14}, {21, 8}, {24, 24}, {28, 10}, {32, 28},
		},
		SrcPools: 12,
		DstPools: 12,
		SrcPorts: []weighted[PortStyle]{
			{PortWildcard, 62}, {PortHighRange, 22}, {PortExactWellKnown, 8}, {PortArbitraryRange, 8},
		},
		DstPorts: []weighted[PortStyle]{
			{PortWildcard, 34}, {PortExactWellKnown, 26}, {PortHighRange, 22},
			{PortLowRange, 8}, {PortArbitraryRange, 10},
		},
		Protos: []weighted[int]{{6, 46}, {17, 26}, {1, 6}, {47, 4}, {50, 4}, {256, 14}},
	}
}

// IPC1 mimics the ipc1 ClassBench seed: intermediate wildcard density.
func IPC1() Profile {
	return Profile{
		Name: "ipc1",
		SrcLens: []weighted[int]{
			{0, 5}, {8, 4}, {16, 14}, {21, 8}, {24, 30}, {27, 8}, {28, 8}, {30, 6}, {32, 17},
		},
		DstLens: []weighted[int]{
			{0, 4}, {8, 4}, {16, 14}, {21, 8}, {24, 32}, {27, 8}, {28, 8}, {30, 6}, {32, 16},
		},
		SrcPools: 16,
		DstPools: 14,
		SrcPorts: []weighted[PortStyle]{
			{PortWildcard, 66}, {PortHighRange, 14}, {PortExactWellKnown, 12}, {PortArbitraryRange, 8},
		},
		DstPorts: []weighted[PortStyle]{
			{PortExactWellKnown, 40}, {PortWildcard, 26}, {PortHighRange, 14},
			{PortArbitraryRange, 12}, {PortExactEphemeral, 8},
		},
		Protos: []weighted[int]{{6, 52}, {17, 26}, {1, 8}, {256, 14}},
	}
}

// ProfileByName resolves a profile name; it accepts acl1, fw1 and ipc1.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "acl1":
		return ACL1(), nil
	case "fw1":
		return FW1(), nil
	case "ipc1":
		return IPC1(), nil
	}
	return Profile{}, fmt.Errorf("classbench: unknown profile %q (want acl1, fw1 or ipc1)", name)
}

// Generate produces n unique rules for the given profile, deterministically
// derived from seed. Rule IDs run 0..n-1 in priority order.
func Generate(p Profile, n int, seed int64) rule.RuleSet {
	rng := rand.New(rand.NewSource(seed ^ int64(len(p.Name))<<32))
	// Real filter sets diversify as they grow: a 25k-rule set draws its
	// prefixes from far more subtrees than a 60-rule set. Scale the pool
	// count with n so top-bit diversity (what decision-tree cuts can
	// discriminate on) grows the way ClassBench seeds do.
	srcPool := makePools(rng, p.SrcPools+n/24)
	dstPool := makePools(rng, p.DstPools+n/28)

	seen := make(map[[rule.NumDims]rule.Range]bool, n)
	rs := make(rule.RuleSet, 0, n)
	attempts := 0
	for len(rs) < n && attempts < 200*n+10000 {
		attempts++
		r := genRule(rng, p, srcPool, dstPool, len(rs))
		if seen[r.F] {
			continue
		}
		seen[r.F] = true
		rs = append(rs, r)
	}
	// Near-exhaustion fallback: diversify by widening pools.
	for len(rs) < n {
		r := genRule(rng, p, makePools(rng, 4096), makePools(rng, 4096), len(rs))
		if seen[r.F] {
			continue
		}
		seen[r.F] = true
		rs = append(rs, r)
	}
	return rs
}

// makePools creates k random /8-/16 subtree anchors addresses are grown
// from, giving the prefix-sharing structure of real filter sets.
func makePools(rng *rand.Rand, k int) []uint32 {
	pools := make([]uint32, k)
	for i := range pools {
		pools[i] = rng.Uint32() &^ 0xFFFF // fixed /16 anchor
	}
	return pools
}

func genRule(rng *rand.Rand, p Profile, srcPool, dstPool []uint32, id int) rule.Rule {
	srcLen := sample(rng, p.SrcLens)
	dstLen := sample(rng, p.DstLens)
	src := growAddr(rng, srcPool, srcLen)
	dst := growAddr(rng, dstPool, dstLen)
	proto := sample(rng, p.Protos)
	return rule.New(id,
		src, srcLen, dst, dstLen,
		portRange(rng, sample(rng, p.SrcPorts)),
		portRange(rng, sample(rng, p.DstPorts)),
		uint8(proto), proto == 256)
}

// growAddr picks a pool anchor and randomizes the bits below /16 so that
// long prefixes cluster inside shared subtrees.
func growAddr(rng *rand.Rand, pool []uint32, length int) uint32 {
	if length == 0 {
		return 0
	}
	anchor := pool[rng.Intn(len(pool))]
	if length <= 16 {
		return anchor
	}
	return anchor | (rng.Uint32() & 0xFFFF)
}

func portRange(rng *rand.Rand, style PortStyle) rule.Range {
	switch style {
	case PortWildcard:
		return rule.Range{Lo: 0, Hi: 65535}
	case PortExactWellKnown:
		p := uint32(wellKnownPorts[rng.Intn(len(wellKnownPorts))])
		return rule.Range{Lo: p, Hi: p}
	case PortExactEphemeral:
		p := uint32(1024 + rng.Intn(65536-1024))
		return rule.Range{Lo: p, Hi: p}
	case PortHighRange:
		return rule.Range{Lo: 1024, Hi: 65535}
	case PortLowRange:
		return rule.Range{Lo: 0, Hi: 1023}
	case PortArbitraryRange:
		lo := uint32(rng.Intn(65000))
		hi := lo + uint32(rng.Intn(int(65535-lo))+1)
		return rule.Range{Lo: lo, Hi: hi}
	}
	panic("classbench: unknown port style")
}

// GenerateTrace builds an n-packet header trace for rs, ClassBench-style:
// most packets are sampled inside randomly chosen rules (with a Pareto-like
// skew so some rules are hot, as in real traffic), and a small fraction are
// uniform random headers that may miss every rule.
func GenerateTrace(rs rule.RuleSet, n int, seed int64) []rule.Packet {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	trace := make([]rule.Packet, 0, n)
	if len(rs) == 0 {
		for i := 0; i < n; i++ {
			trace = append(trace, randomPacket(rng))
		}
		return trace
	}
	// Zipf-ish rule popularity: rule weight ~ 1/(rank+1).
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(len(rs)-1))
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			trace = append(trace, randomPacket(rng))
			continue
		}
		r := &rs[int(zipf.Uint64())]
		trace = append(trace, packetInRule(rng, r))
	}
	return trace
}

// GenerateFlowTrace builds an n-packet trace with flow-level temporal
// locality: the traffic is carried by a fixed population of `flows`
// distinct 5-tuple headers (each sampled the way GenerateTrace samples
// packets: mostly inside Zipf-popular rules, a few random misses), and
// packets arrive in trains — bursts of identical back-to-back headers
// with mean length `burst` — from Zipf-skewed flow popularity. This is
// the packet-train structure of real links (a handful of elephant flows
// plus a long tail of mice), the locality an exact-match flow cache
// exploits; GenerateTrace's per-packet sampling has none, so caches see
// near-zero reuse on it. flows <= 0 defaults to n/16 (min 16); burst <= 0
// defaults to 8. Generation is fully deterministic given the arguments.
func GenerateFlowTrace(rs rule.RuleSet, n, flows, burst int, seed int64) []rule.Packet {
	if flows <= 0 {
		flows = n / 16
		if flows < 16 {
			flows = 16
		}
	}
	if burst <= 0 {
		burst = 8
	}
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))

	// The flow population IS a GenerateTrace draw — one header per flow —
	// so the per-flow headers follow the same sampling policy (rule
	// popularity, miss fraction) and the two generators cannot drift
	// apart; only the arrival process differs.
	heads := GenerateTrace(rs, flows, seed)

	// Zipf-skewed flow popularity, emitted as trains: pick a flow, emit a
	// burst of identical headers (length uniform in [1, 2*burst-1], mean
	// `burst`), repeat. Trains of distinct flows interleave over time the
	// way packet trains on a shared link do.
	trace := make([]rule.Packet, 0, n)
	flowZipf := rand.NewZipf(rng, 1.2, 8, uint64(flows-1))
	for len(trace) < n {
		h := heads[int(flowZipf.Uint64())]
		train := 1 + rng.Intn(2*burst-1)
		if train > n-len(trace) {
			train = n - len(trace)
		}
		for i := 0; i < train; i++ {
			trace = append(trace, h)
		}
	}
	return trace
}

// packetInRule samples a header uniformly inside every field range of r.
func packetInRule(rng *rand.Rand, r *rule.Rule) rule.Packet {
	pick := func(d int) uint32 {
		f := r.F[d]
		span := f.Size()
		return f.Lo + uint32(rng.Int63n(int64(span)))
	}
	return rule.Packet{
		SrcIP:   pick(rule.DimSrcIP),
		DstIP:   pick(rule.DimDstIP),
		SrcPort: uint16(pick(rule.DimSrcPort)),
		DstPort: uint16(pick(rule.DimDstPort)),
		Proto:   uint8(pick(rule.DimProto)),
	}
}

func randomPacket(rng *rand.Rand) rule.Packet {
	return rule.Packet{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   uint8(rng.Intn(256)),
	}
}

// Stats summarizes structural statistics of a ruleset; used by tests to
// verify the profiles have the shapes the paper's discussion relies on.
type Stats struct {
	N                 int
	WildcardSrcFrac   float64 // fraction of rules with wildcard source IP
	WildcardDstFrac   float64 // fraction of rules with wildcard destination IP
	ExactDstPortFrac  float64
	WildcardAnyIPFrac float64 // wildcard in src or dst
	DistinctDstPrefix int
	DistinctSrcPrefix int
	DistinctDstPorts  int
}

// Measure computes Stats for rs.
func Measure(rs rule.RuleSet) Stats {
	var s Stats
	s.N = len(rs)
	srcSet := map[rule.Range]bool{}
	dstSet := map[rule.Range]bool{}
	dpSet := map[rule.Range]bool{}
	for i := range rs {
		r := &rs[i]
		ws := r.IsWildcard(rule.DimSrcIP)
		wd := r.IsWildcard(rule.DimDstIP)
		if ws {
			s.WildcardSrcFrac++
		}
		if wd {
			s.WildcardDstFrac++
		}
		if ws || wd {
			s.WildcardAnyIPFrac++
		}
		if f := r.F[rule.DimDstPort]; f.Lo == f.Hi {
			s.ExactDstPortFrac++
		}
		srcSet[r.F[rule.DimSrcIP]] = true
		dstSet[r.F[rule.DimDstIP]] = true
		dpSet[r.F[rule.DimDstPort]] = true
	}
	if s.N > 0 {
		s.WildcardSrcFrac /= float64(s.N)
		s.WildcardDstFrac /= float64(s.N)
		s.WildcardAnyIPFrac /= float64(s.N)
		s.ExactDstPortFrac /= float64(s.N)
	}
	s.DistinctSrcPrefix = len(srcSet)
	s.DistinctDstPrefix = len(dstSet)
	s.DistinctDstPorts = len(dpSet)
	return s
}

// PaperSizes returns the ruleset sizes used by the paper's tables for a
// given profile: Tables 2/3/6/7/8 use acl1 at six small sizes; Table 4 uses
// all three profiles at eight sizes up to ~25k.
func PaperSizes(table int, profile string) []int {
	switch table {
	case 2, 3, 6, 7, 8:
		return []int{60, 150, 500, 1000, 1600, 2191}
	case 4:
		last := map[string]int{"acl1": 24920, "fw1": 23087, "ipc1": 24274}[profile]
		if last == 0 {
			last = 25000
		}
		return []int{300, 1200, 2500, 5000, 10000, 15000, 20000, last}
	}
	return nil
}

// Table1 returns the paper's didactic 10-rule, five-8-bit-field ruleset
// (paper Table 1), widened to real field widths via rule.FromBytes. The
// decision trees of paper Figures 1-3 are built from it with binth 3.
func Table1() rule.RuleSet {
	specs := [][2][rule.NumDims]uint8{
		{{128, 15, 40, 180, 120}, {240, 15, 40, 180, 140}},
		{{90, 0, 0, 190, 130}, {100, 80, 200, 200, 132}},
		{{130, 60, 0, 180, 133}, {255, 140, 60, 180, 135}},
		{{90, 200, 40, 180, 136}, {92, 200, 40, 180, 138}},
		{{130, 60, 40, 190, 60}, {255, 140, 40, 200, 63}},
		{{140, 60, 0, 0, 140}, {150, 140, 255, 255, 255}},
		{{160, 80, 0, 0, 0}, {165, 80, 255, 255, 80}},
		{{48, 0, 40, 0, 0}, {50, 80, 40, 255, 10}},
		{{26, 50, 40, 180, 30}, {36, 50, 40, 180, 40}},
		{{40, 40, 40, 0, 0}, {40, 70, 40, 255, 60}},
	}
	rs := make(rule.RuleSet, len(specs))
	for i, s := range specs {
		rs[i] = rule.FromBytes(i, s[0], s[1])
	}
	return rs
}

// SortByPriority re-sorts rules by ID; useful after external manipulation.
func SortByPriority(rs rule.RuleSet) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}
