package classbench

import (
	"testing"

	"repro/internal/rule"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ACL1(), 200, 42)
	b := Generate(ACL1(), 200, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].F != b[i].F {
			t.Fatalf("rule %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	a := Generate(ACL1(), 100, 1)
	b := Generate(ACL1(), 100, 2)
	same := 0
	for i := range a {
		if a[i].F == b[i].F {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical rulesets")
	}
}

func TestGenerateExactCountAndUnique(t *testing.T) {
	for _, p := range []Profile{ACL1(), FW1(), IPC1()} {
		for _, n := range []int{1, 60, 500} {
			rs := Generate(p, n, 7)
			if len(rs) != n {
				t.Fatalf("%s: got %d rules, want %d", p.Name, len(rs), n)
			}
			if err := rs.Validate(); err != nil {
				t.Fatalf("%s: invalid ruleset: %v", p.Name, err)
			}
			seen := map[[rule.NumDims]rule.Range]bool{}
			for i := range rs {
				if seen[rs[i].F] {
					t.Fatalf("%s: duplicate rule %d", p.Name, i)
				}
				seen[rs[i].F] = true
			}
			for i := range rs {
				if rs[i].ID != i {
					t.Fatalf("%s: rule %d has ID %d", p.Name, i, rs[i].ID)
				}
			}
		}
	}
}

func TestProfileShapes(t *testing.T) {
	// The relative wildcard densities drive the paper's Table 4 memory
	// discussion: fw1 >> ipc1 > acl1.
	acl := Measure(Generate(ACL1(), 2000, 3))
	fw := Measure(Generate(FW1(), 2000, 3))
	ipc := Measure(Generate(IPC1(), 2000, 3))

	if !(fw.WildcardAnyIPFrac > ipc.WildcardAnyIPFrac) {
		t.Errorf("fw1 wildcard fraction %.3f should exceed ipc1 %.3f",
			fw.WildcardAnyIPFrac, ipc.WildcardAnyIPFrac)
	}
	if !(ipc.WildcardAnyIPFrac > acl.WildcardAnyIPFrac) {
		t.Errorf("ipc1 wildcard fraction %.3f should exceed acl1 %.3f",
			ipc.WildcardAnyIPFrac, acl.WildcardAnyIPFrac)
	}
	if fw.WildcardAnyIPFrac < 0.15 {
		t.Errorf("fw1 wildcard fraction %.3f too low to reproduce the fw1 blow-up", fw.WildcardAnyIPFrac)
	}
	if acl.ExactDstPortFrac < 0.4 {
		t.Errorf("acl1 exact dst-port fraction %.3f; expected mostly exact service ports", acl.ExactDstPortFrac)
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"acl1", "fw1", "ipc1"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("got profile %q, want %q", p.Name, name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestTraceMatchesMostly(t *testing.T) {
	rs := Generate(ACL1(), 300, 11)
	trace := GenerateTrace(rs, 2000, 11)
	if len(trace) != 2000 {
		t.Fatalf("trace length %d", len(trace))
	}
	hits := 0
	for _, p := range trace {
		if rs.Match(p) >= 0 {
			hits++
		}
	}
	// ~95% of packets are sampled inside a rule, so the hit rate must be
	// high (random packets can still hit wildcard-ish rules).
	if frac := float64(hits) / float64(len(trace)); frac < 0.85 {
		t.Errorf("trace hit rate %.3f too low", frac)
	}
}

func TestTraceDeterministic(t *testing.T) {
	rs := Generate(IPC1(), 100, 5)
	a := GenerateTrace(rs, 500, 9)
	b := GenerateTrace(rs, 500, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace packet %d differs between identical seeds", i)
		}
	}
}

func TestTraceEmptyRuleset(t *testing.T) {
	trace := GenerateTrace(nil, 50, 1)
	if len(trace) != 50 {
		t.Fatalf("trace length %d, want 50", len(trace))
	}
}

func TestPaperSizes(t *testing.T) {
	if got := PaperSizes(2, "acl1"); len(got) != 6 || got[5] != 2191 {
		t.Errorf("table 2 sizes = %v", got)
	}
	for _, profile := range []string{"acl1", "fw1", "ipc1"} {
		sizes := PaperSizes(4, profile)
		if len(sizes) != 8 {
			t.Errorf("table 4 %s sizes = %v", profile, sizes)
		}
		if sizes[len(sizes)-1] < 23000 {
			t.Errorf("table 4 %s final size %d too small", profile, sizes[len(sizes)-1])
		}
	}
	if PaperSizes(99, "acl1") != nil {
		t.Error("unknown table should return nil sizes")
	}
}

func TestLargeGenerationScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rs := Generate(FW1(), 23087, 4)
	if len(rs) != 23087 {
		t.Fatalf("got %d rules", len(rs))
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTraceDeterministicAndSized(t *testing.T) {
	rs := Generate(ACL1(), 200, 9)
	a := GenerateFlowTrace(rs, 5000, 128, 8, 11)
	b := GenerateFlowTrace(rs, 5000, 128, 8, 11)
	if len(a) != 5000 {
		t.Fatalf("trace length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
	c := GenerateFlowTrace(rs, 5000, 128, 8, 12)
	same := 0
	for i := range c {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(c) {
		t.Error("different seeds produced identical traces")
	}
}

// TestFlowTraceLocality pins the two properties the flow cache exploits:
// a bounded distinct-header population, and packet trains (the next
// packet usually repeats the previous header).
func TestFlowTraceLocality(t *testing.T) {
	rs := Generate(ACL1(), 300, 13)
	const n, flows, burst = 20000, 256, 8
	trace := GenerateFlowTrace(rs, n, flows, burst, 14)
	distinct := map[rule.Packet]bool{}
	repeats := 0
	for i, p := range trace {
		distinct[p] = true
		if i > 0 && trace[i-1] == p {
			repeats++
		}
	}
	if len(distinct) > flows {
		t.Errorf("%d distinct headers exceed the %d-flow population", len(distinct), flows)
	}
	if frac := float64(repeats) / float64(n); frac < 0.5 {
		t.Errorf("train repeat fraction %.2f; packet trains missing", frac)
	}
	// Most packets should still match a rule, as with GenerateTrace.
	matched := 0
	for _, p := range trace {
		if rs.Match(p) >= 0 {
			matched++
		}
	}
	if frac := float64(matched) / float64(n); frac < 0.5 {
		t.Errorf("only %.2f of flow-trace packets match any rule", frac)
	}
}

func TestFlowTraceDefaultsAndEmptyRuleset(t *testing.T) {
	if got := len(GenerateFlowTrace(nil, 1000, 0, 0, 3)); got != 1000 {
		t.Fatalf("empty-ruleset flow trace length %d", got)
	}
	rs := Generate(IPC1(), 50, 5)
	if got := len(GenerateFlowTrace(rs, 777, 0, 0, 3)); got != 777 {
		t.Fatalf("defaulted flow trace length %d", got)
	}
	if got := len(GenerateFlowTrace(rs, 100, 1, 1, 3)); got != 100 {
		t.Fatalf("single-flow unit-burst trace length %d", got)
	}
}
