package tcam

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classbench"
	"repro/internal/rule"
)

func TestRangeToPrefixesExact(t *testing.T) {
	cases := []struct {
		lo, hi uint32
		width  uint
		blocks int
	}{
		{0, 65535, 16, 1},    // wildcard = 1 block
		{80, 80, 16, 1},      // exact = 1 block
		{1024, 65535, 16, 6}, // the classic >1023 range
		{0, 1023, 16, 1},     // aligned low range
		{1, 65534, 16, 30},   // worst case 2w-2
	}
	for _, tc := range cases {
		got := RangeToPrefixes(tc.lo, tc.hi, tc.width)
		if len(got) != tc.blocks {
			t.Errorf("[%d,%d]/%d: %d blocks, want %d", tc.lo, tc.hi, tc.width, len(got), tc.blocks)
		}
	}
}

func TestRangeToPrefixesCoverExactly(t *testing.T) {
	// Property: the blocks exactly tile the range, no overlap, no gaps.
	f := func(a, b uint16) bool {
		lo, hi := uint32(a), uint32(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		blocks := RangeToPrefixes(lo, hi, 16)
		covered := uint64(0)
		for _, blk := range blocks {
			size := uint64(1) << popZeros(blk.care, 16)
			if uint64(blk.value)%size != 0 {
				return false // misaligned
			}
			covered += size
		}
		// Membership check at boundaries and sampled interior points.
		for _, v := range []uint32{lo, hi, (lo + hi) / 2} {
			in := false
			for _, blk := range blocks {
				if (v^blk.value)&blk.care == 0 {
					in = true
					break
				}
			}
			if !in {
				return false
			}
		}
		return covered == uint64(hi)-uint64(lo)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func popZeros(care uint32, width uint) uint {
	n := uint(0)
	for i := uint(0); i < width; i++ {
		if care&(1<<i) == 0 {
			n++
		}
	}
	return n
}

func TestFull32BitRange(t *testing.T) {
	blocks := RangeToPrefixes(0, ^uint32(0), 32)
	if len(blocks) != 1 || blocks[0].care != 0 {
		t.Errorf("full 32-bit range should be one don't-care block: %+v", blocks)
	}
}

func TestClassifyAgreesWithLinear(t *testing.T) {
	for _, prof := range []classbench.Profile{classbench.ACL1(), classbench.FW1()} {
		rs := classbench.Generate(prof, 300, 91)
		m, _, err := Build(rs)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		for i, p := range classbench.GenerateTrace(rs, 3000, 92) {
			if got, want := m.Classify(p), rs.Match(p); got != want {
				t.Fatalf("%s packet %d: tcam=%d linear=%d", prof.Name, i, got, want)
			}
		}
	}
}

func TestStorageEfficiencyBand(t *testing.T) {
	// Paper cites 16-53% efficiency on real databases. Our synthetic
	// sets with range-style ports must land well below 100%.
	rs := classbench.Generate(classbench.FW1(), 1000, 93)
	_, st, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Efficiency >= 1.0 || st.Efficiency <= 0.05 {
		t.Errorf("efficiency %.3f outside plausible band", st.Efficiency)
	}
	if st.Entries < st.Rules {
		t.Errorf("entries %d < rules %d", st.Entries, st.Rules)
	}
	if st.Bytes != st.Entries*EntryBits/8 {
		t.Errorf("bytes accounting wrong")
	}
	if st.WorstRuleEntries < 1 {
		t.Errorf("worst rule entries %d", st.WorstRuleEntries)
	}
}

func TestPriorityPreservedUnderExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	rs := make(rule.RuleSet, 0, 40)
	for i := 0; i < 40; i++ {
		lo := uint32(rng.Intn(60000))
		hi := lo + uint32(rng.Intn(int(65535-lo))+1)
		rs = append(rs, rule.New(i, 0, 0, 0, 0, rule.Range{Lo: lo, Hi: hi}, rule.FullRange(rule.DimDstPort), 0, true))
	}
	m, _, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		p := rule.Packet{SrcPort: uint16(rng.Intn(65536))}
		if got, want := m.Classify(p), rs.Match(p); got != want {
			t.Fatalf("overlapping ranges: tcam=%d linear=%d", got, want)
		}
	}
}

func TestPowerModelFitsDatasheet(t *testing.T) {
	// Must reproduce the two datasheet anchor points within 5%.
	if p := Ayama10128at77.PowerW(); p < 2.9*0.95 || p > 2.9*1.05 {
		t.Errorf("Ayama 10128 modelled at %.2f W, datasheet 2.9 W", p)
	}
	if p := Ayama10512at133.PowerW(); p < 19.14*0.95 || p > 19.14*1.05 {
		t.Errorf("Ayama 10512 modelled at %.2f W, datasheet 19.14 W", p)
	}
	// Family band: 4.86-19.14 W depending on size (at 133 MHz).
	small := PowerW(0.576, 133e6)
	if small < 3 || small > 19.14 {
		t.Errorf("small TCAM at 133 MHz = %.2f W, expect within family band", small)
	}
}

func TestEnergyPerSearch(t *testing.T) {
	e := Ayama10512at133.EnergyPerSearchJ()
	// 19.14 W / 133 Mpps ~ 1.4e-7 J per search.
	if e < 1e-7 || e > 2e-7 {
		t.Errorf("energy/search %.3e outside expected band", e)
	}
}

func TestEntryMatch(t *testing.T) {
	e := Entry{RuleID: 3}
	for d := 0; d < rule.NumDims; d++ {
		e.Care[d] = 0 // fully wildcard
	}
	if !e.Matches(rule.Packet{SrcIP: 0xDEADBEEF}) {
		t.Error("wildcard entry must match everything")
	}
	e.Value[rule.DimProto] = 6
	e.Care[rule.DimProto] = 0xFF
	if e.Matches(rule.Packet{Proto: 17}) {
		t.Error("care bits ignored")
	}
	if !e.Matches(rule.Packet{Proto: 6}) {
		t.Error("exact proto should match")
	}
}
