// Package tcam models the Ternary CAM alternative the paper compares its
// accelerator against (§1 and §5.3): a Cypress Ayama 10000-series network
// search engine.
//
// Three aspects matter for the paper's claims and are modelled here:
//
//  1. Storage efficiency. TCAM entries hold ternary (value, care-mask)
//     pairs, so port *ranges* must be expanded into prefix blocks; real
//     rulesets therefore use 16-53% of the raw entry capacity (the paper
//     cites [14], average 34%). The expansion implemented here is the
//     standard maximal-aligned-block decomposition.
//  2. Lookup rate. A TCAM matches all entries in parallel in O(1) cycles
//     — the Ayama 10512 performs 133 million 144-bit searches per second
//     at 133 MHz.
//  3. Power. Datasheet figures: 2.9 W for the Ayama 10128 at 77 MHz with
//     576 KB, 19.14 W for the Ayama 10512 at 133 MHz with 2.304 MB, and
//     4.86-19.14 W across the family. A two-parameter linear model fits
//     these points and interpolates other sizes.
package tcam

import (
	"fmt"

	"repro/internal/rule"
)

// Entry is one ternary TCAM entry: per-dimension (value, mask) pairs.
// A packet matches when (field ^ Value) & CareMask == 0 for every field.
type Entry struct {
	RuleID int
	Value  [rule.NumDims]uint32
	Care   [rule.NumDims]uint32
}

// Matches implements the ternary compare of one entry.
func (e *Entry) Matches(p rule.Packet) bool {
	for d := 0; d < rule.NumDims; d++ {
		if (p.Field(d)^e.Value[d])&e.Care[d] != 0 {
			return false
		}
	}
	return true
}

// Model is a TCAM loaded with an expanded ruleset.
type Model struct {
	entries []Entry
	rules   int
}

// ExpansionStats describes the range-to-prefix blow-up of a ruleset.
type ExpansionStats struct {
	Rules   int
	Entries int
	// Efficiency is Rules/Entries: the fraction of TCAM capacity doing
	// useful work (paper cites 16-53% on real databases).
	Efficiency float64
	// WorstRuleEntries is the largest per-rule expansion.
	WorstRuleEntries int
	// Bytes is the TCAM storage consumed: entries x 144-bit slots.
	Bytes int
}

// EntryBits is the search-key width of the modelled device (the Ayama
// performs 144-bit searches; a 5-tuple needs 104 bits and pads to 144).
const EntryBits = 144

// Build expands rs into ternary entries, preserving priority order.
func Build(rs rule.RuleSet) (*Model, ExpansionStats, error) {
	if err := rs.Validate(); err != nil {
		return nil, ExpansionStats{}, fmt.Errorf("tcam: %w", err)
	}
	m := &Model{rules: len(rs)}
	st := ExpansionStats{Rules: len(rs)}
	for i := range rs {
		n, err := m.addRule(&rs[i])
		if err != nil {
			return nil, st, fmt.Errorf("tcam: rule %d: %w", rs[i].ID, err)
		}
		if n > st.WorstRuleEntries {
			st.WorstRuleEntries = n
		}
	}
	st.Entries = len(m.entries)
	if st.Entries > 0 {
		st.Efficiency = float64(st.Rules) / float64(st.Entries)
	}
	st.Bytes = st.Entries * EntryBits / 8
	return m, st, nil
}

// addRule expands one rule into the cross-product of its per-dimension
// prefix decompositions and appends the entries.
func (m *Model) addRule(r *rule.Rule) (int, error) {
	var perDim [rule.NumDims][]prefixBlock
	for d := 0; d < rule.NumDims; d++ {
		perDim[d] = RangeToPrefixes(r.F[d].Lo, r.F[d].Hi, rule.DimBits[d])
		if len(perDim[d]) == 0 {
			return 0, fmt.Errorf("empty expansion in %s", rule.DimNames[d])
		}
	}
	count := 0
	var rec func(d int, e Entry)
	rec = func(d int, e Entry) {
		if d == rule.NumDims {
			m.entries = append(m.entries, e)
			count++
			return
		}
		for _, b := range perDim[d] {
			e2 := e
			e2.Value[d] = b.value
			e2.Care[d] = b.care
			rec(d+1, e2)
		}
	}
	rec(0, Entry{RuleID: r.ID})
	return count, nil
}

// prefixBlock is one aligned power-of-two block of a range.
type prefixBlock struct {
	value uint32 // block start
	care  uint32 // mask of significant bits
}

// RangeToPrefixes decomposes [lo,hi] within a width-bit field into the
// minimal set of maximal aligned blocks (the classic range-to-prefix
// expansion; a worst-case 16-bit range needs 2*16-2 = 30 blocks).
func RangeToPrefixes(lo, hi uint32, width uint) []prefixBlock {
	var out []prefixBlock
	max := uint64(1)<<width - 1
	cur := uint64(lo)
	end := uint64(hi)
	fullCare := uint32(max)
	for cur <= end {
		// Largest aligned block starting at cur that fits in [cur,end].
		size := uint64(1)
		for {
			next := size << 1
			if cur&(next-1) != 0 { // alignment
				break
			}
			if cur+next-1 > end { // containment
				break
			}
			size = next
		}
		out = append(out, prefixBlock{
			value: uint32(cur),
			care:  fullCare &^ uint32(size-1),
		})
		cur += size
		if cur == 0 { // wrapped past the top of a 32-bit field
			break
		}
	}
	return out
}

// Classify performs one parallel search: the highest-priority (lowest
// rule ID) matching entry wins, as the TCAM's priority encoder would
// select the lowest-address entry of a priority-ordered table.
func (m *Model) Classify(p rule.Packet) int {
	for i := range m.entries {
		if m.entries[i].Matches(p) {
			return m.entries[i].RuleID
		}
	}
	return -1
}

// Entries returns the number of ternary entries in use.
func (m *Model) Entries() int { return len(m.entries) }

// NumRules returns the original ruleset size.
func (m *Model) NumRules() int { return m.rules }

// ---- Device power/throughput model ----

// Device is a TCAM search engine operating point.
type Device struct {
	Name   string
	FreqHz float64
	SizeMB float64
	// SearchesPerSecond is the lookup rate (one search per cycle).
	SearchesPerSecond float64
}

// Ayama devices from the paper's §5.3 comparison.
var (
	// Ayama10128at77 is the operating point the paper compares the FPGA
	// against: 576,000 bytes at 77 MHz consuming 2.9 W.
	Ayama10128at77 = Device{Name: "Ayama 10128 @77MHz", FreqHz: 77e6, SizeMB: 0.576, SearchesPerSecond: 77e6}
	// Ayama10512at133 is the top speed point: 2.304 MB at 133 MHz,
	// 19.14 W, 133 Mpps.
	Ayama10512at133 = Device{Name: "Ayama 10512 @133MHz", FreqHz: 133e6, SizeMB: 2.304, SearchesPerSecond: 133e6}
)

// Power-model coefficients fitted to the two datasheet points above:
// P = base + k * sizeMB * freqMHz.
const (
	powerBaseW     = 0.152
	powerPerMBMHzW = 0.06196
)

// PowerW estimates TCAM power at a given size and frequency.
func PowerW(sizeMB, freqHz float64) float64 {
	return powerBaseW + powerPerMBMHzW*sizeMB*freqHz/1e6
}

// PowerW returns the modelled power of the device.
func (d Device) PowerW() float64 { return PowerW(d.SizeMB, d.FreqHz) }

// EnergyPerSearchJ is the energy of one lookup.
func (d Device) EnergyPerSearchJ() float64 { return d.PowerW() / d.SearchesPerSecond }

// Companion SRAM chips needed by a TCAM-based search engine for the
// associated data (paper §5.3): the accelerator's on-chip memory makes
// these unnecessary, which is part of its power advantage.
const (
	// SRAMCY7C1381DPowerW is the CY7C1381D 2.304 MB SRAM at 133 MHz,
	// 3.3 V: 693 mW.
	SRAMCY7C1381DPowerW = 0.693
	// SRAMCY7C1370DV25PowerW is the CY7C1370DV25 2.304 MB SRAM at
	// 250 MHz, 2.5 V: 875 mW.
	SRAMCY7C1370DV25PowerW = 0.875
)
