package energy

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestNormalizeIdentityAtReference(t *testing.T) {
	if got := Normalize(1.0, 65, 1.0); got != 1.0 {
		t.Errorf("reference point must be identity, got %g", got)
	}
}

func TestNormalizeEq8(t *testing.T) {
	// S = 65/130 = 0.5, U = 1/2 -> P' = P * 0.25 * 0.5 = P/8.
	if got := Normalize(8.0, 130, 2.0); !approx(got, 1.0, 1e-12) {
		t.Errorf("Normalize = %g, want 1.0", got)
	}
}

func TestTable5NormalizedValues(t *testing.T) {
	// Paper Table 5: ASIC normalized 18.32 mW, SA-1100 normalized
	// 42.45 mW.
	if got := ASIC65.NormalizedPowerW(); !approx(got, 0.01832, 0.01) {
		t.Errorf("ASIC normalized %.5f W, want 0.01832", got)
	}
	if got := SA1100.NormalizedPowerW(); !approx(got, 0.04245, 0.01) {
		t.Errorf("SA-1100 normalized %.5f W, want 0.04245", got)
	}
	// The FPGA runs at the reference voltage/process already.
	if got := Virtex5.NormalizedPowerW(); !approx(got, 1.811, 1e-9) {
		t.Errorf("FPGA normalized %.3f W, want 1.811", got)
	}
}

func TestDeviceCatalog(t *testing.T) {
	ds := Devices()
	if len(ds) != 3 {
		t.Fatalf("catalog size %d", len(ds))
	}
	if ds[0].Slices != 3280 || ds[0].BlockRAMs != 134 {
		t.Error("FPGA utilization constants drifted from Table 5")
	}
	if ds[1].GateCount != 51488 {
		t.Error("ASIC gate count drifted from Table 5")
	}
	for _, d := range ds {
		if d.EnergyPerCycleJ() <= 0 {
			t.Errorf("%s: energy/cycle not positive", d.Name)
		}
		if d.String() == "" {
			t.Errorf("%s: empty String()", d.Name)
		}
	}
}

func TestWorstCasePPS(t *testing.T) {
	// Paper §1: OC-192 -> 31.25 Mpps, OC-768 -> 125 Mpps with 40-byte
	// packets back to back.
	if got := OC192.WorstCasePPS(); !approx(got, 31.25e6, 1e-9) {
		t.Errorf("OC-192 = %.0f pps", got)
	}
	if got := OC768.WorstCasePPS(); !approx(got, 125e6, 1e-9) {
		t.Errorf("OC-768 = %.0f pps", got)
	}
}

func TestSustainsAndHighestLine(t *testing.T) {
	// The ASIC at 226 Mpps (worst case 2 cycles -> 226M/1) exceeds
	// OC-768; the FPGA at 77 Mpps exceeds OC-192 but not OC-768; the
	// SA-1100 software at ~0.09 Mpps is below OC-1.
	if !Sustains(226e6, OC768) {
		t.Error("ASIC should sustain OC-768")
	}
	if Sustains(77e6, OC768) || !Sustains(77e6, OC192) {
		t.Error("FPGA should sustain OC-192 but not OC-768")
	}
	if HighestLine(226e6) != "OC-768" {
		t.Errorf("226 Mpps -> %s", HighestLine(226e6))
	}
	if HighestLine(77e6) != "OC-192" {
		t.Errorf("77 Mpps -> %s", HighestLine(77e6))
	}
	if HighestLine(90e3) != "sub-OC-1" {
		t.Errorf("90 kpps -> %s", HighestLine(90e3))
	}
}
