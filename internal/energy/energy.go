// Package energy holds the device catalog and the power-normalization
// arithmetic of the paper's evaluation (§5.1, Table 5), plus the SONET
// line-rate math that frames the throughput results (§1, §5.2).
//
// Devices built in different process technologies cannot be compared
// directly, so the paper normalizes every power figure to 65 nm at 1 V
// core voltage using Eq. 8:
//
//	P' = P * S^2 * U
//
// where S is the process scaling factor (65/process) and U the voltage
// scaling factor (1/voltage).
package energy

import "fmt"

// Eq. 8 reference point: 65 nm, 1.0 V.
const (
	refProcessNm = 65.0
	refVoltageV  = 1.0
)

// Normalize applies Eq. 8 to a raw power figure.
func Normalize(rawPowerW, processNm, voltageV float64) float64 {
	s := refProcessNm / processNm
	u := refVoltageV / voltageV
	return rawPowerW * s * s * u
}

// Device is one implementation target from Table 5.
type Device struct {
	Name      string
	ProcessNm float64
	VoltageV  float64
	FreqHz    float64
	// RawPowerW is the measured/simulated power in the device's native
	// process and voltage.
	RawPowerW float64
	// IncludesMemory notes whether the power covers search-structure
	// memory (the FPGA figure does; ASIC and SA-1100 cover datapath
	// logic only — paper §5.1).
	IncludesMemory bool
	// GateCount is the area in equivalent 2-input NAND gates (0 where
	// the paper reports slices instead).
	GateCount int
	// Slices / BlockRAMs describe the FPGA implementation.
	Slices, BlockRAMs int
}

// NormalizedPowerW applies Eq. 8 to the device.
func (d Device) NormalizedPowerW() float64 {
	return Normalize(d.RawPowerW, d.ProcessNm, d.VoltageV)
}

// EnergyPerCycleJ is the normalized energy of one clock cycle.
func (d Device) EnergyPerCycleJ() float64 { return d.NormalizedPowerW() / d.FreqHz }

// Table 5 devices.
var (
	// Virtex5 is the FPGA implementation: 65 nm, 1.0 V, 77 MHz post
	// place-and-route, 1.811 W including block RAM, 3,280 slices (22%),
	// 134 block RAMs (54%).
	Virtex5 = Device{
		Name: "Virtex5SX95T", ProcessNm: 65, VoltageV: 1.0, FreqHz: 77e6,
		RawPowerW: 1.811, IncludesMemory: true,
		GateCount: 17600998, Slices: 3280, BlockRAMs: 134,
	}
	// ASIC65 is the TSMC 65 nm implementation: 1.08 V, 226 MHz, 19.79 mW
	// raw datapath power (18.32 mW normalized), 51,488 gates.
	ASIC65 = Device{
		Name: "ASIC-65nm", ProcessNm: 65, VoltageV: 1.08, FreqHz: 226e6,
		RawPowerW: 0.01979, GateCount: 51488,
	}
	// SA1100 is the StrongARM software platform: 180 nm, 1.8 V, 200 MHz.
	// The raw datapath power is chosen so Eq. 8 yields the paper's
	// normalized 42.45 mW.
	SA1100 = Device{
		Name: "StrongARM SA-1100", ProcessNm: 180, VoltageV: 1.8, FreqHz: 200e6,
		RawPowerW: 0.5862,
	}
)

// Devices lists the Table 5 catalog in paper column order.
func Devices() []Device { return []Device{Virtex5, ASIC65, SA1100} }

// ---- SONET line rates (paper §1) ----

// LineRate is a SONET/SDH line with its worst-case packet rate.
type LineRate struct {
	Name   string
	BitsPS float64
}

// Worst-case packet rate assumes minimum-sized 40-byte packets arriving
// back to back (the paper's convention: OC-192 -> 31.25 Mpps, OC-768 ->
// 125 Mpps).
const minPacketBits = 40 * 8

// Standard line rates.
var (
	OC1   = LineRate{"OC-1", 51.84e6}
	OC48  = LineRate{"OC-48", 2488.32e6}
	OC192 = LineRate{"OC-192", 10e9}
	OC768 = LineRate{"OC-768", 40e9}
)

// WorstCasePPS returns the back-to-back minimum-packet rate.
func (l LineRate) WorstCasePPS() float64 { return l.BitsPS / minPacketBits }

// Sustains reports whether a classifier at the given packet rate keeps up
// with the line under worst-case minimum-sized packets.
func Sustains(pps float64, l LineRate) bool { return pps >= l.WorstCasePPS() }

// HighestLine returns the fastest standard line the given packet rate
// sustains, or "sub-OC-1".
func HighestLine(pps float64) string {
	best := "sub-OC-1"
	for _, l := range []LineRate{OC1, OC48, OC192, OC768} {
		if Sustains(pps, l) {
			best = l.Name
		}
	}
	return best
}

// String renders the device for the Table 5 report.
func (d Device) String() string {
	return fmt.Sprintf("%s: %.0fnm %.2fV %.0fMHz raw %.4gW normalized %.4gW",
		d.Name, d.ProcessNm, d.VoltageV, d.FreqHz/1e6, d.RawPowerW, d.NormalizedPowerW())
}
