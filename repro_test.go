package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestFacadeEndToEnd(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewSoftwareBaseline("linear", rs)
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 2000, 6)
	for i, p := range trace {
		if got, want := acc.Classify(p), lin.Classify(p); got != want {
			t.Fatalf("packet %d: accelerator=%d linear=%d", i, got, want)
		}
	}
	if acc.MemoryBytes() != acc.Words()*600 {
		t.Error("memory accounting inconsistent")
	}
	if acc.WorstCaseCycles() < 2 {
		t.Error("worst case below minimum")
	}
	if acc.GuaranteedPPS() <= 0 {
		t.Error("no guaranteed throughput")
	}
	if acc.DeviceName() == "" {
		t.Error("no device name")
	}
	m, lat, reads := acc.ClassifyDetailed(trace[0])
	if lat != reads+1 {
		t.Errorf("latency %d != reads %d + 1", lat, reads)
	}
	if m != lin.Classify(trace[0]) {
		t.Errorf("detailed match mismatch")
	}
}

func TestFacadeTargets(t *testing.T) {
	rs, err := GenerateRuleset("ipc1", 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	asic, err := BuildAccelerator(rs, Config{Target: TargetASIC})
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := BuildAccelerator(rs, Config{Target: TargetFPGA})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 1000, 8)
	_, stA := asic.Run(trace)
	_, stF := fpga.Run(trace)
	if stA.PacketsPerSecond <= stF.PacketsPerSecond {
		t.Errorf("ASIC (%.0f pps) should outrun FPGA (%.0f pps)", stA.PacketsPerSecond, stF.PacketsPerSecond)
	}
}

func TestFacadeBaselines(t *testing.T) {
	rs, err := GenerateRuleset("fw1", 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 1500, 10)
	for _, kind := range []string{"hicuts", "hypercuts", "linear"} {
		bl, err := NewSoftwareBaseline(kind, rs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if bl.Name() != kind {
			t.Errorf("Name = %q", bl.Name())
		}
		st := bl.Measure(trace)
		if st.PacketsPerSecond <= 0 || st.EnergyPerPacketJ <= 0 {
			t.Errorf("%s: empty stats", kind)
		}
	}
	if _, err := NewSoftwareBaseline("nope", rs); err == nil {
		t.Error("unknown baseline accepted")
	}
	if _, err := GenerateRuleset("nope", 10, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestFacadeSpeedKnob(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BuildAccelerator(rs, Config{Algorithm: HiCuts})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := BuildAccelerator(rs, Config{Algorithm: HiCuts, CompactLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if compact.Words() > fast.Words() {
		t.Errorf("speed 0 (%d words) must not exceed speed 1 (%d words)", compact.Words(), fast.Words())
	}
}

func TestWriteAllTables(t *testing.T) {
	var buf bytes.Buffer
	opts := bench.Options{Seed: 7, Sizes: []int{60, 150}, Table4Sizes: []int{300}, TracePackets: 1500}
	if err := WriteAllTables(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8", "Headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFacadeSoftwareEngine(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts})
	if err != nil {
		t.Fatal(err)
	}
	eng := acc.SoftwareEngine()
	if eng.MemoryBytes() <= 0 {
		t.Error("engine footprint not positive")
	}
	trace := GenerateTrace(rs, 2000, 8)
	out := make([]int32, len(trace))
	eng.ClassifyBatch(trace, out)
	par := make([]int32, len(trace))
	eng.ParallelClassify(trace, par, 0)
	for i, p := range trace {
		want := acc.Classify(p)
		if got := eng.Classify(p); got != want {
			t.Fatalf("pkt %d: engine=%d accelerator=%d", i, got, want)
		}
		if int(out[i]) != want || int(par[i]) != want {
			t.Fatalf("pkt %d: batch=%d parallel=%d accelerator=%d", i, out[i], par[i], want)
		}
	}
}
