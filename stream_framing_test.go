package repro

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/rule"
)

// Framing regression tests for ClassifyStream: the trace reader must
// produce the identical packet sequence no matter how the underlying
// io.Reader fragments its data — one byte at a time, split mid-line,
// or whole-buffer — including a final line without a trailing newline.

// oneByteReader yields a single byte per Read call.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// chunkReader yields fixed-size chunks chosen to split lines mid-number,
// so every packet crosses a Read boundary somewhere in the stream.
type chunkReader struct {
	data []byte
	pos  int
	size int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, io.EOF
	}
	n := c.size
	if n > len(p) {
		n = len(p)
	}
	if c.pos+n > len(c.data) {
		n = len(c.data) - c.pos
	}
	copy(p, c.data[c.pos:c.pos+n])
	c.pos += n
	return n, nil
}

func TestClassifyStreamShortReads(t *testing.T) {
	rs, err := GenerateRuleset("acl1", 300, 31)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := BuildAccelerator(rs, Config{Algorithm: HyperCuts, CacheSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(rs, 2500, 32)

	var traceText bytes.Buffer
	if err := rule.WriteTrace(&traceText, trace); err != nil {
		t.Fatal(err)
	}
	// A comment line mid-stream and a final packet without trailing
	// newline, the two framing wrinkles the text format allows.
	text := "# header comment\n" + traceText.String()
	text = strings.TrimSuffix(text, "\n")

	var want bytes.Buffer
	wantN, err := acc.ClassifyStream(strings.NewReader(text), &want)
	if err != nil {
		t.Fatal(err)
	}
	if wantN != int64(len(trace)) {
		t.Fatalf("whole-buffer read classified %d of %d packets", wantN, len(trace))
	}

	readers := map[string]func() io.Reader{
		"one-byte": func() io.Reader { return oneByteReader{strings.NewReader(text)} },
		// 7 bytes lands inside a decimal field of essentially every
		// line; 1<<16-1 splits at large, line-unaligned strides.
		"chunk-7":     func() io.Reader { return &chunkReader{data: []byte(text), size: 7} },
		"chunk-65535": func() io.Reader { return &chunkReader{data: []byte(text), size: 1<<16 - 1} },
	}
	for name, mk := range readers {
		t.Run(name, func(t *testing.T) {
			var got bytes.Buffer
			n, err := acc.ClassifyStream(mk(), &got)
			if err != nil {
				t.Fatal(err)
			}
			if n != wantN {
				t.Fatalf("classified %d packets, want %d", n, wantN)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				gl := strings.Split(got.String(), "\n")
				wl := strings.Split(want.String(), "\n")
				for i := range wl {
					if i >= len(gl) || gl[i] != wl[i] {
						t.Fatalf("result line %d: got %q want %q", i, gl[i], wl[i])
					}
				}
				t.Fatalf("results differ in length: got %d lines, want %d", len(gl), len(wl))
			}
		})
	}
}
