#!/usr/bin/env bash
# Run the classification/build benchmarks with benchstat-comparable
# output. Typical perf-PR workflow:
#
#   git checkout main            && scripts/bench.sh > /tmp/old.txt
#   git checkout my-perf-branch  && scripts/bench.sh > /tmp/new.txt
#   benchstat /tmp/old.txt /tmp/new.txt
#
# Besides the raw `go test -bench` output on stdout, a machine-readable
# BENCH_<date>.json (one {name, ns_op, b_op, allocs_op, mb_s, pps,
# allocs_pkt, hitrate, occupied, stale, dirtywords, imgwords,
# image_bytes, build_ns, speedup} object per
# benchmark row — the flow-cache rows report cached-vs-uncached pps and
# the cache's hit rate, occupancy and stale-eviction counters; the
# PatchUpdate/PatchWords rows at 1k and 10k rules record the
# sublinear-update claim: ns_op and dirtywords must track the edited
# leaves, not imgwords; the ClassifyBatchACL10k/{aos,soa} and
# LeafScan/{aos,soa}/leafsize=N pairs record the leaf-scan layout
# ablation: the SoA comparator bank must be no slower than the AoS
# early-exit scan end to end and faster on populated leaves; rows whose
# sub-benchmark name carries kernel=<portable|avx2|neon> additionally
# land a "kernel" field, recording the per-kernel leaf-scan and
# ClassifyBatch rates so the SIMD-vs-portable speedup is tracked in the
# trajectory; the
# Ingest/{text,binary,binary+cache} rows record the line-rate ingest
# claim: binary framing ≥5x the text shim's pps at 10k rules with
# allocs_pkt ~0, plus per-batch latency quantiles p50_ns/p99_ns from the
# stream pipeline's own histogram, and FrameDecode/FrameEncode/PcapDecode
# pin the raw zero-copy codec rates; the TelemetryOverhead/{off,on} rows
# additionally synthesize one telemetry_overhead row recording the
# instrumented-vs-uninstrumented pps ratio, which must stay >= 0.98;
# the ColdStart/acl1/n=N rows record the engine-image restart claim:
# ns_op is the image-restore latency, with build_ns (one-time
# core.Build + Compile cost), image_bytes and speedup alongside —
# speedup at n=10000 must stay >= 100) is
# written so the perf trajectory is trackable across PRs without parsing
# text tables.
#
# Environment knobs:
#   BENCH  regex of benchmarks to run (default: engine + build suite)
#   COUNT  repetitions per benchmark for benchstat significance (default 10)
#   TIME   -benchtime per repetition (default 0.5s)
#   JSON   output path (default BENCH_<YYYY-MM-DD>.json in the repo root;
#          set to /dev/null to skip)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Classify|Build|Compile|Patch|LeafScan|Ingest|Frame|Pcap|StoreRuleSlot|TelemetryOverhead|ColdStart}"
COUNT="${COUNT:-10}"
TIME="${TIME:-0.5s}"
JSON="${JSON:-BENCH_$(date +%F).json}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Invariant gate: never produce a BENCH json from a tree that violates
# the statically-checked performance contracts (hot-path allocations,
# arena discipline, atomic mixing — see DESIGN.md §14). pclint failing
# aborts before a single benchmark runs.
PCLINT="$(mktemp -u)"
go build -o "$PCLINT" ./cmd/pclint
if ! go vet -vettool="$PCLINT" ./...; then
  rm -f "$PCLINT"
  echo "bench.sh: pclint found invariant violations; refusing to benchmark this tree" >&2
  exit 1
fi
rm -f "$PCLINT"

go test -run='^$' -bench="$BENCH" -benchmem -count="$COUNT" \
  -benchtime="$TIME" \
  ./internal/engine/ ./internal/hwsim/ ./internal/wire/ \
  ./internal/stream/ ./internal/core/ ./internal/bench/ | tee "$RAW"

# Parse `BenchmarkName-P  N  X ns/op [Y MB/s] [Z B/op  W allocs/op] ...`
# rows into a JSON array. Pure awk: no jq dependency in the container.
awk '
  /^Benchmark/ {
    name = $1; ns = ""; bop = ""; allocs = ""; mbs = "";
    pps = ""; allocspkt = ""; hitrate = ""; occupied = ""; stale = "";
    dirtywords = ""; imgwords = ""; kern = ""; p50 = ""; p99 = "";
    imgbytes = ""; buildns = ""; speedup = "";
    if (match(name, /kernel=[a-zA-Z0-9]+/)) kern = substr(name, RSTART+7, RLENGTH-7);
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")      ns         = $(i-1);
      if ($i == "B/op")       bop        = $(i-1);
      if ($i == "allocs/op")  allocs     = $(i-1);
      if ($i == "MB/s")       mbs        = $(i-1);
      if ($i == "pps")        pps        = $(i-1);
      if ($i == "allocs_pkt") allocspkt  = $(i-1);
      if ($i == "hitrate")    hitrate    = $(i-1);
      if ($i == "occupied")   occupied   = $(i-1);
      if ($i == "stale")      stale      = $(i-1);
      if ($i == "dirtywords") dirtywords = $(i-1);
      if ($i == "imgwords")   imgwords   = $(i-1);
      if ($i == "p50_ns")     p50        = $(i-1);
      if ($i == "p99_ns")     p99        = $(i-1);
      if ($i == "image_bytes") imgbytes  = $(i-1);
      if ($i == "build_ns")   buildns    = $(i-1);
      if ($i == "speedup")    speedup    = $(i-1);
    }
    # Track the last-seen TelemetryOverhead pps pair for the synthetic
    # overhead row emitted at END.
    if (pps != "" && name ~ /TelemetryOverhead\/off/) tel_off = pps;
    if (pps != "" && name ~ /TelemetryOverhead\/on/)  tel_on  = pps;
    if (ns == "") next;
    row = sprintf("  {\"name\":\"%s\",\"ns_op\":%s", name, ns);
    if (bop      != "") row = row sprintf(",\"b_op\":%s", bop);
    if (allocs   != "") row = row sprintf(",\"allocs_op\":%s", allocs);
    if (mbs      != "") row = row sprintf(",\"mb_s\":%s", mbs);
    if (pps      != "") row = row sprintf(",\"pps\":%s", pps);
    if (allocspkt != "") row = row sprintf(",\"allocs_pkt\":%s", allocspkt);
    if (hitrate  != "") row = row sprintf(",\"hitrate\":%s", hitrate);
    if (occupied != "") row = row sprintf(",\"occupied\":%s", occupied);
    if (stale    != "") row = row sprintf(",\"stale\":%s", stale);
    if (dirtywords != "") row = row sprintf(",\"dirtywords\":%s", dirtywords);
    if (imgwords   != "") row = row sprintf(",\"imgwords\":%s", imgwords);
    if (kern       != "") row = row sprintf(",\"kernel\":\"%s\"", kern);
    if (p50        != "") row = row sprintf(",\"p50_ns\":%s", p50);
    if (p99        != "") row = row sprintf(",\"p99_ns\":%s", p99);
    if (imgbytes   != "") row = row sprintf(",\"image_bytes\":%s", imgbytes);
    if (buildns    != "") row = row sprintf(",\"build_ns\":%s", buildns);
    if (speedup    != "") row = row sprintf(",\"speedup\":%s", speedup);
    row = row "}";
    rows[nrows++] = row;
  }
  END {
    if (tel_off != "" && tel_on != "")
      rows[nrows++] = sprintf("  {\"name\":\"telemetry_overhead\",\"ns_op\":0,\"pps_off\":%s,\"pps_on\":%s,\"ratio\":%.4f}",
                              tel_off, tel_on, tel_on / tel_off);
    print "[";
    for (i = 0; i < nrows; i++) printf "%s%s\n", rows[i], (i < nrows-1 ? "," : "");
    print "]";
  }
' "$RAW" > "$JSON"

echo "wrote $(grep -c '"name"' "$JSON" || true) benchmark rows to $JSON" >&2
