#!/usr/bin/env bash
# Run the classification/build benchmarks with benchstat-comparable
# output. Typical perf-PR workflow:
#
#   git checkout main            && scripts/bench.sh > /tmp/old.txt
#   git checkout my-perf-branch  && scripts/bench.sh > /tmp/new.txt
#   benchstat /tmp/old.txt /tmp/new.txt
#
# Environment knobs:
#   BENCH  regex of benchmarks to run (default: engine + build suite)
#   COUNT  repetitions per benchmark for benchstat significance (default 10)
#   TIME   -benchtime per repetition (default 0.5s)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-Classify|Build|Compile}"
COUNT="${COUNT:-10}"
TIME="${TIME:-0.5s}"

exec go test -run='^$' -bench="$BENCH" -benchmem -count="$COUNT" \
  -benchtime="$TIME" ./internal/engine/
