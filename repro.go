// Package repro is the public API of this reproduction of "Energy
// Efficient Packet Classification Hardware Accelerator" (Kennedy, Wang &
// Liu, IPDPS/IPPS 2008).
//
// It provides a small facade over the internal packages:
//
//   - generate ClassBench-style rulesets and packet traces
//     (GenerateRuleset, GenerateTrace);
//   - build the paper's modified HiCuts/HyperCuts search structure and
//     run it on the cycle-accurate accelerator model (BuildAccelerator,
//     Accelerator.Classify / Run);
//   - update the ruleset live (Accelerator.Insert / Delete, batched as
//     one epoch via InsertBatch / DeleteBatch) while software
//     classification keeps running at full rate on lock-free epoch
//     snapshots (SoftwareEngine, ClassifyStream), with
//     degradation-triggered background recompaction;
//   - serve repeated flows from a sharded epoch-invalidated flow cache
//     (Config.CacheSize, CacheStats) that keeps cached answers
//     packet-exact under live updates;
//   - compare against the software baselines the paper uses
//     (NewSoftwareBaseline);
//   - regenerate every evaluation table (WriteAllTables).
//
// See examples/ for runnable walkthroughs and DESIGN.md for the system
// inventory.
package repro

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/classbench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flowcache"
	"repro/internal/hicuts"
	"repro/internal/hwsim"
	"repro/internal/hypercuts"
	"repro/internal/linear"
	"repro/internal/rule"
	"repro/internal/sa1100"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Re-exported primitive types.
type (
	// Packet is a 5-tuple packet header.
	Packet = rule.Packet
	// Rule is one classification rule.
	Rule = rule.Rule
	// RuleSet is a priority-ordered rule list.
	RuleSet = rule.RuleSet
	// Range is a closed interval within one header dimension.
	Range = rule.Range
)

// Algorithm selects the decision-tree algorithm.
type Algorithm = core.Algorithm

// Algorithm values.
const (
	HiCuts    = core.HiCuts
	HyperCuts = core.HyperCuts
)

// Target selects the simulated implementation technology.
type Target int

// Implementation targets with the paper's Table 5 operating points.
const (
	// TargetASIC is the 65 nm ASIC at 226 MHz.
	TargetASIC Target = iota
	// TargetFPGA is the Virtex5SX95T at 77 MHz.
	TargetFPGA
)

// GenerateRuleset produces an n-rule synthetic filter set in the style of
// the ClassBench seed named by profile: "acl1", "fw1" or "ipc1".
func GenerateRuleset(profile string, n int, seed int64) (RuleSet, error) {
	p, err := classbench.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	return classbench.Generate(p, n, seed), nil
}

// GenerateTrace produces an n-packet header trace for rs (mostly packets
// matching rules, with Zipf-skewed rule popularity).
func GenerateTrace(rs RuleSet, n int, seed int64) []Packet {
	return classbench.GenerateTrace(rs, n, seed)
}

// GenerateFlowTrace produces an n-packet trace with flow-level temporal
// locality: `flows` distinct 5-tuples arriving as packet trains of mean
// length `burst` with Zipf-skewed flow popularity (the traffic shape the
// flow cache exploits; see Config.CacheSize). flows <= 0 and burst <= 0
// select defaults.
func GenerateFlowTrace(rs RuleSet, n, flows, burst int, seed int64) []Packet {
	return classbench.GenerateFlowTrace(rs, n, flows, burst, seed)
}

// Config tunes the accelerator build.
type Config struct {
	// Algorithm is HiCuts or HyperCuts (default HyperCuts, the paper's
	// best performer after modification).
	Algorithm Algorithm
	// Binth and Spfac follow the paper (§3); zero values select the
	// defaults used in its tables (binth 120, spfac 4).
	Binth, Spfac int
	// CompactLeaves selects the paper's speed=0 leaf packing (fully
	// contiguous, most memory-efficient). The default is speed=1,
	// which the paper's tables use.
	CompactLeaves bool
	// Target picks the simulated device (default ASIC).
	Target Target
	// RecompileThreshold is the Degradation/garbage level at which an
	// incremental update triggers a background full rebuild of the
	// flat image (0 selects DefaultRecompileThreshold; negative
	// disables auto-recompiles).
	RecompileThreshold float64
	// CacheSize, when positive, puts a sharded exact-match flow cache
	// of (at least) that many entries in front of the software
	// classification paths (Classify, ClassifyBatch, ClassifyStream):
	// repeated 5-tuples cost one lock-free hash probe instead of a tree
	// walk. Entries are stamped with the update epoch, so results stay
	// packet-exact under live Insert/Delete — every update invalidates
	// by epoch, and stale entries fall through to the tree and
	// repopulate. 0 disables caching.
	CacheSize int
	// ScanKernel selects the engine's leaf-scan comparator-bank kernel:
	// "" (keep the process default — the best the CPU supports),
	// "portable" (the pure-Go oracle), "native", or an architecture
	// kernel name ("avx2", "neon"). The choice is process-wide and
	// applies to engines compiled afterwards; an unsatisfiable request
	// (unknown name, unsupported CPU) fails BuildAccelerator. The
	// REPRO_SCAN_KERNEL environment variable sets the same default at
	// process start. See DESIGN.md §10.
	ScanKernel string
	// RestorePath, when non-empty, boots the accelerator from a
	// serialized engine image (Accelerator.SaveImage) instead of waiting
	// for a build: the image is validated (checksums, version, every
	// structural invariant) and published as a serving epoch immediately
	// — orders of magnitude faster than compiling rs — while the
	// control-plane tree is rebuilt from rs in the background. Updates
	// and the hardware-model paths wait for that rebuild; software
	// classification (ClassifyBatch, ClassifyStream) serves from the
	// restored image throughout. The simulated device memory is
	// re-derived lazily on first hardware-path use, exactly as after a
	// recompile. rs must be the ruleset the image reflects (including
	// any churn since its build); restore fails closed with a typed
	// error on a corrupt, truncated or version-skewed image. See
	// DESIGN.md §13.
	RestorePath string
	// TelemetryAddr, when non-empty, serves the accelerator's telemetry
	// plane over HTTP on that host:port (":0" picks a free port — read
	// it back with Accelerator.TelemetryAddr): Prometheus text-format
	// metrics on /metrics, the flight-recorder event ring on
	// /debug/events, and the standard pprof handlers on /debug/pprof/.
	// Telemetry itself (counters, latency histograms, the flight
	// recorder behind Accelerator.Telemetry) is always on — it is
	// engineered to cost nothing measurable — so this flag only
	// controls the HTTP exposition. See DESIGN.md §12.
	TelemetryAddr string
}

// ScanKernels lists the leaf-scan kernels available on this CPU and
// build (candidates for Config.ScanKernel), portable first.
func ScanKernels() []string { return engine.Kernels() }

// DefaultRecompileThreshold is the default update-degradation level that
// triggers a background recompile: once a quarter of the leaf table is
// overgrown or orphaned (or the engine arenas are a quarter garbage),
// folding the patches into a fresh image costs less than carrying them.
const DefaultRecompileThreshold = 0.25

// Accelerator is a built search structure loaded into the simulated
// hardware classifier, together with the live-updatable software engine.
//
// All methods are safe for concurrent use. The update path models the
// paper's §4 control plane: Insert and Delete patch the off-chip tree
// copy, replay the structured delta onto the flat software image
// (engine.Patch — no recompile), and queue the delta for a lazy
// word-level rewrite of the simulated device memory (only the words the
// update dirtied go through the one-word-per-cycle write interface; see
// DeviceWriteCycles). Software classification (SoftwareEngine,
// ClassifyStream) reads lock-free epoch snapshots and keeps running at
// full rate during updates; when Degradation or the engine's
// GarbageRatio crosses Config.RecompileThreshold, a background rebuild
// compacts the structure and swaps it in as the next epoch.
type Accelerator struct {
	mu   sync.Mutex // guards tree, sim, simPending, simFull, simErr
	tree *core.Tree
	sim  *hwsim.Sim
	dev  hwsim.Device
	// simPending queues update deltas awaiting lazy replay into the
	// device memory word-by-word (hwsim.Sim.ApplyDelta — the paper's §4
	// write path: only the words an update dirtied are rewritten).
	simPending []*core.Delta
	// simFull forces the next device rewrite to be a full re-encode:
	// set by recompiles (deltas do not survive a Relayout) and by any
	// failed word-level patch.
	simFull bool
	simErr  error // last failed device rewrite (structure outgrew device)
	// simPriorWrites accumulates the write cycles of device images that
	// were since replaced by full re-encodes, so DeviceWriteCycles
	// stays cumulative across recompiles.
	simPriorWrites int64

	handle    *engine.Handle
	threshold float64
	patchErr  error // last engine.Patch failure (sticky; see PatchError)

	// degFloor is the degradation measured right after the last
	// recompile: the part Relayout+Compile cannot reclaim (leaves grown
	// past Binth need a re-cut, i.e. a fresh BuildAccelerator). The
	// auto-trigger fires on drift above this floor, not the absolute
	// level, so irreducible overgrowth cannot cause recompile-per-update.
	degFloor float64

	maint       sync.WaitGroup // in-flight background recompiles
	recompiling atomic.Bool

	// treeReady is closed once the control-plane tree is installed — or
	// its background rebuild failed, see treeErr (both under mu). It is
	// nil except on a restored accelerator (Config.RestorePath), where
	// waitTree gates every path that needs the tree.
	treeReady chan struct{}
	treeErr   error

	// closed (under mu) stops new background maintenance once Close has
	// begun; closeOnce/closeErr make Close idempotent and safe to race
	// with itself.
	closed    bool
	closeOnce sync.Once
	closeErr  error

	// tel is the always-on telemetry plane: every classification and
	// control-plane layer emits into it, and Telemetry() snapshots it.
	// telSrv is the optional HTTP exposition (Config.TelemetryAddr).
	tel    *telemetry.Recorder
	telSrv *telemetry.Server
}

// coreConfig maps the facade Config onto the tree builder's knobs.
func coreConfig(cfg Config) core.Config {
	ccfg := core.DefaultConfig(cfg.Algorithm)
	if cfg.Binth > 0 {
		ccfg.Binth = cfg.Binth
	}
	if cfg.Spfac > 0 {
		ccfg.Spfac = cfg.Spfac
	}
	ccfg.Speed = 1
	if cfg.CompactLeaves {
		ccfg.Speed = 0
	}
	return ccfg
}

func (cfg Config) device() hwsim.Device {
	if cfg.Target == TargetFPGA {
		return hwsim.FPGA
	}
	return hwsim.ASIC
}

func (cfg Config) recompileThreshold() float64 {
	if cfg.RecompileThreshold == 0 {
		return DefaultRecompileThreshold
	}
	return cfg.RecompileThreshold
}

// initTelemetry wires the always-on telemetry plane (and the optional
// HTTP exposition) into a freshly constructed accelerator. The
// once-per-process scan-kernel fallback (an unsatisfiable
// REPRO_SCAN_KERNEL override that silently degraded to the probed
// default) becomes countable here: one counter tick and one
// flight-recorder event per accelerator, so dashboards see the degrade
// even though classification continued.
func (a *Accelerator) initTelemetry(addr string) error {
	a.tel = telemetry.New()
	a.handle.SetTelemetry(a.tel)
	if msg := engine.KernelFallback(); msg != "" {
		a.tel.KernelFallbacks.Inc()
		a.tel.Events.Record(telemetry.EvKernelFallback, 0, 0, 0, 0)
	}
	a.tel.RegisterCollector(a.collectScrape)
	if addr != "" {
		srv, err := telemetry.Serve(addr, a.tel)
		if err != nil {
			return fmt.Errorf("repro: telemetry listener: %w", err)
		}
		a.telSrv = srv
	}
	return nil
}

// BuildAccelerator constructs the modified decision tree for rs, encodes
// it into 4800-bit memory words, and loads it into a simulated device.
// With Config.RestorePath set it instead restores a serialized engine
// image and serves immediately while the tree rebuilds in the background.
func BuildAccelerator(rs RuleSet, cfg Config) (*Accelerator, error) {
	if cfg.ScanKernel != "" {
		if err := engine.SetDefaultKernel(cfg.ScanKernel); err != nil {
			return nil, err
		}
	}
	ccfg := coreConfig(cfg)
	if cfg.RestorePath != "" {
		return restoreAccelerator(rs, cfg, ccfg)
	}
	tree, err := core.Build(rs, ccfg)
	if err != nil {
		return nil, err
	}
	img, err := tree.Encode()
	if err != nil {
		return nil, fmt.Errorf("repro: structure built (%d words) but not encodable: %w", tree.Words(), err)
	}
	dev := cfg.device()
	sim, err := hwsim.New(img, dev)
	if err != nil {
		return nil, err
	}
	a := &Accelerator{
		tree:      tree,
		sim:       sim,
		dev:       dev,
		handle:    engine.NewHandle(engine.Compile(tree)),
		threshold: cfg.recompileThreshold(),
	}
	if cfg.CacheSize > 0 {
		a.handle.EnableCache(cfg.CacheSize)
	}
	if err := a.initTelemetry(cfg.TelemetryAddr); err != nil {
		return nil, err
	}
	a.tel.BuildNs.Observe(tree.BuildNanos())
	a.tel.Events.Record(telemetry.EvBuild, 0,
		tree.BuildNanos(), int64(len(rs)), int64(tree.Words()))
	return a, nil
}

// restoreAccelerator boots from a serialized engine image: the restored
// engine is validated and published before this returns — a serving
// epoch in microseconds instead of a build — while the control-plane
// tree, which the image deliberately does not carry, is rebuilt from rs
// as background maintenance. Once ready, the tree's compiled layout is
// reconciled against what is serving: if the snapshot carried post-build
// churn the layouts differ, and the compiled engine is swapped in as the
// next epoch so subsequent delta patches address the layout they are
// derived from. Readers never stall either way. The simulated device
// memory is re-derived lazily on first hardware-path use, exactly as
// after a recompile.
func restoreAccelerator(rs RuleSet, cfg Config, ccfg core.Config) (*Accelerator, error) {
	data, err := os.ReadFile(cfg.RestorePath)
	if err != nil {
		return nil, fmt.Errorf("repro: restore image: %w", err)
	}
	h, err := engine.RestoreBytes(data)
	if err != nil {
		return nil, fmt.Errorf("repro: restore image %s: %w", cfg.RestorePath, err)
	}
	a := &Accelerator{
		dev:       cfg.device(),
		handle:    h,
		threshold: cfg.recompileThreshold(),
		simFull:   true, // full re-encode on first hardware-path use
		treeReady: make(chan struct{}),
	}
	if cfg.CacheSize > 0 {
		a.handle.EnableCache(cfg.CacheSize)
	}
	if err := a.initTelemetry(cfg.TelemetryAddr); err != nil {
		return nil, err
	}
	a.maint.Add(1)
	go func() {
		defer a.maint.Done()
		tree, err := core.Build(rs, ccfg)
		a.mu.Lock()
		defer a.mu.Unlock()
		defer close(a.treeReady)
		if err != nil {
			a.treeErr = fmt.Errorf("repro: control-plane rebuild after restore: %w", err)
			return
		}
		restored := a.handle.Current().Engine()
		if compiled := engine.Compile(tree); !restored.LayoutEqual(compiled) {
			a.handle.Swap(compiled)
		}
		a.tree = tree
		a.tel.BuildNs.Observe(tree.BuildNanos())
		a.tel.Events.Record(telemetry.EvBuild, a.handle.Current().Epoch(),
			tree.BuildNanos(), int64(len(rs)), int64(tree.Words()))
	}()
	return a, nil
}

// waitTree blocks until the control-plane tree is available: instant
// except on a restored accelerator whose background rebuild is still
// running. It returns the rebuild's error if that failed — the tree-path
// methods then degrade to the restored engine where they can.
func (a *Accelerator) waitTree() error {
	if a.treeReady != nil {
		<-a.treeReady
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.treeErr
}

// SaveImage serializes the current epoch's engine — the flat arenas, the
// SoA comparator mirrors and the kernel-independent metadata — into the
// versioned, checksummed image format of internal/image, written to w.
// The blob is everything BuildAccelerator needs, via Config.RestorePath,
// to publish a serving epoch without rebuilding (see DESIGN.md §13); a
// restored replica then catches up by replaying the same delta stream
// through the normal update path. SaveImage captures one epoch snapshot;
// concurrent updates land in later epochs and do not tear it.
func (a *Accelerator) SaveImage(w io.Writer) (int64, error) {
	return a.handle.Current().Engine().Snapshot(w)
}

// collectScrape contributes the scrape-time /metrics samples whose live
// state is owned elsewhere: the flow cache's own atomic counters and the
// mutex-guarded tree quantities. It runs only while an exposition is
// rendered, so taking a.mu here costs the data plane nothing.
func (a *Accelerator) collectScrape(emit func(name string, value float64)) {
	if c := a.handle.Cache(); c != nil {
		st := c.Stats()
		emit("repro_cache_hits_total", float64(st.Hits))
		emit("repro_cache_misses_total", float64(st.Misses))
		emit("repro_cache_stale_evictions_total", float64(st.StaleEvictions))
		emit("repro_cache_evictions_total", float64(st.Evictions))
		emit("repro_cache_inserts_total", float64(st.Inserts))
		emit("repro_cache_live_entries", float64(st.Occupied))
	}
	// A scrape must never block on the restore-path tree rebuild: skip
	// the tree samples until the tree exists.
	a.mu.Lock()
	var deg float64
	var orphans, words int
	if a.tree != nil {
		deg = a.tree.Degradation()
		orphans = a.tree.Orphans()
		words = a.tree.Words()
	}
	hasTree := a.tree != nil
	a.mu.Unlock()
	if hasTree {
		emit("repro_tree_degradation", deg)
		emit("repro_tree_orphan_leaves", float64(orphans))
		emit("repro_tree_words", float64(words))
	}
}

// Classify returns the highest-priority matching rule ID for p, or -1,
// classifying on the simulated hardware datapath. If updates have grown
// the structure past what the device memory can hold (see LoadError),
// the logical tree answers instead — matches stay exact.
//
// With Config.CacheSize set, the flow cache is consulted first: a
// repeated 5-tuple skips both the accelerator lock and the hardware
// walk. Entries are epoch-stamped, so cached answers are always exactly
// what the current structure would return.
func (a *Accelerator) Classify(p Packet) int {
	c := a.handle.Cache()
	if c != nil {
		if rid, ok := c.Lookup(p, a.handle.Current().Epoch()); ok {
			return int(rid)
		}
	}
	m, epoch := a.classifyLocked(p)
	if c != nil {
		c.Insert(p, epoch, int32(m))
	}
	return m
}

// classifyLocked runs the hardware-model walk under the accelerator
// lock, returning the match and the epoch it is valid for. Under mu the
// tree cannot change, so the current epoch is exactly the state this
// answer is computed from — safe to stamp a cache entry with.
func (a *Accelerator) classifyLocked(p Packet) (int, uint64) {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	epoch := a.handle.Current().Epoch()
	if a.tree == nil { // restore's background rebuild failed
		return a.handle.Current().Engine().Classify(p), epoch
	}
	if a.ensureSimLocked() != nil {
		return a.tree.Classify(p), epoch
	}
	return a.sim.ClassifyOne(p).Match, epoch
}

// ClassifyBatch classifies pkts[i] into out[i] on the software fast path
// (the current epoch's flat engine), through the flow cache when
// Config.CacheSize is set. It performs zero allocations; out must be at
// least as long as pkts. Safe for concurrent use, including during
// Insert/Delete — each batch observes one consistent epoch.
func (a *Accelerator) ClassifyBatch(pkts []Packet, out []int32) {
	a.handle.ClassifyBatchCached(pkts, out)
}

// CacheStats reports the flow cache's counters (hits, misses, stale
// evictions, occupancy). The zero value is returned when caching is
// disabled.
func (a *Accelerator) CacheStats() CacheStats {
	if c := a.handle.Cache(); c != nil {
		return c.Stats()
	}
	return CacheStats{}
}

// CacheStats is the flow cache's counter snapshot; see
// internal/flowcache.Stats for field semantics.
type CacheStats = flowcache.Stats

// ClassifyDetailed additionally reports the lookup's latency in clock
// cycles and memory reads. When the device image is unloadable (see
// LoadError) the analytical Eq. 5/7 walk supplies the cycle counts.
func (a *Accelerator) ClassifyDetailed(p Packet) (match, latencyCycles, memReads int) {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return a.handle.Current().Engine().Classify(p), 0, 0
	}
	if a.ensureSimLocked() != nil {
		pi := a.tree.Walk(p)
		return pi.Match, pi.Cycles(), pi.Cycles() - 1
	}
	r := a.sim.ClassifyOne(p)
	return r.Match, r.LatencyCycles, r.MemReads
}

// Stats summarizes a trace run on the accelerator.
type Stats = hwsim.Stats

// Run classifies a whole trace, returning per-packet matches and
// aggregate throughput/energy statistics. The device is locked for the
// duration (one stream per device, as in hardware); use ClassifyStream
// for software classification concurrent with updates. When the device
// image is unloadable (see LoadError) the matches come from the logical
// tree and the statistics from the analytical Eq. 5/7 walk — the same
// quantities the simulator is property-tested against.
func (a *Accelerator) Run(trace []Packet) ([]int, Stats) {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		// Restore's background rebuild failed: matches still come from
		// the restored engine; cycle/energy figures need the tree.
		e := a.handle.Current().Engine()
		matches := make([]int, len(trace))
		var st Stats
		for i, p := range trace {
			matches[i] = e.Classify(p)
			st.Packets++
			if matches[i] >= 0 {
				st.Matched++
			}
		}
		return matches, st
	}
	if a.ensureSimLocked() != nil {
		return a.runAnalyticLocked(trace)
	}
	return a.sim.Run(trace)
}

// runAnalyticLocked mirrors hwsim.Sim.Run's aggregation using
// core.Tree.Walk cycle counts instead of simulated word reads.
func (a *Accelerator) runAnalyticLocked(trace []Packet) ([]int, Stats) {
	matches := make([]int, len(trace))
	var st Stats
	st.Cycles = 2 // reset + first packet's root cycle, as in hwsim.Run
	for i, p := range trace {
		pi := a.tree.Walk(p)
		matches[i] = pi.Match
		st.Packets++
		if pi.Match >= 0 {
			st.Matched++
		}
		reads := pi.Cycles() - 1 // root cycle overlaps the predecessor
		st.MemReads += int64(reads)
		st.Cycles += int64(reads)
		if pi.Cycles() > st.WorstLatency {
			st.WorstLatency = pi.Cycles()
		}
	}
	if st.Packets > 0 {
		st.AvgCyclesPerPacket = float64(st.Cycles-2) / float64(st.Packets)
		seconds := float64(st.Cycles) / a.dev.FreqHz
		st.PacketsPerSecond = float64(st.Packets) / seconds
		st.TotalEnergyJ = float64(st.Cycles) * a.dev.EnergyPerCycleJ()
		st.EnergyPerPacketJ = st.TotalEnergyJ / float64(st.Packets)
	}
	return matches, st
}

// MemoryBytes is the search-structure size (words x 600 bytes).
func (a *Accelerator) MemoryBytes() int {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return 0
	}
	return a.tree.MemoryBytes()
}

// Words is the number of 4800-bit memory words used (device holds 1024).
func (a *Accelerator) Words() int {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return 0
	}
	return a.tree.Words()
}

// WorstCaseCycles is the guaranteed per-packet bound (Tables 4 and 8).
func (a *Accelerator) WorstCaseCycles() int {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return 0
	}
	return a.tree.WorstCaseCycles()
}

// GuaranteedPPS is the worst-case sustained throughput: the pipeline
// overlap hides one cycle (paper §4).
func (a *Accelerator) GuaranteedPPS() float64 {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return 0
	}
	return hwsim.WorstCaseThroughputPPS(a.dev, a.tree.WorstCaseCycles())
}

// DeviceName names the simulated implementation target.
func (a *Accelerator) DeviceName() string { return a.dev.Name }

// Insert adds a rule at the lowest priority (ID must equal the current
// rule count), modelling the paper's §4 control-plane update path: the
// off-chip copy of the structure absorbs the change, the resulting delta
// is patched onto the flat software image as the next lock-free epoch
// (no recompile — readers keep classifying throughout), and the
// simulated device memory is patched lazily on its next use — word by
// word through the write interface, charging only the dirty words. Safe
// for concurrent use; updates serialize against each other.
func (a *Accelerator) Insert(r Rule) error {
	if err := a.waitTree(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	d, err := a.tree.InsertDelta(r)
	if err != nil {
		return err
	}
	return a.applyLocked(d)
}

// Delete removes a rule by ID; see Insert for the update path.
func (a *Accelerator) Delete(id int) error {
	if err := a.waitTree(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	d, err := a.tree.DeleteDelta(id)
	if err != nil {
		return err
	}
	return a.applyLocked(d)
}

// InsertBatch adds a burst of rules (IDs must consecutively extend the
// current rule count) and publishes them as one epoch: the deltas are
// coalesced into a single copy-on-write patch (engine.Handle.ApplyBatch),
// so a BGP-style storm of control-plane updates costs one snapshot
// publication — and one flow-cache invalidation — instead of one per
// rule. Rules are validated against the tree one by one; on a mid-batch
// error the already-absorbed prefix is still published (exactly, never
// lost) and the error reports the failing rule.
func (a *Accelerator) InsertBatch(rules []Rule) error {
	if err := a.waitTree(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ds := make([]*core.Delta, 0, len(rules))
	for i := range rules {
		d, err := a.tree.InsertDelta(rules[i])
		if err != nil {
			if applyErr := a.applyBatchLocked(ds); applyErr != nil {
				return applyErr
			}
			return fmt.Errorf("repro: batch insert %d: %w", i, err)
		}
		ds = append(ds, d)
	}
	return a.applyBatchLocked(ds)
}

// DeleteBatch removes a burst of rules by ID as one epoch; see
// InsertBatch for the coalescing semantics.
func (a *Accelerator) DeleteBatch(ids []int) error {
	if err := a.waitTree(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ds := make([]*core.Delta, 0, len(ids))
	for i, id := range ids {
		d, err := a.tree.DeleteDelta(id)
		if err != nil {
			if applyErr := a.applyBatchLocked(ds); applyErr != nil {
				return applyErr
			}
			return fmt.Errorf("repro: batch delete %d (rule %d): %w", i, id, err)
		}
		ds = append(ds, d)
	}
	return a.applyBatchLocked(ds)
}

// applyBatchLocked replays a burst of tree deltas onto the engine
// snapshot chain as one epoch, marks the device image stale, and kicks a
// background recompile when the structure has degraded past the
// threshold. The tree has already absorbed the updates by the time this
// runs, so a patch failure must not leave the published engine diverged
// from it: the fallback is an inline full recompile, which
// resynchronizes unconditionally. The updates themselves therefore still
// succeed, but the failure is recorded — it means updates are paying
// recompile cost, the exact degradation this pipeline exists to avoid —
// and PatchError surfaces it.
func (a *Accelerator) applyBatchLocked(ds []*core.Delta) error {
	if len(ds) == 0 {
		return nil
	}
	// Flight-record the tree-side absorption (the patch/publish that
	// follows records its own events in the handle), and refresh the
	// degradation gauge the updates just moved.
	var dirty, edits int
	for _, d := range ds {
		dirty += d.DirtyWordCount()
		edits += len(d.LeafEdits)
	}
	a.tel.Events.Record(telemetry.EvDeltaApply, a.handle.Current().Epoch(),
		int64(dirty), int64(len(ds)), int64(edits))
	a.tel.DegradationPPM.Set(int64(a.tree.Degradation() * 1e6))
	if _, err := a.handle.ApplyBatch(ds); err != nil {
		a.patchErr = fmt.Errorf("repro: batch delta patch failed (updates applied via full recompile): %w", err)
		a.recompileLocked()
		return nil
	}
	if !a.simFull {
		// Queue for the word-level device rewrite; dropped if anything
		// forces a full re-encode first.
		a.simPending = append(a.simPending, ds...)
	}
	a.maybeRecompileLocked()
	return nil
}

// applyLocked replays one tree delta onto the engine snapshot chain; it
// is applyBatchLocked for a single-delta burst.
func (a *Accelerator) applyLocked(d *core.Delta) error {
	return a.applyBatchLocked([]*core.Delta{d})
}

// PatchError reports the most recent failure of the incremental patch
// pipeline, or nil. A non-nil value means some Insert/Delete could not
// be replayed as a delta and fell back to a full recompile — results
// stayed correct and consistent, but updates paid recompile cost.
// Monitor it like LoadError; it is cleared only by rebuilding the
// Accelerator, since a patch failure indicates a delta-protocol bug
// worth reporting.
func (a *Accelerator) PatchError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.patchErr
}

// Degradation reports how far incremental updates have pushed the
// structure from its built quality (the fraction of leaf-table entries
// overgrown or orphaned — see core.Tree.Degradation). It is the signal
// the auto-recompile trigger compares against Config.RecompileThreshold;
// surface it in dashboards to watch update churn.
func (a *Accelerator) Degradation() float64 {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tree == nil {
		return 0
	}
	return a.tree.Degradation()
}

// Epoch returns the software image's current epoch: 0 at build,
// incremented by every applied update and recompile swap.
func (a *Accelerator) Epoch() uint64 { return a.handle.Current().Epoch() }

// TelemetryEvent is one flight-recorder record: a classification-plane
// lifecycle transition (epoch publish, degradation trip, recompile,
// cache-invalidation wave, device write, ...) with a monotonic timestamp
// and kind-specific payload words. See internal/telemetry.Event and the
// EventKind constants for the schema.
type TelemetryEvent = telemetry.Event

// TelemetrySnapshot is a point-in-time view of the accelerator's
// telemetry plane: the lifetime data-plane and control-plane counters,
// the structural health gauges, classify-latency quantiles, the flow
// cache's counters, and the retained flight-recorder events
// (oldest-first). All quantities are internally consistent to within
// in-flight updates; Telemetry() takes no data-plane locks.
type TelemetrySnapshot struct {
	// Epoch is the newest published engine epoch.
	Epoch uint64
	// Packets and Batches count classifications through the engine
	// handle's batch paths (ClassifyBatch, ClassifyStream).
	Packets, Batches uint64
	// EpochPublishes counts snapshot publications (patches + swaps);
	// DeltasApplied the tree deltas replayed onto the engine;
	// PatchFailures the deltas that fell back to a full recompile.
	EpochPublishes, DeltasApplied, PatchFailures uint64
	// Recompiles counts completed rebuild/swap cycles and
	// DegradationTrips the threshold crossings that triggered them.
	Recompiles, DegradationTrips uint64
	// CacheInvalidations counts flow-cache invalidation waves (epoch
	// bumps with a cache attached).
	CacheInvalidations uint64
	// GarbageRatio is the published engine's arena-garbage fraction;
	// Degradation and Orphans mirror Accelerator.Degradation and the
	// tree's orphaned-leaf count.
	GarbageRatio, Degradation float64
	Orphans                   int
	// SnapshotAgeNs is how long ago the newest epoch was published
	// (monotonic nanoseconds; the age of what readers classify on).
	SnapshotAgeNs int64
	// ClassifyP50Ns and ClassifyP99Ns are per-batch classify-latency
	// quantile estimates (log2-bucket resolution; 0 until a batch ran).
	ClassifyP50Ns, ClassifyP99Ns int64
	// Cache is the flow cache's counter snapshot (zero value when
	// caching is disabled).
	Cache CacheStats
	// Events is the flight recorder's retained history, oldest-first;
	// EventsDropped is how many older events wraparound discarded.
	Events        []TelemetryEvent
	EventsDropped uint64
}

// Telemetry snapshots the accelerator's always-on telemetry plane. It is
// cheap (atomic loads plus one copy of the event ring) and safe to call
// at any rate from monitoring loops; the same data serves the HTTP
// exposition enabled by Config.TelemetryAddr.
func (a *Accelerator) Telemetry() TelemetrySnapshot {
	t := a.tel
	a.mu.Lock()
	var deg float64
	var orphans int
	if a.tree != nil { // nil while a restore's tree rebuild runs
		deg = a.tree.Degradation()
		orphans = a.tree.Orphans()
	}
	a.mu.Unlock()
	s := TelemetrySnapshot{
		Epoch:              a.handle.Current().Epoch(),
		Packets:            t.Packets.Load(),
		Batches:            t.Batches.Load(),
		EpochPublishes:     t.Epochs.Load(),
		DeltasApplied:      t.Deltas.Load(),
		PatchFailures:      t.PatchFails.Load(),
		Recompiles:         t.Recompiles.Load(),
		DegradationTrips:   t.DegradTrips.Load(),
		CacheInvalidations: t.CacheInv.Load(),
		GarbageRatio:       float64(t.GarbagePPM.Load()) / 1e6,
		Degradation:        deg,
		Orphans:            orphans,
		SnapshotAgeNs:      t.NowNanos() - t.LastPublishNs.Load(),
		Cache:              a.CacheStats(),
		Events:             t.Events.Snapshot(),
		EventsDropped:      t.Events.Dropped(),
	}
	if hs := t.ClassifyNs.Snapshot(); hs.Count > 0 {
		s.ClassifyP50Ns = int64(hs.Quantile(0.50))
		s.ClassifyP99Ns = int64(hs.Quantile(0.99))
	}
	return s
}

// TelemetryEvents returns the flight recorder's retained events,
// oldest-first — Telemetry().Events without the counter snapshot.
func (a *Accelerator) TelemetryEvents() []TelemetryEvent {
	return a.tel.Events.Snapshot()
}

// TelemetryAddr returns the listen address of the telemetry HTTP plane —
// useful with Config.TelemetryAddr ":0" — or "" when no server was
// started.
func (a *Accelerator) TelemetryAddr() string {
	if a.telSrv == nil {
		return ""
	}
	return a.telSrv.Addr()
}

// Close waits for in-flight background maintenance (recompiles, a
// restore's tree rebuild) and shuts down the telemetry HTTP server if
// Config.TelemetryAddr started one. It is idempotent and safe to call
// concurrently — with itself, with classification, and with a telemetry
// scrape; every call returns the first call's result. The accelerator
// itself needs no teardown; classifying after Close is still valid (only
// the HTTP exposition is gone).
func (a *Accelerator) Close() error {
	a.closeOnce.Do(func() {
		// Refuse new background recompiles first (under mu), so maint
		// cannot grow from zero concurrently with the Wait below.
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		a.maint.Wait()
		if a.telSrv != nil {
			a.closeErr = a.telSrv.Close()
		}
	})
	return a.closeErr
}

// LoadError reports whether the last lazy device-memory rewrite failed —
// typically because updates grew the structure past the device's word
// capacity. Software classification is unaffected; the hardware-model
// methods fall back to exact logical-tree answers. A recompile (or
// explicit Recompile) clears the condition if the compacted structure
// fits again.
func (a *Accelerator) LoadError() error {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ensureSimLocked()
	return a.simErr
}

// maybeRecompileLocked starts one background full rebuild when the
// engine arenas have accumulated too much patch garbage, or the tree has
// degraded a further threshold's worth beyond what the last recompile
// could reclaim (degFloor — overgrown leaves survive Relayout; only a
// fresh BuildAccelerator re-cuts them).
func (a *Accelerator) maybeRecompileLocked() {
	if a.threshold < 0 || a.closed {
		return
	}
	if a.tree.Degradation() < a.degFloor+a.threshold &&
		a.handle.Current().Engine().GarbageRatio() < a.threshold {
		return
	}
	if !a.recompiling.CompareAndSwap(false, true) {
		return // one rebuild in flight is enough
	}
	a.tel.DegradTrips.Inc()
	a.tel.Events.Record(telemetry.EvDegradationTrip, a.handle.Current().Epoch(),
		int64(a.tree.Degradation()*1e6),
		int64(a.handle.Current().Engine().GarbageRatio()*1e6),
		int64((a.degFloor+a.threshold)*1e6))
	a.maint.Add(1)
	go func() {
		defer a.maint.Done()
		defer a.recompiling.Store(false)
		a.Recompile()
	}()
}

// Recompile folds all accumulated update patches into a fresh structure:
// the tree is re-laid-out (compacting orphaned leaves), recompiled, and
// swapped in as the next epoch. Readers never stall — they classify on
// the previous epoch until the swap lands. Updates arriving during the
// rebuild wait for it (the control plane serializes; the data plane does
// not).
func (a *Accelerator) Recompile() {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recompileLocked()
}

func (a *Accelerator) recompileLocked() {
	if a.tree == nil {
		return
	}
	start := time.Now()
	a.tel.Events.Record(telemetry.EvRecompileStart, a.handle.Current().Epoch(),
		int64(a.tree.Degradation()*1e6), int64(a.tree.Orphans()), 0)
	a.tree.Relayout()
	s := a.handle.Swap(engine.Compile(a.tree))
	// Relayout moves leaf indices and word numbers, so queued deltas
	// are invalid for the device image: full re-encode on next use.
	a.simFull = true
	a.simPending = nil
	a.degFloor = a.tree.Degradation()
	ns := int64(time.Since(start))
	a.tel.Recompiles.Inc()
	a.tel.RecompileNs.Observe(ns)
	a.tel.DegradationPPM.Set(int64(a.degFloor * 1e6))
	a.tel.Events.Record(telemetry.EvRecompileDone, s.Epoch(),
		ns, int64(a.tree.Words()), int64(a.degFloor*1e6))
}

// WaitMaintenance blocks until background recompiles in flight have
// finished. Useful in tests and orderly shutdown; normal operation never
// needs it.
func (a *Accelerator) WaitMaintenance() { a.maint.Wait() }

// ensureSimLocked brings the simulated device memory up to date with the
// tree, recording (and returning) the load error when the structure no
// longer fits the device.
//
// The fast path replays the queued update deltas word-by-word through
// the device's write interface (hwsim.Sim.ApplyDelta): each update costs
// the handful of words it dirtied, not a re-encode of the table. A full
// re-encode remains the fallback — after a recompile (deltas do not
// survive a Relayout), after a failed patch (capacity or an unencodable
// rule), or while recovering from an earlier load error.
func (a *Accelerator) ensureSimLocked() error {
	if a.tree == nil { // restore's background rebuild failed
		if a.treeErr != nil {
			return a.treeErr
		}
		return fmt.Errorf("repro: control-plane tree unavailable")
	}
	if !a.simFull && len(a.simPending) == 0 {
		return a.simErr
	}
	if !a.simFull && a.simErr == nil && a.sim != nil {
		if n, err := a.sim.ApplyDelta(a.tree, a.simPending...); err == nil {
			a.simPending = nil
			a.tel.Events.Record(telemetry.EvDeviceWrite,
				a.handle.Current().Epoch(), int64(n), 0, 0)
			return nil
		}
		// The word-level patch failed (typically the structure outgrew
		// the device mid-write); fall through to the full re-encode,
		// which rebuilds the image from scratch unconditionally.
	}
	a.simFull = false
	a.simPending = nil
	img, err := a.tree.Encode()
	if err != nil {
		a.simErr = fmt.Errorf("repro: updated structure not encodable: %w", err)
		return a.simErr
	}
	sim, err := hwsim.New(img, a.dev)
	if err != nil {
		a.simErr = err
		return a.simErr
	}
	if a.sim != nil {
		// The replaced image's write interface really spent these
		// cycles; keep DeviceWriteCycles cumulative across re-encodes.
		a.simPriorWrites += a.sim.LoadCycles()
	}
	a.sim = sim
	a.simErr = nil
	a.tel.Events.Record(telemetry.EvDeviceWrite,
		a.handle.Current().Epoch(), sim.LoadCycles(), 1, 0)
	return nil
}

// DeviceWriteCycles reports the cumulative cycles the simulated device's
// write interface has spent: every structure load (including full
// re-encodes after recompiles) plus one cycle per word rewritten by the
// incremental update path (hwsim §4 model). Updates applied since the
// last hardware-path use may still be queued; this flushes them first,
// so the figure reflects every applied update.
func (a *Accelerator) DeviceWriteCycles() int64 {
	a.waitTree()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ensureSimLocked()
	if a.sim == nil {
		return a.simPriorWrites
	}
	return a.simPriorWrites + a.sim.LoadCycles()
}

// Engine is the flat software classification engine: the accelerator's
// search structure compiled into contiguous pointer-free arrays (see
// internal/engine). Classify and ClassifyBatch allocate nothing per
// packet; all methods are safe for concurrent use. The engine is one
// epoch's immutable snapshot — updates applied through the accelerator
// afterwards do not change it; call SoftwareEngine again (or use
// ClassifyStream, which follows epochs automatically) to observe them.
type Engine struct {
	e *engine.Engine
}

// SoftwareEngine returns the current epoch's flat host-CPU engine, the
// production software fast path. It is an O(1) snapshot capture, not a
// recompile.
func (a *Accelerator) SoftwareEngine() *Engine {
	return &Engine{e: a.handle.Current().Engine()}
}

// StreamBatch is the number of packets ClassifyStream classifies per
// engine-shard dispatch (and the granularity at which it observes
// concurrent rule updates).
const StreamBatch = stream.BatchSize

// StreamStats reports what a finished ClassifyStream run did: packets
// delivered, pipeline batches dispatched, the approximate heap
// allocations the stream performed (steady-state binary ingest stays
// far below one per packet), and whether binary framing was detected.
// See internal/stream.Stats for field semantics.
type StreamStats = stream.Stats

// ClassifyStream reads a packet trace from r and writes one matched rule
// ID per line to w, returning the number of packets classified. The
// input framing is auto-detected from its first bytes:
//
//   - the binary wire format (internal/wire, pcgen -binary): fixed-width
//     20-byte records framed for zero-copy batch decoding — the line-rate
//     ingest path, no per-packet parsing or allocation;
//   - a pcap capture (pcgen -pcap or real captures): Ethernet/IPv4
//     5-tuples are extracted, non-IPv4 records are skipped;
//   - otherwise the text trace format of WriteTrace (five tab-separated
//     decimal fields per line, '#' comments tolerated), kept as a
//     compatibility shim over the same batch pipeline.
//
// Packets flow through a ring-buffered three-stage pipeline (decode →
// classify → write) in batches of StreamBatch, classified across all
// cores through the flow cache when Config.CacheSize is set, with
// per-core result buffers so output serialization never stalls the
// classify workers. Each batch captures the newest epoch snapshot, so a
// stream served concurrently with Insert/Delete keeps running at full
// rate — updates land between batches, never mid-batch, and never stall
// the stream (the lock-free snapshot handle is the only coupling).
func (a *Accelerator) ClassifyStream(r io.Reader, w io.Writer) (int64, error) {
	st, err := a.ClassifyStreamStats(r, w)
	return st.Packets, err
}

// ClassifyStreamStats is ClassifyStream returning the full stream
// observables (packets, batches, allocations, detected framing) so
// ingest regressions are measurable in production and in tests.
func (a *Accelerator) ClassifyStreamStats(r io.Reader, w io.Writer) (StreamStats, error) {
	return stream.Run(a.handle, r, w)
}

// Classify returns the highest-priority matching rule ID for p, or -1.
func (e *Engine) Classify(p Packet) int { return e.e.Classify(p) }

// ClassifyBatch classifies pkts[i] into out[i] with zero allocations; out
// must be at least as long as pkts.
func (e *Engine) ClassifyBatch(pkts []Packet, out []int32) { e.e.ClassifyBatch(pkts, out) }

// ParallelClassify shards the batch over up to workers goroutines
// (workers <= 0 selects GOMAXPROCS).
func (e *Engine) ParallelClassify(pkts []Packet, out []int32, workers int) {
	e.e.ParallelClassify(pkts, out, workers)
}

// MemoryBytes is the engine's flat-image footprint.
func (e *Engine) MemoryBytes() int { return e.e.MemoryBytes() }

// SoftwareBaseline is one of the paper's software comparison points
// running on the modelled StrongARM SA-1100.
type SoftwareBaseline struct {
	name string
	c    sa1100.TracedClassifier
}

// NewSoftwareBaseline builds a software classifier: "hicuts", "hypercuts"
// or "linear".
func NewSoftwareBaseline(kind string, rs RuleSet) (*SoftwareBaseline, error) {
	switch kind {
	case "hicuts":
		t, err := hicuts.Build(rs, hicuts.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &SoftwareBaseline{kind, t}, nil
	case "hypercuts":
		t, err := hypercuts.Build(rs, hypercuts.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &SoftwareBaseline{kind, t}, nil
	case "linear":
		return &SoftwareBaseline{kind, linear.New(rs)}, nil
	}
	return nil, fmt.Errorf("repro: unknown baseline %q (want hicuts, hypercuts or linear)", kind)
}

// Name returns the baseline's kind.
func (s *SoftwareBaseline) Name() string { return s.name }

// Classify returns the matching rule ID or -1.
func (s *SoftwareBaseline) Classify(p Packet) int {
	m, _ := s.c.ClassifyTraced(p, nil)
	return m
}

// Measure runs the trace on the SA-1100 cost model, returning throughput
// and energy statistics comparable with Accelerator.Run.
func (s *SoftwareBaseline) Measure(trace []Packet) sa1100.ClassStats {
	return sa1100.MeasureClassification(s.c, trace, sa1100.DefaultCosts())
}

// WriteAllTables regenerates every evaluation table of the paper (Tables
// 2-8 plus the §5.2/§5.3 headline claims) and writes them to w. Options
// zero value uses the paper's sizes; see internal/bench for knobs.
func WriteAllTables(w io.Writer, opts bench.Options) error {
	rows, err := bench.RunACL1(opts)
	if err != nil {
		return err
	}
	for _, t := range []*bench.Table{
		bench.Table2(rows), bench.Table3(rows), bench.Table5(),
		bench.Table6(rows), bench.Table7(rows), bench.Table8(rows),
	} {
		if _, err := fmt.Fprintln(w, t.Format()); err != nil {
			return err
		}
	}
	t4, err := bench.RunTable4(opts)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, bench.Table4(t4).Format()); err != nil {
		return err
	}
	cl, err := bench.RunClaims(opts)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, bench.ClaimsTable(cl).Format())
	return err
}
